package dag

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/policy"
)

// TestCostsDeterministic: the cost matrix is a pure function of the config.
func TestCostsDeterministic(t *testing.T) {
	cfg := Config{Layers: 4, Width: 6, Seed: 9}
	a, b := cfg.Costs(), cfg.Costs()
	for l := range a {
		for i := range a[l] {
			if a[l][i] != b[l][i] {
				t.Fatalf("costs[%d][%d] differs between identical configs: %v vs %v", l, i, a[l][i], b[l][i])
			}
			if a[l][i] < 1 || a[l][i] > 32 {
				t.Fatalf("costs[%d][%d] = %v outside (1, 32]", l, i, a[l][i])
			}
		}
	}
}

// TestDefaultPlacementIsHostAffine: without a cost-model policy, every
// task resolves to the group's first member (the CPU place) — the static
// placement HEFT is benchmarked against.
func TestDefaultPlacementIsHostAffine(t *testing.T) {
	res, err := RunHiPER(Config{Layers: 3, Width: 4, Workers: 2, Unit: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.OnGPU != 0 {
		t.Fatalf("default policy placed %d tasks on the GPU place, want 0", res.OnGPU)
	}
	if res.OnCPU != int64(res.Tasks) {
		t.Fatalf("accounting: %d CPU + %d GPU != %d tasks", res.OnCPU, res.OnGPU, res.Tasks)
	}
}

// TestHEFTOffloads: HEFT's earliest-finish-time rule sends a substantial
// share of the graph to the 8×-speed GPU place.
func TestHEFTOffloads(t *testing.T) {
	res, err := RunHiPER(Config{Layers: 4, Width: 8, Workers: 2, Unit: time.Microsecond, Policy: policy.HEFT})
	if err != nil {
		t.Fatal(err)
	}
	if res.OnGPU == 0 {
		t.Fatal("HEFT placed no tasks on the GPU place")
	}
}

// TestAllPoliciesRunToCompletion: every shipped policy executes the whole
// graph.
func TestAllPoliciesRunToCompletion(t *testing.T) {
	for _, pol := range policy.All {
		res, err := RunHiPER(Config{Layers: 3, Width: 5, Workers: 3, Unit: time.Microsecond, Policy: pol})
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if res.Tasks != 15 {
			t.Fatalf("%s: ran %d tasks, want 15", pol.Name(), res.Tasks)
		}
	}
}

// TestHEFTBeatsHostAffineBaseline is the workload's reason to exist: with
// known costs and a faster accelerator place on offer, EFT placement must
// finish the graph faster than the default's static host-affine
// placement. Generous margin (1.2×) — the win at benchmark scale is much
// larger, but CI machines are noisy.
func TestHEFTBeatsHostAffineBaseline(t *testing.T) {
	cfg := Config{Layers: 8, Width: 12, Workers: 4, Unit: 50 * time.Microsecond, Seed: 7}
	best := func(pol core.SchedPolicy) time.Duration {
		var b time.Duration
		for i := 0; i < 3; i++ {
			res, err := RunHiPER(Config{Layers: cfg.Layers, Width: cfg.Width, Workers: cfg.Workers,
				Unit: cfg.Unit, Seed: cfg.Seed, Policy: pol})
			if err != nil {
				t.Fatal(err)
			}
			if b == 0 || res.Elapsed < b {
				b = res.Elapsed
			}
		}
		return b
	}
	def := best(policy.RandomSteal)
	heft := best(policy.HEFT)
	t.Logf("random-steal %v, heft %v (%.2fx)", def, heft, float64(def)/float64(heft))
	if float64(heft)*1.2 > float64(def) {
		t.Fatalf("HEFT (%v) did not beat host-affine default (%v) by 1.2x", heft, def)
	}
}
