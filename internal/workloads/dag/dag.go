// Package dag is a synthetic heterogeneous task-graph workload: the
// standard evaluation subject for list schedulers (Topcuoglu et al.'s HEFT
// paper benchmarks on random layered DAGs with known per-task costs),
// adapted to a dynamic work-stealing runtime.
//
// The graph is Layers fully-dependent layers of Width tasks each (layer
// k+1 starts when layer k completes — a Finish scope per layer). Task
// costs are drawn from a seeded PRNG, so the application knows each
// task's weight up front, exactly the information HEFT's upward ranks
// encode. Every task is offered to the scheduler with both placement
// candidates — the CPU memory place and the GPU place — via the AtGroup
// spawn option, with its weight attached via Cost.
//
// Execution is simulated, like the fabric and device latencies elsewhere
// in this repo: a task occupies its landing place for cost×Unit scaled by
// the place's ComputeSpeed, so the GPU place (speed 8) runs the same task
// 8× faster. The policies therefore differ only in placement: the
// built-in random-steal policy has no cost model and resolves every
// group to its first member (the CPU place — static host-affine
// placement), while a cost-model policy can offload to the accelerator
// whenever its queue-wait estimate says the task finishes earlier there.
package dag

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/platform"
	"repro/internal/spin"
)

// Config describes one run.
type Config struct {
	Layers  int           // dependent layers in the graph
	Width   int           // independent tasks per layer
	Workers int           // runtime workers
	Unit    time.Duration // simulated execution time of one cost unit at speed 1
	Seed    uint64        // cost-distribution seed
	Policy  core.SchedPolicy
}

func (c Config) withDefaults() Config {
	if c.Layers <= 0 {
		c.Layers = 8
	}
	if c.Width <= 0 {
		c.Width = 8
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Unit <= 0 {
		c.Unit = 20 * time.Microsecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result is one run's outcome.
type Result struct {
	Elapsed time.Duration
	Tasks   int     // tasks executed
	Work    float64 // total cost units in the graph
	OnCPU   int64   // tasks the active policy placed on the CPU place
	OnGPU   int64   // tasks the active policy placed on the GPU place
}

// Costs returns the task-cost matrix a run with this config executes:
// costs[l][i] is task i of layer l, in (1, 32] cost units. Exported so
// tests can assert against the exact total work.
func (c Config) Costs() [][]float64 {
	c = c.withDefaults()
	rng := c.Seed
	costs := make([][]float64, c.Layers)
	for l := range costs {
		costs[l] = make([]float64, c.Width)
		for i := range costs[l] {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			costs[l][i] = 1 + float64(rng%31) // heterogeneous, known up front
		}
	}
	return costs
}

// RunHiPER executes the graph on one HiPER runtime with a GPU place under
// cfg.Policy.
func RunHiPER(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	costs := cfg.Costs()
	var res Result
	for _, layer := range costs {
		for _, w := range layer {
			res.Work += w
		}
	}
	var onCPU, onGPU, ran atomic.Int64
	start := time.Now()
	err := job.Run(job.Spec{Ranks: 1, WorkersPerRank: cfg.Workers, GPUs: 1,
		Policy: cfg.Policy, OnStart: func() { start = time.Now() }},
		nil,
		func(p *job.Proc, c *core.Ctx) {
			gpu := p.RT.Model().FirstByKind(platform.KindGPU)
			cpu := p.RT.Model().FirstByKind(platform.KindSysMem)
			for _, layer := range costs {
				layer := layer
				c.Finish(func(c *core.Ctx) {
					for _, cost := range layer {
						cost := cost
						c.AsyncWith(func(cc *core.Ctx) {
							if cc.Place() == gpu {
								onGPU.Add(1)
							} else {
								onCPU.Add(1)
							}
							ran.Add(1)
							spin.Sleep(time.Duration(float64(cfg.Unit) * cost / cc.Place().ComputeSpeed()))
						}, core.Cost(cost), core.AtGroup(cpu, gpu))
					}
				})
			}
		})
	res.Elapsed = time.Since(start)
	res.Tasks = int(ran.Load())
	res.OnCPU = onCPU.Load()
	res.OnGPU = onGPU.Load()
	if err != nil {
		return res, err
	}
	if want := cfg.Layers * cfg.Width; res.Tasks != want {
		return res, fmt.Errorf("dag: executed %d tasks, want %d", res.Tasks, want)
	}
	return res, nil
}
