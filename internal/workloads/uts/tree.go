// Package uts implements the Unbalanced Tree Search benchmark (Olivier et
// al., LCPC 2006), the paper's Figure 7 workload.
//
// UTS counts the nodes of an implicitly defined, highly unbalanced tree.
// Each node's child count is derived deterministically from a SHA-1 hash
// of the node's descriptor (the original uses SHA-1 exactly the same way),
// with a geometric branching law whose expectation tapers linearly to zero
// at GenMax — the "linear shape" geometric trees of the UTS suite, scaled
// down from the paper's T1XXL dataset.
//
// Because the tree is defined by hashes, every variant — sequential,
// OpenSHMEM+OpenMP, OpenSHMEM+OpenMP Tasks, and HiPER AsyncSHMEM — must
// report exactly the same node count, which is the cross-variant oracle.
package uts

import (
	"crypto/sha1"
	"encoding/binary"
	"math"
)

// TreeConfig defines the implicit tree.
type TreeConfig struct {
	B0     int   // root branching factor
	GenMax int   // depth at which expected branching reaches zero
	Seed   int64 // root descriptor seed
}

// DefaultTree is a laptop-scale stand-in for T1XXL (geometric, linear
// taper): a few hundred thousand nodes with heavy imbalance.
var DefaultTree = TreeConfig{B0: 4, GenMax: 13, Seed: 19}

// node is a tree-node descriptor: the SHA-1 state plus its depth.
type node struct {
	digest [20]byte
	depth  int32
}

// nodeBytes is the wire size of an encoded node.
const nodeBytes = 24

func encodeNode(n node, out []byte) {
	copy(out[:20], n.digest[:])
	binary.LittleEndian.PutUint32(out[20:], uint32(n.depth))
}

func decodeNode(in []byte) node {
	var n node
	copy(n.digest[:], in[:20])
	n.depth = int32(binary.LittleEndian.Uint32(in[20:]))
	return n
}

// Root derives the root node from the seed.
func rootNode(cfg TreeConfig) node {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(cfg.Seed))
	return node{digest: sha1.Sum(buf[:]), depth: 0}
}

// numChildren computes the node's branching factor: B0 at the root, and a
// stochastic rounding of the linearly tapered expectation below it.
func numChildren(cfg TreeConfig, n node) int {
	if n.depth == 0 {
		return cfg.B0
	}
	m := float64(cfg.B0) * (1 - float64(n.depth)/float64(cfg.GenMax))
	if m <= 0 {
		return 0
	}
	u := float64(binary.BigEndian.Uint64(n.digest[:8])) / math.MaxUint64
	nc := int(math.Floor(m))
	if u < m-math.Floor(m) {
		nc++
	}
	return nc
}

// childNode derives child i of n.
func childNode(n node, i int) node {
	var buf [24]byte
	copy(buf[:20], n.digest[:])
	binary.LittleEndian.PutUint32(buf[20:], uint32(i))
	return node{digest: sha1.Sum(buf[:]), depth: n.depth + 1}
}

// expand appends n's children to out and returns the extended slice.
func expand(cfg TreeConfig, n node, out []node) []node {
	nc := numChildren(cfg, n)
	for i := 0; i < nc; i++ {
		out = append(out, childNode(n, i))
	}
	return out
}

// CountSequential walks the whole tree depth-first on one goroutine and
// returns the node count — the oracle for all parallel variants.
func CountSequential(cfg TreeConfig) int64 {
	stack := []node{rootNode(cfg)}
	var count int64
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		stack = expand(cfg, n, stack)
	}
	return count
}

// MaxDepthSequential returns the deepest level reached (diagnostics).
func MaxDepthSequential(cfg TreeConfig) int32 {
	stack := []node{rootNode(cfg)}
	var deepest int32
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.depth > deepest {
			deepest = n.depth
		}
		stack = expand(cfg, n, stack)
	}
	return deepest
}
