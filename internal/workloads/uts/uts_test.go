package uts

import (
	"testing"
	"time"

	"repro/internal/shmem"
	"repro/internal/simnet"
)

// tinyTree keeps unit tests fast (a few thousand nodes).
var tinyTree = TreeConfig{B0: 4, GenMax: 9, Seed: 19}

var testCost = simnet.CostModel{Alpha: 20 * time.Microsecond}

func TestTreeDeterministic(t *testing.T) {
	a := CountSequential(tinyTree)
	b := CountSequential(tinyTree)
	if a != b {
		t.Fatalf("tree not deterministic: %d vs %d", a, b)
	}
	if a < 100 {
		t.Fatalf("tiny tree suspiciously small: %d nodes", a)
	}
	other := tinyTree
	other.Seed = 20
	if CountSequential(other) == a {
		t.Fatal("different seeds gave identical counts")
	}
}

func TestRootBranching(t *testing.T) {
	r := rootNode(tinyTree)
	if got := numChildren(tinyTree, r); got != tinyTree.B0 {
		t.Fatalf("root children = %d, want %d", got, tinyTree.B0)
	}
	// Beyond GenMax the expectation is <= 0: no children.
	deep := node{depth: int32(tinyTree.GenMax)}
	if got := numChildren(tinyTree, deep); got != 0 {
		t.Fatalf("children at GenMax = %d, want 0", got)
	}
}

func TestNodeCodecRoundTrip(t *testing.T) {
	n := childNode(rootNode(tinyTree), 2)
	var buf [nodeBytes]byte
	encodeNode(n, buf[:])
	got := decodeNode(buf[:])
	if got != n {
		t.Fatalf("codec mismatch: %+v vs %+v", got, n)
	}
}

func TestMaxDepthWithinGenMax(t *testing.T) {
	if d := MaxDepthSequential(tinyTree); d > int32(tinyTree.GenMax) {
		t.Fatalf("depth %d exceeds GenMax %d", d, tinyTree.GenMax)
	}
}

func TestDistQueueLocalOps(t *testing.T) {
	world := shmemWorld(1)
	dq := newDistQueue(world, tinyTree, 128)
	dq.seed()
	pe := world.PE(0)
	batch := dq.takeLocal(pe, 10)
	if len(batch) != 1 || batch[0] != rootNode(tinyTree) {
		t.Fatalf("seeded queue take = %v", batch)
	}
	kids := expand(tinyTree, batch[0], nil)
	if err := dq.release(pe, kids); err != nil {
		t.Fatal(err)
	}
	got := dq.takeLocal(pe, 100)
	if len(got) != len(kids) {
		t.Fatalf("took %d, want %d", len(got), len(kids))
	}
}

func TestDistQueueCompaction(t *testing.T) {
	world := shmemWorld(1)
	dq := newDistQueue(world, tinyTree, 8)
	pe := world.PE(0)
	n := rootNode(tinyTree)
	// Fill, drain from head via steal, refill: must compact, not overflow.
	for round := 0; round < 10; round++ {
		if err := dq.release(pe, []node{n, n, n, n}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got := dq.steal(pe, 0); len(got) == 0 {
			t.Fatal("steal got nothing")
		}
		dq.takeLocal(pe, 8)
	}
	// A genuine overflow must error.
	big := make([]node, 9)
	if err := dq.release(pe, big); err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestStealTakesHalfFromHead(t *testing.T) {
	world := shmemWorld(2)
	dq := newDistQueue(world, tinyTree, 64)
	owner := world.PE(0)
	thief := world.PE(1)
	nodes := make([]node, 8)
	for i := range nodes {
		nodes[i] = childNode(rootNode(tinyTree), i%4)
	}
	if err := dq.release(owner, nodes); err != nil {
		t.Fatal(err)
	}
	got := dq.steal(thief, 0)
	if len(got) != 4 {
		t.Fatalf("stole %d, want half (4)", len(got))
	}
	for i := range got {
		if got[i] != nodes[i] {
			t.Fatal("steal must take from the head in order")
		}
	}
	rest := dq.takeLocal(owner, 64)
	if len(rest) != 4 {
		t.Fatalf("owner left with %d", len(rest))
	}
}

func TestRunSHMEMOMP(t *testing.T) {
	res, err := RunSHMEMOMP(RunConfig{Tree: tinyTree, Ranks: 4, Threads: 2, Cost: testCost})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != CountSequential(tinyTree) {
		t.Fatalf("nodes = %d", res.Nodes)
	}
}

func TestRunSHMEMOMPTasks(t *testing.T) {
	res, err := RunSHMEMOMPTasks(RunConfig{Tree: tinyTree, Ranks: 4, Threads: 2, Cost: testCost})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != CountSequential(tinyTree) {
		t.Fatalf("nodes = %d", res.Nodes)
	}
}

func TestRunHiPER(t *testing.T) {
	res, err := RunHiPER(RunConfig{Tree: tinyTree, Ranks: 4, Threads: 2, Cost: testCost})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != CountSequential(tinyTree) {
		t.Fatalf("nodes = %d", res.Nodes)
	}
}

func TestSingleRankDegenerate(t *testing.T) {
	for _, run := range []func(RunConfig) (Result, error){RunSHMEMOMP, RunSHMEMOMPTasks, RunHiPER} {
		res, err := run(RunConfig{Tree: tinyTree, Ranks: 1, Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Nodes != CountSequential(tinyTree) {
			t.Fatalf("single-rank count = %d", res.Nodes)
		}
	}
}

func shmemWorld(n int) *shmem.World { return shmem.NewWorld(n, simnet.CostModel{}) }
