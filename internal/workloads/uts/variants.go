package uts

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hipershmem"
	"repro/internal/job"
	"repro/internal/modules"
	"repro/internal/omp"
	"repro/internal/shmem"
	"repro/internal/simnet"
	"repro/internal/spin"
)

// RunConfig parameterizes a distributed UTS run (strong scaling: the tree
// is fixed, ranks vary).
type RunConfig struct {
	Tree    TreeConfig
	Ranks   int
	Threads int // intra-rank parallelism
	Cost    simnet.CostModel

	BatchSize int // nodes processed per expansion round (default 256)
	QueueCap  int // shared-queue capacity in nodes (default 1<<17)

	// LocalMax bounds the private pool of the SHMEM+OMP and HiPER
	// variants; surplus children beyond it are released to the shared
	// queue for thieves (default 4*BatchSize).
	LocalMax int

	// TaskRegionBudget caps how many nodes one OpenMP-Tasks region may
	// expand recursively before overflowing to the shared queue (default
	// 2*BatchSize). The Tasks variant has no private pool: every surviving
	// child crosses the shared queue, because communication can only
	// happen between fully-drained task regions.
	TaskRegionBudget int

	// Policy selects the HiPER variant's scheduling policy (nil keeps the
	// built-in random-steal). The flat and OpenMP baselines ignore it.
	Policy core.SchedPolicy
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1 << 17
	}
	if c.LocalMax <= 0 {
		c.LocalMax = 4 * c.BatchSize
	}
	if c.TaskRegionBudget <= 0 {
		c.TaskRegionBudget = 2 * c.BatchSize
	}
	return c
}

// Result reports one distributed run.
type Result struct {
	Variant string
	Ranks   int
	Nodes   int64
	Elapsed time.Duration
}

// idleBackoff is how long a rank sleeps after a fruitless steal round.
const idleBackoff = 30 * time.Microsecond

// expandBatchOMP expands batch fork-join style on the team.
func expandBatchOMP(cfg RunConfig, team *omp.Team, batch []node) []node {
	buckets := make([][]node, cfg.Threads)
	team.Parallel(func(tid int) {
		var local []node
		for i := tid; i < len(batch); i += cfg.Threads {
			local = expand(cfg.Tree, batch[i], local)
		}
		buckets[tid] = local
	})
	var children []node
	for _, b := range buckets {
		children = append(children, b...)
	}
	return children
}

// popBatch removes up to n nodes from the tail of pool.
func popBatch(pool *[]node, n int) []node {
	p := *pool
	if len(p) == 0 {
		return nil
	}
	if n > len(p) {
		n = len(p)
	}
	batch := make([]node, n)
	copy(batch, p[len(p)-n:])
	*pool = p[:len(p)-n]
	return batch
}

// RunSHMEMOMP is the hand-coded OpenSHMEM+OpenMP variant: per rank, an
// OpenMP team expands batches fork-join style from a private pool; the
// master thread performs all SHMEM communication (releasing surplus work,
// stealing, termination checks) between regions. This is the structure the
// paper reports scaling similarly to HiPER until load-balancing contention
// grows.
func RunSHMEMOMP(cfg RunConfig) (Result, error) {
	cfg = cfg.withDefaults()
	world := shmem.NewWorld(cfg.Ranks, cfg.Cost)
	dq := newDistQueue(world, cfg.Tree, cfg.QueueCap)
	dq.seed()

	start := time.Now()
	err := job.RunFlat(cfg.Ranks, func(r int) error {
		pe := world.PE(r)
		team := omp.NewTeam(cfg.Threads)
		rng := uint64(r + 1)
		var processed int64
		var pool []node
		for {
			batch := popBatch(&pool, cfg.BatchSize)
			if batch == nil {
				batch = dq.takeLocal(pe, cfg.BatchSize)
			}
			if len(batch) == 0 {
				if dq.done(pe) {
					break
				}
				victim := victimSeq(r, cfg.Ranks, &rng)
				batch = dq.steal(pe, victim)
				if len(batch) == 0 {
					spin.Sleep(idleBackoff)
					continue
				}
			}
			children := expandBatchOMP(cfg, team, batch)
			// Keep work private up to LocalMax; surplus goes to the shared
			// queue for thieves.
			pool = append(pool, children...)
			if len(pool) > cfg.LocalMax {
				surplus := popBatch(&pool, len(pool)-cfg.LocalMax/2)
				if err := dq.release(pe, surplus); err != nil {
					return err
				}
			}
			processed += int64(len(batch))
			dq.updateInflight(pe, int64(len(children))-int64(len(batch)))
		}
		dq.counted.Local(r)[0] = processed
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, err
	}
	return finish("shmem+omp", cfg, dq, elapsed)
}

// RunSHMEMOMPTasks is the OpenSHMEM+OpenMP Tasks variant. Tasks expand
// nodes recursively inside a region up to a budget, but because OpenMP
// tasking has no integration with OpenSHMEM, the rank must wait for ALL
// pending tasks — coarse-grain synchronization, with stragglers — before
// it can release work, steal, or check termination; every surviving child
// therefore crosses the shared queue between regions. This is the
// structural weakness the paper measures.
func RunSHMEMOMPTasks(cfg RunConfig) (Result, error) {
	cfg = cfg.withDefaults()
	world := shmem.NewWorld(cfg.Ranks, cfg.Cost)
	dq := newDistQueue(world, cfg.Tree, cfg.QueueCap)
	dq.seed()

	start := time.Now()
	err := job.RunFlat(cfg.Ranks, func(r int) error {
		pe := world.PE(r)
		team := omp.NewTeam(cfg.Threads)
		rng := uint64(r + 1)
		var processed int64
		for {
			batch := dq.takeLocal(pe, cfg.BatchSize)
			if len(batch) == 0 {
				if dq.done(pe) {
					break
				}
				victim := victimSeq(r, cfg.Ranks, &rng)
				batch = dq.steal(pe, victim)
				if len(batch) == 0 {
					spin.Sleep(idleBackoff)
					continue
				}
			}
			var mu sync.Mutex
			var overflow []node
			var regionProcessed int64
			budget := int64(cfg.TaskRegionBudget)
			var regionCount int64
			team.Tasks(func(tg *omp.TaskGroup) {
				var walk func(tg *omp.TaskGroup, n node)
				walk = func(tg *omp.TaskGroup, n node) {
					children := expand(cfg.Tree, n, nil)
					mu.Lock()
					regionProcessed++
					for _, ch := range children {
						if regionCount < budget {
							regionCount++
							ch := ch
							mu.Unlock()
							tg.Spawn(func(tg *omp.TaskGroup) { walk(tg, ch) })
							mu.Lock()
						} else {
							overflow = append(overflow, ch)
						}
					}
					mu.Unlock()
				}
				for _, n := range batch {
					n := n
					tg.Spawn(func(tg *omp.TaskGroup) { walk(tg, n) })
				}
			})
			// Region fully drained (the coarse sync): only now may the
			// rank talk to SHMEM again.
			if err := dq.release(pe, overflow); err != nil {
				return err
			}
			processed += regionProcessed
			// Net in-flight delta: overflow pushed minus batch consumed;
			// in-region children never touch the counter.
			dq.updateInflight(pe, int64(len(overflow))-int64(len(batch)))
		}
		dq.counted.Local(r)[0] = processed
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, err
	}
	return finish("shmem+omp-tasks", cfg, dq, elapsed)
}

// RunHiPER is the AsyncSHMEM variant: identical parallel structure to
// RunSHMEMOMP (private pool, batch expansion, manual distributed load
// balancing), but expansion runs as HiPER tasks on the persistent pool and
// all SHMEM operations are taskified futures — so when a rank goes idle it
// overlaps the termination check with the steal attempt instead of paying
// two round trips back to back, and lock waits deschedule tasks instead of
// blocking threads.
func RunHiPER(cfg RunConfig) (Result, error) {
	cfg = cfg.withDefaults()
	world := shmem.NewWorld(cfg.Ranks, cfg.Cost)
	dq := newDistQueue(world, cfg.Tree, cfg.QueueCap)
	dq.seed()
	mods := make([]*hipershmem.Module, cfg.Ranks)
	errs := make([]error, cfg.Ranks)

	start := time.Now()
	err := job.Run(job.Spec{Ranks: cfg.Ranks, WorkersPerRank: cfg.Threads,
		Policy: cfg.Policy, OnStart: func() { start = time.Now() }},
		func(p *job.Proc) error {
			mods[p.Rank] = hipershmem.New(world.PE(p.Rank), nil)
			return modules.Install(p.RT, mods[p.Rank])
		},
		func(p *job.Proc, c *core.Ctx) {
			r := p.Rank
			m := mods[r]
			pe := m.PE()
			rng := uint64(r + 1)
			var processed int64
			var pool []node
			for {
				batch := popBatch(&pool, cfg.BatchSize)
				if batch == nil {
					batch = dq.takeLocal(pe, cfg.BatchSize)
				}
				if len(batch) == 0 {
					// Idle: overlap the global termination check with a
					// steal attempt — both are futures.
					doneF := m.GetFuture(c, dq.inflight, 0, 0, 1)
					victim := victimSeq(r, cfg.Ranks, &rng)
					stolenF := c.AsyncFuture(func(cc *core.Ctx) any {
						return stealHiPER(cc, m, dq, victim)
					})
					inflight := c.Get(doneF).([]int64)[0]
					stolen := c.Get(stolenF).([]node)
					if len(stolen) > 0 {
						pool = append(pool, stolen...)
						continue
					}
					if inflight == 0 {
						break
					}
					spin.Sleep(idleBackoff)
					continue
				}
				// Persistent-pool parallel expansion: chunked forasync, no
				// fork-join thread churn. The batch size is the natural cost
				// hint for the expansion landing at this place: cost-model
				// policies see how much tree is queued per rank.
				c.Runtime().CostHint(c.Place(), float64(len(batch)))
				buckets := make([][]node, cfg.Threads)
				c.ForasyncSync(core.Range{Lo: 0, Hi: cfg.Threads, Grain: 1}, func(_ *core.Ctx, tid int) {
					var local []node
					for i := tid; i < len(batch); i += cfg.Threads {
						local = expand(cfg.Tree, batch[i], local)
					}
					buckets[tid] = local
				})
				var children []node
				for _, b := range buckets {
					children = append(children, b...)
				}
				pool = append(pool, children...)
				if len(pool) > cfg.LocalMax {
					surplus := popBatch(&pool, len(pool)-cfg.LocalMax/2)
					if err := dq.release(pe, surplus); err != nil {
						errs[r] = err
						return
					}
				}
				processed += int64(len(batch))
				dq.updateInflight(pe, int64(len(children))-int64(len(batch)))
			}
			dq.counted.Local(r)[0] = processed
		})
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, err
	}
	for _, e := range errs {
		if e != nil {
			return Result{}, e
		}
	}
	return finish("hiper-asyncshmem", cfg, dq, elapsed)
}

// stealHiPER mirrors distQueue.steal with taskified SHMEM calls: the lock
// wait and remote gets deschedule the calling task.
func stealHiPER(c *core.Ctx, m *hipershmem.Module, dq *distQueue, victim int) []node {
	m.SetLock(c, dq.locks[victim])
	defer m.ClearLock(c, dq.locks[victim])
	meta := m.Get(c, dq.meta, victim, 0, 2)
	head, tail := int(meta[metaHead]), int(meta[metaTail])
	avail := tail - head
	if avail <= 0 {
		return []node(nil)
	}
	take := (avail + 1) / 2
	raw := m.GetBytes(c, dq.queues, victim, head*nodeBytes, take*nodeBytes)
	out := make([]node, take)
	for i := range out {
		out[i] = decodeNode(raw[i*nodeBytes:])
	}
	m.Put(c, dq.meta, victim, metaHead, []int64{int64(head + take)})
	m.Quiet(c)
	return out
}

// finish validates the distributed count against the sequential oracle.
func finish(variant string, cfg RunConfig, dq *distQueue, elapsed time.Duration) (Result, error) {
	nodes := dq.totalCounted()
	want := CountSequential(cfg.Tree)
	if nodes != want {
		return Result{}, fmt.Errorf("uts: %s counted %d nodes, sequential oracle says %d", variant, nodes, want)
	}
	return Result{Variant: variant, Ranks: cfg.Ranks, Nodes: nodes, Elapsed: elapsed}, nil
}
