package uts

import (
	"fmt"

	"repro/internal/shmem"
)

// distQueue is the manual, application-level distributed load-balancing
// structure shared by all three parallel UTS variants (the paper notes the
// OpenSHMEM+OpenMP and AsyncSHMEM versions are identical in parallel
// structure): each PE owns a shared work queue in symmetric memory that
// thieves access remotely under a symmetric lock, plus a global in-flight
// node counter on PE 0 used for termination detection.
//
// Contention on the queue locks and the global counter grows with scale —
// the effect the paper identifies as limiting the hand-coded version.
type distQueue struct {
	world *shmem.World
	cfg   TreeConfig

	queues *shmem.ByteArray  // per-PE node storage, cap*nodeBytes
	meta   *shmem.Int64Array // per-PE [head, tail]
	locks  []*shmem.Lock     // per-PE queue lock

	inflight *shmem.Int64Array // PE 0, slot 0: outstanding (unprocessed) nodes
	counted  *shmem.Int64Array // per-PE processed-node count

	cap int
}

const (
	metaHead = 0
	metaTail = 1
)

func newDistQueue(world *shmem.World, cfg TreeConfig, capacity int) *distQueue {
	dq := &distQueue{
		world:    world,
		cfg:      cfg,
		queues:   world.AllocBytes(capacity * nodeBytes),
		meta:     world.AllocInt64(2),
		locks:    make([]*shmem.Lock, world.Size()),
		inflight: world.AllocInt64(1),
		counted:  world.AllocInt64(1),
		cap:      capacity,
	}
	for i := range dq.locks {
		dq.locks[i] = world.AllocLock()
	}
	return dq
}

// seed installs the root node at PE 0 and primes the in-flight counter.
func (dq *distQueue) seed() {
	var buf [nodeBytes]byte
	encodeNode(rootNode(dq.cfg), buf[:])
	copy(dq.queues.Local(0), buf[:])
	dq.meta.Local(0)[metaTail] = 1
	dq.inflight.Local(0)[0] = 1
}

// release appends nodes to PE me's own shared queue (owner-side, under the
// lock so concurrent thieves stay consistent). Compacts when the tail
// would overflow.
func (dq *distQueue) release(pe *shmem.PE, nodes []node) error {
	if len(nodes) == 0 {
		return nil
	}
	me := pe.Rank()
	pe.SetLock(dq.locks[me])
	defer pe.ClearLock(dq.locks[me])
	m := dq.meta.Local(me)
	head, tail := int(m[metaHead]), int(m[metaTail])
	q := dq.queues.Local(me)
	if tail+len(nodes) > dq.cap {
		// Compact [head, tail) to the front.
		copy(q, q[head*nodeBytes:tail*nodeBytes])
		tail -= head
		head = 0
		if tail+len(nodes) > dq.cap {
			return fmt.Errorf("uts: PE %d queue overflow (%d + %d > %d)", me, tail, len(nodes), dq.cap)
		}
	}
	for i, n := range nodes {
		encodeNode(n, q[(tail+i)*nodeBytes:])
	}
	m[metaHead] = int64(head)
	m[metaTail] = int64(tail + len(nodes))
	return nil
}

// takeLocal pops up to max nodes from PE me's own queue (from the tail:
// depth-first locally, like the UTS reference).
func (dq *distQueue) takeLocal(pe *shmem.PE, max int) []node {
	me := pe.Rank()
	pe.SetLock(dq.locks[me])
	defer pe.ClearLock(dq.locks[me])
	m := dq.meta.Local(me)
	head, tail := int(m[metaHead]), int(m[metaTail])
	avail := tail - head
	if avail <= 0 {
		return nil
	}
	take := max
	if take > avail {
		take = avail
	}
	q := dq.queues.Local(me)
	out := make([]node, take)
	for i := 0; i < take; i++ {
		out[i] = decodeNode(q[(tail-take+i)*nodeBytes:])
	}
	m[metaTail] = int64(tail - take)
	return out
}

// steal grabs up to half of victim's queue (from the head: breadth-first
// remotely, maximizing stolen subtree size, as in UTS work-stealing).
func (dq *distQueue) steal(pe *shmem.PE, victim int) []node {
	pe.SetLock(dq.locks[victim])
	defer pe.ClearLock(dq.locks[victim])
	m := pe.Get(dq.meta, victim, 0, 2)
	head, tail := int(m[metaHead]), int(m[metaTail])
	avail := tail - head
	if avail <= 0 {
		return nil
	}
	take := (avail + 1) / 2
	raw := pe.GetBytes(dq.queues, victim, head*nodeBytes, take*nodeBytes)
	out := make([]node, take)
	for i := range out {
		out[i] = decodeNode(raw[i*nodeBytes:])
	}
	pe.Put(dq.meta, victim, metaHead, []int64{int64(head + take)})
	pe.Quiet() // head update must be visible before the lock releases
	return out
}

// updateInflight applies the net node-count delta for a processed batch:
// +children enqueued, -nodes consumed. The children must already be
// visible (released) before the delta lands, so a zero reading proves
// global quiescence.
func (dq *distQueue) updateInflight(pe *shmem.PE, delta int64) {
	if delta == 0 {
		return
	}
	pe.Quiet()
	pe.Add(dq.inflight, 0, 0, delta)
}

// done polls the global in-flight counter.
func (dq *distQueue) done(pe *shmem.PE) bool {
	return pe.GetValue(dq.inflight, 0, 0) == 0
}

// totalCounted sums every PE's processed-node count (call after the run).
func (dq *distQueue) totalCounted() int64 {
	var sum int64
	for r := 0; r < dq.world.Size(); r++ {
		sum += dq.counted.Local(r)[0]
	}
	return sum
}

// victimSeq deterministically cycles steal victims for PE me.
func victimSeq(me, npes int, state *uint64) int {
	*state = splitmix(*state)
	v := int(*state % uint64(npes))
	if v == me {
		v = (v + 1) % npes
	}
	return v
}

func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
