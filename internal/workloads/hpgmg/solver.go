package hpgmg

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/hipermpi"
	"repro/internal/hiperupcxx"
	"repro/internal/job"
	"repro/internal/modules"
	"repro/internal/mpi"
	"repro/internal/omp"
	"repro/internal/simnet"
	"repro/internal/upcxx"
)

// Smoother sweep counts: V(2,2) cycles with a heavily-smoothed coarsest
// level standing in for a direct bottom solve.
const (
	nu1          = 2
	nu2          = 2
	coarseSweeps = 24
)

// Config parameterizes a run. Weak scaling: every rank owns NZ planes of
// N×N cells ("target boxes per rank" in the paper maps to the slab size).
type Config struct {
	N       int // nx = ny
	NZ      int // planes per rank (fine level)
	Ranks   int
	Workers int
	Cycles  int
	Cost    simnet.CostModel
	// Policy selects the HiPER variant's scheduling policy (nil keeps the
	// built-in random-steal). The MPI+OMP reference ignores it.
	Policy core.SchedPolicy
}

func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 16
	}
	if c.NZ == 0 {
		c.NZ = 8
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Cycles == 0 {
		c.Cycles = 3
	}
	return c
}

// Result reports one run.
type Result struct {
	Variant   string
	Ranks     int
	Elapsed   time.Duration
	Residuals []float64 // residual L2 norm after each V-cycle (index 0 = initial)
}

// engine abstracts what differs between the reference hybrid and the
// HiPER variant: ghost exchange, intra-rank parallel plane loops, and the
// global reduction. The multigrid algorithm itself is shared, so the two
// variants compute bit-identical iterates.
type engine interface {
	exchange(c *core.Ctx, li int, l *level, arr []float64)
	planes(c *core.Ctx, l *level, fn func(z int))
	allreduceSum(c *core.Ctx, v float64) float64
}

// haloFill refreshes arr's ghost layer: neighbour planes via the engine's
// exchange, then the odd Dirichlet reflection on global boundary faces.
func haloFill(c *core.Ctx, e engine, li int, l *level, arr []float64) {
	e.exchange(c, li, l, arr)
	l.reflectGhosts(arr)
}

// smooth performs one weighted-Jacobi sweep with a fresh halo.
func smooth(c *core.Ctx, e engine, li int, l *level) {
	haloFill(c, e, li, l, l.u)
	e.planes(c, l, l.smoothPlane)
	e.planes(c, l, l.commitSmoothPlane)
}

// vcycle runs one V-cycle rooted at level li.
func vcycle(c *core.Ctx, e engine, levels []*level, li int) {
	l := levels[li]
	if li == len(levels)-1 {
		for s := 0; s < coarseSweeps; s++ {
			smooth(c, e, li, l)
		}
		return
	}
	for s := 0; s < nu1; s++ {
		smooth(c, e, li, l)
	}
	haloFill(c, e, li, l, l.u)
	e.planes(c, l, l.residualPlane)
	l.restrictTo(levels[li+1])
	vcycle(c, e, levels, li+1)
	// Trilinear prolongation reads coarse ghost cells at slab boundaries.
	haloFill(c, e, li+1, levels[li+1], levels[li+1].u)
	l.prolongFrom(levels[li+1])
	for s := 0; s < nu2; s++ {
		smooth(c, e, li, l)
	}
}

// residualNorm computes the global residual L2 norm on the fine level.
// The local summation is sequential in plane order so every variant gets
// identical rounding.
func residualNorm(c *core.Ctx, e engine, levels []*level) float64 {
	l := levels[0]
	haloFill(c, e, 0, l, l.u)
	e.planes(c, l, l.residualPlane)
	var local float64
	for z := 1; z <= l.nz; z++ {
		local += l.residualNormSqPlane(z)
	}
	return math.Sqrt(e.allreduceSum(c, local))
}

// solve runs cfg.Cycles V-cycles and returns the residual history.
func solve(c *core.Ctx, e engine, levels []*level, cycles int) []float64 {
	hist := []float64{residualNorm(c, e, levels)}
	for k := 0; k < cycles; k++ {
		vcycle(c, e, levels, 0)
		hist = append(hist, residualNorm(c, e, levels))
	}
	return hist
}

// ---------- Reference hybrid: MPI + OpenMP ----------

const (
	tagGhostUp = iota + 10 // times 16 per level below
	tagGhostDown
)

type refEngine struct {
	comm     *mpi.Comm
	team     *omp.Team
	rank     int
	ranks    int
	planeBuf map[int][4][]float64 // per level: sendLo, sendHi; recv raw handled ad hoc
}

func newRefEngine(comm *mpi.Comm, team *omp.Team, rank, ranks int) *refEngine {
	return &refEngine{comm: comm, team: team, rank: rank, ranks: ranks, planeBuf: map[int][4][]float64{}}
}

func (e *refEngine) bufs(li int, ps int) [4][]float64 {
	if b, ok := e.planeBuf[li]; ok {
		return b
	}
	b := [4][]float64{make([]float64, ps), make([]float64, ps), make([]float64, ps), make([]float64, ps)}
	e.planeBuf[li] = b
	return b
}

func (e *refEngine) exchange(_ *core.Ctx, li int, l *level, arr []float64) {
	if e.ranks == 1 {
		return
	}
	ps := l.planeSize()
	b := e.bufs(li, ps)
	sendLo, sendHi := b[0], b[1]
	recvLo := make([]byte, 8*ps)
	recvHi := make([]byte, 8*ps)
	var reqs []*mpi.Request
	tagU := li*16 + tagGhostUp
	tagD := li*16 + tagGhostDown
	if e.rank > 0 {
		l.copyPlaneOut(arr, 1, sendLo)
		reqs = append(reqs,
			e.comm.Isend(mpi.EncodeFloat64s(sendLo), e.rank-1, tagD),
			e.comm.Irecv(recvLo, e.rank-1, tagU))
	}
	if e.rank < e.ranks-1 {
		l.copyPlaneOut(arr, l.nz, sendHi)
		reqs = append(reqs,
			e.comm.Isend(mpi.EncodeFloat64s(sendHi), e.rank+1, tagU),
			e.comm.Irecv(recvHi, e.rank+1, tagD))
	}
	mpi.Waitall(reqs...)
	if e.rank > 0 {
		l.copyPlaneIn(arr, 0, mpi.DecodeFloat64s(recvLo))
	}
	if e.rank < e.ranks-1 {
		l.copyPlaneIn(arr, l.nz+1, mpi.DecodeFloat64s(recvHi))
	}
}

func (e *refEngine) planes(_ *core.Ctx, l *level, fn func(z int)) {
	e.team.ParallelFor(1, l.nz+1, fn)
}

func (e *refEngine) allreduceSum(_ *core.Ctx, v float64) float64 {
	recv := make([]byte, 8)
	e.comm.Allreduce(recv, mpi.EncodeFloat64s([]float64{v}), mpi.SumFloat64)
	return mpi.DecodeFloat64s(recv)[0]
}

// RunReference runs the MPI+OpenMP hybrid.
func RunReference(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	world := mpi.NewWorld(cfg.Ranks, cfg.Cost)
	hists := make([][]float64, cfg.Ranks)

	start := time.Now()
	err := job.RunFlat(cfg.Ranks, func(r int) error {
		levels := buildHierarchy(cfg.N, cfg.N, cfg.NZ, 1.0/float64(cfg.N+1), r, cfg.Ranks)
		initRHS(levels[0], r, cfg.Ranks)
		e := newRefEngine(world.Comm(r), omp.NewTeam(cfg.Workers), r, cfg.Ranks)
		hists[r] = solve(nil, e, levels, cfg.Cycles)
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, err
	}
	return checkResult("mpi+omp", cfg, hists, elapsed)
}

// ---------- HiPER: UPC++ module (halo) + MPI module (reductions) ----------

type hiperEngine struct {
	um    *hiperupcxx.Module
	mm    *hipermpi.Module
	rank  int
	ranks int
	// ghosts[li]: symmetric array of 2 parities × 2 slots × planeSize.
	// Slot 0 holds the ghost arriving from below, slot 1 from above.
	ghosts []*upcxx.SharedArray
	// ctrs[li]: symmetric sequence counters — 2 parities × 2 direction
	// slots — rput by the sender after (chained on) the data rput.
	// Receiving sequence k+1 from a neighbour also proves the neighbour
	// finished READING our exchange-k data, so parity double-buffering
	// needs no barrier. The counters themselves are parity-split too:
	// consecutive counter rputs are independent (unordered) transfers, so
	// exchange k's counter could land AFTER exchange k+1's and regress the
	// value; with parity slots the only writers sharing a slot are
	// exchanges k and k+2, and k+2 cannot be issued until k's counter was
	// observed — so each slot is write-ordered by construction.
	ctrs  []*upcxx.SharedArray
	seq   []int64 // per level: exchanges completed
	bufLo map[int][]float64
	bufHi map[int][]float64
	grain int
}

// waitCtr waits for an inbound sequence counter to reach want, helping
// with other runtime work meanwhile (the chained counter rputs of THIS
// rank are tasks that may need this very worker).
func (e *hiperEngine) waitCtr(c *core.Ctx, a *upcxx.SharedArray, slot int, want float64) {
	c.HelpUntil(func() bool { return a.Peek(e.rank, slot) >= want })
}

func (e *hiperEngine) exchange(c *core.Ctx, li int, l *level, arr []float64) {
	if e.ranks == 1 {
		return
	}
	ps := l.planeSize()
	g := e.ghosts[li]
	ctr := e.ctrs[li]
	k := e.seq[li]
	e.seq[li] = k + 1
	par := int(k % 2)
	base := par * 2 * ps
	cbase := par * 2 // counter parity block: [fromBelow, fromAbove]
	want := float64(k + 1)
	if lo, ok := e.bufLo[li]; !ok || lo == nil {
		e.bufLo[li] = make([]float64, ps)
		e.bufHi[li] = make([]float64, ps)
	}
	sendLo, sendHi := e.bufLo[li], e.bufHi[li]
	if e.rank > 0 {
		l.copyPlaneOut(arr, 1, sendLo)
		// My plane 1 becomes the BELOW-neighbour's from-above ghost (slot 1).
		d := e.um.RPut(c, g, e.rank-1, base+ps, sendLo)
		e.um.RPutAwait(c, ctr, e.rank-1, cbase+1, []float64{want}, d)
	}
	if e.rank < e.ranks-1 {
		l.copyPlaneOut(arr, l.nz, sendHi)
		// My plane nz becomes the ABOVE-neighbour's from-below ghost (slot 0).
		d := e.um.RPut(c, g, e.rank+1, base, sendHi)
		e.um.RPutAwait(c, ctr, e.rank+1, cbase, []float64{want}, d)
	}
	loc := g.Local(e.rank)
	if e.rank > 0 {
		e.waitCtr(c, ctr, cbase, want)
		l.copyPlaneIn(arr, 0, loc[base:base+ps])
	}
	if e.rank < e.ranks-1 {
		e.waitCtr(c, ctr, cbase+1, want)
		l.copyPlaneIn(arr, l.nz+1, loc[base+ps:base+2*ps])
	}
}

func (e *hiperEngine) planes(c *core.Ctx, l *level, fn func(z int)) {
	c.ForasyncSync(core.Range{Lo: 1, Hi: l.nz + 1, Grain: e.grain}, func(_ *core.Ctx, z int) {
		fn(z)
	})
}

func (e *hiperEngine) allreduceSum(c *core.Ctx, v float64) float64 {
	recv := make([]byte, 8)
	e.mm.Allreduce(c, recv, mpi.EncodeFloat64s([]float64{v}), mpi.SumFloat64)
	return mpi.DecodeFloat64s(recv)[0]
}

// RunHiPER runs the HiPER variant (UPC++ + MPI modules composed).
func RunHiPER(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	uworld := upcxx.NewWorld(cfg.Ranks, cfg.Cost)
	mworld := mpi.NewWorld(cfg.Ranks, cfg.Cost)

	// Pre-compute the level shapes (identical on every rank) and allocate
	// the symmetric ghost arrays.
	shapes := buildHierarchy(cfg.N, cfg.N, cfg.NZ, 1.0/float64(cfg.N+1), 0, cfg.Ranks)
	ghosts := make([]*upcxx.SharedArray, len(shapes))
	ctrs := make([]*upcxx.SharedArray, len(shapes))
	for i, l := range shapes {
		ghosts[i] = uworld.AllocShared(2 * 2 * l.planeSize())
		ctrs[i] = uworld.AllocShared(2 * 2) // 2 parities × 2 directions
	}

	umods := make([]*hiperupcxx.Module, cfg.Ranks)
	mmods := make([]*hipermpi.Module, cfg.Ranks)
	hists := make([][]float64, cfg.Ranks)

	start := time.Now()
	err := job.Run(job.Spec{Ranks: cfg.Ranks, WorkersPerRank: cfg.Workers,
		Policy: cfg.Policy, OnStart: func() { start = time.Now() }},
		func(p *job.Proc) error {
			umods[p.Rank] = hiperupcxx.New(uworld.Rank(p.Rank), nil)
			mmods[p.Rank] = hipermpi.New(mworld.Comm(p.Rank), nil)
			if err := modules.Install(p.RT, umods[p.Rank]); err != nil {
				return err
			}
			return modules.Install(p.RT, mmods[p.Rank])
		},
		func(p *job.Proc, c *core.Ctx) {
			r := p.Rank
			levels := buildHierarchy(cfg.N, cfg.N, cfg.NZ, 1.0/float64(cfg.N+1), r, cfg.Ranks)
			initRHS(levels[0], r, cfg.Ranks)
			grain := levels[0].nz / (2 * cfg.Workers)
			if grain < 1 {
				grain = 1
			}
			e := &hiperEngine{
				um: umods[r], mm: mmods[r], rank: r, ranks: cfg.Ranks,
				ghosts: ghosts, ctrs: ctrs, seq: make([]int64, len(ghosts)),
				bufLo: map[int][]float64{}, bufHi: map[int][]float64{},
				grain: grain,
			}
			hists[r] = solve(c, e, levels, cfg.Cycles)
		})
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, err
	}
	return checkResult("hiper", cfg, hists, elapsed)
}

// checkResult validates the residual history: every rank must agree (it is
// a global reduction), and every V-cycle must contract the residual.
func checkResult(variant string, cfg Config, hists [][]float64, elapsed time.Duration) (Result, error) {
	h0 := hists[0]
	for r := 1; r < cfg.Ranks; r++ {
		for i := range h0 {
			if hists[r][i] != h0[i] {
				return Result{}, fmt.Errorf("hpgmg: %s rank %d residual history diverges", variant, r)
			}
		}
	}
	for i := 1; i < len(h0); i++ {
		if !(h0[i] < h0[i-1]) {
			return Result{}, fmt.Errorf("hpgmg: %s V-cycle %d did not contract the residual: %v", variant, i, h0)
		}
	}
	return Result{Variant: variant, Ranks: cfg.Ranks, Elapsed: elapsed, Residuals: h0}, nil
}
