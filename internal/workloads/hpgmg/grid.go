// Package hpgmg implements a miniature HPGMG-FV: geometric multigrid
// V-cycles for the 3D Poisson problem with a finite-volume-style cell
// layout, weak-scaled by distributing the domain in z-slabs across ranks —
// the paper's Figure 4 workload.
//
// Two variants reproduce the paper's comparison:
//
//   - Reference hybrid (MPI+OpenMP): fork-join smoothers, blocking MPI
//     halo exchanges and reductions.
//   - HiPER: the same multigrid, with UPC++-module rputs for the halo
//     exchange, the MPI module for reductions (two communication libraries
//     composed in one application, as HPGMG does in the paper), and
//     forasync smoothers on the unified runtime.
//
// Correctness oracle: each V-cycle must contract the residual norm, and
// both variants must produce identical iterates bit-for-bit.
package hpgmg

import "math"

// level is one multigrid level's local slab: interior nz×ny×nx cells with
// one ghost layer in every direction (x/y ghosts hold the reflected
// Dirichlet boundary — see reflectGhosts; z ghosts are exchanged with
// neighbour ranks, except on the global boundary slabs where they are
// reflected too).
type level struct {
	nx, ny, nz int
	h          float64
	zLo, zHi   bool // slab touches the global z boundary at its low/high end
	u, f, res  []float64
	scratch    []float64
}

func newLevel(nx, ny, nz int, h float64) *level {
	size := (nz + 2) * (ny + 2) * (nx + 2)
	return &level{
		nx: nx, ny: ny, nz: nz, h: h,
		u: make([]float64, size), f: make([]float64, size),
		res: make([]float64, size), scratch: make([]float64, size),
	}
}

// at indexes the padded slab (z, y, x each including ghosts at 0 and n+1).
func (l *level) at(z, y, x int) int {
	return (z*(l.ny+2)+y)*(l.nx+2) + x
}

// planeSize is the interior plane cell count.
func (l *level) planeSize() int { return l.ny * l.nx }

// copyPlaneOut extracts interior plane z into out (ny*nx values).
func (l *level) copyPlaneOut(arr []float64, z int, out []float64) {
	i := 0
	for y := 1; y <= l.ny; y++ {
		row := l.at(z, y, 1)
		copy(out[i:i+l.nx], arr[row:row+l.nx])
		i += l.nx
	}
}

// copyPlaneIn installs vals into ghost plane z.
func (l *level) copyPlaneIn(arr []float64, z int, vals []float64) {
	i := 0
	for y := 1; y <= l.ny; y++ {
		row := l.at(z, y, 1)
		copy(arr[row:row+l.nx], vals[i:i+l.nx])
		i += l.nx
	}
}

// reflectGhosts imposes the homogeneous Dirichlet condition on the global
// boundary faces by odd reflection: ghost = -interior places u = 0 exactly
// on the cell face, independent of the mesh width. (A zero ghost instead
// puts the boundary at the ghost-cell center, h/2 *outside* the face — and
// since h doubles per level, every coarse level then solves a slightly
// larger domain than the fine one, so the coarse-grid correction is
// inconsistent; at N=32 the accumulated mismatch makes V-cycles diverge.)
// x and y faces are always global boundaries (the domain is decomposed in
// z only); z faces are reflected only on the boundary slabs — interior z
// ghosts hold neighbour-rank planes installed by the halo exchange and
// must not be touched.
func (l *level) reflectGhosts(arr []float64) {
	for z := 1; z <= l.nz; z++ {
		for y := 1; y <= l.ny; y++ {
			arr[l.at(z, y, 0)] = -arr[l.at(z, y, 1)]
			arr[l.at(z, y, l.nx+1)] = -arr[l.at(z, y, l.nx)]
		}
		for x := 0; x <= l.nx+1; x++ {
			arr[l.at(z, 0, x)] = -arr[l.at(z, 1, x)]
			arr[l.at(z, l.ny+1, x)] = -arr[l.at(z, l.ny, x)]
		}
	}
	if l.zLo {
		for y := 0; y <= l.ny+1; y++ {
			for x := 0; x <= l.nx+1; x++ {
				arr[l.at(0, y, x)] = -arr[l.at(1, y, x)]
			}
		}
	}
	if l.zHi {
		for y := 0; y <= l.ny+1; y++ {
			for x := 0; x <= l.nx+1; x++ {
				arr[l.at(l.nz+1, y, x)] = -arr[l.at(l.nz, y, x)]
			}
		}
	}
}

// applyOperatorCell computes (A u)(z,y,x) for the 7-point Poisson operator
// A = -∆ with mesh width h.
func (l *level) applyOperatorCell(u []float64, z, y, x int) float64 {
	i := l.at(z, y, x)
	h2 := l.h * l.h
	return (6*u[i] - u[l.at(z-1, y, x)] - u[l.at(z+1, y, x)] -
		u[l.at(z, y-1, x)] - u[l.at(z, y+1, x)] -
		u[l.at(z, y, x-1)] - u[l.at(z, y, x+1)]) / h2
}

// smoothPlane performs one weighted-Jacobi update of interior plane z,
// reading u, writing scratch. omega = 2/3 is the standard choice.
const omega = 2.0 / 3.0

func (l *level) smoothPlane(z int) {
	h2 := l.h * l.h
	for y := 1; y <= l.ny; y++ {
		for x := 1; x <= l.nx; x++ {
			i := l.at(z, y, x)
			au := l.applyOperatorCell(l.u, z, y, x)
			l.scratch[i] = l.u[i] + omega*(l.f[i]-au)*h2/6
		}
	}
}

// commitSmooth copies scratch interior back into u for planes [1, nz].
func (l *level) commitSmoothPlane(z int) {
	for y := 1; y <= l.ny; y++ {
		row := l.at(z, y, 1)
		copy(l.u[row:row+l.nx], l.scratch[row:row+l.nx])
	}
}

// residualPlane computes res = f - A u for interior plane z.
func (l *level) residualPlane(z int) {
	for y := 1; y <= l.ny; y++ {
		for x := 1; x <= l.nx; x++ {
			i := l.at(z, y, x)
			l.res[i] = l.f[i] - l.applyOperatorCell(l.u, z, y, x)
		}
	}
}

// residualNormSqPlane returns the squared L2 norm of res over plane z.
func (l *level) residualNormSqPlane(z int) float64 {
	var s float64
	for y := 1; y <= l.ny; y++ {
		for x := 1; x <= l.nx; x++ {
			v := l.res[l.at(z, y, x)]
			s += v * v
		}
	}
	return s
}

// restrictTo computes coarse.f = full-weighting (8-cell average) of this
// level's residual, and zeroes coarse.u. Fine dims must be even.
func (l *level) restrictTo(coarse *level) {
	for Z := 1; Z <= coarse.nz; Z++ {
		for Y := 1; Y <= coarse.ny; Y++ {
			for X := 1; X <= coarse.nx; X++ {
				var s float64
				for dz := 0; dz < 2; dz++ {
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							s += l.res[l.at(2*Z-1+dz, 2*Y-1+dy, 2*X-1+dx)]
						}
					}
				}
				ci := coarse.at(Z, Y, X)
				coarse.f[ci] = s / 8
				coarse.u[ci] = 0
			}
		}
	}
}

// prolongFrom adds the coarse correction into this level's u by trilinear
// (cell-centered) interpolation: each fine cell blends its parent coarse
// cell (weight 3/4 per axis) with the nearest coarse neighbour (1/4 per
// axis). The caller refreshes coarse ghosts first (halo exchange +
// reflectGhosts), so boundary-adjacent fine cells interpolate against the
// odd reflection and the correction vanishes on the face, matching the
// Dirichlet condition the error equation satisfies.
func (l *level) prolongFrom(coarse *level) {
	axis := func(fine int) (parent, neigh int, wp, wn float64) {
		parent = (fine + 1) / 2
		if fine%2 == 1 {
			neigh = parent - 1
		} else {
			neigh = parent + 1
		}
		return parent, neigh, 0.75, 0.25
	}
	for z := 1; z <= l.nz; z++ {
		Zp, Zn, wzp, wzn := axis(z)
		for y := 1; y <= l.ny; y++ {
			Yp, Yn, wyp, wyn := axis(y)
			for x := 1; x <= l.nx; x++ {
				Xp, Xn, wxp, wxn := axis(x)
				var e float64
				for _, zc := range [2]struct {
					i int
					w float64
				}{{Zp, wzp}, {Zn, wzn}} {
					for _, yc := range [2]struct {
						i int
						w float64
					}{{Yp, wyp}, {Yn, wyn}} {
						for _, xc := range [2]struct {
							i int
							w float64
						}{{Xp, wxp}, {Xn, wxn}} {
							e += zc.w * yc.w * xc.w * coarse.u[coarse.at(zc.i, yc.i, xc.i)]
						}
					}
				}
				l.u[l.at(z, y, x)] += e
			}
		}
	}
}

// buildHierarchy constructs the per-rank level stack: the fine level plus
// coarser levels halving every dimension while the local slab stays
// divisible and meaningfully sized. rank/ranks mark which slabs own the
// global z boundary faces (reflectGhosts needs to know).
func buildHierarchy(nx, ny, nz int, h float64, rank, ranks int) []*level {
	var levels []*level
	for {
		l := newLevel(nx, ny, nz, h)
		l.zLo = rank == 0
		l.zHi = rank == ranks-1
		levels = append(levels, l)
		if nx%2 != 0 || ny%2 != 0 || nz%2 != 0 || nx < 4 || ny < 4 || nz < 4 {
			break
		}
		nx, ny, nz = nx/2, ny/2, nz/2
		h *= 2
	}
	return levels
}

// initRHS fills the fine level's right-hand side with a deterministic
// smooth source field based on global coordinates (rank r of R slabs).
func initRHS(l *level, rank, ranks int) {
	globalNZ := ranks * l.nz
	for z := 1; z <= l.nz; z++ {
		gz := rank*l.nz + z
		for y := 1; y <= l.ny; y++ {
			for x := 1; x <= l.nx; x++ {
				fx := math.Sin(math.Pi * float64(x) / float64(l.nx+1))
				fy := math.Sin(math.Pi * float64(y) / float64(l.ny+1))
				fz := math.Sin(math.Pi * float64(gz) / float64(globalNZ+1))
				l.f[l.at(z, y, x)] = fx * fy * fz
			}
		}
	}
}
