package hpgmg

import (
	"testing"
	"time"

	"repro/internal/simnet"
)

func testCfg(ranks int) Config {
	return Config{N: 16, NZ: 8, Ranks: ranks, Workers: 2, Cycles: 3,
		Cost: simnet.CostModel{Alpha: 30 * time.Microsecond}}
}

func TestHierarchyShapes(t *testing.T) {
	levels := buildHierarchy(16, 16, 8, 1.0/17, 0, 1)
	if len(levels) < 2 {
		t.Fatalf("hierarchy too shallow: %d levels", len(levels))
	}
	for i := 1; i < len(levels); i++ {
		if levels[i].nx*2 != levels[i-1].nx || levels[i].nz*2 != levels[i-1].nz {
			t.Fatalf("level %d not a 2x coarsening", i)
		}
		if levels[i].h != 2*levels[i-1].h {
			t.Fatalf("level %d mesh width not doubled", i)
		}
	}
}

func TestPlaneCopyRoundTrip(t *testing.T) {
	l := newLevel(6, 5, 4, 1)
	for i := range l.u {
		l.u[i] = float64(i)
	}
	buf := make([]float64, l.planeSize())
	l.copyPlaneOut(l.u, 2, buf)
	l2 := newLevel(6, 5, 4, 1)
	l2.copyPlaneIn(l2.u, 2, buf)
	for y := 1; y <= 5; y++ {
		for x := 1; x <= 6; x++ {
			if l2.u[l2.at(2, y, x)] != l.u[l.at(2, y, x)] {
				t.Fatal("plane codec mismatch")
			}
		}
	}
	// Ghost columns untouched.
	if l2.u[l2.at(2, 0, 3)] != 0 {
		t.Fatal("plane copy wrote ghost column")
	}
}

func TestOperatorOnLinearFunction(t *testing.T) {
	// A u = -∆u; for u = constant, A u must be 0 away from boundaries.
	l := newLevel(8, 8, 8, 0.5)
	for i := range l.u {
		l.u[i] = 3.5
	}
	if got := l.applyOperatorCell(l.u, 4, 4, 4); got != 0 {
		t.Fatalf("A(const) = %v, want 0", got)
	}
}

func TestSmootherReducesResidualSingleLevel(t *testing.T) {
	l := newLevel(8, 8, 8, 1.0/9)
	initRHS(l, 0, 1)
	norm := func() float64 {
		var s float64
		for z := 1; z <= l.nz; z++ {
			l.residualPlane(z)
			s += l.residualNormSqPlane(z)
		}
		return s
	}
	before := norm()
	for sweep := 0; sweep < 20; sweep++ {
		for z := 1; z <= l.nz; z++ {
			l.smoothPlane(z)
		}
		for z := 1; z <= l.nz; z++ {
			l.commitSmoothPlane(z)
		}
	}
	after := norm()
	if !(after < before/2) {
		t.Fatalf("Jacobi sweeps did not reduce residual: %v -> %v", before, after)
	}
}

func TestRestrictProlongShapes(t *testing.T) {
	fine := newLevel(8, 8, 8, 1)
	coarse := newLevel(4, 4, 4, 2)
	for i := range fine.res {
		fine.res[i] = 1
	}
	fine.restrictTo(coarse)
	if got := coarse.f[coarse.at(2, 2, 2)]; got != 1 {
		t.Fatalf("restriction of constant = %v, want 1", got)
	}
	// A constant coarse correction must prolong to (nearly) the same
	// constant in cells whose trilinear stencil stays interior.
	for Z := 1; Z <= coarse.nz; Z++ {
		for Y := 1; Y <= coarse.ny; Y++ {
			for X := 1; X <= coarse.nx; X++ {
				coarse.u[coarse.at(Z, Y, X)] = 2
			}
		}
	}
	fine.prolongFrom(coarse)
	if got := fine.u[fine.at(4, 4, 4)]; got != 2 {
		t.Fatalf("interior prolongation of constant = %v, want 2", got)
	}
	// Boundary-adjacent fine cells blend with the zero ghost: weight
	// 0.75 on the boundary axis.
	if got := fine.u[fine.at(1, 4, 4)]; got != 2*0.75+0 {
		t.Fatalf("edge prolongation = %v, want 1.5", got)
	}
}

func TestReferenceSolveContracts(t *testing.T) {
	res, err := RunReference(testCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Residuals[0], res.Residuals[len(res.Residuals)-1]
	// Cell-centered MG with 8-point-average restriction, trilinear
	// prolongation and Jacobi(2,2) contracts ~0.5x per cycle.
	if !(last < first/5) {
		t.Fatalf("3 V-cycles reduced residual only %vx (%v -> %v)", first/last, first, last)
	}
}

func TestHiPERSolveContracts(t *testing.T) {
	res, err := RunHiPER(testCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Residuals[0], res.Residuals[len(res.Residuals)-1]
	if !(last < first/5) {
		t.Fatalf("3 V-cycles reduced residual only %vx", first/last)
	}
}

func TestVariantsBitIdentical(t *testing.T) {
	cfg := testCfg(3)
	a, err := RunReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunHiPER(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Residuals) != len(b.Residuals) {
		t.Fatal("history length mismatch")
	}
	for i := range a.Residuals {
		if a.Residuals[i] != b.Residuals[i] {
			t.Fatalf("residual %d differs: %v vs %v", i, a.Residuals[i], b.Residuals[i])
		}
	}
}

// TestFullScaleShapeContracts pins the Fig4 -full shape (N=32, NZ=16): the
// 4-deep hierarchy diverged when ghost cells held a plain zero (the
// Dirichlet boundary then sat h/2 outside the face, a domain that grew with
// every coarsening — see reflectGhosts). Guard the fix at the exact shape.
func TestFullScaleShapeContracts(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale shape is slow")
	}
	res, err := RunReference(Config{N: 32, NZ: 16, Ranks: 2, Workers: 2, Cycles: 3,
		Cost: simnet.CostModel{Alpha: 30 * time.Microsecond}})
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Residuals[0], res.Residuals[len(res.Residuals)-1]
	if !(last < first/5) {
		t.Fatalf("full-scale shape contracts too slowly: %v", res.Residuals)
	}
}

func TestSingleRank(t *testing.T) {
	res, err := RunHiPER(testCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Residuals) != 4 {
		t.Fatalf("history = %v", res.Residuals)
	}
}
