package isx

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/hiperckpt"
	"repro/internal/job"
	"repro/internal/modules"
	"repro/internal/shmem"
	"repro/internal/simnet"
)

// Supervised ISx: the unscripted counterpart of the elastic sort. The
// same fixed logical key streams and the same per-phase byte-identical
// digest proof, but nothing tells the driver which rank dies or when —
// a seeded KillPlan crashes endpoints opaquely, a failed attempt's
// digest mismatch is the only symptom, and job.Supervise recovers via
// phi-accrual detection, checkpoint rollback, remap, and (when spares
// run out) graceful eviction.
//
// Checkpoints are two-slot. Each attempt the body writes its advanced
// accumulator to the rank's PENDING key — possibly garbage, since the
// attempt has not been verified yet. Commit (after the digest proof)
// promotes pending to COMMITTED; rollback discards every pending blob
// and wipes in-memory state, so the next attempt restores all ranks
// from the last committed phase. That two-slot protocol is what keeps a
// failed attempt's corruption out of the recovery path.

// pendingSuffix/committedSuffix name the two checkpoint slots.
const (
	isxCommitted = "isx-state"
	isxPending   = "isx-pending"
)

// SuperviseConfig parameterizes a supervised elastic sort.
type SuperviseConfig struct {
	Streams       int
	KeysPerStream int
	Ranks         int // initial logical ranks
	Capacity      int // table capacity; the transport is sized Capacity+1 (monitor)
	Phases        int
	Seed          int64
	Cost          simnet.CostModel
	Plan          fabric.FaultPlan
	Rel           fabric.RelConfig
	Det           fabric.DetectorConfig // Monitor is set by the driver
	Kills         job.KillPlan
	// Inject, when set, replaces Kills as the fault source: it receives
	// the live table and a kill function and returns the per-attempt
	// injector. Tests use it to target a specific rank and compare the
	// detector-observed recovery against a scripted one.
	Inject        func(tab *fabric.EpochTable, kill func(ep int)) func(phase, attempt int)
	Workers       int
	MinRanks      int
	RestartBudget int
	MaxAttempts   int
}

// SuperviseResult reports one supervised run. Report is always
// populated, including on escalation errors.
type SuperviseResult struct {
	Variant    string
	PhaseTimes []time.Duration
	Digests    []uint64 // per committed phase
	TotalKeys  int64
	Report     *job.RecoveryReport
}

// RunSupervised runs the sort under detector-driven recovery and
// verifies every committed phase byte-identical to the fabric-free
// reference.
func RunSupervised(cfg SuperviseConfig) (SuperviseResult, error) {
	res := SuperviseResult{Variant: "supervised-shmem", Report: &job.RecoveryReport{}}
	if cfg.Streams <= 0 || cfg.KeysPerStream <= 0 || cfg.Ranks < 2 || cfg.Phases <= 0 {
		return res, fmt.Errorf("isx: supervised config incomplete: %+v", cfg)
	}
	if cfg.Capacity < cfg.Ranks {
		cfg.Capacity = cfg.Ranks * 2
	}
	totalKeys := cfg.Streams * cfg.KeysPerStream
	maxKey := int64(totalKeys)
	ecfg := ElasticConfig{Streams: cfg.Streams, KeysPerStream: cfg.KeysPerStream, Seed: cfg.Seed}

	// The transport carries Capacity application endpoints plus one
	// monitor endpoint the heartbeats originate from; the epoch table —
	// and therefore every application link — never touches the monitor.
	tab := fabric.NewEpochTable(cfg.Ranks, cfg.Capacity)
	chaos := fabric.NewChaos(fabric.NewSim(cfg.Capacity+1, cfg.Cost), cfg.Plan)
	rel := fabric.NewReliable(chaos, cfg.Rel)
	vt := fabric.NewVirtual(rel, tab)
	world := shmem.NewWorldOver(vt)
	cfg.Det.Monitor = cfg.Capacity
	det := fabric.NewDetector(chaos, cfg.Det) // raw chaos: drops are real

	recvBuf := world.AllocInt64(totalKeys)
	recvCnt := world.AllocInt64(1)
	store := hiperckpt.NewStore(hiperckpt.StoreConfig{})

	buckets := make([][]int64, cfg.Capacity)
	priv := make([][]float64, cfg.Capacity)
	mods := make([]*hiperckpt.Module, cfg.Capacity)

	var expectSorted, expectDigest float64

	var errMu sync.Mutex
	var phaseErr error
	fail := func(err error) {
		errMu.Lock()
		if phaseErr == nil {
			phaseErr = err
		}
		errMu.Unlock()
	}

	resetScratch := func() {
		for r := 0; r < cfg.Capacity; r++ {
			recvCnt.Local(r)[0] = 0
			buckets[r] = nil
		}
	}

	kill := func(ep int) { chaos.Kill(ep) }
	inject := cfg.Kills.Injector(tab, kill)
	if cfg.Inject != nil {
		inject = cfg.Inject(tab, kill)
	}
	spec := job.SuperviseSpec{
		WorkersPerRank: cfg.Workers,
		NVM:            true,
		Table:          tab,
		Detector:       det,
		Phases:         cfg.Phases,
		MinRanks:       cfg.MinRanks,
		RestartBudget:  cfg.RestartBudget,
		MaxAttempts:    cfg.MaxAttempts,
		Inject:         inject,
	}

	spec.OnRollback = func(phase, attempt int, suspects []int) {
		// Discard the attempt wholesale: clear the sticky error, wipe
		// every rank's in-memory state and pending checkpoint, reset the
		// shared scratch. The next attempt restores from committed.
		errMu.Lock()
		phaseErr = nil
		errMu.Unlock()
		for r := 0; r < cfg.Capacity; r++ {
			priv[r] = nil
			store.DeleteBlob(hiperckpt.RankKey(r, isxPending))
		}
		resetScratch()
	}

	spec.OnCommit = func(phase int) error {
		for r := 0; r < tab.Ranks(); r++ {
			pkey := hiperckpt.RankKey(r, isxPending)
			blob, ok := store.ReadBlob(pkey)
			if !ok {
				return fmt.Errorf("isx: phase %d rank %d verified but has no pending checkpoint", phase, r)
			}
			if err := store.WriteBlob(hiperckpt.RankKey(r, isxCommitted), blob); err != nil {
				return err
			}
			store.DeleteBlob(pkey)
		}
		return nil
	}

	spec.OnEvent = func(ev job.ElasticEvent, oldEp, freshEp int) {
		switch ev.Kind {
		case "kill":
			priv[ev.Rank] = nil
		case "shrink":
			// Eviction dropped the top logical rank; fold its committed
			// state into the survivor owning its slot — the same
			// redistribution protocol the scripted shrink uses.
			newRanks := tab.Ranks()
			for d := newRanks; d < newRanks+ev.Delta; d++ {
				key := hiperckpt.RankKey(d, isxCommitted)
				blob, ok := store.ReadBlob(key)
				if !ok {
					continue
				}
				t := d % newRanks
				tkey := hiperckpt.RankKey(t, isxCommitted)
				tb, _ := store.ReadBlob(tkey)
				if tb == nil {
					tb = []float64{0, 0}
				}
				tb[0] += blob[0]
				tb[1] += blob[1]
				if err := store.WriteBlob(tkey, tb); err == nil {
					store.DeleteBlob(key)
				}
				priv[d] = nil
			}
		}
	}

	var phaseStart time.Time
	spec.AfterPhase = func(phase int) error {
		errMu.Lock()
		err := phaseErr
		errMu.Unlock()
		if err != nil {
			return err
		}
		ranks := tab.Ranks()
		h := uint64(0)
		var got int
		for r := 0; r < ranks; r++ {
			h = fnv1a64(h, buckets[r])
			got += len(buckets[r])
		}
		if got != totalKeys {
			return fmt.Errorf("isx: phase %d sorted %d keys, want %d", phase, got, totalKeys)
		}
		if want := referenceSortDigest(ecfg, phase, maxKey); h != want {
			return fmt.Errorf("isx: phase %d digest %#x != reference %#x (result not byte-identical)", phase, h, want)
		}
		// Verified: record the phase and accrue the balance expectation
		// (commit promotes the checkpoints right after we return nil).
		for r := 0; r < ranks; r++ {
			expectDigest += fold48(fnv1a64(0, buckets[r]))
		}
		res.Digests = append(res.Digests, h)
		res.PhaseTimes = append(res.PhaseTimes, time.Since(phaseStart))
		res.TotalKeys += int64(got)
		expectSorted += float64(totalKeys)
		resetScratch()
		return nil
	}

	setup := func(p *job.Proc) error {
		if p.Rank == 0 {
			phaseStart = time.Now()
		}
		mods[p.Rank] = hiperckpt.New(store)
		return modules.Install(p.RT, mods[p.Rank])
	}

	body := func(p *job.Proc, c *core.Ctx) {
		r := p.Rank
		ranks := world.Size()
		pe := world.PE(r)
		m := mods[r]

		// Recover or initialize. Restored is set on every rank after a
		// rollback; a rank with no committed checkpoint yet (phase 0
		// failed before anything committed) starts from zero — phase 0
		// is recomputed from the seed, so nothing is lost.
		st := priv[r]
		if p.Restored {
			if st != nil {
				fail(fmt.Errorf("isx: rank %d restored but memory survived the rollback", r))
			}
			if blob, ok := m.Restore(c, hiperckpt.RankKey(r, isxCommitted)); ok {
				st = blob
			}
		}
		if st == nil {
			st = []float64{0, 0}
		}

		for s := r; s < cfg.Streams; s += ranks {
			keys := streamKeys(cfg.Seed, s, p.Phase, cfg.KeysPerStream, maxKey)
			chunks := make([][]int64, ranks)
			for _, k := range keys {
				o := keyOwner(maxKey, ranks, k)
				chunks[o] = append(chunks[o], k)
			}
			for dst := 0; dst < ranks; dst++ {
				if len(chunks[dst]) == 0 {
					continue
				}
				off := pe.FetchAdd(recvCnt, dst, 0, int64(len(chunks[dst])))
				pe.Put(recvBuf, dst, int(off), chunks[dst])
			}
		}
		pe.BarrierAll()

		cnt := int(recvCnt.Local(r)[0])
		mine := append([]int64(nil), recvBuf.Local(r)[:cnt]...)
		lo, hi := bucketBounds(maxKey, ranks, r)
		countingSort(mine, lo, hi-lo)
		if err := verifyRange(r, mine, lo, hi); err != nil {
			fail(err)
			return
		}
		buckets[r] = mine

		// Advance the accumulator and persist it to the PENDING slot —
		// this attempt is not yet verified, and the commit protocol is
		// what keeps a corrupt attempt out of the committed state.
		st[0] += float64(cnt)
		st[1] += fold48(fnv1a64(0, mine))
		priv[r] = st
		f := m.CheckpointAsync(c, hiperckpt.RankKey(r, isxPending), st)
		c.Wait(f)
	}

	rep, err := job.Supervise(spec, setup, body)
	res.Report = rep
	if err != nil {
		return res, err
	}
	if phaseErr != nil {
		return res, phaseErr
	}

	// Global balance: per-rank accumulators, however remapped and
	// evicted, must sum to exactly what the committed phases produced.
	var gotSorted, gotDigest float64
	for r := 0; r < cfg.Capacity; r++ {
		if priv[r] != nil {
			gotSorted += priv[r][0]
			gotDigest += priv[r][1]
		}
	}
	if gotSorted != expectSorted || gotDigest != expectDigest {
		return res, fmt.Errorf(
			"isx: accumulator imbalance after supervision: sorted %v/%v digest %v/%v",
			gotSorted, expectSorted, gotDigest, expectDigest)
	}
	return res, nil
}
