// Package isx implements the ISx integer sort benchmark (Hanebutte &
// Hemstad, PGAS 2015), the paper's Figure 5 workload.
//
// ISx is a bucket sort: every PE generates uniform random keys, exchanges
// them so PE i receives all keys in bucket i (a global all-to-all built
// from atomic fetch-adds to reserve remote space plus one-sided puts), and
// then sorts its bucket locally with a counting sort.
//
// Three variants reproduce the paper's comparison:
//
//   - Flat OpenSHMEM: one single-threaded PE per core. Fastest at small
//     scale, but the R² message all-to-all collapses under congestion as
//     the job grows — the effect visible at 512/1024 nodes in the paper.
//   - OpenSHMEM+OpenMP: one PE per "node", OpenMP-style fork-join
//     parallelism inside. Fewer, bigger messages; intra-node fork-join
//     overhead at small scale.
//   - HiPER (AsyncSHMEM): same decomposition as the hybrid, but bucket
//     exchange and local work are HiPER tasks composed with futures, so
//     communication overlaps the remaining local work.
package isx

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hipershmem"
	"repro/internal/job"
	"repro/internal/modules"
	"repro/internal/omp"
	"repro/internal/shmem"
	"repro/internal/simnet"
)

// Config parameterizes a run. Weak scaling: KeysPerPE is per *core*; the
// hybrid variants multiply by Threads per rank so total work matches the
// flat variant at equal core counts.
type Config struct {
	PEs       int // total cores (= flat PEs; hybrids use PEs/Threads ranks)
	Threads   int // threads per rank for hybrid/HiPER variants
	KeysPerPE int
	Cost      simnet.CostModel
	Seed      int64
	// BufSlack oversizes the symmetric receive buffer relative to the
	// expected per-bucket key count (default 3x), absorbing imbalance.
	BufSlack float64
}

func (c Config) slack() float64 {
	if c.BufSlack <= 0 {
		return 3
	}
	return c.BufSlack
}

// Result reports one run.
type Result struct {
	Variant   string
	Ranks     int // communicating entities (PEs or hybrid ranks)
	Elapsed   time.Duration
	TotalKeys int64
}

// splitmix64 is the key generator (deterministic per seed).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// genKeys produces n uniform keys in [0, maxKey) for a logical stream id.
func genKeys(seed int64, stream, n int, maxKey int64) []int64 {
	keys := make([]int64, n)
	s := uint64(seed)*0x100000001B3 + uint64(stream+1)*0x9E3779B97F4A7C15
	for i := range keys {
		s = splitmix64(s)
		keys[i] = int64(s % uint64(maxKey))
	}
	return keys
}

// bucketizeSeq partitions keys by destination bucket: returns, per bucket,
// the contiguous keys bound for it (counting-sort arrangement).
func bucketizeSeq(keys []int64, buckets int, bucketSize int64) ([][]int64, []int) {
	counts := make([]int, buckets)
	for _, k := range keys {
		counts[int(k/bucketSize)]++
	}
	out := make([][]int64, buckets)
	for b := range out {
		out[b] = make([]int64, 0, counts[b])
	}
	for _, k := range keys {
		b := int(k / bucketSize)
		out[b] = append(out[b], k)
	}
	return out, counts
}

// countingSort sorts keys known to lie in [lo, lo+width) in O(n + width).
func countingSort(keys []int64, lo, width int64) {
	counts := make([]int32, width)
	for _, k := range keys {
		counts[k-lo]++
	}
	i := 0
	for v := int64(0); v < width; v++ {
		for c := counts[v]; c > 0; c-- {
			keys[i] = lo + v
			i++
		}
	}
}

// verifyBucket checks PE me's received keys: all inside its bucket range
// and sorted ascending.
func verifyBucket(me int, keys []int64, bucketSize int64) error {
	lo := int64(me) * bucketSize
	hi := lo + bucketSize
	prev := lo
	for i, k := range keys {
		if k < lo || k >= hi {
			return fmt.Errorf("isx: PE %d key %d out of bucket range [%d,%d)", me, k, lo, hi)
		}
		if k < prev {
			return fmt.Errorf("isx: PE %d keys not sorted at %d", me, i)
		}
		prev = k
	}
	return nil
}

// exchange is the ISx all-to-all kernel for one PE: reserve space with
// fetch-add, put the bucket, then synchronize.
type exchangeCtx struct {
	world   *shmem.World
	recvBuf *shmem.Int64Array
	recvCnt *shmem.Int64Array
	total   *shmem.Int64Array // verification: global key count
}

func newExchange(world *shmem.World, capPerPE int) *exchangeCtx {
	return &exchangeCtx{
		world:   world,
		recvBuf: world.AllocInt64(capPerPE),
		recvCnt: world.AllocInt64(1),
		total:   world.AllocInt64(1),
	}
}

// RunFlat runs the flat OpenSHMEM variant: cfg.PEs single-threaded PEs.
func RunFlat(cfg Config) (Result, error) {
	npes := cfg.PEs
	n := cfg.KeysPerPE
	maxKey := int64(npes) * int64(n)
	bucketSize := int64(n)
	world := shmem.NewWorld(npes, cfg.Cost)
	ex := newExchange(world, int(float64(n)*cfg.slack()))

	start := time.Now()
	err := job.RunFlat(npes, func(r int) error {
		pe := world.PE(r)
		keys := genKeys(cfg.Seed, r, n, maxKey)
		chunks, _ := bucketizeSeq(keys, npes, bucketSize)
		for dst := 0; dst < npes; dst++ {
			if len(chunks[dst]) == 0 {
				continue
			}
			off := pe.FetchAdd(ex.recvCnt, dst, 0, int64(len(chunks[dst])))
			pe.Put(ex.recvBuf, dst, int(off), chunks[dst])
		}
		pe.Add(ex.total, 0, 0, int64(len(keys)))
		pe.BarrierAll()
		cnt := int(ex.recvCnt.Local(r)[0])
		mine := ex.recvBuf.Local(r)[:cnt]
		countingSort(mine, int64(r)*bucketSize, bucketSize)
		return verifyBucket(r, mine, bucketSize)
	})
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, err
	}
	if got := ex.total.Local(0)[0]; got != int64(npes)*int64(n) {
		return Result{}, fmt.Errorf("isx: flat lost keys: %d != %d", got, int64(npes)*int64(n))
	}
	return Result{Variant: "flat-shmem", Ranks: npes, Elapsed: elapsed, TotalKeys: int64(npes) * int64(n)}, nil
}

// RunHybridOMP runs the OpenSHMEM+OpenMP variant: PEs/Threads ranks, each
// with an OpenMP team of Threads.
func RunHybridOMP(cfg Config) (Result, error) {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	ranks := cfg.PEs / cfg.Threads
	if ranks == 0 {
		ranks = 1
	}
	nPerRank := cfg.KeysPerPE * cfg.Threads
	maxKey := int64(ranks) * int64(nPerRank)
	bucketSize := int64(nPerRank)
	world := shmem.NewWorld(ranks, cfg.Cost)
	ex := newExchange(world, int(float64(nPerRank)*cfg.slack()))

	start := time.Now()
	err := job.RunFlat(ranks, func(r int) error {
		pe := world.PE(r)
		team := omp.NewTeam(cfg.Threads)
		keys := genKeys(cfg.Seed, r, nPerRank, maxKey)

		// Parallel bucketize: per-thread partial bucketization, merged by
		// the master (the fork-join structure of the OpenMP original).
		parts := make([][][]int64, cfg.Threads)
		team.Parallel(func(tid int) {
			lo := tid * nPerRank / cfg.Threads
			hi := (tid + 1) * nPerRank / cfg.Threads
			parts[tid], _ = bucketizeSeq(keys[lo:hi], ranks, bucketSize)
		})
		chunks := make([][]int64, ranks)
		for dst := 0; dst < ranks; dst++ {
			for tid := 0; tid < cfg.Threads; tid++ {
				chunks[dst] = append(chunks[dst], parts[tid][dst]...)
			}
		}
		// Master-thread communication (OpenMP master region).
		for dst := 0; dst < ranks; dst++ {
			if len(chunks[dst]) == 0 {
				continue
			}
			off := pe.FetchAdd(ex.recvCnt, dst, 0, int64(len(chunks[dst])))
			pe.Put(ex.recvBuf, dst, int(off), chunks[dst])
		}
		pe.Add(ex.total, 0, 0, int64(len(keys)))
		pe.BarrierAll()
		cnt := int(ex.recvCnt.Local(r)[0])
		mine := ex.recvBuf.Local(r)[:cnt]
		parallelCountingSort(team, mine, int64(r)*bucketSize, bucketSize)
		return verifyBucket(r, mine, bucketSize)
	})
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, err
	}
	total := int64(ranks) * int64(nPerRank)
	if got := ex.total.Local(0)[0]; got != total {
		return Result{}, fmt.Errorf("isx: hybrid lost keys: %d != %d", got, total)
	}
	return Result{Variant: "shmem+omp", Ranks: ranks, Elapsed: elapsed, TotalKeys: total}, nil
}

// parallelCountingSort is the team-parallel counting sort used by the
// hybrid: parallel count, sequential prefix, parallel write-back by value
// range.
func parallelCountingSort(team *omp.Team, keys []int64, lo, width int64) {
	t := team.Size()
	partial := make([][]int32, t)
	team.Parallel(func(tid int) {
		cnt := make([]int32, width)
		s := tid * len(keys) / t
		e := (tid + 1) * len(keys) / t
		for _, k := range keys[s:e] {
			cnt[k-lo]++
		}
		partial[tid] = cnt
	})
	counts := make([]int64, width)
	for v := int64(0); v < width; v++ {
		for tid := 0; tid < t; tid++ {
			counts[v] += int64(partial[tid][v])
		}
	}
	starts := make([]int64, width+1)
	for v := int64(0); v < width; v++ {
		starts[v+1] = starts[v] + counts[v]
	}
	team.Parallel(func(tid int) {
		vlo := int64(tid) * width / int64(t)
		vhi := int64(tid+1) * width / int64(t)
		for v := vlo; v < vhi; v++ {
			for i := starts[v]; i < starts[v+1]; i++ {
				keys[i] = lo + v
			}
		}
	})
}

// RunHiPER runs the AsyncSHMEM variant: PEs/Threads HiPER runtimes with
// Threads workers each; the bucket exchange issues each destination's
// fetch-add + put as its own task so communication overlaps local work.
func RunHiPER(cfg Config) (Result, error) {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	ranks := cfg.PEs / cfg.Threads
	if ranks == 0 {
		ranks = 1
	}
	nPerRank := cfg.KeysPerPE * cfg.Threads
	maxKey := int64(ranks) * int64(nPerRank)
	bucketSize := int64(nPerRank)
	world := shmem.NewWorld(ranks, cfg.Cost)
	ex := newExchange(world, int(float64(nPerRank)*cfg.slack()))
	mods := make([]*hipershmem.Module, ranks)
	errs := make([]error, ranks)

	start := time.Now()
	err := job.Run(job.Spec{Ranks: ranks, WorkersPerRank: cfg.Threads,
		OnStart: func() { start = time.Now() }},
		func(p *job.Proc) error {
			mods[p.Rank] = hipershmem.New(world.PE(p.Rank), nil)
			return modules.Install(p.RT, mods[p.Rank])
		},
		func(p *job.Proc, c *core.Ctx) {
			r := p.Rank
			m := mods[r]
			keys := genKeys(cfg.Seed, r, nPerRank, maxKey)

			// Bucketize in parallel HiPER tasks (tree split, like the
			// hybrid's team but without fork-join barriers).
			parts := make([][][]int64, cfg.Threads)
			c.ForasyncSync(core.Range{Lo: 0, Hi: cfg.Threads, Grain: 1}, func(_ *core.Ctx, tid int) {
				lo := tid * nPerRank / cfg.Threads
				hi := (tid + 1) * nPerRank / cfg.Threads
				parts[tid], _ = bucketizeSeq(keys[lo:hi], ranks, bucketSize)
			})
			chunks := make([][]int64, ranks)
			for dst := 0; dst < ranks; dst++ {
				for tid := 0; tid < cfg.Threads; tid++ {
					chunks[dst] = append(chunks[dst], parts[tid][dst]...)
				}
			}
			// Asynchronous exchange: each destination is an independent
			// task chaining fetch-add -> put; all overlap.
			c.Finish(func(c *core.Ctx) {
				for dst := 0; dst < ranks; dst++ {
					if len(chunks[dst]) == 0 {
						continue
					}
					dst := dst
					fOff := m.FetchAddFuture(c, ex.recvCnt, dst, 0, int64(len(chunks[dst])))
					c.AsyncAwait(func(cc *core.Ctx) {
						off := fOff.Get().(int64)
						m.Put(cc, ex.recvBuf, dst, int(off), chunks[dst])
					}, fOff)
				}
			})
			m.Add(c, ex.total, 0, 0, int64(len(keys)))
			m.BarrierAll(c)
			cnt := int(ex.recvCnt.Local(r)[0])
			mine := ex.recvBuf.Local(r)[:cnt]
			hiperCountingSort(c, cfg.Threads, mine, int64(r)*bucketSize, bucketSize)
			errs[r] = verifyBucket(r, mine, bucketSize)
		})
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, err
	}
	for _, e := range errs {
		if e != nil {
			return Result{}, e
		}
	}
	total := int64(ranks) * int64(nPerRank)
	if got := ex.total.Local(0)[0]; got != total {
		return Result{}, fmt.Errorf("isx: hiper lost keys: %d != %d", got, total)
	}
	return Result{Variant: "hiper-asyncshmem", Ranks: ranks, Elapsed: elapsed, TotalKeys: total}, nil
}

// hiperCountingSort mirrors parallelCountingSort with HiPER forasync.
func hiperCountingSort(c *core.Ctx, par int, keys []int64, lo, width int64) {
	partial := make([][]int32, par)
	c.ForasyncSync(core.Range{Lo: 0, Hi: par, Grain: 1}, func(_ *core.Ctx, tid int) {
		cnt := make([]int32, width)
		s := tid * len(keys) / par
		e := (tid + 1) * len(keys) / par
		for _, k := range keys[s:e] {
			cnt[k-lo]++
		}
		partial[tid] = cnt
	})
	starts := make([]int64, width+1)
	for v := int64(0); v < width; v++ {
		var sum int64
		for tid := 0; tid < par; tid++ {
			sum += int64(partial[tid][v])
		}
		starts[v+1] = starts[v] + sum
	}
	c.ForasyncSync(core.Range{Lo: 0, Hi: par, Grain: 1}, func(_ *core.Ctx, tid int) {
		vlo := int64(tid) * width / int64(par)
		vhi := int64(tid+1) * width / int64(par)
		for v := vlo; v < vhi; v++ {
			for i := starts[v]; i < starts[v+1]; i++ {
				keys[i] = lo + v
			}
		}
	})
}
