package isx

import (
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/job"
)

func elasticTestConfig() ElasticConfig {
	return ElasticConfig{
		Streams:       8,
		KeysPerStream: 256,
		Ranks:         3,
		Capacity:      8,
		Phases:        4,
		Seed:          1234,
		Plan:          fabric.FaultPlan{Seed: 42, Drop: 0.05, Dup: 0.05},
		Rel: fabric.RelConfig{
			RetryBase:    50 * time.Microsecond,
			RetryCap:     200 * time.Microsecond,
			MaxAttempts:  12,
			DeathSilence: 100 * time.Millisecond,
		},
		Events: []job.ElasticEvent{
			{AfterPhase: 0, Kind: "kill", Rank: 1},
			{AfterPhase: 1, Kind: "grow", Delta: 2},
			{AfterPhase: 2, Kind: "shrink", Delta: 1},
		},
		Workers: 1,
	}
}

// TestElasticSortSurvivesChaosSchedule is the ISSUE's end-to-end ISx
// proof: the scripted schedule — kill rank 1 (checkpoint-restore onto a
// fresh endpoint), grow by 2, shrink by 1, each at a collective
// boundary — under 5% drop + 5% dup chaos on every link, with every
// phase's globally-sorted sequence verified byte-identical to a
// fabric-free reference inside RunElastic.
func TestElasticSortSurvivesChaosSchedule(t *testing.T) {
	cfg := elasticTestConfig()
	res, err := RunElastic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Digests) != cfg.Phases {
		t.Fatalf("verified %d phases, want %d", len(res.Digests), cfg.Phases)
	}
	wantKeys := int64(cfg.Phases * cfg.Streams * cfg.KeysPerStream)
	if res.TotalKeys != wantKeys {
		t.Fatalf("sorted %d keys, want %d", res.TotalKeys, wantKeys)
	}
	if len(res.Events) != len(cfg.Events) {
		t.Fatalf("applied %d events, want %d", len(res.Events), len(cfg.Events))
	}
	// Every phase digest must match a fresh reference computation —
	// RunElastic already enforced this; recheck one phase here so the
	// test fails loudly if the internal check is ever weakened.
	maxKey := int64(cfg.Streams * cfg.KeysPerStream)
	for ph, d := range res.Digests {
		if want := referenceSortDigest(cfg, ph, maxKey); d != want {
			t.Fatalf("phase %d digest %#x != reference %#x", ph, d, want)
		}
	}
}

// TestElasticSortDeterministicAcrossMembership: the same config with a
// DIFFERENT schedule (or none) yields the same per-phase digests — the
// sorted output is a function of the logical streams only, never of
// membership history, endpoints, or chaos.
func TestElasticSortDeterministicAcrossMembership(t *testing.T) {
	a := elasticTestConfig()
	b := elasticTestConfig()
	b.Events = nil              // static run
	b.Ranks = 4                 // different membership entirely
	b.Plan = fabric.FaultPlan{} // clean wire
	ra, err := RunElastic(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunElastic(b)
	if err != nil {
		t.Fatal(err)
	}
	for ph := range ra.Digests {
		if ra.Digests[ph] != rb.Digests[ph] {
			t.Fatalf("phase %d digests diverge across membership: %#x vs %#x",
				ph, ra.Digests[ph], rb.Digests[ph])
		}
	}
}
