package isx

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simnet"
)

var testCost = simnet.CostModel{Alpha: 50 * time.Microsecond}

func TestGenKeysDeterministic(t *testing.T) {
	a := genKeys(1, 3, 100, 1000)
	b := genKeys(1, 3, 100, 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("keys not deterministic")
		}
		if a[i] < 0 || a[i] >= 1000 {
			t.Fatalf("key %d out of range", a[i])
		}
	}
	c := genKeys(2, 3, 100, 1000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical keys")
	}
}

func TestBucketizePartition(t *testing.T) {
	keys := genKeys(7, 0, 1000, 4*64)
	chunks, counts := bucketizeSeq(keys, 4, 64)
	total := 0
	for b, chunk := range chunks {
		if len(chunk) != counts[b] {
			t.Fatalf("bucket %d count mismatch", b)
		}
		for _, k := range chunk {
			if int(k/64) != b {
				t.Fatalf("key %d in wrong bucket %d", k, b)
			}
		}
		total += len(chunk)
	}
	if total != len(keys) {
		t.Fatalf("bucketize lost keys: %d != %d", total, len(keys))
	}
}

func TestCountingSort(t *testing.T) {
	keys := genKeys(9, 1, 500, 128)
	countingSort(keys, 0, 128)
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			t.Fatal("not sorted")
		}
	}
}

func TestQuickCountingSortIsPermutationSorted(t *testing.T) {
	f := func(seed int64, n16 uint16) bool {
		n := int(n16%2000) + 1
		width := int64(256)
		keys := genKeys(seed, 2, n, width)
		var before [256]int
		for _, k := range keys {
			before[k]++
		}
		countingSort(keys, 0, width)
		var after [256]int
		for i, k := range keys {
			after[k]++
			if i > 0 && keys[i] < keys[i-1] {
				return false
			}
		}
		return before == after
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFlat(t *testing.T) {
	res, err := RunFlat(Config{PEs: 8, KeysPerPE: 2048, Cost: testCost, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalKeys != 8*2048 || res.Ranks != 8 {
		t.Fatalf("result = %+v", res)
	}
}

func TestRunHybridOMP(t *testing.T) {
	res, err := RunHybridOMP(Config{PEs: 8, Threads: 4, KeysPerPE: 2048, Cost: testCost, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks != 2 || res.TotalKeys != 8*2048 {
		t.Fatalf("result = %+v", res)
	}
}

func TestRunHiPER(t *testing.T) {
	res, err := RunHiPER(Config{PEs: 8, Threads: 4, KeysPerPE: 2048, Cost: testCost, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks != 2 || res.TotalKeys != 8*2048 {
		t.Fatalf("result = %+v", res)
	}
}

func TestAllVariantsAgreeOnTotals(t *testing.T) {
	cfg := Config{PEs: 4, Threads: 2, KeysPerPE: 1024, Cost: simnet.CostModel{}, Seed: 7}
	a, err := RunFlat(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunHybridOMP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := RunHiPER(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalKeys != b.TotalKeys || b.TotalKeys != c.TotalKeys {
		t.Fatalf("totals differ: %d %d %d", a.TotalKeys, b.TotalKeys, c.TotalKeys)
	}
}

func TestSinglePEDegenerate(t *testing.T) {
	if _, err := RunFlat(Config{PEs: 1, KeysPerPE: 512, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunHiPER(Config{PEs: 1, Threads: 2, KeysPerPE: 512, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}
