package isx

import (
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/job"
)

// chaosSeedFromEnv mirrors the fabric test helper: the Makefile's chaos
// seed matrix overrides the default fault seed via HIPER_CHAOS_SEED.
func chaosSeedFromEnv(t testing.TB, def uint64) uint64 {
	t.Helper()
	s := os.Getenv("HIPER_CHAOS_SEED")
	if s == "" {
		return def
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		t.Fatalf("HIPER_CHAOS_SEED=%q: %v", s, err)
	}
	return v
}

func supervisedTestConfig(seed uint64) SuperviseConfig {
	return SuperviseConfig{
		Streams:       8,
		KeysPerStream: 256,
		Ranks:         3,
		Capacity:      8,
		Phases:        4,
		Seed:          1234,
		Plan:          fabric.FaultPlan{Seed: seed, Drop: 0.05, Dup: 0.05},
		Rel: fabric.RelConfig{
			RetryBase:    50 * time.Microsecond,
			RetryCap:     200 * time.Microsecond,
			MaxAttempts:  12,
			DeathSilence: 100 * time.Millisecond,
		},
		Kills:   job.KillPlan{Seed: seed + 1000, Prob: 0.9, Max: 2},
		Workers: 1,
	}
}

// TestSupervisedSortSurvivesUnscriptedKills is the ISSUE's end-to-end
// self-healing ISx proof: 5% drop + 5% dup chaos on every link plus a
// seeded KillPlan that crashes endpoints without telling anyone. The
// only symptoms are failed digests; the supervisor must detect the
// victims by phi-accrual, roll back to the committed checkpoint, remap
// or evict, and still produce every phase byte-identical to the
// fabric-free reference.
func TestSupervisedSortSurvivesUnscriptedKills(t *testing.T) {
	seed := chaosSeedFromEnv(t, 42)
	cfg := supervisedTestConfig(seed)
	killed := 0
	kills := cfg.Kills
	cfg.Inject = func(tab *fabric.EpochTable, kill func(ep int)) func(phase, attempt int) {
		return kills.Injector(tab, func(ep int) { killed++; kill(ep) })
	}
	res, err := RunSupervised(cfg)
	if err != nil {
		t.Fatalf("supervised run failed (report: %s): %v", res.Report, err)
	}
	if len(res.Digests) != cfg.Phases {
		t.Fatalf("committed %d phases, want %d", len(res.Digests), cfg.Phases)
	}
	wantKeys := int64(cfg.Phases * cfg.Streams * cfg.KeysPerStream)
	if res.TotalKeys != wantKeys {
		t.Fatalf("sorted %d keys, want %d", res.TotalKeys, wantKeys)
	}
	ecfg := ElasticConfig{Streams: cfg.Streams, KeysPerStream: cfg.KeysPerStream, Seed: cfg.Seed}
	maxKey := int64(cfg.Streams * cfg.KeysPerStream)
	for ph, d := range res.Digests {
		if want := referenceSortDigest(ecfg, ph, maxKey); d != want {
			t.Fatalf("phase %d digest %#x != reference %#x", ph, d, want)
		}
	}
	if killed == 0 {
		t.Skipf("kill plan never fired under seed %d; self-healing not exercised", seed)
	}
	// A killed endpoint stays dead: the run can only have completed by
	// detecting each victim and remapping or evicting it.
	rep := res.Report
	if rep.Retries == 0 || rep.Remaps+rep.Evictions == 0 {
		t.Fatalf("%d kills fired but the report shows no recovery: %s", killed, rep)
	}
	if len(rep.Detections) == 0 {
		t.Fatalf("kills recovered without detections: %s", rep)
	}
	for _, d := range rep.Detections {
		if d.Rounds <= 0 || d.Latency <= 0 {
			t.Fatalf("detection carries no latency: %+v", d)
		}
	}
	if len(rep.Recoveries) == 0 {
		t.Fatalf("no MTTR samples recorded: %s", rep)
	}
}

// TestSupervisedSortReplays: detection latency and the whole recovery
// transcript are a pure function of the seeds — two identical runs
// produce identical reports.
func TestSupervisedSortReplays(t *testing.T) {
	seed := chaosSeedFromEnv(t, 42)
	run := func() (SuperviseResult, error) {
		cfg := supervisedTestConfig(seed)
		cfg.Phases = 2
		return RunSupervised(cfg)
	}
	a, errA := run()
	b, errB := run()
	if (errA == nil) != (errB == nil) {
		t.Fatalf("replay diverged in outcome: %v vs %v", errA, errB)
	}
	if errA != nil {
		t.Fatalf("supervised run failed: %v", errA)
	}
	ra, rb := a.Report, b.Report
	if ra.Attempts != rb.Attempts || ra.Remaps != rb.Remaps || ra.Evictions != rb.Evictions ||
		ra.FinalRanks != rb.FinalRanks || len(ra.Detections) != len(rb.Detections) {
		t.Fatalf("recovery transcripts diverge:\n  %s\n  %s", ra, rb)
	}
	for i := range ra.Detections {
		da, db := ra.Detections[i], rb.Detections[i]
		if da.Phase != db.Phase || da.Rank != db.Rank || da.Rounds != db.Rounds || da.Action != db.Action {
			t.Fatalf("detection %d diverges: %+v vs %+v", i, da, db)
		}
	}
}

// TestSupervisedMatchesScriptedKill is the scripted-vs-detected
// convergence proof: killing rank 1 after phase 0 via the elastic
// script (the supervisor is TOLD who died) and killing the same rank's
// endpoint opaquely (the supervisor must DETECT it) must both complete
// and converge to byte-identical per-phase output.
func TestSupervisedMatchesScriptedKill(t *testing.T) {
	seed := chaosSeedFromEnv(t, 42)

	ecfg := elasticTestConfig()
	ecfg.Plan = fabric.FaultPlan{Seed: seed, Drop: 0.05, Dup: 0.05}
	ecfg.Events = []job.ElasticEvent{{AfterPhase: 0, Kind: "kill", Rank: 1}}
	scripted, err := RunElastic(ecfg)
	if err != nil {
		t.Fatalf("scripted kill run failed: %v", err)
	}

	scfg := supervisedTestConfig(seed)
	scfg.Kills = job.KillPlan{} // replaced by the targeted injector
	scfg.Inject = func(tab *fabric.EpochTable, kill func(ep int)) func(phase, attempt int) {
		return func(phase, attempt int) {
			// The same fault the script delivers after phase 0 — except
			// nobody tells the supervisor.
			if phase == 1 && attempt == 0 {
				kill(tab.Endpoint(1))
			}
		}
	}
	detected, err := RunSupervised(scfg)
	if err != nil {
		t.Fatalf("detector-observed kill run failed (report: %s): %v", detected.Report, err)
	}
	if detected.Report.Remaps+detected.Report.Evictions == 0 {
		t.Fatalf("opaque kill was never recovered: %s", detected.Report)
	}

	if len(scripted.Digests) != len(detected.Digests) {
		t.Fatalf("phase counts diverge: scripted %d vs detected %d",
			len(scripted.Digests), len(detected.Digests))
	}
	for ph := range scripted.Digests {
		if scripted.Digests[ph] != detected.Digests[ph] {
			t.Fatalf("phase %d output diverges: scripted %#x vs detected %#x",
				ph, scripted.Digests[ph], detected.Digests[ph])
		}
	}
}
