package graph500

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/hiperckpt"
	"repro/internal/job"
	"repro/internal/modules"
	"repro/internal/shmem"
	"repro/internal/simnet"
)

// Supervised Graph500: unscripted BFS under detector-driven recovery.
// Same fixed Kronecker graph, same per-phase oracle-digest proof as the
// scripted elastic variant, but kills arrive from an opaque seeded
// KillPlan and job.Supervise must detect, roll back to the committed
// checkpoint, and remap or evict on its own.
//
// One structural difference from the scripted body: the level loop runs
// all levelSlots levels unconditionally instead of breaking on an empty
// global frontier. The early break reads the level sum through the
// fabric, and a dead rank — whose one-sided reads fail to zero — would
// break out early while live ranks continue, deadlocking the in-process
// level barriers. A fixed-trip loop keeps every rank's barrier count
// identical no matter what the wire does; the tail levels past the BFS
// frontier are empty and cost only local barrier hops. The attempt then
// completes with a wrong depth array and fails the digest — failures
// surface as verification errors, never hangs.
//
// Checkpoints follow the same two-slot pending/committed protocol as
// supervised ISx (see isx/supervised.go).

const (
	g500Committed = "g500-state"
	g500Pending   = "g500-pending"
)

// SuperviseConfig parameterizes a supervised BFS run.
type SuperviseConfig struct {
	Graph         GraphConfig
	Ranks         int
	Capacity      int // table capacity; transport is sized Capacity+1 (monitor)
	Phases        int
	Cost          simnet.CostModel
	Plan          fabric.FaultPlan
	Rel           fabric.RelConfig
	Det           fabric.DetectorConfig
	Kills         job.KillPlan
	// Inject, when set, replaces Kills as the fault source (see the ISx
	// SuperviseConfig for semantics).
	Inject        func(tab *fabric.EpochTable, kill func(ep int)) func(phase, attempt int)
	Workers       int
	MinRanks      int
	RestartBudget int
	MaxAttempts   int
}

// SuperviseResult reports one supervised run; Report is always set.
type SuperviseResult struct {
	Variant    string
	PhaseTimes []time.Duration
	Digests    []uint64
	Visited    int64
	Report     *job.RecoveryReport
}

// RunSupervised runs cfg.Phases BFS traversals under detector-driven
// recovery, verifying each committed phase's depth array byte-identical
// to the sequential oracle.
func RunSupervised(cfg SuperviseConfig) (SuperviseResult, error) {
	res := SuperviseResult{Variant: "supervised-bfs", Report: &job.RecoveryReport{}}
	if cfg.Ranks < 2 || cfg.Phases <= 0 {
		return res, fmt.Errorf("graph500: supervised config incomplete: %+v", cfg)
	}
	if cfg.Capacity < cfg.Ranks {
		cfg.Capacity = cfg.Ranks * 2
	}
	g := cfg.Graph
	n := g.numVertices()
	chanCap := int(2*g.numEdges()) + 16

	tab := fabric.NewEpochTable(cfg.Ranks, cfg.Capacity)
	chaos := fabric.NewChaos(fabric.NewSim(cfg.Capacity+1, cfg.Cost), cfg.Plan)
	rel := fabric.NewReliable(chaos, cfg.Rel)
	vt := fabric.NewVirtual(rel, tab)
	world := shmem.NewWorldOver(vt)
	cfg.Det.Monitor = cfg.Capacity
	det := fabric.NewDetector(chaos, cfg.Det)

	store := hiperckpt.NewStore(hiperckpt.StoreConfig{})
	states := make([]*bfsState, cfg.Capacity)
	priv := make([][]float64, cfg.Capacity)
	mods := make([]*hiperckpt.Module, cfg.Capacity)

	oracleDigest := make([]uint64, cfg.Phases)
	for ph := 0; ph < cfg.Phases; ph++ {
		_, d := SequentialBFS(g, phaseRoot(g, ph))
		oracleDigest[ph] = fnvDepths(d)
	}

	var expectRuns, expectVisited, expectDigest float64

	var errMu sync.Mutex
	var phaseErr error
	fail := func(err error) {
		errMu.Lock()
		if phaseErr == nil {
			phaseErr = err
		}
		errMu.Unlock()
	}

	var cs *comms
	var phaseStart time.Time

	kill := func(ep int) { chaos.Kill(ep) }
	inject := cfg.Kills.Injector(tab, kill)
	if cfg.Inject != nil {
		inject = cfg.Inject(tab, kill)
	}
	spec := job.SuperviseSpec{
		WorkersPerRank: cfg.Workers,
		NVM:            true,
		Table:          tab,
		Detector:       det,
		Phases:         cfg.Phases,
		MinRanks:       cfg.MinRanks,
		RestartBudget:  cfg.RestartBudget,
		MaxAttempts:    cfg.MaxAttempts,
		Inject:         inject,
	}

	spec.OnRollback = func(phase, attempt int, suspects []int) {
		errMu.Lock()
		phaseErr = nil
		errMu.Unlock()
		for r := 0; r < cfg.Capacity; r++ {
			priv[r] = nil
			states[r] = nil
			store.DeleteBlob(hiperckpt.RankKey(r, g500Pending))
		}
	}

	spec.OnCommit = func(phase int) error {
		for r := 0; r < tab.Ranks(); r++ {
			pkey := hiperckpt.RankKey(r, g500Pending)
			blob, ok := store.ReadBlob(pkey)
			if !ok {
				return fmt.Errorf("graph500: phase %d rank %d verified but has no pending checkpoint", phase, r)
			}
			if err := store.WriteBlob(hiperckpt.RankKey(r, g500Committed), blob); err != nil {
				return err
			}
			store.DeleteBlob(pkey)
		}
		return nil
	}

	spec.OnEvent = func(ev job.ElasticEvent, oldEp, freshEp int) {
		switch ev.Kind {
		case "kill":
			priv[ev.Rank] = nil
		case "shrink":
			newRanks := tab.Ranks()
			for d := newRanks; d < newRanks+ev.Delta; d++ {
				key := hiperckpt.RankKey(d, g500Committed)
				blob, ok := store.ReadBlob(key)
				if !ok {
					continue
				}
				t := d % newRanks
				tkey := hiperckpt.RankKey(t, g500Committed)
				tb, _ := store.ReadBlob(tkey)
				if tb == nil {
					tb = []float64{0, 0, 0}
				}
				for i := range tb {
					tb[i] += blob[i]
				}
				if err := store.WriteBlob(tkey, tb); err == nil {
					store.DeleteBlob(key)
				}
				priv[d] = nil
			}
		}
	}

	spec.AfterPhase = func(phase int) error {
		errMu.Lock()
		err := phaseErr
		errMu.Unlock()
		if err != nil {
			return err
		}
		ranks := tab.Ranks()
		root := phaseRoot(g, phase)
		parent, depth, visited := gatherResult(g, states[:ranks])
		if err := ValidateTree(g, root, parent, depth); err != nil {
			return fmt.Errorf("graph500: phase %d: %w", phase, err)
		}
		h := fnvDepths(depth)
		if h != oracleDigest[phase] {
			return fmt.Errorf("graph500: phase %d depth digest %#x != oracle %#x (result not byte-identical)",
				phase, h, oracleDigest[phase])
		}
		res.Digests = append(res.Digests, h)
		res.PhaseTimes = append(res.PhaseTimes, time.Since(phaseStart))
		res.Visited += visited
		expectRuns += float64(ranks)
		expectVisited += float64(visited)
		for r := 0; r < ranks; r++ {
			expectDigest += fold48(fnvDepths(states[r].depth))
			states[r] = nil
		}
		return nil
	}

	setup := func(p *job.Proc) error {
		if p.Rank == 0 {
			cs = newComms(world, chanCap)
			phaseStart = time.Now()
		}
		mods[p.Rank] = hiperckpt.New(store)
		return modules.Install(p.RT, mods[p.Rank])
	}

	body := func(p *job.Proc, c *core.Ctx) {
		r := p.Rank
		ranks := world.Size()
		pe := world.PE(r)
		m := mods[r]
		root := phaseRoot(g, p.Phase)

		acc := priv[r]
		if p.Restored {
			if acc != nil {
				fail(fmt.Errorf("graph500: rank %d restored but memory survived the rollback", r))
			}
			if blob, ok := m.Restore(c, hiperckpt.RankKey(r, g500Committed)); ok {
				acc = blob
			}
		}
		if acc == nil {
			acc = []float64{0, 0, 0}
		}

		st := newBFSState(g, ranks, r)
		states[r] = st
		snd := newSender(cs, pe)
		rcv := newReceiver(cs, r)
		handle := func(v, parent, depth int64) {
			if v < 0 {
				return
			}
			st.claimLocked(v, parent, depth)
		}

		st.level = 0
		if owner(n, ranks, root) == r {
			st.tryClaim(root, root, 0)
		}
		st.frontier, st.next = st.next, nil

		// Fixed-trip level loop — see the package comment above for why
		// supervised BFS must not read the termination condition through
		// the fabric.
		for lvl := 0; lvl < levelSlots; lvl++ {
			st.level = int64(lvl + 1)
			expandFrontier(st, snd, func() { rcv.drain(handle) })
			pe.BarrierAll()
			rcv.drain(handle)
			st.frontier, st.next = st.next, nil
			pe.BarrierAll()
		}

		var visited float64
		for _, pv := range st.parent {
			if pv != -1 {
				visited++
			}
		}
		acc[0]++
		acc[1] += visited
		acc[2] += fold48(fnvDepths(st.depth))
		priv[r] = acc
		f := m.CheckpointAsync(c, hiperckpt.RankKey(r, g500Pending), acc)
		c.Wait(f)
	}

	rep, err := job.Supervise(spec, setup, body)
	res.Report = rep
	if err != nil {
		return res, err
	}
	if phaseErr != nil {
		return res, phaseErr
	}

	var gotRuns, gotVisited, gotDigest float64
	for r := 0; r < cfg.Capacity; r++ {
		if priv[r] != nil {
			gotRuns += priv[r][0]
			gotVisited += priv[r][1]
			gotDigest += priv[r][2]
		}
	}
	if gotRuns != expectRuns || gotVisited != expectVisited || gotDigest != expectDigest {
		return res, fmt.Errorf(
			"graph500: accumulator imbalance after supervision: runs %v/%v visited %v/%v digest %v/%v",
			gotRuns, expectRuns, gotVisited, expectVisited, gotDigest, expectDigest)
	}
	return res, nil
}
