package graph500

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/hiperckpt"
	"repro/internal/job"
	"repro/internal/modules"
	"repro/internal/shmem"
	"repro/internal/simnet"
)

// Elastic Graph500: each phase is one complete distributed BFS from a
// deterministic per-phase root over a FIXED Kronecker graph, run on
// whatever logical membership the epoch table currently holds. Vertex
// ownership follows the current rank count, but the BFS depth array is
// a property of the graph alone — so every phase's gathered depths must
// be byte-identical to the sequential oracle no matter which endpoints
// carried the claims, how many ranks partitioned the graph, or what the
// chaos layer did to the wire.
//
// Per-rank accumulator state (BFS runs completed, vertices visited in
// owned ranges, folded depth digests) is checkpointed under the logical
// RankKey each phase; a scripted kill wipes the in-memory copy and the
// rank restores from checkpoint onto its fresh endpoint. Shrink
// redistributes dropped ranks' state through the store.

// ElasticConfig parameterizes an elastic BFS run.
type ElasticConfig struct {
	Graph    GraphConfig
	Ranks    int // initial logical ranks
	Capacity int // physical endpoints
	Phases   int // BFS runs; root varies per phase
	Cost     simnet.CostModel
	Plan     fabric.FaultPlan
	Rel      fabric.RelConfig
	Events   []job.ElasticEvent
	Workers  int
}

// EventCost reports one applied membership change.
type EventCost struct {
	Kind    string
	Latency time.Duration
}

// ElasticResult reports one elastic run.
type ElasticResult struct {
	Variant    string
	PhaseTimes []time.Duration
	Events     []EventCost
	Digests    []uint64 // per-phase depth-array digest
	Visited    int64    // vertices reached across all phases
}

// fnvDepths digests an int64 array byte-for-byte (little-endian).
func fnvDepths(vals []int64) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, v := range vals {
		u := uint64(v)
		for b := 0; b < 8; b++ {
			h ^= (u >> (8 * b)) & 0xff
			h *= 0x100000001b3
		}
	}
	return h
}

func fold48(d uint64) float64 { return float64(d & ((1 << 48) - 1)) }

// phaseRoot picks the BFS root for a phase — logical coordinates only.
func phaseRoot(g GraphConfig, phase int) int64 {
	return int64(job.RankSeed(uint64(g.Seed)+1, 0, uint64(phase)) % uint64(g.numVertices()))
}

// RunElastic runs cfg.Phases BFS traversals under the scripted
// membership schedule and verifies each phase's depth array
// byte-identical to the sequential oracle.
func RunElastic(cfg ElasticConfig) (ElasticResult, error) {
	if cfg.Ranks < 2 || cfg.Phases <= 0 {
		return ElasticResult{}, fmt.Errorf("graph500: elastic config incomplete: %+v", cfg)
	}
	if cfg.Capacity < cfg.Ranks {
		cfg.Capacity = cfg.Ranks * 2
	}
	g := cfg.Graph
	n := g.numVertices()
	// One channel must absorb every remote claim in the worst case — rank
	// counts change between phases, so size for the smallest membership.
	chanCap := int(2*g.numEdges()) + 16

	tab := fabric.NewEpochTable(cfg.Ranks, cfg.Capacity)
	chaos := fabric.NewChaos(fabric.NewSim(cfg.Capacity, cfg.Cost), cfg.Plan)
	rel := fabric.NewReliable(chaos, cfg.Rel)
	vt := fabric.NewVirtual(rel, tab)
	world := shmem.NewWorldOver(vt)

	store := hiperckpt.NewStore(hiperckpt.StoreConfig{})
	states := make([]*bfsState, cfg.Capacity)
	priv := make([][]float64, cfg.Capacity) // {runs, visitedOwned, digestFold}
	mods := make([]*hiperckpt.Module, cfg.Capacity)

	// Oracle depth digests per phase, computed once with no fabric.
	oracleDigest := make([]uint64, cfg.Phases)
	for ph := 0; ph < cfg.Phases; ph++ {
		_, d := SequentialBFS(g, phaseRoot(g, ph))
		oracleDigest[ph] = fnvDepths(d)
	}

	res := ElasticResult{Variant: "elastic-bfs"}
	var expectRuns, expectVisited, expectDigest float64

	var errMu sync.Mutex
	var phaseErr error
	fail := func(err error) {
		errMu.Lock()
		if phaseErr == nil {
			phaseErr = err
		}
		errMu.Unlock()
	}

	var cs *comms
	var phaseStart time.Time

	spec := job.ElasticSpec{
		WorkersPerRank: cfg.Workers,
		NVM:            true,
		Table:          tab,
		Phases:         cfg.Phases,
		Events:         cfg.Events,
		Kill:           func(ep int) { chaos.Kill(ep) },
	}
	spec.OnEvent = func(ev job.ElasticEvent, oldEp, freshEp int) {
		t0 := time.Now()
		switch ev.Kind {
		case "kill":
			priv[ev.Rank] = nil
		case "shrink":
			newRanks := tab.Ranks()
			for d := newRanks; d < newRanks+ev.Delta; d++ {
				key := hiperckpt.RankKey(d, "g500-state")
				blob, ok := store.ReadBlob(key)
				if !ok {
					continue
				}
				t := d % newRanks
				tkey := hiperckpt.RankKey(t, "g500-state")
				tb, _ := store.ReadBlob(tkey)
				if tb == nil {
					tb = []float64{0, 0, 0}
				}
				for i := range tb {
					tb[i] += blob[i]
				}
				if err := store.WriteBlob(tkey, tb); err == nil {
					store.DeleteBlob(key)
				}
				if priv[t] != nil {
					for i := range priv[t] {
						priv[t][i] += blob[i]
					}
				} else {
					priv[t] = append([]float64(nil), blob...)
				}
				priv[d] = nil
			}
		}
		res.Events = append(res.Events, EventCost{Kind: ev.Kind, Latency: time.Since(t0)})
	}

	spec.AfterPhase = func(phase int) error {
		errMu.Lock()
		err := phaseErr
		errMu.Unlock()
		if err != nil {
			return err
		}
		ranks := tab.Ranks()
		root := phaseRoot(g, phase)
		parent, depth, visited := gatherResult(g, states[:ranks])
		if err := ValidateTree(g, root, parent, depth); err != nil {
			return fmt.Errorf("graph500: phase %d: %w", phase, err)
		}
		h := fnvDepths(depth)
		if h != oracleDigest[phase] {
			return fmt.Errorf("graph500: phase %d depth digest %#x != oracle %#x (result not byte-identical)",
				phase, h, oracleDigest[phase])
		}
		res.Digests = append(res.Digests, h)
		res.PhaseTimes = append(res.PhaseTimes, time.Since(phaseStart))
		res.Visited += visited
		// Driver-side expectation for the final accumulator balance.
		expectRuns += float64(ranks)
		expectVisited += float64(visited)
		for r := 0; r < ranks; r++ {
			st := states[r]
			expectDigest += fold48(fnvDepths(st.depth))
			states[r] = nil
		}
		return nil
	}

	setup := func(p *job.Proc) error {
		if p.Rank == 0 {
			// Fresh symmetric comms each phase: sized to the phase's
			// membership, counters and level sums zeroed. Setup runs
			// sequentially before launch, so rank 0 allocates for all.
			cs = newComms(world, chanCap)
			phaseStart = time.Now()
		}
		mods[p.Rank] = hiperckpt.New(store)
		return modules.Install(p.RT, mods[p.Rank])
	}

	body := func(p *job.Proc, c *core.Ctx) {
		r := p.Rank
		ranks := world.Size()
		pe := world.PE(r)
		m := mods[r]
		root := phaseRoot(g, p.Phase)

		// Recover or initialize the accumulator; on error, record and keep
		// participating — bailing before the level barriers would wedge
		// every other rank.
		acc := priv[r]
		if p.Restored {
			if acc != nil {
				fail(fmt.Errorf("graph500: rank %d restored but memory survived the kill", r))
			}
			blob, ok := m.Restore(c, hiperckpt.RankKey(r, "g500-state"))
			if !ok {
				fail(fmt.Errorf("graph500: rank %d has no checkpoint to restore", r))
			}
			acc = blob
		}
		if acc == nil {
			acc = []float64{0, 0, 0}
		}

		st := newBFSState(g, ranks, r)
		states[r] = st
		snd := newSender(cs, pe)
		rcv := newReceiver(cs, r)
		handle := func(v, parent, depth int64) {
			if v < 0 {
				return
			}
			st.claimLocked(v, parent, depth)
		}

		st.level = 0
		if owner(n, ranks, root) == r {
			st.tryClaim(root, root, 0)
		}
		st.frontier, st.next = st.next, nil

		for lvl := 0; lvl < levelSlots; lvl++ {
			st.level = int64(lvl + 1)
			expandFrontier(st, snd, func() { rcv.drain(handle) })
			pe.BarrierAll()
			rcv.drain(handle)
			st.frontier, st.next = st.next, nil
			pe.Add(cs.levelSum, 0, lvl%levelSlots, int64(len(st.frontier)))
			pe.BarrierAll()
			if pe.GetValue(cs.levelSum, 0, lvl%levelSlots) == 0 {
				break
			}
		}

		// Advance and persist the accumulator before the phase ends.
		var visited float64
		for _, pv := range st.parent {
			if pv != -1 {
				visited++
			}
		}
		acc[0]++
		acc[1] += visited
		acc[2] += fold48(fnvDepths(st.depth))
		priv[r] = acc
		f := m.CheckpointAsync(c, hiperckpt.RankKey(r, "g500-state"), acc)
		c.Wait(f)
	}

	if err := job.RunElastic(spec, setup, body); err != nil {
		return ElasticResult{}, err
	}
	if phaseErr != nil {
		return ElasticResult{}, phaseErr
	}

	var gotRuns, gotVisited, gotDigest float64
	for r := 0; r < cfg.Capacity; r++ {
		if priv[r] != nil {
			gotRuns += priv[r][0]
			gotVisited += priv[r][1]
			gotDigest += priv[r][2]
		}
	}
	if gotRuns != expectRuns || gotVisited != expectVisited || gotDigest != expectDigest {
		return ElasticResult{}, fmt.Errorf(
			"graph500: accumulator imbalance after elasticity: runs %v/%v visited %v/%v digest %v/%v",
			gotRuns, expectRuns, gotVisited, expectVisited, gotDigest, expectDigest)
	}
	return res, nil
}
