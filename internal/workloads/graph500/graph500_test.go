package graph500

import (
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/simnet"
)

// tinyGraph keeps unit tests fast: 512 vertices, ~8k edges.
var tinyGraph = GraphConfig{Scale: 9, EdgeFactor: 16, Seed: 5}

var testCost = simnet.CostModel{Alpha: 20 * time.Microsecond}

func TestEdgeGeneratorDeterministic(t *testing.T) {
	for e := int64(0); e < 100; e++ {
		u1, v1 := tinyGraph.edge(e)
		u2, v2 := tinyGraph.edge(e)
		if u1 != u2 || v1 != v2 {
			t.Fatal("edge generation not deterministic")
		}
		n := tinyGraph.numVertices()
		if u1 < 0 || u1 >= n || v1 < 0 || v1 >= n {
			t.Fatalf("edge (%d,%d) out of range", u1, v1)
		}
	}
}

func TestEdgeSkew(t *testing.T) {
	// R-MAT with A=0.57 concentrates edges at low vertex ids.
	var lowHalf, total int64
	half := tinyGraph.numVertices() / 2
	for e := int64(0); e < tinyGraph.numEdges(); e++ {
		u, _ := tinyGraph.edge(e)
		if u < half {
			lowHalf++
		}
		total++
	}
	if float64(lowHalf)/float64(total) < 0.6 {
		t.Fatalf("R-MAT skew missing: %d/%d in low half", lowHalf, total)
	}
}

func TestPartitionCoversAllVertices(t *testing.T) {
	n := int64(1000)
	for _, ranks := range []int{1, 3, 7, 16} {
		var covered int64
		for r := 0; r < ranks; r++ {
			lo, hi := partition(n, ranks, r)
			covered += hi - lo
			for v := lo; v < hi; v++ {
				if owner(n, ranks, v) != r {
					t.Fatalf("owner(%d) != %d with %d ranks", v, r, ranks)
				}
			}
		}
		if covered != n {
			t.Fatalf("partition covered %d of %d with %d ranks", covered, n, ranks)
		}
	}
}

func TestLocalCSRMatchesFullGraph(t *testing.T) {
	full := buildLocalCSR(tinyGraph, 1, 0)
	const ranks = 4
	var distTotal int64
	for r := 0; r < ranks; r++ {
		c := buildLocalCSR(tinyGraph, ranks, r)
		for v := c.vLo; v < c.vHi; v++ {
			local := c.neighbors(v)
			ref := full.neighbors(v)
			if len(local) != len(ref) {
				t.Fatalf("vertex %d degree %d vs %d", v, len(local), len(ref))
			}
			distTotal += int64(len(local))
		}
	}
	var fullTotal int64
	for v := full.vLo; v < full.vHi; v++ {
		fullTotal += int64(len(full.neighbors(v)))
	}
	if distTotal != fullTotal {
		t.Fatalf("adjacency totals differ: %d vs %d", distTotal, fullTotal)
	}
}

func TestSequentialBFSSelfConsistent(t *testing.T) {
	parent, depth := SequentialBFS(tinyGraph, 1)
	if err := ValidateTree(tinyGraph, 1, parent, depth); err != nil {
		t.Fatal(err)
	}
	if depth[1] != 0 || parent[1] != 1 {
		t.Fatal("root entry wrong")
	}
}

func TestRunReference(t *testing.T) {
	res, err := RunReference(RunConfig{Graph: tinyGraph, Root: 1, Ranks: 4, Cost: testCost})
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited == 0 || res.Levels == 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestRunHiPER(t *testing.T) {
	res, err := RunHiPER(RunConfig{Graph: tinyGraph, Root: 1, Ranks: 4, Workers: 2, Cost: testCost})
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited == 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestVariantsVisitSameSet(t *testing.T) {
	cfg := RunConfig{Graph: tinyGraph, Root: 1, Ranks: 3, Workers: 2, Cost: testCost}
	a, err := RunReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunHiPER(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Visited != b.Visited || a.Levels != b.Levels {
		t.Fatalf("variants disagree: %+v vs %+v", a, b)
	}
}

// TestRunsUnderCongestedCost drives both variants with the benchmark
// network's congestion model active. Congestion spreads deliveries out
// enough that one rank's quiesce sentinels routinely land while its peers
// are still looping — the schedule that once left a re-armed when-handler
// waiting on a sealed channel and hung the job (the handlers must disarm
// on the sender's sentinel, not on local completion).
func TestRunsUnderCongestedCost(t *testing.T) {
	cost := simnet.CostModel{
		Alpha: 15 * time.Microsecond, BytesPerSec: 2e9,
		CongestWindow: 2, CongestPenalty: 150 * time.Microsecond,
	}
	cfg := RunConfig{Graph: tinyGraph, Root: 1, Ranks: 4, Workers: 2, Cost: cost}
	a, err := RunReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunHiPER(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Visited != b.Visited || a.Levels != b.Levels {
		t.Fatalf("variants disagree: %+v vs %+v", a, b)
	}
}

func TestSingleRankDegenerate(t *testing.T) {
	if _, err := RunReference(RunConfig{Graph: tinyGraph, Root: 1, Ranks: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunHiPER(RunConfig{Graph: tinyGraph, Root: 1, Ranks: 1, Workers: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestIsolatedRootVisitsOnlyItself(t *testing.T) {
	// Vertex ids near the top of the range are often isolated in R-MAT;
	// find one and BFS from it.
	full := buildLocalCSR(tinyGraph, 1, 0)
	var iso int64 = -1
	for v := tinyGraph.numVertices() - 1; v >= 0; v-- {
		if len(full.neighbors(v)) == 0 {
			iso = v
			break
		}
	}
	if iso < 0 {
		t.Skip("no isolated vertex at this scale/seed")
	}
	res, err := RunHiPER(RunConfig{Graph: tinyGraph, Root: iso, Ranks: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited != 1 {
		t.Fatalf("isolated root visited %d vertices", res.Visited)
	}
}

// TestChaosGraph500 runs BOTH variants over a Reliable layer on a
// fabric injecting 10% drop + 10% dup. Correctness is ValidateTree
// (inside Run*); the drop/retry counters prove the fabric actually
// misbehaved and the protocol actually recovered — a clean pass with
// zero drops would prove nothing.
func TestChaosGraph500(t *testing.T) {
	if testing.Short() {
		t.Skip("lossy-fabric BFS is a second-long soak")
	}
	run := func(t *testing.T, name string, f func(RunConfig) (Result, error)) {
		chaos := fabric.NewChaos(fabric.NewSim(4, simnet.CostModel{Alpha: time.Microsecond}),
			fabric.FaultPlan{Seed: 42, Drop: 0.10, Dup: 0.10})
		rel := fabric.NewReliable(chaos, fabric.RelConfig{})
		res, err := f(RunConfig{Graph: tinyGraph, Root: 1, Ranks: 4, Workers: 2, Transport: rel})
		if err != nil {
			t.Fatalf("%s over lossy fabric: %v", name, err)
		}
		if res.Visited < 2 {
			t.Fatalf("%s visited only %d vertices", name, res.Visited)
		}
		if chaos.Drops() == 0 || chaos.Dups() == 0 {
			t.Fatalf("%s: chaos injected nothing (drops=%d dups=%d)", name, chaos.Drops(), chaos.Dups())
		}
		if rel.Retries() == 0 {
			t.Fatalf("%s: survived loss with zero retransmits?", name)
		}
	}
	t.Run("reference", func(t *testing.T) { run(t, "reference", RunReference) })
	t.Run("hiper", func(t *testing.T) { run(t, "hiper", RunHiPER) })
}
