package graph500

import (
	"time"

	"repro/internal/core"
	"repro/internal/hipershmem"
	"repro/internal/job"
	"repro/internal/modules"
	"repro/internal/shmem"
)

// flushEvery controls how often senders flush claim batches mid-level, so
// claims flow while the level is still being expanded (and receivers have
// something to poll for).
const flushEvery = 64

// levelSlots bounds the BFS depth we can track in the per-level reduction
// array (ample: Kronecker graphs have tiny diameters).
const levelSlots = 128

// gatherResult assembles the global parent/depth arrays from per-rank
// state (post-run, single-threaded).
func gatherResult(g GraphConfig, states []*bfsState) (parent, depth []int64, visited int64) {
	n := g.numVertices()
	parent = make([]int64, n)
	depth = make([]int64, n)
	for i := range parent {
		parent[i] = -1
		depth[i] = -1
	}
	for _, st := range states {
		for i := st.csr.vLo; i < st.csr.vHi; i++ {
			parent[i] = st.parent[i-st.csr.vLo]
			depth[i] = st.depth[i-st.csr.vLo]
			if parent[i] != -1 {
				visited++
			}
		}
	}
	return parent, depth, visited
}

// expandFrontier walks one rank's current frontier: local neighbours are
// claimed directly; remote neighbours are queued on the sender, flushed
// every flushEvery vertices; poll (may be nil) runs at the same cadence —
// the reference variant's manual polling hook.
func expandFrontier(st *bfsState, snd *sender, poll func()) {
	n := st.g.numVertices()
	for i, u := range st.frontier {
		for _, v := range st.csr.neighbors(u) {
			o := owner(n, st.ranks, v)
			if o == snd.pe.Rank() {
				st.claimLocked(v, u, st.level)
			} else {
				snd.claim(o, v, u, st.level)
			}
		}
		if (i+1)%flushEvery == 0 {
			snd.flush()
			if poll != nil {
				poll()
			}
		}
	}
	snd.flush()
}

// RunReference runs the polling reference: each rank's main loop
// interleaves frontier expansion with explicit channel polling, and drains
// after each level barrier.
func RunReference(cfg RunConfig) (Result, error) {
	cfg = cfg.withDefaults()
	world := cfg.world()
	cs := newComms(world, cfg.ChanCap)
	states := make([]*bfsState, cfg.Ranks)
	levels := 0

	start := time.Now()
	err := job.RunFlat(cfg.Ranks, func(r int) error {
		pe := world.PE(r)
		st := newBFSState(cfg.Graph, cfg.Ranks, r)
		states[r] = st
		snd := newSender(cs, pe)
		rcv := newReceiver(cs, r)
		handle := func(v, parent, depth int64) {
			if v < 0 {
				return
			}
			st.claimLocked(v, parent, depth)
		}

		n := cfg.Graph.numVertices()
		st.level = 0
		if owner(n, cfg.Ranks, cfg.Root) == r {
			st.tryClaim(cfg.Root, cfg.Root, 0)
		}
		st.frontier, st.next = st.next, nil

		for lvl := 0; lvl < levelSlots; lvl++ {
			st.level = int64(lvl + 1)
			expandFrontier(st, snd, func() { rcv.drain(handle) })
			pe.BarrierAll() // all claims for this level are visible
			rcv.drain(handle)
			// Swap while no claims are in flight: every rank is between the
			// two barriers, so nothing can land in st.next until after the
			// second barrier — by which point the swap is already done.
			// (Swapping after that barrier races with fast ranks whose
			// next-level claims would leak into this level's frontier.)
			st.frontier, st.next = st.next, nil
			// Global level termination: per-level accumulation slot.
			pe.Add(cs.levelSum, 0, lvl%levelSlots, int64(len(st.frontier)))
			pe.BarrierAll()
			total := pe.GetValue(cs.levelSum, 0, lvl%levelSlots)
			if r == 0 {
				levels = lvl + 1
			}
			if total == 0 {
				break
			}
		}
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, err
	}

	parent, depth, visited := gatherResult(cfg.Graph, states)
	if err := ValidateTree(cfg.Graph, cfg.Root, parent, depth); err != nil {
		return Result{}, err
	}
	return Result{Variant: "reference-polling", Ranks: cfg.Ranks, Elapsed: elapsed,
		Visited: visited, Levels: levels}, nil
}

// RunHiPER runs the HiPER variant: no application polling — each inbound
// channel has a shmem_async_when handler that fires when the channel
// counter advances, drains the new claims, and re-arms itself. The paper's
// Graph500 uses exactly this offload.
func RunHiPER(cfg RunConfig) (Result, error) {
	cfg = cfg.withDefaults()
	world := cfg.world()
	cs := newComms(world, cfg.ChanCap)
	states := make([]*bfsState, cfg.Ranks)
	mods := make([]*hipershmem.Module, cfg.Ranks)
	levels := 0

	start := time.Now()
	err := job.Run(job.Spec{Ranks: cfg.Ranks, WorkersPerRank: cfg.Workers,
		OnStart: func() { start = time.Now() }},
		func(p *job.Proc) error {
			mods[p.Rank] = hipershmem.New(world.PE(p.Rank), nil)
			return modules.Install(p.RT, mods[p.Rank])
		},
		func(p *job.Proc, c *core.Ctx) {
			r := p.Rank
			m := mods[r]
			pe := m.PE()
			st := newBFSState(cfg.Graph, cfg.Ranks, r)
			states[r] = st
			snd := newSender(cs, pe)
			rcv := newReceiver(cs, r)
			handle := func(v, parent, depth int64) {
				if v < 0 {
					return
				}
				st.claimLocked(v, parent, depth)
			}

			// Arm one shmem_async_when handler per inbound channel: fire
			// when the counter passes what we've consumed, drain, re-arm.
			// Re-arming stops when the channel is sealed — its sender's
			// end-of-stream sentinel has been consumed. Disarming must key
			// off the *sender's* sentinel, not this rank's own progress: a
			// fast peer's sentinel can arrive while this rank is still
			// looping, and a handler that re-arms past it would wait on a
			// counter that never advances again, keeping the finish scope
			// (and the whole job) open forever.
			var arm func(cc *core.Ctx, src int)
			arm = func(cc *core.Ctx, src int) {
				rcv.mu.Lock()
				threshold := rcv.read[src] + 1
				rcv.mu.Unlock()
				m.AsyncWhen(cc, cs.counters, src, shmem.CmpGE, threshold, func(hc *core.Ctx) {
					rcv.drain(handle)
					if !rcv.srcSealed(src) {
						arm(hc, src)
					}
				})
			}
			for src := 0; src < cfg.Ranks; src++ {
				if src != r {
					arm(c, src)
				}
			}

			n := cfg.Graph.numVertices()
			st.level = 0
			if owner(n, cfg.Ranks, cfg.Root) == r {
				st.tryClaim(cfg.Root, cfg.Root, 0)
			}
			st.frontier, st.next = st.next, nil

			for lvl := 0; lvl < levelSlots; lvl++ {
				st.level = int64(lvl + 1)
				expandFrontier(st, snd, nil) // no polling hook: handlers do it
				m.BarrierAll(c)
				rcv.drain(handle) // catch anything the handlers haven't reached yet
				// Swap between the barriers, while no claims are in flight:
				// once any rank passes the second barrier and starts the next
				// level, its claims must find st.next already emptied, or a
				// depth-L+2 vertex would ride into this rank's depth-L+1
				// frontier via a when-handler firing before the swap.
				st.frontier, st.next = st.next, nil
				m.Add(c, cs.levelSum, 0, lvl%levelSlots, int64(len(st.frontier)))
				m.BarrierAll(c)
				total := pe.GetValue(cs.levelSum, 0, lvl%levelSlots)
				if r == 0 {
					levels = lvl + 1
				}
				if total == 0 {
					break
				}
			}

			// Quiesce the handlers: a sentinel claim closes every outbound
			// channel. Each channel's last message is its sentinel, so every
			// still-armed condition eventually fires, sees the channel
			// sealed, and stops re-arming — the finish scope then drains.
			for dst := 0; dst < cfg.Ranks; dst++ {
				if dst != r {
					snd.claim(dst, -1, -1, -1)
				}
			}
			snd.flush()
			m.BarrierAll(c)
		})
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, err
	}

	parent, depth, visited := gatherResult(cfg.Graph, states)
	if err := ValidateTree(cfg.Graph, cfg.Root, parent, depth); err != nil {
		return Result{}, err
	}
	return Result{Variant: "hiper-asyncwhen", Ranks: cfg.Ranks, Elapsed: elapsed,
		Visited: visited, Levels: levels}, nil
}
