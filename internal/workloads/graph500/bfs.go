package graph500

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/shmem"
	"repro/internal/simnet"
)

// RunConfig parameterizes a distributed BFS (strong scaling: the graph is
// fixed, ranks vary).
type RunConfig struct {
	Graph   GraphConfig
	Root    int64
	Ranks   int
	Workers int // HiPER workers per rank (reference ignores)
	Cost    simnet.CostModel
	// ChanCap is the per-(src,dst) channel capacity in claims (default
	// enough for the whole graph: 2*EdgeFactor*N/Ranks, generously).
	ChanCap int
	// Transport, when non-nil, carries all symmetric-heap traffic instead
	// of a fresh Sim — e.g. a Reliable over a Chaos for fault-injection
	// runs. Its Size must equal Ranks.
	Transport fabric.Transport
}

// world builds the SHMEM world both variants run over: the supplied
// transport when one is given, else a fresh simulated fabric.
func (c RunConfig) world() *shmem.World {
	if c.Transport != nil {
		return shmem.NewWorldOver(c.Transport)
	}
	return shmem.NewWorld(c.Ranks, c.Cost)
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.ChanCap <= 0 {
		c.ChanCap = int(2*c.Graph.numEdges())/c.Ranks + 1024
	}
	return c
}

// Result reports one run.
type Result struct {
	Variant string
	Ranks   int
	Elapsed time.Duration
	Visited int64
	Levels  int
}

// comms is the symmetric communication state: one claim channel per
// (src, dst) pair. A claim is a (vertex, parent, depth) triple; the
// channel is a region of dst's symmetric buffer written only by src, with
// a counter the receiver watches — the paper's polling target, and the
// HiPER variant's shmem_async_when trigger. Carrying the depth in the
// message keeps asynchronous handlers correct regardless of when they
// drain relative to the receiver's own level progress.
type comms struct {
	world *shmem.World
	ranks int
	cap   int
	// data[dst] layout: ranks regions of 3*cap int64s (v, parent, depth).
	data *shmem.Int64Array
	// counters[dst] layout: ranks slots; counters[dst][src] counts claims
	// written on channel src->dst.
	counters *shmem.Int64Array
	// levelSum: one accumulation slot per BFS level on PE 0 for the
	// level-end termination reduction.
	levelSum *shmem.Int64Array
}

func newComms(world *shmem.World, capacity int) *comms {
	r := world.Size()
	return &comms{
		world:    world,
		ranks:    r,
		cap:      capacity,
		data:     world.AllocInt64(r * 3 * capacity),
		counters: world.AllocInt64(r),
		levelSum: world.AllocInt64(levelSlots),
	}
}

// sender tracks one rank's outbound batches.
type sender struct {
	cs      *comms
	pe      *shmem.PE
	pending [][]int64 // per destination: flat (v, parent, depth) triples
	sent    []int64   // claims already written per destination
}

func newSender(cs *comms, pe *shmem.PE) *sender {
	return &sender{cs: cs, pe: pe, pending: make([][]int64, cs.ranks), sent: make([]int64, cs.ranks)}
}

// claim queues a remote claim (v's owner will decide whether the parent
// sticks).
func (s *sender) claim(dst int, v, parent, depth int64) {
	s.pending[dst] = append(s.pending[dst], v, parent, depth)
}

// flush writes queued claims and advances the channel counters. The data
// put is fenced before the counter add so a receiver that observes the
// counter sees the claims.
func (s *sender) flush() {
	me := s.pe.Rank()
	for dst := 0; dst < s.cs.ranks; dst++ {
		batch := s.pending[dst]
		if len(batch) == 0 {
			continue
		}
		claims := int64(len(batch) / 3)
		if s.sent[dst]+claims > int64(s.cs.cap) {
			panic(fmt.Sprintf("graph500: channel %d->%d overflow", me, dst))
		}
		off := me*3*s.cs.cap + int(3*s.sent[dst])
		s.pe.Put(s.cs.data, dst, off, batch)
		s.pe.Fence() // order data before the counter bump
		s.pe.Add(s.cs.counters, dst, me, claims)
		s.sent[dst] += claims
		s.pending[dst] = s.pending[dst][:0]
	}
}

// receiver tracks one rank's inbound drain positions.
type receiver struct {
	cs     *comms
	me     int
	mu     sync.Mutex
	read   []int64 // claims consumed per source channel
	sealed []bool  // per source: end-of-stream sentinel consumed
}

func newReceiver(cs *comms, me int) *receiver {
	return &receiver{cs: cs, me: me,
		read: make([]int64, cs.ranks), sealed: make([]bool, cs.ranks)}
}

// drain processes all currently visible claims on every channel, invoking
// handle(v, parent, depth) for each. A negative vertex is the sender's
// end-of-stream sentinel and seals that channel. Safe for concurrent
// callers (the HiPER variant's when-handlers and level-end flush).
func (r *receiver) drain(handle func(v, parent, depth int64)) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := 0
	loc := r.cs.data.Local(r.me)
	for src := 0; src < r.cs.ranks; src++ {
		avail := r.cs.counters.Peek(r.me, src)
		for r.read[src] < avail {
			off := src*3*r.cs.cap + int(3*r.read[src])
			if loc[off] < 0 {
				r.sealed[src] = true
			}
			handle(loc[off], loc[off+1], loc[off+2])
			r.read[src]++
			total++
		}
	}
	return total
}

// srcSealed reports whether src's end-of-stream sentinel has been
// consumed — src is guaranteed to send nothing further.
func (r *receiver) srcSealed(src int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sealed[src]
}

// totalRead reports claims consumed so far across channels.
func (r *receiver) totalRead() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var t int64
	for _, v := range r.read {
		t += v
	}
	return t
}

// bfsState is one rank's BFS bookkeeping.
type bfsState struct {
	g        GraphConfig
	ranks    int
	csr      *csr
	parent   []int64 // indexed by local vertex
	depth    []int64
	frontier []int64 // global vertex ids, owned by this rank
	nextMu   sync.Mutex
	next     []int64
	level    int64
}

func newBFSState(g GraphConfig, ranks, r int) *bfsState {
	c := buildLocalCSR(g, ranks, r)
	local := c.vHi - c.vLo
	st := &bfsState{g: g, ranks: ranks, csr: c,
		parent: make([]int64, local), depth: make([]int64, local)}
	for i := range st.parent {
		st.parent[i] = -1
		st.depth[i] = -1
	}
	return st
}

// tryClaim marks v (owned) with the given parent at the given depth;
// returns true if v was unvisited. Callers serialize via nextMu.
func (st *bfsState) tryClaim(v, parent, depth int64) bool {
	i := v - st.csr.vLo
	if st.parent[i] != -1 {
		return false
	}
	st.parent[i] = parent
	st.depth[i] = depth
	st.next = append(st.next, v)
	return true
}

// claimLocked is tryClaim under the mutex (for concurrent handlers).
func (st *bfsState) claimLocked(v, parent, depth int64) {
	st.nextMu.Lock()
	st.tryClaim(v, parent, depth)
	st.nextMu.Unlock()
}
