package graph500

import (
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/job"
)

func elasticTestConfig() ElasticConfig {
	return ElasticConfig{
		Graph:    GraphConfig{Scale: 8, EdgeFactor: 8, Seed: 5},
		Ranks:    3,
		Capacity: 8,
		Phases:   4,
		Plan:     fabric.FaultPlan{Seed: 42, Drop: 0.05, Dup: 0.05},
		Rel: fabric.RelConfig{
			RetryBase:    50 * time.Microsecond,
			RetryCap:     200 * time.Microsecond,
			MaxAttempts:  12,
			DeathSilence: 100 * time.Millisecond,
		},
		Events: []job.ElasticEvent{
			{AfterPhase: 0, Kind: "kill", Rank: 1},
			{AfterPhase: 1, Kind: "grow", Delta: 2},
			{AfterPhase: 2, Kind: "shrink", Delta: 1},
		},
		Workers: 1,
	}
}

// TestElasticBFSSurvivesChaosSchedule is the ISSUE's end-to-end Graph500
// proof: kill → checkpoint-restore onto a fresh endpoint, one grow, one
// shrink, each at a collective boundary, under 5% drop + 5% dup chaos,
// with every phase's depth array verified byte-identical to the
// sequential oracle inside RunElastic.
func TestElasticBFSSurvivesChaosSchedule(t *testing.T) {
	cfg := elasticTestConfig()
	res, err := RunElastic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Digests) != cfg.Phases {
		t.Fatalf("verified %d phases, want %d", len(res.Digests), cfg.Phases)
	}
	if len(res.Events) != len(cfg.Events) {
		t.Fatalf("applied %d events, want %d", len(res.Events), len(cfg.Events))
	}
	if res.Visited == 0 {
		t.Fatal("no vertices visited")
	}
}

// TestElasticBFSDeterministicAcrossMembership: a static clean-wire run at
// a different rank count produces the same per-phase depth digests — the
// BFS result is a property of the graph, not of membership or chaos.
func TestElasticBFSDeterministicAcrossMembership(t *testing.T) {
	a := elasticTestConfig()
	b := elasticTestConfig()
	b.Events = nil
	b.Ranks = 4
	b.Plan = fabric.FaultPlan{}
	ra, err := RunElastic(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunElastic(b)
	if err != nil {
		t.Fatal(err)
	}
	for ph := range ra.Digests {
		if ra.Digests[ph] != rb.Digests[ph] {
			t.Fatalf("phase %d digests diverge across membership: %#x vs %#x",
				ph, ra.Digests[ph], rb.Digests[ph])
		}
	}
}
