package graph500

import (
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/job"
)

// chaosSeedFromEnv mirrors the fabric test helper: the Makefile's chaos
// seed matrix overrides the default fault seed via HIPER_CHAOS_SEED.
func chaosSeedFromEnv(t testing.TB, def uint64) uint64 {
	t.Helper()
	s := os.Getenv("HIPER_CHAOS_SEED")
	if s == "" {
		return def
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		t.Fatalf("HIPER_CHAOS_SEED=%q: %v", s, err)
	}
	return v
}

func supervisedTestConfig(seed uint64) SuperviseConfig {
	return SuperviseConfig{
		Graph:    GraphConfig{Scale: 8, EdgeFactor: 8, Seed: 5},
		Ranks:    3,
		Capacity: 8,
		Phases:   3,
		Plan:     fabric.FaultPlan{Seed: seed, Drop: 0.05, Dup: 0.05},
		Rel: fabric.RelConfig{
			RetryBase:    50 * time.Microsecond,
			RetryCap:     200 * time.Microsecond,
			MaxAttempts:  12,
			DeathSilence: 100 * time.Millisecond,
		},
		Kills:   job.KillPlan{Seed: seed + 1000, Prob: 0.9, Max: 2},
		Workers: 1,
	}
}

// TestSupervisedBFSSurvivesUnscriptedKills is the ISSUE's end-to-end
// self-healing Graph500 proof: 5% drop + 5% dup chaos plus an opaque
// seeded KillPlan; a dead rank surfaces only as a wrong depth array
// (the fixed-trip level loop guarantees no hang), and the supervisor
// must detect, roll back, and remap or evict its way to depth arrays
// byte-identical to the sequential oracle for every committed phase.
func TestSupervisedBFSSurvivesUnscriptedKills(t *testing.T) {
	seed := chaosSeedFromEnv(t, 42)
	cfg := supervisedTestConfig(seed)
	killed := 0
	kills := cfg.Kills
	cfg.Inject = func(tab *fabric.EpochTable, kill func(ep int)) func(phase, attempt int) {
		return kills.Injector(tab, func(ep int) { killed++; kill(ep) })
	}
	res, err := RunSupervised(cfg)
	if err != nil {
		t.Fatalf("supervised run failed (report: %s): %v", res.Report, err)
	}
	if len(res.Digests) != cfg.Phases {
		t.Fatalf("committed %d phases, want %d", len(res.Digests), cfg.Phases)
	}
	if res.Visited == 0 {
		t.Fatal("no vertices visited")
	}
	if killed == 0 {
		t.Skipf("kill plan never fired under seed %d; self-healing not exercised", seed)
	}
	rep := res.Report
	if rep.Retries == 0 || rep.Remaps+rep.Evictions == 0 {
		t.Fatalf("%d kills fired but the report shows no recovery: %s", killed, rep)
	}
	for _, d := range rep.Detections {
		if d.Rounds <= 0 || d.Latency <= 0 {
			t.Fatalf("detection carries no latency: %+v", d)
		}
	}
}

// TestSupervisedBFSMatchesScriptedKill: the scripted-vs-detected
// convergence proof on BFS — an announced kill of rank 1 after phase 0
// and an opaque kill of the same rank's endpoint must converge to
// byte-identical per-phase depth digests.
func TestSupervisedBFSMatchesScriptedKill(t *testing.T) {
	seed := chaosSeedFromEnv(t, 42)

	ecfg := elasticTestConfig()
	ecfg.Plan = fabric.FaultPlan{Seed: seed, Drop: 0.05, Dup: 0.05}
	ecfg.Events = []job.ElasticEvent{{AfterPhase: 0, Kind: "kill", Rank: 1}}
	ecfg.Phases = 3
	scripted, err := RunElastic(ecfg)
	if err != nil {
		t.Fatalf("scripted kill run failed: %v", err)
	}

	scfg := supervisedTestConfig(seed)
	scfg.Kills = job.KillPlan{}
	scfg.Inject = func(tab *fabric.EpochTable, kill func(ep int)) func(phase, attempt int) {
		return func(phase, attempt int) {
			if phase == 1 && attempt == 0 {
				kill(tab.Endpoint(1))
			}
		}
	}
	detected, err := RunSupervised(scfg)
	if err != nil {
		t.Fatalf("detector-observed kill run failed (report: %s): %v", detected.Report, err)
	}
	if detected.Report.Remaps+detected.Report.Evictions == 0 {
		t.Fatalf("opaque kill was never recovered: %s", detected.Report)
	}

	if len(scripted.Digests) != len(detected.Digests) {
		t.Fatalf("phase counts diverge: scripted %d vs detected %d",
			len(scripted.Digests), len(detected.Digests))
	}
	for ph := range scripted.Digests {
		if scripted.Digests[ph] != detected.Digests[ph] {
			t.Fatalf("phase %d depth digest diverges: scripted %#x vs detected %#x",
				ph, scripted.Digests[ph], detected.Digests[ph])
		}
	}
}
