// Package graph500 implements the Graph500 benchmark kernel — parallel,
// distributed breadth-first search over a Kronecker graph — the paper's
// Section III-C2 study.
//
// Two variants reproduce the paper's comparison:
//
//   - Reference: the rank's main loop must constantly poll its inbound
//     channels for vertex-claim messages from remote processes, which adds
//     overhead and significantly complicates the implementation.
//   - HiPER: the polling is offloaded to the runtime with the novel
//     shmem_async_when API — a task is predicated on the channel counter
//     advancing, drains the new claims, and re-arms itself.
//
// Both variants must visit exactly the vertex set a sequential BFS visits,
// with a valid parent tree (every parent is a genuine neighbour one level
// closer to the root).
package graph500

import "fmt"

// GraphConfig parameterizes the Kronecker generator (Graph500 R-MAT
// parameters A=0.57, B=0.19, C=0.19).
type GraphConfig struct {
	Scale      int // N = 2^Scale vertices
	EdgeFactor int // M = EdgeFactor * N edges
	Seed       int64
}

// DefaultGraph is a laptop-scale stand-in for the paper's scale-31 runs.
var DefaultGraph = GraphConfig{Scale: 12, EdgeFactor: 16, Seed: 5}

func (g GraphConfig) numVertices() int64 { return int64(1) << g.Scale }
func (g GraphConfig) numEdges() int64    { return int64(g.EdgeFactor) * g.numVertices() }

func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// edge deterministically generates edge index e by R-MAT recursive
// quadrant selection: each of Scale bits picks a quadrant from a hash of
// (seed, e, level).
func (g GraphConfig) edge(e int64) (int64, int64) {
	var u, v int64
	base := splitmix(uint64(g.Seed))*0x100000001B3 + uint64(e)
	for bit := 0; bit < g.Scale; bit++ {
		r := splitmix(base + uint64(bit)*0x9E3779B97F4A7C15)
		p := float64(r>>11) / float64(1<<53) // uniform [0,1)
		u <<= 1
		v <<= 1
		// Quadrant probabilities: A=0.57 (0,0), B=0.19 (0,1), C=0.19 (1,0), D=0.05 (1,1).
		switch {
		case p < 0.57:
		case p < 0.76:
			v |= 1
		case p < 0.95:
			u |= 1
		default:
			u |= 1
			v |= 1
		}
	}
	return u, v
}

// csr is one rank's compressed adjacency over its owned vertices.
type csr struct {
	vLo, vHi int64 // owned vertex range [vLo, vHi)
	offs     []int64
	adj      []int64
}

// partition computes rank r's owned range under block partitioning.
func partition(n int64, ranks, r int) (lo, hi int64) {
	per := n / int64(ranks)
	rem := n % int64(ranks)
	lo = int64(r)*per + min64(int64(r), rem)
	hi = lo + per
	if int64(r) < rem {
		hi++
	}
	return lo, hi
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// owner returns the rank owning vertex v.
func owner(n int64, ranks int, v int64) int {
	per := n / int64(ranks)
	rem := n % int64(ranks)
	cut := rem * (per + 1)
	if v < cut {
		return int(v / (per + 1))
	}
	return int(rem + (v-cut)/per)
}

// buildLocalCSR generates the full edge list and keeps both directions of
// every edge whose endpoint this rank owns (self-loops dropped).
func buildLocalCSR(g GraphConfig, ranks, r int) *csr {
	n := g.numVertices()
	lo, hi := partition(n, ranks, r)
	local := hi - lo
	deg := make([]int64, local)
	m := g.numEdges()
	for e := int64(0); e < m; e++ {
		u, v := g.edge(e)
		if u == v {
			continue
		}
		if u >= lo && u < hi {
			deg[u-lo]++
		}
		if v >= lo && v < hi {
			deg[v-lo]++
		}
	}
	offs := make([]int64, local+1)
	for i := int64(0); i < local; i++ {
		offs[i+1] = offs[i] + deg[i]
	}
	adj := make([]int64, offs[local])
	fill := make([]int64, local)
	for e := int64(0); e < m; e++ {
		u, v := g.edge(e)
		if u == v {
			continue
		}
		if u >= lo && u < hi {
			i := u - lo
			adj[offs[i]+fill[i]] = v
			fill[i]++
		}
		if v >= lo && v < hi {
			i := v - lo
			adj[offs[i]+fill[i]] = u
			fill[i]++
		}
	}
	return &csr{vLo: lo, vHi: hi, offs: offs, adj: adj}
}

// neighbors returns vertex v's adjacency (v must be owned).
func (c *csr) neighbors(v int64) []int64 {
	i := v - c.vLo
	return c.adj[c.offs[i]:c.offs[i+1]]
}

// SequentialBFS runs the oracle BFS, returning parent (-1 unvisited) and
// depth (-1 unvisited) for every vertex.
func SequentialBFS(g GraphConfig, root int64) (parent, depth []int64) {
	full := buildLocalCSR(g, 1, 0)
	n := g.numVertices()
	parent = make([]int64, n)
	depth = make([]int64, n)
	for i := range parent {
		parent[i] = -1
		depth[i] = -1
	}
	parent[root] = root
	depth[root] = 0
	frontier := []int64{root}
	for d := int64(1); len(frontier) > 0; d++ {
		var next []int64
		for _, u := range frontier {
			for _, v := range full.neighbors(u) {
				if parent[v] == -1 {
					parent[v] = u
					depth[v] = d
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return parent, depth
}

// ValidateTree checks a BFS parent/depth assignment against the graph:
// root self-parented at depth 0; every visited vertex's parent is visited
// one level shallower; the visited set matches the sequential oracle.
func ValidateTree(g GraphConfig, root int64, parent, depth []int64) error {
	oraPar, oraDep := SequentialBFS(g, root)
	full := buildLocalCSR(g, 1, 0)
	n := g.numVertices()
	var visited, oraVisited int64
	for v := int64(0); v < n; v++ {
		if (parent[v] == -1) != (oraPar[v] == -1) {
			return fmt.Errorf("graph500: vertex %d visited=%v, oracle says %v", v, parent[v] != -1, oraPar[v] != -1)
		}
		if parent[v] == -1 {
			continue
		}
		visited++
		oraVisited++
		if depth[v] != oraDep[v] {
			return fmt.Errorf("graph500: vertex %d depth %d, oracle %d", v, depth[v], oraDep[v])
		}
		if v == root {
			if parent[v] != root || depth[v] != 0 {
				return fmt.Errorf("graph500: bad root entry")
			}
			continue
		}
		if depth[parent[v]] != depth[v]-1 {
			return fmt.Errorf("graph500: vertex %d parent %d not one level shallower", v, parent[v])
		}
		isNeighbor := false
		for _, nb := range full.neighbors(v) {
			if nb == parent[v] {
				isNeighbor = true
				break
			}
		}
		if !isNeighbor {
			return fmt.Errorf("graph500: vertex %d parent %d is not a neighbour", v, parent[v])
		}
	}
	if visited == 0 {
		return fmt.Errorf("graph500: nothing visited")
	}
	return nil
}
