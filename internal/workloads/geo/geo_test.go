package geo

import (
	"testing"
	"time"

	"repro/internal/simnet"
)

func smallCfg(ranks int) Config {
	return Config{
		NX: 12, NY: 12, NZ: 6, Steps: 3, Ranks: ranks, Workers: 2,
		Cost: simnet.CostModel{Alpha: 50 * time.Microsecond},
		Seed: 11,
	}
}

func TestInitialSlabDeterministic(t *testing.T) {
	cfg := smallCfg(2).withDefaults()
	a := initialSlab(cfg, 1)
	b := initialSlab(cfg, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("initial slab not deterministic")
		}
	}
	// Ghost planes start zero.
	for i := 0; i < planeSize(cfg); i++ {
		if a[i] != 0 {
			t.Fatal("low ghost plane not zero")
		}
	}
}

func TestUpdateCellBoundaryFixed(t *testing.T) {
	cfg := smallCfg(1).withDefaults()
	in := initialSlab(cfg, 0)
	out := make([]float64, len(in))
	updateCell(cfg, in, out, 1, 0, 5) // y boundary
	if out[idx(cfg, 1, 0, 5)] != in[idx(cfg, 1, 0, 5)] {
		t.Fatal("boundary cell not held fixed")
	}
	updateCell(cfg, in, out, 1, 5, 5) // interior
	want := cCenter*in[idx(cfg, 1, 5, 5)] + cNeigh*(in[idx(cfg, 0, 5, 5)]+in[idx(cfg, 2, 5, 5)]+
		in[idx(cfg, 1, 4, 5)]+in[idx(cfg, 1, 6, 5)]+in[idx(cfg, 1, 5, 4)]+in[idx(cfg, 1, 5, 6)])
	if out[idx(cfg, 1, 5, 5)] != want {
		t.Fatal("stencil arithmetic wrong")
	}
}

func TestKernelCoversPlaneRange(t *testing.T) {
	cfg := smallCfg(1).withDefaults()
	in := initialSlab(cfg, 0)
	out := make([]float64, len(in))
	grid, k := kernelForPlanes(cfg, in, out, 2, 4)
	if grid != 3*cfg.NY*cfg.NX {
		t.Fatalf("grid = %d", grid)
	}
	for g := 0; g < grid; g++ {
		k(g)
	}
	// Plane 1 untouched, planes 2..4 written.
	if out[idx(cfg, 1, 5, 5)] != 0 {
		t.Fatal("kernel wrote outside its plane range")
	}
	if out[idx(cfg, 3, 5, 5)] == 0 && in[idx(cfg, 3, 5, 5)] != 0 {
		t.Fatal("kernel did not write plane 3")
	}
}

func TestSingleRankVariantsAgree(t *testing.T) {
	cfg := smallCfg(1)
	if err := Validate(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMultiRankVariantsAgree(t *testing.T) {
	if err := Validate(smallCfg(3)); err != nil {
		t.Fatal(err)
	}
}

func TestDecompositionInvariance(t *testing.T) {
	// The same global domain split over 1, 2, and 4 ranks must produce the
	// same global checksum: ghost exchange must be exactly equivalent to a
	// contiguous domain. Global NZ = 12.
	base := Config{NX: 10, NY: 10, Steps: 3, Workers: 2, Seed: 5}
	var sums []float64
	for _, r := range []int{1, 2, 4} {
		cfg := base
		cfg.Ranks = r
		cfg.NZ = 12 / r
		res, err := RunHiPER(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sums = append(sums, res.Checksum)
	}
	// initialSlab is coordinate-based, so fields match across
	// decompositions up to summation-order rounding.
	for i := 1; i < len(sums); i++ {
		if d := sums[i] - sums[0]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("checksums differ across decompositions: %v", sums)
		}
	}
}

func TestChecksumEvolves(t *testing.T) {
	cfg := smallCfg(2)
	r1, err := RunMPICUDA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Steps = cfg.Steps + 3
	r2, err := RunMPICUDA(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Checksum == r2.Checksum {
		t.Fatal("field did not evolve with more steps")
	}
}
