// Package geo implements the paper's GEO benchmark: a three-dimensional
// stencil application for geophysical subsurface imaging, with the regular
// grid distributed in the z-direction among MPI ranks. Each time step runs
// a data-parallel kernel over the local slab and then exchanges ghost
// planes with the z-neighbours (the structure of Section II-D).
//
// Two variants reproduce Figure 6:
//
//   - MPI+CUDA (reference): the hand-coded sequence of blocking
//     operations — kernel, cudaMemcpy D2H, Isend/Irecv, kernel, Waitall,
//     cudaMemcpy H2D — whose blocking calls waste host CPU cycles.
//   - HiPER: the same computation expressed with futures — forasync_cuda,
//     MPI_Isend_await, async_copy_await — so boundary kernels, transfers,
//     communication, and the interior kernel all overlap. The paper
//     reports a consistent ~2% improvement from eliminating blocking.
//
// Both variants compute identical floating-point results (same update per
// cell), which the tests verify bit-for-bit.
package geo

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/hipercuda"
	"repro/internal/hipermpi"
	"repro/internal/job"
	"repro/internal/modules"
	"repro/internal/mpi"
	"repro/internal/simnet"
)

// Config parameterizes a run. Weak scaling: each rank owns NZ planes of
// NX×NY cells regardless of rank count.
type Config struct {
	NX, NY, NZ int // local slab dimensions (NZ planes per rank)
	Steps      int
	Ranks      int
	Workers    int // HiPER workers per rank (reference variant ignores)
	Cost       simnet.CostModel
	GPU        cuda.Config
	Seed       int64
	// PollInterval tunes the HiPER modules' completion pollers; smaller
	// values tighten future-chain latency at the cost of poll CPU.
	PollInterval time.Duration
	// Policy selects the HiPER variant's scheduling policy (nil keeps the
	// built-in random-steal). The blocking reference ignores it.
	Policy core.SchedPolicy
}

func (c Config) withDefaults() Config {
	if c.NX == 0 {
		c.NX = 32
	}
	if c.NY == 0 {
		c.NY = 32
	}
	if c.NZ == 0 {
		c.NZ = 16
	}
	if c.Steps == 0 {
		c.Steps = 4
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.GPU.SMs == 0 {
		c.GPU.SMs = 4
	}
	return c
}

// Result reports one run.
type Result struct {
	Variant string
	Ranks   int
	Elapsed time.Duration
	// Checksum is the sum over every rank's final field, for cross-variant
	// comparison.
	Checksum float64
}

// Stencil coefficients (7-point).
const (
	cCenter = 0.5
	cNeigh  = 1.0 / 12.0
)

// plane/cell indexing within a slab buffer of (nz+2) planes: index
// (z, y, x) with z including the two ghost planes at z=0 and z=nz+1.
func idx(cfg Config, z, y, x int) int {
	return (z*cfg.NY+y)*cfg.NX + x
}

func planeSize(cfg Config) int { return cfg.NX * cfg.NY }

func slabSize(cfg Config) int { return (cfg.NZ + 2) * planeSize(cfg) }

// initialSlab builds rank r's initial field (ghosts zero), deterministic
// in the global coordinates so every variant starts identically.
func initialSlab(cfg Config, r int) []float64 {
	f := make([]float64, slabSize(cfg))
	for z := 1; z <= cfg.NZ; z++ {
		gz := r*cfg.NZ + z - 1
		for y := 0; y < cfg.NY; y++ {
			for x := 0; x < cfg.NX; x++ {
				h := uint64(cfg.Seed)*0x9E3779B97F4A7C15 + uint64(gz)*1000003 + uint64(y)*10007 + uint64(x)
				h ^= h >> 33
				h *= 0xFF51AFD7ED558CCD
				h ^= h >> 33
				f[idx(cfg, z, y, x)] = float64(h%1000) / 1000.0
			}
		}
	}
	return f
}

// updateCell computes one stencil update reading from in, writing to out.
// x/y boundary cells are held fixed (Dirichlet); z neighbours come from
// ghost planes.
func updateCell(cfg Config, in, out []float64, z, y, x int) {
	if x == 0 || x == cfg.NX-1 || y == 0 || y == cfg.NY-1 {
		out[idx(cfg, z, y, x)] = in[idx(cfg, z, y, x)]
		return
	}
	i := idx(cfg, z, y, x)
	out[i] = cCenter*in[i] + cNeigh*(in[idx(cfg, z-1, y, x)]+in[idx(cfg, z+1, y, x)]+
		in[idx(cfg, z, y-1, x)]+in[idx(cfg, z, y+1, x)]+
		in[idx(cfg, z, y, x-1)]+in[idx(cfg, z, y, x+1)])
}

// kernelForPlanes returns a CUDA kernel updating planes [zLo, zHi] of the
// slab (grid index space: (zHi-zLo+1) * NY * NX).
func kernelForPlanes(cfg Config, in, out []float64, zLo, zHi int) (int, cuda.Kernel) {
	ny, nx := cfg.NY, cfg.NX
	grid := (zHi - zLo + 1) * ny * nx
	return grid, func(g int) {
		z := zLo + g/(ny*nx)
		rem := g % (ny * nx)
		updateCell(cfg, in, out, z, rem/nx, rem%nx)
	}
}

// checksum sums a slab's interior.
func checksum(cfg Config, f []float64) float64 {
	var s float64
	for z := 1; z <= cfg.NZ; z++ {
		for y := 0; y < cfg.NY; y++ {
			for x := 0; x < cfg.NX; x++ {
				s += f[idx(cfg, z, y, x)]
			}
		}
	}
	return s
}

// Message tags for the two exchange directions.
const (
	tagUp   = 1 // plane travelling to the higher rank
	tagDown = 2 // plane travelling to the lower rank
)

// RunMPICUDA is the hand-optimized blocking reference: the exact
// MPI+CUDA sequence from Section II-D, one single-threaded host flow per
// rank driving a device.
func RunMPICUDA(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	world := mpi.NewWorld(cfg.Ranks, cfg.Cost)
	ps := planeSize(cfg)
	sums := make([]float64, cfg.Ranks)

	start := time.Now()
	err := job.RunFlat(cfg.Ranks, func(r int) error {
		comm := world.Comm(r)
		dev := cuda.NewDevice(cfg.GPU)
		a := dev.MustMalloc(slabSize(cfg))
		b := dev.MustMalloc(slabSize(cfg))
		host := initialSlab(cfg, r)
		dev.MemcpyH2D(a, 0, host)

		sendLo := make([]float64, ps)
		sendHi := make([]float64, ps)
		recvLo := make([]byte, 8*ps)
		recvHi := make([]byte, 8*ps)

		// Prime the ghost planes of the initial field so the first step
		// sees the neighbours' initial boundary values.
		var init []*mpi.Request
		if r > 0 {
			init = append(init,
				comm.Isend(mpi.EncodeFloat64s(host[idx(cfg, 1, 0, 0):idx(cfg, 1, 0, 0)+ps]), r-1, tagDown),
				comm.Irecv(recvLo, r-1, tagUp))
		}
		if r < cfg.Ranks-1 {
			init = append(init,
				comm.Isend(mpi.EncodeFloat64s(host[idx(cfg, cfg.NZ, 0, 0):idx(cfg, cfg.NZ, 0, 0)+ps]), r+1, tagUp),
				comm.Irecv(recvHi, r+1, tagDown))
		}
		mpi.Waitall(init...)
		if r > 0 {
			dev.MemcpyH2D(a, idx(cfg, 0, 0, 0), mpi.DecodeFloat64s(recvLo))
		}
		if r < cfg.Ranks-1 {
			dev.MemcpyH2D(a, idx(cfg, cfg.NZ+1, 0, 0), mpi.DecodeFloat64s(recvHi))
		}

		in, out := a, b
		for t := 0; t < cfg.Steps; t++ {
			// Process the whole slab on the device (blocking).
			grid, k := kernelForPlanes(cfg, in.Data(), out.Data(), 1, cfg.NZ)
			dev.Launch(grid, k)

			// Copy boundary planes from the device (blocking cudaMemcpy),
			// only for directions that actually have a neighbour.
			if r > 0 {
				dev.MemcpyD2H(sendLo, out, idx(cfg, 1, 0, 0), ps)
			}
			if r < cfg.Ranks-1 {
				dev.MemcpyD2H(sendHi, out, idx(cfg, cfg.NZ, 0, 0), ps)
			}

			// Exchange ghost planes with z-neighbours.
			var reqs []*mpi.Request
			if r > 0 {
				reqs = append(reqs,
					comm.Isend(mpi.EncodeFloat64s(sendLo), r-1, tagDown),
					comm.Irecv(recvLo, r-1, tagUp))
			}
			if r < cfg.Ranks-1 {
				reqs = append(reqs,
					comm.Isend(mpi.EncodeFloat64s(sendHi), r+1, tagUp),
					comm.Irecv(recvHi, r+1, tagDown))
			}
			mpi.Waitall(reqs...)

			// Copy received ghost planes to the device (blocking).
			if r > 0 {
				dev.MemcpyH2D(out, idx(cfg, 0, 0, 0), mpi.DecodeFloat64s(recvLo))
			}
			if r < cfg.Ranks-1 {
				dev.MemcpyH2D(out, idx(cfg, cfg.NZ+1, 0, 0), mpi.DecodeFloat64s(recvHi))
			}
			in, out = out, in
		}
		final := make([]float64, slabSize(cfg))
		dev.MemcpyD2H(final, in, 0, slabSize(cfg))
		sums[r] = checksum(cfg, final)
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, err
	}
	var total float64
	for _, s := range sums {
		total += s
	}
	return Result{Variant: "mpi+cuda", Ranks: cfg.Ranks, Elapsed: elapsed, Checksum: total}, nil
}

// RunHiPER is the future-based HiPER variant of the same computation
// (Section II-D's final listing): boundary kernels, D2H copies, sends,
// receives, H2D copies, and the interior kernel are all asynchronous
// tasks chained by exactly the futures they depend on.
func RunHiPER(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	world := mpi.NewWorld(cfg.Ranks, cfg.Cost)
	ps := planeSize(cfg)
	sums := make([]float64, cfg.Ranks)
	mpiMods := make([]*hipermpi.Module, cfg.Ranks)
	cudaMods := make([]*hipercuda.Module, cfg.Ranks)

	start := time.Now()
	err := job.Run(job.Spec{Ranks: cfg.Ranks, WorkersPerRank: cfg.Workers, GPUs: 1,
		Policy: cfg.Policy, OnStart: func() { start = time.Now() }},
		func(p *job.Proc) error {
			mpiMods[p.Rank] = hipermpi.New(world.Comm(p.Rank), &hipermpi.Options{PollInterval: cfg.PollInterval})
			cudaMods[p.Rank] = hipercuda.New(cuda.NewDevice(cfg.GPU), &hipercuda.Options{PollInterval: cfg.PollInterval})
			if err := modules.Install(p.RT, mpiMods[p.Rank]); err != nil {
				return err
			}
			return modules.Install(p.RT, cudaMods[p.Rank])
		},
		func(p *job.Proc, c *core.Ctx) {
			r := p.Rank
			mm := mpiMods[r]
			cm := cudaMods[r]
			a := cm.MustMalloc(slabSize(cfg))
			b := cm.MustMalloc(slabSize(cfg))
			host := initialSlab(cfg, r)
			cm.MemcpyH2D(c, a, 0, host)

			sendLo := make([]float64, ps)
			sendHi := make([]float64, ps)
			recvLo := make([]byte, 8*ps)
			recvHi := make([]byte, 8*ps)

			// Prime the initial ghost planes (futures compose even here:
			// each H2D copy awaits exactly its receive).
			c.Finish(func(c *core.Ctx) {
				if r > 0 {
					mm.Isend(c, mpi.EncodeFloat64s(host[idx(cfg, 1, 0, 0):idx(cfg, 1, 0, 0)+ps]), r-1, tagDown)
					recv := mm.Irecv(c, recvLo, r-1, tagUp)
					c.AsyncAwait(func(cc *core.Ctx) {
						cm.MemcpyH2D(cc, a, idx(cfg, 0, 0, 0), mpi.DecodeFloat64s(recvLo))
					}, recv)
				}
				if r < cfg.Ranks-1 {
					mm.Isend(c, mpi.EncodeFloat64s(host[idx(cfg, cfg.NZ, 0, 0):idx(cfg, cfg.NZ, 0, 0)+ps]), r+1, tagUp)
					recv := mm.Irecv(c, recvHi, r+1, tagDown)
					c.AsyncAwait(func(cc *core.Ctx) {
						cm.MemcpyH2D(cc, a, idx(cfg, cfg.NZ+1, 0, 0), mpi.DecodeFloat64s(recvHi))
					}, recv)
				}
			})

			in, out := a, b
			for t := 0; t < cfg.Steps; t++ {
				// Outer finish scope: all work of this time step completes
				// before the next begins.
				c.Finish(func(c *core.Ctx) {
					var waits []*core.Future
					// Asynchronously process the ghost planes — only the
					// planes that actually feed a neighbour; edge ranks fold
					// their boundary planes into the interior kernel.
					var ghostLo, ghostHi *core.Future
					if r > 0 {
						gridLo, kLo := kernelForPlanes(cfg, in.Data(), out.Data(), 1, 1)
						ghostLo = cm.ForasyncCUDA(c, gridLo, kLo)
						waits = append(waits, ghostLo)
					}
					if r < cfg.Ranks-1 {
						gridHi, kHi := kernelForPlanes(cfg, in.Data(), out.Data(), cfg.NZ, cfg.NZ)
						ghostHi = cm.ForasyncCUDA(c, gridHi, kHi)
						waits = append(waits, ghostHi)
					}

					// Chain D2H copies and sends on the boundary kernels.
					if r > 0 {
						d2h := cm.MemcpyD2HAwait(c, sendLo, out, idx(cfg, 1, 0, 0), ps, ghostLo)
						send := c.AsyncFutureAwait(func(cc *core.Ctx) any {
							cc.Wait(mm.Isend(cc, mpi.EncodeFloat64s(sendLo), r-1, tagDown))
							return nil
						}, d2h)
						waits = append(waits, send)
						recv := mm.Irecv(c, recvLo, r-1, tagUp)
						h2d := c.AsyncFutureAwait(func(cc *core.Ctx) any {
							cc.Wait(cm.MemcpyH2DAsync(cc, out, idx(cfg, 0, 0, 0), mpi.DecodeFloat64s(recvLo)))
							return nil
						}, recv)
						waits = append(waits, h2d)
					}
					if r < cfg.Ranks-1 {
						d2h := cm.MemcpyD2HAwait(c, sendHi, out, idx(cfg, cfg.NZ, 0, 0), ps, ghostHi)
						send := c.AsyncFutureAwait(func(cc *core.Ctx) any {
							cc.Wait(mm.Isend(cc, mpi.EncodeFloat64s(sendHi), r+1, tagUp))
							return nil
						}, d2h)
						waits = append(waits, send)
						recv := mm.Irecv(c, recvHi, r+1, tagDown)
						h2d := c.AsyncFutureAwait(func(cc *core.Ctx) any {
							cc.Wait(cm.MemcpyH2DAsync(cc, out, idx(cfg, cfg.NZ+1, 0, 0), mpi.DecodeFloat64s(recvHi)))
							return nil
						}, recv)
						waits = append(waits, h2d)
					}
					// Asynchronously process the interior while the
					// exchange is in flight.
					zLo, zHi := 1, cfg.NZ
					if r > 0 {
						zLo = 2
					}
					if r < cfg.Ranks-1 {
						zHi = cfg.NZ - 1
					}
					if zHi >= zLo {
						grid, k := kernelForPlanes(cfg, in.Data(), out.Data(), zLo, zHi)
						waits = append(waits, cm.ForasyncCUDA(c, grid, k))
					}
					c.Wait(core.WhenAll(c.Runtime(), waits...))
				})
				in, out = out, in
			}
			final := make([]float64, slabSize(cfg))
			cm.MemcpyD2H(c, final, in, 0, slabSize(cfg))
			sums[r] = checksum(cfg, final)
		})
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, err
	}
	var total float64
	for _, s := range sums {
		total += s
	}
	return Result{Variant: "hiper", Ranks: cfg.Ranks, Elapsed: elapsed, Checksum: total}, nil
}

// Validate cross-checks the two variants' checksums at small scale; the
// arithmetic is identical so the results must match exactly.
func Validate(cfg Config) error {
	a, err := RunMPICUDA(cfg)
	if err != nil {
		return err
	}
	b, err := RunHiPER(cfg)
	if err != nil {
		return err
	}
	if a.Checksum != b.Checksum {
		return fmt.Errorf("geo: variants disagree: %v vs %v", a.Checksum, b.Checksum)
	}
	return nil
}
