package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// RawDelayOutsideFabric flags hand-rolled communication timing in the
// library modules: calls to CostModel.Delay/DelayBetween and to
// spin.Sleep/spin.Until in the communication packages (simnet, mpi,
// shmem, upcxx, cuda, and their HiPER module layers). The transport
// layer (internal/fabric) is the single owner of delay math and of the
// goroutines that realize it — that is what makes congestion, locality,
// and FIFO link ordering apply uniformly across every module sharing a
// fabric, and what keeps msg-send/msg-recv trace events complete. A
// module that sleeps out the cost model privately reintroduces the
// drift this refactor removed: its traffic is invisible to the shared
// per-destination congestion windows and to the tracer.
//
// Modules move data by issuing Transport.Send/Put/Get and reacting to
// the delivery callbacks. Genuinely non-communication latencies (e.g. a
// kernel launch overhead) can be suppressed at the site with
// //hiperlint:ignore and a justification.
type RawDelayOutsideFabric struct{}

// Name implements Checker.
func (*RawDelayOutsideFabric) Name() string { return "raw-delay-outside-fabric" }

// Doc implements Checker.
func (*RawDelayOutsideFabric) Doc() string {
	return "communication modules must not compute or sleep out transfer delays themselves (CostModel.Delay/DelayBetween, spin.Sleep/Until); issue transport operations instead"
}

// commPackages are the module-root-relative package suffixes whose data
// paths must route through the transport. internal/fabric itself is the
// one place delay math belongs, so it is absent.
var commPackages = []string{
	"internal/simnet",
	"internal/mpi",
	"internal/shmem",
	"internal/upcxx",
	"internal/cuda",
	"internal/hipermpi",
	"internal/hipershmem",
	"internal/hiperupcxx",
	"internal/hipercuda",
}

// AppliesTo implements scoped.
func (*RawDelayOutsideFabric) AppliesTo(importPath string) bool {
	for _, suffix := range commPackages {
		if strings.HasSuffix(importPath, suffix) {
			return true
		}
	}
	return false
}

// Check implements Checker.
func (c *RawDelayOutsideFabric) Check(p *Package, r *Reporter) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Delay", "DelayBetween":
				if isCostModelRecv(p, sel.X) {
					r.Reportf(call.Pos(), "CostModel.%s computed outside internal/fabric; the transport owns delay math — issue Send/Put/Get and use the delivery callbacks", sel.Sel.Name)
				}
			case "Sleep", "Until":
				if isSpinPkg(p, sel.X) {
					r.Reportf(call.Pos(), "spin.%s on a communication data path; modelled transfer time belongs to the transport (internal/fabric), not a private sleep", sel.Sel.Name)
				}
			}
			return true
		})
	}
}

// isCostModelRecv reports whether e's type (possibly behind a pointer)
// is a named type called CostModel. Matching by bare name rather than
// full path keeps the checker exercisable from fixtures, which declare
// their own CostModel stand-in.
func isCostModelRecv(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return namedTypeName(tv.Type) == "CostModel"
}

// isSpinPkg reports whether e names an imported package whose path ends
// in /spin (the runtime's calibrated spin-wait package, or a fixture's
// local stand-in).
func isSpinPkg(p *Package, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	if obj, ok := p.Info.Uses[id]; ok {
		pn, ok := obj.(*types.PkgName)
		return ok && (strings.HasSuffix(pn.Imported().Path(), "/spin") || pn.Imported().Path() == "spin")
	}
	return id.Name == "spin" // untyped fallback
}
