package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// LockOrderCycle is static deadlock detection over the runtime's shared
// locks. It builds the acquires-while-holding graph across the packages
// that can share locks in one process — internal/core, internal/fabric,
// internal/trace (and fixtures) — and reports every cycle.
//
// Nodes are named mutexes: struct-field mutexes keyed by their owning
// type ("fabric.Sim.mu"), package-level mutexes by their variable
// ("core.regMu"). An edge A → B means some goroutine can attempt to
// lock B while holding A: either a direct Lock in the same function
// body, or — via the call graph's effect summaries — a call made while
// holding A to a function that (transitively) acquires B. Two locks of
// the same key are a self-edge: distinct instances of one type locked
// under each other deadlock the moment the instance order inverts.
//
// A cycle A → B → A means two goroutines can each hold one lock while
// waiting for the other — the textbook deadlock the race detector only
// finds when the schedule cooperates. The report carries both witness
// paths (one per edge), so the fix — picking one order and sticking to
// it — has its sites named.
type LockOrderCycle struct{}

// Name implements Checker.
func (*LockOrderCycle) Name() string { return "lock-order-cycle" }

// Doc implements Checker.
func (*LockOrderCycle) Doc() string {
	return "the acquires-while-holding graph across internal/{core,fabric,trace} must stay acyclic (static deadlock detection)"
}

// AppliesTo implements scoped: the packages whose locks can meet in one
// process under the runtime's own control flow.
func (*LockOrderCycle) AppliesTo(importPath string) bool {
	for _, s := range []string{"internal/core", "internal/fabric", "internal/trace"} {
		if strings.HasSuffix(importPath, s) {
			return true
		}
	}
	return false
}

// Check implements Checker. The real analysis is the module pass.
func (*LockOrderCycle) Check(p *Package, r *Reporter) {}

// lockEdge is one acquires-while-holding observation.
type lockEdge struct {
	from, to string
	pos      token.Pos // the acquisition (or call) site observed
	viaCall  string    // callee chain when the acquisition is transitive
	owner    string    // function the observation was made in
}

// CheckModule implements ModuleChecker.
func (c *LockOrderCycle) CheckModule(pkgs []*Package, r *Reporter) {
	var edges []lockEdge
	for _, pkg := range pkgs {
		if pkg.Prog == nil || !applies(c, pkg) {
			continue
		}
		for _, fi := range pkg.Prog.nodesOf(pkg) {
			edges = append(edges, lockEdgesOf(pkg, fi)...)
		}
	}
	reportLockCycles(edges, r)
}

// lockEdgesOf linearizes one function body into lock/unlock/call events
// (the sendlock.go discipline: deferred Unlocks hold to function exit,
// nested literals are their own bodies) and emits an edge for every
// acquisition attempted while something is held.
func lockEdgesOf(pkg *Package, fi *FuncInfo) []lockEdge {
	body := fi.Body()
	if body == nil {
		return nil
	}
	prog := pkg.Prog
	b := &builder{prog: prog, pkg: pkg, fi: fi} // reuse lockKey resolution

	type ev struct {
		pos      token.Pos
		kind     int    // 0 lock, 1 unlock, 2 call
		key      string // lock/unlock key
		call     *ast.CallExpr
		deferred bool
	}
	var events []ev
	goCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			// The spawned callee acquires on its own goroutine, not while
			// holding this one's locks; argument expressions still walk.
			goCalls[n.Call] = true
			return true
		case *ast.DeferStmt:
			// A deferred Unlock holds the section open to function exit;
			// a deferred call to a locking helper still acquires, at exit.
			if sel, ok := ast.Unparen(n.Call.Fun).(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock" {
					return false
				}
			}
			events = append(events, ev{pos: n.Pos(), kind: 2, call: n.Call, deferred: true})
			return false
		case *ast.CallExpr:
			if goCalls[n] {
				return true
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					if key := b.lockKey(sel.X); key != "" {
						events = append(events, ev{pos: n.Pos(), kind: 0, key: key})
						return true
					}
				case "Unlock", "RUnlock":
					if key := b.lockKey(sel.X); key != "" {
						events = append(events, ev{pos: n.Pos(), kind: 1, key: key})
						return true
					}
				}
			}
			events = append(events, ev{pos: n.Pos(), kind: 2, call: n})
			return true
		}
		return true
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	var edges []lockEdge
	held := make(map[string]bool)
	var order []string // stable iteration for deterministic output
	holdAll := func(to string, pos token.Pos, via string) {
		for _, h := range order {
			if !held[h] {
				continue
			}
			edges = append(edges, lockEdge{from: h, to: to, pos: pos, viaCall: via, owner: fi.Name})
		}
	}
	anyHeld := func() bool {
		for _, h := range order {
			if held[h] {
				return true
			}
		}
		return false
	}
	for _, e := range events {
		switch e.kind {
		case 0:
			holdAll(e.key, e.pos, "")
			if !held[e.key] {
				held[e.key] = true
				order = append(order, e.key)
			}
		case 1:
			held[e.key] = false
		case 2:
			if !anyHeld() {
				continue
			}
			for _, callee := range prog.resolveCallee(pkg, e.call) {
				sum := prog.Summary(callee)
				for _, k := range sortedKeys(sum.Acquires) {
					eff := sum.Acquires[k]
					holdAll(k, e.call.Pos(), chainOrSelf(callee, eff))
				}
			}
		}
	}
	return edges
}

// reportLockCycles finds strongly connected components in the edge set
// and reports each cycle once, at its lexicographically first edge, with
// every witness path in the message.
func reportLockCycles(edges []lockEdge, r *Reporter) {
	adj := make(map[string]map[string]lockEdge) // first witness per (from,to)
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = make(map[string]lockEdge)
		}
		if _, ok := adj[e.from][e.to]; !ok {
			adj[e.from][e.to] = e
		}
	}
	comp := lockSCCs(adj)
	reported := make(map[int]bool)
	for _, e := range edges {
		ci, ok := comp[e.from]
		if !ok || comp[e.to] != ci || reported[ci] {
			continue
		}
		// Self-edges are their own cycle; larger components need >1 node.
		if e.from != e.to && !multiNode(comp, ci) {
			continue
		}
		reported[ci] = true
		var members []string
		for k, c := range comp {
			if c == ci {
				members = append(members, k)
			}
		}
		sort.Strings(members)
		var wits []string
		for _, from := range members {
			for _, to := range sortedEdgeKeys(adj[from]) {
				if comp[to] != ci {
					continue
				}
				w := adj[from][to]
				site := r.Position(w.pos)
				if w.viaCall != "" {
					wits = append(wits, from+" → "+to+" (in "+w.owner+" via "+w.viaCall+" at "+site+")")
				} else {
					wits = append(wits, from+" → "+to+" (in "+w.owner+" at "+site+")")
				}
			}
		}
		r.Reportf(e.pos, "lock-order cycle among {%s}: %s; pick one acquisition order and hold to it, or split the critical sections",
			strings.Join(members, ", "), strings.Join(wits, "; "))
	}
}

// multiNode reports whether component ci has more than one member.
func multiNode(comp map[string]int, ci int) bool {
	n := 0
	for _, c := range comp {
		if c == ci {
			n++
		}
	}
	return n > 1
}

// lockSCCs is Tarjan over the string-keyed lock graph, returning a
// component index per node. Only nodes on a cycle matter to the caller;
// singleton components without self-edges are filtered there.
func lockSCCs(adj map[string]map[string]lockEdge) map[string]int {
	index := make(map[string]int)
	low := make(map[string]int)
	on := make(map[string]bool)
	comp := make(map[string]int)
	var stack []string
	next, nComp := 0, 0

	var visit func(v string)
	visit = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		on[v] = true
		for _, w := range sortedEdgeKeys(adj[v]) {
			if _, seen := index[w]; !seen {
				visit(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if on[w] {
				if index[w] < low[v] {
					low[v] = index[w]
				}
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				on[w] = false
				comp[w] = nComp
				if w == v {
					break
				}
			}
			nComp++
		}
	}
	var nodes []string
	for v := range adj {
		nodes = append(nodes, v)
	}
	sort.Strings(nodes)
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			visit(v)
		}
	}
	return comp
}

func sortedKeys(m map[string]Effect) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedEdgeKeys(m map[string]lockEdge) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
