// Package lint is hiper-lint's analysis engine: a pure-stdlib (go/ast,
// go/parser, go/types, go/token) driver with project-specific checkers
// that enforce the runtime's concurrency invariants statically. The
// rules it encodes are the ones DESIGN.md documents as load-bearing —
// tasks suspend instead of blocking worker threads, park tokens are
// sent under the idle lock, atomically-accessed fields are never mixed
// with plain access — plus plain error-discipline for the runtime and
// communication packages.
//
// Since the interprocedural rework, the driver also builds a whole-
// module call graph (graph.go) and per-function effect summaries
// (summary.go), so the invariant checkers see through helper chains:
// a task body that reaches time.Sleep three calls down is flagged at
// the call site with the witness chain, and whole-module checkers
// (lock-order-cycle, goroutine-leak, tag-space) reason about the
// acquires-while-holding graph, spawn joinability, and the fabric tag
// space across every analyzed package at once.
//
// Findings can be suppressed at the site with a justification:
//
//	//hiperlint:ignore <checker> <reason>
//
// placed on the offending line or the line directly above it. The
// checker name may be "all". Directives missing a checker or a reason
// are themselves reported (checker "bad-directive"), and -audit mode
// reports directives that no longer suppress anything (checker
// "stale-suppression"), so suppressions stay auditable and cannot rot.
package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic, positioned at a source line.
type Finding struct {
	Checker string `json:"checker"`
	File    string `json:"file"` // module-root-relative, slash-separated
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Checker, f.Message)
}

// Checker is one analysis. Check walks a loaded package and reports
// findings through r.
type Checker interface {
	Name() string
	Doc() string
	Check(p *Package, r *Reporter)
}

// ModuleChecker is a checker that additionally runs one whole-module
// pass after every package has been checked, seeing all analyzed
// packages (and, through them, the shared Program) at once. Cross-
// package analyses — the lock-order graph, tag-space overlap — live
// here.
type ModuleChecker interface {
	Checker
	CheckModule(pkgs []*Package, r *Reporter)
}

// scoped is implemented by checkers that only apply to particular
// packages (testdata fixtures always pass, so fixtures can exercise
// scoped checkers regardless of where they live).
type scoped interface {
	AppliesTo(importPath string) bool
}

// applies reports whether checker ch runs over pkg at all.
func applies(ch Checker, pkg *Package) bool {
	sc, ok := ch.(scoped)
	return !ok || pkg.IsFixture() || sc.AppliesTo(pkg.ImportPath)
}

// Checkers returns the full checker registry, in reporting order.
func Checkers() []Checker {
	return []Checker{
		&BlockingInTask{},
		&MixedAtomicAccess{},
		&SendOutsideLock{},
		&UncheckedError{},
		&RawDelayOutsideFabric{},
		&SpinWaitOutsidePoller{},
		&RecoverOutsideWorker{},
		&LockOrderCycle{},
		&GoroutineLeak{},
		&TagSpace{},
	}
}

// CheckerNames lists the registered checker names.
func CheckerNames() []string {
	var names []string
	for _, c := range Checkers() {
		names = append(names, c.Name())
	}
	return names
}

// Reporter collects findings, relativizing file paths to the module
// root. One Reporter spans the whole run; pkg is rebound as the driver
// moves between packages (and is nil during module passes, which span
// packages but share the loader's FileSet).
type Reporter struct {
	fset     *token.FileSet
	modRoot  string
	findings []Finding
	current  string // name of the checker currently running
}

// Reportf records a finding at pos.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	p := r.fset.Position(pos)
	file := p.Filename
	if rel, err := filepath.Rel(r.modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	r.findings = append(r.findings, Finding{
		Checker: r.current,
		File:    file,
		Line:    p.Line,
		Col:     p.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Position resolves a token.Pos to a module-root-relative display
// string, for checkers that embed a second location in a message.
func (r *Reporter) Position(pos token.Pos) string {
	p := r.fset.Position(pos)
	file := p.Filename
	if rel, err := filepath.Rel(r.modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s:%d", file, p.Line)
}

// Config selects which checkers run. Empty Enable means all registered
// checkers; Disable is subtracted afterwards. Audit additionally
// reports stale suppression directives (well-formed //hiperlint:ignore
// comments that suppressed no finding in this run) as findings.
type Config struct {
	Enable  []string
	Disable []string
	Audit   bool
}

func (c Config) active() ([]Checker, error) {
	all := Checkers()
	byName := make(map[string]Checker, len(all))
	for _, ch := range all {
		byName[ch.Name()] = ch
	}
	var picked []Checker
	if len(c.Enable) == 0 {
		picked = all
	} else {
		for _, name := range c.Enable {
			ch, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("lint: unknown checker %q (have %s)", name, strings.Join(CheckerNames(), ", "))
			}
			picked = append(picked, ch)
		}
	}
	if len(c.Disable) > 0 {
		off := make(map[string]bool)
		for _, name := range c.Disable {
			if _, ok := byName[name]; !ok {
				return nil, fmt.Errorf("lint: unknown checker %q (have %s)", name, strings.Join(CheckerNames(), ", "))
			}
			off[name] = true
		}
		var kept []Checker
		for _, ch := range picked {
			if !off[ch.Name()] {
				kept = append(kept, ch)
			}
		}
		picked = kept
	}
	return picked, nil
}

// Load expands patterns, loads and type-checks every matched package,
// and builds the interprocedural Program over them (plus their module-
// internal dependencies). Type-check failures in analyzed packages are
// returned as errors: the analysis is only trustworthy on a tree that
// compiles.
func Load(mod *Module, patterns []string) (*Program, []*Package, error) {
	loader := NewLoader(mod)
	dirs, err := loader.Expand(patterns)
	if err != nil {
		return nil, nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			return nil, nil, err
		}
		if len(pkg.TypeErrors) > 0 {
			return nil, nil, fmt.Errorf("lint: type-checking %s: %v (and %d more)",
				pkg.ImportPath, pkg.TypeErrors[0], len(pkg.TypeErrors)-1)
		}
		pkgs = append(pkgs, pkg)
	}
	prog := NewProgram(mod, loader)
	return prog, pkgs, nil
}

// Run loads every package matched by patterns (relative to mod) and runs
// the configured checkers over each — then the module checkers over the
// whole set — returning unsuppressed, deduplicated findings sorted by
// position.
func Run(mod *Module, patterns []string, cfg Config) ([]Finding, error) {
	checkers, err := cfg.active()
	if err != nil {
		return nil, err
	}
	_, pkgs, err := Load(mod, patterns)
	if err != nil {
		return nil, err
	}
	return analyze(mod, pkgs, checkers, cfg), nil
}

// analyze is Run minus loading: the shared core the dedupe regression
// test drives directly with hand-built package variants.
func analyze(mod *Module, pkgs []*Package, checkers []Checker, cfg Config) []Finding {
	r := &Reporter{modRoot: mod.Root}
	var dirs []directive
	for _, pkg := range pkgs {
		r.fset = pkg.Fset
		pkgDirs := collectDirectives(pkg)
		dirs = append(dirs, pkgDirs...)
		r.current = "bad-directive"
		for _, d := range pkgDirs {
			if d.bad {
				r.Reportf(d.pos, "malformed //hiperlint:ignore directive: want \"//hiperlint:ignore <checker> <reason>\"")
			}
		}
		for _, ch := range checkers {
			if !applies(ch, pkg) {
				continue
			}
			r.current = ch.Name()
			ch.Check(pkg, r)
		}
	}
	// Module passes: every analyzed package at once. All packages from
	// one Run share the loader's FileSet; the dedupe test's variants
	// carry their own, so rebind to the first package's.
	if len(pkgs) > 0 {
		r.fset = pkgs[0].Fset
		for _, ch := range checkers {
			if mc, ok := ch.(ModuleChecker); ok {
				r.current = ch.Name()
				mc.CheckModule(pkgs, r)
			}
		}
	}
	findings, used := filterSuppressed(r.findings, dirs)
	if cfg.Audit {
		findings = append(findings, staleDirectives(mod, dirs, used, cfg)...)
	}
	findings = dedupe(findings)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Checker < b.Checker
	})
	return findings
}

// dedupe collapses findings that agree on (checker, file, line, col,
// message). The same file can be type-checked under more than one
// package variant — a fixture loaded both directly and as a dependency,
// or a future test/non-test split of one directory — and each variant
// re-reports identical positions; one copy is enough.
func dedupe(findings []Finding) []Finding {
	seen := make(map[Finding]bool, len(findings))
	kept := findings[:0]
	for _, f := range findings {
		if seen[f] {
			continue
		}
		seen[f] = true
		kept = append(kept, f)
	}
	return kept
}
