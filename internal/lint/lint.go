// Package lint is hiper-lint's analysis engine: a pure-stdlib (go/ast,
// go/parser, go/types, go/token) driver with project-specific checkers
// that enforce the runtime's concurrency invariants statically. The
// rules it encodes are the ones DESIGN.md documents as load-bearing —
// tasks suspend instead of blocking worker threads, park tokens are
// sent under the idle lock, atomically-accessed fields are never mixed
// with plain access — plus plain error-discipline for the runtime and
// communication packages.
//
// Findings can be suppressed at the site with a justification:
//
//	//hiperlint:ignore <checker> <reason>
//
// placed on the offending line or the line directly above it. The
// checker name may be "all". Directives missing a checker or a reason
// are themselves reported (checker "bad-directive"), so suppressions
// stay auditable.
package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic, positioned at a source line.
type Finding struct {
	Checker string `json:"checker"`
	File    string `json:"file"` // module-root-relative, slash-separated
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Checker, f.Message)
}

// Checker is one analysis. Check walks a loaded package and reports
// findings through r.
type Checker interface {
	Name() string
	Doc() string
	Check(p *Package, r *Reporter)
}

// scoped is implemented by checkers that only apply to particular
// packages (testdata fixtures always pass, so fixtures can exercise
// scoped checkers regardless of where they live).
type scoped interface {
	AppliesTo(importPath string) bool
}

// Checkers returns the full checker registry, in reporting order.
func Checkers() []Checker {
	return []Checker{
		&BlockingInTask{},
		&MixedAtomicAccess{},
		&SendOutsideLock{},
		&UncheckedError{},
		&RawDelayOutsideFabric{},
		&SpinWaitOutsidePoller{},
		&RecoverOutsideWorker{},
	}
}

// CheckerNames lists the registered checker names.
func CheckerNames() []string {
	var names []string
	for _, c := range Checkers() {
		names = append(names, c.Name())
	}
	return names
}

// Reporter collects findings for one package, relativizing file paths to
// the module root.
type Reporter struct {
	pkg      *Package
	modRoot  string
	findings []Finding
	current  string // name of the checker currently running
}

// Reportf records a finding at pos.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	p := r.pkg.Fset.Position(pos)
	file := p.Filename
	if rel, err := filepath.Rel(r.modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	r.findings = append(r.findings, Finding{
		Checker: r.current,
		File:    file,
		Line:    p.Line,
		Col:     p.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Config selects which checkers run. Empty Enable means all registered
// checkers; Disable is subtracted afterwards.
type Config struct {
	Enable  []string
	Disable []string
}

func (c Config) active() ([]Checker, error) {
	all := Checkers()
	byName := make(map[string]Checker, len(all))
	for _, ch := range all {
		byName[ch.Name()] = ch
	}
	var picked []Checker
	if len(c.Enable) == 0 {
		picked = all
	} else {
		for _, name := range c.Enable {
			ch, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("lint: unknown checker %q (have %s)", name, strings.Join(CheckerNames(), ", "))
			}
			picked = append(picked, ch)
		}
	}
	if len(c.Disable) > 0 {
		off := make(map[string]bool)
		for _, name := range c.Disable {
			if _, ok := byName[name]; !ok {
				return nil, fmt.Errorf("lint: unknown checker %q (have %s)", name, strings.Join(CheckerNames(), ", "))
			}
			off[name] = true
		}
		var kept []Checker
		for _, ch := range picked {
			if !off[ch.Name()] {
				kept = append(kept, ch)
			}
		}
		picked = kept
	}
	return picked, nil
}

// Run loads every package matched by patterns (relative to mod) and runs
// the configured checkers over each, returning unsuppressed findings
// sorted by position. Type-check failures in analyzed packages are
// returned as errors: the analysis is only trustworthy on a tree that
// compiles.
func Run(mod *Module, patterns []string, cfg Config) ([]Finding, error) {
	loader := NewLoader(mod)
	dirs, err := loader.Expand(patterns)
	if err != nil {
		return nil, err
	}
	checkers, err := cfg.active()
	if err != nil {
		return nil, err
	}
	var all []Finding
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("lint: type-checking %s: %v (and %d more)",
				pkg.ImportPath, pkg.TypeErrors[0], len(pkg.TypeErrors)-1)
		}
		all = append(all, checkPackage(mod, pkg, checkers)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Checker < b.Checker
	})
	return all, nil
}

// checkPackage runs the given checkers over one package and applies
// suppression directives.
func checkPackage(mod *Module, pkg *Package, checkers []Checker) []Finding {
	r := &Reporter{pkg: pkg, modRoot: mod.Root}
	dirs := collectDirectives(pkg)
	r.current = "bad-directive"
	for _, d := range dirs {
		if d.bad {
			r.Reportf(d.pos, "malformed //hiperlint:ignore directive: want \"//hiperlint:ignore <checker> <reason>\"")
		}
	}
	for _, ch := range checkers {
		if sc, ok := ch.(scoped); ok && !pkg.IsFixture() && !sc.AppliesTo(pkg.ImportPath) {
			continue
		}
		r.current = ch.Name()
		ch.Check(pkg, r)
	}
	return filterSuppressed(r.findings, dirs)
}
