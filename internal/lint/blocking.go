package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BlockingInTask flags thread-blocking operations inside task bodies —
// function literals handed to the runtime's spawn entry points (Async,
// AsyncAt, AsyncAwait, Forasync, Finish, Launch, ...). The runtime's
// contract is that pluggable work suspends rather than blocks: a task
// that parks its goroutine in the Go scheduler takes a HiPER worker
// thread with it, stalling every place on that worker's pop path. The
// suspending equivalents (Ctx.Wait/Get on futures, AsyncAwait
// predication, Ctx.HelpUntil for external conditions, finish scopes
// instead of WaitGroups) keep the worker servicing its places.
//
// Flagged inside a task body:
//   - time.Sleep
//   - raw channel sends and receives (and select without a default)
//   - sync.WaitGroup.Wait
//   - Lock/RLock on a package-level mutex
//
// Code inside `go` statements launched from a task body is exempt: a
// fresh goroutine is not a worker thread. Function literals passed to
// nested spawn calls are task bodies in their own right and are checked
// at that nesting level, not twice.
//
// The check is interprocedural: beyond the direct operations above, any
// call from a task body to a module function whose effect summary shows
// it can block — no matter how many helper frames deep the primitive
// sits — is flagged at the call site, with the witness chain in the
// message. Chains are cut at internal/core and internal/fabric, the
// sanctioned suspension and yield-polling layers: calling Ctx.Wait or
// Transport.Recv is how a task is SUPPOSED to wait.
type BlockingInTask struct{}

// Name implements Checker.
func (*BlockingInTask) Name() string { return "blocking-in-task" }

// Doc implements Checker.
func (*BlockingInTask) Doc() string {
	return "task bodies must suspend, not block worker threads (no time.Sleep, raw channel ops, WaitGroup.Wait, or global-mutex locks)"
}

// spawnMethods are the Ctx/Runtime entry points whose function-literal
// arguments execute as tasks on worker threads.
var spawnMethods = map[string]bool{
	"Async": true, "AsyncAt": true, "AsyncDetachedAt": true,
	"AsyncAwait": true, "AsyncAwaitAt": true,
	"AsyncFuture": true, "AsyncFutureAt": true,
	"AsyncFutureAwait": true, "AsyncFutureAwaitAt": true,
	"Forasync": true, "ForasyncAt": true, "ForasyncSync": true,
	"Forasync2D": true, "Forasync3D": true,
	"ForasyncFuture": true, "ForasyncFuture2D": true, "ForasyncFuture3D": true,
	"Finish": true, "FinishFuture": true, "Yield": true,
	"Launch": true, "SpawnDetachedAt": true,
}

// Check implements Checker.
func (c *BlockingInTask) Check(p *Package, r *Reporter) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isSpawnCall(p, call) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					c.checkTaskBody(p, r, lit)
					continue
				}
				// A named function passed as a task body is a task body
				// too; its summary must be suspension-clean.
				c.checkNamedTaskBody(p, r, arg)
			}
			return true
		})
	}
}

// isSpawnCall reports whether call is a task-spawning method call on a
// Ctx or Runtime receiver.
func isSpawnCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !spawnMethods[sel.Sel.Name] {
		return false
	}
	if tv, ok := p.Info.Types[sel.X]; ok && tv.Type != nil {
		name := namedTypeName(tv.Type)
		return name == "Ctx" || name == "Runtime"
	}
	// Fallback without type information: conventional receiver names.
	if id, ok := sel.X.(*ast.Ident); ok {
		return id.Name == "c" || id.Name == "ctx" || id.Name == "rt"
	}
	return false
}

// namedTypeName unwraps pointers and returns the bare name of a named
// type, or "".
func namedTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// checkTaskBody walks one task body flagging blocking operations,
// handling the exemptions described on the checker.
func (c *BlockingInTask) checkTaskBody(p *Package, r *Reporter, lit *ast.FuncLit) {
	var visit func(n ast.Node) bool
	inspectStmts := func(list []ast.Stmt) {
		for _, s := range list {
			ast.Inspect(s, visit)
		}
	}
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// The spawned goroutine may block freely; argument expressions
			// still evaluate on the worker, so walk those.
			for _, arg := range n.Call.Args {
				ast.Inspect(arg, visit)
			}
			if _, ok := n.Call.Fun.(*ast.FuncLit); !ok {
				ast.Inspect(n.Call.Fun, visit)
			}
			return false
		case *ast.CallExpr:
			if isSpawnCall(p, n) {
				// Nested task bodies are visited by Check at their own call
				// site; everything else about this call is still ours.
				for _, arg := range n.Args {
					if _, ok := arg.(*ast.FuncLit); !ok {
						ast.Inspect(arg, visit)
					}
				}
				ast.Inspect(n.Fun, visit)
				return false
			}
			c.checkCall(p, r, n)
			c.checkTransitive(p, r, n)
			return true
		case *ast.SelectStmt:
			hasDefault := false
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				r.Reportf(n.Pos(), "select without a default case blocks the worker thread inside a task; add a default or suspend via futures (AsyncAwait/Ctx.Wait)")
			}
			// Clause bodies run on the worker either way; the comm
			// operations themselves are part of the (already reported or
			// non-blocking) select.
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					inspectStmts(cc.Body)
				}
			}
			return false
		case *ast.SendStmt:
			r.Reportf(n.Pos(), "raw channel send blocks the worker thread inside a task; use a promise (Ctx.Put) or a buffered/select-default send")
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				r.Reportf(n.Pos(), "raw channel receive blocks the worker thread inside a task; suspend with Ctx.Wait/Get on a future or poll with Ctx.HelpUntil")
			}
			return true
		}
		return true
	}
	ast.Inspect(lit.Body, visit)
}

// checkTransitive flags calls (inside a task body) to module functions
// whose summary shows they can block through an arbitrarily deep helper
// chain. Direct primitives in the body itself are checkCall's job, so a
// callee is only consulted here, never the call's own operator.
func (c *BlockingInTask) checkTransitive(p *Package, r *Reporter, call *ast.CallExpr) {
	if p.Prog == nil {
		return
	}
	for _, callee := range p.Prog.resolveCallee(p, call) {
		if callee.Lit != nil {
			continue // a literal's body is lexically here and checked directly
		}
		if blocksCut(callee) {
			continue // sanctioned suspension/polling layer
		}
		sum := p.Prog.Summary(callee)
		if len(sum.Blocks) == 0 {
			continue
		}
		e := sum.Blocks[0]
		r.Reportf(call.Pos(), "calling %s inside a task reaches %s (via %s at %s), which blocks the worker thread; suspend with futures (Ctx.Wait/Get, AsyncAwait) or Ctx.HelpUntil instead",
			callee.Name, e.What, chainOrSelf(callee, e), r.Position(e.Pos))
		return // one witness per call site is enough
	}
}

// checkNamedTaskBody applies the transitive blocking rule to a named
// function used directly as a task body (c.Async(run) instead of a
// literal).
func (c *BlockingInTask) checkNamedTaskBody(p *Package, r *Reporter, arg ast.Expr) {
	if p.Prog == nil {
		return
	}
	var fn *FuncInfo
	switch a := ast.Unparen(arg).(type) {
	case *ast.Ident:
		if obj, ok := p.Info.Uses[a].(*types.Func); ok {
			fn = p.Prog.FuncOf(obj)
		}
	case *ast.SelectorExpr:
		if obj, ok := p.Info.Uses[a.Sel].(*types.Func); ok {
			fn = p.Prog.FuncOf(obj)
		}
	}
	if fn == nil || blocksCut(fn) {
		return
	}
	sum := p.Prog.Summary(fn)
	if len(sum.Blocks) == 0 {
		return
	}
	e := sum.Blocks[0]
	r.Reportf(arg.Pos(), "task body %s reaches %s (via %s at %s), which blocks the worker thread; task bodies must suspend, not block",
		fn.Name, e.What, chainOrSelf(fn, e), r.Position(e.Pos))
}

// chainOrSelf renders an effect's witness chain, falling back to the
// callee's own name for direct effects.
func chainOrSelf(callee *FuncInfo, e Effect) string {
	if v := e.Via(); v != "" {
		return callee.Name + " → " + v
	}
	return callee.Name
}

// checkCall flags blocking call expressions inside a task body.
func (c *BlockingInTask) checkCall(p *Package, r *Reporter, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch sel.Sel.Name {
	case "Sleep":
		if isPkgIdent(p, sel.X, "time") {
			r.Reportf(call.Pos(), "time.Sleep inside a task blocks the worker thread; suspend with Ctx.HelpUntil (it keeps servicing places) or restructure with AsyncAwait")
		}
	case "Wait":
		if isNamedType(p, sel.X, "sync", "WaitGroup") {
			r.Reportf(call.Pos(), "sync.WaitGroup.Wait inside a task blocks the worker thread; use a finish scope (Ctx.Finish) or WhenAll futures instead")
		}
	case "Lock", "RLock":
		if (isNamedType(p, sel.X, "sync", "Mutex") || isNamedType(p, sel.X, "sync", "RWMutex")) && isPackageLevel(p, sel.X) {
			r.Reportf(call.Pos(), "locking package-level mutex %s inside a task can block the worker thread for unbounded time; keep critical sections off the task path or serialize through a dedicated place", types.ExprString(sel.X))
		}
	}
}

// isPkgIdent reports whether e is an identifier naming the import of
// package pkgPath.
func isPkgIdent(p *Package, e ast.Expr, pkgPath string) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	if obj, ok := p.Info.Uses[id]; ok {
		pn, ok := obj.(*types.PkgName)
		return ok && pn.Imported().Path() == pkgPath
	}
	return id.Name == pkgPath // untyped fallback
}

// isNamedType reports whether e's type (possibly behind a pointer) is the
// named type pkgPath.name.
func isNamedType(p *Package, e ast.Expr, pkgPath, name string) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isPackageLevel reports whether the root identifier of e resolves to a
// package-scope object.
func isPackageLevel(p *Package, e ast.Expr) bool {
	root := rootIdent(e)
	if root == nil {
		return false
	}
	obj := p.Info.Uses[root]
	if obj == nil {
		obj = p.Info.Defs[root]
	}
	if obj == nil || p.Types == nil {
		return false
	}
	return obj.Parent() == p.Types.Scope()
}

// rootIdent unwraps selectors, indexing, parens, and derefs down to the
// leftmost identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}
