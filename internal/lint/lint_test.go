package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the fixtures' findings.golden files")

func testModule(t *testing.T) *Module {
	t.Helper()
	mod, err := FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	return mod
}

// golden renders findings in the stable form the fixtures' golden files
// record: file:line checker, one per line.
func golden(findings []Finding) string {
	var b strings.Builder
	for _, f := range findings {
		fmt.Fprintf(&b, "%s:%d %s\n", filepath.Base(f.File), f.Line, f.Checker)
	}
	return b.String()
}

// TestCheckerGolden runs the full driver over each fixture package and
// compares the findings against the package's findings.golden. Each
// fixture holds a minimal positive corpus (pos.go, or suppress.go for
// the suppression fixture) and a negative corpus (neg.go) that must stay
// finding-free.
func TestCheckerGolden(t *testing.T) {
	mod := testModule(t)
	for _, name := range []string{
		"blockingintask",
		"mixedatomic",
		"sendoutsidelock",
		"uncheckederror",
		"rawdelay",
		"spinwaitpoller",
		"recoveroutsideworker",
		"suppress",
	} {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", name)
			findings, err := Run(mod, []string{"./" + dir}, Config{})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for _, f := range findings {
				if filepath.Base(f.File) == "neg.go" {
					t.Errorf("negative corpus flagged: %s", f)
				}
			}
			got := golden(findings)
			goldenPath := filepath.Join(dir, "findings.golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatalf("update golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("read golden (run `go test -run TestCheckerGolden -update ./internal/lint` to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
			if name != "suppress" && len(findings) == 0 {
				t.Errorf("positive corpus produced no findings")
			}
		})
	}
}

// TestSuppressionDirectives pins the suppression semantics beyond the
// golden comparison: every directive-covered violation in the suppress
// fixture is silenced, the deliberately mismatched directive is not, and
// the malformed directive is reported.
func TestSuppressionDirectives(t *testing.T) {
	mod := testModule(t)
	findings, err := Run(mod, []string{"./testdata/suppress"}, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var blocking, badDirective int
	for _, f := range findings {
		switch f.Checker {
		case "blocking-in-task":
			blocking++
		case "bad-directive":
			badDirective++
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if blocking != 1 {
		t.Errorf("want exactly 1 unsuppressed blocking-in-task finding (mismatched checker name), got %d", blocking)
	}
	if badDirective != 1 {
		t.Errorf("want exactly 1 bad-directive finding, got %d", badDirective)
	}
}

// TestEnableDisable covers the per-checker selection flags end to end.
func TestEnableDisable(t *testing.T) {
	mod := testModule(t)

	findings, err := Run(mod, []string{"./testdata/blockingintask"}, Config{Enable: []string{"unchecked-error"}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("enable=unchecked-error should silence the blocking fixture, got %v", findings)
	}

	findings, err = Run(mod, []string{"./testdata/blockingintask"}, Config{Disable: []string{"blocking-in-task"}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("disable=blocking-in-task should silence the blocking fixture, got %v", findings)
	}

	if _, err := Run(mod, []string{"./testdata/blockingintask"}, Config{Enable: []string{"no-such-checker"}}); err == nil {
		t.Errorf("unknown checker name should be an error")
	}
}

// TestLintCleanTree is the regression gate: the real repository packages
// must stay lint-clean (no unsuppressed findings) under the default
// checker set, in-process — the same analysis `make check` runs via
// cmd/hiper-lint.
func TestLintCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis in -short mode")
	}
	mod := testModule(t)
	findings, err := Run(mod, []string{mod.Root + "/..."}, Config{})
	if err != nil {
		t.Fatalf("Run over module: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unsuppressed finding: %s", f)
	}
}
