package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the fixtures' findings.golden files")

func testModule(t *testing.T) *Module {
	t.Helper()
	mod, err := FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	return mod
}

// golden renders findings in the stable form the fixtures' golden files
// record: file:line checker, one per line.
func golden(findings []Finding) string {
	var b strings.Builder
	for _, f := range findings {
		fmt.Fprintf(&b, "%s:%d %s\n", filepath.Base(f.File), f.Line, f.Checker)
	}
	return b.String()
}

// TestCheckerGolden runs the full driver over each fixture package and
// compares the findings against the package's findings.golden. Each
// fixture holds a minimal positive corpus (pos.go, or suppress.go for
// the suppression fixture) and a negative corpus (neg.go) that must stay
// finding-free.
func TestCheckerGolden(t *testing.T) {
	mod := testModule(t)
	for _, fx := range []struct {
		name      string
		recursive bool // multi-package corpus: load every package under the dir
	}{
		{name: "blockingintask"},
		{name: "mixedatomic"},
		{name: "sendoutsidelock"},
		{name: "uncheckederror"},
		{name: "rawdelay"},
		{name: "spinwaitpoller"},
		{name: "recoveroutsideworker"},
		{name: "suppress"},
		{name: "blockingdeep"},
		{name: "lockorder"},
		{name: "goroutineleak"},
		{name: "tagspace", recursive: true},
	} {
		name := fx.name
		recursive := fx.recursive
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", name)
			pattern := "./" + dir
			if recursive {
				pattern += "/..."
			}
			findings, err := Run(mod, []string{pattern}, Config{})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for _, f := range findings {
				if filepath.Base(f.File) == "neg.go" {
					t.Errorf("negative corpus flagged: %s", f)
				}
			}
			got := golden(findings)
			goldenPath := filepath.Join(dir, "findings.golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatalf("update golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("read golden (run `go test -run TestCheckerGolden -update ./internal/lint` to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
			if name != "suppress" && len(findings) == 0 {
				t.Errorf("positive corpus produced no findings")
			}
		})
	}
}

// TestSuppressionDirectives pins the suppression semantics beyond the
// golden comparison: every directive-covered violation in the suppress
// fixture is silenced, the deliberately mismatched directive is not, and
// the malformed directive is reported.
func TestSuppressionDirectives(t *testing.T) {
	mod := testModule(t)
	findings, err := Run(mod, []string{"./testdata/suppress"}, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var blocking, badDirective int
	for _, f := range findings {
		switch f.Checker {
		case "blocking-in-task":
			blocking++
		case "bad-directive":
			badDirective++
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if blocking != 1 {
		t.Errorf("want exactly 1 unsuppressed blocking-in-task finding (mismatched checker name), got %d", blocking)
	}
	if badDirective != 1 {
		t.Errorf("want exactly 1 bad-directive finding, got %d", badDirective)
	}
}

// TestSuppressionAudit covers -audit: the mismatched directive in the
// suppress fixture (names a checker that never fires there) suppresses
// nothing, so audit mode reports it as stale; the three credited
// directives are not reported.
func TestSuppressionAudit(t *testing.T) {
	mod := testModule(t)
	findings, err := Run(mod, []string{"./testdata/suppress"}, Config{Audit: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var stale []Finding
	for _, f := range findings {
		if f.Checker == "stale-suppression" {
			stale = append(stale, f)
		}
	}
	if len(stale) != 1 {
		t.Fatalf("want exactly 1 stale-suppression finding (the mismatched directive), got %d: %v", len(stale), stale)
	}
	if !strings.Contains(stale[0].Message, "unchecked-error") {
		t.Errorf("stale finding should name the unused directive's checker: %s", stale[0])
	}

	// A partial run must not call suppressions stale: with only
	// blocking-in-task enabled, the unchecked-error directive cannot be
	// proven dead, and the "all" directive is skipped too.
	findings, err = Run(mod, []string{"./testdata/suppress"}, Config{Audit: true, Enable: []string{"blocking-in-task"}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range findings {
		if f.Checker == "stale-suppression" {
			t.Errorf("partial run reported a stale suppression: %s", f)
		}
	}
}

// TestEnableDisable covers the per-checker selection flags end to end.
func TestEnableDisable(t *testing.T) {
	mod := testModule(t)

	findings, err := Run(mod, []string{"./testdata/blockingintask"}, Config{Enable: []string{"unchecked-error"}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("enable=unchecked-error should silence the blocking fixture, got %v", findings)
	}

	findings, err = Run(mod, []string{"./testdata/blockingintask"}, Config{Disable: []string{"blocking-in-task"}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("disable=blocking-in-task should silence the blocking fixture, got %v", findings)
	}

	if _, err := Run(mod, []string{"./testdata/blockingintask"}, Config{Enable: []string{"no-such-checker"}}); err == nil {
		t.Errorf("unknown checker name should be an error")
	}
}

// TestLintCleanTree is the regression gate: the real repository packages
// must stay lint-clean (no unsuppressed findings) under the default
// checker set with the suppression audit on — the same analysis
// `make check` runs via cmd/hiper-lint -audit. Zero stale suppressions
// is part of the invariant: every //hiperlint:ignore in the tree must
// still be excusing a live violation.
func TestLintCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis in -short mode")
	}
	mod := testModule(t)
	findings, err := Run(mod, []string{mod.Root + "/..."}, Config{Audit: true})
	if err != nil {
		t.Fatalf("Run over module: %v", err)
	}
	for _, f := range findings {
		if f.Checker == "stale-suppression" {
			t.Errorf("stale suppression directive: %s", f)
			continue
		}
		t.Errorf("unsuppressed finding: %s", f)
	}
}

// TestFindingDedupe pins the driver's dedupe: when the same file reaches
// the analyzer under two package variants (two independent loads here),
// findings that agree on (checker, file, line, col, message) are
// reported once. Module checkers are excluded because the two variants
// carry distinct FileSets, which only a single-loader run shares.
func TestFindingDedupe(t *testing.T) {
	mod := testModule(t)
	_, once, err := Load(mod, []string{"./testdata/blockingintask"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	_, twice, err := Load(mod, []string{"./testdata/blockingintask"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	checkers := []Checker{&BlockingInTask{}}
	single := analyze(mod, once, checkers, Config{})
	if len(single) == 0 {
		t.Fatalf("fixture produced no findings")
	}
	doubled := analyze(mod, append(append([]*Package{}, once...), twice...), checkers, Config{})
	if got, want := golden(doubled), golden(single); got != want {
		t.Errorf("dedupe failed: duplicated packages changed the findings\n--- doubled ---\n%s--- single ---\n%s", got, want)
	}
}

// TestLintLatencyBudget guards the analysis cost: the interprocedural
// rework (call graph + summaries) must keep whole-module linting inside
// a CI-tolerable budget. The bound is deliberately loose — it catches
// accidental exponential blowups (summary recomputation, dispatch
// fan-out), not ordinary regressions.
func TestLintLatencyBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis in -short mode")
	}
	mod := testModule(t)
	start := time.Now()
	if _, err := Run(mod, []string{mod.Root + "/..."}, Config{Audit: true}); err != nil {
		t.Fatalf("Run over module: %v", err)
	}
	const budget = 150 * time.Second
	if elapsed := time.Since(start); elapsed > budget {
		t.Errorf("whole-module lint took %v, over the %v budget — the interprocedural core has likely regressed", elapsed, budget)
	}
}
