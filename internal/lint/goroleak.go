package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoroutineLeak flags `go` statements in the runtime packages whose
// goroutine has no structural way to be joined or stopped. A leaked
// goroutine outlives its owner: it pins its stack and captures, keeps
// polling dead state, and — in a runtime whose whole premise is that
// Quiesce means *quiet* — turns shutdown into a race. Every spawn must
// satisfy one of three join contracts, checked in order:
//
//  1. WaitGroup-counted: some WaitGroup sees Add() before the `go`
//     statement in the launching body, and the same WaitGroup object is
//     Wait()ed somewhere in the package.
//  2. Channel-joined: the spawned body closes or sends on a channel the
//     launching body receives from (including select cases), so the
//     launcher observes completion.
//  3. Stop-signalled: the spawned body (transitively, via effect
//     summaries) receives on a channel that a Close/Stop/Shutdown/
//     Quiesce path in the same package closes or sends on.
//
// Matching is name-based for channels (field or variable name) and
// object-based for WaitGroups — deliberately permissive: the checker
// exists to catch spawns with *no* visible lifecycle, not to prove the
// lifecycle correct. A spawn that manages its lifetime some other way
// earns an audited //hiperlint:ignore with the reason spelled out.
type GoroutineLeak struct{}

// Name implements Checker.
func (*GoroutineLeak) Name() string { return "goroutine-leak" }

// Doc implements Checker.
func (*GoroutineLeak) Doc() string {
	return "runtime goroutines must be WaitGroup-joined, channel-joined, or stoppable via a Close/Stop/Shutdown signal"
}

// AppliesTo implements scoped: the long-lived runtime packages, where an
// unjoined goroutine survives into the next scheduler phase.
func (*GoroutineLeak) AppliesTo(importPath string) bool {
	for _, s := range []string{
		"internal/core", "internal/fabric", "internal/trace",
		"internal/job", "internal/cuda", "internal/shmem", "internal/omp",
	} {
		if strings.HasSuffix(importPath, s) {
			return true
		}
	}
	return false
}

// Check implements Checker.
func (c *GoroutineLeak) Check(p *Package, r *Reporter) {
	if p.Prog == nil {
		return
	}
	for _, fi := range p.Prog.nodesOf(p) {
		for _, site := range fi.spawns {
			if wgJoined(p, site) || chanJoined(site) || stopSignalled(p, site) {
				continue
			}
			r.Reportf(site.Pos, "goroutine launched here has no join or stop path: count it on a WaitGroup that the package Wait()s, join it through a channel this body receives on, or have it select on a stop channel closed by a Close/Stop/Shutdown path")
		}
	}
}

// wgJoined reports whether a WaitGroup Add() precedes the spawn in the
// launching body and the same WaitGroup object is Wait()ed anywhere in
// the package.
func wgJoined(p *Package, site SpawnSite) bool {
	body := site.Owner.Body()
	if body == nil {
		return false
	}
	var counted []types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= site.Pos {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		if !isNamedType(p, sel.X, "sync", "WaitGroup") {
			return true
		}
		if obj := exprObj(p, sel.X); obj != nil {
			counted = append(counted, obj)
		}
		return true
	})
	for _, obj := range counted {
		if pkgWaitsOn(p, obj) {
			return true
		}
	}
	return false
}

// pkgWaitsOn reports whether any body in the package calls Wait() on the
// given WaitGroup object.
func pkgWaitsOn(p *Package, obj types.Object) bool {
	found := false
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Wait" {
				return true
			}
			if isNamedType(p, sel.X, "sync", "WaitGroup") && exprObj(p, sel.X) == obj {
				found = true
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// chanJoined reports whether the spawned body closes or sends on a
// channel name the launching body receives on.
func chanJoined(site SpawnSite) bool {
	if site.Callee == nil || len(site.Owner.stopRecv) == 0 {
		return false
	}
	for name := range chanOutNames(site.Callee) {
		if site.Owner.stopRecv[name] {
			return true
		}
	}
	return false
}

// stopSignalled reports whether the spawned body transitively receives on
// a channel name that a shutdown-shaped function (Close/Stop/Shutdown/
// Quiesce in its name) in the package closes or sends on.
func stopSignalled(p *Package, site SpawnSite) bool {
	if site.Callee == nil || p.Prog == nil {
		return false
	}
	recv := p.Prog.Summary(site.Callee).StopRecv
	if len(recv) == 0 {
		return false
	}
	for _, fi := range p.Prog.nodesOf(p) {
		if fi.Decl == nil || !shutdownShaped(fi.Decl.Name.Name) {
			continue
		}
		for name := range chanOutNames(fi) {
			if recv[name] {
				return true
			}
		}
	}
	return false
}

// shutdownShaped reports whether a function name marks a lifecycle
// teardown path.
func shutdownShaped(name string) bool {
	l := strings.ToLower(name)
	for _, s := range []string{"close", "stop", "shutdown", "quiesce"} {
		if strings.Contains(l, s) {
			return true
		}
	}
	return false
}

// chanOutNames collects the channel field/variable names a body closes
// or sends on, descending into nested literals (a deferred close inside
// a helper closure still signals).
func chanOutNames(fi *FuncInfo) map[string]bool {
	body := fi.Body()
	if body == nil {
		return nil
	}
	out := make(map[string]bool)
	note := func(e ast.Expr) {
		switch e := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			out[e.Sel.Name] = true
		case *ast.Ident:
			out[e.Name] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			note(n.Chan)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				note(n.Args[0])
			}
		}
		return true
	})
	return out
}

// exprObj resolves a field-selector or identifier expression to its
// types.Object, the stable identity used for WaitGroup matching.
func exprObj(p *Package, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return p.Info.Uses[e.Sel]
	case *ast.Ident:
		if o, ok := p.Info.Uses[e]; ok {
			return o
		}
		return p.Info.Defs[e]
	}
	return nil
}
