package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// graph.go builds the interprocedural half of the analyzer: a
// whole-module call graph over go/types. Nodes are function bodies —
// declared functions and methods plus function literals — and edges are
// classified by how the callee runs relative to the caller:
//
//   - EdgeCall:  plain call; the callee runs synchronously on the
//     caller's goroutine, so blocking/spinning/locking effects flow up.
//   - EdgeDefer: deferred call; still the caller's goroutine, at exit.
//   - EdgeGo:    `go` statement; a fresh goroutine, so caller-goroutine
//     effects do NOT flow up, but the edge matters for spawn analysis.
//   - EdgeSpawn: a function literal handed to a runtime spawn entry
//     point (Async/Forasync/Finish/...); the body is a task in its own
//     right and is checked at its call site, not inlined here.
//
// Call targets are resolved three ways: direct calls through the
// identifier's types.Object, concrete method calls through the method
// selection, and interface-method calls through a conservative
// approximation — every module type whose method set satisfies the
// interface contributes its method as a possible callee. Calls through
// plain function values are the one hole the approximation leaves open;
// the repository's invariant-bearing paths do not use them, and the
// task-body literals that matter are handled by EdgeSpawn.
type Program struct {
	Mod  *Module
	Fset *token.FileSet

	// Pkgs is every module package the loader saw (targets plus their
	// module-internal dependencies), in deterministic (sorted-dir) order.
	Pkgs []*Package

	funcs map[*types.Func]*FuncInfo
	lits  map[*ast.FuncLit]*FuncInfo
	nodes []*FuncInfo // deterministic order

	// methodIndex maps a method name to every concrete module method with
	// that name, for interface-dispatch resolution.
	methodIndex map[string][]*FuncInfo

	summaries map[*FuncInfo]*Summary
	sccOf     map[*FuncInfo]int
}

// EdgeKind classifies how a callee executes relative to its caller.
type EdgeKind int

const (
	EdgeCall EdgeKind = iota
	EdgeDefer
	EdgeGo
	EdgeSpawn
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeDefer:
		return "defer"
	case EdgeGo:
		return "go"
	case EdgeSpawn:
		return "spawn"
	}
	return "?"
}

// Edge is one resolved call site.
type Edge struct {
	Callee *FuncInfo
	Pos    token.Pos
	Kind   EdgeKind
}

// FuncInfo is one call-graph node: a declared function/method or a
// function literal, with its direct (intraprocedural) facts attached.
type FuncInfo struct {
	Obj  *types.Func   // nil for literals
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	Pkg  *Package
	Name string // display name: pkg-relative, literals as func@file:line

	Edges []Edge

	// Direct effects, before summary propagation.
	blocks   []Effect
	spins    []Effect
	recovers []Effect
	acquires map[string]Effect
	spawns   []SpawnSite
	stopRecv map[string]bool // channel field/var names this body receives on
	tagUses  []TagUse
}

// Body returns the node's block statement.
func (fi *FuncInfo) Body() *ast.BlockStmt {
	if fi.Decl != nil {
		return fi.Decl.Body
	}
	return fi.Lit.Body
}

// Pos returns the node's declaration position.
func (fi *FuncInfo) Pos() token.Pos {
	if fi.Decl != nil {
		return fi.Decl.Pos()
	}
	return fi.Lit.Pos()
}

// SpawnSite is one `go` statement.
type SpawnSite struct {
	Pos    token.Pos
	Callee *FuncInfo // resolved spawned function or literal; nil if dynamic
	Stmt   *ast.GoStmt
	Owner  *FuncInfo // enclosing body
}

// TagUse is one tag-position argument on a Transport-shaped call
// (Send/Recv/RecvAsync/TryRecv/Probe on a receiver that has AllocTags).
type TagUse struct {
	Pos     token.Pos
	Method  string
	Val     int64 // constant tag value, when IsConst
	IsConst bool
	// Alloc-derived offsets: `base - k` where base came from AllocTags(n).
	FromAlloc bool
	Offset    int64 // k (0 for a bare base)
	AllocN    int64 // n from the AllocTags call
}

// NewProgram builds the call graph and direct effects over every package
// the loader has loaded (targets and module-internal dependencies).
func NewProgram(mod *Module, loader *Loader) *Program {
	prog := &Program{
		Mod:         mod,
		Fset:        loader.Fset,
		funcs:       make(map[*types.Func]*FuncInfo),
		lits:        make(map[*ast.FuncLit]*FuncInfo),
		methodIndex: make(map[string][]*FuncInfo),
		summaries:   make(map[*FuncInfo]*Summary),
	}
	var dirs []string
	for dir := range loader.byDir {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		prog.Pkgs = append(prog.Pkgs, loader.byDir[dir])
	}
	// Pass 1: create a node per function body so cross-package edges can
	// resolve regardless of build order.
	for _, pkg := range prog.Pkgs {
		prog.collectNodes(pkg)
	}
	// Pass 2: edges and direct effects.
	for _, pkg := range prog.Pkgs {
		for _, fi := range prog.nodesOf(pkg) {
			b := &builder{prog: prog, pkg: pkg, fi: fi}
			b.build()
		}
	}
	prog.attach()
	return prog
}

// attach records the program on each package so checkers reached through
// the per-package interface can consult it.
func (p *Program) attach() {
	for _, pkg := range p.Pkgs {
		pkg.Prog = p
	}
}

// collectNodes registers a FuncInfo for every FuncDecl and FuncLit in pkg.
func (p *Program) collectNodes(pkg *Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return false
				}
				obj, _ := pkg.Info.Defs[n.Name].(*types.Func)
				fi := &FuncInfo{Obj: obj, Decl: n, Pkg: pkg, Name: declName(pkg, n)}
				if obj != nil {
					p.funcs[obj] = fi
					if n.Recv != nil {
						p.methodIndex[n.Name.Name] = append(p.methodIndex[n.Name.Name], fi)
					}
				}
				p.nodes = append(p.nodes, fi)
			case *ast.FuncLit:
				pos := pkg.Fset.Position(n.Pos())
				fi := &FuncInfo{Lit: n, Pkg: pkg,
					Name: fmt.Sprintf("func@%s:%d", filepath.Base(pos.Filename), pos.Line)}
				p.lits[n] = fi
				p.nodes = append(p.nodes, fi)
			}
			return true
		})
	}
}

// nodesOf lists the nodes declared in pkg, in source order.
func (p *Program) nodesOf(pkg *Package) []*FuncInfo {
	var out []*FuncInfo
	for _, fi := range p.nodes {
		if fi.Pkg == pkg {
			out = append(out, fi)
		}
	}
	return out
}

// FuncOf resolves the node for a declared function object, if the
// function was declared in a loaded module package.
func (p *Program) FuncOf(obj *types.Func) *FuncInfo { return p.funcs[obj] }

// LitOf resolves the node for a function literal.
func (p *Program) LitOf(lit *ast.FuncLit) *FuncInfo { return p.lits[lit] }

// declName renders a package-relative display name ("Recv.Method" or
// "Func") prefixed with the package's base import path element.
func declName(pkg *Package, d *ast.FuncDecl) string {
	base := filepath.Base(filepath.ToSlash(pkg.ImportPath))
	if d.Recv != nil && len(d.Recv.List) > 0 {
		t := d.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return base + "." + id.Name + "." + d.Name.Name
		}
		if idx, ok := t.(*ast.IndexExpr); ok {
			if id, ok := idx.X.(*ast.Ident); ok {
				return base + "." + id.Name + "." + d.Name.Name
			}
		}
	}
	return base + "." + d.Name.Name
}

// resolveCallee maps a call expression to its callee node(s). Interface
// calls return every module method that can satisfy the dispatch.
func (p *Program) resolveCallee(pkg *Package, call *ast.CallExpr) []*FuncInfo {
	fun := ast.Unparen(call.Fun)
	switch fun := fun.(type) {
	case *ast.FuncLit:
		if fi := p.lits[fun]; fi != nil {
			return []*FuncInfo{fi}
		}
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			if fi := p.funcs[fn]; fi != nil {
				return []*FuncInfo{fi}
			}
		}
	case *ast.SelectorExpr:
		// Qualified package function (pkg.Fn) or method value use.
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			if sel, isSel := pkg.Info.Selections[fun]; isSel {
				if isInterfaceRecv(sel) {
					return p.implementersOf(sel.Recv(), fun.Sel.Name)
				}
			}
			if fi := p.funcs[fn]; fi != nil {
				return []*FuncInfo{fi}
			}
		}
	}
	return nil
}

// isInterfaceRecv reports whether a method selection dispatches through
// an interface value.
func isInterfaceRecv(sel *types.Selection) bool {
	t := sel.Recv()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// implementersOf returns the module methods named name on types that
// implement the interface recv — the conservative dispatch approximation.
func (p *Program) implementersOf(recv types.Type, name string) []*FuncInfo {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*FuncInfo
	for _, cand := range p.methodIndex[name] {
		if cand.Obj == nil {
			continue
		}
		rt := recvType(cand.Obj)
		if rt == nil {
			continue
		}
		if types.Implements(rt, iface) || types.Implements(types.NewPointer(rt), iface) {
			out = append(out, cand)
		}
	}
	return out
}

// recvType returns the non-pointer receiver type of a method object.
func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return t
}

// pkgHasSuffix reports whether the node's package import path ends with
// any of the given module-relative suffixes.
func pkgHasSuffix(fi *FuncInfo, suffixes ...string) bool {
	for _, s := range suffixes {
		if strings.HasSuffix(fi.Pkg.ImportPath, s) {
			return true
		}
	}
	return false
}
