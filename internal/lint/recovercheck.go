package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// RecoverOutsideWorker flags calls to the builtin recover() anywhere
// outside internal/core. The runtime has exactly one sanctioned panic
// barrier — the worker execute path — which converts a task panic into
// a *core.PanicError on the task's future and finish scope. A recover
// anywhere else swallows the panic before that machinery sees it,
// turning a diagnosable task failure into silent state corruption.
// Code that wants to observe failures should consume future/scope
// errors (Future.Err, Ctx.GetErr, FinishErr), not catch panics.
//
// The check is interprocedural: a call to a module helper whose summary
// transitively reaches recover() is flagged at the call site too, with
// the witness chain — so the violation stays visible even when the
// recover sits in a package outside the current lint run, one or many
// frames away. Chains are cut at internal/core, the sanctioned barrier.
type RecoverOutsideWorker struct{}

// Name implements Checker.
func (*RecoverOutsideWorker) Name() string { return "recover-outside-worker" }

// Doc implements Checker.
func (*RecoverOutsideWorker) Doc() string {
	return "recover() is reserved for internal/core's worker panic barrier; elsewhere it hides task failures from the error-propagation layer"
}

// AppliesTo implements scoped: every package except the one holding the
// sanctioned barrier.
func (*RecoverOutsideWorker) AppliesTo(importPath string) bool {
	return !strings.HasSuffix(importPath, "internal/core")
}

// checkTransitive flags calls to module functions whose summary reaches
// recover() outside the sanctioned barrier. Direct recover() calls in
// the callee's own package are also flagged at their definition site
// when that package is analyzed; the call-site finding is what keeps a
// helper one package over from hiding the violation.
func (c *RecoverOutsideWorker) checkTransitive(p *Package, r *Reporter, call *ast.CallExpr) {
	if p.Prog == nil {
		return
	}
	for _, callee := range p.Prog.resolveCallee(p, call) {
		if callee.Lit != nil {
			continue // a literal's body is lexically here and checked directly
		}
		if recoversCut(callee) {
			continue // the sanctioned barrier package
		}
		sum := p.Prog.Summary(callee)
		if len(sum.Recovers) == 0 {
			continue
		}
		e := sum.Recovers[0]
		r.Reportf(call.Pos(), "calling %s reaches recover() (via %s at %s) outside the core worker barrier; the panic is swallowed before error propagation sees it — consume the future/scope error instead",
			callee.Name, chainOrSelf(callee, e), r.Position(e.Pos))
		return
	}
}

// Check implements Checker.
func (c *RecoverOutsideWorker) Check(p *Package, r *Reporter) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "recover" {
					r.Reportf(call.Pos(), "recover() outside the core worker barrier swallows task panics before error propagation sees them; let the panic reach the scheduler and consume the future/scope error instead")
					return true
				}
			}
			c.checkTransitive(p, r, call)
			return true
		})
	}
}
