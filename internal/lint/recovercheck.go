package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// RecoverOutsideWorker flags calls to the builtin recover() anywhere
// outside internal/core. The runtime has exactly one sanctioned panic
// barrier — the worker execute path — which converts a task panic into
// a *core.PanicError on the task's future and finish scope. A recover
// anywhere else swallows the panic before that machinery sees it,
// turning a diagnosable task failure into silent state corruption.
// Code that wants to observe failures should consume future/scope
// errors (Future.Err, Ctx.GetErr, FinishErr), not catch panics.
type RecoverOutsideWorker struct{}

// Name implements Checker.
func (*RecoverOutsideWorker) Name() string { return "recover-outside-worker" }

// Doc implements Checker.
func (*RecoverOutsideWorker) Doc() string {
	return "recover() is reserved for internal/core's worker panic barrier; elsewhere it hides task failures from the error-propagation layer"
}

// AppliesTo implements scoped: every package except the one holding the
// sanctioned barrier.
func (*RecoverOutsideWorker) AppliesTo(importPath string) bool {
	return !strings.HasSuffix(importPath, "internal/core")
}

// Check implements Checker.
func (*RecoverOutsideWorker) Check(p *Package, r *Reporter) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "recover" {
				r.Reportf(call.Pos(), "recover() outside the core worker barrier swallows task panics before error propagation sees them; let the panic reach the scheduler and consume the future/scope error instead")
			}
			return true
		})
	}
}
