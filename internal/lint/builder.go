package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// builder.go walks one function body collecting the node's call edges
// and direct effects. The walk stops at nested function literals — each
// literal is its own call-graph node and is walked on its own — but it
// does record the edge into an immediately-invoked, `go`-launched,
// deferred, or spawn-passed literal, because those are the forms whose
// execution context the effect propagation rules care about.

type builder struct {
	prog *Program
	pkg  *Package
	fi   *FuncInfo

	// kindOf pre-classifies CallExprs that sit under go/defer statements
	// so the generic CallExpr case emits the right edge kind.
	kindOf map[*ast.CallExpr]EdgeKind
	// bases lazily maps locals assigned from AllocTags(const) to the size.
	bases map[types.Object]int64
}

// pkgBase is the last element of an import path, for display and lock
// keys.
func pkgBase(importPath string) string {
	if i := strings.LastIndexByte(importPath, '/'); i >= 0 {
		return importPath[i+1:]
	}
	return importPath
}

func (b *builder) build() {
	body := b.fi.Body()
	if body == nil {
		return
	}
	b.kindOf = make(map[*ast.CallExpr]EdgeKind)
	b.fi.acquires = make(map[string]Effect)
	b.fi.stopRecv = make(map[string]bool)
	b.walk(body)
}

// walk is the effect/edge visitor. It returns into children except where
// documented.
func (b *builder) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A nested literal's body belongs to its own node.
			return false
		case *ast.GoStmt:
			b.kindOf[n.Call] = EdgeGo
			b.spawnSite(n)
			return true
		case *ast.DeferStmt:
			b.kindOf[n.Call] = EdgeDefer
			return true
		case *ast.CallExpr:
			b.call(n)
			return true
		case *ast.SendStmt:
			b.addBlock(n.Pos(), "raw channel send")
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				b.addBlock(n.Pos(), "raw channel receive")
				b.noteStopRecv(n.X)
			}
			return true
		case *ast.SelectStmt:
			hasDefault := false
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					if cc.Comm == nil {
						hasDefault = true
					} else {
						b.noteCommRecv(cc.Comm)
					}
				}
			}
			if !hasDefault {
				b.addBlock(n.Pos(), "select without a default case")
			}
			return true
		case *ast.RangeStmt:
			if tv, ok := b.pkg.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					b.addBlock(n.Pos(), "range over channel")
					b.noteStopRecv(n.X)
				}
			}
			return true
		}
		return true
	})
}

// call classifies one call expression: effects first (they depend only on
// the callee's identity), then graph edges.
func (b *builder) call(call *ast.CallExpr) {
	kind, preset := b.kindOf[call]
	if !preset {
		kind = EdgeCall
	}

	// Effects that only make sense for same-goroutine execution are still
	// recorded for go-kind calls' *argument* expressions by the generic
	// walk; the call itself is classified below.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		b.selectorEffects(call, sel, kind)
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if bi, ok := b.pkg.Info.Uses[id].(*types.Builtin); ok && bi.Name() == "recover" {
			b.fi.recovers = append(b.fi.recovers, Effect{Pos: call.Pos(), What: "recover()"})
		}
	}

	// Spawn entry points: function-literal (or named-function) arguments
	// are task bodies, linked with EdgeSpawn.
	if isSpawnCall(b.pkg, call) {
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				if fi := b.prog.LitOf(lit); fi != nil {
					b.edge(fi, arg.Pos(), EdgeSpawn)
				}
			}
		}
	}

	for _, callee := range b.prog.resolveCallee(b.pkg, call) {
		b.edge(callee, call.Pos(), kind)
	}
}

// selectorEffects records the direct effects expressed as method or
// package-function selector calls.
func (b *builder) selectorEffects(call *ast.CallExpr, sel *ast.SelectorExpr, kind EdgeKind) {
	if kind == EdgeGo {
		return // runs on its own goroutine; not this body's effect
	}
	switch sel.Sel.Name {
	case "Sleep":
		if isPkgIdent(b.pkg, sel.X, "time") {
			b.addBlock(call.Pos(), "time.Sleep")
		}
		if isSpinPkg(b.pkg, sel.X) {
			b.fi.spins = append(b.fi.spins, Effect{Pos: call.Pos(), What: "spin.Sleep"})
		}
	case "Until":
		if isSpinPkg(b.pkg, sel.X) {
			b.fi.spins = append(b.fi.spins, Effect{Pos: call.Pos(), What: "spin.Until"})
		}
	case "Wait":
		if isNamedType(b.pkg, sel.X, "sync", "WaitGroup") {
			b.addBlock(call.Pos(), "sync.WaitGroup.Wait")
		}
	case "Lock", "RLock":
		// Mutex locks feed Acquires (the lock-order graph) but are NOT a
		// Blocks effect: a bounded critical section behind a helper (stats
		// counters, registry reads) is normal, and propagating it would mark
		// every instrumented API as blocking. The direct in-task rule for
		// package-level mutexes stays intraprocedural in blocking.go.
		if isNamedType(b.pkg, sel.X, "sync", "Mutex") || isNamedType(b.pkg, sel.X, "sync", "RWMutex") {
			if key := b.lockKey(sel.X); key != "" {
				if _, seen := b.fi.acquires[key]; !seen {
					b.fi.acquires[key] = Effect{Pos: call.Pos(), What: key}
				}
			}
		}
	}
	b.tagUse(call, sel)
}

// lockKey names a mutex for the lock-order graph. Struct-field mutexes
// key by their owning named type and field ("pkg.Type.field"); package
// -level mutexes key by their variable ("pkg.var"). Function-local
// mutexes return "" — their ordering is visible to the intraprocedural
// scan but they have no stable cross-function identity.
func (b *builder) lockKey(e ast.Expr) string {
	base := pkgBase(b.pkg.ImportPath)
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if s, ok := b.pkg.Info.Selections[e]; ok {
			if owner := namedTypeName(s.Recv()); owner != "" {
				return base + "." + owner + "." + e.Sel.Name
			}
		}
		// Package-qualified var (otherpkg.mu).
		if obj, ok := b.pkg.Info.Uses[e.Sel]; ok {
			if v, isVar := obj.(*types.Var); isVar && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return pkgBase(v.Pkg().Path()) + "." + v.Name()
			}
		}
	case *ast.Ident:
		obj := b.pkg.Info.Uses[e]
		if obj == nil {
			obj = b.pkg.Info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return base + "." + v.Name()
		}
	}
	return ""
}

// tagUse records a tag-position literal or alloc-derived expression on a
// Transport-shaped call. Transport-shaped means the receiver's method
// set contains AllocTags — true of every fabric backend and of fixture
// stand-ins, without naming a concrete type.
func (b *builder) tagUse(call *ast.CallExpr, sel *ast.SelectorExpr) {
	const tagArg = 2 // Send(src,dst,tag,..), Recv(dst,src,tag), RecvAsync, TryRecv, Probe
	switch sel.Sel.Name {
	case "Send", "Recv", "RecvAsync", "TryRecv", "Probe":
	default:
		return
	}
	if len(call.Args) <= tagArg || !b.hasAllocTags(sel.X) {
		return
	}
	arg := ast.Unparen(call.Args[tagArg])
	use := TagUse{Pos: arg.Pos(), Method: sel.Sel.Name}
	if tv, ok := b.pkg.Info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, exact := constant.Int64Val(tv.Value); exact {
			use.Val, use.IsConst = v, true
		}
	}
	if base, off, ok := b.allocDerived(arg); ok {
		use.FromAlloc = true
		use.Offset = off
		use.AllocN = base
		use.IsConst = false
	}
	b.fi.tagUses = append(b.fi.tagUses, use)
}

// hasAllocTags reports whether e's type has an AllocTags method.
func (b *builder) hasAllocTags(e ast.Expr) bool {
	tv, ok := b.pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	for _, t := range []types.Type{tv.Type, types.NewPointer(tv.Type)} {
		ms := types.NewMethodSet(t)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == "AllocTags" {
				return true
			}
		}
	}
	return false
}

// allocDerived recognizes `base` and `base - k` where base is a local
// variable assigned from an AllocTags call with a constant size. Returns
// (allocN, offset, true) on a match.
func (b *builder) allocDerived(e ast.Expr) (int64, int64, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if n, ok := b.allocBases()[b.objOf(e)]; ok {
			return n, 0, true
		}
	case *ast.BinaryExpr:
		if e.Op != token.SUB {
			return 0, 0, false
		}
		id, ok := ast.Unparen(e.X).(*ast.Ident)
		if !ok {
			return 0, 0, false
		}
		n, isBase := b.allocBases()[b.objOf(id)]
		if !isBase {
			return 0, 0, false
		}
		if tv, ok := b.pkg.Info.Types[e.Y]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
			if k, exact := constant.Int64Val(tv.Value); exact {
				return n, k, true
			}
		}
		return n, -1, true // dynamic offset: treated as in-range
	}
	return 0, 0, false
}

// allocBases scans the body (lazily, once) for `v := recv.AllocTags(n)`
// with constant n, mapping v's object to n.
func (b *builder) allocBases() map[types.Object]int64 {
	if b.bases != nil {
		return b.bases
	}
	b.bases = make(map[types.Object]int64)
	ast.Inspect(b.fi.Body(), func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "AllocTags" || len(call.Args) != 1 {
			return true
		}
		if tv, ok := b.pkg.Info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
			if n, exact := constant.Int64Val(tv.Value); exact {
				if obj := b.objOf(id); obj != nil {
					b.bases[obj] = n
				}
			}
		}
		return true
	})
	return b.bases
}

// objOf resolves an identifier to its object (use or def).
func (b *builder) objOf(id *ast.Ident) types.Object {
	if obj, ok := b.pkg.Info.Uses[id]; ok {
		return obj
	}
	return b.pkg.Info.Defs[id]
}

// spawnSite records a `go` statement and resolves what it launches.
func (b *builder) spawnSite(g *ast.GoStmt) {
	site := SpawnSite{Pos: g.Pos(), Stmt: g, Owner: b.fi}
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		site.Callee = b.prog.LitOf(lit)
	} else if callees := b.prog.resolveCallee(b.pkg, g.Call); len(callees) == 1 {
		site.Callee = callees[0]
	}
	b.fi.spawns = append(b.fi.spawns, site)
}

// noteStopRecv records the field/variable name a receive expression reads
// from, feeding the goroutine-leak checker's stop-signal rule.
func (b *builder) noteStopRecv(ch ast.Expr) {
	switch ch := ast.Unparen(ch).(type) {
	case *ast.SelectorExpr:
		b.fi.stopRecv[ch.Sel.Name] = true
	case *ast.Ident:
		b.fi.stopRecv[ch.Name] = true
	}
}

// noteCommRecv extracts the receive operand from a select comm clause.
func (b *builder) noteCommRecv(s ast.Stmt) {
	var x ast.Expr
	switch s := s.(type) {
	case *ast.ExprStmt:
		if u, ok := s.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			x = u.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if u, ok := s.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				x = u.X
			}
		}
	}
	if x != nil {
		b.noteStopRecv(x)
	}
}

// addBlock appends one blocking effect.
func (b *builder) addBlock(pos token.Pos, what string) {
	b.fi.blocks = append(b.fi.blocks, Effect{Pos: pos, What: what})
}

// edge appends one call edge.
func (b *builder) edge(callee *FuncInfo, pos token.Pos, kind EdgeKind) {
	b.fi.Edges = append(b.fi.Edges, Edge{Callee: callee, Pos: pos, Kind: kind})
}
