package lint

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// DumpGraph writes a human-readable rendering of the call graph and the
// computed effect summaries — `hiper-lint -graph`'s output, the debug
// view for "why did the checker think this blocks". One block per node:
//
//	pkg.Func (file:line) [blocks:time.Sleep spins acquires:{pkg.T.mu}]
//	  call  pkg.helper
//	  defer pkg.cleanup
//	  go    func@file.go:12
//
// Nodes appear in load order (sorted package dirs, then source order);
// the summary flags are the transitive facts, not just direct effects.
func (p *Program) DumpGraph(w io.Writer) {
	for _, fi := range p.nodes {
		sum := p.Summary(fi)
		var flags []string
		if len(sum.Blocks) > 0 {
			flags = append(flags, "blocks:"+sum.Blocks[0].What)
		}
		if len(sum.Spins) > 0 {
			flags = append(flags, "spins:"+sum.Spins[0].What)
		}
		if len(sum.Recovers) > 0 {
			flags = append(flags, "recovers")
		}
		if len(sum.Acquires) > 0 {
			flags = append(flags, "acquires:{"+strings.Join(sortedKeys(sum.Acquires), ",")+"}")
		}
		if len(sum.StopRecv) > 0 {
			var names []string
			for k := range sum.StopRecv {
				names = append(names, k)
			}
			sort.Strings(names)
			flags = append(flags, "recv:{"+strings.Join(names, ",")+"}")
		}
		pos := p.Fset.Position(fi.Pos())
		fmt.Fprintf(w, "%s (%s:%d)", fi.Name, pos.Filename, pos.Line)
		if len(flags) > 0 {
			fmt.Fprintf(w, " [%s]", strings.Join(flags, " "))
		}
		fmt.Fprintln(w)
		for _, e := range fi.Edges {
			fmt.Fprintf(w, "  %-5s %s\n", e.Kind, e.Callee.Name)
		}
	}
}
