package lint

import (
	"go/token"
	"strings"
)

// summary.go computes per-function effect summaries bottom-up over the
// call graph's strongly connected components. A summary answers, for a
// single node, "what can happen on the caller's goroutine if this
// function is called?" — the facts the interprocedural checkers consume:
//
//	Blocks    thread-blocking operations (time.Sleep, raw channel ops,
//	          default-less select, WaitGroup.Wait), with the witness
//	          chain down to the primitive
//	Spins     spin.Sleep / spin.Until reachability
//	Recovers  recover() reachability
//	Acquires  the set of named mutexes the call may lock
//	StopRecvs channel fields/vars the body (transitively) receives on
//
// Propagation is effect-specific. All effects flow over EdgeCall and
// EdgeDefer (same goroutine); none flow over EdgeGo or EdgeSpawn — a
// fresh goroutine or a task body is a different execution context and is
// analyzed at its own site. Three sanctioned layers additionally cut
// chains:
//
//   - internal/core, internal/fabric, and internal/spin terminate Blocks
//     chains: core IS the suspension machinery, fabric's receives are
//     yield-polling, and spin's calibrated waits are governed by the
//     spin-specific checkers; a task that calls into them is using the
//     sanctioned primitives.
//   - internal/spin terminates Spins chains: the primitive call itself
//     is the effect, recorded at the caller.
//   - internal/core terminates Recovers chains: the worker barrier is
//     the one sanctioned recover site.
//
// Acquires and StopRecvs propagate without package cuts.

// Effect is one summarized fact with a witness position and the call
// chain (callee display names, outermost first) that reaches it. An
// empty chain means the effect is direct.
type Effect struct {
	Pos   token.Pos
	What  string
	Chain []string
}

// Via renders the chain for a diagnostic, or "" for direct effects.
func (e Effect) Via() string {
	if len(e.Chain) == 0 {
		return ""
	}
	return strings.Join(e.Chain, " → ")
}

// Summary is the transitive effect set of one function node.
type Summary struct {
	Blocks   []Effect
	Spins    []Effect
	Recovers []Effect
	Acquires map[string]Effect
	StopRecv map[string]bool
}

// maxChain bounds witness chains so cyclic call structures cannot grow
// them unboundedly; deeper chains keep the truncation marker.
const maxChain = 8

// Summary returns fi's memoized transitive summary, computing the SCC
// condensation on first use.
func (p *Program) Summary(fi *FuncInfo) *Summary {
	if s, ok := p.summaries[fi]; ok {
		return s
	}
	p.computeSCC(fi)
	return p.summaries[fi]
}

// blocksCut reports whether Blocks effects must not propagate out of
// callee (the sanctioned suspension/polling layers).
func blocksCut(callee *FuncInfo) bool {
	return pkgHasSuffix(callee, "internal/core", "internal/fabric", "internal/spin")
}

// spinsCut reports whether Spins effects must not propagate out of
// callee (the spin package's own internals).
func spinsCut(callee *FuncInfo) bool {
	return pkgHasSuffix(callee, "internal/spin")
}

// recoversCut reports whether Recovers effects must not propagate out of
// callee (the sanctioned worker barrier package).
func recoversCut(callee *FuncInfo) bool {
	return pkgHasSuffix(callee, "internal/core")
}

// computeSCC runs Tarjan's algorithm from root over call+defer edges and
// computes summaries for every component reached, in reverse topological
// order (callees before callers).
func (p *Program) computeSCC(root *FuncInfo) {
	t := &tarjan{
		prog:  p,
		index: make(map[*FuncInfo]int),
		low:   make(map[*FuncInfo]int),
		on:    make(map[*FuncInfo]bool),
	}
	t.visit(root)
}

type tarjan struct {
	prog  *Program
	next  int
	index map[*FuncInfo]int
	low   map[*FuncInfo]int
	on    map[*FuncInfo]bool
	stack []*FuncInfo
}

// propagatedEdges lists fi's same-goroutine out-edges.
func propagatedEdges(fi *FuncInfo) []Edge {
	var out []Edge
	for _, e := range fi.Edges {
		if e.Kind == EdgeCall || e.Kind == EdgeDefer {
			out = append(out, e)
		}
	}
	return out
}

func (t *tarjan) visit(v *FuncInfo) {
	t.index[v] = t.next
	t.low[v] = t.next
	t.next++
	t.stack = append(t.stack, v)
	t.on[v] = true

	for _, e := range propagatedEdges(v) {
		w := e.Callee
		if _, done := t.prog.summaries[w]; done {
			continue // already summarized in an earlier component
		}
		if _, seen := t.index[w]; !seen {
			t.visit(w)
			if t.low[w] < t.low[v] {
				t.low[v] = t.low[w]
			}
		} else if t.on[w] {
			if t.index[w] < t.low[v] {
				t.low[v] = t.index[w]
			}
		}
	}

	if t.low[v] == t.index[v] {
		var comp []*FuncInfo
		for {
			w := t.stack[len(t.stack)-1]
			t.stack = t.stack[:len(t.stack)-1]
			t.on[w] = false
			comp = append(comp, w)
			if w == v {
				break
			}
		}
		t.prog.summarizeComponent(comp)
	}
}

// summarizeComponent computes the shared fixpoint summary of one SCC.
// Members of a cycle share one effect set (any member can reach any
// other), seeded from direct effects plus already-summarized callees,
// then iterated within the component until stable.
func (p *Program) summarizeComponent(comp []*FuncInfo) {
	inComp := make(map[*FuncInfo]bool, len(comp))
	for _, fi := range comp {
		inComp[fi] = true
	}
	sums := make(map[*FuncInfo]*Summary, len(comp))
	for _, fi := range comp {
		s := &Summary{Acquires: make(map[string]Effect), StopRecv: make(map[string]bool)}
		s.Blocks = appendEffects(s.Blocks, fi.blocks, "")
		s.Spins = appendEffects(s.Spins, fi.spins, "")
		s.Recovers = appendEffects(s.Recovers, fi.recovers, "")
		for k, e := range fi.acquires {
			s.Acquires[k] = e
		}
		for k := range fi.stopRecv {
			s.StopRecv[k] = true
		}
		sums[fi] = s
	}
	merge := func(dst *Summary, fi *FuncInfo, e Edge) bool {
		var src *Summary
		if inComp[e.Callee] {
			src = sums[e.Callee]
		} else {
			src = p.summaries[e.Callee]
		}
		if src == nil {
			return false
		}
		changed := false
		if !blocksCut(e.Callee) {
			changed = liftEffects(&dst.Blocks, src.Blocks, e.Callee.Name) || changed
		}
		if !spinsCut(e.Callee) {
			changed = liftEffects(&dst.Spins, src.Spins, e.Callee.Name) || changed
		}
		if !recoversCut(e.Callee) {
			changed = liftEffects(&dst.Recovers, src.Recovers, e.Callee.Name) || changed
		}
		for k, eff := range src.Acquires {
			if _, ok := dst.Acquires[k]; !ok {
				dst.Acquires[k] = lift(eff, e.Callee.Name)
				changed = true
			}
		}
		if e.Kind == EdgeCall {
			for k := range src.StopRecv {
				if !dst.StopRecv[k] {
					dst.StopRecv[k] = true
					changed = true
				}
			}
		}
		return changed
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range comp {
			for _, e := range propagatedEdges(fi) {
				if merge(sums[fi], fi, e) {
					changed = true
				}
			}
		}
	}
	for _, fi := range comp {
		p.summaries[fi] = sums[fi]
	}
}

// appendEffects adds effects not yet represented (keyed by What), with
// via prepended to their chains when non-empty.
func appendEffects(dst []Effect, src []Effect, via string) []Effect {
	for _, e := range src {
		if hasWhat(dst, e.What) {
			continue
		}
		if via != "" {
			e = lift(e, via)
		}
		dst = append(dst, e)
	}
	return dst
}

// liftEffects merges src into *dst through a callee named via, reporting
// whether anything new was added.
func liftEffects(dst *[]Effect, src []Effect, via string) bool {
	changed := false
	for _, e := range src {
		if hasWhat(*dst, e.What) {
			continue
		}
		*dst = append(*dst, lift(e, via))
		changed = true
	}
	return changed
}

// lift prepends via to an effect's witness chain, respecting maxChain.
func lift(e Effect, via string) Effect {
	chain := make([]string, 0, len(e.Chain)+1)
	chain = append(chain, via)
	chain = append(chain, e.Chain...)
	if len(chain) > maxChain {
		chain = append(chain[:maxChain], "…")
	}
	return Effect{Pos: e.Pos, What: e.What, Chain: chain}
}

func hasWhat(effects []Effect, what string) bool {
	for _, e := range effects {
		if e.What == what {
			return true
		}
	}
	return false
}
