package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module identifies the Go module under analysis.
type Module struct {
	Root string // absolute directory containing go.mod
	Path string // module path declared by go.mod
}

// FindModule walks upward from dir to the nearest go.mod and parses the
// module path out of it.
func FindModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for {
		gomod := filepath.Join(abs, "go.mod")
		if data, err := os.ReadFile(gomod); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					path := strings.TrimSpace(rest)
					if path == "" {
						break
					}
					return &Module{Root: abs, Path: path}, nil
				}
			}
			return nil, fmt.Errorf("lint: %s has no module line", gomod)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return nil, fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// Package is one loaded, type-checked package: the unit checkers operate on.
type Package struct {
	ImportPath string // module-relative import path, or a testdata pseudo-path
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error

	// Prog is the interprocedural view over the whole run, attached by
	// NewProgram. Checkers nil-check it: a package analyzed outside a
	// full driver run (unit tests poking at one checker) simply loses
	// the transitive findings.
	Prog *Program
}

// IsFixture reports whether the package lives under a testdata directory.
// Checkers that are normally scoped to specific runtime packages apply
// unconditionally to fixtures, so their own test cases exercise them.
func (p *Package) IsFixture() bool {
	return strings.Contains(filepath.ToSlash(p.Dir), "/testdata/")
}

// Loader parses and type-checks module packages from source, resolving
// stdlib imports through go/importer's source importer — no toolchain
// export data and no third-party loader involved.
type Loader struct {
	Mod  *Module
	Fset *token.FileSet

	std     types.Importer
	byDir   map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader rooted at mod.
func NewLoader(mod *Module) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Mod:     mod,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		byDir:   make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer: module-internal paths are loaded from
// source within this module; everything else is delegated to the stdlib
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if rel, ok := l.moduleRel(path); ok {
		p, err := l.LoadDir(filepath.Join(l.Mod.Root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// moduleRel maps an import path inside the module to a root-relative slash
// path.
func (l *Loader) moduleRel(path string) (string, bool) {
	if path == l.Mod.Path {
		return ".", true
	}
	if rel, ok := strings.CutPrefix(path, l.Mod.Path+"/"); ok {
		return rel, true
	}
	return "", false
}

// LoadDir parses and type-checks the package in dir (non-test files only).
// Results are memoized; import cycles are reported rather than recursed
// into.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.byDir[abs]; ok {
		return p, nil
	}
	if l.loading[abs] {
		return nil, fmt.Errorf("lint: import cycle through %s", abs)
	}
	l.loading[abs] = true
	defer func() { delete(l.loading, abs) }()

	names, err := goFilesIn(abs)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", abs)
	}

	p := &Package{Dir: abs, Fset: l.Fset, ImportPath: l.importPathFor(abs)}
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		p.Files = append(p.Files, f)
	}

	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	// Check returns a usable (if incomplete) package even when it also
	// reports errors; TypeErrors carries them to the driver, which treats
	// them as fatal for real packages.
	p.Types, _ = conf.Check(p.ImportPath, l.Fset, p.Files, p.Info)
	l.byDir[abs] = p
	return p, nil
}

// importPathFor derives the import path for a module directory; directories
// that are not importable (e.g. under testdata) get their root-relative
// path as a stable pseudo-path.
func (l *Loader) importPathFor(abs string) string {
	rel, err := filepath.Rel(l.Mod.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(abs)
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		return l.Mod.Path
	}
	if strings.Contains(rel, "testdata/") || strings.HasPrefix(rel, "testdata") {
		return rel
	}
	return l.Mod.Path + "/" + rel
}

// goFilesIn lists the buildable non-test Go files in dir, sorted.
func goFilesIn(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Expand resolves command-line package patterns to package directories.
// Supported forms: "./..." (every package under the module root, testdata
// excluded), a directory path (absolute or module-root-relative), and a
// module import path with or without a trailing "/...".
func (l *Loader) Expand(patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if abs, err := filepath.Abs(d); err == nil && !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, pat := range patterns {
		recursive := pat == "..." || strings.HasSuffix(pat, "/...")
		base := strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		if base == "" {
			base = "."
		}
		if rel, ok := l.moduleRel(base); ok {
			base = filepath.Join(l.Mod.Root, filepath.FromSlash(rel))
		}
		st, err := os.Stat(base)
		if err != nil || !st.IsDir() {
			return nil, fmt.Errorf("lint: cannot resolve package pattern %q", pat)
		}
		if recursive {
			walked, err := walkPackages(base)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
		} else {
			add(base)
		}
	}
	return dirs, nil
}

// walkPackages lists directories under root that contain non-test Go
// files, skipping testdata, hidden, and underscore-prefixed directories.
func walkPackages(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goFilesIn(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}
