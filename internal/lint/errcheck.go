package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// UncheckedError flags calls whose error result is silently discarded in
// the runtime and communication packages (internal/core, simnet, mpi,
// shmem) — the layers where a dropped error is a dropped message or a
// corrupted schedule. Explicitly assigning to the blank identifier
// (`_ = f()`) is treated as a deliberate, reviewable discard and is not
// flagged; fmt's Print family is exempt.
type UncheckedError struct{}

// Name implements Checker.
func (*UncheckedError) Name() string { return "unchecked-error" }

// Doc implements Checker.
func (*UncheckedError) Doc() string {
	return "error-returning calls in internal/{core,simnet,mpi,shmem} must not discard their error result"
}

// AppliesTo implements scoped.
func (*UncheckedError) AppliesTo(importPath string) bool {
	for _, suffix := range []string{"internal/core", "internal/simnet", "internal/mpi", "internal/shmem"} {
		if strings.HasSuffix(importPath, suffix) {
			return true
		}
	}
	return false
}

// Check implements Checker.
func (*UncheckedError) Check(p *Package, r *Reporter) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = s.Call
			case *ast.DeferStmt:
				call = s.Call
			}
			if call == nil || !returnsError(p, call) || isPrintCall(p, call) {
				return true
			}
			r.Reportf(call.Pos(), "result of %s includes an error that is discarded; handle it or assign it to _ to mark the discard deliberate", types.ExprString(call.Fun))
			return true
		})
	}
}

// returnsError reports whether the call's sole or final result is error.
func returnsError(p *Package, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(tuple.Len() - 1).Type()
	}
	return isErrorType(t)
}

// isErrorType reports whether t is the predeclared error type.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isPrintCall exempts fmt's Print family, whose error results are
// discarded by near-universal convention.
func isPrintCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !strings.Contains(sel.Sel.Name, "rint") {
		return false
	}
	return isPkgIdent(p, sel.X, "fmt")
}
