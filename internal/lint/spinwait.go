package lint

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// SpinWaitOutsidePoller flags spin.Until/spin.Sleep calls inside
// internal/fabric anywhere but the poller file. The data-plane refactor
// centralized every modelled wait in the poller's timekeeper
// (sleepUntilTarget): exactly one goroutine spins, interruptibly, for
// the earliest pending deadline. A stray spin call elsewhere in the
// fabric quietly reintroduces the one-spin-wait-per-delivery pattern
// that made goroutine count and CPU burn scale with active link pairs —
// the failure mode the poller exists to remove. Code that needs a
// modelled delay realized must schedule it through the link heap.
//
// The check is interprocedural: a call site outside poller.go whose
// callee transitively reaches spin.Sleep/spin.Until — including a call
// back into poller.go's own timekeeper helpers — reintroduces
// distributed spinning just as surely as a literal spin call, and is
// flagged with the witness chain.
type SpinWaitOutsidePoller struct{}

// pollerFile is the one fabric file allowed to spin.
const pollerFile = "poller.go"

// Name implements Checker.
func (*SpinWaitOutsidePoller) Name() string { return "spin-wait-outside-poller" }

// Doc implements Checker.
func (*SpinWaitOutsidePoller) Doc() string {
	return "internal/fabric may only spin-wait (spin.Sleep/Until) in poller.go; deadlines elsewhere must be scheduled through the poller heap"
}

// AppliesTo implements scoped: only the transport package itself.
func (*SpinWaitOutsidePoller) AppliesTo(importPath string) bool {
	return strings.HasSuffix(importPath, "internal/fabric")
}

// Check implements Checker.
func (c *SpinWaitOutsidePoller) Check(p *Package, r *Reporter) {
	for _, f := range p.Files {
		if filepath.Base(p.Fset.Position(f.Pos()).Filename) == pollerFile {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Sleep", "Until":
					if isSpinPkg(p, sel.X) {
						r.Reportf(call.Pos(), "spin.%s outside %s; the poller's timekeeper is the fabric's only sanctioned spin site — schedule the deadline through the link heap", sel.Sel.Name, pollerFile)
						return true
					}
				}
			}
			c.checkTransitive(p, r, call)
			return true
		})
	}
}

// checkTransitive flags calls from non-poller fabric files to functions
// whose summary reaches a spin primitive. Call sites inside poller.go
// are exempt by construction (Check skips that file entirely).
func (c *SpinWaitOutsidePoller) checkTransitive(p *Package, r *Reporter, call *ast.CallExpr) {
	if p.Prog == nil {
		return
	}
	for _, callee := range p.Prog.resolveCallee(p, call) {
		if callee.Lit != nil {
			continue // a literal's body is lexically here and checked directly
		}
		if spinsCut(callee) {
			continue // the spin package itself: the direct check owns that form
		}
		sum := p.Prog.Summary(callee)
		if len(sum.Spins) == 0 {
			continue
		}
		e := sum.Spins[0]
		r.Reportf(call.Pos(), "calling %s outside %s reaches %s (via %s at %s); the poller's timekeeper is the fabric's only sanctioned spin site — schedule the deadline through the link heap",
			callee.Name, pollerFile, e.What, chainOrSelf(callee, e), r.Position(e.Pos))
		return
	}
}
