package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// SendOutsideLock enforces the wake-policy invariant PR 1's review fix
// documented in DESIGN.md: a token sent on a worker's park channel must
// be sent while the runtime's idleMu is held. The unpark/park drains
// rely on delisting-under-the-mutex ordering — a token sent outside the
// lock can leak into the worker's next park cycle, leave a dangling
// idle entry, and absorb a wake-up meant for a truly parked worker (a
// lost wake-up).
//
// The analysis is lexical and per-function: a send on a ".park" channel
// field is legal only if, earlier in the same function body (function
// literals are separate bodies), ".idleMu.Lock()" was called with no
// intervening non-deferred ".idleMu.Unlock()".
type SendOutsideLock struct{}

// Name implements Checker.
func (*SendOutsideLock) Name() string { return "send-outside-lock" }

// Doc implements Checker.
func (*SendOutsideLock) Doc() string {
	return "sends on worker park channels must happen while idleMu is held (internal/core wake policy)"
}

// AppliesTo implements scoped: the invariant belongs to the core
// scheduler package.
func (*SendOutsideLock) AppliesTo(importPath string) bool {
	return strings.HasSuffix(importPath, "internal/core")
}

const (
	parkChanField  = "park"
	idleMutexField = "idleMu"
)

// Check implements Checker.
func (c *SendOutsideLock) Check(p *Package, r *Reporter) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					c.checkBody(p, r, fn.Body)
				}
			case *ast.FuncLit:
				c.checkBody(p, r, fn.Body)
			}
			return true
		})
	}
}

// event is one lock-relevant occurrence in a function body, ordered by
// position.
type event struct {
	pos  token.Pos
	kind int // 0 lock, 1 unlock, 2 park send
}

// checkBody linearizes one function body (excluding nested function
// literals) into lock/unlock/send events and verifies every send is
// covered by a lock.
func (c *SendOutsideLock) checkBody(p *Package, r *Reporter, body *ast.BlockStmt) {
	var events []event
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate body, checked on its own
		case *ast.DeferStmt:
			// A deferred Unlock holds until function exit: it never ends
			// the critical section before a later send. Deferred Locks or
			// park sends would be bizarre; ignore the subtree either way.
			return false
		case *ast.SendStmt:
			if isFieldSelector(n.Chan, parkChanField) {
				events = append(events, event{n.Pos(), 2})
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Lock" && isFieldSelector(sel.X, idleMutexField) {
					events = append(events, event{n.Pos(), 0})
				}
				if sel.Sel.Name == "Unlock" && isFieldSelector(sel.X, idleMutexField) {
					events = append(events, event{n.Pos(), 1})
				}
			}
		}
		return true
	}
	ast.Inspect(body, visit)
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	held := false
	for _, e := range events {
		switch e.kind {
		case 0:
			held = true
		case 1:
			held = false
		case 2:
			if !held {
				r.Reportf(e.pos, "send on a worker's %s channel outside the %s critical section: the wake policy (DESIGN.md) requires park tokens to be sent while %s is held, or a stale token can cause a lost wake-up",
					parkChanField, idleMutexField, idleMutexField)
			}
		}
	}
}

// isFieldSelector reports whether e is a selector expression whose final
// component is the given field name (w.park, r.idleMu, ...).
func isFieldSelector(e ast.Expr, field string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == field
}
