package lint

import (
	"go/token"
	"sort"
	"strings"
)

// TagSpace polices the transport's reserved tag namespace. The fabric
// hands out reserved tags (negative, from -2 downward; -1 is AnyTag)
// exclusively through Transport.AllocTags, so composed scheduling
// libraries — shmem, job, cuda, omp — can share one wire without their
// control messages colliding. Two rules are per-package:
//
//   - A negative literal tag (other than AnyTag) on a Transport call
//     bypasses AllocTags entirely: nothing stops another module from
//     hardcoding the same value. Reserved tags must be AllocTags bases
//     or offsets from one.
//   - An offset from an AllocTags base must stay inside the allocated
//     block: `base - k` with k ≥ n for AllocTags(n) silently reads a
//     neighbouring module's allocation.
//
// The module pass adds the cross-cutting rule: the same negative literal
// appearing in two different packages is a live collision, reported at
// each later claimant with the first claimant named. (AllocTags-derived
// tags cannot collide by construction, which is the point.)
type TagSpace struct{}

// anyTag mirrors fabric.AnyTag: the one negative tag that is a wildcard,
// not a reservation.
const anyTag = -1

// Name implements Checker.
func (*TagSpace) Name() string { return "tag-space" }

// Doc implements Checker.
func (*TagSpace) Doc() string {
	return "reserved (negative) transport tags must come from AllocTags and stay inside their block; literal reservations collide across modules"
}

// AppliesTo implements scoped: every module package — any package
// holding a Transport can misuse the namespace.
func (*TagSpace) AppliesTo(importPath string) bool { return true }

// Check implements Checker: the per-package rules.
func (c *TagSpace) Check(p *Package, r *Reporter) {
	if p.Prog == nil {
		return
	}
	for _, fi := range p.Prog.nodesOf(p) {
		for _, u := range fi.tagUses {
			switch {
			case u.FromAlloc:
				if u.Offset >= 0 && u.AllocN > 0 && u.Offset >= u.AllocN {
					r.Reportf(u.Pos, "tag offset %d walks off an AllocTags(%d) block (valid offsets 0..%d); the tag lands in a neighbouring module's allocation — allocate a larger block", u.Offset, u.AllocN, u.AllocN-1)
				}
			case u.IsConst && u.Val < 0 && u.Val != anyTag:
				r.Reportf(u.Pos, "literal reserved tag %d on %s bypasses AllocTags; nothing stops another module from claiming the same value — reserve through tr.AllocTags(n) and offset from its base", u.Val, u.Method)
			}
		}
	}
}

// tagClaim is one literal reservation site.
type tagClaim struct {
	pkg *Package
	pos token.Pos
}

// CheckModule implements ModuleChecker: cross-package literal collisions.
func (c *TagSpace) CheckModule(pkgs []*Package, r *Reporter) {
	claims := make(map[int64][]tagClaim) // first claim per (value, package)
	for _, p := range pkgs {
		if p.Prog == nil || !applies(c, p) {
			continue
		}
		seen := make(map[int64]bool)
		for _, fi := range p.Prog.nodesOf(p) {
			for _, u := range fi.tagUses {
				if !u.IsConst || u.FromAlloc || u.Val >= 0 || u.Val == anyTag || seen[u.Val] {
					continue
				}
				seen[u.Val] = true
				claims[u.Val] = append(claims[u.Val], tagClaim{pkg: p, pos: u.Pos})
			}
		}
	}
	var vals []int64
	for v, cs := range claims {
		if len(cs) > 1 {
			vals = append(vals, v)
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, v := range vals {
		cs := claims[v]
		sort.Slice(cs, func(i, j int) bool { return cs[i].pkg.ImportPath < cs[j].pkg.ImportPath })
		first := cs[0]
		for _, dup := range cs[1:] {
			r.Reportf(dup.pos, "reserved tag %d is also claimed by %s (%s); two modules hardcoding one tag share a mailbox by accident — both must reserve via AllocTags",
				v, pkgDisplay(first.pkg), r.Position(first.pos))
		}
	}
}

// pkgDisplay renders a short package name for diagnostics.
func pkgDisplay(p *Package) string {
	return pkgBase(strings.TrimSuffix(p.ImportPath, "/"))
}
