package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MixedAtomicAccess flags variables and struct fields that are accessed
// through sync/atomic functions in one place and with plain loads or
// stores in another, within the same package. Mixing the two invalidates
// the atomic protocol: the plain access races with the atomic one, and
// the race detector only catches it when the schedule cooperates. The
// repository convention (see internal/core) is to use the typed atomics
// (atomic.Int64 & co.), which make mixing impossible; this checker
// guards the raw-function escape hatch.
type MixedAtomicAccess struct{}

// Name implements Checker.
func (*MixedAtomicAccess) Name() string { return "mixed-atomic-access" }

// Doc implements Checker.
func (*MixedAtomicAccess) Doc() string {
	return "fields passed to sync/atomic functions must never be read or written with plain accesses in the same package"
}

// atomicFn reports whether name is a sync/atomic function that accesses
// its pointer argument's referent.
func atomicFn(name string) bool {
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// Check implements Checker.
func (*MixedAtomicAccess) Check(p *Package, r *Reporter) {
	// Pass 1: every object (field or variable) whose address is taken as
	// the pointer argument of a sync/atomic call, plus the exact operand
	// nodes so pass 2 does not flag the atomic sites themselves.
	atomicObjs := make(map[types.Object]token.Pos) // object -> first atomic site
	operand := make(map[ast.Node]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !atomicFn(sel.Sel.Name) || !isPkgIdent(p, sel.X, "sync/atomic") {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if obj := accessedObject(p, un.X); obj != nil {
					if _, seen := atomicObjs[obj]; !seen {
						atomicObjs[obj] = call.Pos()
					}
					operand[un.X] = true
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return
	}

	// Pass 2: any other use of those objects is a plain access.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if operand[n] {
				return false
			}
			var obj types.Object
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if s, ok := p.Info.Selections[x]; ok {
					obj = s.Obj()
				}
			case *ast.Ident:
				// Skip the Sel half of a selector (covered above) by only
				// accepting idents that resolve to a package-level var.
				if o, ok := p.Info.Uses[x]; ok {
					if v, isVar := o.(*types.Var); isVar && !v.IsField() {
						obj = o
					}
				}
			default:
				return true
			}
			if obj == nil {
				return true
			}
			if at, ok := atomicObjs[obj]; ok {
				r.Reportf(n.Pos(), "plain access to %s, which is accessed atomically at %s; mixing plain and sync/atomic access races — use the typed atomics (e.g. atomic.Int64) or go through sync/atomic everywhere",
					obj.Name(), p.Fset.Position(at))
			}
			return true
		})
	}
}

// accessedObject resolves the field or variable object an atomic operand
// expression refers to.
func accessedObject(p *Package, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if s, ok := p.Info.Selections[x]; ok {
			return s.Obj()
		}
		if obj, ok := p.Info.Uses[x.Sel]; ok {
			return obj
		}
	case *ast.Ident:
		if obj, ok := p.Info.Uses[x]; ok {
			return obj
		}
	case *ast.IndexExpr:
		return accessedObject(p, x.X)
	}
	return nil
}
