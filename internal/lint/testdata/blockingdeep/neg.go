package fixture

// compute and its helper never touch a blocking primitive, however deep
// the chain; the summaries must stay clean.
func compute() { helper() }

func helper() int { return 1 + 1 }

// ok passes both a literal and a named clean body.
func ok(c *Ctx) {
	c.Async(func(c *Ctx) {
		compute()
	})
	c.Async(cleanRun)
}

func cleanRun(c *Ctx) { compute() }
