// Package fixture is the interprocedural positive/negative corpus for
// blocking-in-task: the blocking primitive sits two and three helper
// frames below the task body, so only the call-graph summaries can see
// it. The local Ctx mirrors the runtime's spawn surface so the fixture
// type-checks without importing internal/core.
package fixture

import "time"

// Ctx stands in for core.Ctx.
type Ctx struct{}

// Async mirrors core.Ctx.Async.
func (c *Ctx) Async(fn func(*Ctx)) {}

// settle is three frames above the primitive.
func settle() { drain() }

// drain is two frames above the primitive.
func drain() { backoff() }

// backoff holds the actual time.Sleep.
func backoff() { time.Sleep(time.Millisecond) }

// run is a named task body that blocks two frames down.
func run(c *Ctx) { drain() }

func bad(c *Ctx) {
	c.Async(func(c *Ctx) {
		settle() // want blocking-in-task (reaches time.Sleep via drain → backoff)
	})
	c.Async(run) // want blocking-in-task (named task body blocks transitively)
}
