package fixture

import "fmt"

func good() error {
	if err := mayFail(); err != nil {
		return err
	}
	_ = mayFail() // explicit blank assignment: deliberate discard
	n, err := multi()
	if err != nil {
		return err
	}
	fmt.Println(n) // fmt Print family: exempt
	return nil
}
