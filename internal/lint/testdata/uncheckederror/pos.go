// Package fixture is the positive/negative corpus for the
// unchecked-error checker.
package fixture

import "errors"

func mayFail() error { return errors.New("boom") }

func multi() (int, error) { return 0, errors.New("boom") }

func bad() {
	mayFail()       // want unchecked-error (statement discard)
	defer mayFail() // want unchecked-error (deferred discard)
}
