// Package fixture is the positive/negative corpus for goroutine-leak:
// spawns with no WaitGroup join, no channel join, and no stop signal.
package fixture

func compute() {}

// leak launches a named worker nothing joins or stops.
func leak() {
	go compute() // want goroutine-leak
}

// leakLit launches a literal body with the same problem.
func leakLit(n int) {
	go func() { // want goroutine-leak
		for i := 0; i < n; i++ {
			compute()
		}
	}()
}
