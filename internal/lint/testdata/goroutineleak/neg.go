package fixture

import "sync"

func work() {}

// joined counts every spawn on a WaitGroup the same body waits on.
func joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// chanJoined observes completion through a channel the spawned body
// closes.
func chanJoined() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

// pump is the stop-signalled shape: the spawned loop selects on a stop
// channel that Stop closes.
type pump struct{ stop chan struct{} }

// Start launches the pump loop.
func (p *pump) Start() {
	go p.run()
}

// run drains until the stop channel closes.
func (p *pump) run() {
	for {
		select {
		case <-p.stop:
			return
		default:
			work()
		}
	}
}

// Stop signals the loop to exit.
func (p *pump) Stop() { close(p.stop) }
