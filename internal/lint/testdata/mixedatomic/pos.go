// Package fixture is the positive/negative corpus for the
// mixed-atomic-access checker.
package fixture

import "sync/atomic"

type counterBad struct {
	hits int64
}

func (c *counterBad) incr() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counterBad) read() int64 {
	return c.hits // want mixed-atomic-access (plain read of atomically-updated field)
}

var globalHits int64

func bumpGlobal() {
	atomic.AddInt64(&globalHits, 1)
}

func resetGlobal() {
	globalHits = 0 // want mixed-atomic-access (plain write of atomically-updated var)
}
