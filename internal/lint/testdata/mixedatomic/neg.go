package fixture

import "sync/atomic"

type counterGood struct {
	hits  atomic.Int64 // typed atomic: mixing is impossible
	plain int64        // never touched atomically: plain access is fine
}

func (c *counterGood) incr() {
	c.hits.Add(1)
	c.plain++
}

func (c *counterGood) read() (int64, int64) {
	return c.hits.Load(), c.plain
}

var globalGood int64

func bumpGlobalGood() {
	atomic.AddInt64(&globalGood, 1)
}

func readGlobalGood() int64 {
	return atomic.LoadInt64(&globalGood) // consistently atomic
}
