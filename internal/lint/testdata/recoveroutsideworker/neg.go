package fixture

import "errors"

// recoverer is a type whose method happens to be named recover — a
// method call is not the builtin and must not be flagged.
type recoverer struct{ lastErr error }

func (r *recoverer) recover() error { return r.lastErr }

// runChecked is the sanctioned idiom: the step reports failure as an
// error value and the caller propagates it; no panic is caught.
func runChecked(step func() error) error {
	if err := step(); err != nil {
		return errors.New("step failed: " + err.Error())
	}
	return nil
}

// restore consults the method, not the builtin.
func restore(r *recoverer) error { return r.recover() }
