// Package fixture is the positive/negative corpus for the
// recover-outside-worker checker: module code catching panics itself
// instead of letting the core worker barrier convert them into future
// and scope errors.
package fixture

import "fmt"

// runStep is the classic offender: a module wrapping its callback in a
// private recover, so a panic never reaches the task's future.
func runStep(step func()) (err error) {
	defer func() {
		if v := recover(); v != nil { // want recover-outside-worker
			err = fmt.Errorf("step failed: %v", v)
		}
	}()
	step()
	return nil
}

// drainQuietly swallows panics wholesale — not even converted to an
// error.
func drainQuietly(fns []func()) {
	for _, fn := range fns {
		func() {
			defer recover() // want recover-outside-worker
			fn()
		}()
	}
}

// catch reaches recover directly; shield and outer reach it one and two
// frames up, so their call sites carry the witness chain.
func catch() bool { return recover() != nil } // want recover-outside-worker (direct)

func shield() { catch() } // want recover-outside-worker (transitive, one frame)

func outer() { shield() } // want recover-outside-worker (transitive, two frames)
