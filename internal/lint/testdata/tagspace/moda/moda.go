// Package moda is half of the tag-space corpus: a module that hardcodes
// a reserved tag (which package modb also claims) and walks off the end
// of an AllocTags block. TR is Transport-shaped — the AllocTags method
// is what marks it — without importing internal/fabric.
package moda

// TR stands in for fabric.Transport.
type TR struct{}

// AllocTags mirrors Transport.AllocTags.
func (TR) AllocTags(n int) int { return -2 }

// Send mirrors Transport.Send (tag is the third argument).
func (TR) Send(src, dst, tag int, b []byte) {}

// Recv mirrors Transport.Recv (tag is the third argument).
func (TR) Recv(dst, src, tag int) {}

// claim hardcodes a reserved tag instead of allocating it.
func claim(tr TR) {
	tr.Send(0, 1, -7, nil) // want tag-space (literal reservation)
}

// overflow offsets past its two-tag allocation.
func overflow(tr TR) {
	base := tr.AllocTags(2)
	tr.Recv(1, 0, base-2) // want tag-space (offset 2 outside 0..1)
}
