package moda

// clean reserves through AllocTags and stays inside the block; positive
// application tags and the AnyTag wildcard (-1) are always fine.
func clean(tr TR) {
	base := tr.AllocTags(2)
	tr.Send(0, 1, base, nil)
	tr.Recv(1, 0, base-1)
	tr.Send(0, 1, 5, nil)
	tr.Recv(1, 0, -1)
}
