// Package modb is the other half of the tag-space corpus: it hardcodes
// the same reserved tag as package moda, which the module pass reports
// as a cross-package collision on top of the literal-reservation
// finding.
package modb

// TR stands in for fabric.Transport.
type TR struct{}

// AllocTags mirrors Transport.AllocTags.
func (TR) AllocTags(n int) int { return -2 }

// Send mirrors Transport.Send (tag is the third argument).
func (TR) Send(src, dst, tag int, b []byte) {}

// claim collides with moda's hardcoded reservation.
func claim(tr TR) {
	tr.Send(0, 1, -7, nil) // want tag-space (literal) and tag-space (overlap with moda)
}
