package fixture

import "time"

// backoff is not the spin package; Sleep/Until methods on other types
// are out of scope.
type backoff struct{}

func (backoff) Sleep(d time.Duration) {}
func (backoff) Until(t time.Time)     {}
func fine(b backoff, t time.Time)     { b.Sleep(time.Microsecond); b.Until(t) }

// time.Sleep is owned by other checkers (blocking-in-task); not a
// fabric spin-wait.
func alsoFine() { time.Sleep(time.Nanosecond) }
