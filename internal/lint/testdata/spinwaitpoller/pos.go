package fixture

import (
	"time"

	"repro/internal/spin"
)

// drainLink is the pre-poller idiom: a private spin-wait per delivery
// outside poller.go.
func drainLink(arrival time.Time, deliver func()) {
	//hiperlint:ignore raw-delay-outside-fabric fixture exercises spin-wait-outside-poller only
	spin.Until(arrival) // want spin-wait-outside-poller
	deliver()
}

// settle burns out a modelled delay by hand instead of scheduling it.
func settle(d time.Duration) {
	//hiperlint:ignore raw-delay-outside-fabric fixture exercises spin-wait-outside-poller only
	spin.Sleep(d) // want spin-wait-outside-poller
}
