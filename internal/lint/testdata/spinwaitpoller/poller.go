// Package fixture is the positive/negative corpus for the
// spin-wait-outside-poller checker. This file is named poller.go — the
// one fabric file sanctioned to spin — so its waits must stay clean.
package fixture

import (
	"time"

	"repro/internal/spin"
)

// sleepUntilTarget mirrors the fabric timekeeper: the sanctioned spin
// site.
func sleepUntilTarget(deadline time.Time) {
	//hiperlint:ignore raw-delay-outside-fabric fixture exercises spin-wait-outside-poller only
	spin.Until(deadline)
	//hiperlint:ignore raw-delay-outside-fabric fixture exercises spin-wait-outside-poller only
	spin.Sleep(time.Microsecond)
}
