package fixture

import "time"

// transport stands in for fabric.Transport: the sanctioned way to move
// data, with delivery callbacks instead of private sleeps.
type transport struct{}

func (transport) Put(src, dst, bytes int, apply, onDone func()) {}

// good routes the transfer through the transport; no delay math here.
func good(tr transport, bytes int, apply func()) {
	tr.Put(0, 1, bytes, apply, nil)
}

// clock is not a CostModel; a Delay method on some other type is fine.
type clock struct{}

func (clock) Delay(bytes int) time.Duration { return 0 }

func alsoFine(k clock) time.Duration { return k.Delay(4) }

// time.Sleep is outside this checker's scope (blocking-in-task owns the
// task-body cases); here it is plain non-communication latency.
func unrelated() { time.Sleep(time.Nanosecond) }
