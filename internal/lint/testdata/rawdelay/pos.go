// Package fixture is the positive/negative corpus for the
// raw-delay-outside-fabric checker. The local CostModel stands in for
// fabric.CostModel (the checker matches the type name); spin is the
// real calibrated-wait package, since the checker matches its import
// path.
package fixture

import (
	"time"

	"repro/internal/spin"
)

// CostModel stands in for fabric.CostModel.
type CostModel struct{ Alpha time.Duration }

// Delay mirrors fabric.CostModel.Delay.
func (c CostModel) Delay(bytes int) time.Duration { return c.Alpha }

// DelayBetween mirrors fabric.CostModel.DelayBetween.
func (c CostModel) DelayBetween(src, dst, bytes int) time.Duration { return c.Alpha }

// put is the pre-refactor module idiom: compute the transfer delay from
// the cost model, sleep it out on a private goroutine, then apply.
func put(c CostModel, bytes int, apply func()) {
	d := c.DelayBetween(0, 1, bytes) // want raw-delay-outside-fabric
	go func() {
		//hiperlint:ignore spin-wait-outside-poller fixture exercises raw-delay only
		spin.Sleep(d) // want raw-delay-outside-fabric
		apply()
	}()
}

// get charges a symmetric round trip by hand.
func get(c CostModel, bytes int) {
	//hiperlint:ignore spin-wait-outside-poller fixture exercises raw-delay only
	spin.Sleep(2 * c.Delay(bytes)) // want raw-delay-outside-fabric (twice: Delay and Sleep)
}

// waitDeadline spins to an absolute deadline, the drain-loop idiom that
// also belongs inside the transport.
func waitDeadline() {
	//hiperlint:ignore spin-wait-outside-poller fixture exercises raw-delay only
	spin.Until(time.Now().Add(time.Microsecond)) // want raw-delay-outside-fabric
}
