// Package fixture verifies that //hiperlint:ignore directives suppress
// findings on their own line and on the line below, and that malformed
// directives are themselves reported.
package fixture

import "time"

// Ctx stands in for core.Ctx.
type Ctx struct{}

// Async mirrors core.Ctx.Async.
func (c *Ctx) Async(fn func(*Ctx)) {}

func suppressed(c *Ctx, ch chan int) {
	c.Async(func(c *Ctx) {
		time.Sleep(time.Millisecond) //hiperlint:ignore blocking-in-task fixture: trailing-comment suppression
		//hiperlint:ignore blocking-in-task fixture: line-above suppression
		<-ch
		//hiperlint:ignore all fixture: "all" matches any checker
		ch <- 1
	})
}

func unsuppressed(c *Ctx) {
	c.Async(func(c *Ctx) {
		//hiperlint:ignore unchecked-error wrong checker name does not suppress
		time.Sleep(time.Millisecond) // want blocking-in-task (directive names another checker)
	})
}

//hiperlint:ignore
// ^ want bad-directive (missing checker and reason)
