// Package fixture is a minimal positive/negative corpus for the
// blocking-in-task checker. The local Ctx mirrors the runtime's spawn
// surface so the fixture type-checks without importing internal/core.
package fixture

import (
	"sync"
	"time"
)

// Ctx stands in for core.Ctx.
type Ctx struct{}

// Async mirrors core.Ctx.Async.
func (c *Ctx) Async(fn func(*Ctx)) {}

// Finish mirrors core.Ctx.Finish.
func (c *Ctx) Finish(fn func(*Ctx)) {}

// HelpUntil mirrors core.Ctx.HelpUntil.
func (c *Ctx) HelpUntil(pred func() bool) {}

var globalMu sync.Mutex

func bad(c *Ctx, ch chan int, wg *sync.WaitGroup) {
	c.Async(func(c *Ctx) {
		time.Sleep(time.Millisecond) // want blocking-in-task (time.Sleep)
	})
	c.Finish(func(c *Ctx) {
		<-ch            // want blocking-in-task (receive)
		ch <- 1         // want blocking-in-task (send)
		wg.Wait()       // want blocking-in-task (WaitGroup.Wait)
		globalMu.Lock() // want blocking-in-task (package-level mutex)
		globalMu.Unlock()
		select { // want blocking-in-task (select without default)
		case v := <-ch:
			_ = v
		}
	})
}
