package fixture

import (
	"sync"
	"time"
)

func good(c *Ctx, ch chan int, mu *sync.Mutex) {
	c.Async(func(c *Ctx) {
		c.HelpUntil(func() bool { return true })
		go func() {
			time.Sleep(time.Millisecond) // own goroutine: may block
			ch <- 1
		}()
		select { // has default: non-blocking
		case v := <-ch:
			_ = v
		default:
		}
		var local sync.Mutex
		local.Lock() // local mutex: bounded, allowed
		local.Unlock()
		mu.Lock() // parameter, not package-level: allowed
		mu.Unlock()
	})
	// Outside any task body, blocking is the caller's business.
	time.Sleep(time.Nanosecond)
	<-ch
}
