package fixture

func (r *runtime) wakeHeld(w *worker) {
	r.idleMu.Lock()
	select {
	case w.park <- struct{}{}: // lock held: conforms to the wake policy
	default:
	}
	r.idleMu.Unlock()
}

func (r *runtime) wakeAllHeld() {
	r.idleMu.Lock()
	for _, w := range r.idle {
		w.park <- struct{}{} // lock held across the loop
	}
	r.idleMu.Unlock()
}

func (r *runtime) drain(w *worker) {
	// Receives are not sends; the drain side has its own protocol.
	select {
	case <-w.park:
	default:
	}
}
