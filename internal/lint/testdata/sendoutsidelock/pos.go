// Package fixture is the positive/negative corpus for the
// send-outside-lock checker: it mirrors the shape of internal/core's
// park/wake protocol (worker.park guarded by Runtime.idleMu).
package fixture

import "sync"

type worker struct {
	park chan struct{}
}

type runtime struct {
	idleMu sync.Mutex
	idle   []*worker
}

func (r *runtime) wakeUnlocked(w *worker) {
	select {
	case w.park <- struct{}{}: // want send-outside-lock (no lock held)
	default:
	}
}

func (r *runtime) wakeReleasedTooEarly(w *worker) {
	r.idleMu.Lock()
	r.idle = nil
	r.idleMu.Unlock()
	w.park <- struct{}{} // want send-outside-lock (lock already released)
}
