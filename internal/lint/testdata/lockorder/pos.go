// Package fixture is the positive/negative corpus for lock-order-cycle:
// two struct-field mutexes acquired in opposite orders by different
// functions (one side through a helper, so only the Acquires summary
// sees it), plus a same-key self-cycle.
package fixture

import "sync"

// A and B carry the two mutexes of the inverted pair.
type A struct{ mu sync.Mutex }

// B is the other half of the inversion.
type B struct{ mu sync.Mutex }

// lockAB holds A.mu and acquires B.mu through grabB — the A → B edge is
// only visible transitively.
func lockAB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	grabB(b) // want lock-order-cycle (A.mu → B.mu here, B.mu → A.mu in lockBA)
}

// grabB takes B.mu on behalf of its caller.
func grabB(b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
}

// lockBA inverts the order directly.
func lockBA(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

// C demonstrates the self-cycle: two instances of one type locked under
// each other deadlock as soon as the instance order inverts.
type C struct{ mu sync.Mutex }

// double nests two C locks — a C.mu → C.mu self-edge.
func double(c1, c2 *C) {
	c1.mu.Lock()
	c2.mu.Lock() // want lock-order-cycle (C.mu under C.mu)
	c2.mu.Unlock()
	c1.mu.Unlock()
}
