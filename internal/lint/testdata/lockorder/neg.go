package fixture

import "sync"

// D and E are always taken in the same order — an acyclic lock graph.
type D struct{ mu sync.Mutex }

// E is always acquired after D.
type E struct{ mu sync.Mutex }

// first holds D.mu and acquires E.mu through a helper.
func first(d *D, e *E) {
	d.mu.Lock()
	defer d.mu.Unlock()
	second(e)
}

// second takes E.mu for its caller.
func second(e *E) {
	e.mu.Lock()
	defer e.mu.Unlock()
}

// also repeats the same D-then-E order inline.
func also(d *D, e *E) {
	d.mu.Lock()
	e.mu.Lock()
	e.mu.Unlock()
	d.mu.Unlock()
}

// sequential takes the locks one after the other, never nested — no
// edge at all.
func sequential(d *D, e *E) {
	e.mu.Lock()
	e.mu.Unlock()
	d.mu.Lock()
	d.mu.Unlock()
}
