package lint

import (
	"go/token"
	"path/filepath"
	"strings"
)

// ignorePrefix introduces a suppression directive. The full syntax is
//
//	//hiperlint:ignore <checker> <reason>
//
// where <checker> is a registered checker name or "all" and <reason> is
// free text explaining why the invariant is deliberately not upheld at
// this site. The directive suppresses matching findings on its own line
// (trailing comment) and on the line directly below it (comment above
// the statement).
const ignorePrefix = "//hiperlint:ignore"

// directive is one parsed suppression comment.
type directive struct {
	pos     token.Pos
	file    string // fset-resolved filename
	line    int
	checker string
	reason  string
	bad     bool
}

// collectDirectives parses every suppression directive in the package.
func collectDirectives(p *Package) []directive {
	var out []directive
	known := make(map[string]bool)
	for _, name := range CheckerNames() {
		known[name] = true
	}
	known["all"] = true
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				pos := p.Fset.Position(c.Pos())
				d := directive{pos: c.Pos(), file: pos.Filename, line: pos.Line}
				fields := strings.Fields(rest)
				if len(fields) >= 2 && known[fields[0]] {
					d.checker = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				} else {
					d.bad = true
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// filterSuppressed drops findings covered by a well-formed directive on
// the same line or the line above. bad-directive findings are never
// suppressed.
func filterSuppressed(findings []Finding, dirs []directive) []Finding {
	if len(dirs) == 0 {
		return findings
	}
	var kept []Finding
	for _, f := range findings {
		if f.Checker == "bad-directive" {
			kept = append(kept, f)
			continue
		}
		suppressed := false
		for _, d := range dirs {
			if d.bad {
				continue
			}
			// Directive files are absolute fset paths; finding files are
			// module-relative. Compare by path suffix.
			if !strings.HasSuffix(filepath.ToSlash(d.file), f.File) {
				continue
			}
			if (d.line == f.Line || d.line == f.Line-1) && (d.checker == "all" || d.checker == f.Checker) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	return kept
}
