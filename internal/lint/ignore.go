package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"strings"
)

// ignorePrefix introduces a suppression directive. The full syntax is
//
//	//hiperlint:ignore <checker> <reason>
//
// where <checker> is a registered checker name or "all" and <reason> is
// free text explaining why the invariant is deliberately not upheld at
// this site. The directive suppresses matching findings on its own line
// (trailing comment) and on the line directly below it (comment above
// the statement).
const ignorePrefix = "//hiperlint:ignore"

// directive is one parsed suppression comment.
type directive struct {
	pos     token.Pos
	file    string // fset-resolved filename
	line    int
	checker string
	reason  string
	bad     bool
}

// collectDirectives parses every suppression directive in the package.
func collectDirectives(p *Package) []directive {
	var out []directive
	known := make(map[string]bool)
	for _, name := range CheckerNames() {
		known[name] = true
	}
	known["all"] = true
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				pos := p.Fset.Position(c.Pos())
				d := directive{pos: c.Pos(), file: pos.Filename, line: pos.Line}
				fields := strings.Fields(rest)
				if len(fields) >= 2 && known[fields[0]] {
					d.checker = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				} else {
					d.bad = true
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// filterSuppressed drops findings covered by a well-formed directive on
// the same line or the line above, and reports which directives (by
// index into dirs) did suppress something — the -audit pass's raw
// material. bad-directive and stale-suppression findings are never
// suppressed.
func filterSuppressed(findings []Finding, dirs []directive) ([]Finding, map[int]bool) {
	used := make(map[int]bool)
	if len(dirs) == 0 {
		return findings, used
	}
	var kept []Finding
	for _, f := range findings {
		if f.Checker == "bad-directive" || f.Checker == "stale-suppression" {
			kept = append(kept, f)
			continue
		}
		suppressed := false
		for i, d := range dirs {
			if d.bad {
				continue
			}
			// Directive files are absolute fset paths; finding files are
			// module-relative. Compare by path suffix.
			if !strings.HasSuffix(filepath.ToSlash(d.file), f.File) {
				continue
			}
			if (d.line == f.Line || d.line == f.Line-1) && (d.checker == "all" || d.checker == f.Checker) {
				suppressed = true
				used[i] = true
				// Keep scanning: other directives covering the same finding
				// are genuinely redundant and SHOULD audit as stale, but a
				// directive already credited stays credited.
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	return kept, used
}

// staleDirectives turns unused, well-formed directives into findings.
// A directive naming a checker that is not active this run is skipped —
// a partial -enable/-disable run cannot prove a suppression stale — and
// "all" directives are only audited when the full registry ran.
func staleDirectives(mod *Module, dirs []directive, used map[int]bool, cfg Config) []Finding {
	active, err := cfg.active()
	if err != nil {
		return nil
	}
	activeNames := make(map[string]bool, len(active))
	for _, ch := range active {
		activeNames[ch.Name()] = true
	}
	fullSet := len(cfg.Enable) == 0 && len(cfg.Disable) == 0
	var out []Finding
	for i, d := range dirs {
		if d.bad || used[i] {
			continue
		}
		if d.checker == "all" && !fullSet {
			continue
		}
		if d.checker != "all" && !activeNames[d.checker] {
			continue
		}
		file := d.file
		if rel, err := filepath.Rel(mod.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		out = append(out, Finding{
			Checker: "stale-suppression",
			File:    file,
			Line:    d.line,
			Col:     1,
			Message: fmt.Sprintf("//hiperlint:ignore %s directive suppresses no finding; the violation it excused is gone — delete the directive (reason was: %s)", d.checker, d.reason),
		})
	}
	return out
}
