package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
)

// TestSchedulerBenchesSmoke runs every scheduler microbenchmark at toy sizes
// so `make check` catches bit-rot in the measured regions without paying for
// a real measurement run.
func TestSchedulerBenchesSmoke(t *testing.T) {
	cases := []struct {
		name string
		ops  int
		run  func(*core.Runtime, int) time.Duration
	}{
		{"spawn-latency", 256, spawnLatency},
		{"steal-throughput", 256, stealThroughput},
		{"wake-roundtrip", 8, wakeRoundtrip},
		{"fanout-wake", 2, fanOutWake},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := core.NewDefault(2)
			defer r.Shutdown()
			if d := tc.run(r, tc.ops); d < 0 {
				t.Fatalf("negative duration %v", d)
			}
		})
	}
}

func TestSchedReportJSONRoundTrip(t *testing.T) {
	rep := &SchedReport{
		GoMaxProcs: 2,
		Repeats:    1,
		Results: []SchedResult{{
			Name: "spawn-latency", Workers: 2, Ops: 10,
			NsPerOp: 123.4, OpsPerSec: 8103727.7, CI95NsOp: 5.6, AllocsOp: 1.0,
		}},
	}
	path := filepath.Join(t.TempDir(), "BENCH_scheduler.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got SchedReport
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(got.Results) != 1 || got.Results[0].Name != "spawn-latency" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if rendered := rep.Render(); rendered == "" {
		t.Fatal("empty render")
	}
}
