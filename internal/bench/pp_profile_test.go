package bench

import (
	"testing"

	"repro/internal/fabric"
)

// BenchmarkHarnessPingPongZero mirrors the pingpong-sim-zero benchmark
// of CommSuite as a `go test -bench` target, so the hot path can be
// profiled with -cpuprofile without running the whole suite:
//
//	go test -run xxx -bench HarnessPingPongZero -cpuprofile pp.prof ./internal/bench/
func BenchmarkHarnessPingPongZero(b *testing.B) {
	var tr fabric.Transport = fabric.NewSim(2, fabric.CostModel{})
	payload := make([]byte, 64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			m := tr.Recv(1, 0, 1)
			tr.Send(1, 0, 2, m.Data)
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Send(0, 1, 1, payload)
		tr.Recv(0, 1, 2)
	}
	<-done
}
