package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestResilienceSuiteSmoke runs the quick-scale suite end to end: every
// loss-rate row completes with verified payloads, lossy rows actually
// saw faults and retransmits, and the report round-trips through JSON.
func TestResilienceSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second soak")
	}
	rep, err := ResilienceSuite(Quick)
	if err != nil {
		t.Fatalf("resilience suite: %v", err)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("got %d rows, want 4", len(rep.Results))
	}
	clean := rep.Results[0]
	if clean.DropPct != 0 || clean.Retries != 0 || clean.Drops != 0 {
		t.Errorf("clean row not clean: %+v", clean)
	}
	worst := rep.Results[len(rep.Results)-1]
	if worst.DropPct != 10 {
		t.Errorf("last row at %.1f%%, want 10%%", worst.DropPct)
	}
	if worst.Drops == 0 || worst.Dups == 0 || worst.Retries == 0 {
		t.Errorf("10%% row shows no faults or no recovery: %+v", worst)
	}

	path := filepath.Join(t.TempDir(), "r.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back ResilienceReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(back.Results) != len(rep.Results) {
		t.Fatal("JSON round trip lost rows")
	}
	if !strings.Contains(rep.Render(), "drop%") {
		t.Error("Render missing header")
	}
}
