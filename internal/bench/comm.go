// Communication microbenchmarks over the pluggable transport layer.
//
// Three families, mirroring what the transport refactor is supposed to
// guarantee: (1) ping-pong latency across the backends, separating
// interface overhead (Inline, zero-cost Sim) from modelled cost
// (network Sim); (2) the congestion-collapse curve — per-message cost
// of an N→1 fan-in as N grows, the effect behind flat ISx's collapse at
// scale; (3) an A/B of the same mixed MPI+SHMEM fan-in on private
// fabrics versus one shared fabric, the cross-library coupling a single
// endpoint per rank buys. cmd/hiper-bench -comm emits the report as
// BENCH_comm.json for cross-PR tracking.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/mpi"
	"repro/internal/shmem"
)

// CommResult is one communication benchmark measurement.
type CommResult struct {
	Name     string  `json:"name"`
	Ranks    int     `json:"ranks"`
	Ops      int     `json:"ops_per_run"` // messages (fan-in) or round trips (ping-pong)
	NsPerOp  float64 `json:"ns_per_op"`
	CI95NsOp float64 `json:"ci95_ns_per_op"`
}

// CommReport is the machine-readable communication benchmark report.
type CommReport struct {
	GoMaxProcs int          `json:"gomaxprocs"`
	Repeats    int          `json:"repeats"`
	Results    []CommResult `json:"benchmarks"`
}

// pingPong measures ops round trips of a bytes-sized payload between
// ranks 0 and 1 on tr, returning total elapsed time.
func pingPong(tr fabric.Transport, ops, bytes int) time.Duration {
	payload := make([]byte, bytes)
	echoed := make(chan struct{})
	go func() {
		defer close(echoed)
		for i := 0; i < ops; i++ {
			m := tr.Recv(1, 0, 1)
			tr.Send(1, 0, 2, m.Data)
		}
	}()
	t0 := time.Now()
	for i := 0; i < ops; i++ {
		tr.Send(0, 1, 1, payload)
		tr.Recv(0, 1, 2)
	}
	<-echoed
	return time.Since(t0)
}

// transportFanIn drives senders ranks to each send msgsPer bytes-sized
// messages at rank 0, which receives them all.
func transportFanIn(tr fabric.Transport, senders, msgsPer, bytes int) time.Duration {
	payload := make([]byte, bytes)
	t0 := time.Now()
	var wg sync.WaitGroup
	for s := 1; s <= senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < msgsPer; i++ {
				tr.Send(s, 0, 1, payload)
			}
		}(s)
	}
	for i := 0; i < senders*msgsPer; i++ {
		tr.Recv(0, fabric.AnySource, fabric.AnyTag)
	}
	wg.Wait()
	return time.Since(t0)
}

// mixedFanIn runs an MPI fan-in and a SHMEM fan-in concurrently — each
// non-zero rank sends msgs messages/puts toward rank 0 through its
// library — and returns the elapsed wall time. The two worlds may sit
// on one shared transport or on two private ones; the caller chooses.
func mixedFanIn(mw *mpi.World, sw *shmem.World, msgs int) time.Duration {
	n := mw.Size()
	arr := sw.AllocInt64(n)
	payload := make([]byte, 64)
	t0 := time.Now()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var senders sync.WaitGroup
		for r := 1; r < n; r++ {
			senders.Add(1)
			go func(r int) {
				defer senders.Done()
				comm := mw.Comm(r)
				for i := 0; i < msgs; i++ {
					comm.Send(payload, 0, 7)
				}
			}(r)
		}
		buf := make([]byte, len(payload))
		root := mw.Comm(0)
		for i := 0; i < (n-1)*msgs; i++ {
			root.Recv(buf, mpi.AnySource, mpi.AnyTag)
		}
		senders.Wait()
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		var pes sync.WaitGroup
		for r := 1; r < n; r++ {
			pes.Add(1)
			go func(r int) {
				defer pes.Done()
				pe := sw.PE(r)
				for i := 0; i < msgs; i++ {
					pe.PutValue(arr, 0, r, int64(i))
				}
				pe.Quiet()
			}(r)
		}
		pes.Wait()
	}()
	wg.Wait()
	return time.Since(t0)
}

// CommSuite runs the communication benchmarks and returns the report.
func CommSuite(scale Scale) *CommReport {
	repeats := 5
	ppOps, fanMsgs, abMsgs := 200, 6, 8
	if scale == Full {
		repeats = 10
		ppOps, fanMsgs, abMsgs = 1000, 12, 16
	}
	rep := &CommReport{GoMaxProcs: runtime.GOMAXPROCS(0), Repeats: repeats}
	record := func(name string, ranks, ops int, s Sample) {
		ns := float64(s.Mean)
		rep.Results = append(rep.Results, CommResult{
			Name: name, Ranks: ranks, Ops: ops,
			NsPerOp: ns, CI95NsOp: float64(s.CI95),
		})
	}

	// Ping-pong latency: backend overhead vs modelled cost.
	backends := []struct {
		name string
		mk   func() fabric.Transport
	}{
		{"pingpong-inline", func() fabric.Transport { return fabric.NewInline(2) }},
		{"pingpong-sim-zero", func() fabric.Transport { return fabric.NewSim(2, fabric.CostModel{}) }},
		{"pingpong-sim-network", func() fabric.Transport { return fabric.NewSim(2, Network()) }},
	}
	for _, b := range backends {
		tr := b.mk()
		s := Measure(1, repeats, func() time.Duration {
			return pingPong(tr, ppOps, 64) / time.Duration(ppOps)
		})
		record(b.name, 2, ppOps, s)
	}

	// Congestion collapse: per-message cost of the N→1 fan-in under the
	// standard congested network as the fan-in deepens.
	for _, n := range []int{1, 2, 4, 8, 16} {
		total := n * fanMsgs
		s := Measure(1, repeats, func() time.Duration {
			tr := fabric.NewSim(n+1, Network())
			return transportFanIn(tr, n, fanMsgs, 256) / time.Duration(total)
		})
		record("fanin-"+strconv.Itoa(n)+"to1", n+1, total, s)
	}

	// Shared-fabric A/B: identical mixed MPI+SHMEM traffic, private
	// fabrics vs one shared fabric. The per-message gap is the
	// cross-library congestion coupling.
	const abRanks = 4
	abOps := 2 * (abRanks - 1) * abMsgs
	s := Measure(1, repeats, func() time.Duration {
		return mixedFanIn(
			mpi.NewWorld(abRanks, Network()),
			shmem.NewWorld(abRanks, Network()),
			abMsgs,
		) / time.Duration(abOps)
	})
	record("mixed-separate-fabrics", abRanks, abOps, s)
	s = Measure(1, repeats, func() time.Duration {
		tr := fabric.NewSim(abRanks, Network())
		return mixedFanIn(mpi.NewWorldOver(tr), shmem.NewWorldOver(tr), abMsgs) / time.Duration(abOps)
	})
	record("mixed-shared-fabric", abRanks, abOps, s)
	return rep
}

// WriteJSON writes the report to path.
func (r *CommReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render prints the report as an aligned table.
func (r *CommReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== communication microbenchmarks (GOMAXPROCS=%d, %d repeats) ==\n",
		r.GoMaxProcs, r.Repeats)
	fmt.Fprintf(&b, "%-26s %6s %10s %14s %12s\n", "benchmark", "ranks", "ops/run", "ns/op", "±ci95")
	for _, res := range r.Results {
		fmt.Fprintf(&b, "%-26s %6d %10d %14.0f %12.0f\n",
			res.Name, res.Ranks, res.Ops, res.NsPerOp, res.CI95NsOp)
	}
	return b.String()
}
