// Communication microbenchmarks over the pluggable transport layer.
//
// Three families, mirroring what the transport refactor is supposed to
// guarantee: (1) ping-pong latency across the backends, separating
// interface overhead (Inline, zero-cost Sim) from modelled cost
// (network Sim); (2) the congestion-collapse curve — per-message cost
// of an N→1 fan-in as N grows, the effect behind flat ISx's collapse at
// scale; (3) an A/B of the same mixed MPI+SHMEM fan-in on private
// fabrics versus one shared fabric, the cross-library coupling a single
// endpoint per rank buys. cmd/hiper-bench -comm emits the report as
// BENCH_comm.json for cross-PR tracking.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fabric"
	"repro/internal/mpi"
	"repro/internal/shmem"
)

// CommResult is one communication benchmark measurement.
type CommResult struct {
	Name     string  `json:"name"`
	Ranks    int     `json:"ranks"`
	Ops      int     `json:"ops_per_run"` // messages (fan-in) or round trips (ping-pong)
	NsPerOp  float64 `json:"ns_per_op"`
	CI95NsOp float64 `json:"ci95_ns_per_op"`
}

// CommReport is the machine-readable communication benchmark report.
type CommReport struct {
	GoMaxProcs int          `json:"gomaxprocs"`
	Repeats    int          `json:"repeats"`
	Results    []CommResult `json:"benchmarks"`
}

// pingPong measures ops round trips of a bytes-sized payload between
// ranks 0 and 1 on tr, returning total elapsed time.
func pingPong(tr fabric.Transport, ops, bytes int) time.Duration {
	payload := make([]byte, bytes)
	echoed := make(chan struct{})
	go func() {
		defer close(echoed)
		for i := 0; i < ops; i++ {
			m := tr.Recv(1, 0, 1)
			tr.Send(1, 0, 2, m.Data)
		}
	}()
	t0 := time.Now()
	for i := 0; i < ops; i++ {
		tr.Send(0, 1, 1, payload)
		tr.Recv(0, 1, 2)
	}
	<-echoed
	return time.Since(t0)
}

// transportFanIn drives senders ranks to each send msgsPer bytes-sized
// messages at rank 0, which receives them all.
func transportFanIn(tr fabric.Transport, senders, msgsPer, bytes int) time.Duration {
	payload := make([]byte, bytes)
	t0 := time.Now()
	var wg sync.WaitGroup
	for s := 1; s <= senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < msgsPer; i++ {
				tr.Send(s, 0, 1, payload)
			}
		}(s)
	}
	for i := 0; i < senders*msgsPer; i++ {
		tr.Recv(0, fabric.AnySource, fabric.AnyTag)
	}
	wg.Wait()
	return time.Since(t0)
}

// transportAlltoall drives an n-rank exchange: every rank sends one
// bytes-sized message to each of `degree` stride neighbours, with a
// small fixed pool of driver goroutines standing in for the ranks.
// Receivers count deliveries through re-arming async receives, so the
// returned wall time covers the landing of all n×degree messages, not
// just their issue. This is the benchmark the eager O(ranks²) link
// array and per-pair drain goroutines made impossible: at 1k ranks the
// full exchange activates ~10⁶ links, and at 10k ranks the old layout
// alone was 100M link structs.
func transportAlltoall(tr fabric.Transport, n, degree, bytes int) time.Duration {
	const tag = 9
	payload := make([]byte, bytes)
	total := int64(n) * int64(degree)
	var got atomic.Int64
	done := make(chan struct{})
	t0 := time.Now()
	for dst := 0; dst < n; dst++ {
		dst := dst
		var arm func(fabric.Message)
		arm = func(fabric.Message) {
			c := got.Add(1)
			for {
				if _, ok := tr.TryRecv(dst, fabric.AnySource, tag); !ok {
					break
				}
				c = got.Add(1)
			}
			if c == total {
				close(done)
				return
			}
			tr.RecvAsync(dst, fabric.AnySource, tag, arm)
		}
		tr.RecvAsync(dst, fabric.AnySource, tag, arm)
	}
	const drivers = 8
	var wg sync.WaitGroup
	per := n / drivers
	for d := 0; d < drivers; d++ {
		lo, hi := d*per, (d+1)*per
		if d == drivers-1 {
			hi = n
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for src := lo; src < hi; src++ {
				for k := 1; k <= degree; k++ {
					tr.Send(src, (src+k)%n, tag, payload)
				}
			}
		}()
	}
	wg.Wait()
	<-done
	return time.Since(t0)
}

// alltoallCost is the model the alltoall family runs under: real latency
// (so every transfer goes through the link heap and poller, not the
// inline path) but no congestion — at full alltoall fan-in the
// congestion penalties would dominate the wall time and the benchmark
// would measure the cost model instead of the data plane it exists to
// size.
func alltoallCost() fabric.CostModel {
	return fabric.CostModel{Alpha: time.Microsecond}
}

// mixedFanIn runs an MPI fan-in and a SHMEM fan-in concurrently — each
// non-zero rank sends msgs messages/puts toward rank 0 through its
// library — and returns the elapsed wall time. The two worlds may sit
// on one shared transport or on two private ones; the caller chooses.
func mixedFanIn(mw *mpi.World, sw *shmem.World, msgs int) time.Duration {
	n := mw.Size()
	arr := sw.AllocInt64(n)
	payload := make([]byte, 64)
	t0 := time.Now()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var senders sync.WaitGroup
		for r := 1; r < n; r++ {
			senders.Add(1)
			go func(r int) {
				defer senders.Done()
				comm := mw.Comm(r)
				for i := 0; i < msgs; i++ {
					comm.Send(payload, 0, 7)
				}
			}(r)
		}
		buf := make([]byte, len(payload))
		root := mw.Comm(0)
		for i := 0; i < (n-1)*msgs; i++ {
			root.Recv(buf, mpi.AnySource, mpi.AnyTag)
		}
		senders.Wait()
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		var pes sync.WaitGroup
		for r := 1; r < n; r++ {
			pes.Add(1)
			go func(r int) {
				defer pes.Done()
				pe := sw.PE(r)
				for i := 0; i < msgs; i++ {
					pe.PutValue(arr, 0, r, int64(i))
				}
				pe.Quiet()
			}(r)
		}
		pes.Wait()
	}()
	wg.Wait()
	return time.Since(t0)
}

// CommSuite runs the communication benchmarks and returns the report.
func CommSuite(scale Scale) *CommReport {
	repeats := 5
	ppOps, fanMsgs, abMsgs := 200, 6, 8
	if scale == Full {
		repeats = 10
		// Sub-microsecond latencies need a long timed window: at a few
		// hundred ops a single hypervisor-steal tick or GC pause lands
		// inside the window and doubles the repeat.
		ppOps, fanMsgs, abMsgs = 4000, 12, 16
	}
	rep := &CommReport{GoMaxProcs: runtime.GOMAXPROCS(0), Repeats: repeats}
	record := func(name string, ranks, ops int, s Sample) {
		ns := float64(s.Mean)
		rep.Results = append(rep.Results, CommResult{
			Name: name, Ranks: ranks, Ops: ops,
			NsPerOp: ns, CI95NsOp: float64(s.CI95),
		})
	}

	// Ping-pong latency: backend overhead vs modelled cost.
	backends := []struct {
		name string
		mk   func() fabric.Transport
	}{
		{"pingpong-inline", func() fabric.Transport { return fabric.NewInline(2) }},
		{"pingpong-sim-zero", func() fabric.Transport { return fabric.NewSim(2, fabric.CostModel{}) }},
		{"pingpong-sim-network", func() fabric.Transport { return fabric.NewSim(2, Network()) }},
	}
	for _, b := range backends {
		tr := b.mk()
		runtime.GC() // keep earlier benchmarks' garbage out of the timed window
		s := Measure(1, repeats, func() time.Duration {
			return pingPong(tr, ppOps, 64) / time.Duration(ppOps)
		})
		record(b.name, 2, ppOps, s)
	}

	// Transport hot-path cost without the scheduler: send and receive on
	// one goroutine, so no rendezvous context switches are measured. The
	// gap between this and pingpong-sim-zero is the Go scheduler's
	// per-round-trip share (two goroutine switches), not fabric overhead
	// — see EXPERIMENTS.md for the substrate-floor analysis.
	{
		tr := fabric.NewSim(2, fabric.CostModel{})
		payload := make([]byte, 64)
		runtime.GC()
		s := Measure(1, repeats, func() time.Duration {
			t0 := time.Now()
			for i := 0; i < ppOps; i++ {
				tr.Send(0, 1, 1, payload)
				tr.Recv(1, 0, 1)
			}
			return time.Since(t0) / time.Duration(ppOps)
		})
		record("sendrecv-sim-zero-1g", 2, ppOps, s)
	}

	// Congestion collapse: per-message cost of the N→1 fan-in under the
	// standard congested network as the fan-in deepens. 32 and 64
	// senders sit well beyond the knee, making the collapse slope
	// visible.
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		total := n * fanMsgs
		s := Measure(1, repeats, func() time.Duration {
			tr := fabric.NewSim(n+1, Network())
			return transportFanIn(tr, n, fanMsgs, 256) / time.Duration(total)
		})
		record("fanin-"+strconv.Itoa(n)+"to1", n+1, total, s)
	}

	// Data-plane scale: alltoall exchanges at 1k and 10k ranks. The 1k
	// full run is the complete n×(n-1) exchange (~10⁶ messages), so it
	// takes fewer repeats; the 10k world runs a reduced degree — the
	// point at that scale is that the lazy link table and bounded poller
	// pool make the world constructible and the exchange complete at
	// all.
	a2a1kDeg, a2a10kDeg, a2aRepeats := 16, 2, repeats
	if scale == Full {
		a2a1kDeg, a2a10kDeg, a2aRepeats = 999, 4, 3
	}
	for _, cfg := range []struct {
		name      string
		n, degree int
	}{
		{"alltoall-1k", 1000, a2a1kDeg},
		{"alltoall-10k", 10000, a2a10kDeg},
	} {
		total := cfg.n * cfg.degree
		s := Measure(1, a2aRepeats, func() time.Duration {
			tr := fabric.NewSim(cfg.n, alltoallCost())
			return transportAlltoall(tr, cfg.n, cfg.degree, 64) / time.Duration(total)
		})
		record(cfg.name, cfg.n, total, s)
	}

	// Shared-fabric A/B: identical mixed MPI+SHMEM traffic, private
	// fabrics vs one shared fabric. The per-message gap is the
	// cross-library congestion coupling.
	const abRanks = 4
	abOps := 2 * (abRanks - 1) * abMsgs
	s := Measure(1, repeats, func() time.Duration {
		return mixedFanIn(
			mpi.NewWorld(abRanks, Network()),
			shmem.NewWorld(abRanks, Network()),
			abMsgs,
		) / time.Duration(abOps)
	})
	record("mixed-separate-fabrics", abRanks, abOps, s)
	s = Measure(1, repeats, func() time.Duration {
		tr := fabric.NewSim(abRanks, Network())
		return mixedFanIn(mpi.NewWorldOver(tr), shmem.NewWorldOver(tr), abMsgs) / time.Duration(abOps)
	})
	record("mixed-shared-fabric", abRanks, abOps, s)
	return rep
}

// gateFactor is the regression bound CommGate enforces: deliberately
// loose, so it catches data-plane collapse (a lost wakeup, a goroutine
// leak, an accidental O(n²) path), not scheduler noise.
const gateFactor = 3.0

// CommGate is the bench-comm smoke gate: rerun the cheap, stable subset
// of the communication suite at quick scale and fail if any ns/op
// regresses more than gateFactor× against the committed report at path.
func CommGate(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("commgate: reading committed report: %w", err)
	}
	var committed CommReport
	if err := json.Unmarshal(data, &committed); err != nil {
		return fmt.Errorf("commgate: parsing %s: %w", path, err)
	}
	baseline := make(map[string]float64, len(committed.Results))
	for _, r := range committed.Results {
		baseline[r.Name] = r.NsPerOp
	}
	const repeats, ppOps, fanMsgs = 5, 200, 6
	checks := []struct {
		name string
		run  func() Sample
	}{
		{"pingpong-inline", func() Sample {
			tr := fabric.NewInline(2)
			return Measure(1, repeats, func() time.Duration {
				return pingPong(tr, ppOps, 64) / time.Duration(ppOps)
			})
		}},
		{"pingpong-sim-zero", func() Sample {
			tr := fabric.NewSim(2, fabric.CostModel{})
			return Measure(1, repeats, func() time.Duration {
				return pingPong(tr, ppOps, 64) / time.Duration(ppOps)
			})
		}},
		{"fanin-4to1", func() Sample {
			return Measure(1, repeats, func() time.Duration {
				tr := fabric.NewSim(5, Network())
				return transportFanIn(tr, 4, fanMsgs, 256) / time.Duration(4*fanMsgs)
			})
		}},
	}
	var failures []string
	for _, c := range checks {
		want, ok := baseline[c.name]
		if !ok {
			return fmt.Errorf("commgate: %s missing from %s (regenerate with make bench-comm)", c.name, path)
		}
		got := float64(c.run().Mean)
		if got > want*gateFactor {
			failures = append(failures,
				fmt.Sprintf("%s: %.0f ns/op vs committed %.0f (> %.0fx)", c.name, got, want, gateFactor))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("commgate: regression vs %s:\n  %s", path, strings.Join(failures, "\n  "))
	}
	return nil
}

// WriteJSON writes the report to path.
func (r *CommReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render prints the report as an aligned table.
func (r *CommReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== communication microbenchmarks (GOMAXPROCS=%d, %d repeats) ==\n",
		r.GoMaxProcs, r.Repeats)
	fmt.Fprintf(&b, "%-26s %6s %10s %14s %12s\n", "benchmark", "ranks", "ops/run", "ns/op", "±ci95")
	for _, res := range r.Results {
		fmt.Fprintf(&b, "%-26s %6d %10d %14.0f %12.0f\n",
			res.Name, res.Ranks, res.Ops, res.NsPerOp, res.CI95NsOp)
	}
	return b.String()
}
