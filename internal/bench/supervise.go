// Self-healing benchmark: what detector-driven recovery costs.
//
// Each workload (ISx bucket sort, Graph500 BFS) runs supervised — an
// opaque seeded KillPlan crashes endpoints, phi-accrual detection finds
// the victims, and job.Supervise rolls back / remaps / evicts its way
// to completion — at a clean wire and at 5% drop + 5% dup. Every
// committed phase is verified byte-identical inside the run, so a row
// is a correctness certificate; the columns are the price of healing:
// detection latency (sweep rounds and wall time), MTTR (first failure
// of a phase to its successful commit), and the completed-work ratio
// (committed phases over attempts launched — the fraction of compute
// that was not thrown away). cmd/hiper-bench -supervise emits
// BENCH_supervise.json.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/fabric"
	"repro/internal/job"
	"repro/internal/workloads/graph500"
	"repro/internal/workloads/isx"
)

// SuperviseRow is one workload × chaos-rate supervised run.
type SuperviseRow struct {
	Workload           string  `json:"workload"`
	DropRate           float64 `json:"drop_rate"` // drop == dup rate on every link
	Phases             int     `json:"phases"`
	Kills              int     `json:"kills"` // unscripted endpoint kills that fired
	Attempts           int     `json:"attempts"`
	Retries            int     `json:"retries"`
	Remaps             int     `json:"remaps"`
	Evictions          int     `json:"evictions"`
	FinalRanks         int     `json:"final_ranks"`
	DetectionRounds    float64 `json:"detection_rounds_mean"`
	DetectionNs        float64 `json:"detection_ns_mean"`
	MTTRNs             float64 `json:"mttr_ns_mean"` // first failure -> recommit
	CompletedWorkRatio float64 `json:"completed_work_ratio"`
	PhaseNs            float64 `json:"ns_per_committed_phase"`
}

// SuperviseReport is the machine-readable self-healing report.
type SuperviseReport struct {
	Seed    uint64         `json:"seed"`
	Results []SuperviseRow `json:"benchmarks"`
}

// superviseKills is the canonical unscripted fault source: up to two
// seeded kills at 90% per-attempt probability — under seed 42 they fire
// early and exercise detection, rollback, and remap.
func superviseKills(seed uint64) job.KillPlan {
	return job.KillPlan{Seed: seed + 1000, Prob: 0.9, Max: 2}
}

func supervisePlan(seed uint64, rate float64) fabric.FaultPlan {
	return fabric.FaultPlan{Seed: seed, Drop: rate, Dup: rate}
}

// isxSuperviseConfig builds the benchmark's supervised ISx run.
func isxSuperviseConfig(scale Scale, seed uint64, rate float64) isx.SuperviseConfig {
	streams, keys := 8, 256
	if scale == Full {
		streams, keys = 16, 2048
	}
	return isx.SuperviseConfig{
		Streams: streams, KeysPerStream: keys,
		Ranks: 3, Capacity: 8, Phases: 4, Seed: 1234,
		Plan: supervisePlan(seed, rate), Rel: elasticRel(),
		Kills: superviseKills(seed), Workers: 1,
	}
}

// bfsSuperviseConfig builds the benchmark's supervised Graph500 run.
func bfsSuperviseConfig(scale Scale, seed uint64, rate float64) graph500.SuperviseConfig {
	g := graph500.GraphConfig{Scale: 8, EdgeFactor: 8, Seed: 5}
	if scale == Full {
		g = graph500.GraphConfig{Scale: 10, EdgeFactor: 16, Seed: 5}
	}
	return graph500.SuperviseConfig{
		Graph: g, Ranks: 3, Capacity: 8, Phases: 3,
		Plan: supervisePlan(seed, rate), Rel: elasticRel(),
		Kills: superviseKills(seed), Workers: 1,
	}
}

// superviseRow condenses one supervised run into a report row.
func superviseRow(workload string, rate float64, kills int,
	phases []time.Duration, rep *job.RecoveryReport) SuperviseRow {
	row := SuperviseRow{
		Workload: workload, DropRate: rate, Kills: kills,
		Phases: rep.Phases, Attempts: rep.Attempts, Retries: rep.Retries,
		Remaps: rep.Remaps, Evictions: rep.Evictions, FinalRanks: rep.FinalRanks,
		PhaseNs: meanPhaseNs(phases),
	}
	if n := len(rep.Detections); n > 0 {
		var rounds, ns float64
		for _, d := range rep.Detections {
			rounds += float64(d.Rounds)
			ns += float64(d.Latency.Nanoseconds())
		}
		row.DetectionRounds = rounds / float64(n)
		row.DetectionNs = ns / float64(n)
	}
	if n := len(rep.Recoveries); n > 0 {
		var ns float64
		for _, r := range rep.Recoveries {
			ns += float64(r.Downtime.Nanoseconds())
		}
		row.MTTRNs = ns / float64(n)
	}
	if rep.Attempts > 0 {
		row.CompletedWorkRatio = float64(rep.Phases) / float64(rep.Attempts)
	}
	return row
}

// countingInject wraps a KillPlan so the benchmark can report how many
// unscripted kills actually fired (the supervisor never knows).
func countingInject(kills job.KillPlan, killed *int) func(tab *fabric.EpochTable, kill func(ep int)) func(phase, attempt int) {
	return func(tab *fabric.EpochTable, kill func(ep int)) func(phase, attempt int) {
		return kills.Injector(tab, func(ep int) { *killed++; kill(ep) })
	}
}

// superviseISx runs supervised ISx once and condenses it.
func superviseISx(scale Scale, seed uint64, rate float64) (SuperviseRow, error) {
	cfg := isxSuperviseConfig(scale, seed, rate)
	killed := 0
	cfg.Inject = countingInject(cfg.Kills, &killed)
	res, err := isx.RunSupervised(cfg)
	if err != nil {
		return SuperviseRow{}, fmt.Errorf("isx supervised (drop %.2f): %w", rate, err)
	}
	return superviseRow("isx", rate, killed, res.PhaseTimes, res.Report), nil
}

// superviseBFS runs supervised Graph500 once and condenses it.
func superviseBFS(scale Scale, seed uint64, rate float64) (SuperviseRow, error) {
	cfg := bfsSuperviseConfig(scale, seed, rate)
	killed := 0
	cfg.Inject = countingInject(cfg.Kills, &killed)
	res, err := graph500.RunSupervised(cfg)
	if err != nil {
		return SuperviseRow{}, fmt.Errorf("graph500 supervised (drop %.2f): %w", rate, err)
	}
	return superviseRow("graph500", rate, killed, res.PhaseTimes, res.Report), nil
}

// SuperviseSuite runs both workloads under unscripted kills at a clean
// wire and at 5% drop + 5% dup. A returned report certifies that every
// row completed with byte-identical output despite the kills.
func SuperviseSuite(scale Scale) (*SuperviseReport, error) {
	const seed = 42
	rep := &SuperviseReport{Seed: seed}
	for _, rate := range []float64{0, 0.05} {
		row, err := superviseISx(scale, seed, rate)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, row)
	}
	for _, rate := range []float64{0, 0.05} {
		row, err := superviseBFS(scale, seed, rate)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, row)
	}
	return rep, nil
}

// SuperviseGate is the bench-smoke gate: rerun the quick supervised ISx
// run at 5% chaos and fail if MTTR regresses more than gateFactor×
// against the committed report — catching a recovery-path collapse
// (sweep stall, checkpoint-restore regression, remap leak). Any
// correctness failure — a kill the supervisor cannot heal — fails the
// gate outright.
func SuperviseGate(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("supervisegate: reading committed report: %w", err)
	}
	var committed SuperviseReport
	if err := json.Unmarshal(data, &committed); err != nil {
		return fmt.Errorf("supervisegate: parsing %s: %w", path, err)
	}
	var want SuperviseRow
	for _, r := range committed.Results {
		if r.Workload == "isx" && r.DropRate > 0 {
			want = r
		}
	}
	if want.MTTRNs == 0 {
		return fmt.Errorf("supervisegate: no isx chaos row with recoveries in %s (regenerate with make bench-supervise)", path)
	}
	got, err := superviseISx(Quick, committed.Seed, want.DropRate)
	if err != nil {
		return fmt.Errorf("supervisegate: %w", err)
	}
	if got.Kills > 0 && got.MTTRNs == 0 {
		return fmt.Errorf("supervisegate: %d kills fired but no recovery was recorded", got.Kills)
	}
	if got.MTTRNs > want.MTTRNs*gateFactor {
		return fmt.Errorf("supervisegate: isx MTTR %.0f ns vs committed %.0f (> %.0fx)",
			got.MTTRNs, want.MTTRNs, gateFactor)
	}
	return nil
}

// WriteJSON writes the report to path.
func (r *SuperviseReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render prints the report as an aligned table.
func (r *SuperviseReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== self-healing: unscripted kills under phi-accrual supervision (seed %d) ==\n", r.Seed)
	fmt.Fprintf(&b, "%-10s %6s %6s %6s %8s %7s %6s %12s %12s %12s %8s\n",
		"workload", "drop", "kills", "phases", "attempts", "remaps", "evict", "detect rnds", "detect ns", "mttr ns", "work")
	for _, row := range r.Results {
		fmt.Fprintf(&b, "%-10s %6.2f %6d %6d %8d %7d %6d %12.1f %12.0f %12.0f %8.2f\n",
			row.Workload, row.DropRate, row.Kills, row.Phases, row.Attempts,
			row.Remaps, row.Evictions, row.DetectionRounds, row.DetectionNs,
			row.MTTRNs, row.CompletedWorkRatio)
	}
	return b.String()
}
