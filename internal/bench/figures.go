package bench

import (
	"io"
	"time"

	"repro/internal/cuda"
	"repro/internal/simnet"
	"repro/internal/workloads/geo"
	"repro/internal/workloads/graph500"
	"repro/internal/workloads/hpgmg"
	"repro/internal/workloads/isx"
	"repro/internal/workloads/uts"
)

// Scale selects sweep sizes: Quick for unit benches and smoke runs, Full
// for the figure-regeneration binaries.
type Scale int

// Scales.
const (
	Quick Scale = iota
	Full
)

// Network stands in for the Cray Aries fabrics of Edison/Titan: a few
// microseconds of latency, finite bandwidth, and congestion that punishes
// deep fan-in (the effect behind flat ISx's collapse at scale). The
// window models a NIC absorbing a credit window of in-flight messages
// per service cycle: backlog is charged per excess *window* (see
// CostModel.CongestPenalty), so a single sender's pipelined burst rides
// the window while deep incast still pays the full queueing collapse.
func Network() simnet.CostModel {
	return simnet.CostModel{
		Alpha:          15 * time.Microsecond,
		BytesPerSec:    2e9,
		CongestWindow:  8,
		CongestPenalty: 150 * time.Microsecond,
	}
}

// GPU stands in for Titan's K20X: kernel launch overhead and a PCIe-2
// class link.
func GPU() cuda.Config {
	return cuda.Config{
		SMs:             4,
		LaunchOverhead:  8 * time.Microsecond,
		PCIeBytesPerSec: 5e9,
		MemcpyAlpha:     10 * time.Microsecond,
	}
}

// SlowGPU and SlowNetwork scale the GEO experiment's transfer and message
// latencies into the many-millisecond range, where the host OS timer can
// park concurrent delays instead of spin-serializing them. On single-core
// benchmark hosts this is what lets the overlap the HiPER variant creates
// actually manifest as wall-clock savings, at the cost of an exaggerated
// communication:compute ratio (the paper's was ~2%; see EXPERIMENTS.md).
func SlowGPU() cuda.Config {
	return cuda.Config{
		SMs:             4,
		LaunchOverhead:  8 * time.Microsecond,
		PCIeBytesPerSec: 5e9,
		MemcpyAlpha:     8 * time.Millisecond,
	}
}

// SlowNetwork pairs with SlowGPU for the GEO experiment.
func SlowNetwork() simnet.CostModel {
	return simnet.CostModel{
		Alpha:       8 * time.Millisecond,
		BytesPerSec: 2e9,
	}
}

const (
	warmup  = 1
	repeats = 5 // the paper uses 10; Full sweeps use 10 below
)

func reps(s Scale) (int, int) {
	if s == Full {
		return 1, 10
	}
	return warmup, repeats
}

// Fig4HPGMG regenerates Figure 4: HPGMG-FV weak scaling, reference hybrid
// vs HiPER (expected: comparable performance).
func Fig4HPGMG(w io.Writer, s Scale) *Figure {
	ranksSweep := []int{1, 2, 4, 8}
	n, nz, cycles := 16, 8, 2
	if s == Full {
		ranksSweep = []int{1, 2, 4, 8, 16}
		n, nz, cycles = 32, 16, 3
	}
	wu, rep := reps(s)
	fig := NewFigure("Figure 4: HPGMG-FV weak scaling (lower is better)", "ranks")
	ref := fig.NewSeries("MPI+OMP (reference)")
	hip := fig.NewSeries("HiPER (UPC+++MPI)")
	for _, r := range ranksSweep {
		cfg := hpgmg.Config{N: n, NZ: nz, Ranks: r, Workers: 4, Cycles: cycles, Cost: Network()}
		ref.Add(r, Measure(wu, rep, func() time.Duration {
			res, err := hpgmg.RunReference(cfg)
			must(err)
			return res.Elapsed
		}))
		hip.Add(r, Measure(wu, rep, func() time.Duration {
			res, err := hpgmg.RunHiPER(cfg)
			must(err)
			return res.Elapsed
		}))
	}
	if w != nil {
		fig.Render(w)
	}
	return fig
}

// Fig5ISx regenerates Figure 5: ISx weak scaling across flat OpenSHMEM,
// OpenSHMEM+OpenMP, and HiPER AsyncSHMEM (expected: flat fastest at small
// scale, collapsing under the all-to-all at large scale; hybrids
// comparable to each other).
func Fig5ISx(w io.Writer, s Scale) *Figure {
	pesSweep := []int{4, 8, 16, 32}
	keys := 1 << 12
	if s == Full {
		pesSweep = []int{4, 8, 16, 32, 64}
		keys = 1 << 14
	}
	wu, rep := reps(s)
	fig := NewFigure("Figure 5: ISx weak scaling (lower is better)", "PEs")
	flat := fig.NewSeries("Flat OpenSHMEM")
	hyb := fig.NewSeries("OpenSHMEM+OMP")
	hip := fig.NewSeries("HiPER AsyncSHMEM")
	const coresPerNode = 4
	for _, pes := range pesSweep {
		// Flat: one PE per core, coresPerNode PEs share a node, so much of
		// the all-to-all rides the cheap shared-memory transport — until
		// the inter-node message count (R²-ish) collapses under congestion.
		flatCost := Network()
		flatCost.RanksPerNode = coresPerNode
		flatCost.LocalAlpha = time.Microsecond
		flatCost.LocalBytesPerSec = 10e9
		flatCfg := isx.Config{PEs: pes, Threads: coresPerNode, KeysPerPE: keys, Cost: flatCost, Seed: 42}
		// Hybrids: one rank per node; every message is inter-node, but
		// there are (R/threads)² of them instead of R².
		hybCfg := isx.Config{PEs: pes, Threads: coresPerNode, KeysPerPE: keys, Cost: Network(), Seed: 42}
		flat.Add(pes, Measure(wu, rep, func() time.Duration {
			res, err := isx.RunFlat(flatCfg)
			must(err)
			return res.Elapsed
		}))
		hyb.Add(pes, Measure(wu, rep, func() time.Duration {
			res, err := isx.RunHybridOMP(hybCfg)
			must(err)
			return res.Elapsed
		}))
		hip.Add(pes, Measure(wu, rep, func() time.Duration {
			res, err := isx.RunHiPER(hybCfg)
			must(err)
			return res.Elapsed
		}))
	}
	if w != nil {
		fig.Render(w)
	}
	return fig
}

// Fig6GEO regenerates Figure 6: GEO weak scaling, blocking MPI+CUDA vs
// future-based HiPER (expected: HiPER consistently a few percent faster by
// eliminating blocking CUDA operations).
func Fig6GEO(w io.Writer, s Scale) *Figure {
	ranksSweep := []int{1, 2, 4, 8}
	nx, nz, steps := 64, 24, 3
	if s == Full {
		ranksSweep = []int{1, 2, 4, 8, 16}
		nx, nz, steps = 64, 32, 5
	}
	wu, rep := reps(s)
	fig := NewFigure("Figure 6: GEO weak scaling (lower is better)", "ranks")
	ref := fig.NewSeries("MPI+CUDA (blocking)")
	hip := fig.NewSeries("HiPER (futures)")
	for _, r := range ranksSweep {
		cfg := geo.Config{NX: nx, NY: nx, NZ: nz, Steps: steps, Ranks: r, Workers: 4,
			Cost: SlowNetwork(), GPU: SlowGPU(), Seed: 11, PollInterval: 2 * time.Microsecond}
		ref.Add(r, Measure(wu, rep, func() time.Duration {
			res, err := geo.RunMPICUDA(cfg)
			must(err)
			return res.Elapsed
		}))
		hip.Add(r, Measure(wu, rep, func() time.Duration {
			res, err := geo.RunHiPER(cfg)
			must(err)
			return res.Elapsed
		}))
	}
	if w != nil {
		fig.Render(w)
	}
	return fig
}

// Fig7UTS regenerates Figure 7: UTS strong scaling across
// OpenSHMEM+OpenMP, OpenSHMEM+OpenMP Tasks, and HiPER AsyncSHMEM
// (expected: AsyncSHMEM best, Tasks worst due to coarse-grain region
// synchronization).
func Fig7UTS(w io.Writer, s Scale) *Figure {
	ranksSweep := []int{2, 4, 8}
	tree := uts.TreeConfig{B0: 4, GenMax: 11, Seed: 19}
	if s == Full {
		ranksSweep = []int{2, 4, 8, 16}
		tree = uts.DefaultTree
	}
	wu, rep := reps(s)
	fig := NewFigure("Figure 7: UTS strong scaling (lower is better)", "ranks")
	omp := fig.NewSeries("OpenSHMEM+OMP")
	tasks := fig.NewSeries("OpenSHMEM+OMP Tasks")
	hip := fig.NewSeries("HiPER AsyncSHMEM")
	for _, r := range ranksSweep {
		cfg := uts.RunConfig{Tree: tree, Ranks: r, Threads: 4, Cost: Network()}
		omp.Add(r, Measure(wu, rep, func() time.Duration {
			res, err := uts.RunSHMEMOMP(cfg)
			must(err)
			return res.Elapsed
		}))
		tasks.Add(r, Measure(wu, rep, func() time.Duration {
			res, err := uts.RunSHMEMOMPTasks(cfg)
			must(err)
			return res.Elapsed
		}))
		hip.Add(r, Measure(wu, rep, func() time.Duration {
			res, err := uts.RunHiPER(cfg)
			must(err)
			return res.Elapsed
		}))
	}
	if w != nil {
		fig.Render(w)
	}
	return fig
}

// Graph500Study regenerates the Section III-C2 comparison: the polling
// reference BFS vs the HiPER shmem_async_when version (expected: similar
// performance — the win is programmability — with polling overhead removed
// from the application).
func Graph500Study(w io.Writer, s Scale) *Figure {
	ranksSweep := []int{1, 2, 4, 8}
	g := graph500.GraphConfig{Scale: 10, EdgeFactor: 16, Seed: 5}
	if s == Full {
		ranksSweep = []int{1, 2, 4, 8, 16}
		g = graph500.DefaultGraph
	}
	wu, rep := reps(s)
	fig := NewFigure("Graph500 BFS strong scaling (lower is better)", "ranks")
	ref := fig.NewSeries("Reference (polling)")
	hip := fig.NewSeries("HiPER shmem_async_when")
	for _, r := range ranksSweep {
		cfg := graph500.RunConfig{Graph: g, Root: 1, Ranks: r, Workers: 4, Cost: Network()}
		ref.Add(r, Measure(wu, rep, func() time.Duration {
			res, err := graph500.RunReference(cfg)
			must(err)
			return res.Elapsed
		}))
		hip.Add(r, Measure(wu, rep, func() time.Duration {
			res, err := graph500.RunHiPER(cfg)
			must(err)
			return res.Elapsed
		}))
	}
	if w != nil {
		fig.Render(w)
	}
	return fig
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
