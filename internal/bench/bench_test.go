package bench

import (
	"strings"
	"testing"
	"time"
)

func TestSummarizeBasics(t *testing.T) {
	runs := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	s := Summarize(runs)
	if s.N != 3 || s.Mean != 20*time.Millisecond {
		t.Fatalf("sample = %+v", s)
	}
	if s.Min != 10*time.Millisecond || s.Max != 30*time.Millisecond {
		t.Fatalf("min/max wrong: %+v", s)
	}
	if s.StdDev != 10*time.Millisecond {
		t.Fatalf("stddev = %v, want 10ms", s.StdDev)
	}
	// CI95 = t(2df) * sd / sqrt(3) = 4.303 * 10ms / 1.732 ≈ 24.84ms
	sd := float64(10 * time.Millisecond)
	want := time.Duration(4.303 * sd / 1.7320508)
	if d := s.CI95 - want; d > time.Millisecond || d < -time.Millisecond {
		t.Fatalf("ci95 = %v, want ~%v", s.CI95, want)
	}
}

func TestSummarizeDegenerate(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty summarize")
	}
	s := Summarize([]time.Duration{5 * time.Millisecond})
	if s.N != 1 || s.Mean != 5*time.Millisecond || s.CI95 != 0 {
		t.Fatalf("single-run sample = %+v", s)
	}
}

func TestTCritMonotone(t *testing.T) {
	if tCrit(1) != 0 {
		t.Fatal("no CI with one run")
	}
	if !(tCrit(2) > tCrit(10) && tCrit(10) > tCrit(100)) {
		t.Fatal("t critical values not decreasing")
	}
	if tCrit(1000) != 1.96 {
		t.Fatal("large-n fallback wrong")
	}
}

func TestMeasureCountsRunsNotWarmup(t *testing.T) {
	calls := 0
	s := Measure(2, 5, func() time.Duration {
		calls++
		return time.Millisecond
	})
	if calls != 7 {
		t.Fatalf("fn called %d times, want 7", calls)
	}
	if s.N != 5 || s.Mean != time.Millisecond {
		t.Fatalf("sample = %+v", s)
	}
}

func TestFigureRender(t *testing.T) {
	f := NewFigure("Fig X: test", "ranks")
	a := f.NewSeries("alpha")
	b := f.NewSeries("beta")
	a.Add(1, Summarize([]time.Duration{time.Millisecond, time.Millisecond}))
	a.Add(2, Summarize([]time.Duration{2 * time.Millisecond}))
	b.Add(2, Summarize([]time.Duration{4 * time.Millisecond}))
	var sb strings.Builder
	f.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Fig X: test", "ranks", "alpha", "beta", "1", "2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSpeedups(t *testing.T) {
	f := NewFigure("t", "x")
	base := f.NewSeries("base")
	fast := f.NewSeries("fast")
	base.Add(4, Summarize([]time.Duration{10 * time.Millisecond}))
	fast.Add(4, Summarize([]time.Duration{5 * time.Millisecond}))
	out := f.Speedups("base")
	if !strings.Contains(out, "2.00x") {
		t.Fatalf("speedup output: %q", out)
	}
	if f.Speedups("missing") != "" {
		t.Fatal("missing baseline should yield empty string")
	}
}
