// Tracing overhead microbenchmarks.
//
// The tracing layer promises two numbers: a runtime built without tracing
// pays nothing (one nil check on the task hot path), and a runtime with
// tracing armed-but-disabled pays a single atomic load. This suite measures
// both against the traced (enabled) configuration on the two benchmarks the
// acceptance gate tracks — spawn-latency and fanout-wake — and emits
// BENCH_trace.json so the overhead has a cross-PR trajectory.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/trace"
)

// TraceBenchResult is one benchmark measured under the three tracing modes.
type TraceBenchResult struct {
	Name    string `json:"name"`
	Workers int    `json:"workers"`
	Ops     int    `json:"ops_per_run"`
	// UntracedNsOp is the baseline: Options.Trace == nil.
	UntracedNsOp float64 `json:"untraced_ns_per_op"`
	// DisabledNsOp has tracing armed but the enable gate off.
	DisabledNsOp float64 `json:"disabled_ns_per_op"`
	// EnabledNsOp records every event.
	EnabledNsOp float64 `json:"enabled_ns_per_op"`
	// Overheads are relative to the untraced baseline.
	DisabledOverheadPct float64 `json:"disabled_overhead_pct"`
	EnabledOverheadPct  float64 `json:"enabled_overhead_pct"`
	// Events/Dropped describe the enabled run's final ring contents.
	Events  int    `json:"events_retained"`
	Dropped uint64 `json:"events_dropped"`
}

// TraceReport is the machine-readable tracing benchmark report.
type TraceReport struct {
	GoMaxProcs int                `json:"gomaxprocs"`
	Repeats    int                `json:"repeats"`
	Results    []TraceBenchResult `json:"benchmarks"`
}

// TraceSuite measures spawn-latency and fanout-wake under untraced,
// armed-disabled, and enabled tracing. quick shrinks op counts.
func TraceSuite(workers int, scale Scale) *TraceReport {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if prev := runtime.GOMAXPROCS(0); workers > prev {
		runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(prev)
	}
	repeats := 10
	mul := 1
	if scale == Quick {
		repeats = 5
	} else {
		mul = 4
	}
	benches := []schedBench{
		{"spawn-latency", 50000 * mul, spawnLatency},
		{"fanout-wake", 50 * mul, fanOutWake},
	}
	rep := &TraceReport{GoMaxProcs: runtime.GOMAXPROCS(0), Repeats: repeats}
	for _, b := range benches {
		res := TraceBenchResult{Name: b.name, Workers: workers, Ops: b.ops}
		run := func(rt *core.Runtime) float64 {
			sample := Measure(2, repeats, func() time.Duration {
				return b.run(rt, b.ops) / time.Duration(b.ops)
			})
			return float64(sample.Mean)
		}

		rt := core.NewDefault(workers)
		res.UntracedNsOp = run(rt)
		rt.Shutdown()

		rt, err := core.New(platform.Default(workers), &core.Options{Trace: &trace.Config{}})
		if err != nil {
			panic(err)
		}
		rt.Tracer().Disable()
		res.DisabledNsOp = run(rt)
		rt.Shutdown()

		rt, err = core.New(platform.Default(workers), &core.Options{Trace: &trace.Config{}})
		if err != nil {
			panic(err)
		}
		res.EnabledNsOp = run(rt)
		res.Events = len(rt.Tracer().Events())
		res.Dropped = rt.Tracer().Dropped()
		rt.Shutdown()

		if res.UntracedNsOp > 0 {
			res.DisabledOverheadPct = (res.DisabledNsOp/res.UntracedNsOp - 1) * 100
			res.EnabledOverheadPct = (res.EnabledNsOp/res.UntracedNsOp - 1) * 100
		}
		rep.Results = append(rep.Results, res)
	}
	return rep
}

// WriteJSON writes the report to path.
func (r *TraceReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render prints the report as an aligned table.
func (r *TraceReport) Render() string {
	out := fmt.Sprintf("== Tracing overhead microbenchmarks (workers=%d, repeats=%d) ==\n",
		r.GoMaxProcs, r.Repeats)
	out += fmt.Sprintf("%-16s %12s %12s %12s %10s %10s %10s %9s\n",
		"benchmark", "untraced", "disabled", "enabled", "dis-ovh%", "en-ovh%", "events", "dropped")
	for _, b := range r.Results {
		out += fmt.Sprintf("%-16s %12.1f %12.1f %12.1f %10.2f %10.2f %10d %9d\n",
			b.Name, b.UntracedNsOp, b.DisabledNsOp, b.EnabledNsOp,
			b.DisabledOverheadPct, b.EnabledOverheadPct, b.Events, b.Dropped)
	}
	return out
}
