// Resilience benchmark: the cost of surviving a misbehaving fabric.
//
// One workload — a scatter/echo fan-out over an MPI world — runs over a
// Reliable layer on a Chaos-wrapped simulated fabric at increasing
// injected drop+duplication rates (0, 1, 5, 10%). Every run verifies
// the echoed payloads bit-for-bit, so a row in the report certifies the
// workload COMPLETED CORRECTLY at that loss rate; the columns are what
// that correctness cost: wall time per message and retransmit volume.
// cmd/hiper-bench -chaos emits the report as BENCH_resilience.json.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/mpi"
)

// ResilienceResult is one loss-rate point on the curve.
type ResilienceResult struct {
	DropPct  float64 `json:"drop_pct"`
	DupPct   float64 `json:"dup_pct"`
	Ranks    int     `json:"ranks"`
	Msgs     int     `json:"msgs_per_run"`
	NsPerMsg float64 `json:"ns_per_msg"`
	CI95NsMs float64 `json:"ci95_ns_per_msg"`
	Retries  int64   `json:"retries"`
	Drops    int64   `json:"drops"`
	Dups     int64   `json:"dups"`
}

// ResilienceReport is the machine-readable resilience report.
type ResilienceReport struct {
	Ranks   int                `json:"ranks"`
	Repeats int                `json:"repeats"`
	Results []ResilienceResult `json:"benchmarks"`
}

// resilienceFanOut scatters msgsPer stamped messages from rank 0 to
// every other rank; each rank echoes them back; rank 0 verifies every
// echo byte-for-byte. Returns the elapsed wall time.
func resilienceFanOut(w *mpi.World, msgsPer int) (time.Duration, error) {
	n := w.Size()
	t0 := time.Now()
	var wg sync.WaitGroup
	for r := 1; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			comm := w.Comm(r)
			buf := make([]byte, 16)
			for i := 0; i < msgsPer; i++ {
				comm.Recv(buf, 0, 1)
				comm.Send(buf, 0, 2)
			}
		}(r)
	}
	var sendWg sync.WaitGroup
	sendWg.Add(1)
	go func() {
		defer sendWg.Done()
		root := w.Comm(0)
		payload := make([]byte, 16)
		for i := 0; i < msgsPer; i++ {
			for r := 1; r < n; r++ {
				stamp(payload, r, i)
				root.Send(payload, r, 1)
			}
		}
	}()
	root := w.Comm(0)
	echo := make([]byte, 16)
	want := make([]byte, 16)
	seen := make([]int, n)
	var verr error
	for i := 0; i < (n-1)*msgsPer; i++ {
		st := root.Recv(echo, mpi.AnySource, 2)
		r := st.Source
		stamp(want, r, seen[r])
		seen[r]++
		if verr == nil && string(echo) != string(want) {
			verr = fmt.Errorf("rank %d echo %d corrupted: got %x want %x", r, seen[r]-1, echo, want)
		}
	}
	sendWg.Wait()
	wg.Wait()
	if verr != nil {
		return 0, verr
	}
	return time.Since(t0), nil
}

// stamp writes a recognizable (rank, index) pattern into p.
func stamp(p []byte, rank, i int) {
	for j := range p {
		p[j] = byte(rank*31 + i*7 + j)
	}
}

// ResilienceSuite runs the fan-out at each loss rate and returns the
// report. Any correctness failure aborts the suite — a resilience
// number for a workload that corrupted data would be worse than no
// number.
func ResilienceSuite(scale Scale) (*ResilienceReport, error) {
	const ranks = 4
	repeats, msgsPer := 3, 50
	if scale == Full {
		repeats, msgsPer = 5, 200
	}
	totalMsgs := (ranks - 1) * msgsPer
	rep := &ResilienceReport{Ranks: ranks, Repeats: repeats}
	for _, rate := range []float64{0, 0.01, 0.05, 0.10} {
		var retries, drops, dups int64
		var runErr error
		s := Measure(1, repeats, func() time.Duration {
			chaos := fabric.NewChaos(fabric.NewSim(ranks, fabric.CostModel{}),
				fabric.FaultPlan{Seed: 1 + uint64(rate*1000), Drop: rate, Dup: rate})
			rel := fabric.NewReliable(chaos, fabric.RelConfig{})
			elapsed, err := resilienceFanOut(mpi.NewWorldOver(rel), msgsPer)
			if err != nil && runErr == nil {
				runErr = fmt.Errorf("drop/dup %.0f%%: %w", rate*100, err)
			}
			retries += rel.Retries()
			drops += chaos.Drops()
			dups += chaos.Dups()
			return elapsed / time.Duration(totalMsgs)
		})
		if runErr != nil {
			return nil, runErr
		}
		runs := int64(repeats + 1) // Measure's warmup run also counts traffic
		rep.Results = append(rep.Results, ResilienceResult{
			DropPct: rate * 100, DupPct: rate * 100,
			Ranks: ranks, Msgs: totalMsgs,
			NsPerMsg: float64(s.Mean), CI95NsMs: float64(s.CI95),
			Retries: retries / runs, Drops: drops / runs, Dups: dups / runs,
		})
	}
	return rep, nil
}

// WriteJSON writes the report to path.
func (r *ResilienceReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render prints the report as an aligned table.
func (r *ResilienceReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== resilience: fan-out over Reliable(Chaos(Sim)), %d ranks, %d repeats ==\n",
		r.Ranks, r.Repeats)
	fmt.Fprintf(&b, "%-10s %-8s %10s %14s %12s %10s %10s %10s\n",
		"drop%", "dup%", "msgs/run", "ns/msg", "±ci95", "retries", "drops", "dups")
	for _, res := range r.Results {
		fmt.Fprintf(&b, "%-10.1f %-8.1f %10d %14.0f %12.0f %10d %10d %10d\n",
			res.DropPct, res.DupPct, res.Msgs, res.NsPerMsg, res.CI95NsMs,
			res.Retries, res.Drops, res.Dups)
	}
	return b.String()
}
