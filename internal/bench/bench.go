// Package bench is the measurement harness for reproducing the paper's
// evaluation: repeated runs with 95% confidence intervals (the paper
// repeats all tests ten times and reports 95% CIs), weak- and
// strong-scaling sweeps, and figure-shaped text output so each benchmark
// binary prints the same rows/series the corresponding paper figure shows.
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample summarizes repeated measurements of one configuration.
type Sample struct {
	N      int
	Mean   time.Duration
	StdDev time.Duration
	CI95   time.Duration // half-width of the 95% confidence interval
	Min    time.Duration
	Max    time.Duration
}

// tCrit returns the two-sided 95% critical value of Student's t for n-1
// degrees of freedom (n >= 2), falling back to the normal 1.96 for large n.
func tCrit(n int) float64 {
	table := []float64{ // df = 1..30
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	df := n - 1
	if df <= 0 {
		return 0
	}
	if df <= len(table) {
		return table[df-1]
	}
	return 1.96
}

// Summarize computes a Sample from raw durations.
func Summarize(runs []time.Duration) Sample {
	if len(runs) == 0 {
		return Sample{}
	}
	s := Sample{N: len(runs), Min: runs[0], Max: runs[0]}
	var sum float64
	for _, r := range runs {
		sum += float64(r)
		if r < s.Min {
			s.Min = r
		}
		if r > s.Max {
			s.Max = r
		}
	}
	mean := sum / float64(len(runs))
	s.Mean = time.Duration(mean)
	if len(runs) > 1 {
		var ss float64
		for _, r := range runs {
			d := float64(r) - mean
			ss += d * d
		}
		sd := math.Sqrt(ss / float64(len(runs)-1))
		s.StdDev = time.Duration(sd)
		s.CI95 = time.Duration(tCrit(len(runs)) * sd / math.Sqrt(float64(len(runs))))
	}
	return s
}

// Measure runs fn `repeats` times (after `warmup` unrecorded runs) and
// summarizes. fn reports its own elapsed time so harness overhead stays
// out of the numbers.
func Measure(warmup, repeats int, fn func() time.Duration) Sample {
	for i := 0; i < warmup; i++ {
		fn()
	}
	runs := make([]time.Duration, 0, repeats)
	for i := 0; i < repeats; i++ {
		runs = append(runs, fn())
	}
	return Summarize(runs)
}

// String renders "mean ±ci95".
func (s Sample) String() string {
	return fmt.Sprintf("%v ±%v", s.Mean.Round(time.Microsecond), s.CI95.Round(time.Microsecond))
}

// Point is one x-coordinate of a series.
type Point struct {
	X int // ranks / PEs / cores
	S Sample
}

// Series is one line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x int, sample Sample) {
	s.Points = append(s.Points, Point{X: x, S: sample})
}

// Figure is a text rendering of one paper figure: rows are x values,
// columns are series.
type Figure struct {
	Title  string
	XLabel string
	Series []*Series
}

// NewFigure creates a figure.
func NewFigure(title, xlabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel}
}

// NewSeries adds and returns a named series.
func (f *Figure) NewSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Render writes the figure as an aligned table.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", f.Title)
	xs := map[int]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	var order []int
	for x := range xs {
		order = append(order, x)
	}
	sort.Ints(order)

	fmt.Fprintf(w, "%-8s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, " %24s", s.Name)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 8+25*len(f.Series)))
	for _, x := range order {
		fmt.Fprintf(w, "%-8d", x)
		for _, s := range f.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = p.S.String()
					break
				}
			}
			fmt.Fprintf(w, " %24s", cell)
		}
		fmt.Fprintln(w)
	}
}

// Speedups annotates, for each x, how much faster (or slower) each series
// is relative to the named baseline series, returned as a rendered table.
func (f *Figure) Speedups(baseline string) string {
	var base *Series
	for _, s := range f.Series {
		if s.Name == baseline {
			base = s
		}
	}
	if base == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "speedup vs %s:\n", baseline)
	for _, s := range f.Series {
		if s == base {
			continue
		}
		fmt.Fprintf(&b, "  %-24s", s.Name)
		for _, p := range s.Points {
			for _, bp := range base.Points {
				if bp.X == p.X && p.S.Mean > 0 {
					fmt.Fprintf(&b, " %d:%.2fx", p.X, float64(bp.S.Mean)/float64(p.S.Mean))
				}
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
