// Scheduler hot-path microbenchmarks.
//
// These measure the constant factors the paper's runtime chapter optimizes —
// task spawn cost, steal-path throughput, and idle-worker wake-up latency —
// independent of any particular workload. cmd/hiper-bench emits them as
// machine-readable JSON (BENCH_scheduler.json) so every PR that touches
// internal/core or internal/deque has a perf trajectory to compare against.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
)

// SchedResult is one microbenchmark measurement.
type SchedResult struct {
	Name      string  `json:"name"`
	Workers   int     `json:"workers"`
	Ops       int     `json:"ops_per_run"`
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	CI95NsOp  float64 `json:"ci95_ns_per_op"`
	AllocsOp  float64 `json:"allocs_per_op"`
}

// SchedReport is the machine-readable scheduler benchmark report.
type SchedReport struct {
	GoMaxProcs int           `json:"gomaxprocs"`
	Repeats    int           `json:"repeats"`
	Results    []SchedResult `json:"benchmarks"`
}

// schedBench describes one microbenchmark: run executes ops operations on
// runtime r and reports only the time spent in the measured region.
type schedBench struct {
	name string
	ops  int
	run  func(r *core.Runtime, ops int) time.Duration
}

// allocsDuring returns heap allocations performed while fn runs. It is
// approximate under concurrency (other goroutines' allocations count too),
// which is fine for trajectory tracking.
func allocsDuring(fn func()) uint64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// spawnLatency measures the per-task cost of the steady-state
// spawn→run→retire cycle: repeated Finish{ 64 × Async(noop) } batches, the
// shape of a fine-grained taskified library call. Small batches keep the
// system in steady state (tasks retire between spawns) rather than
// measuring one giant burst allocation.
func spawnLatency(r *core.Runtime, ops int) time.Duration {
	const batch = 64
	var elapsed time.Duration
	r.Launch(func(c *core.Ctx) {
		t0 := time.Now()
		for done := 0; done < ops; done += batch {
			c.Finish(func(c *core.Ctx) {
				for i := 0; i < batch; i++ {
					c.Async(func(*core.Ctx) {})
				}
			})
		}
		elapsed = time.Since(t0)
	})
	return elapsed
}

// stealThroughput measures fine-grained load-balancing throughput: every
// task originates in the root worker's deque column, so all other workers
// obtain work exclusively through the steal path.
func stealThroughput(r *core.Runtime, ops int) time.Duration {
	var elapsed time.Duration
	r.Launch(func(c *core.Ctx) {
		t0 := time.Now()
		c.Finish(func(c *core.Ctx) {
			for i := 0; i < ops; i++ {
				c.Async(func(*core.Ctx) {
					// ~100ns of work so thieves contend on the deque, not
					// on a single cache line of the loop counter.
					x := 1
					for k := 0; k < 32; k++ {
						x = x*2654435761 + k
					}
					_ = x
				})
			}
		})
		elapsed = time.Since(t0)
	})
	return elapsed
}

// wakeRoundtrip measures idle-worker wake-up latency: the pool is quiescent
// (all workers parked) when an external goroutine injects one task; the
// measured region is inject → task runs → promise satisfied → waiter woken.
func wakeRoundtrip(r *core.Runtime, ops int) time.Duration {
	r.Start()
	place := r.Model().Place(0)
	// Let the pool park before the first measured round trip.
	time.Sleep(time.Millisecond)
	var elapsed time.Duration
	for i := 0; i < ops; i++ {
		p := core.NewPromise(r)
		t0 := time.Now()
		r.SpawnDetachedAt(place, func(c *core.Ctx) { c.Put(p, nil) })
		p.Future().Wait()
		elapsed += time.Since(t0)
	}
	return elapsed
}

// fanOutWake measures wake-up latency under fan-out: from a quiescent pool,
// one burst of workers×8 tasks is released and the measured region ends when
// every task has completed. This is the thundering-herd case: with a
// broadcast wake policy every parked worker wakes for every enqueue.
func fanOutWake(r *core.Runtime, ops int) time.Duration {
	r.Start()
	nw := r.NumWorkers()
	var elapsed time.Duration
	for i := 0; i < ops; i++ {
		time.Sleep(200 * time.Microsecond) // let the pool park again
		r.Launch(func(c *core.Ctx) {
			t0 := time.Now()
			c.ForasyncSync(core.Range{Lo: 0, Hi: nw * 8, Grain: 1}, func(*core.Ctx, int) {
				x := 1
				for k := 0; k < 64; k++ {
					x = x*2654435761 + k
				}
				_ = x
			})
			elapsed += time.Since(t0)
		})
	}
	return elapsed
}

// SchedulerSuite runs the scheduler microbenchmarks on a fresh runtime per
// benchmark and returns the report. quick shrinks op counts for smoke runs.
func SchedulerSuite(workers int, scale Scale) *SchedReport {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Benchmark a W-worker pool on W scheduling contexts: wake-up and steal
	// behavior is unobservable if every worker shares one OS thread.
	if prev := runtime.GOMAXPROCS(0); workers > prev {
		runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(prev)
	}
	repeats := 10
	mul := 1
	if scale == Quick {
		repeats = 5
	} else {
		mul = 4
	}
	benches := []schedBench{
		{"spawn-latency", 50000 * mul, spawnLatency},
		{"steal-throughput", 50000 * mul, stealThroughput},
		{"wake-roundtrip", 300 * mul, wakeRoundtrip},
		{"fanout-wake", 50 * mul, fanOutWake},
	}
	rep := &SchedReport{GoMaxProcs: runtime.GOMAXPROCS(0), Repeats: repeats}
	for _, b := range benches {
		rt := core.NewDefault(workers)
		var allocs uint64
		sample := Measure(2, repeats, func() time.Duration {
			var d time.Duration
			allocs = allocsDuring(func() { d = b.run(rt, b.ops) })
			return d / time.Duration(b.ops)
		})
		rt.Shutdown()
		ns := float64(sample.Mean)
		res := SchedResult{
			Name:     b.name,
			Workers:  workers,
			Ops:      b.ops,
			NsPerOp:  ns,
			CI95NsOp: float64(sample.CI95),
			AllocsOp: float64(allocs) / float64(b.ops), // last repeat's allocations
		}
		if ns > 0 {
			res.OpsPerSec = 1e9 / ns
		}
		rep.Results = append(rep.Results, res)
	}
	return rep
}

// WriteJSON writes the report to path.
func (r *SchedReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render prints the report as an aligned table.
func (r *SchedReport) Render() string {
	out := fmt.Sprintf("== Scheduler hot-path microbenchmarks (workers=%d, repeats=%d) ==\n",
		r.GoMaxProcs, r.Repeats)
	out += fmt.Sprintf("%-18s %14s %14s %14s %12s\n", "benchmark", "ns/op", "±ci95", "ops/sec", "allocs/op")
	for _, b := range r.Results {
		out += fmt.Sprintf("%-18s %14.1f %14.1f %14.0f %12.2f\n",
			b.Name, b.NsPerOp, b.CI95NsOp, b.OpsPerSec, b.AllocsOp)
	}
	return out
}
