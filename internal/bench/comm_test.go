package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fabric"
	"repro/internal/mpi"
	"repro/internal/shmem"
)

// TestCommBenchesSmoke runs each measured region once at toy sizes so
// `make check` catches bit-rot without paying for a measurement run.
func TestCommBenchesSmoke(t *testing.T) {
	if d := pingPong(fabric.NewInline(2), 16, 64); d <= 0 {
		t.Fatalf("pingPong elapsed %v", d)
	}
	if d := pingPong(fabric.NewSim(2, fabric.CostModel{}), 16, 64); d <= 0 {
		t.Fatalf("pingPong sim elapsed %v", d)
	}
	if d := transportFanIn(fabric.NewSim(5, fabric.CostModel{}), 4, 4, 64); d <= 0 {
		t.Fatalf("transportFanIn elapsed %v", d)
	}
	tr := fabric.NewSim(3, fabric.CostModel{})
	if d := mixedFanIn(mpi.NewWorldOver(tr), shmem.NewWorldOver(tr), 4); d <= 0 {
		t.Fatalf("mixedFanIn elapsed %v", d)
	}
}

// TestCommReportJSON pins the report wire format consumed by cross-PR
// tooling.
func TestCommReportJSON(t *testing.T) {
	rep := &CommReport{
		GoMaxProcs: 4, Repeats: 5,
		Results: []CommResult{{Name: "pingpong-inline", Ranks: 2, Ops: 16, NsPerOp: 120, CI95NsOp: 4}},
	}
	path := filepath.Join(t.TempDir(), "BENCH_comm.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back CommReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(back.Results) != 1 || back.Results[0].Name != "pingpong-inline" || back.Results[0].NsPerOp != 120 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	if out := rep.Render(); out == "" {
		t.Fatal("empty render")
	}
}
