// Scheduling-policy A/B benchmarks.
//
// PolicySuite runs four DAG-shaped workloads — a synthetic heterogeneous
// task graph (the classic list-scheduler evaluation subject, where
// placement matters) plus the paper's UTS, HPGMG, and GEO — under every
// shipped scheduling policy and reports per-policy run time plus the
// speedup over the default random-steal policy, so policy plugins are
// compared on the workloads they were designed for rather than on
// microbenchmarks. The report also carries two default-policy
// guard rows (fanout-wake latency and spawn allocations) measured through
// the policy seam, to pin the "RandomSteal is the built-in path" claim
// against the committed BENCH_scheduler.json numbers.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/policy"
	"repro/internal/workloads/dag"
	"repro/internal/workloads/geo"
	"repro/internal/workloads/hpgmg"
	"repro/internal/workloads/uts"
)

// PolicyRow is one (workload, policy) measurement.
type PolicyRow struct {
	Workload string  `json:"workload"`
	Policy   string  `json:"policy"`
	NsPerRun float64 `json:"ns_per_run"`
	CI95Ns   float64 `json:"ci95_ns_per_run"`
	// Speedup is mean(random-steal)/mean(this policy) on the same
	// workload: >1 means the policy beats the default.
	Speedup float64 `json:"speedup_vs_random"`
}

// PolicyReport is the machine-readable policy A/B report
// (BENCH_policy.json).
type PolicyReport struct {
	GoMaxProcs int         `json:"gomaxprocs"`
	Repeats    int         `json:"repeats"`
	Rows       []PolicyRow `json:"benchmarks"`
	// Default-policy seam guards, measured with WithPolicy(RandomSteal)
	// selected (the nil-PolicyRuntime fast path): comparable against the
	// same benchmarks in BENCH_scheduler.json, which run without the
	// option.
	FanoutWakeNsPerOp float64 `json:"default_fanout_wake_ns_per_op"`
	SpawnAllocsPerOp  float64 `json:"default_spawn_allocs_per_op"`
}

// policyWorkload is one A/B subject: run executes it once under pol.
type policyWorkload struct {
	name string
	run  func(pol core.SchedPolicy) (time.Duration, error)
}

// policyWorkloads builds the three DAG workloads at smoke or full scale.
// Shapes reuse the corresponding paper-figure configurations.
func policyWorkloads(s Scale) []policyWorkload {
	tree := uts.TreeConfig{B0: 4, GenMax: 11, Seed: 19}
	utsRanks := 4
	n, nz, cycles, hpgmgRanks := 16, 8, 2, 4
	gnx, gnz, gsteps, geoRanks := 64, 24, 3, 2
	layers, width, unit := 6, 8, 50*time.Microsecond
	if s == Full {
		tree = uts.DefaultTree
		utsRanks = 8
		n, nz, cycles, hpgmgRanks = 32, 16, 3, 8
		gnx, gnz, gsteps, geoRanks = 64, 32, 5, 4
		layers, width, unit = 10, 16, 100*time.Microsecond
	}
	return []policyWorkload{
		{"taskdag", func(pol core.SchedPolicy) (time.Duration, error) {
			res, err := dag.RunHiPER(dag.Config{
				Layers: layers, Width: width, Workers: 4, Unit: unit, Seed: 7,
				Policy: pol,
			})
			return res.Elapsed, err
		}},
		{"uts", func(pol core.SchedPolicy) (time.Duration, error) {
			res, err := uts.RunHiPER(uts.RunConfig{
				Tree: tree, Ranks: utsRanks, Threads: 4, Cost: Network(), Policy: pol,
			})
			return res.Elapsed, err
		}},
		{"hpgmg", func(pol core.SchedPolicy) (time.Duration, error) {
			res, err := hpgmg.RunHiPER(hpgmg.Config{
				N: n, NZ: nz, Ranks: hpgmgRanks, Workers: 4, Cycles: cycles,
				Cost: Network(), Policy: pol,
			})
			return res.Elapsed, err
		}},
		{"geo", func(pol core.SchedPolicy) (time.Duration, error) {
			res, err := geo.RunHiPER(geo.Config{
				NX: gnx, NY: gnx, NZ: gnz, Steps: gsteps, Ranks: geoRanks, Workers: 4,
				Cost: SlowNetwork(), GPU: SlowGPU(), Seed: 11,
				PollInterval: 2 * time.Microsecond, Policy: pol,
			})
			return res.Elapsed, err
		}},
	}
}

// defaultPolicyRuntime builds a runtime with RandomSteal selected
// explicitly, exercising the policy seam's default fast path.
func defaultPolicyRuntime(workers int) (*core.Runtime, error) {
	return core.New(platform.Default(workers), &core.Options{Policy: policy.RandomSteal})
}

// PolicySuite runs every shipped policy over every DAG workload plus the
// default-policy seam guards and returns the report.
func PolicySuite(scale Scale) (*PolicyReport, error) {
	wu, rep := reps(scale)
	report := &PolicyReport{GoMaxProcs: runtime.GOMAXPROCS(0), Repeats: rep}
	for _, w := range policyWorkloads(scale) {
		var runErr error
		var baseline float64
		for _, pol := range policy.All {
			sample := Measure(wu, rep, func() time.Duration {
				d, err := w.run(pol)
				if err != nil && runErr == nil {
					runErr = fmt.Errorf("policy %s on %s: %w", pol.Name(), w.name, err)
				}
				return d
			})
			if runErr != nil {
				return nil, runErr
			}
			row := PolicyRow{
				Workload: w.name,
				Policy:   pol.Name(),
				NsPerRun: float64(sample.Mean),
				CI95Ns:   float64(sample.CI95),
			}
			if pol == policy.RandomSteal {
				baseline = row.NsPerRun
			}
			if baseline > 0 && row.NsPerRun > 0 {
				row.Speedup = baseline / row.NsPerRun
			}
			report.Rows = append(report.Rows, row)
		}
	}
	// Seam guards: the same spawn-latency and fanout-wake shapes as
	// SchedulerSuite, with RandomSteal selected through the option.
	workers := runtime.GOMAXPROCS(0)
	ops := 50
	spawnOps := 50000
	if scale == Full {
		ops, spawnOps = 200, 200000
	}
	rt, err := defaultPolicyRuntime(workers)
	if err != nil {
		return nil, err
	}
	var allocs uint64
	allocs = allocsDuring(func() { spawnLatency(rt, spawnOps) })
	report.SpawnAllocsPerOp = float64(allocs) / float64(spawnOps)
	fan := Measure(1, 3, func() time.Duration {
		return fanOutWake(rt, ops) / time.Duration(ops)
	})
	rt.Shutdown()
	report.FanoutWakeNsPerOp = float64(fan.Mean)
	return report, nil
}

// PolicyGate is the bench-smoke assertion for the policy seam: rerun
// fanout-wake with WithPolicy(RandomSteal) selected and fail when it
// regresses more than gateFactor over the committed BENCH_scheduler.json
// number (measured before the seam existed), or when spawn allocations
// grow. Deliberately loose, like CommGate: it catches "the seam put an
// interface call on the default hot path", not scheduler noise.
func PolicyGate(schedPath string) error {
	data, err := os.ReadFile(schedPath)
	if err != nil {
		return fmt.Errorf("policygate: reading committed report: %w", err)
	}
	var committed SchedReport
	if err := json.Unmarshal(data, &committed); err != nil {
		return fmt.Errorf("policygate: parsing %s: %w", schedPath, err)
	}
	var fanout, spawn *SchedResult
	for i := range committed.Results {
		switch committed.Results[i].Name {
		case "fanout-wake":
			fanout = &committed.Results[i]
		case "spawn-latency":
			spawn = &committed.Results[i]
		}
	}
	if fanout == nil || spawn == nil {
		return fmt.Errorf("policygate: %s lacks fanout-wake/spawn-latency rows (regenerate with make bench-sched)", schedPath)
	}
	workers := fanout.Workers
	if prev := runtime.GOMAXPROCS(0); workers > prev {
		runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(prev)
	}
	rt, err := defaultPolicyRuntime(workers)
	if err != nil {
		return err
	}
	defer rt.Shutdown()
	const ops = 50
	got := Measure(1, 3, func() time.Duration {
		return fanOutWake(rt, ops) / time.Duration(ops)
	})
	if float64(got.Mean) > fanout.NsPerOp*gateFactor {
		return fmt.Errorf("policygate: fanout-wake under WithPolicy(RandomSteal) %.0f ns/op > %.1fx committed %.0f ns/op",
			float64(got.Mean), gateFactor, fanout.NsPerOp)
	}
	const spawnOps = 20000
	allocs := allocsDuring(func() { spawnLatency(rt, spawnOps) })
	perOp := float64(allocs) / float64(spawnOps)
	// Allocations are near-deterministic; allow generous concurrent-GC
	// noise but catch a per-spawn allocation sneaking into the seam.
	if perOp > spawn.AllocsOp+1 {
		return fmt.Errorf("policygate: spawn allocations under WithPolicy(RandomSteal) %.2f/op > committed %.2f/op + 1",
			perOp, spawn.AllocsOp)
	}
	return nil
}

// WriteJSON writes the report to path.
func (r *PolicyReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render prints the report as an aligned table.
func (r *PolicyReport) Render() string {
	out := fmt.Sprintf("== Scheduling-policy A/B (repeats=%d, gomaxprocs=%d) ==\n", r.Repeats, r.GoMaxProcs)
	out += fmt.Sprintf("%-10s %-14s %14s %14s %10s\n", "workload", "policy", "ms/run", "±ci95", "speedup")
	for _, row := range r.Rows {
		out += fmt.Sprintf("%-10s %-14s %14.2f %14.2f %9.2fx\n",
			row.Workload, row.Policy, row.NsPerRun/1e6, row.CI95Ns/1e6, row.Speedup)
	}
	out += fmt.Sprintf("default-policy seam guards: fanout-wake %.0f ns/op, spawn %.2f allocs/op\n",
		r.FanoutWakeNsPerOp, r.SpawnAllocsPerOp)
	return out
}
