// Elasticity benchmark: what rank virtualization costs, and what the
// scripted membership changes cost on top.
//
// Each workload (ISx bucket sort, Graph500 BFS) runs twice over the
// same virtualized chaos fabric — once static (no membership changes)
// and once under the full scripted schedule (kill → checkpoint-restore
// onto a fresh endpoint, grow, shrink, each at a collective boundary).
// Both runs verify every phase byte-identical against a fabric-free
// reference, so a row certifies correctness under elasticity; the
// columns are the price: per-phase wall time and per-event (migration /
// resize) latency. cmd/hiper-bench -elastic emits BENCH_elastic.json.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/fabric"
	"repro/internal/job"
	"repro/internal/workloads/graph500"
	"repro/internal/workloads/isx"
)

// ElasticResult is one workload's static-vs-elastic comparison.
type ElasticResult struct {
	Workload        string  `json:"workload"`
	Phases          int     `json:"phases"`
	Ranks           int     `json:"initial_ranks"`
	StaticNsPhase   float64 `json:"static_ns_per_phase"`
	ElasticNsPhase  float64 `json:"elastic_ns_per_phase"`
	MigrationNs     float64 `json:"migration_ns"` // kill: chaos-kill + remap + state wipe
	GrowNs          float64 `json:"grow_ns"`
	ShrinkNs        float64 `json:"shrink_ns"` // includes checkpoint redistribution
	RestorePhaseNs  float64 `json:"restore_phase_ns"`
	BaselinePhaseNs float64 `json:"baseline_phase_ns"` // elastic run's unperturbed first phase
}

// ElasticReport is the machine-readable elasticity report.
type ElasticReport struct {
	Repeats int             `json:"repeats"`
	Results []ElasticResult `json:"benchmarks"`
}

// elasticSchedule is the canonical scripted membership schedule the
// ISSUE's end-to-end proofs run: one migration, one grow, one shrink,
// each at a collective boundary.
func elasticSchedule() []job.ElasticEvent {
	return []job.ElasticEvent{
		{AfterPhase: 0, Kind: "kill", Rank: 1},
		{AfterPhase: 1, Kind: "grow", Delta: 2},
		{AfterPhase: 2, Kind: "shrink", Delta: 1},
	}
}

func elasticRel() fabric.RelConfig {
	return fabric.RelConfig{
		RetryBase:    50 * time.Microsecond,
		RetryCap:     200 * time.Microsecond,
		MaxAttempts:  12,
		DeathSilence: 100 * time.Millisecond,
	}
}

func elasticPlan() fabric.FaultPlan {
	return fabric.FaultPlan{Seed: 42, Drop: 0.05, Dup: 0.05}
}

// meanPhaseNs averages the phase wall times of one run.
func meanPhaseNs(phases []time.Duration) float64 {
	if len(phases) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range phases {
		sum += d
	}
	return float64(sum.Nanoseconds()) / float64(len(phases))
}

func eventNs(events []isxEventCost, kind string) float64 {
	for _, e := range events {
		if e.kind == kind {
			return float64(e.latency.Nanoseconds())
		}
	}
	return 0
}

// isxEventCost unifies the two workloads' event-cost types.
type isxEventCost struct {
	kind    string
	latency time.Duration
}

// elasticISx runs the ISx variant once and adapts its result.
func elasticISx(cfg isx.ElasticConfig) ([]time.Duration, []isxEventCost, error) {
	res, err := isx.RunElastic(cfg)
	if err != nil {
		return nil, nil, err
	}
	evs := make([]isxEventCost, len(res.Events))
	for i, e := range res.Events {
		evs[i] = isxEventCost{kind: e.Kind, latency: e.Latency}
	}
	return res.PhaseTimes, evs, nil
}

// elasticBFS runs the Graph500 variant once and adapts its result.
func elasticBFS(cfg graph500.ElasticConfig) ([]time.Duration, []isxEventCost, error) {
	res, err := graph500.RunElastic(cfg)
	if err != nil {
		return nil, nil, err
	}
	evs := make([]isxEventCost, len(res.Events))
	for i, e := range res.Events {
		evs[i] = isxEventCost{kind: e.Kind, latency: e.Latency}
	}
	return res.PhaseTimes, evs, nil
}

// isxElasticConfig builds the benchmark's ISx configuration.
func isxElasticConfig(scale Scale, events []job.ElasticEvent) isx.ElasticConfig {
	streams, keys := 8, 256
	if scale == Full {
		streams, keys = 16, 2048
	}
	return isx.ElasticConfig{
		Streams: streams, KeysPerStream: keys,
		Ranks: 3, Capacity: 8, Phases: 4, Seed: 1234,
		Plan: elasticPlan(), Rel: elasticRel(),
		Events: events, Workers: 1,
	}
}

// bfsElasticConfig builds the benchmark's Graph500 configuration.
func bfsElasticConfig(scale Scale, events []job.ElasticEvent) graph500.ElasticConfig {
	g := graph500.GraphConfig{Scale: 8, EdgeFactor: 8, Seed: 5}
	if scale == Full {
		g = graph500.GraphConfig{Scale: 10, EdgeFactor: 16, Seed: 5}
	}
	return graph500.ElasticConfig{
		Graph: g, Ranks: 3, Capacity: 8, Phases: 4,
		Plan: elasticPlan(), Rel: elasticRel(),
		Events: events, Workers: 1,
	}
}

// elasticCompare runs one workload static then scripted and fills a row.
func elasticCompare(name string, repeats, phases, ranks int,
	static, elastic func() ([]time.Duration, []isxEventCost, error)) (ElasticResult, error) {
	row := ElasticResult{Workload: name, Phases: phases, Ranks: ranks}
	var staticSum float64
	for i := 0; i < repeats; i++ {
		pt, _, err := static()
		if err != nil {
			return row, fmt.Errorf("%s static: %w", name, err)
		}
		staticSum += meanPhaseNs(pt)
	}
	row.StaticNsPhase = staticSum / float64(repeats)
	var elasticSum float64
	for i := 0; i < repeats; i++ {
		pt, evs, err := elastic()
		if err != nil {
			return row, fmt.Errorf("%s elastic: %w", name, err)
		}
		elasticSum += meanPhaseNs(pt)
		// Event latencies and the restore-phase cost from the last run.
		row.MigrationNs = eventNs(evs, "kill")
		row.GrowNs = eventNs(evs, "grow")
		row.ShrinkNs = eventNs(evs, "shrink")
		if len(pt) > 1 {
			row.BaselinePhaseNs = float64(pt[0].Nanoseconds())
			row.RestorePhaseNs = float64(pt[1].Nanoseconds()) // phase after the kill
		}
	}
	row.ElasticNsPhase = elasticSum / float64(repeats)
	return row, nil
}

// ElasticSuite runs both workloads static and scripted and returns the
// report. Correctness failures abort the suite: every run internally
// verifies byte-identical results, so a surviving row is a certificate.
func ElasticSuite(scale Scale) (*ElasticReport, error) {
	repeats := 3
	if scale == Full {
		repeats = 5
	}
	rep := &ElasticReport{Repeats: repeats}

	isxRow, err := elasticCompare("isx", repeats, 4, 3,
		func() ([]time.Duration, []isxEventCost, error) {
			return elasticISx(isxElasticConfig(scale, nil))
		},
		func() ([]time.Duration, []isxEventCost, error) {
			return elasticISx(isxElasticConfig(scale, elasticSchedule()))
		})
	if err != nil {
		return nil, err
	}
	rep.Results = append(rep.Results, isxRow)

	bfsRow, err := elasticCompare("graph500", repeats, 4, 3,
		func() ([]time.Duration, []isxEventCost, error) {
			return elasticBFS(bfsElasticConfig(scale, nil))
		},
		func() ([]time.Duration, []isxEventCost, error) {
			return elasticBFS(bfsElasticConfig(scale, elasticSchedule()))
		})
	if err != nil {
		return nil, err
	}
	rep.Results = append(rep.Results, bfsRow)
	return rep, nil
}

// ElasticGate is the bench-smoke gate: rerun the quick ISx comparison
// and fail if the elastic per-phase time regresses more than gateFactor×
// against the committed report — catching an elasticity-machinery
// collapse (epoch-table contention, remap leak, checkpoint stall), not
// scheduler noise. Any correctness failure fails the gate outright.
func ElasticGate(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("elasticgate: reading committed report: %w", err)
	}
	var committed ElasticReport
	if err := json.Unmarshal(data, &committed); err != nil {
		return fmt.Errorf("elasticgate: parsing %s: %w", path, err)
	}
	var want float64
	for _, r := range committed.Results {
		if r.Workload == "isx" {
			want = r.ElasticNsPhase
		}
	}
	if want == 0 {
		return fmt.Errorf("elasticgate: isx row missing from %s (regenerate with make bench-elastic)", path)
	}
	var sum float64
	const repeats = 3
	for i := 0; i < repeats; i++ {
		pt, _, err := elasticISx(isxElasticConfig(Quick, elasticSchedule()))
		if err != nil {
			return fmt.Errorf("elasticgate: %w", err)
		}
		sum += meanPhaseNs(pt)
	}
	got := sum / repeats
	if got > want*gateFactor {
		return fmt.Errorf("elasticgate: isx elastic %.0f ns/phase vs committed %.0f (> %.0fx)",
			got, want, gateFactor)
	}
	return nil
}

// WriteJSON writes the report to path.
func (r *ElasticReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render prints the report as an aligned table.
func (r *ElasticReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== elasticity: kill/grow/shrink over Virtual(Reliable(Chaos(Sim))), %d repeats ==\n", r.Repeats)
	fmt.Fprintf(&b, "%-10s %-7s %14s %15s %12s %10s %10s %14s\n",
		"workload", "phases", "static ns/ph", "elastic ns/ph", "migrate ns", "grow ns", "shrink ns", "restore ph ns")
	for _, res := range r.Results {
		fmt.Fprintf(&b, "%-10s %-7d %14.0f %15.0f %12.0f %10.0f %10.0f %14.0f\n",
			res.Workload, res.Phases, res.StaticNsPhase, res.ElasticNsPhase,
			res.MigrationNs, res.GrowNs, res.ShrinkNs, res.RestorePhaseNs)
	}
	return b.String()
}
