// Package stats implements the tooling hooks the paper describes: because
// a unified scheduler is aware of all work executing on a system, HiPER can
// gather statistics on time spent in calls to different modules and attach
// high-level, module-specific semantic information to performance
// bottlenecks.
//
// Modules call Track around each user-facing API; applications (or the
// runtime itself) call Snapshot or Report to inspect where time went.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// key identifies one instrumented API of one module.
type key struct {
	module string
	api    string
}

// cell accumulates calls and time for one key.
type cell struct {
	calls atomic.Int64
	nanos atomic.Int64
}

var (
	mu    sync.RWMutex
	cells = make(map[key]*cell)

	gaugeMu sync.Mutex
	gauges  = make(map[key]float64)
)

// Enabled globally toggles collection. Disabled tracking costs one atomic
// load per call.
var Enabled atomic.Bool

func init() { Enabled.Store(true) }

func lookup(module, api string) *cell {
	k := key{module, api}
	mu.RLock()
	c, ok := cells[k]
	mu.RUnlock()
	if ok {
		return c
	}
	mu.Lock()
	defer mu.Unlock()
	if c, ok = cells[k]; ok {
		return c
	}
	c = &cell{}
	cells[k] = c
	return c
}

// Track records one call to module/api; invoke the returned func when the
// call completes (typically via defer).
func Track(module, api string) func() {
	if !Enabled.Load() {
		return func() {}
	}
	c := lookup(module, api)
	start := time.Now()
	return func() {
		c.calls.Add(1)
		c.nanos.Add(int64(time.Since(start)))
	}
}

// Add records an externally measured duration, for modules that meter work
// without a surrounding call (e.g. poller batches).
func Add(module, api string, d time.Duration, calls int64) {
	if !Enabled.Load() {
		return
	}
	c := lookup(module, api)
	c.calls.Add(calls)
	c.nanos.Add(int64(d))
}

// SetGauge records a named scalar value for one module — derived metrics
// (rates, latencies, throughput) that are not call-duration shaped. The
// trace layer publishes scheduler health gauges here so one Report shows
// module API time next to steal success rate and park latency.
func SetGauge(module, name string, value float64) {
	if !Enabled.Load() {
		return
	}
	gaugeMu.Lock()
	gauges[key{module, name}] = value
	gaugeMu.Unlock()
}

// GaugeEntry is one named scalar from a statistics snapshot.
type GaugeEntry struct {
	Module string
	Name   string
	Value  float64
}

// Gauges returns all gauges sorted by module then name (deterministic).
func Gauges() []GaugeEntry {
	gaugeMu.Lock()
	defer gaugeMu.Unlock()
	out := make([]GaugeEntry, 0, len(gauges))
	for k, v := range gauges {
		out = append(out, GaugeEntry{Module: k.module, Name: k.api, Value: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Module != out[j].Module {
			return out[i].Module < out[j].Module
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Entry is one row of a statistics snapshot.
type Entry struct {
	Module string
	API    string
	Calls  int64
	Time   time.Duration
}

// Snapshot returns all entries, sorted by total time descending.
func Snapshot() []Entry {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Entry, 0, len(cells))
	for k, c := range cells {
		out = append(out, Entry{
			Module: k.module,
			API:    k.api,
			Calls:  c.calls.Load(),
			Time:   time.Duration(c.nanos.Load()),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time > out[j].Time
		}
		if out[i].Module != out[j].Module {
			return out[i].Module < out[j].Module
		}
		return out[i].API < out[j].API
	})
	return out
}

// ModuleTotals aggregates time per module.
func ModuleTotals() map[string]time.Duration {
	totals := make(map[string]time.Duration)
	for _, e := range Snapshot() {
		totals[e.Module] += e.Time
	}
	return totals
}

// Report formats a snapshot as an aligned table. Output is deterministic
// for a given set of cells and gauges: entries sort by time descending
// with a stable module/api tie-break, gauges by module/name.
func Report() string {
	entries := Snapshot()
	gs := Gauges()
	if len(entries) == 0 && len(gs) == 0 {
		return "stats: no module activity recorded\n"
	}
	var b strings.Builder
	if len(entries) > 0 {
		fmt.Fprintf(&b, "%-12s %-28s %12s %14s\n", "MODULE", "API", "CALLS", "TIME")
		for _, e := range entries {
			fmt.Fprintf(&b, "%-12s %-28s %12d %14s\n", e.Module, e.API, e.Calls, e.Time)
		}
	}
	if len(gs) > 0 {
		fmt.Fprintf(&b, "%-12s %-28s %27s\n", "MODULE", "GAUGE", "VALUE")
		for _, g := range gs {
			fmt.Fprintf(&b, "%-12s %-28s %27.3f\n", g.Module, g.Name, g.Value)
		}
	}
	return b.String()
}

// Reset clears all collected statistics and gauges.
func Reset() {
	mu.Lock()
	cells = make(map[key]*cell)
	mu.Unlock()
	gaugeMu.Lock()
	gauges = make(map[key]float64)
	gaugeMu.Unlock()
}
