package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTrackAccumulates(t *testing.T) {
	Reset()
	for i := 0; i < 5; i++ {
		end := Track("mpi", "MPI_Send")
		end()
	}
	entries := Snapshot()
	if len(entries) != 1 {
		t.Fatalf("entries = %d", len(entries))
	}
	e := entries[0]
	if e.Module != "mpi" || e.API != "MPI_Send" || e.Calls != 5 {
		t.Fatalf("entry = %+v", e)
	}
}

func TestAddAndTotals(t *testing.T) {
	Reset()
	Add("cuda", "kernel", 3*time.Millisecond, 2)
	Add("cuda", "memcpy", time.Millisecond, 1)
	Add("mpi", "send", 2*time.Millisecond, 1)
	totals := ModuleTotals()
	if totals["cuda"] != 4*time.Millisecond || totals["mpi"] != 2*time.Millisecond {
		t.Fatalf("totals = %v", totals)
	}
}

func TestSnapshotSortedByTime(t *testing.T) {
	Reset()
	Add("a", "fast", time.Millisecond, 1)
	Add("b", "slow", 10*time.Millisecond, 1)
	s := Snapshot()
	if s[0].API != "slow" {
		t.Fatalf("not sorted by time: %+v", s)
	}
}

func TestReportFormats(t *testing.T) {
	Reset()
	if !strings.Contains(Report(), "no module activity") {
		t.Fatal("empty report wrong")
	}
	Add("shmem", "put", time.Millisecond, 3)
	rep := Report()
	if !strings.Contains(rep, "shmem") || !strings.Contains(rep, "put") {
		t.Fatalf("report missing entries:\n%s", rep)
	}
}

func TestDisabledTrackingIsNoop(t *testing.T) {
	Reset()
	Enabled.Store(false)
	defer Enabled.Store(true)
	Track("x", "y")()
	Add("x", "z", time.Second, 1)
	if len(Snapshot()) != 0 {
		t.Fatal("disabled tracking recorded entries")
	}
}

func TestConcurrentTracking(t *testing.T) {
	Reset()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				Track("m", "api")()
			}
		}()
	}
	wg.Wait()
	if got := Snapshot()[0].Calls; got != 8000 {
		t.Fatalf("calls = %d", got)
	}
}

// TestReportDeterministic pins Report's ordering guarantees: repeated
// renders of one state are byte-identical, time-tied entries fall back to
// module/api order, and the gauge section sorts by module then name
// regardless of insertion order.
func TestReportDeterministic(t *testing.T) {
	Reset()
	defer Reset()
	// Three entries tied at the same total time, inserted out of order.
	Add("zeta", "put", time.Millisecond, 4)
	Add("alpha", "get", time.Millisecond, 2)
	Add("alpha", "barrier", time.Millisecond, 1)
	// Gauges inserted out of order, including one mid-module tie.
	SetGauge("trace", "steal_success_rate", 0.5)
	SetGauge("omega", "depth", 3)
	SetGauge("trace", "mean_park_latency_us", 120)

	first := Report()
	for i := 0; i < 10; i++ {
		if got := Report(); got != first {
			t.Fatalf("Report diverged between renders:\n-- first --\n%s\n-- now --\n%s", first, got)
		}
	}
	wantOrder := []string{
		"alpha        barrier",
		"alpha        get",
		"zeta         put",
		"omega        depth",
		"trace        mean_park_latency_us",
		"trace        steal_success_rate",
	}
	pos := -1
	for _, frag := range wantOrder {
		i := strings.Index(first, frag)
		if i < 0 {
			t.Fatalf("report missing %q:\n%s", frag, first)
		}
		if i < pos {
			t.Fatalf("report orders %q before its predecessors:\n%s", frag, first)
		}
		pos = i
	}
}

// TestGaugesDisabledAndReset: gauges honour the collection gate and Reset.
func TestGaugesDisabledAndReset(t *testing.T) {
	Reset()
	defer Reset()
	Enabled.Store(false)
	SetGauge("m", "g", 1)
	Enabled.Store(true)
	if len(Gauges()) != 0 {
		t.Fatal("disabled SetGauge still recorded")
	}
	SetGauge("m", "g", 2)
	if gs := Gauges(); len(gs) != 1 || gs[0].Value != 2 {
		t.Fatalf("gauges = %+v, want one entry of 2", gs)
	}
	Reset()
	if len(Gauges()) != 0 {
		t.Fatal("Reset left gauges behind")
	}
}
