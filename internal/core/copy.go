package core

import (
	"fmt"

	"repro/internal/platform"
)

// Buf names a memory region at a place in the platform model. Data's
// concrete type is interpreted by the copy handler responsible for the
// (source kind, destination kind) pair: host-to-host copies expect matching
// Go slices, while e.g. the CUDA module's handler accepts its device buffer
// type on the GPU side.
type Buf struct {
	Place *platform.Place
	Data  any
	Off   int // element offset into Data
}

// At is a convenience constructor for Buf.
func At(p *platform.Place, data any) Buf { return Buf{Place: p, Data: data} }

// AtOff is At with an element offset.
func AtOff(p *platform.Place, data any, off int) Buf { return Buf{Place: p, Data: data, Off: off} }

// CopyHandler performs an asynchronous transfer of n elements from src to
// dst, returning a future satisfied on completion. Handlers are registered
// by modules for the place kinds they own (the CUDA module registers
// itself for transfers touching GPU memory places).
type CopyHandler func(c *Ctx, dst, src Buf, n int) *Future

// RegisterCopyHandler installs h for transfers from srcKind places to
// dstKind places. Later registrations override earlier ones, letting a
// module refine the defaults.
func (r *Runtime) RegisterCopyHandler(srcKind, dstKind platform.Kind, h CopyHandler) {
	r.copyHandlers[[2]platform.Kind{srcKind, dstKind}] = h
}

// AsyncCopy asynchronously transfers n elements from a memory location in
// one place to a memory location in another place, returning a future
// satisfied when the transfer completes. The transfer is dispatched to the
// handler registered for the (src kind, dst kind) pair; host-to-host pairs
// fall back to a built-in handler that copies matching slices.
func (c *Ctx) AsyncCopy(dst, src Buf, n int) *Future {
	if dst.Place == nil || src.Place == nil {
		panic("core: AsyncCopy requires both places")
	}
	if h, ok := c.rt.copyHandlers[[2]platform.Kind{src.Place.Kind, dst.Place.Kind}]; ok {
		return h(c, dst, src, n)
	}
	// Built-in host path: types and bounds are validated eagerly at the
	// call site, where the mistake is. A bad request fails the returned
	// future immediately instead of panicking later on the copy task's
	// worker, where the stack no longer names the caller.
	if err := checkSlices(dst, src, n); err != nil {
		return FailedFuture(c.rt, err)
	}
	return hostCopy(c, dst, src, n)
}

// AsyncCopyAwait is AsyncCopy predicated on the given futures: the transfer
// begins only once all of them are satisfied. A failure of the copy (or
// of any predicate future) fails the returned future.
func (c *Ctx) AsyncCopyAwait(dst, src Buf, n int, futures ...*Future) *Future {
	prom := NewPromise(c.rt)
	c.rt.spawnAwait(c.w, c.place, c.fin, func(cc *Ctx) {
		defer settlePanic(prom, cc)
		if err := cc.GetErr(cc.AsyncCopy(dst, src, n)); err != nil {
			cc.PutErr(prom, err)
			return
		}
		prom.put(cc, nil)
	}, futures)
	return prom.Future()
}

// hostCopy is the built-in handler for host-side transfers: it runs the
// copy as a task at the destination place. A failure detected during the
// copy (possible only for handler-bypassing races; AsyncCopy validated
// eagerly) fails the future and the enclosing finish scope rather than
// panicking the worker.
func hostCopy(c *Ctx, dst, src Buf, n int) *Future {
	prom := NewPromise(c.rt)
	c.rt.spawn(c.w, dst.Place, c.fin, func(cc *Ctx) {
		if err := copySlices(dst, src, n); err != nil {
			cc.PutErr(prom, err)
			cc.Fail(err)
			return
		}
		prom.put(cc, nil)
	})
	return prom.Future()
}

// checkSlices validates a host-side copy request — matching slice
// types and in-range [Off, Off+n) windows on both sides — without
// performing it.
func checkSlices(dst, src Buf, n int) error {
	dl, sl, err := sliceLens(dst, src)
	if err != nil {
		return err
	}
	if n < 0 || dst.Off < 0 || src.Off < 0 || dst.Off+n > dl || src.Off+n > sl {
		return fmt.Errorf("core: AsyncCopy out of range: n=%d, dst[%d:%d] of len %d, src[%d:%d] of len %d",
			n, dst.Off, dst.Off+n, dl, src.Off, src.Off+n, sl)
	}
	return nil
}

// sliceLens type-checks the pair and returns both slice lengths.
func sliceLens(dst, src Buf) (int, int, error) {
	switch d := dst.Data.(type) {
	case []byte:
		if s, ok := src.Data.([]byte); ok {
			return len(d), len(s), nil
		}
	case []float64:
		if s, ok := src.Data.([]float64); ok {
			return len(d), len(s), nil
		}
	case []float32:
		if s, ok := src.Data.([]float32); ok {
			return len(d), len(s), nil
		}
	case []int64:
		if s, ok := src.Data.([]int64); ok {
			return len(d), len(s), nil
		}
	case []int:
		if s, ok := src.Data.([]int); ok {
			return len(d), len(s), nil
		}
	default:
		return 0, 0, fmt.Errorf("core: no copy handler for %T -> %T between %v and %v",
			src.Data, dst.Data, src.Place, dst.Place)
	}
	return 0, 0, typeMismatch(dst, src)
}

// copySlices copies n elements between like-typed slices, re-validating
// so a direct caller cannot turn a bad request into a bounds panic.
func copySlices(dst, src Buf, n int) error {
	if err := checkSlices(dst, src, n); err != nil {
		return err
	}
	switch d := dst.Data.(type) {
	case []byte:
		s, ok := src.Data.([]byte)
		if !ok {
			return typeMismatch(dst, src)
		}
		copy(d[dst.Off:dst.Off+n], s[src.Off:src.Off+n])
	case []float64:
		s, ok := src.Data.([]float64)
		if !ok {
			return typeMismatch(dst, src)
		}
		copy(d[dst.Off:dst.Off+n], s[src.Off:src.Off+n])
	case []float32:
		s, ok := src.Data.([]float32)
		if !ok {
			return typeMismatch(dst, src)
		}
		copy(d[dst.Off:dst.Off+n], s[src.Off:src.Off+n])
	case []int64:
		s, ok := src.Data.([]int64)
		if !ok {
			return typeMismatch(dst, src)
		}
		copy(d[dst.Off:dst.Off+n], s[src.Off:src.Off+n])
	case []int:
		s, ok := src.Data.([]int)
		if !ok {
			return typeMismatch(dst, src)
		}
		copy(d[dst.Off:dst.Off+n], s[src.Off:src.Off+n])
	default:
		return fmt.Errorf("core: no copy handler for %T -> %T between %v and %v",
			src.Data, dst.Data, src.Place, dst.Place)
	}
	return nil
}

func typeMismatch(dst, src Buf) error {
	return fmt.Errorf("core: AsyncCopy type mismatch: %T -> %T", src.Data, dst.Data)
}
