package core

import (
	"fmt"

	"repro/internal/platform"
)

// Buf names a memory region at a place in the platform model. Data's
// concrete type is interpreted by the copy handler responsible for the
// (source kind, destination kind) pair: host-to-host copies expect matching
// Go slices, while e.g. the CUDA module's handler accepts its device buffer
// type on the GPU side.
type Buf struct {
	Place *platform.Place
	Data  any
	Off   int // element offset into Data
}

// At is a convenience constructor for Buf.
func At(p *platform.Place, data any) Buf { return Buf{Place: p, Data: data} }

// AtOff is At with an element offset.
func AtOff(p *platform.Place, data any, off int) Buf { return Buf{Place: p, Data: data, Off: off} }

// CopyHandler performs an asynchronous transfer of n elements from src to
// dst, returning a future satisfied on completion. Handlers are registered
// by modules for the place kinds they own (the CUDA module registers
// itself for transfers touching GPU memory places).
type CopyHandler func(c *Ctx, dst, src Buf, n int) *Future

// RegisterCopyHandler installs h for transfers from srcKind places to
// dstKind places. Later registrations override earlier ones, letting a
// module refine the defaults.
func (r *Runtime) RegisterCopyHandler(srcKind, dstKind platform.Kind, h CopyHandler) {
	r.copyHandlers[[2]platform.Kind{srcKind, dstKind}] = h
}

// AsyncCopy asynchronously transfers n elements from a memory location in
// one place to a memory location in another place, returning a future
// satisfied when the transfer completes. The transfer is dispatched to the
// handler registered for the (src kind, dst kind) pair; host-to-host pairs
// fall back to a built-in handler that copies matching slices.
func (c *Ctx) AsyncCopy(dst, src Buf, n int) *Future {
	if dst.Place == nil || src.Place == nil {
		panic("core: AsyncCopy requires both places")
	}
	if h, ok := c.rt.copyHandlers[[2]platform.Kind{src.Place.Kind, dst.Place.Kind}]; ok {
		return h(c, dst, src, n)
	}
	return hostCopy(c, dst, src, n)
}

// AsyncCopyAwait is AsyncCopy predicated on the given futures: the transfer
// begins only once all of them are satisfied.
func (c *Ctx) AsyncCopyAwait(dst, src Buf, n int, futures ...*Future) *Future {
	return c.AsyncFutureAwait(func(cc *Ctx) any {
		cc.Wait(cc.AsyncCopy(dst, src, n))
		return nil
	}, futures...)
}

// hostCopy is the built-in handler for host-side transfers: it runs the
// copy as a task at the destination place.
func hostCopy(c *Ctx, dst, src Buf, n int) *Future {
	return c.AsyncFutureAt(dst.Place, func(*Ctx) any {
		if err := copySlices(dst, src, n); err != nil {
			panic(err)
		}
		return nil
	})
}

// copySlices copies n elements between like-typed slices.
func copySlices(dst, src Buf, n int) error {
	switch d := dst.Data.(type) {
	case []byte:
		s, ok := src.Data.([]byte)
		if !ok {
			return typeMismatch(dst, src)
		}
		copy(d[dst.Off:dst.Off+n], s[src.Off:src.Off+n])
	case []float64:
		s, ok := src.Data.([]float64)
		if !ok {
			return typeMismatch(dst, src)
		}
		copy(d[dst.Off:dst.Off+n], s[src.Off:src.Off+n])
	case []float32:
		s, ok := src.Data.([]float32)
		if !ok {
			return typeMismatch(dst, src)
		}
		copy(d[dst.Off:dst.Off+n], s[src.Off:src.Off+n])
	case []int64:
		s, ok := src.Data.([]int64)
		if !ok {
			return typeMismatch(dst, src)
		}
		copy(d[dst.Off:dst.Off+n], s[src.Off:src.Off+n])
	case []int:
		s, ok := src.Data.([]int)
		if !ok {
			return typeMismatch(dst, src)
		}
		copy(d[dst.Off:dst.Off+n], s[src.Off:src.Off+n])
	default:
		return fmt.Errorf("core: no copy handler for %T -> %T between %v and %v",
			src.Data, dst.Data, src.Place, dst.Place)
	}
	return nil
}

func typeMismatch(dst, src Buf) error {
	return fmt.Errorf("core: AsyncCopy type mismatch: %T -> %T", src.Data, dst.Data)
}
