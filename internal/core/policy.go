package core

import (
	"repro/internal/platform"
	"repro/internal/trace"
)

// This file is the scheduling-policy seam: the three decisions the worker
// loop makes — pop order over the pop path, steal-victim selection with
// batch sizing, and placement resolution when a spawn names a place group
// instead of a concrete place — lifted behind interfaces so policies are
// pluggable modules, per the paper's composability thesis.
//
// The default policy (random-steal) is NOT expressed through these
// interfaces. A SchedPolicy whose NewRuntime returns nil selects the
// runtime's built-in implementation in findWork: in-path-order pops, a
// pseudo-random victim start with full batches. That keeps the default hot
// path exactly as fast as before the seam existed — the only added cost is
// one nil check per findWork scan (the same idiom the tracer and watchdog
// hooks use). Non-default policies pay interface dispatch per scan, which
// their smarter decisions must buy back; see DESIGN.md "Policy seam".

// SchedPolicy is a pluggable scheduling policy. Implementations are
// stateless descriptors (safe to share across runtimes); per-runtime state
// is created by NewRuntime.
type SchedPolicy interface {
	// Name identifies the policy in stats gauges, trace summaries, and
	// benchmark reports.
	Name() string
	// NewRuntime creates the policy's per-runtime state. Returning nil
	// selects the runtime's built-in random-steal fast path (this is how
	// the default policy guarantees zero hot-path regression).
	NewRuntime(env PolicyEnv) PolicyRuntime
}

// PolicyEnv is what a policy may consult when building per-runtime state.
type PolicyEnv struct {
	// Model is the platform graph the runtime schedules over. Policies
	// derive compute/link costs from it (Place.ComputeSpeed, Model.Hops).
	Model *platform.Model
	// NWorkers is the configured worker count; identities beyond it are
	// substitution slots running some configured worker's paths (identity
	// id runs path group id % NWorkers).
	NWorkers int
	// MaxIDs is the total worker-identity space (NWorkers + substitution
	// slots); victim selection ranges over it.
	MaxIDs int
	// Pending reports the live count of eligible tasks queued at a place —
	// the runtime's own per-place counter, one atomic load. Policies
	// combine it with accumulated cost hints to estimate outstanding work.
	Pending func(pid int) int64
}

// PolicyRuntime is a policy's per-runtime state. Its methods are called
// concurrently from every worker and spawn site and must be lock-free or
// nearly so.
type PolicyRuntime interface {
	// Worker creates the per-worker-identity decision state for a worker
	// running the given path group. Called for each configured worker at
	// runtime construction and again each time a substitution identity is
	// activated (substitutes inherit the blocked worker's paths).
	Worker(id, group int, pop, steal []*platform.Place) PolicyWorker
	// Resolve picks the concrete place for a spawn that named a place
	// group (the AtGroup spawn option). from is the spawning task's place;
	// cost is the spawn's cost hint (0 when absent). Returning nil or a
	// place outside the group falls back to the default rule (prefer from,
	// else the group's first member).
	Resolve(from *platform.Place, group []*platform.Place, cost float64) *platform.Place
	// CostHint records an application-supplied execution-cost estimate for
	// a task spawned at place pid (the Cost spawn option). Units are
	// abstract but must be consistent within an application; HEFT reads
	// them as the task's upward rank when the caller knows the DAG.
	// Zero-cost spawns are not reported. Hints describe work a worker will
	// pop and execute — device-side operations go through InFlight instead.
	CostHint(pid int, cost float64)
	// InFlight tracks work executing *behind* a place rather than queued at
	// it: modules report a positive delta when they issue an operation the
	// place's hardware runs asynchronously (a CUDA kernel on a stream, an
	// MPI transfer parked with a poller) and the matching negative delta
	// when it retires. Policies fold the running sum into placement
	// decisions (a busy device finishes new work later) but must not treat
	// it as poppable queue depth — the only task queued at such a place is
	// typically a poller, and chasing it buys nothing.
	InFlight(pid int, delta float64)
}

// PolicyWorker is one worker identity's decision state. All methods are
// called only by the owning worker goroutine (single-threaded), from the
// scheduler's find-work scan — they must not block, and should not
// allocate (scans run per task).
type PolicyWorker interface {
	// PopOrder re-orders the worker's pop-path visit order. ord holds
	// indices into the worker's pop path; it is a persistent permutation
	// the policy reorders in place (and must keep a permutation). Called
	// once per scan before the pop loop.
	PopOrder(ord []int32)
	// Victims fills buf with the deque-column victim identities to visit,
	// in preference order, when stealing at place pid. Identities must lie
	// in [0, maxUsed); out-of-range entries and the worker's own id are
	// skipped by the caller. len(buf) >= maxUsed. Returns the count filled.
	Victims(buf []int32, pid, maxUsed int) int
	// BatchMax bounds how many tasks one steal visit may migrate from
	// victim vid's deque at place pid. The runtime caps the value at its
	// internal batch limit and forces single-task steals at places off the
	// worker's pop path (surplus must land where the pop path finds it) —
	// those invariants are the runtime's, not the policy's, to keep.
	BatchMax(pid, vid int) int
}

// SpawnOpt tunes a single task spawn; see Cost and AtGroup. Options are
// plain values (no closures) so a spawn with options allocates only the
// variadic slice.
type SpawnOpt struct {
	cost  float64
	group []*platform.Place
}

// Cost attaches an execution-cost estimate to a spawn (the *With spawn
// variants). Units are abstract — relative within an application; modules
// hint with their own natural units (kernel grid size, message bytes).
// The active policy folds hints into its per-place cost model; the default
// policy ignores them at zero cost.
func Cost(units float64) SpawnOpt { return SpawnOpt{cost: units} }

// AtGroup offers the scheduler a set of candidate places for a spawn
// instead of one concrete place; the active policy resolves the concrete
// place (PolicyRuntime.Resolve). Without a policy the spawn stays at the
// current place when it is in the group, else the group's first member.
func AtGroup(places ...*platform.Place) SpawnOpt { return SpawnOpt{group: places} }

// foldOpts collapses a spawn's options; later options win per field.
func foldOpts(opts []SpawnOpt) SpawnOpt {
	var s SpawnOpt
	for _, o := range opts {
		if o.cost != 0 {
			s.cost = o.cost
		}
		if o.group != nil {
			s.group = o.group
		}
	}
	return s
}

// resolveSpawnPlace picks the concrete place for a group spawn. A policy
// that resolves nil or a place outside the group is overridden by the
// default rule rather than trusted into checkCovered's panic.
func (r *Runtime) resolveSpawnPlace(from *platform.Place, group []*platform.Place, cost float64) *platform.Place {
	if len(group) == 0 {
		return from
	}
	if len(group) == 1 {
		return group[0]
	}
	if pol := r.pol; pol != nil {
		if p := pol.Resolve(from, group, cost); p != nil {
			for _, g := range group {
				if g == p {
					return p
				}
			}
		}
	}
	for _, g := range group {
		if g == from {
			return from
		}
	}
	return group[0]
}

// spawnHinted is spawn plus cost-hint accounting for the active policy.
func (r *Runtime) spawnHinted(w *worker, p *platform.Place, fs *finishScope, fn func(*Ctx), cost float64) {
	if pol := r.pol; pol != nil && cost > 0 {
		pol.CostHint(p.ID, cost)
	}
	r.spawn(w, p, fs, fn)
}

// CostHint forwards a cost estimate for tasks bound to place p to the
// active policy's per-place cost model, without spawning anything —
// applications use it when a batch of uniform work is about to expand at a
// place and per-spawn Cost options would be redundant. A no-op under the
// built-in policy.
func (r *Runtime) CostHint(p *platform.Place, cost float64) {
	if pol := r.pol; pol != nil && cost > 0 && p != nil {
		pol.CostHint(p.ID, cost)
	}
}

// HintInFlight reports work executing behind place p that never becomes a
// poppable task: modules call it with a positive delta when they issue an
// internally-scheduled operation (a CUDA kernel enqueued on a stream, an
// MPI transfer parked with a poller) and the matching negative delta when
// the operation retires, so cost-model policies see device and link
// pressure build and drain. A no-op under the built-in policy.
func (r *Runtime) HintInFlight(p *platform.Place, delta float64) {
	if pol := r.pol; pol != nil && delta != 0 && p != nil {
		pol.InFlight(p.ID, delta)
	}
}

// attachPolicyWorker (re)builds w's per-identity policy state for the path
// group it currently runs. Called at construction for configured workers
// and at substitution activation (the substitute inherits the blocked
// worker's paths, so its policy state must be rebuilt to match).
func (r *Runtime) attachPolicyWorker(w *worker) {
	w.pw = r.pol.Worker(w.id, w.group, w.pop, w.steal)
	if len(w.popOrder) != len(w.pop) {
		w.popOrder = make([]int32, len(w.pop))
	}
	for i := range w.popOrder {
		w.popOrder[i] = int32(i)
	}
	if len(w.victimBuf) != r.maxIDs {
		w.victimBuf = make([]int32, r.maxIDs)
	}
}

// findWorkPolicy is findWork with the three decision points delegated to
// the worker's PolicyWorker. Accounting is identical to the built-in path:
// pendingPerPlace, pop/steal/batch counters, and the EvStealAttempt /
// EvStealSuccess trace events all behave exactly as in findWork — a policy
// changes *which* deque is visited next, never what a visit means.
func (w *worker) findWorkPolicy() *Task {
	r := w.rt
	w.pw.PopOrder(w.popOrder)
	for _, i := range w.popOrder {
		p := w.pop[i]
		if t := r.deques[p.ID][w.id].PopBottom(); t != nil {
			r.pendingPerPlace[p.ID].Add(-1)
			w.pops.Add(1)
			return t
		}
	}
	maxUsed := int(r.maxUsed.Load())
	traced := w.tr != nil && w.tr.Enabled()
	for _, p := range w.steal {
		if r.pendingPerPlace[p.ID].Load() == 0 {
			continue
		}
		if traced {
			w.ring.Record(trace.EvStealAttempt, int32(p.ID), 0, 0)
		}
		if t := r.inject[p.ID].take(); t != nil {
			r.pendingPerPlace[p.ID].Add(-1)
			w.steals.Add(1)
			if traced {
				w.ring.Record(trace.EvStealSuccess, int32(p.ID), uint64(t.tid), 0)
			}
			return t
		}
		nv := w.pw.Victims(w.victimBuf, p.ID, maxUsed)
		for k := 0; k < nv; k++ {
			vid := int(w.victimBuf[k])
			if vid == w.id || vid < 0 || vid >= maxUsed {
				continue
			}
			batch := 1
			if w.popCover[p.ID] { // surplus must land where our pop path finds it
				batch = w.pw.BatchMax(p.ID, vid)
				if batch > stealBatchMax {
					batch = stealBatchMax
				}
			}
			for {
				if batch > 1 {
					n, retry := r.deques[p.ID][vid].StealBatch(w.stealBuf[:batch])
					if n > 0 {
						t := w.takeBatch(p.ID, n)
						r.pendingPerPlace[p.ID].Add(-1)
						w.steals.Add(1)
						if traced {
							w.ring.Record(trace.EvStealSuccess, int32(p.ID), uint64(t.tid), uint64(n-1))
						}
						return t
					}
					if !retry {
						break
					}
					continue
				}
				t, retry := r.deques[p.ID][vid].Steal()
				if t != nil {
					r.pendingPerPlace[p.ID].Add(-1)
					w.steals.Add(1)
					if traced {
						w.ring.Record(trace.EvStealSuccess, int32(p.ID), uint64(t.tid), 0)
					}
					return t
				}
				if !retry {
					break
				}
			}
		}
	}
	return nil
}
