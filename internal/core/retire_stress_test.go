package core

import (
	"testing"
	"time"
)

// TestRetireStress hammers the worker-substitution retire path: every
// iteration parks a worker on an unsatisfied future (forcing a substitute
// runner to spawn), then satisfies the future only after the substitution is
// observed, so the resume→retireGroup→wakeAll→releaseID cycle runs on every
// single iteration. After 100 rounds the identity pool must have refilled
// (no leaked runner keeps holding a substitution ID) and Shutdown's
// runners.Wait must complete — a leaked runner would hang it.
func TestRetireStress(t *testing.T) {
	const iterations = 100
	r := NewDefault(2)
	r.Start()

	for i := 0; i < iterations; i++ {
		p := NewPromise(r)
		before := r.Stats().Substitutions
		go func() {
			// Satisfy the future only once the blocked worker has handed its
			// slot to a substitute, so each iteration exercises retirement.
			deadline := time.Now().Add(5 * time.Second)
			for r.Stats().Substitutions == before {
				if time.Now().After(deadline) {
					t.Error("no substitution observed within 5s")
					break
				}
				time.Sleep(10 * time.Microsecond)
			}
			p.Put(nil)
		}()
		r.Launch(func(c *Ctx) {
			c.Finish(func(c *Ctx) {
				c.Async(func(c *Ctx) { c.Wait(p.Future()) })
			})
		})
	}

	st := r.Stats()
	if st.Substitutions < iterations {
		t.Errorf("substitutions = %d, want >= %d", st.Substitutions, iterations)
	}
	if st.MaxWorkerIDs <= r.nWorkers {
		t.Errorf("MaxWorkerIDs = %d, want > %d (no substitute identity ever activated)",
			st.MaxWorkerIDs, r.nWorkers)
	}

	// Every retire request must eventually be consumed by a surplus runner
	// releasing its identity. A group's single surviving runner may be a
	// substitute (a permanent worker may have consumed the retire request
	// instead), so up to nWorkers substitution IDs may legitimately remain
	// outstanding — but a retire-path leak across 100 iterations would leave
	// far more unreturned.
	minFree := r.maxIDs - 2*r.nWorkers
	deadline := time.Now().Add(5 * time.Second)
	for len(r.freeIDs) < minFree {
		if time.Now().After(deadline) {
			t.Fatalf("freeIDs = %d after quiescence, want >= %d (substitution IDs leaked)",
				len(r.freeIDs), minFree)
		}
		time.Sleep(time.Millisecond)
	}

	done := make(chan struct{})
	go func() {
		r.Shutdown() // runs runners.Wait: hangs if any runner leaked
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not complete: leaked runner goroutine")
	}
}
