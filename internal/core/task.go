// Package core implements HiPER's generalized work-stealing runtime.
//
// "Generalized" refers to the ability to perform work-stealing load
// balancing for more than homogeneous computational tasks: the runtime
// schedules ordinary compute tasks, communication proxy tasks, accelerator
// proxy tasks, and any third-party module's work on one persistent pool of
// worker threads, using the platform model's places to segregate work by the
// hardware component it needs.
//
// The four components from the paper:
//
//  1. a persistent pool of worker goroutines (one per management core);
//  2. N task deques at each place in the platform model, where the i-th
//     deque at a place holds only eligible tasks spawned by worker i;
//  3. per-worker pop paths (own work, LIFO — locality) and steal paths
//     (others' work, FIFO — load balance) over the places;
//  4. task creation APIs: Async, AsyncAt, AsyncFuture, AsyncAwait, Finish,
//     Forasync, AsyncCopy, plus promises and futures for point-to-point
//     synchronization.
//
// Blocking never idles a worker: waiting first "helps" by executing other
// eligible tasks, and if it must truly park it hands its concurrency slot to
// a freshly spawned replacement worker (worker substitution). This stands in
// for the paper's Boost.Context call-stack swapping, which Go cannot express,
// while preserving the scheduling property that matters: a blocked task does
// not block a CPU core.
package core

import (
	"fmt"

	"repro/internal/platform"
)

// Task is a suspendable single-threaded stream of execution. Tasks may
// synchronize on other tasks (via futures and finish scopes) and create new
// tasks. A task becomes eligible when its dependency count reaches zero and
// is then pushed onto a deque at its place.
type Task struct {
	fn     func(*Ctx)
	place  *platform.Place
	finish *finishScope
	deps   depCounter
	// tid is the task's trace identity, allocated at enqueue when tracing
	// is enabled (0 otherwise) and cleared on recycle. 32 bits: it packs
	// beside deps so Task stays exactly 32 bytes; IDs only disambiguate
	// overlapping spans, so wrap-around on >4G-task runs is harmless.
	tid uint32
}

// Ctx is the execution context threaded through every task body. It
// identifies the runtime, the worker currently executing the task, and the
// enclosing finish scope. Go has no thread-local storage, so HiPER's C++
// free-function API surface becomes methods on Ctx.
type Ctx struct {
	rt    *Runtime
	w     *worker
	place *platform.Place // place the current task was scheduled at
	fin   *finishScope    // innermost finish scope
	tid   uint64          // trace identity of the current task (0 untraced)
}

// Runtime returns the runtime this context belongs to.
func (c *Ctx) Runtime() *Runtime { return c.rt }

// Place returns the place at which the current task is executing.
func (c *Ctx) Place() *platform.Place { return c.place }

// WorkerID returns the identity of the worker executing the current task.
// Identities above the configured worker count belong to substitution
// workers spawned while a peer is blocked.
func (c *Ctx) WorkerID() int { return c.w.id }

// Async creates a task executing fn at the place closest to the current
// worker — the place of the currently executing task. The task is registered
// with the innermost finish scope.
func (c *Ctx) Async(fn func(*Ctx)) {
	c.rt.spawn(c.w, c.place, c.fin, fn)
}

// AsyncAt creates a task executing fn at the given place.
func (c *Ctx) AsyncAt(p *platform.Place, fn func(*Ctx)) {
	c.rt.spawn(c.w, p, c.fin, fn)
}

// AsyncDetachedAt creates a task at place p that is registered with NO
// finish scope: enclosing Finish calls do not wait for it. Module pollers
// use detached tasks so that a user's finish scope never blocks on polling
// machinery servicing unrelated operations.
func (c *Ctx) AsyncDetachedAt(p *platform.Place, fn func(*Ctx)) {
	c.rt.spawn(c.w, p, nil, fn)
}

// AsyncWith is Async with spawn options: a Cost hint feeding the active
// scheduling policy's per-place cost model, and/or an AtGroup place group
// whose concrete place the policy resolves. AsyncAt(p, fn) is equivalent
// to AsyncWith(fn, AtGroup(p)). Options cost one variadic-slice
// allocation; spawns on allocation-critical paths should use Async.
func (c *Ctx) AsyncWith(fn func(*Ctx), opts ...SpawnOpt) {
	s := foldOpts(opts)
	p := c.rt.resolveSpawnPlace(c.place, s.group, s.cost)
	c.rt.spawnHinted(c.w, p, c.fin, fn, s.cost)
}

// AsyncFutureWith is AsyncFuture with spawn options (see AsyncWith).
func (c *Ctx) AsyncFutureWith(fn func(*Ctx) any, opts ...SpawnOpt) *Future {
	s := foldOpts(opts)
	p := c.rt.resolveSpawnPlace(c.place, s.group, s.cost)
	prom := NewPromise(c.rt)
	c.rt.spawnHinted(c.w, p, c.fin, func(cc *Ctx) {
		defer settlePanic(prom, cc)
		prom.put(cc, fn(cc))
	}, s.cost)
	return prom.Future()
}

// AsyncDetachedWith is AsyncDetachedAt with spawn options (see AsyncWith):
// modules use it to tag their proxy tasks — kernel launches, transfer
// pollers — with cost hints in their natural units.
func (c *Ctx) AsyncDetachedWith(fn func(*Ctx), opts ...SpawnOpt) {
	s := foldOpts(opts)
	p := c.rt.resolveSpawnPlace(c.place, s.group, s.cost)
	c.rt.spawnHinted(c.w, p, nil, fn, s.cost)
}

// AsyncFuture creates a task and returns a future that is satisfied with
// fn's return value when the task completes. If fn panics, the future
// fails with the *PanicError instead of never settling, and the panic
// continues to the execute barrier so the enclosing finish scope fails
// too.
func (c *Ctx) AsyncFuture(fn func(*Ctx) any) *Future {
	return c.AsyncFutureAt(c.place, fn)
}

// AsyncFutureAt is AsyncFuture at a specific place.
func (c *Ctx) AsyncFutureAt(p *platform.Place, fn func(*Ctx) any) *Future {
	prom := NewPromise(c.rt)
	c.rt.spawn(c.w, p, c.fin, func(cc *Ctx) {
		defer settlePanic(prom, cc)
		prom.put(cc, fn(cc))
	})
	return prom.Future()
}

// AsyncErr creates a task whose body reports failure by returning an
// error: a non-nil return is recorded against the enclosing finish scope
// (first error wins), surfacing from FinishErr or Launch — the
// recoverable-error counterpart of the panic barrier.
func (c *Ctx) AsyncErr(fn func(*Ctx) error) {
	c.AsyncErrAt(c.place, fn)
}

// AsyncErrAt is AsyncErr at a specific place.
func (c *Ctx) AsyncErrAt(p *platform.Place, fn func(*Ctx) error) {
	c.rt.spawn(c.w, p, c.fin, func(cc *Ctx) {
		if err := fn(cc); err != nil && cc.fin != nil {
			cc.fin.fail(err)
		}
	})
}

// settlePanic is the deferred barrier shared by the future-returning
// spawn variants: it fails the result future with the in-flight panic so
// waiters are released, then re-raises the wrapped error for the execute
// barrier to record against the finish scope.
func settlePanic(prom *Promise, cc *Ctx) {
	pv := recover()
	if pv == nil {
		return
	}
	pe := wrapPanic(pv)
	if !prom.done.Load() {
		prom.putResult(cc, nil, pe)
	}
	panic(pe)
}

// AsyncAwait creates a task whose execution is predicated on the
// satisfaction of all given futures.
func (c *Ctx) AsyncAwait(fn func(*Ctx), futures ...*Future) {
	c.AsyncAwaitAt(c.place, fn, futures...)
}

// AsyncAwaitAt is AsyncAwait at a specific place.
func (c *Ctx) AsyncAwaitAt(p *platform.Place, fn func(*Ctx), futures ...*Future) {
	c.rt.spawnAwait(c.w, p, c.fin, fn, futures)
}

// AsyncFutureAwait creates a task whose execution is predicated on the given
// futures and returns a future satisfied with fn's return value when the
// task completes.
func (c *Ctx) AsyncFutureAwait(fn func(*Ctx) any, futures ...*Future) *Future {
	return c.AsyncFutureAwaitAt(c.place, fn, futures...)
}

// AsyncFutureAwaitAt is AsyncFutureAwait at a specific place.
func (c *Ctx) AsyncFutureAwaitAt(p *platform.Place, fn func(*Ctx) any, futures ...*Future) *Future {
	prom := NewPromise(c.rt)
	c.rt.spawnAwait(c.w, p, c.fin, func(cc *Ctx) {
		defer settlePanic(prom, cc)
		prom.put(cc, fn(cc))
	}, futures)
	return prom.Future()
}

// finishRun is the shared body of Finish/FinishErr: open a scope, run fn
// inside it, drain. The drain runs in a defer so a panicking fn still
// waits for its spawned tasks; err is computed after the drain, when the
// scope's first failure (if any) has settled.
func (c *Ctx) finishRun(fn func(*Ctx)) (err error) {
	fs := newFinishScope(c.rt)
	prev := c.fin
	c.fin = fs
	defer func() {
		c.fin = prev
		fs.dec(c) // drop the scope's own reference
		stop := c.rt.armStallTimer("Finish")
		c.Wait(fs.future())
		stop()
		err = fs.future().errSettled()
	}()
	fn(c)
	return nil
}

// Finish executes fn and then waits for every task created within it —
// including transitively spawned tasks — to complete before returning.
// The wait helps execute eligible work and never idles the worker.
// A failure inside the scope (task panic, AsyncErr body error) is
// propagated to the enclosing scope after the drain; use FinishErr to
// handle it locally instead.
func (c *Ctx) Finish(fn func(*Ctx)) {
	if err := c.finishRun(fn); err != nil && c.fin != nil {
		c.fin.fail(err)
	}
}

// FinishErr is Finish returning the scope's first failure — a task-body
// panic (as *PanicError), an AsyncErr body error, or a Ctx.Fail — after
// every task in the scope has completed. The error is consumed: it does
// not propagate to the enclosing scope.
func (c *Ctx) FinishErr(fn func(*Ctx)) error {
	return c.finishRun(fn)
}

// FinishFuture executes fn like Finish but does not block: it returns a
// future satisfied when all tasks created within fn (transitively) complete.
func (c *Ctx) FinishFuture(fn func(*Ctx)) *Future {
	fs := newFinishScope(c.rt)
	prev := c.fin
	c.fin = fs
	defer func() {
		c.fin = prev
		fs.dec(c)
	}()
	fn(c)
	return fs.future()
}

// Wait blocks the current task until f is satisfied. While waiting, the
// worker executes other eligible tasks; if none are available the worker's
// concurrency slot is handed to a substitute so no CPU sits idle.
func (c *Ctx) Wait(f *Future) {
	c.rt.waitOn(c.w, c.tid, f)
}

// HelpUntil keeps the current worker executing eligible tasks until pred
// returns true, napping briefly when no work is available. Use it to wait
// on conditions established by events outside the runtime (e.g. a remote
// one-sided write flipping a flag) without stalling the tasks — such as
// module pollers — that the condition's satisfaction may depend on.
func (c *Ctx) HelpUntil(pred func() bool) {
	c.rt.helpUntil(c.w, pred)
}

// Get waits for f and returns its value.
func (c *Ctx) Get(f *Future) any {
	c.Wait(f)
	return f.valueLocked()
}

// GetErr waits for f and returns its error: nil for a future satisfied
// by Put, the failure for one settled by PutErr or the panic barrier.
// Like Get, the wait helps execute eligible work.
func (c *Ctx) GetErr(f *Future) error {
	c.Wait(f)
	return f.errSettled()
}

// Put satisfies promise p with v from inside a task. Tasks released by the
// satisfaction are enqueued through the current worker's deques, which is
// cheaper than the injector path taken by Promise.Put.
func (c *Ctx) Put(p *Promise, v any) {
	p.put(c, v)
}

// PutErr settles promise p as failed from inside a task; released
// waiters are enqueued through the current worker's deques.
func (c *Ctx) PutErr(p *Promise, err error) {
	p.putResult(c, nil, err)
}

// Fail records err against the innermost finish scope (first error
// wins) without aborting the current task. The error surfaces from the
// scope's FinishErr / Launch once the scope drains.
func (c *Ctx) Fail(err error) {
	if c.fin != nil {
		c.fin.fail(err)
	}
}

// Yield re-enqueues the remainder of the current task's work expressed as a
// continuation fn at the current place, giving other eligible tasks at this
// place a chance to run first. The paper's module pollers use exactly this
// pattern: poll the pending list, and if operations remain, yield and poll
// again later.
// The continuation goes through the place's FIFO injector rather than the
// worker's own LIFO deque: a yielded poller re-pushed LIFO would shadow
// every older task in its column and the worker would re-pop it forever,
// starving exactly the work the yield was meant to let through.
func (c *Ctx) Yield(fn func(*Ctx)) {
	// A yielded continuation belongs to the same finish scope.
	c.rt.spawn(nil, c.place, c.fin, fn)
}

// String implements fmt.Stringer for debugging.
func (c *Ctx) String() string {
	return fmt.Sprintf("ctx(worker=%d place=%v)", c.w.id, c.place)
}
