package core

import (
	"fmt"
	"runtime/debug"
)

// This file defines the runtime's failure-domain vocabulary. HiPER's
// design principle is that a failing task takes down its own failure
// domain — its future and its enclosing finish scope — and nothing else:
// the worker that ran it stays schedulable, sibling scopes are
// untouched, and the error surfaces at the point that waits on the
// domain (Future.Err, Ctx.FinishErr, Runtime.Launch). Containment is
// centralized in the worker execute path; task bodies and modules never
// call recover themselves (hiper-lint's recover-outside-worker checker
// enforces that).

// PanicError is a task-body panic converted into an error by the worker
// execute barrier. It preserves the panic value and the stack captured
// at the panic site, so the diagnostic is as good as the crash would
// have been — without losing the process.
type PanicError struct {
	Value any    // the value passed to panic
	Stack []byte // stack captured at the panic site
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("core: task panicked: %v", e.Value)
}

// wrapPanic converts a recovered panic value into a *PanicError. A value
// that already is one (re-raised by an AsyncFuture wrapper so the
// execute barrier also observes it) passes through unchanged, keeping
// the original panic site's stack.
func wrapPanic(v any) *PanicError {
	if pe, ok := v.(*PanicError); ok {
		return pe
	}
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// Contain runs fn and converts a panic into the *PanicError the worker
// barrier would have produced, instead of crashing the process. It
// exists for the one containment case that has no worker barrier under
// it: plain goroutines hosting non-HiPER rank bodies (job.RunFlat's
// flat SPMD baselines), where a panicking rank must fail like a crashed
// process — its own error, joined with its siblings' — not take the
// whole simulated job down. HiPER task bodies must NOT use this; their
// panics already belong to the execute barrier and its failure domains.
func Contain(fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = wrapPanic(v)
		}
	}()
	return fn()
}
