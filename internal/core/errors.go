package core

import (
	"fmt"
	"runtime/debug"
)

// This file defines the runtime's failure-domain vocabulary. HiPER's
// design principle is that a failing task takes down its own failure
// domain — its future and its enclosing finish scope — and nothing else:
// the worker that ran it stays schedulable, sibling scopes are
// untouched, and the error surfaces at the point that waits on the
// domain (Future.Err, Ctx.FinishErr, Runtime.Launch). Containment is
// centralized in the worker execute path; task bodies and modules never
// call recover themselves (hiper-lint's recover-outside-worker checker
// enforces that).

// PanicError is a task-body panic converted into an error by the worker
// execute barrier. It preserves the panic value and the stack captured
// at the panic site, so the diagnostic is as good as the crash would
// have been — without losing the process.
type PanicError struct {
	Value any    // the value passed to panic
	Stack []byte // stack captured at the panic site
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("core: task panicked: %v", e.Value)
}

// wrapPanic converts a recovered panic value into a *PanicError. A value
// that already is one (re-raised by an AsyncFuture wrapper so the
// execute barrier also observes it) passes through unchanged, keeping
// the original panic site's stack.
func wrapPanic(v any) *PanicError {
	if pe, ok := v.(*PanicError); ok {
		return pe
	}
	return &PanicError{Value: v, Stack: debug.Stack()}
}
