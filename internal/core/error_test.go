package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"unsafe"

	"repro/internal/platform"
)

// TestTaskStays32Bytes pins the Task size class the pool and allocator
// are tuned around: the error-propagation layer must not grow it.
func TestTaskStays32Bytes(t *testing.T) {
	if s := unsafe.Sizeof(Task{}); s != 32 {
		t.Fatalf("Task is %d bytes, want 32", s)
	}
}

// TestPanicFailsOnlyItsFuture is the panic-isolation contract: a
// panicking task fails its own future and finish scope, sibling work
// completes, the runtime stays schedulable afterwards, and Close
// succeeds.
func TestPanicFailsOnlyItsFuture(t *testing.T) {
	r := newTestRuntime(t, 4)
	var sibling atomic.Int64
	err := r.Launch(func(c *Ctx) {
		ferr := c.FinishErr(func(c *Ctx) {
			bad := c.AsyncFuture(func(*Ctx) any {
				panic("kaboom")
			})
			for i := 0; i < 8; i++ {
				c.Async(func(*Ctx) { sibling.Add(1) })
			}
			if e := c.GetErr(bad); e == nil {
				t.Error("panicked task's future did not fail")
			} else {
				var pe *PanicError
				if !errors.As(e, &pe) {
					t.Errorf("future error is %T, want *PanicError", e)
				} else if fmt.Sprint(pe.Value) != "kaboom" {
					t.Errorf("panic value = %v", pe.Value)
				} else if len(pe.Stack) == 0 {
					t.Error("panic error carries no stack")
				}
			}
		})
		if ferr == nil {
			t.Error("finish scope containing the panic did not fail")
		}
		// The error was consumed by FinishErr; the scope around us is
		// clean and the runtime must still schedule new work.
		done := c.AsyncFuture(func(*Ctx) any { return 42 })
		if v := c.Get(done); v != 42 {
			t.Errorf("post-panic task returned %v", v)
		}
	})
	if err != nil {
		t.Fatalf("Launch after isolated panic: %v", err)
	}
	if sibling.Load() != 8 {
		t.Errorf("sibling tasks ran %d times, want 8", sibling.Load())
	}
}

// TestPanicPropagatesToLaunch: an unconsumed failure surfaces from
// Launch as a *PanicError.
func TestPanicPropagatesToLaunch(t *testing.T) {
	r := newTestRuntime(t, 2)
	err := r.Launch(func(c *Ctx) {
		c.Async(func(*Ctx) { panic(errors.New("root failure")) })
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Launch error = %v (%T), want *PanicError", err, err)
	}
	if e, ok := pe.Value.(error); !ok || e.Error() != "root failure" {
		t.Errorf("panic value = %v", pe.Value)
	}
}

// TestFinishPropagatesToParentScope: plain Finish forwards the scope
// error outward instead of swallowing it.
func TestFinishPropagatesToParentScope(t *testing.T) {
	r := newTestRuntime(t, 2)
	err := r.Launch(func(c *Ctx) {
		c.Finish(func(c *Ctx) {
			c.Async(func(*Ctx) { panic("inner") })
		})
	})
	if err == nil {
		t.Fatal("Finish swallowed the scope failure")
	}
}

// TestAsyncErrFailsScope: an error-returning task body fails the scope
// without a panic, first error wins.
func TestAsyncErrFailsScope(t *testing.T) {
	r := newTestRuntime(t, 2)
	want := errors.New("task failed politely")
	err := r.Launch(func(c *Ctx) {
		ferr := c.FinishErr(func(c *Ctx) {
			c.AsyncErr(func(*Ctx) error { return want })
			c.AsyncErr(func(*Ctx) error { return nil })
		})
		if !errors.Is(ferr, want) {
			t.Errorf("FinishErr = %v, want %v", ferr, want)
		}
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
}

// TestCtxFail: Ctx.Fail marks the innermost scope without aborting the
// task.
func TestCtxFail(t *testing.T) {
	r := newTestRuntime(t, 2)
	want := errors.New("flagged")
	var after atomic.Bool
	err := r.Launch(func(c *Ctx) {
		ferr := c.FinishErr(func(c *Ctx) {
			c.Async(func(cc *Ctx) {
				cc.Fail(want)
				after.Store(true) // body continues past Fail
			})
		})
		if !errors.Is(ferr, want) {
			t.Errorf("FinishErr = %v, want %v", ferr, want)
		}
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if !after.Load() {
		t.Error("Fail aborted the task body")
	}
}

// TestFuturePutErrAndWhenAll covers the promise-level error surface.
func TestFuturePutErrAndWhenAll(t *testing.T) {
	r := newTestRuntime(t, 2)
	want := errors.New("settled as failed")
	err := r.Launch(func(c *Ctx) {
		p := NewPromise(r)
		go p.PutErr(want)
		if e := c.GetErr(p.Future()); !errors.Is(e, want) {
			t.Errorf("GetErr = %v, want %v", e, want)
		}
		if !p.Future().Failed() {
			t.Error("Failed() false after PutErr")
		}

		ok := Satisfied(r, 1)
		bad := FailedFuture(r, want)
		all := WhenAll(r, ok, bad)
		if e := c.GetErr(all); !errors.Is(e, want) {
			t.Errorf("WhenAll error = %v, want %v", e, want)
		}
		clean := WhenAll(r, ok, Satisfied(r, 2))
		if e := c.GetErr(clean); e != nil {
			t.Errorf("clean WhenAll errored: %v", e)
		}
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
}

// TestAsyncFutureAwaitPanicSettles: the await variant's future fails on
// panic too, releasing waiters instead of hanging them.
func TestAsyncFutureAwaitPanicSettles(t *testing.T) {
	r := newTestRuntime(t, 2)
	err := r.Launch(func(c *Ctx) {
		gate := NewPromise(r)
		f := c.AsyncFutureAwait(func(*Ctx) any { panic("after gate") }, gate.Future())
		c.Async(func(cc *Ctx) { cc.Put(gate, nil) })
		if e := c.GetErr(f); e == nil {
			t.Error("awaited future did not fail on panic")
		}
	})
	if err == nil {
		t.Fatal("scope failure from awaited panic did not reach Launch")
	}
}

// TestAsyncCopyAwaitPropagatesError: a failing copy fails the composed
// future from AsyncCopyAwait.
func TestAsyncCopyAwaitPropagatesError(t *testing.T) {
	r := newTestRuntime(t, 2)
	mem := r.Model().FirstByKind(platform.KindSysMem)
	err := r.Launch(func(c *Ctx) {
		gate := Satisfied(r, nil)
		f := c.AsyncCopyAwait(At(mem, make([]float64, 2)), At(mem, make([]int, 2)), 2, gate)
		if e := c.GetErr(f); e == nil {
			t.Error("AsyncCopyAwait did not propagate the copy failure")
		}
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
}
