package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/trace"
)

func tracedRuntime(t *testing.T, workers int, cfg trace.Config) *Runtime {
	t.Helper()
	r, err := New(platform.Default(workers), &Options{Trace: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestTraceLifecycleEvents checks that a traced workload records a
// consistent task lifecycle: every spawn starts and finishes exactly
// once, suspensions pair with resumes, and the dump validates against
// the Chrome schema and round-trips through the text summarizer.
func TestTraceLifecycleEvents(t *testing.T) {
	r := tracedRuntime(t, 2, trace.Config{})
	defer r.Shutdown()
	const n = 500
	var ran atomic.Int64
	r.Launch(func(c *Ctx) {
		c.Finish(func(c *Ctx) {
			for i := 0; i < n; i++ {
				c.Async(func(*Ctx) { ran.Add(1) })
			}
		})
		// Force at least one traced suspension: wait on a future satisfied
		// by an external goroutine after a delay.
		p := NewPromise(r)
		go func() {
			time.Sleep(2 * time.Millisecond)
			p.Put(nil)
		}()
		c.Wait(p.Future())
	})
	if ran.Load() != n {
		t.Fatalf("ran %d tasks, want %d", ran.Load(), n)
	}

	d := r.Tracer().Derived()
	// n asyncs + the root task + the finish-scope machinery: every spawn
	// must start and finish exactly once (no drops at this size).
	if d.Spawns < n+1 || d.TasksStarted != d.Spawns || d.TasksFinished != d.Spawns {
		t.Fatalf("lifecycle imbalance: %d spawns, %d started, %d finished",
			d.Spawns, d.TasksStarted, d.TasksFinished)
	}
	var buf bytes.Buffer
	if err := r.TraceDump(&buf); err != nil {
		t.Fatalf("TraceDump: %v", err)
	}
	if err := trace.ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("trace fails schema validation: %v", err)
	}
	sum, err := trace.Summarize(buf.Bytes(), 8)
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if !strings.Contains(sum, "tasks") {
		t.Fatalf("summary looks empty:\n%s", sum)
	}
}

// TestTraceFanoutWake traces the fanout-wake shape end to end — a
// quiescent pool repeatedly woken by task bursts, with concurrent
// external injections — and is the race-detector workout for the
// tracer's single-writer rings, the shared external ring, and concurrent
// dumps (run under -race via `make race`).
func TestTraceFanoutWake(t *testing.T) {
	r := tracedRuntime(t, 4, trace.Config{RingSize: 1 << 12})
	defer r.Shutdown()
	r.Start()
	place := r.Model().Place(0)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // external injections hit the injector + external ring
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			p := NewPromise(r)
			r.SpawnDetachedAt(place, func(c *Ctx) { c.Put(p, nil) })
			p.Future().Wait()
		}
	}()
	wg.Add(1)
	go func() { // concurrent dumps while workers record
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(500 * time.Microsecond):
			}
			var buf bytes.Buffer
			if err := r.TraceDump(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var ran atomic.Int64
	for round := 0; round < 10; round++ {
		time.Sleep(200 * time.Microsecond) // let the pool park
		r.Launch(func(c *Ctx) {
			c.ForasyncSync(Range{Lo: 0, Hi: r.NumWorkers() * 8, Grain: 1},
				func(*Ctx, int) { ran.Add(1) })
		})
	}
	close(stop)
	wg.Wait()
	if want := int64(10 * r.NumWorkers() * 8); ran.Load() != want {
		t.Fatalf("ran %d fanout tasks, want %d", ran.Load(), want)
	}
	// Quiescent traced window: with the injection and dump goroutines gone
	// and no work left, every worker runs out its spin rounds and parks,
	// guaranteeing park events survive to the final snapshot.
	time.Sleep(10 * time.Millisecond)
	var buf bytes.Buffer
	if err := r.TraceDump(&buf); err != nil {
		t.Fatalf("final TraceDump: %v", err)
	}
	if err := trace.ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("final trace fails schema validation: %v", err)
	}
	d := r.Tracer().Derived()
	if d.Parks == 0 {
		t.Fatalf("fanout-wake rounds recorded no park events")
	}
}

// TestCloseFlushesTrace checks Close's one-shot flush: the Chrome JSON
// lands at Config.OutPath, derived gauges land in stats, and a second
// Close is a no-op.
func TestCloseFlushesTrace(t *testing.T) {
	stats.Reset()
	defer stats.Reset()
	out := filepath.Join(t.TempDir(), "trace.json")
	r := tracedRuntime(t, 2, trace.Config{OutPath: out})
	r.Launch(func(c *Ctx) {
		c.Finish(func(c *Ctx) {
			for i := 0; i < 64; i++ {
				c.Async(func(*Ctx) {})
			}
		})
	})
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("Close did not write the trace: %v", err)
	}
	if err := trace.ValidateChrome(data); err != nil {
		t.Fatalf("flushed trace fails schema validation: %v", err)
	}
	if rep := stats.Report(); !strings.Contains(rep, "steal_success_rate") {
		t.Fatalf("Close did not publish derived gauges:\n%s", rep)
	}
	if err := os.Remove(out); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Fatalf("second Close re-flushed the trace")
	}
}

// TestCloseWithoutTracing: Close on an untraced runtime is Shutdown.
func TestCloseWithoutTracing(t *testing.T) {
	r := NewDefault(2)
	r.Launch(func(c *Ctx) { c.Async(func(*Ctx) {}) })
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var buf bytes.Buffer
	if err := r.TraceDump(&buf); err == nil {
		t.Fatal("TraceDump on an untraced runtime should error")
	}
	if s := r.TraceSummary(4); !strings.Contains(s, "not enabled") {
		t.Fatalf("TraceSummary on untraced runtime: %q", s)
	}
}

// TestPprofLabelsRun smoke-tests the labeled execution path.
func TestPprofLabelsRun(t *testing.T) {
	r := tracedRuntime(t, 2, trace.Config{PprofLabels: true})
	defer r.Shutdown()
	var ran atomic.Int64
	r.Launch(func(c *Ctx) {
		c.Finish(func(c *Ctx) {
			for i := 0; i < 32; i++ {
				c.Async(func(*Ctx) { ran.Add(1) })
			}
		})
	})
	if ran.Load() != 32 {
		t.Fatalf("labeled run executed %d tasks, want 32", ran.Load())
	}
}
