package core

import (
	"sync/atomic"
	"time"
)

// finishScope implements bulk task synchronization: a finish waits for all
// tasks created in its body before returning, including transitively
// spawned tasks. Each scope is an atomic reference count: one reference for
// the scope body itself plus one per registered (spawned but not yet
// completed) task. When the count drains to zero the scope's future is
// satisfied, releasing the waiter.
//
// Tasks inherit the finish scope that was innermost at their spawn point,
// which is what makes the count transitive: a child task spawning a
// grandchild registers the grandchild with the same scope.
//
// A scope is also a failure domain: the first error recorded against it
// (a task-body panic converted by the execute barrier, an AsyncErr body
// returning non-nil, an explicit fail) settles the scope's future as
// failed once the count drains. Later errors are dropped — like
// errgroup, the first failure is the one that names the bug; the scope
// still waits for every task, so no work is left running when the error
// surfaces.
type finishScope struct {
	count atomic.Int64
	prom  *Promise
	err   atomic.Pointer[error] // first recorded failure, nil while clean

	// Watchdog registration, populated only when the runtime's quiesce
	// watchdog is armed (wd non-nil): creation site and time for the
	// stall report's open-scope listing.
	wd    *watchdogState
	label string
	born  time.Time
}

func newFinishScope(rt *Runtime) *finishScope {
	fs := &finishScope{prom: NewPromise(rt)}
	fs.count.Store(1) // the scope body's own reference
	if rt.watch != nil {
		rt.watch.register(fs)
	}
	return fs
}

// inc registers one more task with the scope.
func (fs *finishScope) inc() {
	fs.count.Add(1)
}

// dec drops one reference; the context (may be nil when dropped from a
// non-worker goroutine) routes released waiters efficiently.
func (fs *finishScope) dec(c *Ctx) {
	if fs.count.Add(-1) == 0 {
		if fs.wd != nil {
			fs.wd.unregister(fs)
		}
		fs.prom.putResult(c, nil, fs.firstErr())
	}
}

// fail records err against the scope; the first recorded error wins.
// Safe from any goroutine, any number of times.
func (fs *finishScope) fail(err error) {
	if err == nil {
		return
	}
	fs.err.CompareAndSwap(nil, &err)
}

// firstErr returns the first recorded failure, or nil.
func (fs *finishScope) firstErr() error {
	if p := fs.err.Load(); p != nil {
		return *p
	}
	return nil
}

// future returns the future satisfied when the scope fully drains.
func (fs *finishScope) future() *Future { return fs.prom.Future() }
