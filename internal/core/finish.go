package core

import "sync/atomic"

// finishScope implements bulk task synchronization: a finish waits for all
// tasks created in its body before returning, including transitively
// spawned tasks. Each scope is an atomic reference count: one reference for
// the scope body itself plus one per registered (spawned but not yet
// completed) task. When the count drains to zero the scope's future is
// satisfied, releasing the waiter.
//
// Tasks inherit the finish scope that was innermost at their spawn point,
// which is what makes the count transitive: a child task spawning a
// grandchild registers the grandchild with the same scope.
type finishScope struct {
	count atomic.Int64
	prom  *Promise
}

func newFinishScope(rt *Runtime) *finishScope {
	fs := &finishScope{prom: NewPromise(rt)}
	fs.count.Store(1) // the scope body's own reference
	return fs
}

// inc registers one more task with the scope.
func (fs *finishScope) inc() {
	fs.count.Add(1)
}

// dec drops one reference; the context (may be nil when dropped from a
// non-worker goroutine) routes released waiters efficiently.
func (fs *finishScope) dec(c *Ctx) {
	if fs.count.Add(-1) == 0 {
		fs.prom.put(c, nil)
	}
}

// future returns the future satisfied when the scope fully drains.
func (fs *finishScope) future() *Future { return fs.prom.Future() }
