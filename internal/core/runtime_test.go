package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/platform"
)

func newTestRuntime(t testing.TB, workers int) *Runtime {
	t.Helper()
	r := NewDefault(workers)
	t.Cleanup(r.Shutdown)
	return r
}

func TestLaunchRunsRoot(t *testing.T) {
	r := newTestRuntime(t, 2)
	var ran atomic.Bool
	r.Launch(func(c *Ctx) { ran.Store(true) })
	if !ran.Load() {
		t.Fatal("root task did not run")
	}
}

func TestAsyncWithinFinish(t *testing.T) {
	r := newTestRuntime(t, 4)
	var count atomic.Int64
	r.Launch(func(c *Ctx) {
		c.Finish(func(c *Ctx) {
			for i := 0; i < 100; i++ {
				c.Async(func(*Ctx) { count.Add(1) })
			}
		})
		if got := count.Load(); got != 100 {
			t.Errorf("finish returned with count=%d, want 100", got)
		}
	})
}

func TestFinishTransitive(t *testing.T) {
	r := newTestRuntime(t, 4)
	var count atomic.Int64
	r.Launch(func(c *Ctx) {
		c.Finish(func(c *Ctx) {
			// Each spawned task spawns more tasks; finish must wait for all.
			for i := 0; i < 10; i++ {
				c.Async(func(c *Ctx) {
					for j := 0; j < 10; j++ {
						c.Async(func(c *Ctx) {
							c.Async(func(*Ctx) { count.Add(1) })
						})
					}
				})
			}
		})
		if got := count.Load(); got != 100 {
			t.Errorf("transitive finish: count=%d, want 100", got)
		}
	})
}

func TestNestedFinish(t *testing.T) {
	r := newTestRuntime(t, 4)
	r.Launch(func(c *Ctx) {
		var inner, outer atomic.Int64
		c.Finish(func(c *Ctx) {
			c.Finish(func(c *Ctx) {
				for i := 0; i < 50; i++ {
					c.Async(func(*Ctx) { inner.Add(1) })
				}
			})
			if inner.Load() != 50 {
				t.Error("inner finish returned early")
			}
			for i := 0; i < 50; i++ {
				c.Async(func(*Ctx) { outer.Add(1) })
			}
		})
		if outer.Load() != 50 {
			t.Error("outer finish returned early")
		}
	})
}

func TestPromiseFuture(t *testing.T) {
	r := newTestRuntime(t, 2)
	r.Launch(func(c *Ctx) {
		p := NewPromise(r)
		f := p.Future()
		if f.Done() {
			t.Error("future done before put")
		}
		c.Async(func(c *Ctx) {
			c.Put(p, 42)
		})
		if got := c.Get(f); got != 42 {
			t.Errorf("Get = %v, want 42", got)
		}
		if !f.Done() {
			t.Error("future not done after put")
		}
	})
}

func TestDoublePutPanics(t *testing.T) {
	r := newTestRuntime(t, 1)
	p := NewPromise(r)
	p.Put(1)
	defer func() {
		if recover() == nil {
			t.Fatal("second Put must panic")
		}
	}()
	p.Put(2)
}

func TestAsyncFuture(t *testing.T) {
	r := newTestRuntime(t, 2)
	r.Launch(func(c *Ctx) {
		f := c.AsyncFuture(func(*Ctx) any { return "hello" })
		if got := c.Get(f); got != "hello" {
			t.Errorf("got %v", got)
		}
	})
}

func TestAsyncAwaitOrdering(t *testing.T) {
	r := newTestRuntime(t, 4)
	r.Launch(func(c *Ctx) {
		c.Finish(func(c *Ctx) {
			p := NewPromise(r)
			var stage atomic.Int32
			c.AsyncAwait(func(*Ctx) {
				if stage.Load() != 1 {
					t.Error("await task ran before dependency satisfied")
				}
				stage.Store(2)
			}, p.Future())
			time.Sleep(5 * time.Millisecond) // give the task a chance to misfire
			stage.Store(1)
			c.Put(p, nil)
		})
	})
}

func TestAsyncAwaitMultipleDeps(t *testing.T) {
	r := newTestRuntime(t, 4)
	r.Launch(func(c *Ctx) {
		c.Finish(func(c *Ctx) {
			ps := make([]*Promise, 5)
			fs := make([]*Future, 5)
			for i := range ps {
				ps[i] = NewPromise(r)
				fs[i] = ps[i].Future()
			}
			var ran atomic.Bool
			c.AsyncAwait(func(*Ctx) {
				for _, f := range fs {
					if !f.Done() {
						t.Error("await ran with unsatisfied dependency")
					}
				}
				ran.Store(true)
			}, fs...)
			for _, p := range ps {
				c.Put(p, nil)
			}
		})
	})
}

func TestAsyncAwaitAlreadySatisfied(t *testing.T) {
	r := newTestRuntime(t, 2)
	r.Launch(func(c *Ctx) {
		f := Satisfied(r, 7)
		var got atomic.Int64
		c.Finish(func(c *Ctx) {
			c.AsyncAwait(func(c *Ctx) { got.Store(int64(f.Get().(int))) }, f)
		})
		if got.Load() != 7 {
			t.Errorf("got %d", got.Load())
		}
	})
}

func TestAsyncFutureAwaitChain(t *testing.T) {
	r := newTestRuntime(t, 4)
	r.Launch(func(c *Ctx) {
		f1 := c.AsyncFuture(func(*Ctx) any { return 1 })
		f2 := c.AsyncFutureAwait(func(c *Ctx) any { return f1.Get().(int) + 1 }, f1)
		f3 := c.AsyncFutureAwait(func(c *Ctx) any { return f2.Get().(int) + 1 }, f2)
		if got := c.Get(f3); got != 3 {
			t.Errorf("chain result = %v, want 3", got)
		}
	})
}

func TestWhenAll(t *testing.T) {
	r := newTestRuntime(t, 4)
	r.Launch(func(c *Ctx) {
		var fs []*Future
		var sum atomic.Int64
		for i := 1; i <= 10; i++ {
			i := i
			fs = append(fs, c.AsyncFuture(func(*Ctx) any { sum.Add(int64(i)); return nil }))
		}
		all := WhenAll(r, fs...)
		c.Wait(all)
		if sum.Load() != 55 {
			t.Errorf("sum = %d", sum.Load())
		}
		// Empty WhenAll is immediately done.
		if !WhenAll(r).Done() {
			t.Error("empty WhenAll not done")
		}
	})
}

func TestAsyncAt(t *testing.T) {
	model := platform.Default(2)
	r, err := New(model, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Shutdown()
	nic := model.FirstByKind(platform.KindInterconnect)
	r.Launch(func(c *Ctx) {
		c.Finish(func(c *Ctx) {
			c.AsyncAt(nic, func(cc *Ctx) {
				if cc.Place() != nic {
					t.Errorf("task ran at %v, want %v", cc.Place(), nic)
				}
			})
		})
	})
}

func TestUncoveredPlacePanics(t *testing.T) {
	m := platform.NewModel()
	a := m.AddPlace("sysmem0", platform.KindSysMem)
	orphan := m.AddPlace("orphan", platform.KindDisk)
	m.AddEdge(a, orphan)
	m.AddWorker([]int{a.ID}, []int{a.ID})
	r, err := New(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Shutdown()
	r.Launch(func(c *Ctx) {
		defer func() {
			if recover() == nil {
				t.Error("AsyncAt an uncovered place must panic")
			}
		}()
		c.AsyncAt(orphan, func(*Ctx) {})
	})
}

func TestForasyncCoversRange(t *testing.T) {
	r := newTestRuntime(t, 4)
	r.Launch(func(c *Ctx) {
		const n = 1000
		hits := make([]atomic.Int32, n)
		c.ForasyncSync(Range{Lo: 0, Hi: n, Grain: 16}, func(_ *Ctx, i int) {
			hits[i].Add(1)
		})
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("index %d executed %d times", i, hits[i].Load())
			}
		}
	})
}

func TestForasyncEmptyAndTiny(t *testing.T) {
	r := newTestRuntime(t, 2)
	r.Launch(func(c *Ctx) {
		var n atomic.Int64
		c.ForasyncSync(Range{Lo: 5, Hi: 5}, func(_ *Ctx, i int) { n.Add(1) })
		if n.Load() != 0 {
			t.Error("empty range executed iterations")
		}
		c.ForasyncSync(Range{Lo: 3, Hi: 4}, func(_ *Ctx, i int) {
			if i != 3 {
				t.Errorf("i=%d", i)
			}
			n.Add(1)
		})
		if n.Load() != 1 {
			t.Error("single-iteration range wrong")
		}
	})
}

func TestForasyncFuture(t *testing.T) {
	r := newTestRuntime(t, 4)
	r.Launch(func(c *Ctx) {
		var sum atomic.Int64
		f := c.ForasyncFuture(Range{Lo: 1, Hi: 101, Grain: 8}, func(_ *Ctx, i int) {
			sum.Add(int64(i))
		})
		c.Wait(f)
		if sum.Load() != 5050 {
			t.Errorf("sum = %d, want 5050", sum.Load())
		}
	})
}

func TestForasync2D3D(t *testing.T) {
	r := newTestRuntime(t, 4)
	r.Launch(func(c *Ctx) {
		var n2 atomic.Int64
		c.Wait(c.ForasyncFuture2D(Range{Lo: 0, Hi: 10, Grain: 2}, Range{Lo: 0, Hi: 7, Grain: 3},
			func(_ *Ctx, i, j int) { n2.Add(1) }))
		if n2.Load() != 70 {
			t.Errorf("2D iterations = %d, want 70", n2.Load())
		}
		var n3 atomic.Int64
		c.Wait(c.ForasyncFuture3D(Range{Lo: 0, Hi: 4, Grain: 1}, Range{Lo: 0, Hi: 5}, Range{Lo: 0, Hi: 6},
			func(_ *Ctx, i, j, k int) { n3.Add(1) }))
		if n3.Load() != 120 {
			t.Errorf("3D iterations = %d, want 120", n3.Load())
		}
	})
}

func TestAsyncCopyHostToHost(t *testing.T) {
	r := newTestRuntime(t, 2)
	mem := r.Model().FirstByKind(platform.KindSysMem)
	r.Launch(func(c *Ctx) {
		src := []float64{1, 2, 3, 4, 5}
		dst := make([]float64, 5)
		c.Wait(c.AsyncCopy(At(mem, dst), At(mem, src), 5))
		for i := range src {
			if dst[i] != src[i] {
				t.Fatalf("dst[%d]=%v", i, dst[i])
			}
		}
		// Offset copy.
		dst2 := make([]float64, 5)
		c.Wait(c.AsyncCopy(AtOff(mem, dst2, 2), AtOff(mem, src, 1), 3))
		if dst2[2] != 2 || dst2[4] != 4 {
			t.Fatalf("offset copy wrong: %v", dst2)
		}
	})
}

func TestAsyncCopyTypeMismatchFailsFuture(t *testing.T) {
	r := newTestRuntime(t, 2)
	mem := r.Model().FirstByKind(platform.KindSysMem)
	if err := r.Launch(func(c *Ctx) {
		f := c.AsyncCopy(At(mem, make([]float64, 3)), At(mem, make([]int, 3)), 3)
		if err := c.GetErr(f); err == nil {
			t.Error("mismatched copy should fail its future")
		}
	}); err != nil {
		t.Fatalf("Launch: %v", err)
	}
}

func TestAsyncCopyOutOfRangeFailsFuture(t *testing.T) {
	r := newTestRuntime(t, 2)
	mem := r.Model().FirstByKind(platform.KindSysMem)
	if err := r.Launch(func(c *Ctx) {
		f := c.AsyncCopy(At(mem, make([]float64, 3)), At(mem, make([]float64, 3)), 5)
		if err := c.GetErr(f); err == nil {
			t.Error("out-of-range copy should fail its future")
		}
	}); err != nil {
		t.Fatalf("Launch: %v", err)
	}
}

func TestRegisteredCopyHandler(t *testing.T) {
	model := platform.DefaultWithGPU(2, 1)
	r, err := New(model, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Shutdown()
	var handled atomic.Bool
	r.RegisterCopyHandler(platform.KindSysMem, platform.KindGPUMem,
		func(c *Ctx, dst, src Buf, n int) *Future {
			handled.Store(true)
			return Satisfied(r, nil)
		})
	mem := model.FirstByKind(platform.KindSysMem)
	gmem := model.FirstByKind(platform.KindGPUMem)
	r.Launch(func(c *Ctx) {
		c.Wait(c.AsyncCopy(At(gmem, nil), At(mem, nil), 0))
	})
	if !handled.Load() {
		t.Fatal("registered handler not invoked")
	}
}

// TestWorkerSubstitution drives all workers into blocking waits and checks
// that the runtime still makes progress via substituted workers.
func TestWorkerSubstitution(t *testing.T) {
	r := newTestRuntime(t, 2)
	r.Launch(func(c *Ctx) {
		c.Finish(func(c *Ctx) {
			// More blocking tasks than workers. Each waits on a promise that
			// is satisfied only by a later task; without substitution the
			// pool would deadlock.
			const n = 8
			proms := make([]*Promise, n+1)
			for i := range proms {
				proms[i] = NewPromise(r)
			}
			for i := 0; i < n; i++ {
				i := i
				c.Async(func(c *Ctx) {
					c.Wait(proms[i].Future()) // blocks until predecessor fires
					c.Put(proms[i+1], nil)
				})
			}
			c.Put(proms[0], nil)
			c.Wait(proms[n].Future())
		})
	})
	if got := r.Stats().Substitutions; got == 0 {
		t.Log("note: chain completed without substitutions (helping sufficed)")
	}
}

// TestBlockingChainDeeperThanPool guarantees substitution is exercised:
// every task blocks on a future only satisfiable by a task spawned later,
// with zero helping possible because dependencies run strictly backward.
func TestBlockingChainDeeperThanPool(t *testing.T) {
	r := newTestRuntime(t, 1) // single worker: must substitute to progress
	done := make(chan struct{})
	go func() {
		r.Launch(func(c *Ctx) {
			c.Finish(func(c *Ctx) {
				p := NewPromise(r)
				c.Async(func(c *Ctx) {
					// This task blocks; the only way the satisfier below runs
					// on a 1-worker pool is a substituted worker.
					c.Wait(p.Future())
				})
				c.Async(func(c *Ctx) {
					time.Sleep(time.Millisecond)
					c.Put(p, nil)
				})
			})
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: worker substitution failed")
	}
}

func TestExternalPromisePut(t *testing.T) {
	r := newTestRuntime(t, 2)
	p := NewPromise(r)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(2 * time.Millisecond)
		p.Put("external") // non-worker goroutine, exercises injector path
	}()
	r.Launch(func(c *Ctx) {
		var got atomic.Value
		c.Finish(func(c *Ctx) {
			c.AsyncAwait(func(c *Ctx) { got.Store(p.Future().Get()) }, p.Future())
		})
		if got.Load() != "external" {
			t.Errorf("got %v", got.Load())
		}
	})
	wg.Wait()
}

func TestFutureWaitFromExternalGoroutine(t *testing.T) {
	r := newTestRuntime(t, 2)
	p := NewPromise(r)
	go r.Launch(func(c *Ctx) {
		c.Put(p, 99)
	})
	if got := p.Future().Get(); got != 99 {
		t.Fatalf("got %v", got)
	}
}

func TestStatsProgress(t *testing.T) {
	r := newTestRuntime(t, 4)
	r.Launch(func(c *Ctx) {
		c.ForasyncSync(Range{Lo: 0, Hi: 10000, Grain: 1}, func(*Ctx, int) {})
	})
	s := r.Stats()
	if s.TasksExecuted == 0 {
		t.Fatal("no tasks recorded")
	}
	if s.Pops+s.Steals == 0 {
		t.Fatal("no pops or steals recorded")
	}
}

func TestYield(t *testing.T) {
	r := newTestRuntime(t, 2)
	r.Launch(func(c *Ctx) {
		var rounds atomic.Int64
		c.Finish(func(c *Ctx) {
			var poll func(*Ctx)
			poll = func(c *Ctx) {
				if rounds.Add(1) < 5 {
					c.Yield(poll)
				}
			}
			c.Async(poll)
		})
		if rounds.Load() != 5 {
			t.Errorf("poll rounds = %d, want 5", rounds.Load())
		}
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil model must error")
	}
	if _, err := New(platform.NewModel(), nil); err == nil {
		t.Fatal("invalid model must error")
	}
}

func TestShutdownIdempotent(t *testing.T) {
	r := NewDefault(2)
	r.Launch(func(c *Ctx) {})
	r.Shutdown()
	r.Shutdown() // second call is a no-op
}

func TestFinalizersRunLIFO(t *testing.T) {
	r := NewDefault(1)
	var order []int
	r.RegisterFinalizer(func() { order = append(order, 1) })
	r.RegisterFinalizer(func() { order = append(order, 2) })
	r.Launch(func(c *Ctx) {})
	r.Shutdown()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("finalizer order = %v, want [2 1]", order)
	}
}

// fib is the classic recursive microbenchmark exercising deep task trees
// and finish nesting.
func fib(c *Ctx, n int) int {
	if n < 2 {
		return n
	}
	if n < 12 { // sequential cutoff
		a, b := 0, 1
		for i := 2; i <= n; i++ {
			a, b = b, a+b
		}
		return b
	}
	var x int
	c.Finish(func(c *Ctx) {
		c.Async(func(c *Ctx) { x = fib(c, n-1) })
	})
	y := fib(c, n-2)
	return x + y
}

func TestFibStress(t *testing.T) {
	r := newTestRuntime(t, 4)
	r.Launch(func(c *Ctx) {
		if got := fib(c, 25); got != 75025 {
			t.Errorf("fib(25) = %d, want 75025", got)
		}
	})
}

func BenchmarkSpawnSync(b *testing.B) {
	r := newTestRuntime(b, 4)
	r.Launch(func(c *Ctx) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Finish(func(c *Ctx) {
				c.Async(func(*Ctx) {})
			})
		}
	})
}

func BenchmarkForasync(b *testing.B) {
	r := newTestRuntime(b, 0)
	r.Launch(func(c *Ctx) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.ForasyncSync(Range{Lo: 0, Hi: 10000, Grain: 64}, func(*Ctx, int) {})
		}
	})
}

func BenchmarkFutureChain(b *testing.B) {
	r := newTestRuntime(b, 2)
	r.Launch(func(c *Ctx) {
		b.ResetTimer()
		f := Satisfied(r, 0)
		for i := 0; i < b.N; i++ {
			f = c.AsyncFutureAwait(func(*Ctx) any { return nil }, f)
		}
		c.Wait(f)
	})
}

func BenchmarkFib(b *testing.B) {
	r := newTestRuntime(b, 0)
	r.Launch(func(c *Ctx) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fib(c, 22)
		}
	})
}

func TestHelpUntilServicesTasksWhileWaiting(t *testing.T) {
	// One worker: the predicate is satisfied by a task that can only run
	// if HelpUntil keeps executing work instead of blocking the worker.
	r := newTestRuntime(t, 1)
	r.Launch(func(c *Ctx) {
		var flag atomic.Bool
		c.Async(func(*Ctx) { flag.Store(true) })
		c.HelpUntil(flag.Load)
		if !flag.Load() {
			t.Error("predicate false after HelpUntil")
		}
	})
}

func TestHelpUntilExternalEvent(t *testing.T) {
	r := newTestRuntime(t, 1)
	var flag atomic.Bool
	go func() {
		time.Sleep(2 * time.Millisecond)
		flag.Store(true) // external event, no task involved
	}()
	r.Launch(func(c *Ctx) {
		c.HelpUntil(flag.Load)
	})
}
