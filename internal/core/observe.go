package core

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strconv"

	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/trace"
)

// This file is the runtime's observability surface: the unified Close
// lifecycle exit, trace exporting, and the pprof label plumbing that tags
// CPU profile samples with the worker and place they executed on.

// Tracer returns the runtime's tracer, or nil when tracing was not armed
// via Options.Trace.
func (r *Runtime) Tracer() *trace.Tracer { return r.tracer }

// Close is the runtime's single shutdown path: it shuts the worker pool
// down (idempotently, like Shutdown), then — exactly once — flushes the
// observability state: derived trace counters are published into
// internal/stats, and if the trace configuration names an output path the
// Chrome trace JSON is written there. The error is the flush error;
// pool shutdown itself cannot fail.
//
// Close supersedes Shutdown on the public facade; Shutdown remains for
// callers that want pool teardown without observability flushing.
//
// When the quiesce watchdog is armed, pool teardown runs under its
// deadline: a shutdown that wedges (a worker stuck in a task body that
// never yields) produces a StallReport, and with Abort set Close
// returns ErrStalled instead of hanging — the pool goroutines are
// abandoned, not reclaimed, since Go cannot preempt them.
func (r *Runtime) Close() error {
	if err := r.shutdownWatched(); err != nil {
		return err
	}
	if r.closed.Swap(true) {
		return nil
	}
	// Policy identity is published even untraced, so a stats report always
	// names the policy that produced its numbers.
	stats.SetGauge("sched", "policy["+r.polName+"]", 1)
	if r.tracer == nil {
		return nil
	}
	// The pool is down and Launch callers have returned: recording is
	// quiescent, so this snapshot is exact.
	r.tracer.Disable()
	r.tracer.Derived().Publish()
	if path := r.opts.Trace.OutPath; path != "" {
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("core: writing trace: %w", err)
		}
		werr := r.tracer.WriteChrome(f)
		cerr := f.Close()
		if werr != nil {
			return fmt.Errorf("core: writing trace: %w", werr)
		}
		if cerr != nil {
			return fmt.Errorf("core: writing trace: %w", cerr)
		}
	}
	return nil
}

// TraceDump writes the Chrome trace-event JSON collected so far to w.
// Recording is paused for the duration of the dump and restored after,
// so a dump taken at quiescence (e.g. between Launch calls) is exact; a
// dump raced by live workers is safe but may clip in-flight events.
// It errors when tracing was not armed.
func (r *Runtime) TraceDump(w io.Writer) error {
	if r.tracer == nil {
		return fmt.Errorf("core: tracing not enabled on this runtime (arm it with Options.Trace)")
	}
	wasEnabled := r.tracer.Enabled()
	r.tracer.Disable()
	err := r.tracer.WriteChrome(w)
	if wasEnabled {
		r.tracer.Enable()
	}
	return err
}

// TraceSummary renders the tracer's plain-text top-N summary, or a note
// when tracing was not armed.
func (r *Runtime) TraceSummary(topN int) string {
	if r.tracer == nil {
		return "trace: tracing not enabled on this runtime\n"
	}
	return r.tracer.Summary(topN)
}

// runLabeled executes fn under pprof labels identifying the worker and
// place, so CPU profiles captured alongside a trace slice by scheduler
// context. Label sets are cached per (worker, place): pprof.Do itself
// still allocates, which is why labels are opt-in via Config.PprofLabels.
func (w *worker) runLabeled(p *platform.Place, fn func(*Ctx), c *Ctx) {
	if w.labelSets == nil {
		w.labelSets = make([]labelSet, len(w.rt.deques))
	}
	ls := &w.labelSets[p.ID]
	if !ls.set {
		ls.labels = pprof.Labels("worker", strconv.Itoa(w.id), "place", p.Name)
		ls.set = true
	}
	pprof.Do(context.Background(), ls.labels, func(context.Context) { fn(c) })
}

// labelSet caches one place's pprof label set for a worker.
type labelSet struct {
	labels pprof.LabelSet
	set    bool
}
