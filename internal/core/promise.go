package core

import (
	"sync"
	"sync/atomic"
)

// A Promise is a single-assignment, thread-safe container for some value.
// A Future is a read-only handle on that value. Together they form a
// flexible point-to-point synchronization channel from one source task to
// many sink tasks: sinks block on the future (or predicate task execution on
// it via AsyncAwait) and are released when some task performs a Put on the
// associated promise.
type Promise struct {
	rt   *Runtime
	mu   sync.Mutex
	done atomic.Bool
	val  any
	err  error // non-nil iff settled by PutErr (a failed future)

	// waiters registered before satisfaction.
	taskWaiters []*Task               // eligible once their dep counters drain
	chanWaiters []chan struct{}       // parked goroutines / substituted workers
	callbacks   []func(v any, err error) // module-internal completion hooks
	fut         Future
}

// Future is a read-only handle on a promise's value.
type Future struct {
	p *Promise
}

// NewPromise creates an unsatisfied promise bound to the given runtime.
// The runtime binding lets Put release dependent tasks into the scheduler.
func NewPromise(rt *Runtime) *Promise {
	p := &Promise{rt: rt}
	p.fut = Future{p: p}
	return p
}

// Future returns the read-only handle on p's value. Every call returns a
// handle on the same underlying promise.
func (p *Promise) Future() *Future { return &p.fut }

// Put satisfies the promise with v, releasing all registered waiters.
// A promise is single-assignment: a second Put panics.
//
// Put may be called from any goroutine. When called from inside a task,
// prefer Ctx.Put, which releases dependent tasks through the calling
// worker's own deques instead of the slower shared injector.
func (p *Promise) Put(v any) { p.put(nil, v) }

// PutErr settles the promise as failed: waiters are released exactly as
// by Put (with a nil value), and the error is retrievable via
// Future.Err. Like Put it is single-assignment.
func (p *Promise) PutErr(err error) { p.putResult(nil, nil, err) }

func (p *Promise) put(c *Ctx, v any) { p.putResult(c, v, nil) }

func (p *Promise) putResult(c *Ctx, v any, err error) {
	p.mu.Lock()
	if p.done.Load() {
		p.mu.Unlock()
		panic("core: promise satisfied twice")
	}
	p.val = v
	p.err = err
	p.done.Store(true)
	tasks := p.taskWaiters
	chans := p.chanWaiters
	cbs := p.callbacks
	p.taskWaiters, p.chanWaiters, p.callbacks = nil, nil, nil
	p.mu.Unlock()

	for _, cb := range cbs {
		cb(v, err)
	}
	for _, t := range tasks {
		if t.deps.dec() {
			p.rt.enqueue(workerOf(c), t)
		}
	}
	for _, ch := range chans {
		close(ch)
	}
}

func workerOf(c *Ctx) *worker {
	if c == nil {
		return nil
	}
	return c.w
}

// Done reports whether the promise has been satisfied.
func (f *Future) Done() bool { return f.p.done.Load() }

// Get blocks the calling goroutine until the future is satisfied and
// returns its value. Inside a task, prefer Ctx.Get, which keeps the worker
// busy with other work while waiting.
func (f *Future) Get() any {
	f.Wait()
	return f.p.val
}

// Wait blocks the calling goroutine until the future is satisfied. Inside a
// task, prefer Ctx.Wait.
func (f *Future) Wait() {
	if f.Done() {
		return
	}
	ch := make(chan struct{})
	if !f.addChanWaiter(ch) {
		return // satisfied in the meantime
	}
	<-ch
}

// Err blocks until the future settles and returns its error: nil for a
// future satisfied by Put, the failure for one settled by PutErr or by
// the execute barrier converting a task-body panic. Inside a task,
// prefer Ctx.GetErr, which keeps the worker busy while waiting.
func (f *Future) Err() error {
	f.Wait()
	return f.p.err
}

// Failed reports whether the future has settled with an error.
func (f *Future) Failed() bool { return f.p.done.Load() && f.p.err != nil }

// valueLocked returns the satisfied value; callers must ensure Done.
func (f *Future) valueLocked() any { return f.p.val }

// errSettled returns the settled error without blocking; callers must
// ensure Done.
func (f *Future) errSettled() error { return f.p.err }

// addChanWaiter registers ch to be closed on satisfaction. It returns false
// if the future is already satisfied (ch is not registered).
func (f *Future) addChanWaiter(ch chan struct{}) bool {
	p := f.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done.Load() {
		return false
	}
	p.chanWaiters = append(p.chanWaiters, ch)
	return true
}

// addTaskWaiter registers t so that when the future is satisfied, t's
// dependency count is decremented (and t enqueued when it drains). Returns
// false if already satisfied, in which case the caller decrements directly.
func (f *Future) addTaskWaiter(t *Task) bool {
	p := f.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done.Load() {
		return false
	}
	p.taskWaiters = append(p.taskWaiters, t)
	return true
}

// OnDone registers fn to run when the future is satisfied (immediately, in
// the caller's goroutine, if it already is). Modules use this to bridge
// completion events into their own bookkeeping; application code should
// prefer AsyncAwait. A failed future invokes fn with a nil value; use
// OnSettled when the error matters.
func (f *Future) OnDone(fn func(any)) {
	f.OnSettled(func(v any, _ error) { fn(v) })
}

// OnSettled registers fn to run when the future settles, receiving both
// the value and the error (nil for success). Like OnDone it runs
// immediately in the caller's goroutine if the future already settled.
func (f *Future) OnSettled(fn func(v any, err error)) {
	p := f.p
	p.mu.Lock()
	if p.done.Load() {
		v, err := p.val, p.err
		p.mu.Unlock()
		fn(v, err)
		return
	}
	p.callbacks = append(p.callbacks, fn)
	p.mu.Unlock()
}

// Satisfied returns a pre-satisfied future holding v; handy for uniform
// APIs where a result may be available immediately.
func Satisfied(rt *Runtime, v any) *Future {
	p := NewPromise(rt)
	p.Put(v)
	return p.Future()
}

// FailedFuture returns a pre-failed future carrying err: the uniform way
// for an asynchronous API to report a call-site validation error without
// introducing a second (synchronous) error path for its callers.
func FailedFuture(rt *Runtime, err error) *Future {
	p := NewPromise(rt)
	p.PutErr(err)
	return p.Future()
}

// WhenAll returns a future settled once all the given futures are. It
// fails with the first (by settlement order) input error, else is
// satisfied with nil. With no arguments the result is already satisfied.
func WhenAll(rt *Runtime, futures ...*Future) *Future {
	out := NewPromise(rt)
	if len(futures) == 0 {
		out.Put(nil)
		return out.Future()
	}
	var remaining atomic.Int64
	var firstErr atomic.Pointer[error]
	remaining.Store(int64(len(futures)))
	for _, f := range futures {
		f.OnSettled(func(_ any, err error) {
			if err != nil {
				firstErr.CompareAndSwap(nil, &err)
			}
			if remaining.Add(-1) == 0 {
				if ep := firstErr.Load(); ep != nil {
					out.PutErr(*ep)
				} else {
					out.Put(nil)
				}
			}
		})
	}
	return out.Future()
}

// depCounter tracks a task's outstanding dependencies. A task with zero
// dependencies is eligible immediately; otherwise the last dependency to
// drain enqueues it. 32 bits keep Task at 32 bytes (the size class the
// task pool and allocator are tuned around); no task awaits 2^31 futures.
type depCounter struct {
	n atomic.Int32
}

func (d *depCounter) set(n int) { d.n.Store(int32(n)) }

// dec decrements and reports whether the count reached zero (i.e. the
// caller must enqueue the task).
func (d *depCounter) dec() bool { return d.n.Add(-1) == 0 }
