package core

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/platform"
)

func newWatchdogRuntime(t *testing.T, workers int, cfg WatchdogConfig) *Runtime {
	t.Helper()
	r, err := New(platform.Default(workers), &Options{Watchdog: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestWatchdogReportsWedgedScope wedges a finish scope on a future that
// is never satisfied and asserts the watchdog trips within the deadline
// with a diagnostic naming the open scope's creation site and the
// blocked workers. The OnStall hook then releases the gate, so the run
// finishes cleanly — proving report-only stalls resume.
func TestWatchdogReportsWedgedScope(t *testing.T) {
	var (
		mu      sync.Mutex
		rep     *StallReport
		release sync.Once
	)
	var r *Runtime
	var gate *Promise
	r = newWatchdogRuntime(t, 2, WatchdogConfig{
		Deadline: 50 * time.Millisecond,
		OnStall: func(s *StallReport) {
			mu.Lock()
			if rep == nil {
				rep = s
			}
			mu.Unlock()
			// Both the Launch and Finish stall timers may trip on the
			// same wedge; the gate is single-assignment.
			release.Do(func() { gate.Put(nil) })
		},
	})
	defer r.Shutdown()
	gate = NewPromise(r)

	start := time.Now()
	err := r.Launch(func(c *Ctx) {
		c.Finish(func(c *Ctx) { // the scope the report must name
			c.Async(func(cc *Ctx) { cc.Wait(gate.Future()) })
		})
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stall resolution took %v", elapsed)
	}

	mu.Lock()
	got := rep
	mu.Unlock()
	if got == nil {
		t.Fatal("watchdog never fired")
	}
	if len(got.OpenScopes) == 0 {
		t.Fatal("report lists no open scopes")
	}
	var namedHere bool
	for _, sc := range got.OpenScopes {
		if strings.Contains(sc.Label, "watchdog_test.go") {
			namedHere = true
		}
	}
	if !namedHere {
		t.Errorf("no open scope names this file: %+v", got.OpenScopes)
	}
	var blocked bool
	for _, w := range got.Workers {
		if w.State == "blocked" || w.State == "parked" {
			blocked = true
		}
	}
	if !blocked {
		t.Errorf("report shows no blocked/parked workers: %+v", got.Workers)
	}
	if !strings.Contains(got.String(), "quiesce watchdog deadline") {
		t.Errorf("rendering lacks the stall banner:\n%s", got)
	}
	if r.Stalls() == 0 {
		t.Error("Stalls() counter not incremented")
	}
}

// TestWatchdogStallLabelNamesEpoch: an elastic job driver stamps its
// epoch/phase via SetStallLabel; a subsequent stall report must carry
// and render them, so a wedged migration names where it stuck.
func TestWatchdogStallLabelNamesEpoch(t *testing.T) {
	var (
		mu      sync.Mutex
		rep     *StallReport
		release sync.Once
	)
	var r *Runtime
	var gate *Promise
	r = newWatchdogRuntime(t, 1, WatchdogConfig{
		Deadline: 50 * time.Millisecond,
		OnStall: func(s *StallReport) {
			mu.Lock()
			if rep == nil {
				rep = s
			}
			mu.Unlock()
			release.Do(func() { gate.Put(nil) })
		},
	})
	defer r.Shutdown()
	gate = NewPromise(r)
	r.SetStallLabel(7, "phase 3")

	if err := r.Launch(func(c *Ctx) {
		c.Async(func(cc *Ctx) { cc.Wait(gate.Future()) })
	}); err != nil {
		t.Fatalf("Launch: %v", err)
	}

	mu.Lock()
	got := rep
	mu.Unlock()
	if got == nil {
		t.Fatal("watchdog never fired")
	}
	if got.Epoch != 7 || got.Phase != "phase 3" {
		t.Fatalf("report labels = (%d, %q), want (7, \"phase 3\")", got.Epoch, got.Phase)
	}
	if !strings.Contains(got.String(), `epoch 7, phase "phase 3"`) {
		t.Errorf("rendering lacks the elastic label:\n%s", got)
	}
}

// TestWatchdogAbortLaunch: with Abort set, a stalled Launch returns
// ErrStalled instead of hanging.
func TestWatchdogAbortLaunch(t *testing.T) {
	r := newWatchdogRuntime(t, 2, WatchdogConfig{
		Deadline: 50 * time.Millisecond,
		OnStall:  func(*StallReport) {}, // keep stderr quiet
		Abort:    true,
	})
	gate := NewPromise(r)
	errc := make(chan error, 1)
	go func() {
		errc <- r.Launch(func(c *Ctx) {
			c.Async(func(cc *Ctx) { cc.Wait(gate.Future()) })
		})
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrStalled) {
			t.Fatalf("Launch = %v, want ErrStalled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("aborting Launch still hung")
	}
	gate.Put(nil) // release the abandoned tree so Shutdown can drain
	r.Shutdown()
}

// TestWatchdogAbortClose: a task body that never yields wedges pool
// teardown; Close trips the watchdog and returns ErrStalled.
func TestWatchdogAbortClose(t *testing.T) {
	r := newWatchdogRuntime(t, 2, WatchdogConfig{
		Deadline: 50 * time.Millisecond,
		OnStall:  func(*StallReport) {},
		Abort:    true,
	})
	var stop atomic.Bool
	var entered atomic.Bool
	r.Launch(func(c *Ctx) {
		c.AsyncDetachedAt(c.Place(), func(*Ctx) {
			entered.Store(true)
			for !stop.Load() {
				time.Sleep(time.Millisecond)
			}
		})
		for !entered.Load() {
			time.Sleep(time.Millisecond)
		}
	})
	err := r.Close()
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("Close = %v, want ErrStalled", err)
	}
	stop.Store(true) // let the abandoned Shutdown goroutine finish
}

// TestWatchdogQuietWhenHealthy: an armed watchdog on a healthy run never
// fires.
func TestWatchdogQuietWhenHealthy(t *testing.T) {
	fired := atomic.Int64{}
	r := newWatchdogRuntime(t, 2, WatchdogConfig{
		Deadline: time.Second,
		OnStall:  func(*StallReport) { fired.Add(1) },
	})
	var n atomic.Int64
	if err := r.Launch(func(c *Ctx) {
		c.Finish(func(c *Ctx) {
			for i := 0; i < 64; i++ {
				c.Async(func(*Ctx) { n.Add(1) })
			}
		})
	}); err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if fired.Load() != 0 {
		t.Errorf("watchdog fired %d times on a healthy run", fired.Load())
	}
	if n.Load() != 64 {
		t.Errorf("ran %d tasks, want 64", n.Load())
	}
}
