package core

import (
	"sync"
	"sync/atomic"
)

// injChunk is the number of task slots per injector ring chunk.
const injChunk = 64

// injNode is one fixed-size chunk of the injector's linked ring.
type injNode struct {
	next  *injNode
	tasks [injChunk]*Task
}

// injector is a mutex-guarded MPSC queue per place for tasks released by
// code running outside any worker (external goroutines, Promise.Put from
// simulated hardware completion goroutines, ...). Workers check injectors
// on their steal paths. The atomic count keeps the empty check lock-free.
//
// Storage is a chunked ring: a linked list of fixed-size arrays consumed
// head-first. Unlike the earlier q = q[1:] slice-shift queue, taking a task
// nils its slot immediately — a popped *Task (and the closure it carries) is
// never pinned by the backing array — and neither push nor take ever shifts
// or reallocates existing elements. One drained chunk is cached for reuse so
// a steady produce/consume cycle allocates nothing.
type injector struct {
	n    atomic.Int64
	mu   sync.Mutex
	head *injNode // consume side: tasks[hoff] is the next task out
	tail *injNode // produce side: tasks[toff] is the next free slot
	hoff int
	toff int
	free *injNode // single drained chunk kept for reuse
}

func (in *injector) push(t *Task) {
	in.mu.Lock()
	if in.tail == nil {
		nd := in.newNodeLocked()
		in.head, in.tail = nd, nd
		in.hoff, in.toff = 0, 0
	} else if in.toff == injChunk {
		nd := in.newNodeLocked()
		in.tail.next = nd
		in.tail = nd
		in.toff = 0
	}
	in.tail.tasks[in.toff] = t
	in.toff++
	in.mu.Unlock()
	in.n.Add(1)
}

func (in *injector) take() *Task {
	if in.n.Load() == 0 {
		return nil
	}
	in.mu.Lock()
	if in.head == nil || (in.head == in.tail && in.hoff == in.toff) {
		in.mu.Unlock()
		return nil
	}
	t := in.head.tasks[in.hoff]
	in.head.tasks[in.hoff] = nil // release the reference: nothing pins popped tasks
	in.hoff++
	if in.hoff == injChunk {
		nd := in.head
		in.head = nd.next
		in.hoff = 0
		if in.head == nil {
			in.tail = nil
			in.toff = 0
		}
		nd.next = nil
		in.free = nd // slots already nil'd one by one above
	}
	in.mu.Unlock()
	in.n.Add(-1)
	return t
}

func (in *injector) newNodeLocked() *injNode {
	if nd := in.free; nd != nil {
		in.free = nil
		return nd
	}
	return &injNode{}
}
