package core

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/platform"
)

// TestFinishFutureNonBlocking: FinishFuture must return before the scope
// drains and satisfy the future when it does.
func TestFinishFutureNonBlocking(t *testing.T) {
	r := newTestRuntime(t, 2)
	r.Launch(func(c *Ctx) {
		gate := NewPromise(r)
		var done atomic.Bool
		f := c.FinishFuture(func(c *Ctx) {
			c.Async(func(c *Ctx) {
				c.Wait(gate.Future())
				done.Store(true)
			})
		})
		if f.Done() {
			t.Error("finish future done before scope drained")
		}
		c.Put(gate, nil)
		c.Wait(f)
		if !done.Load() {
			t.Error("scope future satisfied before its tasks finished")
		}
	})
}

// TestAsyncDetachedNotWaitedByFinish: detached tasks must not hold up
// enclosing finish scopes.
func TestAsyncDetachedNotWaitedByFinish(t *testing.T) {
	r := newTestRuntime(t, 2)
	r.Launch(func(c *Ctx) {
		release := NewPromise(r)
		started := make(chan struct{})
		c.Finish(func(c *Ctx) {
			c.AsyncDetachedAt(c.Place(), func(cc *Ctx) {
				close(started)
				cc.Wait(release.Future()) // would deadlock the finish if attached
			})
		})
		// Finish returned while the detached task still runs.
		<-started
		c.Put(release, nil)
	})
}

// TestSpawnDetachedAtFromExternalGoroutine: the external spawn path used
// by module completion callbacks.
func TestSpawnDetachedAtFromExternalGoroutine(t *testing.T) {
	r := newTestRuntime(t, 2)
	r.Start()
	ran := make(chan struct{})
	go r.SpawnDetachedAt(r.Model().Place(0), func(*Ctx) { close(ran) })
	select {
	case <-ran:
	case <-time.After(10 * time.Second):
		t.Fatal("externally spawned detached task never ran")
	}
}

// TestSubstitutionBudgetExhaustion: with MaxBlockedWorkers=1, a second
// simultaneous blocking wait degrades to plain parking but must still
// complete once its future is satisfied externally.
func TestSubstitutionBudgetExhaustion(t *testing.T) {
	model := platform.Default(2)
	r, err := New(model, &Options{MaxBlockedWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Shutdown()
	p1 := NewPromise(r)
	p2 := NewPromise(r)
	done := make(chan struct{})
	go func() {
		r.Launch(func(c *Ctx) {
			c.Finish(func(c *Ctx) {
				c.Async(func(cc *Ctx) { cc.Wait(p1.Future()) })
				c.Async(func(cc *Ctx) { cc.Wait(p2.Future()) })
			})
		})
		close(done)
	}()
	time.Sleep(5 * time.Millisecond) // let both tasks block
	p1.Put(nil)
	p2.Put(nil)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("blocking beyond the substitution budget deadlocked")
	}
	if r.Stats().Substitutions > 1 {
		t.Fatalf("substitutions = %d, budget was 1", r.Stats().Substitutions)
	}
}

// TestYieldFairness: a repeatedly yielding task must not starve a task
// enqueued at the same place (the poller-shadowing regression).
func TestYieldFairness(t *testing.T) {
	r := newTestRuntime(t, 1) // single worker: fairness must come from Yield itself
	r.Launch(func(c *Ctx) {
		var other atomic.Bool
		c.Finish(func(c *Ctx) {
			var spin func(*Ctx)
			rounds := 0
			spin = func(cc *Ctx) {
				rounds++
				if other.Load() || rounds > 10000 {
					return
				}
				cc.Yield(spin)
			}
			c.Async(spin)
			c.Async(func(*Ctx) { other.Store(true) })
		})
		if !other.Load() {
			t.Error("yielding task starved its sibling")
		}
	})
}

// TestForasyncNestedScopes: forasync bodies can open their own finish
// scopes and spawn, and the outer sync still waits for everything.
func TestForasyncNestedScopes(t *testing.T) {
	r := newTestRuntime(t, 4)
	r.Launch(func(c *Ctx) {
		var n atomic.Int64
		c.ForasyncSync(Range{Lo: 0, Hi: 20, Grain: 2}, func(cc *Ctx, i int) {
			cc.Finish(func(cc *Ctx) {
				for j := 0; j < 5; j++ {
					cc.Async(func(*Ctx) { n.Add(1) })
				}
			})
		})
		if n.Load() != 100 {
			t.Errorf("nested iterations = %d, want 100", n.Load())
		}
	})
}

// TestStatsSubstitutionCounted: a forced park must be visible in Stats.
func TestStatsSubstitutionCounted(t *testing.T) {
	r := newTestRuntime(t, 2)
	p := NewPromise(r)
	go func() {
		time.Sleep(2 * time.Millisecond)
		p.Put(nil)
	}()
	r.Launch(func(c *Ctx) {
		c.Wait(p.Future())
	})
	s := r.Stats()
	if s.Substitutions == 0 {
		t.Skip("future satisfied before the worker parked (timing)")
	}
	if s.MaxWorkerIDs <= r.NumWorkers() {
		t.Fatalf("substitution did not activate a new identity: %d", s.MaxWorkerIDs)
	}
}

// TestGetTypedValues: futures carry arbitrary values through Ctx.Get.
func TestGetTypedValues(t *testing.T) {
	r := newTestRuntime(t, 2)
	r.Launch(func(c *Ctx) {
		type pair struct{ a, b int }
		f := c.AsyncFuture(func(*Ctx) any { return pair{1, 2} })
		if got := c.Get(f).(pair); got.a != 1 || got.b != 2 {
			t.Errorf("got %+v", got)
		}
		fn := c.AsyncFuture(func(*Ctx) any { return nil })
		if got := c.Get(fn); got != nil {
			t.Errorf("nil-valued future returned %v", got)
		}
	})
}
