package core

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestInjectorFIFOAcrossChunks(t *testing.T) {
	var in injector
	const total = 3*injChunk + 7 // spans chunk boundaries
	tasks := make([]*Task, total)
	for i := range tasks {
		tasks[i] = &Task{}
		in.push(tasks[i])
	}
	if got := in.n.Load(); got != total {
		t.Fatalf("count = %d, want %d", got, total)
	}
	for i := 0; i < total; i++ {
		if got := in.take(); got != tasks[i] {
			t.Fatalf("take %d: wrong task (FIFO order violated)", i)
		}
	}
	if in.take() != nil {
		t.Fatal("take on empty injector should return nil")
	}
}

// TestInjectorSteadyStateAllocs checks the chunk-recycling path: a steady
// produce/consume cycle reuses the one cached drained chunk instead of
// allocating a new chunk per injChunk pushes.
func TestInjectorSteadyStateAllocs(t *testing.T) {
	var in injector
	tk := &Task{}
	// Prime: allocate the initial chunk and reach steady state.
	for i := 0; i < 2*injChunk; i++ {
		in.push(tk)
		in.take()
	}
	avg := testing.AllocsPerRun(4*injChunk, func() {
		in.push(tk)
		in.take()
	})
	if avg != 0 {
		t.Fatalf("steady-state push/take allocates %.2f objects/op, want 0", avg)
	}
}

// TestInjectorReleasesTakenTasks is the regression test for the injector
// memory-retention bug: the old slice-shift queue (q = q[1:]) kept every
// popped *Task — and the closure it carries — reachable through the backing
// array until the whole slice was reallocated. The chunked ring must nil a
// task's slot the moment it is taken, so a popped task becomes collectible
// as soon as the runtime is done with it.
func TestInjectorReleasesTakenTasks(t *testing.T) {
	in := &injector{}
	const total = 2 * injChunk // cover both in-use and recycled chunks
	var finalized atomic.Int64
	for i := 0; i < total; i++ {
		tk := &Task{fn: func(*Ctx) {}}
		runtime.SetFinalizer(tk, func(*Task) { finalized.Add(1) })
		in.push(tk)
	}
	for i := 0; i < total; i++ {
		if in.take() == nil {
			t.Fatalf("take %d returned nil", i)
		}
	}
	// All taken tasks are now unreferenced — unless the injector's storage
	// still pins them.
	deadline := time.Now().Add(5 * time.Second)
	for finalized.Load() < total {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d taken tasks were collected; injector storage still pins popped tasks",
				finalized.Load(), total)
		}
		runtime.GC()
		time.Sleep(time.Millisecond)
	}
	runtime.KeepAlive(in)
}
