package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// stderr is where stall reports land when no OnStall hook is installed;
// a variable so tests can capture it.
var stderr io.Writer = os.Stderr

// The quiesce watchdog turns the worst failure mode a task runtime has —
// a finish scope that never drains, hanging Launch or Close forever with
// no diagnostic — into a structured report. It is opt-in (Options.
// Watchdog); when armed, finish scopes register their creation site, and
// workers publish a coarse state (running / parked / blocked) that the
// report snapshots. When a monitored wait (the Launch root scope, a
// Finish body's drain, Close's pool teardown) outlives the deadline, the
// watchdog assembles a StallReport — open scopes, per-place queue
// depths, worker states, and the tail of the trace rings when tracing is
// armed — and hands it to OnStall instead of silently hanging.

// ErrStalled is returned (wrapped, with the report's rendering) by
// Launch and Close when the watchdog deadline expires and Abort is set.
var ErrStalled = errors.New("core: quiesce watchdog deadline exceeded")

// WatchdogConfig arms the quiesce watchdog (see Options.Watchdog).
type WatchdogConfig struct {
	// Deadline is how long a monitored wait (Launch's root finish scope,
	// a Finish drain, Close) may remain unsatisfied before the watchdog
	// trips. Required: a zero deadline leaves the watchdog unarmed.
	Deadline time.Duration
	// OnStall, if non-nil, receives the diagnostic when the watchdog
	// trips. When nil the report is written to stderr.
	OnStall func(*StallReport)
	// Abort makes Launch and Close return ErrStalled (wrapped with the
	// report) instead of resuming the wait after reporting. The stalled
	// task tree is abandoned, not cancelled: Go cannot preempt a wedged
	// task body, so Abort trades a clean hang for a live caller.
	Abort bool
}

// ScopeInfo describes one open finish scope in a stall report.
type ScopeInfo struct {
	Label   string        // creation site, file:line outside the runtime
	Age     time.Duration // time since the scope was opened
	Pending int64         // unreleased references (body + live tasks)
}

// PlaceDepth is one place's pending-task count in a stall report.
type PlaceDepth struct {
	Place   string
	Pending int64
}

// WorkerInfo is one worker's state in a stall report.
type WorkerInfo struct {
	ID    int
	State string // "running", "parked", "blocked", "scanning"
	Place string // place of the task being run, when running
}

// StallReport is the structured diagnostic a tripped watchdog produces.
type StallReport struct {
	Op         string        // the wait that stalled ("Launch", "Finish", "Close")
	Deadline   time.Duration // the configured deadline that expired
	OpenScopes []ScopeInfo   // registered finish scopes still undrained
	Places     []PlaceDepth  // places with pending tasks
	Workers    []WorkerInfo  // per-worker states (active identities only)
	TraceTail  []trace.Event // last events from the trace rings, if armed

	// Epoch and Phase name where an elastic job was when the stall
	// tripped (set via Runtime.SetStallLabel; zero/empty otherwise). A
	// migration or resize that wedges mid-protocol is diagnosable only
	// if the report says which epoch it wedged in.
	Epoch uint64
	Phase string
}

// String renders the report as the multi-line diagnostic logged on
// stall.
func (s *StallReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: %s stalled: quiesce watchdog deadline (%v) exceeded\n", s.Op, s.Deadline)
	if s.Phase != "" || s.Epoch != 0 {
		fmt.Fprintf(&b, "  elastic: epoch %d, phase %q\n", s.Epoch, s.Phase)
	}
	fmt.Fprintf(&b, "  open finish scopes (%d):\n", len(s.OpenScopes))
	for _, sc := range s.OpenScopes {
		fmt.Fprintf(&b, "    %s: %d pending refs, open %v\n", sc.Label, sc.Pending, sc.Age.Round(time.Millisecond))
	}
	fmt.Fprintf(&b, "  queue depths:\n")
	if len(s.Places) == 0 {
		fmt.Fprintf(&b, "    (all places drained)\n")
	}
	for _, p := range s.Places {
		fmt.Fprintf(&b, "    %s: %d pending\n", p.Place, p.Pending)
	}
	fmt.Fprintf(&b, "  workers:\n")
	for _, w := range s.Workers {
		if w.Place != "" {
			fmt.Fprintf(&b, "    worker %d: %s at %s\n", w.ID, w.State, w.Place)
		} else {
			fmt.Fprintf(&b, "    worker %d: %s\n", w.ID, w.State)
		}
	}
	if len(s.TraceTail) > 0 {
		fmt.Fprintf(&b, "  last %d trace events:\n", len(s.TraceTail))
		for _, ev := range s.TraceTail {
			fmt.Fprintf(&b, "    %v\n", ev)
		}
	}
	return b.String()
}

// Worker watchdog states, published (only while armed) at the few points
// a worker's activity class changes.
const (
	wsScanning int32 = iota // looking for work / spinning
	wsRunning               // executing a task body
	wsParked                // parked on the idle list
	wsBlocked               // suspended in waitOn on an unsatisfied future
)

func wsName(s int32) string {
	switch s {
	case wsRunning:
		return "running"
	case wsParked:
		return "parked"
	case wsBlocked:
		return "blocked"
	default:
		return "scanning"
	}
}

// watchdogState is the armed watchdog's runtime-side bookkeeping: the
// configuration plus the registry of open finish scopes.
type watchdogState struct {
	cfg WatchdogConfig
	rt  *Runtime

	mu     sync.Mutex
	scopes map[*finishScope]struct{}
	epoch  uint64 // elastic labels stamped into reports
	phase  string

	stalls atomic.Int64 // reports produced (observability/testing)
}

func newWatchdogState(rt *Runtime, cfg WatchdogConfig) *watchdogState {
	return &watchdogState{cfg: cfg, rt: rt, scopes: make(map[*finishScope]struct{})}
}

// register adds a freshly created scope to the open-scope registry,
// stamping its creation site and time.
func (wd *watchdogState) register(fs *finishScope) {
	fs.wd = wd
	fs.label = callerOutsideCore()
	fs.born = time.Now()
	wd.mu.Lock()
	wd.scopes[fs] = struct{}{}
	wd.mu.Unlock()
}

// unregister removes a drained scope.
func (wd *watchdogState) unregister(fs *finishScope) {
	wd.mu.Lock()
	delete(wd.scopes, fs)
	wd.mu.Unlock()
}

// callerOutsideCore walks the stack for the first frame outside
// internal/core — the application line that opened the scope.
func callerOutsideCore() string {
	var pcs [16]uintptr
	n := runtime.Callers(2, pcs[:])
	frames := runtime.CallersFrames(pcs[:n])
	for {
		fr, more := frames.Next()
		// The package's own tests share the import path; their frames
		// are application code for labeling purposes.
		if !strings.Contains(fr.Function, "repro/internal/core.") ||
			strings.HasSuffix(fr.File, "_test.go") {
			return fmt.Sprintf("%s:%d", fr.File, fr.Line)
		}
		if !more {
			return fmt.Sprintf("%s:%d", fr.File, fr.Line)
		}
	}
}

// report assembles the stall diagnostic for a wait on op.
func (wd *watchdogState) report(op string) *StallReport {
	r := wd.rt
	rep := &StallReport{Op: op, Deadline: wd.cfg.Deadline}

	wd.mu.Lock()
	rep.Epoch, rep.Phase = wd.epoch, wd.phase
	now := time.Now()
	for fs := range wd.scopes {
		rep.OpenScopes = append(rep.OpenScopes, ScopeInfo{
			Label:   fs.label,
			Age:     now.Sub(fs.born),
			Pending: fs.count.Load(),
		})
	}
	wd.mu.Unlock()
	sort.Slice(rep.OpenScopes, func(i, j int) bool {
		if rep.OpenScopes[i].Age != rep.OpenScopes[j].Age {
			return rep.OpenScopes[i].Age > rep.OpenScopes[j].Age
		}
		return rep.OpenScopes[i].Label < rep.OpenScopes[j].Label
	})

	for pid := range r.pendingPerPlace {
		if n := r.pendingPerPlace[pid].Load(); n > 0 {
			rep.Places = append(rep.Places, PlaceDepth{Place: r.model.Place(pid).Name, Pending: n})
		}
	}

	active := int(r.maxUsed.Load())
	for id := 0; id < active && id < len(r.workers); id++ {
		w := r.workers[id]
		wi := WorkerInfo{ID: id, State: wsName(w.wdState.Load())}
		if wi.State == "running" {
			if pid := w.wdPlace.Load(); pid >= 0 && int(pid) < r.model.NumPlaces() {
				wi.Place = r.model.Place(int(pid)).Name
			}
		}
		rep.Workers = append(rep.Workers, wi)
	}

	if r.tracer != nil {
		evs := r.tracer.Events()
		const tail = 16
		if len(evs) > tail {
			evs = evs[len(evs)-tail:]
		}
		rep.TraceTail = evs
	}
	wd.stalls.Add(1)
	return rep
}

// fire produces and delivers the report for op.
func (wd *watchdogState) fire(op string) *StallReport {
	rep := wd.report(op)
	if wd.cfg.OnStall != nil {
		wd.cfg.OnStall(rep)
	} else {
		fmt.Fprint(stderr, rep.String())
	}
	return rep
}

// rootWait waits for the Launch root scope's future under the watchdog
// deadline. With Abort set, an expired deadline abandons the wait and
// returns ErrStalled wrapped with the report; otherwise the stall is
// reported once and the wait resumes indefinitely.
func (r *Runtime) rootWait(f *Future) error {
	wd := r.watch
	if wd == nil {
		f.Wait()
		return nil
	}
	ch := make(chan struct{})
	if !f.addChanWaiter(ch) {
		return nil
	}
	timer := time.NewTimer(wd.cfg.Deadline)
	defer timer.Stop()
	select {
	case <-ch:
		return nil
	case <-timer.C:
		rep := wd.fire("Launch")
		if wd.cfg.Abort {
			return fmt.Errorf("%w\n%s", ErrStalled, rep)
		}
		<-ch
		return nil
	}
}

// armStallTimer starts a one-shot stall report for a Finish drain,
// returning the cancel func the caller runs once the wait completes.
// Report-only: a worker-helping wait inside a task cannot be abandoned
// the way Launch's root wait can.
func (r *Runtime) armStallTimer(op string) func() {
	wd := r.watch
	if wd == nil {
		return func() {}
	}
	t := time.AfterFunc(wd.cfg.Deadline, func() { wd.fire(op) })
	return func() { t.Stop() }
}

// shutdownWatched runs pool teardown under the watchdog deadline (plain
// Shutdown when unarmed). On Abort the Shutdown goroutine is abandoned,
// still blocked on whatever wedged the pool; the report is the caller's
// only recourse.
func (r *Runtime) shutdownWatched() error {
	wd := r.watch
	if wd == nil {
		r.Shutdown()
		return nil
	}
	done := make(chan struct{})
	go func() {
		r.Shutdown()
		close(done)
	}()
	timer := time.NewTimer(wd.cfg.Deadline)
	defer timer.Stop()
	select {
	case <-done:
		return nil
	case <-timer.C:
		rep := wd.fire("Close")
		if wd.cfg.Abort {
			return fmt.Errorf("%w\n%s", ErrStalled, rep)
		}
		<-done
		return nil
	}
}

// SetStallLabel stamps the elastic epoch and phase a job driver is
// executing into subsequent stall reports, so a wedged migration or
// resize names where it stuck. No-op when the watchdog is unarmed.
func (r *Runtime) SetStallLabel(epoch uint64, phase string) {
	wd := r.watch
	if wd == nil {
		return
	}
	wd.mu.Lock()
	wd.epoch, wd.phase = epoch, phase
	wd.mu.Unlock()
}

// Stalls reports how many stall diagnostics the watchdog has produced
// (0 when unarmed).
func (r *Runtime) Stalls() int64 {
	if r.watch == nil {
		return 0
	}
	return r.watch.stalls.Load()
}
