package core

import "repro/internal/platform"

// Range describes a 1D iteration space [Lo, Hi) with a sequential grain
// size: subranges at or below Grain iterations execute sequentially inside
// one task.
type Range struct {
	Lo, Hi int
	Grain  int
}

func (r Range) grain() int {
	if r.Grain <= 0 {
		return 1
	}
	return r.Grain
}

// Forasync executes body for every index in r as a tree of tasks spawned by
// recursive binary splitting, registered with the current finish scope. It
// returns immediately; wrap it in Finish (or use ForasyncFuture) to wait.
func (c *Ctx) Forasync(r Range, body func(*Ctx, int)) {
	c.forasyncAt(c.place, r, body)
}

// ForasyncAt is Forasync with all loop tasks placed at p.
func (c *Ctx) ForasyncAt(p *platform.Place, r Range, body func(*Ctx, int)) {
	c.forasyncAt(p, r, body)
}

func (c *Ctx) forasyncAt(p *platform.Place, r Range, body func(*Ctx, int)) {
	if r.Hi <= r.Lo {
		return
	}
	g := r.grain()
	var split func(cc *Ctx, lo, hi int)
	split = func(cc *Ctx, lo, hi int) {
		for hi-lo > g {
			mid := lo + (hi-lo)/2
			hi2 := hi
			cc.AsyncAt(p, func(c2 *Ctx) { split(c2, mid, hi2) })
			hi = mid
		}
		for i := lo; i < hi; i++ {
			body(cc, i)
		}
	}
	c.AsyncAt(p, func(cc *Ctx) { split(cc, r.Lo, r.Hi) })
}

// ForasyncFuture is Forasync wrapped in its own finish scope; the returned
// future is satisfied when every iteration has completed.
func (c *Ctx) ForasyncFuture(r Range, body func(*Ctx, int)) *Future {
	return c.FinishFuture(func(cc *Ctx) {
		cc.Forasync(r, body)
	})
}

// ForasyncSync is Forasync wrapped in a blocking finish: it returns only
// when every iteration has completed.
func (c *Ctx) ForasyncSync(r Range, body func(*Ctx, int)) {
	c.Finish(func(cc *Ctx) {
		cc.Forasync(r, body)
	})
}

// Forasync2D executes body(i, j) over the product of the two ranges; the
// outer dimension is split into tasks, the inner runs inside each task with
// its own grain-based chunking.
func (c *Ctx) Forasync2D(ri, rj Range, body func(*Ctx, int, int)) {
	c.Forasync(ri, func(cc *Ctx, i int) {
		g := rj.grain()
		for lo := rj.Lo; lo < rj.Hi; lo += g {
			hi := lo + g
			if hi > rj.Hi {
				hi = rj.Hi
			}
			for j := lo; j < hi; j++ {
				body(cc, i, j)
			}
		}
	})
}

// Forasync3D executes body(i, j, k) over three ranges: the i dimension is
// task-split; j and k iterate sequentially within each i-task. This matches
// typical stencil decompositions where one axis is distributed.
func (c *Ctx) Forasync3D(ri, rj, rk Range, body func(*Ctx, int, int, int)) {
	c.Forasync(ri, func(cc *Ctx, i int) {
		for j := rj.Lo; j < rj.Hi; j++ {
			for k := rk.Lo; k < rk.Hi; k++ {
				body(cc, i, j, k)
			}
		}
	})
}

// ForasyncFuture2D is Forasync2D in its own finish scope.
func (c *Ctx) ForasyncFuture2D(ri, rj Range, body func(*Ctx, int, int)) *Future {
	return c.FinishFuture(func(cc *Ctx) { cc.Forasync2D(ri, rj, body) })
}

// ForasyncFuture3D is Forasync3D in its own finish scope.
func (c *Ctx) ForasyncFuture3D(ri, rj, rk Range, body func(*Ctx, int, int, int)) *Future {
	return c.FinishFuture(func(cc *Ctx) { cc.Forasync3D(ri, rj, rk, body) })
}
