package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/deque"
	"repro/internal/platform"
	"repro/internal/trace"
)

// Options tunes runtime construction. The zero value gives sensible
// defaults.
type Options struct {
	// MaxBlockedWorkers bounds how many workers may simultaneously be
	// parked on unsatisfied futures with substitutes running in their
	// stead. Beyond the bound, blocking degrades to plain parking (no
	// substitute), which is safe but temporarily loses parallelism.
	// Default 256.
	MaxBlockedWorkers int
	// SpinRounds is how many full pop+steal scans a worker performs
	// (yielding between rounds) before parking. Default 2.
	SpinRounds int
	// Trace, when non-nil, arms runtime-wide tracing with the given
	// configuration: per-worker event rings recording the full task
	// lifecycle, exportable as Chrome trace JSON via Runtime.TraceDump.
	// A nil Trace costs the hot path one pointer check.
	Trace *trace.Config
	// Watchdog, when non-nil with a positive Deadline, arms the quiesce
	// watchdog: a monitored wait (Launch's root scope, a Finish drain,
	// Close) that outlives the deadline produces a structured StallReport
	// instead of hanging silently. A nil Watchdog costs the hot path one
	// pointer check.
	Watchdog *WatchdogConfig
	// Policy selects the scheduling policy (pop order, steal-victim
	// selection and batch sizing, place-group resolution). Nil — or a
	// policy whose NewRuntime returns nil, like the default random-steal —
	// keeps the built-in inline fast path; see internal/core/policy.go.
	Policy SchedPolicy
}

func (o *Options) withDefaults() Options {
	out := Options{MaxBlockedWorkers: 256, SpinRounds: 2}
	if o != nil {
		if o.MaxBlockedWorkers > 0 {
			out.MaxBlockedWorkers = o.MaxBlockedWorkers
		}
		if o.SpinRounds > 0 {
			out.SpinRounds = o.SpinRounds
		}
		out.Trace = o.Trace
		if o.Watchdog != nil && o.Watchdog.Deadline > 0 {
			cfg := *o.Watchdog
			out.Watchdog = &cfg
		}
		out.Policy = o.Policy
	}
	return out
}

const (
	// taskPoolCap bounds each worker's Task free-list; beyond it, retired
	// tasks are left for the garbage collector.
	taskPoolCap = 256
	// stealBatchMax caps how many tasks one StealBatch visit migrates.
	stealBatchMax = 16
)

// worker is a worker identity: the owner of one deque column across all
// places. Identities 0..N-1 are the configured workers; higher identities
// are used by substitution workers spawned while a peer is blocked.
type worker struct {
	id    int
	rt    *Runtime
	group int // path-group: which configured worker's paths this identity runs
	pop   []*platform.Place
	steal []*platform.Place
	rng   uint64

	// covers[placeID] reports whether the place is on this worker's pop or
	// steal path; popCover restricts to the pop path. Targeted wake-ups
	// consult covers, steal batching consults popCover. Shared per path
	// group (substitutes inherit the blocked worker's slices).
	covers   []bool
	popCover []bool

	// park is the worker's private parking slot: a one-token channel a
	// waker signals to unpark exactly this worker.
	park chan struct{}

	// taskPool is a free-list of retired Task structs, pushed by execute
	// and popped by spawn. Single-goroutine access only (the worker that
	// owns this identity), so steady-state spawn→run→retire cycles
	// allocate zero tasks with zero synchronization.
	taskPool []*Task

	// tr/ring are the tracing hooks: nil tr means tracing was never armed
	// and every instrumentation site costs one pointer check. ring is this
	// identity's single-writer event buffer. spawnTick drives periodic
	// queue-depth sampling; labelSets caches per-place pprof label sets.
	tr        *trace.Tracer
	ring      *trace.Ring
	spawnTick uint32
	labelSets []labelSet

	// stealBuf is scratch space for StealBatch visits.
	stealBuf [stealBatchMax]*Task

	// pw is the policy seam: nil selects the built-in random-steal fast
	// path in findWork; non-nil delegates pop order, victim selection, and
	// batch sizing to the plugin (findWorkPolicy). popOrder/victimBuf are
	// its allocation-free scratch, sized at attachPolicyWorker.
	pw        PolicyWorker
	popOrder  []int32
	victimBuf []int32

	// wdState/wdPlace publish the worker's activity class for the quiesce
	// watchdog's stall report. Written only when the watchdog is armed
	// (rt.watch non-nil); otherwise each site costs one pointer check.
	wdState atomic.Int32
	wdPlace atomic.Int32

	// statistics (atomics so Stats can read them live)
	tasks   atomic.Uint64
	pops    atomic.Uint64
	steals  atomic.Uint64
	parks   atomic.Uint64
	batched atomic.Uint64
}

// Runtime is the generalized work-stealing runtime: a persistent pool of
// workers executing tasks from per-place, per-worker deques according to
// the platform model's pop and steal paths.
type Runtime struct {
	model *platform.Model
	opts  Options

	nWorkers int // configured (target active) worker count
	maxIDs   int // worker identity columns (nWorkers + substitution slots)

	deques          [][]deque.Deque[Task] // [placeID][workerID]
	inject          []injector            // [placeID]
	pendingPerPlace []atomic.Int64
	covered         []bool // placeID -> reachable by some path

	workers []*worker // all identities
	freeIDs chan int  // identities available for substitution workers
	maxUsed atomic.Int64

	// idle is a stack of parked workers. Enqueues wake at most one idle
	// worker covering the task's place (targeted wake-up); the broadcast
	// path (wakeAll) is reserved for shutdown and retire requests.
	idleMu    sync.Mutex
	idle      []*worker
	idleCount atomic.Int64

	// retireGroup[g] counts surplus runners that should retire from path
	// group g. Retirement is group-aware: when a blocked worker resumes,
	// only a runner covering the same places may exit, otherwise a
	// special-purpose place (e.g. the Interconnect) could lose its only
	// active servicer while its owner is still blocked.
	retireGroup   []atomic.Int64
	substitutions atomic.Uint64
	stopped       atomic.Bool
	started       atomic.Bool
	runners       sync.WaitGroup

	copyHandlers map[[2]platform.Kind]CopyHandler

	// tracer is non-nil iff Options.Trace armed tracing; closed latches
	// the one-shot flush work Close performs after Shutdown.
	tracer *trace.Tracer
	closed atomic.Bool

	// watch is non-nil iff Options.Watchdog armed the quiesce watchdog.
	watch *watchdogState

	// pol is the active policy's per-runtime state; nil means the built-in
	// random-steal fast path (either no Options.Policy, or a policy whose
	// NewRuntime returned nil). polName always names the active policy.
	pol     PolicyRuntime
	polName string

	// finalizers registered by modules, run during Shutdown.
	finalizeMu sync.Mutex
	finalizers []func()
}

// New builds a runtime over the given platform model. The model must
// validate; its worker specifications define the pool size and each
// worker's pop and steal paths.
func New(model *platform.Model, opts *Options) (*Runtime, error) {
	if model == nil {
		return nil, fmt.Errorf("core: nil platform model")
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	n := model.NumWorkers()
	r := &Runtime{
		model:        model,
		opts:         o,
		nWorkers:     n,
		maxIDs:       n + o.MaxBlockedWorkers,
		copyHandlers: make(map[[2]platform.Kind]CopyHandler),
	}
	np := model.NumPlaces()
	r.deques = make([][]deque.Deque[Task], np)
	for p := 0; p < np; p++ {
		r.deques[p] = make([]deque.Deque[Task], r.maxIDs)
	}
	r.inject = make([]injector, np)
	r.pendingPerPlace = make([]atomic.Int64, np)
	r.covered = make([]bool, np)
	for id := range model.CoveredPlaces() {
		r.covered[id] = true
	}
	r.polName = "random-steal"
	if o.Policy != nil {
		r.polName = o.Policy.Name()
		r.pol = o.Policy.NewRuntime(PolicyEnv{
			Model:    model,
			NWorkers: n,
			MaxIDs:   r.maxIDs,
			Pending:  func(pid int) int64 { return r.pendingPerPlace[pid].Load() },
		})
	}

	resolve := func(ids []int) []*platform.Place {
		out := make([]*platform.Place, len(ids))
		for i, id := range ids {
			out[i] = model.Place(id)
		}
		return out
	}
	// One coverage pair per path group, shared by every identity (and
	// substitute) running that group's paths.
	groupPop := make([][]*platform.Place, n)
	groupSteal := make([][]*platform.Place, n)
	groupCovers := make([][]bool, n)
	groupPopCover := make([][]bool, n)
	for g := 0; g < n; g++ {
		spec := model.Workers()[g]
		groupPop[g] = resolve(spec.Pop)
		groupSteal[g] = resolve(spec.Steal)
		cov := make([]bool, np)
		pc := make([]bool, np)
		for _, p := range groupPop[g] {
			cov[p.ID] = true
			pc[p.ID] = true
		}
		for _, p := range groupSteal[g] {
			cov[p.ID] = true
		}
		groupCovers[g] = cov
		groupPopCover[g] = pc
	}
	if o.Trace != nil {
		r.tracer = trace.New(r.maxIDs, *o.Trace)
		names := make([]string, np)
		for p := 0; p < np; p++ {
			names[p] = model.Place(p).Name
		}
		r.tracer.SetPlaceNames(names)
		r.tracer.SetPolicy(r.polName)
	}
	r.workers = make([]*worker, r.maxIDs)
	for id := 0; id < r.maxIDs; id++ {
		g := id % n
		r.workers[id] = &worker{
			id:       id,
			rt:       r,
			group:    g,
			pop:      groupPop[g],
			steal:    groupSteal[g],
			covers:   groupCovers[g],
			popCover: groupPopCover[g],
			park:     make(chan struct{}, 1),
			rng:      uint64(id)*0x9E3779B97F4A7C15 + 0x1234567,
		}
		if r.tracer != nil {
			r.workers[id].tr = r.tracer
			// Configured workers get their ring now; substitution
			// identities allocate theirs on first activation (waitOn) —
			// most of the substitution slots never run.
			if id < n {
				r.workers[id].ring = r.tracer.Ring(id)
			}
		}
		// Configured workers get their policy state now; substitution
		// identities build theirs at activation, when their inherited
		// paths are known.
		if r.pol != nil && id < n {
			r.attachPolicyWorker(r.workers[id])
		}
	}
	if o.Watchdog != nil {
		r.watch = newWatchdogState(r, *o.Watchdog)
	}
	r.retireGroup = make([]atomic.Int64, n)
	r.freeIDs = make(chan int, r.maxIDs)
	for id := n; id < r.maxIDs; id++ {
		r.freeIDs <- id
	}
	r.maxUsed.Store(int64(n))
	return r, nil
}

// NewDefault builds a runtime over platform.Default(workers); workers <= 0
// selects GOMAXPROCS.
func NewDefault(workers int) *Runtime {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r, err := New(platform.Default(workers), nil)
	if err != nil {
		panic(err) // unreachable: Default models validate
	}
	return r
}

// Model returns the platform model the runtime was built over.
func (r *Runtime) Model() *platform.Model { return r.model }

// NumWorkers returns the configured worker count.
func (r *Runtime) NumWorkers() int { return r.nWorkers }

// Start launches the persistent worker pool. It is idempotent.
func (r *Runtime) Start() {
	if r.started.Swap(true) {
		return
	}
	for id := 0; id < r.nWorkers; id++ {
		r.runners.Add(1)
		go r.runner(r.workers[id])
	}
}

// Shutdown runs registered module finalizers, signals all workers to exit,
// and waits for them. Outstanding tasks are abandoned; callers should only
// shut down after quiescence (Launch returns only when its whole task tree
// has completed).
func (r *Runtime) Shutdown() {
	if !r.started.Load() || r.stopped.Swap(true) {
		return
	}
	r.finalizeMu.Lock()
	fins := r.finalizers
	r.finalizers = nil
	r.finalizeMu.Unlock()
	for i := len(fins) - 1; i >= 0; i-- {
		fins[i]()
	}
	r.wakeAll()
	r.runners.Wait()
}

// RegisterFinalizer queues fn to run (LIFO) at Shutdown. Modules register
// their finalization functions here.
func (r *Runtime) RegisterFinalizer(fn func()) {
	r.finalizeMu.Lock()
	r.finalizers = append(r.finalizers, fn)
	r.finalizeMu.Unlock()
}

// Launch runs fn as a root task inside an implicit finish scope and blocks
// the calling goroutine until fn and every task it transitively spawned
// have completed. The runtime is started if necessary.
//
// Launch returns the root scope's error: the first task-body panic
// (converted to a *PanicError by the execute barrier) or AsyncErr
// failure recorded against any scope that propagated to the root. A
// failing task fails only its own futures and finish-scope chain — the
// runtime stays schedulable and later Launch calls run normally. With
// the quiesce watchdog armed in Abort mode, a root scope that outlives
// the deadline returns ErrStalled wrapped with the stall diagnostic.
func (r *Runtime) Launch(fn func(*Ctx)) error {
	r.Start()
	fs := newFinishScope(r)
	root := &Task{fn: fn, place: r.defaultPlace(), finish: fs}
	fs.inc()
	r.enqueue(nil, root)
	fs.dec(nil)
	f := fs.future()
	if err := r.rootWait(f); err != nil {
		return err
	}
	return f.errSettled()
}

// SpawnDetachedAt enqueues a task at place p from outside any task context
// (no finish scope, injector path). Modules use it to arm pollers from
// completion callbacks that run on non-worker goroutines.
func (r *Runtime) SpawnDetachedAt(p *platform.Place, fn func(*Ctx)) {
	r.spawn(nil, p, nil, fn)
}

// defaultPlace is where root tasks land: the first place of worker 0's pop
// path.
func (r *Runtime) defaultPlace() *platform.Place {
	return r.workers[0].pop[0]
}

// newTask obtains a Task struct, recycling from w's free-list when possible.
// Only the goroutine owning identity w may call this (the pool is
// unsynchronized by design).
func (r *Runtime) newTask(w *worker, fn func(*Ctx), p *platform.Place, fs *finishScope) *Task {
	var t *Task
	if w != nil {
		if n := len(w.taskPool); n > 0 {
			t = w.taskPool[n-1]
			w.taskPool[n-1] = nil
			w.taskPool = w.taskPool[:n-1]
		}
	}
	if t == nil {
		t = &Task{}
	}
	t.fn, t.place, t.finish = fn, p, fs
	return t
}

// freeTask returns a retired Task to w's free-list. The caller must
// guarantee no live references remain (see execute for why that holds).
func (w *worker) freeTask(t *Task) {
	if len(w.taskPool) >= taskPoolCap {
		return
	}
	t.fn, t.place, t.finish = nil, nil, nil
	t.tid = 0
	t.deps.set(0)
	w.taskPool = append(w.taskPool, t)
}

// spawn creates an eligible task at place p registered with finish scope
// fs, pushed through worker w's own deque column (or the place's injector
// when w is nil).
func (r *Runtime) spawn(w *worker, p *platform.Place, fs *finishScope, fn func(*Ctx)) {
	r.checkCovered(p)
	if fs != nil {
		fs.inc()
	}
	r.enqueue(w, r.newTask(w, fn, p, fs))
}

// spawnAwait creates a task predicated on the given futures.
func (r *Runtime) spawnAwait(w *worker, p *platform.Place, fs *finishScope, fn func(*Ctx), futures []*Future) {
	r.checkCovered(p)
	if fs != nil {
		fs.inc()
	}
	t := r.newTask(w, fn, p, fs)
	if len(futures) == 0 {
		r.enqueue(w, t)
		return
	}
	// +1 guard reference so the task cannot launch until registration of
	// every future has been attempted (avoids double-enqueue races). The
	// guard keeps the counter >= 1 for the whole loop, so only the final
	// dec below can ever enqueue — decs inside the loop never reach zero.
	t.deps.set(len(futures) + 1)
	for _, f := range futures {
		if !f.addTaskWaiter(t) {
			// Already satisfied: account for it immediately.
			t.deps.dec()
		}
	}
	if t.deps.dec() {
		r.enqueue(w, t)
	}
}

// checkCovered rejects spawns at places no worker path covers: such tasks
// would never run. The check happens before the task is registered with any
// finish scope, so a recovered panic leaves the runtime consistent.
func (r *Runtime) checkCovered(p *platform.Place) {
	if !r.covered[p.ID] {
		panic(fmt.Sprintf("core: task enqueued at place %v which is on no worker's pop or steal path", p))
	}
}

// enqueue makes t visible to the scheduler and wakes at most one parked
// worker able to service it.
func (r *Runtime) enqueue(w *worker, t *Task) {
	pid := t.place.ID
	depth := r.pendingPerPlace[pid].Add(1)
	if tr := r.tracer; tr != nil && tr.Enabled() {
		r.traceSpawn(tr, w, t, pid, depth)
	}
	if w != nil {
		r.deques[pid][w.id].PushBottom(t)
	} else {
		r.inject[pid].push(t)
	}
	r.wake(pid)
}

// queueSampleEvery is how many traced spawns a worker records between
// queue-depth samples: dense enough to chart load, sparse enough to keep
// fan-outs from flooding the ring with counter events.
const queueSampleEvery = 64

// traceSpawn records a task's eligibility (and, periodically, a
// place-tagged queue-depth sample). The task ID is allocated here — at
// the task's single enqueue — so pooled Task structs never carry a stale
// identity into a new lifecycle.
func (r *Runtime) traceSpawn(tr *trace.Tracer, w *worker, t *Task, pid int, depth int64) {
	if t.tid == 0 {
		t.tid = uint32(tr.NextTaskID())
	}
	if w == nil {
		tr.RecordExternal(trace.EvSpawn, int32(pid), uint64(t.tid), 0)
		return
	}
	w.ring.Record(trace.EvSpawn, int32(pid), uint64(t.tid), 0)
	if w.spawnTick++; w.spawnTick%queueSampleEvery == 0 {
		w.ring.Record(trace.EvQueueDepth, int32(pid), 0, uint64(depth))
	}
}

// wake unparks at most one idle worker whose paths cover place pid. Unlike
// a broadcast, an enqueue never causes a thundering herd of wake-ups: the
// woken worker that finds the task keeps running, and every other worker
// stays parked. Lost-wakeup safety comes from park's publish-then-recheck
// protocol: a parking worker registers itself in the idle list before
// re-checking its places' pending counters, so an enqueue either sees the
// worker in the list (and wakes it) or the worker's recheck sees the
// pending count (and it does not sleep).
func (r *Runtime) wake(pid int) {
	if r.idleCount.Load() == 0 {
		return
	}
	r.idleMu.Lock()
	for i := len(r.idle) - 1; i >= 0; i-- {
		w := r.idle[i]
		if w.covers[pid] {
			r.removeIdleAt(i)
			// The token must be sent while idleMu is still held: unpark's
			// drain runs only after it observes w delisted under the same
			// mutex, so the send is then guaranteed to have landed and the
			// drain cannot miss it. Sending after unlock would let a stale
			// token leak into w's next park cycle, leaving a dangling idle
			// entry that could absorb a later wake meant for a truly parked
			// worker (lost wake-up).
			select {
			case w.park <- struct{}{}:
			default:
			}
			break
		}
	}
	r.idleMu.Unlock()
}

// removeIdleAt deletes the idle entry at index i by swap-remove (O(1), and
// the vacated tail slot is nil-ed so no stale *worker lingers in the backing
// array). Caller must hold idleMu.
func (r *Runtime) removeIdleAt(i int) {
	last := len(r.idle) - 1
	r.idle[i] = r.idle[last]
	r.idle[last] = nil
	r.idle = r.idle[:last]
	r.idleCount.Add(-1)
}

// wakeAll unparks every idle worker. Reserved for events a targeted wake
// cannot express: shutdown and retire requests, which park does not observe
// via pending counters.
func (r *Runtime) wakeAll() {
	r.idleMu.Lock()
	ws := r.idle
	r.idle = nil
	r.idleCount.Store(0)
	// Tokens are sent under idleMu for the same reason as in wake: a
	// delisted worker's unpark drain must be able to rely on the token
	// already being present.
	for _, w := range ws {
		select {
		case w.park <- struct{}{}:
		default:
		}
	}
	r.idleMu.Unlock()
}

// park blocks w on its private parking slot until a waker signals it. The
// publish-then-recheck ordering makes the wait safe against concurrent
// enqueues (see wake).
func (r *Runtime) park(w *worker) {
	w.parks.Add(1)
	r.idleMu.Lock()
	r.idle = append(r.idle, w)
	r.idleCount.Add(1)
	r.idleMu.Unlock()
	if r.stopped.Load() || r.retireGroup[w.group].Load() > 0 || w.anyPending() {
		r.unpark(w)
		return
	}
	traced := w.tr != nil && w.tr.Enabled()
	if traced {
		w.ring.Record(trace.EvPark, trace.NoPlace, 0, 0)
	}
	if r.watch != nil {
		w.wdState.Store(wsParked)
	}
	<-w.park
	if r.watch != nil {
		w.wdState.Store(wsScanning)
	}
	if traced {
		w.ring.Record(trace.EvUnpark, trace.NoPlace, 0, 0)
	}
	// The waker that sent the token normally delisted us first, so this
	// scan finds nothing. It exists as self-cleanup: should a token ever
	// reach us while our entry is still listed, leaving the entry behind
	// would let it absorb a future targeted wake while we are running or
	// blocked elsewhere — a lost wake-up.
	r.idleMu.Lock()
	for i, x := range r.idle {
		if x == w {
			r.removeIdleAt(i)
			break
		}
	}
	r.idleMu.Unlock()
}

// unpark removes w from the idle list if still present. If absent, a waker
// claimed w and — because tokens are sent while idleMu is held — its token
// was already in w.park before we acquired the mutex, so the drain below is
// guaranteed to consume it and no stale token can cut short the next park.
func (r *Runtime) unpark(w *worker) {
	r.idleMu.Lock()
	for i, x := range r.idle {
		if x == w {
			r.removeIdleAt(i)
			r.idleMu.Unlock()
			return
		}
	}
	r.idleMu.Unlock()
	select {
	case <-w.park:
	default:
	}
}

// execute runs t on worker w, then settles its finish scope. The Task
// struct is recycled into w's free-list *before* the body runs: every field
// is captured first, and by eligibility time no other component holds a
// reference (deque slots below top are never re-read once top has passed
// them, and promise waiter lists drop the task when its dependency count
// drains — which necessarily happened before enqueue).
//
// The body runs under the panic containment barrier (runBody): a panic
// is converted to a *PanicError and recorded against the enclosing
// finish scope — the task's failure domain — and the worker continues
// scheduling. This is the ONE recover in the runtime; task bodies and
// modules must not install their own (hiper-lint: recover-outside-worker).
func (r *Runtime) execute(w *worker, t *Task) {
	w.tasks.Add(1)
	fn, place, fin, tid := t.fn, t.place, t.finish, t.tid
	w.freeTask(t)
	c := Ctx{rt: r, w: w, place: place, fin: fin, tid: uint64(tid)}
	if r.watch != nil {
		w.wdPlace.Store(int32(place.ID))
		w.wdState.Store(wsRunning)
	}
	err := r.runBody(w, fn, &c)
	if r.watch != nil {
		w.wdState.Store(wsScanning)
	}
	if err != nil && fin != nil {
		fin.fail(err)
	}
	if fin != nil {
		fin.dec(&c)
	}
}

// runBody executes one task body under the recover barrier, returning
// the body's panic (if any) converted to a *PanicError. The zero-error
// fast path costs one deferred call and no allocation.
func (r *Runtime) runBody(w *worker, fn func(*Ctx), c *Ctx) (err error) {
	defer func() {
		if pv := recover(); pv != nil {
			err = wrapPanic(pv)
		}
	}()
	if tr := w.tr; tr != nil && tr.Enabled() {
		pid := int32(c.place.ID)
		w.ring.Record(trace.EvStart, pid, c.tid, 0)
		if tr.Config().PprofLabels {
			w.runLabeled(c.place, fn, c)
		} else {
			fn(c)
		}
		w.ring.Record(trace.EvFinish, pid, c.tid, 0)
	} else {
		fn(c)
	}
	return nil
}

// findWork performs one full scan: pop path first (own work, LIFO), then
// steal path (others' work and injected work, FIFO). Steals from victims at
// places on w's own pop path are batched: up to half the victim's run
// migrates into w's deque column in one visit, so fine-grained fan-outs
// re-balance in O(log n) visits instead of one visit per task.
func (w *worker) findWork() *Task {
	if w.pw != nil {
		return w.findWorkPolicy()
	}
	r := w.rt
	for _, p := range w.pop {
		if t := r.deques[p.ID][w.id].PopBottom(); t != nil {
			r.pendingPerPlace[p.ID].Add(-1)
			w.pops.Add(1)
			return t
		}
	}
	maxUsed := int(r.maxUsed.Load())
	traced := w.tr != nil && w.tr.Enabled()
	for _, p := range w.steal {
		if r.pendingPerPlace[p.ID].Load() == 0 {
			continue
		}
		if traced {
			w.ring.Record(trace.EvStealAttempt, int32(p.ID), 0, 0)
		}
		if t := r.inject[p.ID].take(); t != nil {
			r.pendingPerPlace[p.ID].Add(-1)
			w.steals.Add(1)
			if traced {
				w.ring.Record(trace.EvStealSuccess, int32(p.ID), uint64(t.tid), 0)
			}
			return t
		}
		// Start at a pseudo-random victim to spread contention.
		start := int(w.nextRand() % uint64(maxUsed))
		batch := w.popCover[p.ID] // surplus must land where our pop path finds it
		for k := 0; k < maxUsed; k++ {
			vid := start + k
			if vid >= maxUsed {
				vid -= maxUsed
			}
			if vid == w.id {
				continue
			}
			for {
				if batch {
					n, retry := r.deques[p.ID][vid].StealBatch(w.stealBuf[:])
					if n > 0 {
						t := w.takeBatch(p.ID, n)
						r.pendingPerPlace[p.ID].Add(-1)
						w.steals.Add(1)
						if traced {
							w.ring.Record(trace.EvStealSuccess, int32(p.ID), uint64(t.tid), uint64(n-1))
						}
						return t
					}
					if !retry {
						break
					}
					continue
				}
				t, retry := r.deques[p.ID][vid].Steal()
				if t != nil {
					r.pendingPerPlace[p.ID].Add(-1)
					w.steals.Add(1)
					if traced {
						w.ring.Record(trace.EvStealSuccess, int32(p.ID), uint64(t.tid), 0)
					}
					return t
				}
				if !retry {
					break
				}
			}
		}
	}
	return nil
}

// takeBatch consumes a StealBatch result: the oldest task is returned for
// immediate execution and the surplus is re-queued into w's own deque
// column at the same place. The surplus stays pending at pid, so the
// place's pending counter is unchanged for all but the returned task.
func (w *worker) takeBatch(pid, n int) *Task {
	t := w.stealBuf[0]
	w.stealBuf[0] = nil
	if n > 1 {
		own := &w.rt.deques[pid][w.id]
		for i := 1; i < n; i++ {
			own.PushBottom(w.stealBuf[i])
			w.stealBuf[i] = nil
		}
		w.batched.Add(uint64(n - 1))
	}
	return t
}

// anyPending reports whether any place on w's paths has pending tasks.
func (w *worker) anyPending() bool {
	r := w.rt
	for _, p := range w.pop {
		if r.pendingPerPlace[p.ID].Load() > 0 {
			return true
		}
	}
	for _, p := range w.steal {
		if r.pendingPerPlace[p.ID].Load() > 0 {
			return true
		}
	}
	return false
}

func (w *worker) nextRand() uint64 {
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	return x
}

// runner is the persistent worker loop.
func (r *Runtime) runner(w *worker) {
	defer r.runners.Done()
	for {
		if r.stopped.Load() {
			return
		}
		// A surplus runner (created by worker substitution) retires when a
		// blocked peer of the same path group resumes, keeping the active
		// count per group at its configured level.
		rg := &r.retireGroup[w.group]
		if n := rg.Load(); n > 0 && rg.CompareAndSwap(n, n-1) {
			r.releaseID(w)
			return
		}
		if t := w.findWork(); t != nil {
			r.execute(w, t)
			continue
		}
		// Nothing found: spin briefly, then park.
		found := false
		for s := 0; s < r.opts.SpinRounds; s++ {
			runtime.Gosched()
			if t := w.findWork(); t != nil {
				r.execute(w, t)
				found = true
				break
			}
		}
		if found {
			continue
		}
		r.park(w)
	}
}

// releaseID returns a substitution identity to the free pool. Identities
// below nWorkers are permanent and never released.
func (r *Runtime) releaseID(w *worker) {
	if w.id >= r.nWorkers {
		r.freeIDs <- w.id
	}
}

// waitOn blocks the task tid until f is satisfied, helping with other
// eligible work and substituting the worker if it must truly park. The
// suspension is traced as an async span on tid: the worker's own track
// keeps showing the tasks it helps with meanwhile.
func (r *Runtime) waitOn(w *worker, tid uint64, f *Future) {
	for !f.Done() {
		if t := w.findWork(); t != nil {
			r.execute(w, t)
			continue
		}
		if f.Done() {
			return
		}
		ch := make(chan struct{})
		if !f.addChanWaiter(ch) {
			return
		}
		suspendTraced := w.tr != nil && w.tr.Enabled()
		if suspendTraced {
			w.ring.Record(trace.EvSuspend, trace.NoPlace, tid, 0)
		}
		// Hand our concurrency slot to a substitute, if one is available.
		// The substitute inherits OUR paths and group: it must service
		// exactly the places we would have, or special-purpose places
		// (like the MPI module's Interconnect) could starve while we wait.
		substituted := false
		select {
		case id := <-r.freeIDs:
			sub := r.workers[id]
			if sub.tr != nil && sub.ring == nil {
				sub.ring = sub.tr.Ring(id)
			}
			sub.group = w.group
			sub.pop = w.pop
			sub.steal = w.steal
			sub.covers = w.covers
			sub.popCover = w.popCover
			if r.pol != nil {
				// The substitute runs OUR paths now; rebuild its policy
				// state to match (published to its goroutine by the `go`
				// statement below, like the path slices above).
				r.attachPolicyWorker(sub)
			}
			for {
				cur := r.maxUsed.Load()
				if int64(id) < cur || r.maxUsed.CompareAndSwap(cur, int64(id)+1) {
					break
				}
			}
			r.substitutions.Add(1)
			r.runners.Add(1)
			go r.runner(sub)
			substituted = true
		default:
			// Substitution budget exhausted; park without a substitute.
		}
		if r.watch != nil {
			w.wdState.Store(wsBlocked)
		}
		<-ch
		if r.watch != nil {
			w.wdState.Store(wsScanning)
		}
		if suspendTraced {
			w.ring.Record(trace.EvResume, trace.NoPlace, tid, 0)
		}
		if substituted {
			// We are back: ask one surplus runner of our group to retire.
			// Retirement needs a broadcast: parked workers cannot observe
			// retire requests through pending counters.
			r.retireGroup[w.group].Add(1)
			r.wakeAll()
		}
	}
}

// helpUntil keeps the worker executing eligible tasks until pred holds.
// Unlike waitOn there is no future to park on — the predicate is satisfied
// by an external event the scheduler cannot observe (e.g. a remote
// one-sided write) — so the worker stays live and keeps servicing its
// places, which is exactly what counter-polling synchronization protocols
// need. Like the runner loop it spins (yielding) for SpinRounds empty scans
// and then backs off, napping with capped exponential sleeps so a slow
// fabric does not burn a core.
func (r *Runtime) helpUntil(w *worker, pred func() bool) {
	idle := 0
	for !pred() {
		if t := w.findWork(); t != nil {
			r.execute(w, t)
			idle = 0
			continue
		}
		idle++
		if idle <= r.opts.SpinRounds {
			runtime.Gosched()
			continue
		}
		shift := idle - r.opts.SpinRounds
		if shift > 6 {
			shift = 6 // cap the nap at 64µs: pred must stay responsive
		}
		time.Sleep(time.Duration(1<<uint(shift)) * time.Microsecond)
	}
}

// Stats is a snapshot of scheduler activity, usable for the tooling hooks
// the paper describes (a unified scheduler is aware of all work on the
// system).
type Stats struct {
	Policy        string // active scheduling policy name
	TasksExecuted uint64
	Pops          uint64 // tasks taken from own deques (pop path)
	Steals        uint64 // tasks taken from other workers or injectors
	BatchStolen   uint64 // surplus tasks migrated by batched steals
	Parks         uint64
	Substitutions uint64 // replacement workers spawned for blocked peers
	MaxWorkerIDs  int    // identity columns ever activated
}

// Policy returns the active scheduling policy's name ("random-steal" by
// default).
func (r *Runtime) Policy() string { return r.polName }

// Stats returns a snapshot of scheduler counters.
func (r *Runtime) Stats() Stats {
	s := Stats{Policy: r.polName}
	for _, w := range r.workers {
		s.TasksExecuted += w.tasks.Load()
		s.Pops += w.pops.Load()
		s.Steals += w.steals.Load()
		s.BatchStolen += w.batched.Load()
		s.Parks += w.parks.Load()
	}
	s.Substitutions = r.substitutions.Load()
	s.MaxWorkerIDs = int(r.maxUsed.Load())
	return s
}
