package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/platform"
)

// probePolicy counts every seam callback so tests can assert the worker
// loop and spawn paths actually delegate to a non-default policy.
type probePolicy struct {
	rt probeRuntime
}

func (p *probePolicy) Name() string { return "probe" }
func (p *probePolicy) NewRuntime(env PolicyEnv) PolicyRuntime {
	p.rt.env = env
	return &p.rt
}

type probeRuntime struct {
	env      PolicyEnv
	workers  atomic.Int64
	resolves atomic.Int64
	hints    atomic.Int64
	inflight atomic.Int64
	hintSum  atomic.Int64
	// resolveTo, when set, is what Resolve returns (nil → default rule).
	resolveTo func(group []*platform.Place) *platform.Place
}

func (r *probeRuntime) Worker(id, group int, pop, steal []*platform.Place) PolicyWorker {
	r.workers.Add(1)
	return &probeWorker{r: r}
}

func (r *probeRuntime) Resolve(from *platform.Place, group []*platform.Place, cost float64) *platform.Place {
	r.resolves.Add(1)
	if r.resolveTo != nil {
		return r.resolveTo(group)
	}
	return group[len(group)-1]
}

func (r *probeRuntime) CostHint(pid int, cost float64) {
	r.hints.Add(1)
	r.hintSum.Add(int64(cost))
}

func (r *probeRuntime) InFlight(pid int, delta float64) { r.inflight.Add(int64(delta)) }

type probeWorker struct {
	r         *probeRuntime
	popCalls  atomic.Int64
	victCalls atomic.Int64
}

func (w *probeWorker) PopOrder(ord []int32) { w.popCalls.Add(1) }

func (w *probeWorker) Victims(buf []int32, pid, maxUsed int) int {
	w.victCalls.Add(1)
	for k := 0; k < maxUsed; k++ {
		buf[k] = int32(k)
	}
	return maxUsed
}

func (w *probeWorker) BatchMax(pid, vid int) int { return 4 }

func newPolicyRuntime(t testing.TB, workers int, pol SchedPolicy) *Runtime {
	t.Helper()
	r, err := New(platform.Default(workers), &Options{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Shutdown)
	return r
}

// TestPolicySeamDelegates: a non-default policy's Worker/PopOrder/Victims
// hooks are exercised by the worker loop, and spawn Cost hints reach
// CostHint.
func TestPolicySeamDelegates(t *testing.T) {
	pol := &probePolicy{}
	r := newPolicyRuntime(t, 4, pol)
	var ran atomic.Int64
	r.Launch(func(c *Ctx) {
		c.Finish(func(c *Ctx) {
			for i := 0; i < 200; i++ {
				c.AsyncWith(func(*Ctx) { ran.Add(1) }, Cost(3))
			}
		})
	})
	if ran.Load() != 200 {
		t.Fatalf("ran %d tasks, want 200", ran.Load())
	}
	if got := pol.rt.workers.Load(); got < 4 {
		t.Fatalf("policy built %d workers, want >= 4", got)
	}
	if pol.rt.hints.Load() != 200 {
		t.Fatalf("CostHint called %d times, want 200", pol.rt.hints.Load())
	}
	if pol.rt.hintSum.Load() != 600 {
		t.Fatalf("CostHint sum %d, want 600", pol.rt.hintSum.Load())
	}
}

// TestPolicyResolveAtGroup: AtGroup spawns route through Resolve, and the
// policy's in-group choice is honored.
func TestPolicyResolveAtGroup(t *testing.T) {
	pol := &probePolicy{}
	r := newPolicyRuntime(t, 2, pol)
	model := r.Model()
	group := []*platform.Place{model.Places()[0], model.Places()[1]}
	pol.rt.resolveTo = func(g []*platform.Place) *platform.Place { return g[1] }
	var landed atomic.Pointer[platform.Place]
	r.Launch(func(c *Ctx) {
		c.Finish(func(c *Ctx) {
			c.AsyncWith(func(cc *Ctx) { landed.Store(cc.Place()) }, AtGroup(group...))
		})
	})
	if pol.rt.resolves.Load() == 0 {
		t.Fatal("Resolve was never called for an AtGroup spawn")
	}
	if landed.Load() != group[1] {
		t.Fatalf("task landed at %v, want the policy's choice %v", landed.Load(), group[1])
	}
}

// TestPolicyResolveFallbacks: a policy resolving nil or a place outside
// the group is overridden by the default rule (prefer the spawner's
// place, else the group's first member) instead of being trusted.
func TestPolicyResolveFallbacks(t *testing.T) {
	pol := &probePolicy{}
	r := newPolicyRuntime(t, 2, pol)
	model := r.Model()
	group := []*platform.Place{model.Places()[1], model.Places()[2]}
	outside := model.Places()[0]
	for name, resolve := range map[string]func([]*platform.Place) *platform.Place{
		"nil":       func([]*platform.Place) *platform.Place { return nil },
		"out-group": func([]*platform.Place) *platform.Place { return outside },
	} {
		t.Run(name, func(t *testing.T) {
			pol.rt.resolveTo = resolve
			var landed atomic.Pointer[platform.Place]
			r.Launch(func(c *Ctx) {
				c.Finish(func(c *Ctx) {
					c.AsyncWith(func(cc *Ctx) { landed.Store(cc.Place()) }, AtGroup(group...))
				})
			})
			got := landed.Load()
			if got != group[0] && got != group[1] {
				t.Fatalf("task landed outside its group at %v", got)
			}
		})
	}
}

// TestHintInFlightForwards: Runtime.HintInFlight reaches the policy with
// sign preserved, and is a no-op (not a panic) under the built-in path.
func TestHintInFlightForwards(t *testing.T) {
	pol := &probePolicy{}
	r := newPolicyRuntime(t, 1, pol)
	p := r.Model().Places()[0]
	r.HintInFlight(p, 8)
	r.HintInFlight(p, -3)
	r.HintInFlight(nil, 5) // nil place: ignored
	if got := pol.rt.inflight.Load(); got != 5 {
		t.Fatalf("in-flight sum %d, want 5", got)
	}
	def := newTestRuntime(t, 1)
	def.HintInFlight(def.Model().Places()[0], 1) // built-in policy: no-op
}

// TestPolicyStatsName: the runtime snapshot carries the policy identity.
func TestPolicyStatsName(t *testing.T) {
	r := newPolicyRuntime(t, 1, &probePolicy{})
	if got := r.Stats().Policy; got != "probe" {
		t.Fatalf("Stats().Policy = %q, want probe", got)
	}
}
