// Package platform implements the HiPER platform model: an undirected,
// unweighted graph of "places". Nodes logically represent hardware
// components that software libraries may utilize (system memory, caches,
// GPU device memory, interconnect NICs, NVM, disks); edges represent
// direct accessibility between components (for example, an edge between
// system memory and a GPU's device memory means data is directly
// transferable between them).
//
// A model is loaded from a JSON document at runtime initialization, and the
// package also provides a generator that synthesizes a model from a machine
// description, standing in for the paper's HWloc-based utilities. There is
// no strict requirement of a one-to-one mapping from places and edges to
// physical hardware, but similarity is desirable for performance fidelity.
package platform

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
)

// Kind classifies the hardware component a place represents. Module
// implementations dispatch on kinds: for example, the CUDA module registers
// itself as the handler for copies touching KindGPUMem places.
type Kind string

// The standard place kinds. Third-party modules may introduce new kinds;
// the runtime treats kinds opaquely.
const (
	KindSysMem       Kind = "sysmem"       // host DRAM attached to a socket
	KindCache        Kind = "cache"        // a shared or private CPU cache level
	KindCore         Kind = "core"         // a latency-optimized management core
	KindGPU          Kind = "gpu"          // a GPU's execution resources
	KindGPUMem       Kind = "gpumem"       // a GPU's device memory
	KindInterconnect Kind = "interconnect" // NIC / network port for inter-node comms
	KindNVM          Kind = "nvm"          // non-volatile memory / burst buffer
	KindDisk         Kind = "disk"         // node-local storage
)

// Place is a node in the platform model graph.
type Place struct {
	ID   int    // dense index, unique within a Model
	Name string // human-readable, unique within a Model
	Kind Kind
	// Attrs carries optional model parameters (e.g. bandwidth hints)
	// that generators emit and modules may consult.
	Attrs map[string]string

	neighbors []*Place
}

// Neighbors returns the places directly connected to p. The returned slice
// is owned by the model and must not be mutated.
func (p *Place) Neighbors() []*Place { return p.neighbors }

// String implements fmt.Stringer.
func (p *Place) String() string {
	return fmt.Sprintf("%s#%d(%s)", p.Name, p.ID, p.Kind)
}

// WorkerSpec configures one persistent worker thread of the generalized
// work-stealing runtime: the ordered list of places it traverses when
// looking for its own work (Pop) and for other workers' work (Steal).
type WorkerSpec struct {
	ID    int
	Pop   []int // place IDs, traversal order
	Steal []int // place IDs, traversal order
}

// Model is an in-memory platform graph plus the worker/path configuration.
type Model struct {
	places  []*Place
	byName  map[string]*Place
	edges   [][2]int
	workers []WorkerSpec

	// hops is the lazily built all-pairs hop-distance table scheduling
	// policies query (see Hops). Models are mutated only during
	// construction, before any runtime — and hence any policy — sees them.
	hopsOnce sync.Once
	hops     [][]int16
}

// jsonModel is the on-disk representation.
type jsonModel struct {
	Places  []jsonPlace  `json:"places"`
	Edges   [][2]int     `json:"edges"`
	Workers []jsonWorker `json:"workers"`
}

type jsonPlace struct {
	ID    int               `json:"id"`
	Name  string            `json:"name"`
	Kind  Kind              `json:"kind"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

type jsonWorker struct {
	ID    int   `json:"id"`
	Pop   []int `json:"pop"`
	Steal []int `json:"steal"`
}

// NewModel returns an empty model.
func NewModel() *Model {
	return &Model{byName: make(map[string]*Place)}
}

// AddPlace appends a new place with the given name and kind and returns it.
// It panics if the name is already in use (model construction is programmer
// error territory, like building a malformed literal).
func (m *Model) AddPlace(name string, kind Kind) *Place {
	if _, dup := m.byName[name]; dup {
		panic(fmt.Sprintf("platform: duplicate place name %q", name))
	}
	p := &Place{ID: len(m.places), Name: name, Kind: kind}
	m.places = append(m.places, p)
	m.byName[name] = p
	return p
}

// AddEdge connects two places bidirectionally. Duplicate edges are ignored.
func (m *Model) AddEdge(a, b *Place) {
	if a == nil || b == nil || a == b {
		panic("platform: AddEdge requires two distinct non-nil places")
	}
	for _, n := range a.neighbors {
		if n == b {
			return
		}
	}
	a.neighbors = append(a.neighbors, b)
	b.neighbors = append(b.neighbors, a)
	if a.ID > b.ID {
		a, b = b, a
	}
	m.edges = append(m.edges, [2]int{a.ID, b.ID})
}

// AddWorker appends a worker specification. Paths are given as place IDs.
func (m *Model) AddWorker(pop, steal []int) {
	m.workers = append(m.workers, WorkerSpec{ID: len(m.workers), Pop: pop, Steal: steal})
}

// Places returns all places in ID order.
func (m *Model) Places() []*Place { return m.places }

// NumPlaces returns the number of places.
func (m *Model) NumPlaces() int { return len(m.places) }

// Place returns the place with the given ID, or nil.
func (m *Model) Place(id int) *Place {
	if id < 0 || id >= len(m.places) {
		return nil
	}
	return m.places[id]
}

// PlaceByName returns the place with the given name, or nil.
func (m *Model) PlaceByName(name string) *Place { return m.byName[name] }

// PlacesByKind returns all places of the given kind, in ID order.
func (m *Model) PlacesByKind(kind Kind) []*Place {
	var out []*Place
	for _, p := range m.places {
		if p.Kind == kind {
			out = append(out, p)
		}
	}
	return out
}

// FirstByKind returns the lowest-ID place of the given kind, or nil.
func (m *Model) FirstByKind(kind Kind) *Place {
	for _, p := range m.places {
		if p.Kind == kind {
			return p
		}
	}
	return nil
}

// Workers returns the worker specifications.
func (m *Model) Workers() []WorkerSpec { return m.workers }

// NumWorkers returns the configured worker count.
func (m *Model) NumWorkers() int { return len(m.workers) }

// Connected reports whether places a and b share an edge.
func (m *Model) Connected(a, b *Place) bool {
	for _, n := range a.neighbors {
		if n == b {
			return true
		}
	}
	return false
}

// ShortestPath returns a minimal-hop path from src to dst (inclusive of both
// endpoints), or nil if dst is unreachable. Used by data-movement planners
// to route multi-hop copies through intermediate places.
func (m *Model) ShortestPath(src, dst *Place) []*Place {
	if src == dst {
		return []*Place{src}
	}
	prev := make([]*Place, len(m.places))
	seen := make([]bool, len(m.places))
	queue := []*Place{src}
	seen[src.ID] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range cur.neighbors {
			if seen[n.ID] {
				continue
			}
			seen[n.ID] = true
			prev[n.ID] = cur
			if n == dst {
				// reconstruct
				var path []*Place
				for p := dst; p != nil; p = prev[p.ID] {
					path = append(path, p)
					if p == src {
						break
					}
				}
				// reverse
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, n)
		}
	}
	return nil
}

// Hops returns the minimum hop count between places a and b, or -1 when
// they are disconnected. Scheduling policies use it as the link-cost term
// of their cost models (each hop of the platform graph is one unit of
// communication distance). The all-pairs table is computed once, on first
// call, by BFS from every place — models are small (tens of places) — and
// cached for the model's lifetime; mutate the model only before first use.
func (m *Model) Hops(a, b *Place) int {
	m.hopsOnce.Do(m.buildHops)
	return int(m.hops[a.ID][b.ID])
}

func (m *Model) buildHops() {
	np := len(m.places)
	m.hops = make([][]int16, np)
	for src := 0; src < np; src++ {
		row := make([]int16, np)
		for i := range row {
			row[i] = -1
		}
		row[src] = 0
		queue := []*Place{m.places[src]}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range cur.neighbors {
				if row[nb.ID] >= 0 {
					continue
				}
				row[nb.ID] = row[cur.ID] + 1
				queue = append(queue, nb)
			}
		}
		m.hops[src] = row
	}
}

// ComputeSpeed returns the place's relative execution speed for
// cost-model-driven scheduling policies: the "speed" attribute when the
// model carries one (generators emit it for GPU places; hand-written
// models may set any value), else a kind default — GPUs run the simulated
// data-parallel kernels about 8x a CPU place, everything else is 1.
func (p *Place) ComputeSpeed() float64 {
	if s, ok := p.Attrs["speed"]; ok {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	if p.Kind == KindGPU {
		return 8
	}
	return 1
}

// Validate checks structural invariants: non-empty, unique names, worker
// paths reference valid place IDs, every worker has a non-empty pop path,
// and worker IDs are dense.
func (m *Model) Validate() error {
	if len(m.places) == 0 {
		return fmt.Errorf("platform: model has no places")
	}
	if len(m.workers) == 0 {
		return fmt.Errorf("platform: model has no workers")
	}
	for i, w := range m.workers {
		if w.ID != i {
			return fmt.Errorf("platform: worker IDs must be dense, got %d at index %d", w.ID, i)
		}
		if len(w.Pop) == 0 {
			return fmt.Errorf("platform: worker %d has an empty pop path", w.ID)
		}
		for _, id := range w.Pop {
			if m.Place(id) == nil {
				return fmt.Errorf("platform: worker %d pop path references unknown place %d", w.ID, id)
			}
		}
		for _, id := range w.Steal {
			if m.Place(id) == nil {
				return fmt.Errorf("platform: worker %d steal path references unknown place %d", w.ID, id)
			}
		}
	}
	return nil
}

// CoveredPlaces returns the set of place IDs reachable by at least one
// worker's pop or steal path. Tasks enqueued at uncovered places would never
// execute; module initialization uses this to assert its requirements (for
// example, the MPI module requires the Interconnect place to be covered).
func (m *Model) CoveredPlaces() map[int]bool {
	cov := make(map[int]bool)
	for _, w := range m.workers {
		for _, id := range w.Pop {
			cov[id] = true
		}
		for _, id := range w.Steal {
			cov[id] = true
		}
	}
	return cov
}

// MarshalJSON implements json.Marshaler.
func (m *Model) MarshalJSON() ([]byte, error) {
	jm := jsonModel{}
	for _, p := range m.places {
		jm.Places = append(jm.Places, jsonPlace{ID: p.ID, Name: p.Name, Kind: p.Kind, Attrs: p.Attrs})
	}
	jm.Edges = append(jm.Edges, m.edges...)
	sort.Slice(jm.Edges, func(i, j int) bool {
		if jm.Edges[i][0] != jm.Edges[j][0] {
			return jm.Edges[i][0] < jm.Edges[j][0]
		}
		return jm.Edges[i][1] < jm.Edges[j][1]
	})
	for _, w := range m.workers {
		jm.Workers = append(jm.Workers, jsonWorker{ID: w.ID, Pop: w.Pop, Steal: w.Steal})
	}
	return json.MarshalIndent(jm, "", "  ")
}

// Parse decodes a model from JSON bytes and validates it.
func Parse(data []byte) (*Model, error) {
	var jm jsonModel
	if err := json.Unmarshal(data, &jm); err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	m := NewModel()
	// Places must arrive with dense, ordered IDs; re-index defensively.
	sort.Slice(jm.Places, func(i, j int) bool { return jm.Places[i].ID < jm.Places[j].ID })
	for i, jp := range jm.Places {
		if jp.ID != i {
			return nil, fmt.Errorf("platform: place IDs must be dense starting at 0, got %d", jp.ID)
		}
		p := m.AddPlace(jp.Name, jp.Kind)
		p.Attrs = jp.Attrs
	}
	for _, e := range jm.Edges {
		a, b := m.Place(e[0]), m.Place(e[1])
		if a == nil || b == nil {
			return nil, fmt.Errorf("platform: edge %v references unknown place", e)
		}
		m.AddEdge(a, b)
	}
	for _, jw := range jm.Workers {
		m.workers = append(m.workers, WorkerSpec(jw))
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Load reads and parses a model from r.
func Load(r io.Reader) (*Model, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	return Parse(data)
}

// LoadFile reads and parses a model from the named file.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// SaveFile writes the model as JSON to the named file.
func (m *Model) SaveFile(path string) error {
	data, err := m.MarshalJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
