package platform

import "fmt"

// MachineSpec describes a physical node for model generation. It stands in
// for the paper's HWloc-based utilities that automatically produce JSON
// platform configuration files; users are likewise free to edit the output.
type MachineSpec struct {
	Sockets        int  // CPU sockets; each gets a sysmem and an L3 cache place
	CoresPerSocket int  // worker threads per socket
	GPUs           int  // each gets a gpu + gpumem place pair
	NVM            bool // add a node-local NVM place
	Disk           bool // add a node-local disk place
	Interconnect   bool // add a NIC place for inter-node communication

	// StealScope controls steal-path construction:
	// "socket" limits steals to same-socket places first, then global;
	// "global" (default) lets every worker steal everywhere.
	StealScope string
}

// Generate synthesizes a platform model from a machine description.
//
// Topology: per socket, an L3 cache place connected to the socket's sysmem;
// sysmem places are interconnected (QPI-style); GPUs hang off socket 0's
// sysmem through their gpumem; NVM/disk/NIC hang off socket 0's sysmem.
// Each core contributes one worker whose pop path is
// [its L3, its sysmem, extras...] and whose steal path mirrors it followed
// by the other sockets' places.
func Generate(spec MachineSpec) (*Model, error) {
	if spec.Sockets <= 0 || spec.CoresPerSocket <= 0 {
		return nil, fmt.Errorf("platform: MachineSpec requires at least one socket and core, got %+v", spec)
	}
	m := NewModel()

	sysmem := make([]*Place, spec.Sockets)
	l3 := make([]*Place, spec.Sockets)
	for s := 0; s < spec.Sockets; s++ {
		sysmem[s] = m.AddPlace(fmt.Sprintf("sysmem%d", s), KindSysMem)
		l3[s] = m.AddPlace(fmt.Sprintf("l3-%d", s), KindCache)
		m.AddEdge(l3[s], sysmem[s])
		if s > 0 {
			m.AddEdge(sysmem[s-1], sysmem[s])
		}
	}

	var extras []*Place
	var nic *Place
	for g := 0; g < spec.GPUs; g++ {
		gpu := m.AddPlace(fmt.Sprintf("gpu%d", g), KindGPU)
		// Relative compute speed for cost-model policies (Place.ComputeSpeed):
		// matches the simulated device's data-parallel advantage.
		gpu.Attrs = map[string]string{"speed": "8"}
		gmem := m.AddPlace(fmt.Sprintf("gpumem%d", g), KindGPUMem)
		m.AddEdge(gpu, gmem)
		m.AddEdge(gmem, sysmem[0])
		extras = append(extras, gpu)
	}
	if spec.NVM {
		nvm := m.AddPlace("nvm0", KindNVM)
		m.AddEdge(nvm, sysmem[0])
		extras = append(extras, nvm)
	}
	if spec.Disk {
		disk := m.AddPlace("disk0", KindDisk)
		m.AddEdge(disk, sysmem[0])
		extras = append(extras, disk)
	}
	if spec.Interconnect {
		nic = m.AddPlace("nic0", KindInterconnect)
		m.AddEdge(nic, sysmem[0])
	}

	extraIDs := func() []int {
		var ids []int
		for _, p := range extras {
			ids = append(ids, p.ID)
		}
		return ids
	}()

	wid := 0
	for s := 0; s < spec.Sockets; s++ {
		for c := 0; c < spec.CoresPerSocket; c++ {
			pop := []int{l3[s].ID, sysmem[s].ID}
			steal := []int{l3[s].ID, sysmem[s].ID}
			// The first worker on socket 0 owns the NIC place, matching the
			// MPI module's MPI_THREAD_FUNNELED assumption: the Interconnect
			// place must be on at least one worker's pop and steal paths.
			if nic != nil && wid == 0 {
				pop = append(pop, nic.ID)
				steal = append(steal, nic.ID)
			}
			// Workers on socket 0 also service accelerator and storage places.
			if s == 0 {
				pop = append(pop, extraIDs...)
				steal = append(steal, extraIDs...)
			}
			if spec.StealScope != "socket" {
				for s2 := 0; s2 < spec.Sockets; s2++ {
					if s2 == s {
						continue
					}
					steal = append(steal, l3[s2].ID, sysmem[s2].ID)
				}
			}
			m.AddWorker(pop, steal)
			wid++
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Default returns a minimal single-socket model with the given number of
// workers, one sysmem place everyone pops from and steals at, and an
// interconnect place serviced by worker 0. It is the model the runtime uses
// when the user supplies none.
func Default(workers int) *Model {
	if workers <= 0 {
		workers = 1
	}
	m, err := Generate(MachineSpec{Sockets: 1, CoresPerSocket: workers, Interconnect: true})
	if err != nil {
		panic(err) // unreachable: spec is well-formed by construction
	}
	return m
}

// DefaultWithGPU returns Default(workers) extended with a GPU, for
// accelerator-module tests and examples.
func DefaultWithGPU(workers, gpus int) *Model {
	if workers <= 0 {
		workers = 1
	}
	m, err := Generate(MachineSpec{Sockets: 1, CoresPerSocket: workers, GPUs: gpus, Interconnect: true})
	if err != nil {
		panic(err)
	}
	return m
}
