package platform

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddPlaceAndLookup(t *testing.T) {
	m := NewModel()
	a := m.AddPlace("sysmem0", KindSysMem)
	b := m.AddPlace("gpu0", KindGPU)
	if a.ID != 0 || b.ID != 1 {
		t.Fatalf("IDs not dense: %d %d", a.ID, b.ID)
	}
	if m.Place(0) != a || m.PlaceByName("gpu0") != b {
		t.Fatal("lookup mismatch")
	}
	if m.Place(5) != nil || m.Place(-1) != nil {
		t.Fatal("out-of-range lookup should be nil")
	}
	if got := m.FirstByKind(KindGPU); got != b {
		t.Fatalf("FirstByKind = %v", got)
	}
	if got := m.PlacesByKind(KindSysMem); len(got) != 1 || got[0] != a {
		t.Fatalf("PlacesByKind = %v", got)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate place name")
		}
	}()
	m := NewModel()
	m.AddPlace("x", KindSysMem)
	m.AddPlace("x", KindGPU)
}

func TestEdges(t *testing.T) {
	m := NewModel()
	a := m.AddPlace("a", KindSysMem)
	b := m.AddPlace("b", KindGPUMem)
	c := m.AddPlace("c", KindGPU)
	m.AddEdge(a, b)
	m.AddEdge(a, b) // duplicate ignored
	m.AddEdge(b, c)
	if !m.Connected(a, b) || !m.Connected(b, a) {
		t.Fatal("edge should be bidirectional")
	}
	if m.Connected(a, c) {
		t.Fatal("a and c are not adjacent")
	}
	if len(a.Neighbors()) != 1 {
		t.Fatalf("duplicate edge not ignored: %v", a.Neighbors())
	}
}

func TestShortestPath(t *testing.T) {
	m := NewModel()
	// a - b - c - d, plus shortcut a - d via e? Build a line then check hops.
	a := m.AddPlace("a", KindSysMem)
	b := m.AddPlace("b", KindCache)
	c := m.AddPlace("c", KindGPUMem)
	d := m.AddPlace("d", KindGPU)
	iso := m.AddPlace("iso", KindDisk)
	m.AddEdge(a, b)
	m.AddEdge(b, c)
	m.AddEdge(c, d)

	path := m.ShortestPath(a, d)
	if len(path) != 4 || path[0] != a || path[3] != d {
		t.Fatalf("path = %v", path)
	}
	if got := m.ShortestPath(a, a); len(got) != 1 || got[0] != a {
		t.Fatalf("self path = %v", got)
	}
	if got := m.ShortestPath(a, iso); got != nil {
		t.Fatalf("unreachable place should give nil path, got %v", got)
	}
}

func TestValidate(t *testing.T) {
	m := NewModel()
	if err := m.Validate(); err == nil {
		t.Fatal("empty model must not validate")
	}
	m.AddPlace("sysmem0", KindSysMem)
	if err := m.Validate(); err == nil {
		t.Fatal("model without workers must not validate")
	}
	m.AddWorker([]int{0}, []int{0})
	if err := m.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	m.AddWorker(nil, []int{0})
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "empty pop path") {
		t.Fatalf("empty pop path not caught: %v", err)
	}
}

func TestValidateBadPlaceRef(t *testing.T) {
	m := NewModel()
	m.AddPlace("sysmem0", KindSysMem)
	m.AddWorker([]int{7}, []int{0})
	if err := m.Validate(); err == nil {
		t.Fatal("pop path with unknown place must not validate")
	}
	m2 := NewModel()
	m2.AddPlace("sysmem0", KindSysMem)
	m2.AddWorker([]int{0}, []int{9})
	if err := m2.Validate(); err == nil {
		t.Fatal("steal path with unknown place must not validate")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := Default(4)
	data, err := orig.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatalf("parse of marshaled model failed: %v\n%s", err, data)
	}
	if got.NumPlaces() != orig.NumPlaces() || got.NumWorkers() != orig.NumWorkers() {
		t.Fatalf("round trip changed shape: %d/%d places, %d/%d workers",
			got.NumPlaces(), orig.NumPlaces(), got.NumWorkers(), orig.NumWorkers())
	}
	for i, p := range orig.Places() {
		q := got.Place(i)
		if q.Name != p.Name || q.Kind != p.Kind {
			t.Fatalf("place %d mismatch: %v vs %v", i, q, p)
		}
		if len(q.Neighbors()) != len(p.Neighbors()) {
			t.Fatalf("place %d degree mismatch", i)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bad json", `{`},
		{"sparse ids", `{"places":[{"id":3,"name":"x","kind":"sysmem"}],"workers":[{"id":0,"pop":[3],"steal":[]}]}`},
		{"bad edge", `{"places":[{"id":0,"name":"x","kind":"sysmem"}],"edges":[[0,9]],"workers":[{"id":0,"pop":[0],"steal":[]}]}`},
		{"no workers", `{"places":[{"id":0,"name":"x","kind":"sysmem"}]}`},
	}
	for _, tc := range cases {
		if _, err := Parse([]byte(tc.in)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestGenerate(t *testing.T) {
	m, err := Generate(MachineSpec{Sockets: 2, CoresPerSocket: 4, GPUs: 1, NVM: true, Disk: true, Interconnect: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumWorkers() != 8 {
		t.Fatalf("workers = %d, want 8", m.NumWorkers())
	}
	// 2 sysmem + 2 l3 + gpu + gpumem + nvm + disk + nic = 9
	if m.NumPlaces() != 9 {
		t.Fatalf("places = %d, want 9", m.NumPlaces())
	}
	nic := m.FirstByKind(KindInterconnect)
	if nic == nil {
		t.Fatal("no interconnect place")
	}
	cov := m.CoveredPlaces()
	if !cov[nic.ID] {
		t.Fatal("interconnect place not covered by any worker path")
	}
	// Every place must be covered in the generated model.
	for _, p := range m.Places() {
		if !cov[p.ID] && p.Kind != KindGPUMem && p.Kind != KindNVM && p.Kind != KindDisk {
			t.Errorf("place %v not covered by any path", p)
		}
	}
	// GPU execution place must be covered so accelerator proxy tasks run.
	gpu := m.FirstByKind(KindGPU)
	if gpu != nil && !cov[gpu.ID] {
		t.Error("gpu place not covered")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(MachineSpec{}); err == nil {
		t.Fatal("zero spec should error")
	}
	if _, err := Generate(MachineSpec{Sockets: 1}); err == nil {
		t.Fatal("zero cores should error")
	}
}

func TestGenerateSocketScopedSteal(t *testing.T) {
	m, err := Generate(MachineSpec{Sockets: 2, CoresPerSocket: 2, StealScope: "socket"})
	if err != nil {
		t.Fatal(err)
	}
	// With socket scope, workers' steal paths stay within their socket,
	// so worker 0 (socket 0) must not reference socket 1's sysmem.
	s1 := m.PlaceByName("sysmem1")
	for _, id := range m.Workers()[0].Steal {
		if id == s1.ID {
			t.Fatal("socket-scoped steal path leaked to other socket")
		}
	}
}

// Property: any generated model validates, round-trips through JSON, and has
// a connected host-memory backbone (all sysmem places mutually reachable).
func TestQuickGenerateInvariants(t *testing.T) {
	f := func(sock, cores, gpus uint8) bool {
		spec := MachineSpec{
			Sockets:        int(sock%4) + 1,
			CoresPerSocket: int(cores%8) + 1,
			GPUs:           int(gpus % 3),
			Interconnect:   gpus%2 == 0,
		}
		m, err := Generate(spec)
		if err != nil {
			return false
		}
		if m.Validate() != nil {
			return false
		}
		data, err := m.MarshalJSON()
		if err != nil {
			return false
		}
		m2, err := Parse(data)
		if err != nil {
			return false
		}
		if m2.NumPlaces() != m.NumPlaces() || m2.NumWorkers() != m.NumWorkers() {
			return false
		}
		mems := m.PlacesByKind(KindSysMem)
		for _, a := range mems {
			for _, b := range mems {
				if m.ShortestPath(a, b) == nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultModels(t *testing.T) {
	m := Default(0) // clamps to 1
	if m.NumWorkers() != 1 {
		t.Fatalf("Default(0) workers = %d", m.NumWorkers())
	}
	g := DefaultWithGPU(2, 1)
	if g.FirstByKind(KindGPU) == nil || g.FirstByKind(KindGPUMem) == nil {
		t.Fatal("DefaultWithGPU missing gpu places")
	}
	if g.FirstByKind(KindInterconnect) == nil {
		t.Fatal("DefaultWithGPU missing interconnect")
	}
}

func TestLoadFileAndSave(t *testing.T) {
	m := Default(2)
	path := t.TempDir() + "/plat.json"
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumWorkers() != 2 {
		t.Fatalf("loaded workers = %d", got.NumWorkers())
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Fatal("missing file should error")
	}
}
