package hiperckpt

import (
	"errors"
	"sync"
	"testing"
)

// The blob API (WriteBlob/ReadBlob/DeleteBlob) is the supervisor's
// recovery substrate: the two-slot pending/committed checkpoint
// protocol and eviction-time state redistribution run entirely through
// it, outside any rank's runtime. These tests pin its failure
// semantics.

func TestWriteBlobUnderDeviceFailure(t *testing.T) {
	s := NewStore(StoreConfig{})
	if err := s.WriteBlob("a", []float64{1, 2}); err != nil {
		t.Fatalf("healthy write: %v", err)
	}
	boom := errors.New("device full")
	s.FailWrites(boom)
	if err := s.WriteBlob("a", []float64{9, 9}); !errors.Is(err, boom) {
		t.Fatalf("failed write returned %v, want the injected error", err)
	}
	// A failed write is not torn: the previous blob survives untouched.
	blob, ok := s.ReadBlob("a")
	if !ok || blob[0] != 1 || blob[1] != 2 {
		t.Fatalf("failed write corrupted the stored blob: %v %v", blob, ok)
	}
	if err := s.WriteBlob("b", []float64{3}); !errors.Is(err, boom) {
		t.Fatalf("fresh-key write under failure returned %v", err)
	}
	if _, ok := s.ReadBlob("b"); ok {
		t.Fatal("failed write persisted a blob")
	}
	// Healing restores service.
	s.FailWrites(nil)
	if err := s.WriteBlob("a", []float64{7}); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	if blob, _ := s.ReadBlob("a"); len(blob) != 1 || blob[0] != 7 {
		t.Fatalf("healed write not visible: %v", blob)
	}
}

func TestReadBlobAfterDelete(t *testing.T) {
	s := NewStore(StoreConfig{})
	if err := s.WriteBlob("k", []float64{4, 5}); err != nil {
		t.Fatal(err)
	}
	s.DeleteBlob("k")
	if blob, ok := s.ReadBlob("k"); ok {
		t.Fatalf("deleted key still readable: %v", blob)
	}
	// Deleting a missing key is a no-op, not a fault.
	s.DeleteBlob("k")
	s.DeleteBlob("never-written")
}

// TestBlobConcurrentDeleteRead hammers the same keys from concurrent
// readers, writers, and deleters — run under -race, it proves the blob
// API is safe for the supervisor's driver-side use while rank runtimes
// checkpoint through the same store. Every successful read must see a
// complete, untorn snapshot.
func TestBlobConcurrentDeleteRead(t *testing.T) {
	s := NewStore(StoreConfig{})
	keys := []string{"rank0/x", "rank1/x", "rank2/x"}
	const iters = 300
	var wg sync.WaitGroup
	for _, key := range keys {
		k := key
		wg.Add(3)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				v := float64(i)
				_ = s.WriteBlob(k, []float64{v, v})
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s.DeleteBlob(k)
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if blob, ok := s.ReadBlob(k); ok {
					if len(blob) != 2 || blob[0] != blob[1] {
						t.Errorf("torn read on %s: %v", k, blob)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
