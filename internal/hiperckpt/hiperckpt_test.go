package hiperckpt

import (
	"errors"
	"testing"
	"time"

	"repro/hiper"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/modules"
	"repro/internal/platform"
)

func boot(t testing.TB, cfg StoreConfig) (*core.Runtime, *Module) {
	t.Helper()
	model, err := platform.Generate(platform.MachineSpec{
		Sockets: 1, CoresPerSocket: 2, NVM: true, Interconnect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.New(model, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := New(NewStore(cfg))
	modules.MustInstall(rt, m)
	t.Cleanup(rt.Shutdown)
	return rt, m
}

func TestInitRequiresStoragePlace(t *testing.T) {
	rt, err := hiper.New(hiper.WithWorkers(1)) // default model: no NVM, no disk
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	if err := modules.Install(rt, New(NewStore(StoreConfig{}))); err == nil {
		t.Fatal("Init must fail without a storage place")
	}
}

func TestInitFallsBackToDisk(t *testing.T) {
	model, err := platform.Generate(platform.MachineSpec{
		Sockets: 1, CoresPerSocket: 1, Disk: true, Interconnect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.New(model, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	m := New(NewStore(StoreConfig{}))
	modules.MustInstall(rt, m)
	if m.StoragePlace().Kind != platform.KindDisk {
		t.Fatalf("storage place = %v", m.StoragePlace())
	}
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	rt, m := boot(t, StoreConfig{Alpha: time.Millisecond})
	rt.Launch(func(c *core.Ctx) {
		data := []float64{1, 2, 3, 4}
		f := m.CheckpointAsync(c, "state", data)
		data[0] = 99 // mutate immediately: the snapshot must be eager
		c.Wait(f)
		got, ok := m.Restore(c, "state")
		if !ok || len(got) != 4 || got[0] != 1 || got[3] != 4 {
			t.Errorf("restore = %v %v", got, ok)
		}
		if _, ok := m.Restore(c, "missing"); ok {
			t.Error("missing key restored")
		}
	})
}

func TestCheckpointOverlapsCompute(t *testing.T) {
	// The point of the module: application work proceeds while the write
	// drains. Verify the future is NOT satisfied immediately and compute
	// can run meanwhile.
	rt, m := boot(t, StoreConfig{Alpha: 10 * time.Millisecond})
	rt.Launch(func(c *core.Ctx) {
		f := m.CheckpointAsync(c, "big", make([]float64, 1024))
		sum := 0
		for i := 0; i < 100000; i++ {
			sum += i
		}
		if sum != 4999950000 {
			t.Error("compute wrong")
		}
		c.Wait(f)
		if !f.Done() {
			t.Error("checkpoint never completed")
		}
	})
}

func TestCheckpointAwaitChains(t *testing.T) {
	rt, m := boot(t, StoreConfig{})
	rt.Launch(func(c *core.Ctx) {
		data := make([]float64, 8)
		step := c.AsyncFuture(func(*core.Ctx) any {
			for i := range data {
				data[i] = float64(i)
			}
			return nil
		})
		c.Wait(m.CheckpointAwait(c, "after-step", data, step))
		got, ok := m.Restore(c, "after-step")
		if !ok || got[7] != 7 {
			t.Errorf("chained checkpoint captured %v before its dependency", got)
		}
	})
}

func TestFinalizeDrainsWrites(t *testing.T) {
	store := NewStore(StoreConfig{Alpha: 5 * time.Millisecond})
	model, _ := platform.Generate(platform.MachineSpec{
		Sockets: 1, CoresPerSocket: 2, NVM: true, Interconnect: true,
	})
	rt, err := core.New(model, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := New(store)
	modules.MustInstall(rt, m)
	rt.Launch(func(c *core.Ctx) {
		m.CheckpointAsync(c, "x", []float64{42})
	})
	rt.Shutdown() // runs Finalize -> Drain
	if blob, ok := store.read("x"); !ok || blob[0] != 42 {
		t.Fatal("write lost at shutdown")
	}
}

func TestSharedStoreAcrossRanks(t *testing.T) {
	// Two runtimes (two ranks on one node) sharing one store.
	store := NewStore(StoreConfig{})
	model, _ := platform.Generate(platform.MachineSpec{
		Sockets: 1, CoresPerSocket: 1, NVM: true, Interconnect: true,
	})
	for r := 0; r < 2; r++ {
		rt, err := core.New(model, nil)
		if err != nil {
			t.Fatal(err)
		}
		m := New(store)
		modules.MustInstall(rt, m)
		r := r
		rt.Launch(func(c *core.Ctx) {
			c.Wait(m.CheckpointAsync(c, key(r), []float64{float64(r)}))
		})
		rt.Shutdown()
	}
	if blob, ok := store.read(key(1)); !ok || blob[0] != 1 {
		t.Fatal("per-rank keys collided or lost")
	}
}

func key(r int) string { return string(rune('a' + r)) }

func TestCheckpointWriteErrorFailsFuture(t *testing.T) {
	rt, m := boot(t, StoreConfig{})
	deviceErr := errors.New("device full")
	m.store.FailWrites(deviceErr)
	rt.Launch(func(c *core.Ctx) {
		f := m.CheckpointAsync(c, "x", []float64{1})
		if err := c.GetErr(f); err == nil || !errors.Is(err, deviceErr) {
			t.Errorf("checkpoint on a failed device: err = %v, want wrapped %v", err, deviceErr)
		}
		if _, ok := m.Restore(c, "x"); ok {
			t.Error("failed write persisted data")
		}
		// The dependency-chained variant fails the same way.
		if err := c.GetErr(m.CheckpointAwait(c, "y", []float64{2})); err == nil {
			t.Error("CheckpointAwait swallowed the device error")
		}
		// Heal the device: the same runtime checkpoints fine afterwards —
		// a failed write is an error value, not a poisoned module.
		m.store.FailWrites(nil)
		if err := c.GetErr(m.CheckpointAsync(c, "x", []float64{7})); err != nil {
			t.Errorf("healed device still failing: %v", err)
		}
		if got, ok := m.Restore(c, "x"); !ok || got[0] != 7 {
			t.Errorf("restore after heal = %v %v", got, ok)
		}
	})
}

func TestRestoreMissingReturnsPromptly(t *testing.T) {
	// Restore of a key that was never written must report absence, not
	// hang waiting for data that will never arrive.
	rt, m := boot(t, StoreConfig{Alpha: time.Millisecond})
	start := time.Now()
	rt.Launch(func(c *core.Ctx) {
		if _, ok := m.Restore(c, "never-written"); ok {
			t.Error("restored a key that was never checkpointed")
		}
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("missing-key restore took %v", elapsed)
	}
}

// TestChaosCrashRestore is the full failure-domain round trip: rank 1
// checkpoints to the shared store and crashes (Chaos.Kill); rank 0
// discovers the crash as a link ERROR (not a hang) on its next reliable
// send, restores rank 1's state from the store, and finishes the job.
func TestChaosCrashRestore(t *testing.T) {
	store := NewStore(StoreConfig{})
	chaos := fabric.NewChaos(fabric.NewInline(2), fabric.FaultPlan{Seed: 21})
	rel := fabric.NewReliable(chaos, fabric.RelConfig{
		RetryBase: 100 * time.Microsecond, RetryCap: time.Millisecond, MaxAttempts: 8,
	})

	model, err := platform.Generate(platform.MachineSpec{
		Sockets: 1, CoresPerSocket: 2, NVM: true, Interconnect: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Rank 1: compute, checkpoint, announce, crash.
	rt1, err := core.New(model, nil)
	if err != nil {
		t.Fatal(err)
	}
	m1 := New(store)
	modules.MustInstall(rt1, m1)
	rt1.Launch(func(c *core.Ctx) {
		c.Wait(m1.CheckpointAsync(c, "rank1-state", []float64{10, 20, 30}))
		rel.Send(1, 0, 1, []byte("checkpointed"))
	})
	if _, ok := rel.TryRecv(0, 1, 1); !ok {
		t.Fatal("rank 0 never heard rank 1's checkpoint announcement")
	}
	chaos.Kill(1)
	rt1.Shutdown()

	// Rank 0: the next send surfaces the crash as an error immediately.
	rel.Send(0, 1, 2, []byte("more work"))
	if rel.LinkErr(0, 1) == nil {
		t.Fatal("send to crashed rank recorded no link error")
	}
	rt0, err := core.New(model, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rt0.Shutdown()
	m0 := New(store)
	modules.MustInstall(rt0, m0)
	if err := rt0.Launch(func(c *core.Ctx) {
		got, ok := m0.Restore(c, "rank1-state")
		if !ok || len(got) != 3 || got[1] != 20 {
			t.Errorf("restore of crashed rank's state = %v %v", got, ok)
		}
	}); err != nil {
		t.Fatalf("recovery job failed: %v", err)
	}
}
