// Package hiperckpt is a HiPER checkpointing module — the first of the
// three future-work module types the paper's Section V sketches: "a HiPER
// module for checkpointing of application state would enable overlapping
// of checkpoint I/O with useful application work."
//
// The module wraps a simulated node-local persistent store (NVM or burst
// buffer; the paper's abstract platform model gives every node
// flash-class local storage). Checkpoint writes snapshot the data eagerly
// and stream it to the store asynchronously, returning a future — so the
// application keeps computing while the I/O drains, and can chain the
// next phase (or the next checkpoint) on the future like any other HiPER
// work.
//
// It also demonstrates that modules need no support from the core
// runtime: everything here is built on the public task APIs, exactly as a
// third party would.
package hiperckpt

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/spin"
	"repro/internal/stats"
)

// ModuleName is the name this module registers under.
const ModuleName = "ckpt"

// StoreConfig models the persistent device.
type StoreConfig struct {
	// Alpha is the fixed per-operation latency.
	Alpha time.Duration
	// BytesPerSec is the device bandwidth; zero means infinite.
	BytesPerSec float64
}

// Store is a simulated persistent key-value store (NVM / burst buffer).
// One Store may be shared by many ranks' modules, like a node-local
// device shared by the processes on the node.
type Store struct {
	cfg      StoreConfig
	mu       sync.Mutex
	blobs    map[string][]float64
	writeErr error

	writes sync.WaitGroup
}

// NewStore creates an empty store.
func NewStore(cfg StoreConfig) *Store {
	return &Store{cfg: cfg, blobs: make(map[string][]float64)}
}

// delay models one transfer.
func (s *Store) delay(bytes int) {
	d := s.cfg.Alpha
	if s.cfg.BytesPerSec > 0 {
		d += time.Duration(float64(bytes) / s.cfg.BytesPerSec * float64(time.Second))
	}
	if d > 0 {
		spin.Sleep(d)
	}
}

// FailWrites makes every subsequent write complete with err instead of
// persisting (a full or failed device); FailWrites(nil) heals it.
func (s *Store) FailWrites(err error) {
	s.mu.Lock()
	s.writeErr = err
	s.mu.Unlock()
}

// write persists a snapshot asynchronously; done runs when the write is
// durable — or has durably failed. A failed write persists nothing: the
// previous checkpoint under key, if any, is untouched (no torn state).
func (s *Store) write(key string, snapshot []float64, done func(error)) {
	s.writes.Add(1)
	go func() {
		defer s.writes.Done()
		s.delay(8 * len(snapshot))
		s.mu.Lock()
		err := s.writeErr
		if err == nil {
			s.blobs[key] = snapshot
		}
		s.mu.Unlock()
		done(err)
	}()
}

// read fetches a blob (blocking for the modelled latency).
func (s *Store) read(key string) ([]float64, bool) {
	s.mu.Lock()
	blob, ok := s.blobs[key]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	s.delay(8 * len(blob))
	out := make([]float64, len(blob))
	copy(out, blob)
	return out, true
}

// Drain waits for all in-flight writes (used by Finalize).
func (s *Store) Drain() { s.writes.Wait() }

// WriteBlob persists a blob synchronously (blocking for the modelled
// latency), for driver-side protocols — the elastic resize path
// redistributes per-rank state through the store between job phases,
// outside any rank's runtime. Returns the device failure, if injected.
func (s *Store) WriteBlob(key string, data []float64) error {
	snapshot := make([]float64, len(data))
	copy(snapshot, data)
	s.delay(8 * len(snapshot))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.writeErr != nil {
		return s.writeErr
	}
	s.blobs[key] = snapshot
	return nil
}

// ReadBlob fetches a blob synchronously (blocking for the modelled
// latency); the returned slice is a private copy.
func (s *Store) ReadBlob(key string) ([]float64, bool) {
	return s.read(key)
}

// DeleteBlob removes a blob (e.g. a shrunk rank's checkpoint after its
// state has been redistributed).
func (s *Store) DeleteBlob(key string) {
	s.mu.Lock()
	delete(s.blobs, key)
	s.mu.Unlock()
}

// RankKey names rank-owned state by *logical* rank. Keying checkpoints
// by logical rank — never by fabric endpoint — is what lets a rank
// killed on one endpoint restore onto a fresh one: the key survives the
// remap because nothing in it identifies the hardware.
func RankKey(logical int, name string) string {
	return fmt.Sprintf("rank%d/%s", logical, name)
}

// Module is the checkpoint module bound to one rank's runtime.
type Module struct {
	store *Store
	rt    *core.Runtime
	place *platform.Place // NVM (preferred) or disk place
}

// New creates the module over a store.
func New(store *Store) *Module { return &Module{store: store} }

// Name implements modules.Module.
func (m *Module) Name() string { return ModuleName }

// Init asserts the platform model has persistent storage — an NVM place,
// else a disk place — covered by some worker path (checkpoint initiation
// tasks are placed there, keeping storage traffic visible to the unified
// scheduler like all other module work).
func (m *Module) Init(rt *core.Runtime) error {
	p := rt.Model().FirstByKind(platform.KindNVM)
	if p == nil {
		p = rt.Model().FirstByKind(platform.KindDisk)
	}
	if p == nil {
		return fmt.Errorf("hiperckpt: platform model has neither %q nor %q place",
			platform.KindNVM, platform.KindDisk)
	}
	if !rt.Model().CoveredPlaces()[p.ID] {
		return fmt.Errorf("hiperckpt: storage place %v is on no worker's pop or steal path", p)
	}
	m.rt = rt
	m.place = p
	return nil
}

// Finalize drains outstanding writes so no checkpoint is torn at exit.
func (m *Module) Finalize() { m.store.Drain() }

// StoragePlace returns the place checkpoint tasks run at.
func (m *Module) StoragePlace() *platform.Place { return m.place }

// CheckpointAsync snapshots data (eagerly — the caller may mutate it
// immediately) and persists it under key, returning a future satisfied
// when the write is durable. A device failure fails the future (Err /
// GetErr see it) rather than hanging or panicking — checkpointing is
// exactly the code that must keep working when hardware does not. The
// snapshot-and-initiate step runs as a task at the storage place.
func (m *Module) CheckpointAsync(c *core.Ctx, key string, data []float64) *core.Future {
	defer stats.Track(ModuleName, "checkpoint_async")()
	snapshot := make([]float64, len(data))
	copy(snapshot, data)
	prom := core.NewPromise(m.rt)
	c.AsyncAt(m.place, func(*core.Ctx) {
		m.store.write(key, snapshot, func(err error) {
			if err != nil {
				prom.PutErr(fmt.Errorf("hiperckpt: checkpoint %q: %w", key, err))
				return
			}
			prom.Put(nil)
		})
	})
	return prom.Future()
}

// CheckpointAwait is CheckpointAsync predicated on dependency futures —
// e.g. snapshot only after the time step that produces the state.
func (m *Module) CheckpointAwait(c *core.Ctx, key string, data []float64, deps ...*core.Future) *core.Future {
	out := core.NewPromise(m.rt)
	c.AsyncAwaitAt(m.place, func(cc *core.Ctx) {
		m.CheckpointAsync(cc, key, data).OnSettled(func(_ any, err error) {
			if err != nil {
				out.PutErr(err)
				return
			}
			out.Put(nil)
		})
	}, deps...)
	return out.Future()
}

// Restore reads a checkpoint back (taskified at the storage place; the
// calling task is descheduled for the device latency).
func (m *Module) Restore(c *core.Ctx, key string) ([]float64, bool) {
	defer stats.Track(ModuleName, "restore")()
	f := c.AsyncFutureAt(m.place, func(cc *core.Ctx) any {
		done := core.NewPromise(m.rt)
		go func() {
			blob, ok := m.store.read(key)
			if !ok {
				done.Put(nil)
				return
			}
			done.Put(blob)
		}()
		cc.Wait(done.Future())
		return done.Future().Get()
	})
	v := c.Get(f)
	if v == nil {
		return nil, false
	}
	return v.([]float64), true
}
