package job

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/stats"
)

// Supervise is the self-healing phase driver: RunElastic's phase
// machinery with the scripted event schedule replaced by a phi-accrual
// failure detector. Nothing tells the supervisor which rank died or
// when — it learns of failures the way a production pilot-job layer
// must, by a phase attempt failing verification and the detector's
// suspicion crossing threshold — and recovers autonomously:
//
//	attempt phase → verify
//	  │ fail
//	  ▼
//	sweep the detector until a suspect emerges (detection latency)
//	roll back: discard the attempt, restore every rank from the last
//	  committed checkpoint (OnRollback + Restored procs)
//	remap the suspect onto a spare endpoint   — while its restart
//	  budget and the spare pool last
//	evict (shrink the world by one)           — when either runs out,
//	  if the workload opted in via the shrink redistribution hook
//	escalate with a structured RecoveryReport — at MinRanks or the
//	  per-phase attempt cap
//
// Retries back off exponentially (RetryBase doubling to RetryCap).
// Every recovery action lands in the RecoveryReport and in the next
// attempt's watchdog stall label, so a recovery that itself wedges
// names the in-flight step.

// SuperviseSpec describes a supervised job.
type SuperviseSpec struct {
	// WorkersPerRank, NVM, Watchdog, Table: as in ElasticSpec.
	WorkersPerRank int
	NVM            bool
	Watchdog       *core.WatchdogConfig
	Table          *fabric.EpochTable
	// Detector supplies failure suspicion. The supervisor watches the
	// table's endpoints, baselines it, and keeps its watch-set in step
	// with remaps and evictions.
	Detector *fabric.Detector
	// Phases is how many phases must commit for the job to succeed.
	Phases int
	// MinRanks is the degradation floor: the supervisor never shrinks
	// the world below it (default 2).
	MinRanks int
	// RestartBudget is how many remaps each logical rank gets before
	// its next suspicion degrades the world instead (default 2).
	RestartBudget int
	// MaxAttempts caps attempts per phase; spending it escalates
	// (default 8).
	MaxAttempts int
	// RetryBase/RetryCap bound the exponential backoff between
	// attempts (defaults 500µs / 8ms).
	RetryBase time.Duration
	RetryCap  time.Duration
	// BaselineRounds warms the detector before phase 0 (default 8).
	BaselineRounds int
	// SweepRounds bounds each post-failure detection sweep (default 32).
	SweepRounds int
	// ShutdownDeadline bounds each attempt's runtime-shutdown pass; a
	// runtime wedged past it (watchdog-aborted phases) is abandoned
	// (default 2s).
	ShutdownDeadline time.Duration
	// Inject, if non-nil, runs before every attempt launches. It is
	// the fault-injection seam for tests and benchmarks (see
	// KillPlan): the supervisor never sees what it does — recovery is
	// driven purely by verification failures and detector suspicion.
	Inject func(phase, attempt int)
	// OnRollback, if non-nil, observes every discarded attempt before
	// recovery actions apply: the workload wipes in-memory rank state
	// and per-attempt scratch, and discards uncommitted (pending)
	// checkpoints. Suspects lists the suspected logical ranks (empty
	// for a transient failure with no suspect).
	OnRollback func(phase, attempt int, suspects []int)
	// OnCommit, if non-nil, runs after a phase verifies: the workload
	// promotes the phase's pending checkpoints to committed — the
	// state rollback restores. An error is fatal (checkpoint storage
	// is the recovery substrate; losing it is not recoverable).
	OnCommit func(phase int) error
	// OnEvent, if non-nil, observes recovery actions in ElasticSpec's
	// vocabulary: a remap arrives as a "kill" event (old and fresh
	// endpoints), an eviction as a "shrink" of 1 whose dropped rank's
	// committed state the workload must redistribute — the same hook
	// contract scripted elastic jobs already implement.
	OnEvent func(ev ElasticEvent, oldEndpoint, freshEndpoint int)
	// AfterPhase verifies an attempt (digest checks) and, on success,
	// records it. An error fails the attempt and triggers recovery.
	AfterPhase func(phase int) error
}

func (s SuperviseSpec) withDefaults() SuperviseSpec {
	if s.WorkersPerRank <= 0 {
		s.WorkersPerRank = 1
	}
	if s.MinRanks <= 0 {
		s.MinRanks = 2
	}
	if s.RestartBudget <= 0 {
		s.RestartBudget = 2
	}
	if s.MaxAttempts <= 0 {
		s.MaxAttempts = 8
	}
	if s.RetryBase <= 0 {
		s.RetryBase = 500 * time.Microsecond
	}
	if s.RetryCap <= 0 {
		s.RetryCap = 8 * time.Millisecond
	}
	if s.BaselineRounds <= 0 {
		s.BaselineRounds = 8
	}
	if s.SweepRounds <= 0 {
		s.SweepRounds = 32
	}
	if s.ShutdownDeadline <= 0 {
		s.ShutdownDeadline = 2 * time.Second
	}
	return s
}

// Detection is one detector-driven recovery decision in the report.
type Detection struct {
	Phase, Attempt int
	Rank           int     // suspected logical rank
	Endpoint       int     // the suspected (old) endpoint
	Phi            float64 // suspicion level at detection
	Rounds         int     // sweep rounds until suspicion — the detection latency
	Latency        time.Duration
	Action         string // "remap", "evict", "escalate"
}

// Recovery summarizes one phase that needed retries.
type Recovery struct {
	Phase    int
	Attempts int           // attempts the phase took (>= 2)
	Downtime time.Duration // first failure → successful commit: the MTTR
}

// RecoveryReport is the supervisor's structured account of a run. On
// escalation it is joined into the job error via RecoveryError.
type RecoveryReport struct {
	Phases     int // phases committed
	Attempts   int // attempts launched
	Retries    int // attempts discarded
	Remaps     int
	Evictions  int
	FinalRanks int
	Detections []Detection
	Recoveries []Recovery
	Escalated  string // non-empty: why the supervisor gave up
}

// String renders the one-line summary.
func (r *RecoveryReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "phases %d, attempts %d, retries %d, remaps %d, evictions %d, final ranks %d",
		r.Phases, r.Attempts, r.Retries, r.Remaps, r.Evictions, r.FinalRanks)
	for _, d := range r.Detections {
		fmt.Fprintf(&b, "; phase %d attempt %d: rank %d (ep %d) phi %.1f after %d rounds -> %s",
			d.Phase, d.Attempt, d.Rank, d.Endpoint, d.Phi, d.Rounds, d.Action)
	}
	if r.Escalated != "" {
		fmt.Fprintf(&b, "; escalated: %s", r.Escalated)
	}
	return b.String()
}

// RecoveryError joins the supervisor's report into the job error when
// the recovery budget is spent. errors.As recovers the report.
type RecoveryError struct {
	Report *RecoveryReport
	Err    error
}

func (e *RecoveryError) Error() string {
	return fmt.Sprintf("job: supervision escalated (%s): %v", e.Report.String(), e.Err)
}

func (e *RecoveryError) Unwrap() error { return e.Err }

// Supervise runs spec.Phases phases of body under detector-driven
// recovery. The report is returned in every case — alongside the error
// on escalation — so callers always get the detection timeline.
func Supervise(spec SuperviseSpec, setup func(p *Proc) error, body func(p *Proc, c *core.Ctx)) (*RecoveryReport, error) {
	rep := &RecoveryReport{}
	if spec.Table == nil || spec.Detector == nil {
		return rep, fmt.Errorf("job: supervised run needs an epoch table and a detector")
	}
	if spec.Phases <= 0 {
		return rep, fmt.Errorf("job: need at least 1 phase, got %d", spec.Phases)
	}
	spec = spec.withDefaults()
	tab, det := spec.Table, spec.Detector

	for _, ep := range tab.Endpoints() {
		det.Watch(ep)
	}
	det.Baseline(spec.BaselineRounds)

	escalate := func(cause error, reason string, args ...any) (*RecoveryReport, error) {
		rep.Escalated = fmt.Sprintf(reason, args...)
		rep.FinalRanks = tab.Ranks()
		return rep, &RecoveryError{Report: rep, Err: cause}
	}

	budget := make(map[int]int) // logical rank -> remaps spent
	restored := make(map[int]bool)
	for phase := 0; phase < spec.Phases; phase++ {
		var downSince time.Time
		recovering := "" // last recovery trail, for the stall label
		for attempt := 0; ; attempt++ {
			if attempt >= spec.MaxAttempts {
				return escalate(fmt.Errorf("phase %d still failing", phase),
					"phase %d spent its attempt budget (%d)", phase, spec.MaxAttempts)
			}
			rep.Attempts++
			if spec.Inject != nil {
				spec.Inject(phase, attempt)
			}
			label := fmt.Sprintf("phase %d attempt %d", phase, attempt)
			if recovering != "" {
				label += " (recovering: " + recovering + ")"
			}
			err := runPhase(phaseBoot{
				workers:         spec.WorkersPerRank,
				nvm:             spec.NVM,
				watchdog:        spec.Watchdog,
				table:           tab,
				phase:           phase,
				restored:        restored,
				label:           label,
				abandonShutdown: spec.ShutdownDeadline,
			}, setup, body)
			if err == nil && spec.AfterPhase != nil {
				err = spec.AfterPhase(phase)
			}
			if err == nil {
				if spec.OnCommit != nil {
					if cerr := spec.OnCommit(phase); cerr != nil {
						return rep, fmt.Errorf("job: phase %d commit: %w", phase, cerr)
					}
				}
				rep.Phases++
				if attempt > 0 {
					rep.Recoveries = append(rep.Recoveries,
						Recovery{Phase: phase, Attempts: attempt + 1, Downtime: time.Since(downSince)})
				}
				restored = make(map[int]bool)
				break
			}

			// The attempt is discarded. Find out who (if anyone) died,
			// roll back, recover, and go again.
			if downSince.IsZero() {
				downSince = time.Now()
			}
			rep.Retries++
			stats.SetGauge("supervise", "retries", float64(rep.Retries))

			sweepStart := time.Now()
			suspectEps, rounds := det.Sweep(spec.SweepRounds)
			sweepLat := time.Since(sweepStart)

			var suspects []int
			for _, ep := range suspectEps {
				if lr := tab.Logical(ep); lr >= 0 {
					suspects = append(suspects, lr)
				} else {
					det.Unwatch(ep) // stale: not carrying any rank
				}
			}
			if spec.OnRollback != nil {
				spec.OnRollback(phase, attempt, suspects)
			}

			var steps []string
			for _, lr := range suspects {
				ep := tab.Endpoint(lr)
				d := Detection{
					Phase: phase, Attempt: attempt, Rank: lr, Endpoint: ep,
					Phi: det.Phi(ep), Rounds: rounds, Latency: sweepLat,
				}
				if budget[lr] < spec.RestartBudget {
					if old, fresh, rerr := tab.Remap(lr); rerr == nil {
						budget[lr]++
						rep.Remaps++
						stats.SetGauge("supervise", "remaps", float64(rep.Remaps))
						det.Unwatch(old)
						det.Watch(fresh)
						d.Action = "remap"
						rep.Detections = append(rep.Detections, d)
						steps = append(steps, fmt.Sprintf("remap rank %d ep %d->%d", lr, old, fresh))
						if spec.OnEvent != nil {
							spec.OnEvent(ElasticEvent{AfterPhase: phase, Kind: "kill", Rank: lr}, old, fresh)
						}
						continue
					}
					// Spare pool exhausted: degrade instead.
				}
				if tab.Ranks()-1 < spec.MinRanks {
					d.Action = "escalate"
					rep.Detections = append(rep.Detections, d)
					return escalate(err, "rank %d suspected with restart budget and world floor (%d ranks) spent",
						lr, spec.MinRanks)
				}
				dropped, everr := tab.Evict(lr)
				if everr != nil {
					return rep, fmt.Errorf("job: phase %d evicting rank %d: %w", phase, lr, everr)
				}
				rep.Evictions++
				stats.SetGauge("supervise", "evictions", float64(rep.Evictions))
				det.Unwatch(ep)
				d.Action = "evict"
				rep.Detections = append(rep.Detections, d)
				steps = append(steps, fmt.Sprintf("evict rank %d (world -> %d)", lr, tab.Ranks()))
				if spec.OnEvent != nil {
					// The same shrink contract scripted jobs implement:
					// the dropped (previous top) rank's committed state
					// must redistribute into the smaller world.
					spec.OnEvent(ElasticEvent{AfterPhase: phase, Kind: "shrink", Delta: 1, Rank: dropped}, -1, -1)
				}
			}
			if len(suspects) == 0 {
				steps = append(steps, "transient: retry without remap")
			}
			recovering = strings.Join(steps, ", ")

			// Full rollback: every rank restores from its committed
			// checkpoint on the next attempt.
			restored = make(map[int]bool)
			for r := 0; r < tab.Ranks(); r++ {
				restored[r] = true
			}

			backoff := spec.RetryBase << uint(attempt)
			if backoff > spec.RetryCap {
				backoff = spec.RetryCap
			}
			time.Sleep(backoff)
		}
	}
	rep.FinalRanks = tab.Ranks()
	return rep, nil
}

// KillPlan is a seeded, unscripted fault injector for supervised jobs:
// before an attempt it may (with probability Prob, at most Max times)
// kill the endpoint of a seeded-pseudorandomly chosen current logical
// rank. The decisions are a pure function of (Seed, phase, attempt), so
// runs replay exactly — but, unlike an ElasticEvent script, nothing is
// communicated to the supervisor: it must detect the kill itself.
type KillPlan struct {
	Seed uint64
	Prob float64
	Max  int
}

// Injector binds the plan to a table and a kill primitive (typically
// Chaos.Kill), yielding a SuperviseSpec.Inject hook.
func (k KillPlan) Injector(tab *fabric.EpochTable, kill func(endpoint int)) func(phase, attempt int) {
	killed := 0
	return func(phase, attempt int) {
		if killed >= k.Max || k.Prob <= 0 {
			return
		}
		h := RankSeed(k.Seed, phase, uint64(attempt))
		if float64(h>>11)/(1<<53) >= k.Prob {
			return
		}
		victim := int(RankSeed(k.Seed+1, phase, uint64(attempt)) % uint64(tab.Ranks()))
		kill(tab.Endpoint(victim))
		killed++
	}
}
