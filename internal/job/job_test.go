package job

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

func TestRunLaunchesEveryRank(t *testing.T) {
	var mask atomic.Int64
	err := Run(Spec{Ranks: 5, WorkersPerRank: 2}, nil, func(p *Proc, c *core.Ctx) {
		mask.Add(1 << p.Rank)
		if p.RT.NumWorkers() != 2 {
			t.Errorf("rank %d workers = %d", p.Rank, p.RT.NumWorkers())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if mask.Load() != 31 {
		t.Fatalf("rank mask = %b", mask.Load())
	}
}

func TestRunSetupErrorAborts(t *testing.T) {
	ran := false
	err := Run(Spec{Ranks: 2}, func(p *Proc) error {
		if p.Rank == 1 {
			return errors.New("boom")
		}
		return nil
	}, func(*Proc, *core.Ctx) { ran = true })
	if err == nil || ran {
		t.Fatalf("err=%v ran=%v", err, ran)
	}
}

func TestRunValidation(t *testing.T) {
	if err := Run(Spec{Ranks: 0}, nil, nil); err == nil {
		t.Fatal("zero ranks must error")
	}
}

func TestRunOnStartBeforeBodies(t *testing.T) {
	var started atomic.Bool
	err := Run(Spec{Ranks: 2, OnStart: func() { started.Store(true) }},
		nil, func(p *Proc, c *core.Ctx) {
			if !started.Load() {
				t.Error("body ran before OnStart")
			}
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithGPUPlatform(t *testing.T) {
	err := Run(Spec{Ranks: 1, WorkersPerRank: 2, GPUs: 1}, nil, func(p *Proc, c *core.Ctx) {
		if p.RT.Model().FirstByKind("gpu") == nil {
			t.Error("GPU place missing")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunFlat(t *testing.T) {
	var n atomic.Int64
	if err := RunFlat(8, func(r int) error { n.Add(int64(r)); return nil }); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 28 {
		t.Fatalf("sum of ranks = %d", n.Load())
	}
}

func TestRunFlatCollectsRankErrors(t *testing.T) {
	var ran atomic.Int64
	err := RunFlat(3, func(r int) error {
		ran.Add(1)
		switch r {
		case 1:
			return errors.New("rank 1 failed")
		case 2:
			panic("rank 2 exploded")
		}
		return nil
	})
	if err == nil {
		t.Fatal("failing ranks returned nil")
	}
	if ran.Load() != 3 {
		t.Fatalf("only %d ranks ran to completion", ran.Load())
	}
	if !strings.Contains(err.Error(), "rank 1") || !strings.Contains(err.Error(), "rank 2") {
		t.Errorf("error does not name both failing ranks: %v", err)
	}
	if strings.Contains(err.Error(), "rank 0:") {
		t.Errorf("healthy rank blamed: %v", err)
	}
}

func TestRunCollectsRankErrors(t *testing.T) {
	err := Run(Spec{Ranks: 3, WorkersPerRank: 1}, nil,
		func(p *Proc, c *core.Ctx) {
			if p.Rank == 1 {
				panic("rank 1 exploded")
			}
		})
	if err == nil {
		t.Fatal("job with a panicking rank returned nil")
	}
	var pe *core.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("rank panic not surfaced as PanicError: %v", err)
	}
	if !strings.Contains(err.Error(), "rank 1") {
		t.Errorf("error does not name the failing rank: %v", err)
	}
	if strings.Contains(err.Error(), "rank 0:") || strings.Contains(err.Error(), "rank 2:") {
		t.Errorf("healthy ranks blamed: %v", err)
	}
}

func TestRunWatchdogAbortsWedgedRank(t *testing.T) {
	// Rank 0 waits on a promise nobody satisfies. The watchdog's OnStall
	// hook doubles as the release valve: once the stall is diagnosed the
	// promise is satisfied so the job can still shut down cleanly — the
	// abort error has already been decided by then.
	var mu sync.Mutex
	var wedged *core.Promise
	err := Run(Spec{
		Ranks: 2, WorkersPerRank: 1,
		Watchdog: &core.WatchdogConfig{
			Deadline: 200 * time.Millisecond,
			Abort:    true,
			OnStall: func(*core.StallReport) {
				mu.Lock()
				defer mu.Unlock()
				if wedged != nil && !wedged.Future().Done() {
					wedged.Put(nil)
				}
			},
		},
	}, nil, func(p *Proc, c *core.Ctx) {
		if p.Rank == 0 {
			prom := core.NewPromise(p.RT)
			mu.Lock()
			wedged = prom
			mu.Unlock()
			c.Wait(prom.Future())
		}
	})
	if !errors.Is(err, core.ErrStalled) {
		t.Fatalf("wedged rank did not trip the watchdog: %v", err)
	}
	if !strings.Contains(err.Error(), "rank 0") {
		t.Errorf("stall not attributed to rank 0: %v", err)
	}
}
