package job

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

func TestRunLaunchesEveryRank(t *testing.T) {
	var mask atomic.Int64
	err := Run(Spec{Ranks: 5, WorkersPerRank: 2}, nil, func(p *Proc, c *core.Ctx) {
		mask.Add(1 << p.Rank)
		if p.RT.NumWorkers() != 2 {
			t.Errorf("rank %d workers = %d", p.Rank, p.RT.NumWorkers())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if mask.Load() != 31 {
		t.Fatalf("rank mask = %b", mask.Load())
	}
}

func TestRunSetupErrorAborts(t *testing.T) {
	ran := false
	err := Run(Spec{Ranks: 2}, func(p *Proc) error {
		if p.Rank == 1 {
			return errors.New("boom")
		}
		return nil
	}, func(*Proc, *core.Ctx) { ran = true })
	if err == nil || ran {
		t.Fatalf("err=%v ran=%v", err, ran)
	}
}

func TestRunValidation(t *testing.T) {
	if err := Run(Spec{Ranks: 0}, nil, nil); err == nil {
		t.Fatal("zero ranks must error")
	}
}

func TestRunOnStartBeforeBodies(t *testing.T) {
	var started atomic.Bool
	err := Run(Spec{Ranks: 2, OnStart: func() { started.Store(true) }},
		nil, func(p *Proc, c *core.Ctx) {
			if !started.Load() {
				t.Error("body ran before OnStart")
			}
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithGPUPlatform(t *testing.T) {
	err := Run(Spec{Ranks: 1, WorkersPerRank: 2, GPUs: 1}, nil, func(p *Proc, c *core.Ctx) {
		if p.RT.Model().FirstByKind("gpu") == nil {
			t.Error("GPU place missing")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunFlat(t *testing.T) {
	var n atomic.Int64
	RunFlat(8, func(r int) { n.Add(int64(r)) })
	if n.Load() != 28 {
		t.Fatalf("sum of ranks = %d", n.Load())
	}
}
