package job

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/platform"
)

// Elastic jobs: phased execution over an epoch table, with migration
// (kill → remap onto a fresh endpoint) and live resize (grow/shrink)
// applied between phases — the collective boundaries where no traffic
// is in flight. Library worlds are built once by the caller over a
// fabric.Virtual and persist across phases; what is rebuilt per phase
// is only the per-rank HiPER runtime, matching a real restart of the
// failed process while the job object survives.

// ElasticEvent is one scripted membership change, applied after the
// named phase completes.
type ElasticEvent struct {
	// AfterPhase is the 0-based phase index this event follows.
	AfterPhase int
	// Kind is "kill" (fail Rank's endpoint and remap the rank onto a
	// fresh one), "grow" (add Delta logical ranks), or "shrink" (drop
	// the top Delta logical ranks).
	Kind string
	// Rank is the logical rank to kill (Kind "kill").
	Rank int
	// Delta is the rank-count change (Kind "grow"/"shrink").
	Delta int
}

// ElasticSpec describes an elastic job.
type ElasticSpec struct {
	// WorkersPerRank sizes each rank's runtime (default 1).
	WorkersPerRank int
	// NVM gives every rank's platform model a node-local NVM place —
	// required when the body checkpoints through hiperckpt.
	NVM bool
	// Watchdog, if non-nil, arms every rank's quiesce watchdog. Elastic
	// phases additionally stamp the current epoch and phase into stall
	// reports, so a wedged migration names where it stuck.
	Watchdog *core.WatchdogConfig
	// Table is the logical-rank → endpoint map shared with the
	// fabric.Virtual the caller's worlds are built over.
	Table *fabric.EpochTable
	// Kill, if non-nil, is invoked with the condemned *physical*
	// endpoint before a "kill" event's remap — typically Chaos.Kill, so
	// the old endpoint is dead on the wire, not just unmapped.
	Kill func(endpoint int)
	// Phases is how many times the body runs (>= 1). Events apply
	// between phases.
	Phases int
	// Events is the membership-change schedule.
	Events []ElasticEvent
	// OnEvent, if non-nil, observes each applied event. For "kill" it
	// receives the old and fresh endpoints; -1/-1 otherwise. Workloads
	// use it to drop the killed rank's in-process state (simulating the
	// loss the checkpoint restore must repair) and to redistribute
	// state across a resize.
	OnEvent func(ev ElasticEvent, oldEndpoint, freshEndpoint int)
	// AfterPhase, if non-nil, runs after each phase's runtimes shut
	// down and before that phase's events apply — the collective
	// boundary. Workload drivers verify phase results and reset shared
	// scratch here; an error aborts the job.
	AfterPhase func(phase int) error
}

// RunElastic runs spec.Phases phases of body. Each phase boots one
// fresh runtime per current logical rank (setup runs per rank per
// phase — module installation), launches body on every rank, joins the
// per-rank errors exactly like Run, then applies the phase's scripted
// events to the epoch table. A phase error aborts the job; event
// application errors (e.g. remap with no spare endpoint) do too.
//
// The Proc handed to setup/body carries the elastic coordinates: the
// stable logical Rank, the current physical Endpoint, the table Epoch,
// the Phase index, and Restored — true on the phase right after this
// rank was killed and remapped, telling the body to recover state from
// its checkpoint instead of trusting in-memory remnants.
func RunElastic(spec ElasticSpec, setup func(p *Proc) error, body func(p *Proc, c *core.Ctx)) error {
	if spec.Table == nil {
		return fmt.Errorf("job: elastic run needs an epoch table")
	}
	if spec.Phases <= 0 {
		return fmt.Errorf("job: need at least 1 phase, got %d", spec.Phases)
	}
	if spec.WorkersPerRank <= 0 {
		spec.WorkersPerRank = 1
	}
	restored := make(map[int]bool)
	for phase := 0; phase < spec.Phases; phase++ {
		if err := runElasticPhase(&spec, phase, restored, setup, body); err != nil {
			return err
		}
		if spec.AfterPhase != nil {
			if err := spec.AfterPhase(phase); err != nil {
				return fmt.Errorf("job: after phase %d: %w", phase, err)
			}
		}
		restored = make(map[int]bool)
		for _, ev := range spec.Events {
			if ev.AfterPhase != phase {
				continue
			}
			oldEp, freshEp := -1, -1
			switch ev.Kind {
			case "kill":
				oldEp = spec.Table.Endpoint(ev.Rank)
				if spec.Kill != nil {
					spec.Kill(oldEp)
				}
				var err error
				_, freshEp, err = spec.Table.Remap(ev.Rank)
				if err != nil {
					return fmt.Errorf("job: phase %d: %w", phase, err)
				}
				restored[ev.Rank] = true
			case "grow":
				if _, err := spec.Table.Grow(ev.Delta); err != nil {
					return fmt.Errorf("job: phase %d: %w", phase, err)
				}
			case "shrink":
				if err := spec.Table.Shrink(ev.Delta); err != nil {
					return fmt.Errorf("job: phase %d: %w", phase, err)
				}
			default:
				return fmt.Errorf("job: phase %d: unknown elastic event kind %q", phase, ev.Kind)
			}
			if spec.OnEvent != nil {
				spec.OnEvent(ev, oldEp, freshEp)
			}
		}
	}
	return nil
}

// runElasticPhase is one phase: Run's boot/launch/join/shutdown cycle
// over the table's current membership, with elastic coordinates stamped
// into each Proc and into the watchdog's stall labels.
func runElasticPhase(spec *ElasticSpec, phase int, restored map[int]bool,
	setup func(p *Proc) error, body func(p *Proc, c *core.Ctx)) error {
	return runPhase(phaseBoot{
		workers:  spec.WorkersPerRank,
		nvm:      spec.NVM,
		watchdog: spec.Watchdog,
		table:    spec.Table,
		phase:    phase,
		restored: restored,
		label:    fmt.Sprintf("phase %d", phase),
	}, setup, body)
}

// phaseBoot parameterizes one phase of a phased driver (RunElastic's
// scripted schedule or Supervise's detector-driven retry loop): boot one
// fresh runtime per current logical rank, launch the bodies, join the
// per-rank errors, shut everything down.
type phaseBoot struct {
	workers  int
	nvm      bool
	watchdog *core.WatchdogConfig
	table    *fabric.EpochTable
	phase    int
	restored map[int]bool
	// label is stamped (with the table epoch) into watchdog stall
	// reports, so a wedged phase names where — and, for supervised
	// retries, which recovery step — it stuck.
	label string
	// abandonShutdown, when > 0, bounds the post-join Shutdown pass: a
	// runtime that cannot quiesce within the deadline (e.g. after a
	// watchdog abort of a wedged phase) is abandoned rather than
	// allowed to wedge the supervisor's recovery loop.
	abandonShutdown time.Duration
}

func runPhase(b phaseBoot, setup func(p *Proc) error, body func(p *Proc, c *core.Ctx)) error {
	ranks := b.table.Ranks()
	epoch := b.table.Epoch()
	var opts *core.Options
	if b.watchdog != nil {
		opts = &core.Options{Watchdog: b.watchdog}
	}
	procs := make([]*Proc, ranks)
	for r := 0; r < ranks; r++ {
		var model *platform.Model
		if b.nvm {
			var err error
			model, err = platform.Generate(platform.MachineSpec{
				Sockets: 1, CoresPerSocket: b.workers, NVM: true, Interconnect: true,
			})
			if err != nil {
				return fmt.Errorf("job: phase %d rank %d: %w", b.phase, r, err)
			}
		} else {
			model = platform.Default(b.workers)
		}
		rt, err := core.New(model, opts)
		if err != nil {
			return fmt.Errorf("job: phase %d rank %d: %w", b.phase, r, err)
		}
		rt.SetStallLabel(epoch, b.label)
		procs[r] = &Proc{
			Rank:     r,
			RT:       rt,
			Endpoint: b.table.Endpoint(r),
			Epoch:    epoch,
			Phase:    b.phase,
			Restored: b.restored[r],
		}
		if setup != nil {
			if err := setup(procs[r]); err != nil {
				return fmt.Errorf("job: phase %d rank %d setup: %w", b.phase, r, err)
			}
		}
	}
	rankErrs := make([]error, ranks)
	var wg sync.WaitGroup
	for _, p := range procs {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			if err := p.RT.Launch(func(c *core.Ctx) { body(p, c) }); err != nil {
				rankErrs[p.Rank] = fmt.Errorf("job: phase %d rank %d: %w", b.phase, p.Rank, err)
			}
		}(p)
	}
	wg.Wait()
	if b.abandonShutdown > 0 {
		done := make(chan struct{})
		go func() {
			for _, p := range procs {
				p.RT.Shutdown()
			}
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(b.abandonShutdown):
			// Wedged runtimes are abandoned; the phase error (watchdog
			// abort or rank failure) reports why.
		}
	} else {
		for _, p := range procs {
			p.RT.Shutdown()
		}
	}
	return errors.Join(rankErrs...)
}

// RankSeed derives a deterministic per-rank RNG stream from a job seed,
// a *logical* rank, and a caller-chosen stream label (typically the
// phase index). Because nothing physical enters the mix, a rank that
// migrated endpoints — or a rank recomputed at a different world size —
// regenerates byte-identical data; that is what makes the elastic
// byte-identical proofs possible. SplitMix64 finalizer over the mixed
// words.
func RankSeed(seed uint64, logical int, stream uint64) uint64 {
	z := seed ^ (uint64(logical)+1)*0x9e3779b97f4a7c15 ^ (stream+1)*0xbf58476d1ce4e5b9
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
