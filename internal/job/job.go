// Package job boots simulated multi-rank HiPER jobs inside one process:
// one core.Runtime (with its own platform model and worker pool) per
// simulated rank, matching how the paper's hybrid configurations run one
// multi-threaded HiPER process per node.
package job

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/platform"
)

// Proc is one simulated process (rank) of a job. Rank is the *logical*
// rank — the stable identity elastic jobs preserve across migration.
// The remaining fields are the elastic coordinates RunElastic stamps
// (zero for plain Run): the physical fabric Endpoint currently carrying
// this rank, the epoch-table generation and phase index this runtime
// was booted in, and Restored, set on the phase right after this rank
// was killed and remapped so the body knows to recover from checkpoint.
type Proc struct {
	Rank     int
	RT       *core.Runtime
	Endpoint int
	Epoch    uint64
	Phase    int
	Restored bool
}

// Spec describes a job.
type Spec struct {
	Ranks          int
	WorkersPerRank int
	GPUs           int // GPUs per rank's platform model (0 for none)
	// OnStart, if non-nil, runs after all runtimes are constructed and set
	// up, immediately before the rank bodies launch. Benchmarks use it to
	// start their clocks after process/runtime boot, which a real job's
	// measured region would not include either.
	OnStart func()
	// Watchdog, if non-nil, arms every rank's quiesce watchdog: a rank
	// that cannot drain its root finish scope within the deadline reports
	// (or aborts, per the config) instead of wedging the whole job
	// silently.
	Watchdog *core.WatchdogConfig
	// Policy, if non-nil, selects every rank's scheduling policy (nil
	// keeps the built-in random-steal fast path).
	Policy core.SchedPolicy
}

// Run boots spec.Ranks runtimes, calls setup for each (module
// installation), then runs body once per rank concurrently inside
// Launch, and finally shuts all runtimes down. The first setup error
// aborts the job. A rank body that fails — a task panic isolated by the
// worker barrier, a failed scope, a tripped watchdog abort — fails the
// job: every rank still runs to completion, then the per-rank errors
// come back joined, each tagged with its rank.
func Run(spec Spec, setup func(p *Proc) error, body func(p *Proc, c *core.Ctx)) error {
	if spec.Ranks <= 0 {
		return fmt.Errorf("job: need at least 1 rank, got %d", spec.Ranks)
	}
	if spec.WorkersPerRank <= 0 {
		spec.WorkersPerRank = 1
	}
	var opts *core.Options
	if spec.Watchdog != nil || spec.Policy != nil {
		opts = &core.Options{Watchdog: spec.Watchdog, Policy: spec.Policy}
	}
	procs := make([]*Proc, spec.Ranks)
	for r := 0; r < spec.Ranks; r++ {
		var model *platform.Model
		if spec.GPUs > 0 {
			model = platform.DefaultWithGPU(spec.WorkersPerRank, spec.GPUs)
		} else {
			model = platform.Default(spec.WorkersPerRank)
		}
		rt, err := core.New(model, opts)
		if err != nil {
			return fmt.Errorf("job: rank %d: %w", r, err)
		}
		procs[r] = &Proc{Rank: r, RT: rt}
		if setup != nil {
			if err := setup(procs[r]); err != nil {
				return fmt.Errorf("job: rank %d setup: %w", r, err)
			}
		}
	}
	if spec.OnStart != nil {
		spec.OnStart()
	}
	rankErrs := make([]error, spec.Ranks)
	var wg sync.WaitGroup
	for _, p := range procs {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			if err := p.RT.Launch(func(c *core.Ctx) { body(p, c) }); err != nil {
				rankErrs[p.Rank] = fmt.Errorf("job: rank %d: %w", p.Rank, err)
			}
		}(p)
	}
	wg.Wait()
	for _, p := range procs {
		p.RT.Shutdown()
	}
	return errors.Join(rankErrs...)
}

// RunFlat runs a non-HiPER SPMD job: body once per rank on a plain
// goroutine (the "flat" and hybrid baseline variants, which do not use the
// HiPER runtime at all). Error handling matches Run: every rank runs to
// completion, a panicking rank is contained and converted to that rank's
// error, and the per-rank errors come back joined, each tagged with its
// rank.
func RunFlat(ranks int, body func(rank int) error) error {
	if ranks <= 0 {
		return fmt.Errorf("job: need at least 1 rank, got %d", ranks)
	}
	rankErrs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// core.Contain is the containment barrier for non-HiPER rank
			// goroutines: a panicking rank fails like a crashed process —
			// its own joined error — instead of killing the whole job.
			if err := core.Contain(func() error { return body(r) }); err != nil {
				rankErrs[r] = fmt.Errorf("job: rank %d: %w", r, err)
			}
		}(r)
	}
	wg.Wait()
	return errors.Join(rankErrs...)
}
