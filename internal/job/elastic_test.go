package job

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
)

// TestRunElasticSchedule drives the full membership script — kill,
// grow, shrink — and checks the elastic coordinates every phase's Procs
// carry: ranks per phase, endpoints following the table, Restored set
// exactly once on the killed rank, epochs advancing.
func TestRunElasticSchedule(t *testing.T) {
	tab := fabric.NewEpochTable(3, 8)
	killed := -1

	type seen struct {
		endpoint int
		epoch    uint64
		restored bool
	}
	var mu sync.Mutex
	phases := make([]map[int]seen, 4)

	err := RunElastic(ElasticSpec{
		Table:  tab,
		Phases: 4,
		Kill:   func(ep int) { killed = ep },
		Events: []ElasticEvent{
			{AfterPhase: 0, Kind: "kill", Rank: 1},
			{AfterPhase: 1, Kind: "grow", Delta: 2},
			{AfterPhase: 2, Kind: "shrink", Delta: 1},
		},
	}, nil, func(p *Proc, c *core.Ctx) {
		mu.Lock()
		if phases[p.Phase] == nil {
			phases[p.Phase] = make(map[int]seen)
		}
		phases[p.Phase][p.Rank] = seen{endpoint: p.Endpoint, epoch: p.Epoch, restored: p.Restored}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}

	wantRanks := []int{3, 3, 5, 4}
	wantEpoch := []uint64{0, 1, 2, 3}
	for ph, m := range phases {
		if len(m) != wantRanks[ph] {
			t.Errorf("phase %d ran %d ranks, want %d", ph, len(m), wantRanks[ph])
		}
		for r, s := range m {
			if s.epoch != wantEpoch[ph] {
				t.Errorf("phase %d rank %d epoch %d, want %d", ph, r, s.epoch, wantEpoch[ph])
			}
			if wantRestored := ph == 1 && r == 1; s.restored != wantRestored {
				t.Errorf("phase %d rank %d restored=%v", ph, r, s.restored)
			}
		}
	}
	if killed != 1 {
		t.Errorf("Kill hook saw endpoint %d, want 1 (rank 1's pre-remap endpoint)", killed)
	}
	if got := phases[1][1].endpoint; got == 1 {
		t.Errorf("rank 1 still on endpoint 1 after remap")
	}
	if got := phases[0][1].endpoint; got != 1 {
		t.Errorf("rank 1 started on endpoint %d, want 1", got)
	}
}

func TestRunElasticValidation(t *testing.T) {
	if err := RunElastic(ElasticSpec{Phases: 1}, nil, func(*Proc, *core.Ctx) {}); err == nil {
		t.Fatal("nil table must error")
	}
	tab := fabric.NewEpochTable(1, 1)
	if err := RunElastic(ElasticSpec{Table: tab}, nil, func(*Proc, *core.Ctx) {}); err == nil {
		t.Fatal("zero phases must error")
	}
	// A kill with no spare endpoint must surface the remap failure.
	err := RunElastic(ElasticSpec{
		Table:  tab,
		Phases: 2,
		Events: []ElasticEvent{{AfterPhase: 0, Kind: "kill", Rank: 0}},
	}, nil, func(*Proc, *core.Ctx) {})
	if err == nil {
		t.Fatal("remap with exhausted pool must fail the job")
	}
}

func TestRankSeedStability(t *testing.T) {
	// Same (seed, rank, stream) → same value; any coordinate change →
	// different stream. Physical placement never enters the mix.
	a := RankSeed(99, 4, 2)
	if a != RankSeed(99, 4, 2) {
		t.Fatal("RankSeed not deterministic")
	}
	if a == RankSeed(99, 5, 2) || a == RankSeed(99, 4, 3) || a == RankSeed(100, 4, 2) {
		t.Fatal("RankSeed collides across coordinates")
	}
}
