package job

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
)

// supStack builds the supervised-test fabric: a table over `ranks` of
// `capacity` endpoints, chaos with the given plan on a sim sized
// capacity+1, and a detector on the extra (monitor) endpoint.
func supStack(ranks, capacity int, plan fabric.FaultPlan) (*fabric.EpochTable, *fabric.Chaos, *fabric.Detector) {
	tab := fabric.NewEpochTable(ranks, capacity)
	ch := fabric.NewChaos(fabric.NewSim(capacity+1, fabric.CostModel{}), plan)
	det := fabric.NewDetector(ch, fabric.DetectorConfig{Monitor: capacity})
	return tab, ch, det
}

// aliveCheck builds the verification seam these tests use in place of a
// workload digest: an attempt "fails verification" exactly when some
// current endpoint is dead — the same observable a corrupt digest gives
// a real workload, with the same ignorance of who died.
func aliveCheck(tab *fabric.EpochTable, ch *fabric.Chaos) func(phase int) error {
	return func(phase int) error {
		for r := 0; r < tab.Ranks(); r++ {
			if !ch.Alive(tab.Endpoint(r)) {
				return fmt.Errorf("phase %d result corrupt", phase)
			}
		}
		return nil
	}
}

func TestSuperviseCleanRun(t *testing.T) {
	tab, ch, det := supStack(2, 3, fabric.FaultPlan{Seed: 1})
	var bodies atomic.Int64
	rep, err := Supervise(SuperviseSpec{
		Table: tab, Detector: det, Phases: 3,
		AfterPhase: aliveCheck(tab, ch),
	}, nil, func(p *Proc, c *core.Ctx) { bodies.Add(1) })
	if err != nil {
		t.Fatalf("clean supervised run failed: %v", err)
	}
	if rep.Phases != 3 || rep.Attempts != 3 || rep.Retries != 0 || rep.Remaps != 0 {
		t.Fatalf("clean run report off: %s", rep)
	}
	if rep.FinalRanks != 2 {
		t.Fatalf("final ranks %d, want 2", rep.FinalRanks)
	}
	if bodies.Load() != 6 {
		t.Fatalf("bodies ran %d times, want 6", bodies.Load())
	}
}

// TestSuperviseDetectsAndRemaps: an opaque kill before phase 1 must be
// detected by the sweep and remapped onto a spare, with every rank
// restored on the retry.
func TestSuperviseDetectsAndRemaps(t *testing.T) {
	tab, ch, det := supStack(3, 5, fabric.FaultPlan{Seed: 1})
	var mu sync.Mutex
	restoredAt := map[string]bool{} // "phase/rank" -> Restored
	var killedEvents []ElasticEvent
	rep, err := Supervise(SuperviseSpec{
		Table: tab, Detector: det, Phases: 3,
		Inject: func(phase, attempt int) {
			if phase == 1 && attempt == 0 {
				ch.Kill(tab.Endpoint(1))
			}
		},
		OnEvent: func(ev ElasticEvent, oldEp, freshEp int) {
			mu.Lock()
			killedEvents = append(killedEvents, ev)
			mu.Unlock()
		},
		AfterPhase: aliveCheck(tab, ch),
	}, nil, func(p *Proc, c *core.Ctx) {
		mu.Lock()
		restoredAt[fmt.Sprintf("%d/%d/%d", p.Phase, p.Rank, boolInt(p.Restored))] = true
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	if rep.Phases != 3 || rep.Remaps != 1 || rep.Retries != 1 || rep.Evictions != 0 {
		t.Fatalf("report off: %s", rep)
	}
	if len(rep.Detections) != 1 {
		t.Fatalf("detections: %+v", rep.Detections)
	}
	d := rep.Detections[0]
	if d.Rank != 1 || d.Action != "remap" || d.Phase != 1 || d.Rounds <= 0 || d.Phi < 8 {
		t.Fatalf("detection record off: %+v", d)
	}
	if len(rep.Recoveries) != 1 || rep.Recoveries[0].Phase != 1 || rep.Recoveries[0].Attempts != 2 {
		t.Fatalf("recovery record off: %+v", rep.Recoveries)
	}
	if len(killedEvents) != 1 || killedEvents[0].Kind != "kill" || killedEvents[0].Rank != 1 {
		t.Fatalf("OnEvent saw %+v", killedEvents)
	}
	mu.Lock()
	defer mu.Unlock()
	// The retry of phase 1 must run every rank Restored.
	for r := 0; r < 3; r++ {
		if !restoredAt[fmt.Sprintf("1/%d/1", r)] {
			t.Fatalf("phase 1 retry did not restore rank %d; saw %v", r, restoredAt)
		}
	}
	// Phase 2 (after a committed phase 1) runs un-restored.
	for r := 0; r < 3; r++ {
		if restoredAt[fmt.Sprintf("2/%d/1", r)] {
			t.Fatalf("phase 2 ran restored after a clean commit")
		}
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestSuperviseDegradesByEviction: with no spare endpoints the suspect
// cannot be remapped — the supervisor must shrink the world (evict) and
// finish at the smaller size, emitting the shrink redistribution event.
func TestSuperviseDegradesByEviction(t *testing.T) {
	tab, ch, det := supStack(3, 3, fabric.FaultPlan{Seed: 1}) // zero spares
	var shrinks []ElasticEvent
	rep, err := Supervise(SuperviseSpec{
		Table: tab, Detector: det, Phases: 3, MinRanks: 2,
		Inject: func(phase, attempt int) {
			if phase == 1 && attempt == 0 {
				ch.Kill(tab.Endpoint(1))
			}
		},
		OnEvent: func(ev ElasticEvent, oldEp, freshEp int) {
			if ev.Kind == "shrink" {
				shrinks = append(shrinks, ev)
			}
		},
		AfterPhase: aliveCheck(tab, ch),
	}, nil, func(p *Proc, c *core.Ctx) {})
	if err != nil {
		t.Fatalf("supervised run failed to degrade: %v", err)
	}
	if rep.Phases != 3 || rep.Evictions != 1 || rep.Remaps != 0 || rep.FinalRanks != 2 {
		t.Fatalf("degrade report off: %s", rep)
	}
	if len(rep.Detections) != 1 || rep.Detections[0].Action != "evict" {
		t.Fatalf("detections: %+v", rep.Detections)
	}
	if len(shrinks) != 1 || shrinks[0].Delta != 1 || shrinks[0].Rank != 2 {
		t.Fatalf("shrink event off: %+v (want dropped top rank 2)", shrinks)
	}
	if tab.Ranks() != 2 {
		t.Fatalf("world did not shrink: %d ranks", tab.Ranks())
	}
}

// TestSuperviseRestartBudgetSpentDegrades: spares exist, but the rank's
// restart budget is spent — repeated kills of the same rank must tip
// from remap into eviction, proving the budget gates the ladder.
func TestSuperviseRestartBudgetSpentDegrades(t *testing.T) {
	tab, ch, det := supStack(3, 6, fabric.FaultPlan{Seed: 1})
	rep, err := Supervise(SuperviseSpec{
		Table: tab, Detector: det, Phases: 4, MinRanks: 2, RestartBudget: 1,
		Inject: func(phase, attempt int) {
			// Kill rank 1's current endpoint at the start of phases 1
			// and 2 — the second suspicion finds its budget spent.
			if (phase == 1 || phase == 2) && attempt == 0 {
				ch.Kill(tab.Endpoint(1))
			}
		},
		AfterPhase: aliveCheck(tab, ch),
	}, nil, func(p *Proc, c *core.Ctx) {})
	if err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	if rep.Remaps != 1 || rep.Evictions != 1 || rep.FinalRanks != 2 {
		t.Fatalf("budget ladder off: %s", rep)
	}
	if len(rep.Detections) != 2 || rep.Detections[0].Action != "remap" || rep.Detections[1].Action != "evict" {
		t.Fatalf("detections: %+v", rep.Detections)
	}
}

// TestSuperviseEscalatesAtFloor: at the world-size floor with no spares
// and no budget, the supervisor must give up with a RecoveryError
// carrying the structured report.
func TestSuperviseEscalatesAtFloor(t *testing.T) {
	tab, ch, det := supStack(2, 2, fabric.FaultPlan{Seed: 1}) // floor = ranks
	rep, err := Supervise(SuperviseSpec{
		Table: tab, Detector: det, Phases: 3, MinRanks: 2,
		Inject: func(phase, attempt int) {
			if phase == 1 && attempt == 0 {
				ch.Kill(tab.Endpoint(0))
			}
		},
		AfterPhase: aliveCheck(tab, ch),
	}, nil, func(p *Proc, c *core.Ctx) {})
	if err == nil {
		t.Fatalf("run at the floor with a dead rank succeeded; report: %s", rep)
	}
	var rerr *RecoveryError
	if !errors.As(err, &rerr) {
		t.Fatalf("escalation error is not a RecoveryError: %v", err)
	}
	if rerr.Report != rep {
		t.Fatalf("error does not carry the returned report")
	}
	if rep.Escalated == "" {
		t.Fatalf("report not marked escalated: %s", rep)
	}
	if n := len(rep.Detections); n == 0 || rep.Detections[n-1].Action != "escalate" {
		t.Fatalf("final detection not an escalation: %+v", rep.Detections)
	}
	if rep.Phases != 1 {
		t.Fatalf("committed %d phases before the kill, want 1", rep.Phases)
	}
}

// TestSuperviseTransientFailureRetries: a verification failure with no
// dead endpoint (no suspect emerges) must retry in place — no remap, no
// evict — and succeed.
func TestSuperviseTransientFailureRetries(t *testing.T) {
	tab, ch, det := supStack(2, 3, fabric.FaultPlan{Seed: 1})
	failOnce := true
	rep, err := Supervise(SuperviseSpec{
		Table: tab, Detector: det, Phases: 2, SweepRounds: 6,
		AfterPhase: func(phase int) error {
			if phase == 1 && failOnce {
				failOnce = false
				return fmt.Errorf("transient corruption")
			}
			return aliveCheck(tab, ch)(phase)
		},
	}, nil, func(p *Proc, c *core.Ctx) {})
	if err != nil {
		t.Fatalf("transient failure not survived: %v", err)
	}
	if rep.Retries != 1 || rep.Remaps != 0 || rep.Evictions != 0 || len(rep.Detections) != 0 {
		t.Fatalf("transient report off: %s", rep)
	}
	if len(rep.Recoveries) != 1 || rep.Recoveries[0].Attempts != 2 {
		t.Fatalf("recoveries: %+v", rep.Recoveries)
	}
}

// TestSuperviseAttemptBudgetEscalates: a phase that keeps failing with
// no suspect must spend MaxAttempts and escalate with the report joined
// into the error.
func TestSuperviseAttemptBudgetEscalates(t *testing.T) {
	tab, _, det := supStack(2, 3, fabric.FaultPlan{Seed: 1})
	rep, err := Supervise(SuperviseSpec{
		Table: tab, Detector: det, Phases: 1, MaxAttempts: 3, SweepRounds: 4,
		AfterPhase: func(phase int) error { return fmt.Errorf("always corrupt") },
	}, nil, func(p *Proc, c *core.Ctx) {})
	if err == nil {
		t.Fatalf("endless corruption did not escalate")
	}
	var rerr *RecoveryError
	if !errors.As(err, &rerr) {
		t.Fatalf("not a RecoveryError: %v", err)
	}
	if rep.Attempts != 3 || rep.Phases != 0 || rep.Escalated == "" {
		t.Fatalf("attempt-budget report off: %s", rep)
	}
}

// TestKillPlanReplays: the unscripted killer is a pure function of its
// seed — two runs over identical tables kill the same endpoints at the
// same (phase, attempt) coordinates.
func TestKillPlanReplays(t *testing.T) {
	run := func() []int {
		tab := fabric.NewEpochTable(4, 6)
		var kills []int
		inj := KillPlan{Seed: 9, Prob: 0.5, Max: 3}.Injector(tab, func(ep int) { kills = append(kills, ep) })
		for phase := 0; phase < 6; phase++ {
			for attempt := 0; attempt < 2; attempt++ {
				inj(phase, attempt)
			}
		}
		return kills
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatalf("kill plan never fired")
	}
	if len(a) != len(b) {
		t.Fatalf("kill sequences differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("kill sequences differ: %v vs %v", a, b)
		}
	}
}
