// Package spin provides sub-millisecond sleeps for the simulation cost
// models. The OS timer granularity under container schedulers is commonly
// ~1ms, which would quantize every modelled microsecond-scale network or
// PCIe delay up to a millisecond and destroy the fidelity of the
// benchmarks. Sleep burns the short tail of a delay in a Gosched loop
// instead, trading a little CPU for accurate virtual hardware timing.
package spin

import (
	"runtime"
	"time"
)

// coarse is the duration below which the OS sleep cannot be trusted; the
// remainder of every sleep is spun.
const coarse = 2 * time.Millisecond

// parkThreshold: at and above this duration the OS timer's ~1ms skew is
// an acceptable relative error, and truly parking the goroutine lets
// concurrent simulated delays overlap even on a single-core host (spinning
// serializes them).
const parkThreshold = 5 * time.Millisecond

// Sleep pauses the calling goroutine for accurately d: long sleeps park on
// the OS timer, short ones spin with Gosched so other goroutines keep
// running.
func Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if d >= parkThreshold {
		time.Sleep(d)
		return
	}
	Until(time.Now().Add(d))
}

// Until pauses until the deadline, using the OS timer for the bulk of
// long waits and a yield loop for the precise tail.
func Until(deadline time.Time) {
	if rest := time.Until(deadline); rest > 2*coarse {
		time.Sleep(rest - 2*coarse)
	}
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}
