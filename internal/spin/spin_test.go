package spin

import (
	"testing"
	"time"
)

func TestSleepAccuracyShort(t *testing.T) {
	for _, d := range []time.Duration{10 * time.Microsecond, 200 * time.Microsecond, time.Millisecond} {
		start := time.Now()
		Sleep(d)
		got := time.Since(start)
		if got < d {
			t.Fatalf("Sleep(%v) returned after %v (early)", d, got)
		}
		if got > d+2*time.Millisecond {
			t.Fatalf("Sleep(%v) took %v (way over)", d, got)
		}
	}
}

func TestSleepZeroAndNegative(t *testing.T) {
	start := time.Now()
	Sleep(0)
	Sleep(-time.Second)
	if time.Since(start) > time.Millisecond {
		t.Fatal("zero/negative sleeps should be immediate")
	}
}

func TestUntilPastDeadline(t *testing.T) {
	start := time.Now()
	Until(time.Now().Add(-time.Second))
	if time.Since(start) > time.Millisecond {
		t.Fatal("past deadline should return immediately")
	}
}

func TestLongSleepParks(t *testing.T) {
	// Long sleeps must use the OS timer (parking), which on this class of
	// host can overshoot by ~1ms but must not undershoot.
	start := time.Now()
	Sleep(parkThreshold)
	got := time.Since(start)
	if got < parkThreshold {
		t.Fatalf("Sleep(%v) returned after %v", parkThreshold, got)
	}
}
