package cuda

import (
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/trace"
)

func TestMallocFreeAccounting(t *testing.T) {
	d := NewDevice(Config{MemBytes: 1024})
	b, err := d.Malloc(64) // 512 bytes
	if err != nil {
		t.Fatal(err)
	}
	if d.MemUsed() != 512 {
		t.Fatalf("used = %d", d.MemUsed())
	}
	if _, err := d.Malloc(128); err == nil { // would exceed cap
		t.Fatal("expected out-of-memory")
	}
	d.Free(b)
	if d.MemUsed() != 0 {
		t.Fatalf("used after free = %d", d.MemUsed())
	}
	if _, err := d.Malloc(128); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
}

func TestBlockingMemcpyRoundTrip(t *testing.T) {
	d := NewDevice(Config{})
	b := d.MustMalloc(8)
	host := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	d.MemcpyH2D(b, 0, host)
	out := make([]float64, 8)
	d.MemcpyD2H(out, b, 0, 8)
	for i := range host {
		if out[i] != host[i] {
			t.Fatalf("out[%d] = %v", i, out[i])
		}
	}
}

func TestKernelComputes(t *testing.T) {
	d := NewDevice(Config{SMs: 4})
	const n = 10000
	b := d.MustMalloc(n)
	d.Launch(n, func(i int) { b.Data()[i] = float64(i) * 2 })
	out := make([]float64, n)
	d.MemcpyD2H(out, b, 0, n)
	for i := 0; i < n; i++ {
		if out[i] != float64(i)*2 {
			t.Fatalf("out[%d] = %v", i, out[i])
		}
	}
}

func TestStreamOrdering(t *testing.T) {
	d := NewDevice(Config{SMs: 2})
	s := d.NewStream()
	const n = 1000
	b := d.MustMalloc(n)
	host := make([]float64, n)
	for i := range host {
		host[i] = 1
	}
	// H2D, then kernel squaring+1, then D2H: in-order stream semantics mean
	// the D2H must observe the kernel's writes.
	s.MemcpyH2DAsync(b, 0, host)
	s.LaunchAsync(n, func(i int) { b.Data()[i] = b.Data()[i] + 41 })
	out := make([]float64, n)
	ev := s.MemcpyD2HAsync(out, b, 0, n)
	ev.Wait()
	for i := range out {
		if out[i] != 42 {
			t.Fatalf("out[%d] = %v; stream ops reordered", i, out[i])
		}
	}
}

func TestEventQueryBeforeAfter(t *testing.T) {
	d := NewDevice(Config{MemcpyAlpha: 10 * time.Millisecond})
	s := d.NewStream()
	b := d.MustMalloc(4)
	ev := s.MemcpyH2DAsync(b, 0, []float64{1, 2, 3, 4})
	if ev.Query() {
		t.Fatal("event complete before transfer latency elapsed")
	}
	ev.Wait()
	if !ev.Query() {
		t.Fatal("event incomplete after Wait")
	}
}

func TestStreamsRunConcurrently(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	d := NewDevice(Config{SMs: 4, MemcpyAlpha: 20 * time.Millisecond})
	b := d.MustMalloc(4)
	start := time.Now()
	s1 := d.NewStream()
	s2 := d.NewStream()
	e1 := s1.MemcpyH2DAsync(b, 0, []float64{1})
	e2 := s2.MemcpyH2DAsync(b, 2, []float64{2})
	e1.Wait()
	e2.Wait()
	if el := time.Since(start); el > 35*time.Millisecond {
		t.Fatalf("two streams took %v; expected concurrent execution (~20ms)", el)
	}
	// Same stream serializes.
	start = time.Now()
	e3 := s1.MemcpyH2DAsync(b, 0, []float64{3})
	e4 := s1.MemcpyH2DAsync(b, 2, []float64{4})
	e3.Wait()
	e4.Wait()
	if el := time.Since(start); el < 35*time.Millisecond {
		t.Fatalf("same-stream ops took %v; expected serialized (~40ms)", el)
	}
}

func TestHostBufferCapturedEagerly(t *testing.T) {
	d := NewDevice(Config{MemcpyAlpha: 5 * time.Millisecond})
	s := d.NewStream()
	b := d.MustMalloc(1)
	host := []float64{7}
	ev := s.MemcpyH2DAsync(b, 0, host)
	host[0] = 0 // mutate before transfer completes
	ev.Wait()
	out := make([]float64, 1)
	d.MemcpyD2H(out, b, 0, 1)
	if out[0] != 7 {
		t.Fatal("H2D async did not capture source eagerly")
	}
}

func TestD2DCopy(t *testing.T) {
	d := NewDevice(Config{})
	a := d.MustMalloc(4)
	b := d.MustMalloc(4)
	d.MemcpyH2D(a, 0, []float64{1, 2, 3, 4})
	s := d.NewStream()
	s.MemcpyD2DAsync(b, 1, a, 2, 2).Wait()
	out := make([]float64, 4)
	d.MemcpyD2H(out, b, 0, 4)
	if out[1] != 3 || out[2] != 4 {
		t.Fatalf("d2d: %v", out)
	}
}

func TestDeviceSynchronize(t *testing.T) {
	d := NewDevice(Config{SMs: 2, MemcpyAlpha: 5 * time.Millisecond})
	b := d.MustMalloc(4)
	var done atomic.Int32
	for i := 0; i < 4; i++ {
		s := d.NewStream()
		s.MemcpyH2DAsync(b, i, []float64{1}) // distinct offsets: concurrent streams must not alias
		s.LaunchAsync(1, func(int) { done.Add(1) })
	}
	d.Synchronize()
	if done.Load() != 4 {
		t.Fatalf("Synchronize returned with %d/4 kernels done", done.Load())
	}
}

func TestSMBoundedParallelism(t *testing.T) {
	d := NewDevice(Config{SMs: 2})
	var cur, peak atomic.Int32
	d.Launch(64, func(i int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		cur.Add(-1)
	})
	if p := peak.Load(); p > 2 {
		t.Fatalf("observed %d concurrent grid chunks with 2 SMs", p)
	}
}

func TestEmptyKernelGrid(t *testing.T) {
	d := NewDevice(Config{})
	d.Launch(0, func(int) { t.Error("kernel invoked for empty grid") })
	k, _, _ := d.Stats()
	if k != 1 {
		t.Fatalf("kernel count = %d", k)
	}
}

func TestStats(t *testing.T) {
	d := NewDevice(Config{})
	b := d.MustMalloc(10)
	d.MemcpyH2D(b, 0, make([]float64, 10))
	d.MemcpyD2H(make([]float64, 5), b, 0, 5)
	d.Launch(1, func(int) {})
	k, h2d, d2h := d.Stats()
	if k != 1 || h2d != 80 || d2h != 40 {
		t.Fatalf("stats = %d %d %d", k, h2d, d2h)
	}
}

// Property: a kernel over any grid size touches each index exactly once.
func TestQuickKernelCoverage(t *testing.T) {
	d := NewDevice(Config{SMs: 3})
	f := func(g uint16) bool {
		grid := int(g % 5000)
		counts := make([]atomic.Int32, grid)
		d.Launch(grid, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if counts[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKernelLaunch(b *testing.B) {
	d := NewDevice(Config{SMs: 4})
	buf := d.MustMalloc(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Launch(1024, func(j int) { buf.Data()[j]++ })
	}
}

func BenchmarkAsyncPipeline(b *testing.B) {
	d := NewDevice(Config{SMs: 4})
	s := d.NewStream()
	buf := d.MustMalloc(1024)
	host := make([]float64, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MemcpyH2DAsync(buf, 0, host)
		s.LaunchAsync(1024, func(j int) { buf.Data()[j]++ })
		s.MemcpyD2HAsync(host, buf, 0, 1024).Wait()
	}
}

func TestTransfersTraced(t *testing.T) {
	d := NewDevice(Config{})
	tr := trace.New(1, trace.Config{RingSize: 64})
	d.SetTracer(tr)
	b := d.MustMalloc(4)
	d.MemcpyH2D(b, 0, []float64{1, 2, 3, 4})
	out := make([]float64, 4)
	d.MemcpyD2H(out, b, 0, 4)
	der := tr.Derived()
	if der.MsgsSent != 2 || der.MsgsRecvd != 2 {
		t.Fatalf("msg events: %+v", der)
	}
	if der.MsgBytes != 64 || der.MsgBytesRecvd != 64 {
		t.Fatalf("msg bytes: %+v", der)
	}
}
