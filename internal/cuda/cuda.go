// Package cuda simulates a CUDA-capable GPU: device memory, in-order
// streams, events, asynchronous host<->device transfers over a modelled
// PCIe link, and data-parallel kernel execution on a bounded pool of
// simulated SMs.
//
// It substitutes for the NVIDIA K20X + CUDA toolkit used on Titan in the
// paper's evaluation. What matters for reproducing the paper's results is
// the asynchrony structure — kernels and copies enqueue onto streams, run
// concurrently with host code, cost wall-clock time, and complete events —
// because the GEO speedup comes from HiPER overlapping those operations
// with MPI communication via futures instead of blocking the host.
//
// Kernels are Go functions over a 1D grid; they really execute (on SM-pool
// goroutines), so numerical results are real, while launch overhead and
// transfer costs follow the configured model. The PCIe link is a
// two-endpoint transport from package fabric (host and device), so
// transfer cost, ordering, statistics, and trace events come from the
// same machinery as the network modules.
package cuda

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fabric"
	"repro/internal/spin"
	"repro/internal/trace"
)

// PCIe link endpoints on the device's transport.
const (
	epHost = 0
	epDev  = 1
)

// Config parameterizes a simulated device. Zero values disable the
// corresponding cost (useful in unit tests).
type Config struct {
	// SMs bounds kernel execution parallelism (grid chunks in flight).
	// Default 4.
	SMs int
	// LaunchOverhead is charged once per kernel launch.
	LaunchOverhead time.Duration
	// PCIeBytesPerSec models the host<->device link bandwidth; zero means
	// infinite.
	PCIeBytesPerSec float64
	// MemcpyAlpha is the fixed per-transfer latency.
	MemcpyAlpha time.Duration
	// MemBytes caps device memory; zero means unlimited.
	MemBytes int64
}

// Device is one simulated GPU.
type Device struct {
	cfg  Config
	link fabric.Transport // PCIe: epHost <-> epDev
	sms  chan struct{}    // SM tokens
	used atomic.Int64     // allocated device memory

	outstanding sync.WaitGroup // all enqueued ops, for Synchronize

	// statistics
	kernels   atomic.Int64
	h2dBytes  atomic.Int64
	d2hBytes  atomic.Int64
	streamSeq atomic.Int64
}

// NewDevice creates a device with the given configuration.
func NewDevice(cfg Config) *Device {
	if cfg.SMs <= 0 {
		cfg.SMs = 4
	}
	d := &Device{cfg: cfg}
	// Host<->device transfers pay MemcpyAlpha + bytes/PCIeBytesPerSec;
	// on-device (epDev->epDev) copies are "same node" and pay only the
	// fixed latency, with no bandwidth term.
	d.link = fabric.NewSim(2, fabric.CostModel{
		Alpha:        cfg.MemcpyAlpha,
		BytesPerSec:  cfg.PCIeBytesPerSec,
		RanksPerNode: 1,
		LocalAlpha:   cfg.MemcpyAlpha,
	})
	d.sms = make(chan struct{}, cfg.SMs)
	for i := 0; i < cfg.SMs; i++ {
		d.sms <- struct{}{}
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// SetTracer attaches a tracer to the device's PCIe link: every transfer
// records msg-send/msg-recv events (host is endpoint 0, device endpoint 1).
func (d *Device) SetTracer(tr *trace.Tracer) { d.link.SetTracer(tr) }

// Buffer is a device-memory allocation of float64 elements. Host code must
// not touch its contents directly; use Memcpy APIs (kernels, which "run on
// the device", may).
type Buffer struct {
	dev  *Device
	data []float64
}

// Len returns the element count.
func (b *Buffer) Len() int { return len(b.data) }

// Device returns the owning device.
func (b *Buffer) Device() *Device { return b.dev }

// Data exposes the underlying storage to kernels. Host-side code should
// treat device memory as opaque, exactly as with a real GPU.
func (b *Buffer) Data() []float64 { return b.data }

// Malloc allocates n float64 elements of device memory.
func (d *Device) Malloc(n int) (*Buffer, error) {
	bytes := int64(8 * n)
	if d.cfg.MemBytes > 0 {
		if d.used.Add(bytes) > d.cfg.MemBytes {
			d.used.Add(-bytes)
			return nil, fmt.Errorf("cuda: out of device memory allocating %d bytes (cap %d)", bytes, d.cfg.MemBytes)
		}
	} else {
		d.used.Add(bytes)
	}
	return &Buffer{dev: d, data: make([]float64, n)}, nil
}

// MustMalloc is Malloc that panics on exhaustion.
func (d *Device) MustMalloc(n int) *Buffer {
	b, err := d.Malloc(n)
	if err != nil {
		panic(err)
	}
	return b
}

// Free releases a buffer's accounting (the Go GC reclaims the storage).
func (d *Device) Free(b *Buffer) {
	if b == nil || b.dev != d {
		return
	}
	d.used.Add(int64(-8 * b.Len()))
	b.data = nil
}

// MemUsed returns currently allocated device memory in bytes.
func (d *Device) MemUsed() int64 { return d.used.Load() }

// Event marks a point in a stream; it completes when all prior work in the
// stream has executed. HiPER's CUDA module polls events the same way the
// MPI module polls requests.
type Event struct {
	done atomic.Bool
	ch   chan struct{}
}

func newEvent() *Event { return &Event{ch: make(chan struct{})} }

func (e *Event) complete() {
	e.done.Store(true)
	close(e.ch)
}

// Query reports completion without blocking (cudaEventQuery).
func (e *Event) Query() bool { return e.done.Load() }

// Wait blocks until the event completes (cudaEventSynchronize).
func (e *Event) Wait() { <-e.ch }

// Stream is an in-order execution queue (cudaStream_t). Operations
// enqueued on one stream execute sequentially; distinct streams execute
// concurrently, sharing the device's SMs.
type Stream struct {
	dev *Device
	id  int64
	mu  sync.Mutex
	ops []func()
	run bool
}

// NewStream creates an asynchronous stream.
func (d *Device) NewStream() *Stream {
	return &Stream{dev: d, id: d.streamSeq.Add(1)}
}

// enqueue appends op to the stream, starting the drainer if idle.
func (s *Stream) enqueue(op func()) {
	s.dev.outstanding.Add(1)
	s.mu.Lock()
	s.ops = append(s.ops, op)
	if !s.run {
		s.run = true
		go s.drain()
	}
	s.mu.Unlock()
}

func (s *Stream) drain() {
	for {
		s.mu.Lock()
		if len(s.ops) == 0 {
			s.run = false
			s.mu.Unlock()
			return
		}
		op := s.ops[0]
		s.ops = s.ops[1:]
		s.mu.Unlock()
		op()
		s.dev.outstanding.Done()
	}
}

// Synchronize blocks until every operation enqueued on the stream so far
// has completed (cudaStreamSynchronize).
func (s *Stream) Synchronize() {
	s.Record().Wait()
}

// Record enqueues an event and returns it (cudaEventRecord).
func (s *Stream) Record() *Event {
	e := newEvent()
	s.enqueue(e.complete)
	return e
}

// transfer issues one transfer on the PCIe link and blocks until it
// lands: apply runs (with the copy effect) after the modelled delay.
// Blocking is correct here — transfers run on a stream's drain goroutine,
// where in-order execution is exactly the stream contract.
func (d *Device) transfer(src, dst, bytes int, apply func()) {
	done := make(chan struct{})
	d.link.Put(src, dst, bytes, apply, func() { close(done) })
	<-done
}

// MemcpyH2DAsync copies host src into dst at dstOff, asynchronously on the
// stream, returning the completion event. The source is captured eagerly.
func (s *Stream) MemcpyH2DAsync(dst *Buffer, dstOff int, src []float64) *Event {
	cp := make([]float64, len(src))
	copy(cp, src)
	e := newEvent()
	s.enqueue(func() {
		s.dev.transfer(epHost, epDev, 8*len(cp), func() {
			copy(dst.data[dstOff:], cp)
		})
		s.dev.h2dBytes.Add(int64(8 * len(cp)))
		e.complete()
	})
	return e
}

// MemcpyD2HAsync copies n elements from src at srcOff into host dst,
// asynchronously on the stream, returning the completion event. The host
// buffer must stay untouched until the event completes, as with real CUDA.
func (s *Stream) MemcpyD2HAsync(dst []float64, src *Buffer, srcOff, n int) *Event {
	e := newEvent()
	s.enqueue(func() {
		s.dev.transfer(epDev, epHost, 8*n, func() {
			copy(dst, src.data[srcOff:srcOff+n])
		})
		s.dev.d2hBytes.Add(int64(8 * n))
		e.complete()
	})
	return e
}

// MemcpyD2DAsync copies device-to-device within one GPU.
func (s *Stream) MemcpyD2DAsync(dst *Buffer, dstOff int, src *Buffer, srcOff, n int) *Event {
	e := newEvent()
	s.enqueue(func() {
		// On-device copies stay on the device endpoint: the cost model's
		// local parameters charge only the fixed latency.
		s.dev.transfer(epDev, epDev, 8*n, func() {
			copy(dst.data[dstOff:dstOff+n], src.data[srcOff:srcOff+n])
		})
		e.complete()
	})
	return e
}

// Kernel is a device function over a 1D grid: invoked once per index in
// [0, grid). Implementations see device buffers via Buffer.Data.
type Kernel func(i int)

// LaunchAsync enqueues a kernel over the grid. Grid chunks execute with
// parallelism bounded by the device's SM count, shared with concurrently
// executing streams.
func (s *Stream) LaunchAsync(grid int, k Kernel) *Event {
	e := newEvent()
	s.enqueue(func() {
		s.dev.runKernel(grid, k)
		e.complete()
	})
	return e
}

// runKernel executes the grid with SM-bounded parallelism.
func (d *Device) runKernel(grid int, k Kernel) {
	if d.cfg.LaunchOverhead > 0 {
		// Launch overhead is execution-model timing (driver + hardware
		// dispatch), not interconnect traffic, so it stays a plain sleep
		// rather than a fabric transfer.
		spin.Sleep(d.cfg.LaunchOverhead) //hiperlint:ignore raw-delay-outside-fabric kernel launch overhead is not communication
	}
	d.kernels.Add(1)
	if grid <= 0 {
		return
	}
	chunks := d.cfg.SMs
	if chunks > grid {
		chunks = grid
	}
	var wg sync.WaitGroup
	per := (grid + chunks - 1) / chunks
	for c := 0; c < chunks; c++ {
		lo := c * per
		hi := lo + per
		if hi > grid {
			hi = grid
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			<-d.sms // acquire an SM
			for i := lo; i < hi; i++ {
				k(i)
			}
			d.sms <- struct{}{}
		}(lo, hi)
	}
	wg.Wait()
}

// Synchronize blocks until all work enqueued on all streams completes
// (cudaDeviceSynchronize).
func (d *Device) Synchronize() { d.outstanding.Wait() }

// Stats returns cumulative device activity.
func (d *Device) Stats() (kernels, h2dBytes, d2hBytes int64) {
	return d.kernels.Load(), d.h2dBytes.Load(), d.d2hBytes.Load()
}

// Memcpy variants that block the caller (cudaMemcpy): used by the naive
// MPI+CUDA baselines that the paper's HiPER version outperforms by
// eliminating blocking operations.

// MemcpyH2D is a blocking host-to-device copy.
func (d *Device) MemcpyH2D(dst *Buffer, dstOff int, src []float64) {
	d.transfer(epHost, epDev, 8*len(src), func() {
		copy(dst.data[dstOff:], src)
	})
	d.h2dBytes.Add(int64(8 * len(src)))
}

// MemcpyD2H is a blocking device-to-host copy.
func (d *Device) MemcpyD2H(dst []float64, src *Buffer, srcOff, n int) {
	d.transfer(epDev, epHost, 8*n, func() {
		copy(dst, src.data[srcOff:srcOff+n])
	})
	d.d2hBytes.Add(int64(8 * n))
}

// Launch is a blocking kernel launch (launch + cudaDeviceSynchronize in
// one call), for the baselines.
func (d *Device) Launch(grid int, k Kernel) {
	d.runKernel(grid, k)
}
