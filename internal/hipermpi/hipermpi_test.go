package hipermpi

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/modules"
	"repro/internal/mpi"
	"repro/internal/platform"
	"repro/internal/simnet"
)

// job spins up one runtime + module per rank and runs fn per rank inside
// Launch, mirroring how a real HiPER+MPI process boots.
func job(t testing.TB, ranks, workers int, cost simnet.CostModel, opts *Options,
	fn func(c *core.Ctx, m *Module)) {
	t.Helper()
	world := mpi.NewWorld(ranks, cost)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		rt, err := core.New(platform.Default(workers), nil)
		if err != nil {
			t.Fatal(err)
		}
		m := New(world.Comm(r), opts)
		modules.MustInstall(rt, m)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt.Launch(func(c *core.Ctx) { fn(c, m) })
			rt.Shutdown()
		}()
	}
	wg.Wait()
}

func TestInitRequiresInterconnect(t *testing.T) {
	// A model with no interconnect place must be rejected.
	mdl := platform.NewModel()
	mem := mdl.AddPlace("sysmem0", platform.KindSysMem)
	mdl.AddWorker([]int{mem.ID}, []int{mem.ID})
	rt, err := core.New(mdl, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	world := mpi.NewWorld(1, simnet.CostModel{})
	if err := modules.Install(rt, New(world.Comm(0), nil)); err == nil {
		t.Fatal("Init must fail without an interconnect place")
	}
}

func TestInitRequiresCoverage(t *testing.T) {
	mdl := platform.NewModel()
	mem := mdl.AddPlace("sysmem0", platform.KindSysMem)
	nic := mdl.AddPlace("nic0", platform.KindInterconnect)
	mdl.AddEdge(mem, nic)
	mdl.AddWorker([]int{mem.ID}, []int{mem.ID}) // nic uncovered
	rt, err := core.New(mdl, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	world := mpi.NewWorld(1, simnet.CostModel{})
	if err := modules.Install(rt, New(world.Comm(0), nil)); err == nil {
		t.Fatal("Init must fail when the interconnect place is uncovered")
	}
}

func TestTaskifiedSendRecv(t *testing.T) {
	job(t, 2, 2, simnet.CostModel{}, nil, func(c *core.Ctx, m *Module) {
		if m.Rank() == 0 {
			m.Send(c, []byte("hello"), 1, 9)
		} else {
			buf := make([]byte, 8)
			st := m.Recv(c, buf, 0, 9)
			if st.Count != 5 || string(buf[:5]) != "hello" {
				t.Errorf("recv %q", buf[:st.Count])
			}
		}
	})
}

func TestCommTasksRunAtInterconnect(t *testing.T) {
	job(t, 2, 2, simnet.CostModel{}, nil, func(c *core.Ctx, m *Module) {
		nic := m.Interconnect()
		// Directly check the taskify placement via a probe task.
		f := c.AsyncFutureAt(nic, func(cc *core.Ctx) any { return cc.Place() })
		if got := c.Get(f); got != nic {
			t.Errorf("comm task placed at %v, want %v", got, nic)
		}
		m.Barrier(c)
	})
}

func TestIsendIrecvFutures(t *testing.T) {
	job(t, 2, 2, simnet.CostModel{Alpha: time.Millisecond}, nil, func(c *core.Ctx, m *Module) {
		peer := 1 - m.Rank()
		out := mpi.EncodeInt64s([]int64{int64(m.Rank() + 7)})
		in := make([]byte, 8)
		fs := m.Isend(c, out, peer, 3)
		fr := m.Irecv(c, in, peer, 3)
		c.Wait(fs)
		c.Wait(fr)
		if got := mpi.DecodeInt64s(in)[0]; got != int64(peer+7) {
			t.Errorf("rank %d got %d", m.Rank(), got)
		}
	})
}

func TestIrecvTriggersAwaitTask(t *testing.T) {
	// The paper's composability snippet: async_await(body, MPI_Irecv(...)).
	job(t, 2, 2, simnet.CostModel{Alpha: 2 * time.Millisecond}, nil, func(c *core.Ctx, m *Module) {
		if m.Rank() == 0 {
			m.Send(c, mpi.EncodeInt64s([]int64{41}), 1, 0)
			return
		}
		in := make([]byte, 8)
		fut := m.Irecv(c, in, 0, 0)
		done := core.NewPromise(c.Runtime())
		c.AsyncAwait(func(cc *core.Ctx) {
			cc.Put(done, mpi.DecodeInt64s(in)[0]+1)
		}, fut)
		if got := c.Get(done.Future()); got != int64(42) {
			t.Errorf("await body got %v", got)
		}
	})
}

func TestIsendAwaitOrdersAfterDependency(t *testing.T) {
	job(t, 2, 2, simnet.CostModel{Alpha: time.Millisecond}, nil, func(c *core.Ctx, m *Module) {
		if m.Rank() == 0 {
			data := make([]byte, 8)
			// The send depends on a compute future that fills the buffer.
			compute := c.AsyncFuture(func(*core.Ctx) any {
				time.Sleep(2 * time.Millisecond)
				copy(data, mpi.EncodeInt64s([]int64{123}))
				return nil
			})
			c.Wait(m.IsendAwait(c, data, 1, 1, compute))
		} else {
			in := make([]byte, 8)
			m.Recv(c, in, 0, 1)
			if got := mpi.DecodeInt64s(in)[0]; got != 123 {
				t.Errorf("IsendAwait sent %d before dependency", got)
			}
		}
	})
}

func TestCollectivesTaskified(t *testing.T) {
	const n = 4
	job(t, n, 2, simnet.CostModel{}, nil, func(c *core.Ctx, m *Module) {
		m.Barrier(c)
		buf := make([]byte, 8)
		if m.Rank() == 0 {
			copy(buf, mpi.EncodeInt64s([]int64{55}))
		}
		m.Bcast(c, buf, 0)
		if mpi.DecodeInt64s(buf)[0] != 55 {
			t.Errorf("rank %d bcast wrong", m.Rank())
		}
		recv := make([]byte, 8)
		m.Allreduce(c, recv, mpi.EncodeInt64s([]int64{int64(m.Rank())}), mpi.SumInt64)
		if got := mpi.DecodeInt64s(recv)[0]; got != n*(n-1)/2 {
			t.Errorf("allreduce = %d", got)
		}
		chunks := make([][]byte, n)
		for d := range chunks {
			chunks[d] = []byte{byte(m.Rank()), byte(d)}
		}
		got := m.Alltoallv(c, chunks)
		for s := range got {
			if got[s][0] != byte(s) || got[s][1] != byte(m.Rank()) {
				t.Errorf("alltoallv chunk from %d = %v", s, got[s])
			}
		}
	})
}

func TestBarrierFutureOverlapsWork(t *testing.T) {
	job(t, 2, 2, simnet.CostModel{}, nil, func(c *core.Ctx, m *Module) {
		f := m.BarrierFuture(c)
		// The caller is free to do useful work while the barrier is pending.
		sum := 0
		for i := 0; i < 1000; i++ {
			sum += i
		}
		c.Wait(f)
		if sum != 499500 {
			t.Error("work lost")
		}
	})
}

func TestCallbacksMode(t *testing.T) {
	job(t, 2, 2, simnet.CostModel{Alpha: time.Millisecond}, &Options{Callbacks: true},
		func(c *core.Ctx, m *Module) {
			peer := 1 - m.Rank()
			in := make([]byte, 8)
			fr := m.Irecv(c, in, peer, 0)
			m.Isend(c, mpi.EncodeInt64s([]int64{int64(m.Rank())}), peer, 0)
			c.Wait(fr)
			if got := mpi.DecodeInt64s(in)[0]; got != int64(peer) {
				t.Errorf("callback mode got %d", got)
			}
		})
}

func TestManyOutstandingOpsOnePoller(t *testing.T) {
	const msgs = 50
	job(t, 2, 2, simnet.CostModel{Alpha: time.Millisecond}, nil, func(c *core.Ctx, m *Module) {
		peer := 1 - m.Rank()
		futs := make([]*core.Future, 0, 2*msgs)
		ins := make([][]byte, msgs)
		for i := 0; i < msgs; i++ {
			ins[i] = make([]byte, 8)
			futs = append(futs, m.Irecv(c, ins[i], peer, i))
		}
		for i := 0; i < msgs; i++ {
			futs = append(futs, m.Isend(c, mpi.EncodeInt64s([]int64{int64(i)}), peer, i))
		}
		c.Wait(core.WhenAll(c.Runtime(), futs...))
		for i := 0; i < msgs; i++ {
			if got := mpi.DecodeInt64s(ins[i])[0]; got != int64(i) {
				t.Errorf("msg %d = %d", i, got)
			}
		}
	})
}
