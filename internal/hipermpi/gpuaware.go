package hipermpi

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/hipercuda"
	"repro/internal/modules"
	"repro/internal/mpi"
	"repro/internal/stats"
)

// GPU-aware MPI, built by inter-module discovery — the future direction
// the paper's related-work section sketches for HiPER: "allow registered
// modules to query for other modules which they can integrate with."
//
// When the CUDA module is installed on the same runtime, the MPI module
// offers single-call device-buffer sends and receives: the staging D2H /
// H2D copies and the MPI messaging are chained internally with futures,
// so the programmer writes one call where GPU-Aware MPI would — and gets
// the same pipelining a hand-fused implementation would, scheduled on the
// unified runtime.

// cudaPeer discovers the CUDA module installed on the same runtime.
func (m *Module) cudaPeer() (*hipercuda.Module, error) {
	peer := modules.Installed(m.rt, hipercuda.ModuleName)
	if peer == nil {
		return nil, fmt.Errorf("hipermpi: GPU-aware API requires the %q module on the same runtime",
			hipercuda.ModuleName)
	}
	cm, ok := peer.(*hipercuda.Module)
	if !ok {
		return nil, fmt.Errorf("hipermpi: module %q is not the standard CUDA module", hipercuda.ModuleName)
	}
	return cm, nil
}

// GPUAware reports whether device-buffer APIs are available.
func (m *Module) GPUAware() bool {
	_, err := m.cudaPeer()
	return err == nil
}

// IsendDevice sends n float64 elements directly from device memory: one
// call stages the D2H copy and chains the send on its completion. The
// returned future is satisfied when the send completes.
func (m *Module) IsendDevice(c *core.Ctx, buf *cuda.Buffer, off, n, dest, tag int, deps ...*core.Future) (*core.Future, error) {
	defer stats.Track(ModuleName, "MPI_Isend_device")()
	cm, err := m.cudaPeer()
	if err != nil {
		return nil, err
	}
	host := make([]float64, n)
	d2h := cm.MemcpyD2HAwait(c, host, buf, off, n, deps...)
	out := core.NewPromise(m.rt)
	c.AsyncAwaitAt(m.nic, func(cc *core.Ctx) {
		m.Isend(cc, mpi.EncodeFloat64s(host), dest, tag).OnDone(func(v any) { out.Put(v) })
	}, d2h)
	return out.Future(), nil
}

// IrecvDevice receives n float64 elements directly into device memory:
// the H2D copy is chained on the receive. The returned future is
// satisfied when the data is resident on the device.
func (m *Module) IrecvDevice(c *core.Ctx, buf *cuda.Buffer, off, n, source, tag int) (*core.Future, error) {
	defer stats.Track(ModuleName, "MPI_Irecv_device")()
	cm, err := m.cudaPeer()
	if err != nil {
		return nil, err
	}
	raw := make([]byte, 8*n)
	recv := m.Irecv(c, raw, source, tag)
	out := core.NewPromise(m.rt)
	c.AsyncAwaitAt(m.nic, func(cc *core.Ctx) {
		cm.MemcpyH2DAsync(cc, buf, off, mpi.DecodeFloat64s(raw)).OnDone(func(any) { out.Put(nil) })
	}, recv)
	return out.Future(), nil
}
