// Package hipermpi is the HiPER MPI module: it extends the HiPER namespace
// with MPI APIs whose execution is scheduled on the unified work-stealing
// runtime, and composes MPI communication with other HiPER work through
// futures.
//
// Blocking APIs use the "taskify" pattern from the paper:
//
//  1. a closure captures the API inputs and calls the underlying MPI
//     library's implementation;
//  2. the closure is spawned with AsyncAt targeting the Interconnect place
//     in the platform model;
//  3. the calling task is descheduled until the spawned task completes
//     (a continuation, not a blocked thread);
//  4. eventually a runtime worker whose pop or steal path covers the
//     Interconnect place — not a dedicated communication thread — discovers
//     and executes the task.
//
// Asynchronous APIs (Isend, Irecv) drop MPI's output MPI_Request argument
// and instead return a future. Internally the module keeps a list of
// pending (request, promise) pairs and a single periodically-polling task
// that tests them, satisfies the promises of completed operations, and
// yields while operations remain pending; a polling task is not created if
// one already exists.
package hipermpi

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/platform"
	"repro/internal/spin"
	"repro/internal/stats"
)

// ModuleName is the name this module registers under.
const ModuleName = "mpi"

// Options tunes module behaviour.
type Options struct {
	// PollInterval is how long the poller task sleeps when a polling round
	// completes no operations, bounding CPU burned on empty polls while
	// still giving the MPI runtime frequent progress opportunities.
	// Default 20µs.
	PollInterval time.Duration
	// Callbacks switches completion detection from the paper's polling
	// scheme to request callbacks (an ablation knob; see
	// BenchmarkPollingVsCallbacks).
	Callbacks bool
}

// Module is the HiPER MPI module bound to one rank's communicator.
type Module struct {
	comm *mpi.Comm
	opts Options

	rt  *core.Runtime
	nic *platform.Place

	mu           sync.Mutex
	pending      []pendingOp
	pollerActive bool
}

type pendingOp struct {
	req  *mpi.Request
	prom *core.Promise
	cost float64 // in-flight hint to retire on completion
}

// New creates the module for one rank's communicator.
func New(comm *mpi.Comm, opts *Options) *Module {
	m := &Module{comm: comm}
	if opts != nil {
		m.opts = *opts
	}
	if m.opts.PollInterval <= 0 {
		m.opts.PollInterval = 20 * time.Microsecond
	}
	return m
}

// Name implements modules.Module.
func (m *Module) Name() string { return ModuleName }

// Init asserts the module's platform-model requirements: an Interconnect
// place must exist and be covered by some worker's pop or steal path, so
// taskified MPI calls actually execute. It is up to individual modules to
// make these assertions during initialization.
func (m *Module) Init(rt *core.Runtime) error {
	nic := rt.Model().FirstByKind(platform.KindInterconnect)
	if nic == nil {
		return fmt.Errorf("hipermpi: platform model has no %q place", platform.KindInterconnect)
	}
	if !rt.Model().CoveredPlaces()[nic.ID] {
		return fmt.Errorf("hipermpi: interconnect place %v is on no worker's pop or steal path", nic)
	}
	m.rt = rt
	m.nic = nic
	return nil
}

// Finalize implements modules.Module.
func (m *Module) Finalize() {}

// Comm returns the wrapped communicator.
func (m *Module) Comm() *mpi.Comm { return m.comm }

// Rank returns the caller's rank.
func (m *Module) Rank() int { return m.comm.Rank() }

// Size returns the communicator size.
func (m *Module) Size() int { return m.comm.Size() }

// Interconnect returns the place communication tasks are scheduled at.
func (m *Module) Interconnect() *platform.Place { return m.nic }

// taskify runs fn as a task at the Interconnect place and deschedules the
// calling task until it completes. The underlying library call may block
// indefinitely (a Recv with no matching send yet, a collective waiting for
// other ranks), so the NIC task shunts it onto a proxy goroutine — the
// stand-in for the OS thread a real blocking C call would pin — and waits
// on its future: worker substitution then keeps the Interconnect place
// serviced while the call is in flight, so pollers and chained
// communication tasks can never be starved by one blocked call.
func (m *Module) taskify(c *core.Ctx, api string, fn func()) {
	defer stats.Track(ModuleName, api)()
	f := c.AsyncFutureAt(m.nic, func(cc *core.Ctx) any {
		done := core.NewPromise(m.rt)
		go func() {
			fn()
			done.Put(nil)
		}()
		cc.Wait(done.Future())
		return nil
	})
	c.Wait(f)
}

// transferCost is a transfer's in-flight hint in the module's units
// (kilobytes) — link pressure the scheduling policy sees while the
// operation is outstanding.
func transferCost(buf []byte) float64 { return float64(len(buf)) / 1024 }

// Send is taskified MPI_Send.
func (m *Module) Send(c *core.Ctx, buf []byte, dest, tag int) {
	cost := transferCost(buf)
	m.rt.HintInFlight(m.nic, cost)
	m.taskify(c, "MPI_Send", func() { m.comm.Send(buf, dest, tag) })
	m.rt.HintInFlight(m.nic, -cost)
}

// Recv is taskified MPI_Recv.
func (m *Module) Recv(c *core.Ctx, buf []byte, source, tag int) mpi.Status {
	var st mpi.Status
	cost := transferCost(buf)
	m.rt.HintInFlight(m.nic, cost)
	m.taskify(c, "MPI_Recv", func() { st = m.comm.Recv(buf, source, tag) })
	m.rt.HintInFlight(m.nic, -cost)
	return st
}

// Isend is MPI_Isend with the MPI_Request output replaced by a future,
// satisfied (with the mpi.Status) when the send completes.
func (m *Module) Isend(c *core.Ctx, buf []byte, dest, tag int) *core.Future {
	defer stats.Track(ModuleName, "MPI_Isend")()
	req := m.comm.Isend(buf, dest, tag)
	return m.register(c, req, transferCost(buf))
}

// Irecv is MPI_Irecv with the MPI_Request output replaced by a future.
func (m *Module) Irecv(c *core.Ctx, buf []byte, source, tag int) *core.Future {
	defer stats.Track(ModuleName, "MPI_Irecv")()
	req := m.comm.Irecv(buf, source, tag)
	return m.register(c, req, transferCost(buf))
}

// IsendAwait is the paper's MPI_Isend_await: the send is issued only after
// all the given futures are satisfied, and the returned future completes
// when the send does. This is how GEO chains a ghost-region send on the
// completion of the kernel that produces the region.
func (m *Module) IsendAwait(c *core.Ctx, buf []byte, dest, tag int, deps ...*core.Future) *core.Future {
	out := core.NewPromise(m.rt)
	c.AsyncAwaitAt(m.nic, func(cc *core.Ctx) {
		f := m.Isend(cc, buf, dest, tag)
		f.OnDone(func(v any) { out.Put(v) })
	}, deps...)
	return out.Future()
}

// IrecvAwait posts a receive once the given futures are satisfied.
func (m *Module) IrecvAwait(c *core.Ctx, buf []byte, source, tag int, deps ...*core.Future) *core.Future {
	out := core.NewPromise(m.rt)
	c.AsyncAwaitAt(m.nic, func(cc *core.Ctx) {
		f := m.Irecv(cc, buf, source, tag)
		f.OnDone(func(v any) { out.Put(v) })
	}, deps...)
	return out.Future()
}

// register parks (req, promise) on the pending list and ensures a poller
// task exists (or, in callback mode, wires the request callback directly).
// cost is reported to the scheduling policy as in-flight work at the
// Interconnect place and retired when the operation completes.
func (m *Module) register(c *core.Ctx, req *mpi.Request, cost float64) *core.Future {
	m.rt.HintInFlight(m.nic, cost)
	prom := core.NewPromise(m.rt)
	if m.opts.Callbacks {
		req.OnComplete(func(st mpi.Status) {
			m.rt.HintInFlight(m.nic, -cost)
			prom.Put(st)
		})
		return prom.Future()
	}
	m.mu.Lock()
	m.pending = append(m.pending, pendingOp{req: req, prom: prom, cost: cost})
	spawn := !m.pollerActive
	if spawn {
		m.pollerActive = true
	}
	m.mu.Unlock()
	if spawn {
		c.AsyncDetachedAt(m.nic, m.poll)
	}
	return prom.Future()
}

// poll is the periodically polling task: it iterates the pending list,
// satisfies promises of completed operations, and yields (re-enqueues
// itself) while operations remain.
func (m *Module) poll(c *core.Ctx) {
	m.mu.Lock()
	var still []pendingOp
	var done []pendingOp
	for _, op := range m.pending {
		if op.req.Test() {
			done = append(done, op)
		} else {
			still = append(still, op)
		}
	}
	m.pending = still
	remaining := len(still)
	if remaining == 0 {
		m.pollerActive = false
	}
	m.mu.Unlock()

	for _, op := range done {
		m.rt.HintInFlight(m.nic, -op.cost)
		c.Put(op.prom, op.req.Status())
	}
	if remaining > 0 {
		if len(done) == 0 {
			// Nothing completed: back off briefly before the next round so
			// an otherwise-idle worker does not spin.
			spin.Sleep(m.opts.PollInterval) //hiperlint:ignore raw-delay-outside-fabric poller back-off pacing, not a modelled transfer
		}
		c.Yield(m.poll)
	}
}

// Barrier is MPI_Barrier: the calling task is descheduled until every rank
// arrives. Arrival uses MPI_Ibarrier so the worker servicing the
// Interconnect place never hard-blocks (which would starve the module's
// request poller).
func (m *Module) Barrier(c *core.Ctx) {
	defer stats.Track(ModuleName, "MPI_Barrier")()
	c.Wait(m.register(c, m.comm.Ibarrier(), 0))
}

// Bcast is taskified MPI_Bcast.
func (m *Module) Bcast(c *core.Ctx, buf []byte, root int) {
	m.taskify(c, "MPI_Bcast", func() { m.comm.Bcast(buf, root) })
}

// Reduce is taskified MPI_Reduce.
func (m *Module) Reduce(c *core.Ctx, recv, contrib []byte, op mpi.ReduceOp, root int) {
	m.taskify(c, "MPI_Reduce", func() { m.comm.Reduce(recv, contrib, op, root) })
}

// Allreduce is taskified MPI_Allreduce.
func (m *Module) Allreduce(c *core.Ctx, recv, contrib []byte, op mpi.ReduceOp) {
	m.taskify(c, "MPI_Allreduce", func() { m.comm.Allreduce(recv, contrib, op) })
}

// Alltoallv is taskified MPI_Alltoallv.
func (m *Module) Alltoallv(c *core.Ctx, chunks [][]byte) [][]byte {
	var out [][]byte
	m.taskify(c, "MPI_Alltoallv", func() { out = m.comm.Alltoallv(chunks) })
	return out
}

// Allgather is taskified MPI_Allgather.
func (m *Module) Allgather(c *core.Ctx, contrib []byte) [][]byte {
	var out [][]byte
	m.taskify(c, "MPI_Allgather", func() { out = m.comm.Allgather(contrib) })
	return out
}

// BarrierFuture is MPI_Ibarrier: it returns a future satisfied when all
// ranks have entered the barrier, without descheduling the caller.
func (m *Module) BarrierFuture(c *core.Ctx) *core.Future {
	return m.register(c, m.comm.Ibarrier(), 0)
}
