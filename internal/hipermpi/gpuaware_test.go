package hipermpi

import (
	"sync"
	"testing"
	"time"

	"repro/hiper"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/hipercuda"
	"repro/internal/modules"
	"repro/internal/mpi"
	"repro/internal/platform"
	"repro/internal/simnet"
)

// gpuJob boots ranks with BOTH the MPI and CUDA modules installed.
func gpuJob(t testing.TB, ranks int, fn func(c *core.Ctx, m *Module, cm *hipercuda.Module)) {
	t.Helper()
	world := mpi.NewWorld(ranks, simnet.CostModel{Alpha: time.Millisecond})
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		rt, err := core.New(platform.DefaultWithGPU(2, 1), nil)
		if err != nil {
			t.Fatal(err)
		}
		m := New(world.Comm(r), nil)
		cm := hipercuda.New(cuda.NewDevice(cuda.Config{SMs: 2, MemcpyAlpha: time.Millisecond}), nil)
		modules.MustInstall(rt, m)
		modules.MustInstall(rt, cm)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt.Launch(func(c *core.Ctx) { fn(c, m, cm) })
			rt.Shutdown()
		}()
	}
	wg.Wait()
}

func TestGPUAwareDiscovery(t *testing.T) {
	// Without the CUDA module, the device APIs must refuse.
	world := mpi.NewWorld(1, simnet.CostModel{})
	rt, err := hiper.New(hiper.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	m := New(world.Comm(0), nil)
	modules.MustInstall(rt, m)
	if m.GPUAware() {
		t.Fatal("GPUAware true without the CUDA module")
	}
	rt.Launch(func(c *core.Ctx) {
		if _, err := m.IsendDevice(c, nil, 0, 0, 0, 0); err == nil {
			t.Error("IsendDevice must error without the CUDA module")
		}
		if _, err := m.IrecvDevice(c, nil, 0, 0, 0, 0); err == nil {
			t.Error("IrecvDevice must error without the CUDA module")
		}
	})
}

func TestDeviceToDeviceMessage(t *testing.T) {
	// GPU-Aware MPI's headline: one call moves data from a device buffer
	// on one rank to a device buffer on another.
	gpuJob(t, 2, func(c *core.Ctx, m *Module, cm *hipercuda.Module) {
		const n = 64
		if !m.GPUAware() {
			t.Error("GPUAware false with CUDA module installed")
			return
		}
		buf := cm.MustMalloc(n)
		if m.Rank() == 0 {
			// Fill the device buffer with a kernel, then send it with a
			// single call chained on the kernel.
			k := cm.ForasyncCUDA(c, n, func(i int) { buf.Data()[i] = float64(i) * 1.5 })
			f, err := m.IsendDevice(c, buf, 0, n, 1, 7, k)
			if err != nil {
				t.Error(err)
				return
			}
			c.Wait(f)
		} else {
			f, err := m.IrecvDevice(c, buf, 0, n, 0, 7)
			if err != nil {
				t.Error(err)
				return
			}
			c.Wait(f)
			// Verify on the "device" via a blocking D2H.
			host := make([]float64, n)
			cm.MemcpyD2H(c, host, buf, 0, n)
			for i := range host {
				if host[i] != float64(i)*1.5 {
					t.Errorf("device recv[%d] = %v", i, host[i])
					return
				}
			}
		}
	})
}
