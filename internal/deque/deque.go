// Package deque implements a Chase-Lev lock-free work-stealing deque.
//
// The deque is owned by a single worker goroutine, which may call PushBottom
// and PopBottom. Any number of other goroutines ("thieves") may concurrently
// call Steal. This is the classic dynamic circular work-stealing deque from
// Chase and Lev, "Dynamic Circular Work-Stealing Deque" (SPAA 2005), adapted
// to Go's sequentially-consistent sync/atomic operations.
//
// In the HiPER runtime each place in the platform model holds one deque per
// worker identity; the i-th deque at a place contains only tasks spawned by
// worker i, so pop paths (own work, LIFO, locality-friendly) and steal paths
// (others' work, FIFO, load-balancing) are cheap to distinguish.
package deque

import "sync/atomic"

const (
	// minCapacity is the initial ring size allocated on first push.
	// Must be a power of two.
	minCapacity = 32
)

// ring is an immutable-capacity circular buffer. Elements are accessed with
// atomic operations because a thief may read a slot while the owner
// overwrites it after a successful steal of an adjacent slot.
type ring[T any] struct {
	mask int64
	buf  []atomic.Pointer[T]
}

func newRing[T any](capacity int64) *ring[T] {
	return &ring[T]{mask: capacity - 1, buf: make([]atomic.Pointer[T], capacity)}
}

func (r *ring[T]) cap() int64 { return int64(len(r.buf)) }

func (r *ring[T]) get(i int64) *T    { return r.buf[i&r.mask].Load() }
func (r *ring[T]) put(i int64, v *T) { r.buf[i&r.mask].Store(v) }

// grow returns a ring of twice the capacity holding the elements in [top, bottom).
func (r *ring[T]) grow(top, bottom int64) *ring[T] {
	nr := newRing[T](r.cap() * 2)
	for i := top; i < bottom; i++ {
		nr.put(i, r.get(i))
	}
	return nr
}

// Deque is a single-owner, multi-thief work-stealing deque holding *T values.
// The zero value is ready to use.
type Deque[T any] struct {
	top    atomic.Int64 // next slot to steal from
	bottom atomic.Int64 // next slot to push to (owner-only writes, thieves read)
	arr    atomic.Pointer[ring[T]]
}

// New returns an empty deque.
func New[T any]() *Deque[T] { return &Deque[T]{} }

// PushBottom adds v to the owner's end of the deque. Owner-only.
func (d *Deque[T]) PushBottom(v *T) {
	b := d.bottom.Load()
	t := d.top.Load()
	a := d.arr.Load()
	if a == nil {
		a = newRing[T](minCapacity)
		d.arr.Store(a)
	}
	if b-t >= a.cap() {
		a = a.grow(t, b)
		d.arr.Store(a)
	}
	a.put(b, v)
	d.bottom.Store(b + 1)
}

// PopBottom removes and returns the most recently pushed value, or nil if the
// deque is empty. Owner-only.
func (d *Deque[T]) PopBottom() *T {
	b := d.bottom.Load() - 1
	a := d.arr.Load()
	if a == nil {
		return nil
	}
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Deque was empty; restore the canonical empty state.
		d.bottom.Store(t)
		return nil
	}
	v := a.get(b)
	if t == b {
		// Last element: race with thieves via CAS on top.
		if !d.top.CompareAndSwap(t, t+1) {
			v = nil // a thief got it
		}
		d.bottom.Store(t + 1)
		return v
	}
	return v
}

// Steal removes and returns the oldest value in the deque. It returns
// (nil, false) if the deque is empty and (nil, true) if the steal lost a race
// and should be retried if the caller insists on this victim.
func (d *Deque[T]) Steal() (v *T, retry bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil, false
	}
	a := d.arr.Load()
	if a == nil {
		return nil, false
	}
	v = a.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil, true
	}
	return v, false
}

// StealBatch steals up to half of the victim's current run — capped at
// len(buf) — in one visit, storing the stolen values oldest-first into buf.
// It returns the number stolen, and retry=true when nothing was stolen only
// because a race was lost (the caller may retry this victim).
//
// Each item is claimed with its own CAS on top. A single CAS advancing top
// by n>1 would be unsound in a Chase-Lev deque: the owner consumes from
// bottom and synchronizes on top only when taking the *last* element, so a
// range claim can overlap concurrent owner pops and double-execute tasks.
// Per-item claims preserve the deque's linearizability proof unchanged,
// while visit-level batching still amortizes victim selection and migrates
// half the run in one trip — which is where the steal-path savings for
// fine-grained workloads actually come from (fewer victim scans and fewer
// deque cache-line ping-pongs, not fewer uncontended CASes).
func (d *Deque[T]) StealBatch(buf []*T) (n int, retry bool) {
	if len(buf) == 0 {
		return 0, false
	}
	t := d.top.Load()
	b := d.bottom.Load()
	size := b - t
	if size <= 0 {
		return 0, false
	}
	want := (size + 1) / 2
	if want > int64(len(buf)) {
		want = int64(len(buf))
	}
	for int64(n) < want {
		v, r := d.Steal()
		if v == nil {
			if n == 0 {
				return 0, r
			}
			return n, false
		}
		buf[n] = v
		n++
	}
	return n, false
}

// Size reports the approximate number of elements. It is only exact when the
// deque is quiescent; concurrent callers get a snapshot.
func (d *Deque[T]) Size() int {
	b := d.bottom.Load()
	t := d.top.Load()
	if b < t {
		return 0
	}
	return int(b - t)
}

// Empty reports whether the deque appears empty.
func (d *Deque[T]) Empty() bool { return d.Size() == 0 }
