package deque

import "testing"

func TestStealBatchEmpty(t *testing.T) {
	d := New[int]()
	buf := make([]*int, 8)
	if n, retry := d.StealBatch(buf); n != 0 || retry {
		t.Fatalf("StealBatch on empty deque = (%d, %v), want (0, false)", n, retry)
	}
	x := 1
	d.PushBottom(&x)
	if n, retry := d.StealBatch(nil); n != 0 || retry {
		t.Fatalf("StealBatch with empty buf = (%d, %v), want (0, false)", n, retry)
	}
}

func TestStealBatchSingle(t *testing.T) {
	d := New[int]()
	x := 42
	d.PushBottom(&x)
	buf := make([]*int, 8)
	n, retry := d.StealBatch(buf)
	if n != 1 || retry {
		t.Fatalf("StealBatch = (%d, %v), want (1, false)", n, retry)
	}
	if buf[0] != &x {
		t.Fatal("stole the wrong element")
	}
	if !d.Empty() {
		t.Fatal("deque should be empty after stealing its only element")
	}
}

// TestStealBatchTakesHalf checks the batch size policy (half the run, rounded
// up) and that stolen elements come out oldest-first while the victim keeps
// the newest half for its own LIFO pops.
func TestStealBatchTakesHalf(t *testing.T) {
	d := New[int]()
	vals := make([]int, 10)
	for i := range vals {
		vals[i] = i
		d.PushBottom(&vals[i])
	}
	buf := make([]*int, 16)
	n, retry := d.StealBatch(buf)
	if n != 5 || retry {
		t.Fatalf("StealBatch = (%d, %v), want (5, false)", n, retry)
	}
	for i := 0; i < n; i++ {
		if *buf[i] != i {
			t.Fatalf("buf[%d] = %d, want %d (oldest-first order)", i, *buf[i], i)
		}
	}
	// Owner still pops its newest work LIFO.
	for i := 9; i >= 5; i-- {
		v := d.PopBottom()
		if v == nil || *v != i {
			t.Fatalf("owner pop: got %v, want %d", v, i)
		}
	}
	if !d.Empty() {
		t.Fatal("deque should be empty")
	}
}

func TestStealBatchCappedByBuf(t *testing.T) {
	d := New[int]()
	vals := make([]int, 100)
	for i := range vals {
		vals[i] = i
		d.PushBottom(&vals[i])
	}
	buf := make([]*int, 8)
	n, retry := d.StealBatch(buf)
	if n != 8 || retry {
		t.Fatalf("StealBatch = (%d, %v), want (8, false)", n, retry)
	}
	if d.Size() != 92 {
		t.Fatalf("victim size = %d, want 92", d.Size())
	}
}

// TestStealBatchDrain steals repeatedly until the deque is empty and checks
// every element is surfaced exactly once, in FIFO order across batches.
func TestStealBatchDrain(t *testing.T) {
	d := New[int]()
	const total = 1000
	vals := make([]int, total)
	for i := range vals {
		vals[i] = i
		d.PushBottom(&vals[i])
	}
	buf := make([]*int, 16)
	next := 0
	for {
		n, retry := d.StealBatch(buf)
		if retry {
			t.Fatal("unexpected retry on uncontended batch steal")
		}
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			if *buf[i] != next {
				t.Fatalf("got %d, want %d", *buf[i], next)
			}
			next++
		}
	}
	if next != total {
		t.Fatalf("drained %d elements, want %d", next, total)
	}
}
