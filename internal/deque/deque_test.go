package deque

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPushPopLIFO(t *testing.T) {
	d := New[int]()
	vals := []int{1, 2, 3, 4, 5}
	ptrs := make([]*int, len(vals))
	for i := range vals {
		ptrs[i] = &vals[i]
		d.PushBottom(ptrs[i])
	}
	for i := len(vals) - 1; i >= 0; i-- {
		got := d.PopBottom()
		if got != ptrs[i] {
			t.Fatalf("pop %d: got %v want %v", i, got, ptrs[i])
		}
	}
	if d.PopBottom() != nil {
		t.Fatal("pop on empty deque should return nil")
	}
}

func TestStealFIFO(t *testing.T) {
	d := New[int]()
	vals := []int{10, 20, 30}
	for i := range vals {
		d.PushBottom(&vals[i])
	}
	for i := range vals {
		v, retry := d.Steal()
		if retry {
			t.Fatal("unexpected retry on uncontended steal")
		}
		if v == nil || *v != vals[i] {
			t.Fatalf("steal %d: got %v want %d", i, v, vals[i])
		}
	}
	if v, _ := d.Steal(); v != nil {
		t.Fatal("steal on empty deque should return nil")
	}
}

func TestEmptyOps(t *testing.T) {
	d := New[int]()
	if !d.Empty() || d.Size() != 0 {
		t.Fatal("new deque should be empty")
	}
	if d.PopBottom() != nil {
		t.Fatal("pop empty")
	}
	if v, retry := d.Steal(); v != nil || retry {
		t.Fatal("steal empty")
	}
	x := 7
	d.PushBottom(&x)
	if d.Empty() || d.Size() != 1 {
		t.Fatal("size after push")
	}
	d.PopBottom()
	if !d.Empty() {
		t.Fatal("should be empty again")
	}
	// Interleave to exercise the canonical-empty restore path.
	for i := 0; i < 100; i++ {
		d.PushBottom(&x)
		if d.PopBottom() == nil {
			t.Fatal("lost element")
		}
	}
}

func TestGrowth(t *testing.T) {
	d := New[int]()
	n := 10 * minCapacity
	vals := make([]int, n)
	for i := 0; i < n; i++ {
		vals[i] = i
		d.PushBottom(&vals[i])
	}
	if d.Size() != n {
		t.Fatalf("size = %d, want %d", d.Size(), n)
	}
	// Mixed pops and steals must retrieve every element exactly once.
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		var v *int
		if i%2 == 0 {
			v = d.PopBottom()
		} else {
			v, _ = d.Steal()
		}
		if v == nil {
			t.Fatalf("lost element at %d", i)
		}
		if seen[*v] {
			t.Fatalf("duplicate element %d", *v)
		}
		seen[*v] = true
	}
	if !d.Empty() {
		t.Fatal("should be empty")
	}
}

// TestConcurrentStealers runs one owner pushing/popping against several
// thieves, verifying that every pushed element is consumed exactly once.
func TestConcurrentStealers(t *testing.T) {
	const (
		total    = 100000
		stealers = 4
	)
	d := New[int64]()
	var consumed atomic.Int64
	var sum atomic.Int64
	var wantSum int64

	done := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < stealers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, retry := d.Steal()
				if v != nil {
					consumed.Add(1)
					sum.Add(*v)
					continue
				}
				if retry {
					continue
				}
				select {
				case <-done:
					// Drain anything left after the owner finished.
					for {
						v, retry := d.Steal()
						if v != nil {
							consumed.Add(1)
							sum.Add(*v)
						} else if !retry {
							return
						}
					}
				default:
				}
			}
		}()
	}

	vals := make([]int64, total)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < total; i++ {
		vals[i] = int64(i + 1)
		wantSum += vals[i]
		d.PushBottom(&vals[i])
		if rng.Intn(3) == 0 {
			if v := d.PopBottom(); v != nil {
				consumed.Add(1)
				sum.Add(*v)
			}
		}
	}
	// Owner drains its remaining work.
	for {
		v := d.PopBottom()
		if v == nil {
			break
		}
		consumed.Add(1)
		sum.Add(*v)
	}
	close(done)
	wg.Wait()
	// A thief may still have grabbed elements between the owner's last pop
	// returning nil and close(done); all elements must be accounted for.
	if got := consumed.Load(); got != total {
		t.Fatalf("consumed %d elements, want %d", got, total)
	}
	if got := sum.Load(); got != wantSum {
		t.Fatalf("sum = %d, want %d (duplicate or lost element)", got, wantSum)
	}
}

// TestQuickSequential property: for any sequence of push/pop/steal operations
// performed sequentially, the deque behaves like a double-ended queue where
// pop takes from the back and steal takes from the front.
func TestQuickSequential(t *testing.T) {
	f := func(ops []uint8) bool {
		d := New[int]()
		var model []int // front = steal end, back = pop end
		next := 0
		storage := make([]int, 0, len(ops))
		for _, op := range ops {
			switch op % 3 {
			case 0: // push
				storage = append(storage, next)
				// Note: appending may reallocate; take address after append
				// of the element in its final home for this iteration.
				d.PushBottom(&storage[len(storage)-1])
				model = append(model, next)
				next++
			case 1: // pop
				got := d.PopBottom()
				if len(model) == 0 {
					if got != nil {
						return false
					}
				} else {
					want := model[len(model)-1]
					model = model[:len(model)-1]
					if got == nil || *got != want {
						return false
					}
				}
			case 2: // steal
				got, retry := d.Steal()
				if retry {
					return false // no contention sequentially
				}
				if len(model) == 0 {
					if got != nil {
						return false
					}
				} else {
					want := model[0]
					model = model[1:]
					if got == nil || *got != want {
						return false
					}
				}
			}
		}
		return d.Size() == len(model)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	d := New[int]()
	x := 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PushBottom(&x)
		d.PopBottom()
	}
}

func BenchmarkStealContention(b *testing.B) {
	d := New[int]()
	x := 1
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
					d.Steal()
				}
			}
		}()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PushBottom(&x)
		d.PopBottom()
	}
	b.StopTimer()
	close(stop)
}
