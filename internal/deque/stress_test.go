package deque

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestStealBatchConcurrentExactlyOnce is the hot-path stress test for batched
// stealing: one owner pushes (with occasional LIFO pops) while 8 thieves pull
// with StealBatch. The owner pushes in bursts so the ring grows from its
// minimum capacity to thousands of slots *while* thieves are mid-steal,
// exercising the grow-during-steal window. Every element must be consumed
// exactly once — the property a multi-item top claim would violate (see the
// StealBatch doc comment).
func TestStealBatchConcurrentExactlyOnce(t *testing.T) {
	const (
		total   = 100000
		thieves = 8
		burst   = 500 // push bursts outpace thieves, forcing ring growth
	)
	d := New[int64]()
	seen := make([]atomic.Int32, total)
	record := func(v *int64) {
		if n := seen[*v].Add(1); n != 1 {
			t.Errorf("element %d consumed %d times", *v, n)
		}
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < thieves; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]*int64, 16)
			for {
				n, retry := d.StealBatch(buf)
				for i := 0; i < n; i++ {
					record(buf[i])
					buf[i] = nil
				}
				if n > 0 || retry {
					continue
				}
				select {
				case <-done:
					for {
						n, retry := d.StealBatch(buf)
						if n == 0 && !retry {
							return
						}
						for i := 0; i < n; i++ {
							record(buf[i])
							buf[i] = nil
						}
					}
				default:
				}
			}
		}()
	}

	vals := make([]int64, total)
	for i := 0; i < total; i++ {
		vals[i] = int64(i)
		d.PushBottom(&vals[i])
		if i%burst == burst-1 {
			// Owner takes a few back LIFO, racing thieves for the tail.
			for k := 0; k < 8; k++ {
				if v := d.PopBottom(); v != nil {
					record(v)
				}
			}
		}
	}
	for {
		v := d.PopBottom()
		if v == nil {
			break
		}
		record(v)
	}
	close(done)
	wg.Wait()

	missing := 0
	for i := range seen {
		if seen[i].Load() != 1 {
			missing++
		}
	}
	if missing != 0 {
		t.Fatalf("%d of %d elements not consumed exactly once", missing, total)
	}
}
