// Package policy ships the pluggable scheduling policies that slot into
// core's SchedPolicy seam — the paper's composability thesis applied to
// the scheduler itself: pop order, steal-victim selection, batch sizing,
// and place-group resolution become swappable modules.
//
// Three policies:
//
//   - RandomSteal — the default. In-path-order pops, pseudo-random victim
//     start, full steal batches. Its NewRuntime returns nil, which selects
//     the runtime's built-in inline implementation: the default policy is
//     today's scheduler by construction, not by reimplementation.
//   - HEFT — heterogeneous earliest-finish-time. Spawns carrying Cost
//     hints (read as upward rank when the application knows its DAG) feed
//     a per-place cost model; place groups resolve to the place with the
//     earliest estimated finish (queue backlog + link hops + execution on
//     that place's relative speed), and workers pop their most-backlogged
//     place first so high-rank work drains ahead of FIFO order.
//   - CritPath — critical-path-first with locality-biased stealing: pop
//     the place holding the costliest known task class first, steal from
//     same-socket deque columns (platform-graph distance 0 between home
//     places) before crossing sockets, and take smaller batches from near
//     victims (shared cache keeps their work warm) than from far ones.
package policy

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
)

// RandomSteal is the default scheduling policy: exactly the runtime's
// built-in behavior (NewRuntime returns nil → the runtime keeps its
// inline, allocation-free find-work path, with zero added dispatch).
var RandomSteal core.SchedPolicy = randomSteal{}

type randomSteal struct{}

func (randomSteal) Name() string                                 { return "random-steal" }
func (randomSteal) NewRuntime(core.PolicyEnv) core.PolicyRuntime { return nil }

// HEFT is the heterogeneous-earliest-finish-time policy; see the package
// comment. Stateless descriptor — per-runtime state comes from NewRuntime.
var HEFT core.SchedPolicy = heftPolicy{}

// CritPath is the critical-path-first, locality-biased policy; see the
// package comment.
var CritPath core.SchedPolicy = critPolicy{}

// All lists the shipped policies, default first — the order benchmark
// sweeps use.
var All = []core.SchedPolicy{RandomSteal, HEFT, CritPath}

// ByName resolves a shipped policy by its Name (CLI and config plumbing).
func ByName(name string) (core.SchedPolicy, error) {
	for _, p := range All {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("policy: unknown policy %q", name)
}

// costScale converts float cost units to the integer milli-units the load
// table accumulates atomically.
const costScale = 1024

// loadTable aggregates the cost hints observed per place: monotonic sum
// and count (their ratio is the place's mean task cost) plus the largest
// single hint (CritPath's critical-path signal). Monotonic accumulation
// sidesteps per-task drain accounting — combined with the runtime's live
// pending counter, mean×pending estimates the outstanding cost mass
// without touching the 32-byte Task struct.
type loadTable struct {
	sum []atomic.Int64 // cost units × costScale
	n   []atomic.Int64
	max []atomic.Int64 // largest single hint × costScale
	fly []atomic.Int64 // in-flight device/link work × costScale (signed)
}

func newLoadTable(places int) *loadTable {
	return &loadTable{
		sum: make([]atomic.Int64, places),
		n:   make([]atomic.Int64, places),
		max: make([]atomic.Int64, places),
		fly: make([]atomic.Int64, places),
	}
}

// hint folds one cost observation into place pid's aggregates.
func (lt *loadTable) hint(pid int, cost float64) {
	c := int64(cost * costScale)
	if c <= 0 {
		return
	}
	lt.sum[pid].Add(c)
	lt.n[pid].Add(1)
	for {
		cur := lt.max[pid].Load()
		if c <= cur || lt.max[pid].CompareAndSwap(cur, c) {
			return
		}
	}
}

// mean returns the mean observed task cost at pid, defaulting to 1 unit
// when the place has no hints (so unhinted places still rank by count).
func (lt *loadTable) mean(pid int) float64 {
	n := lt.n[pid].Load()
	if n == 0 {
		return 1
	}
	return float64(lt.sum[pid].Load()) / float64(n) / costScale
}

// peak returns the largest single cost hint seen at pid (0 when none).
func (lt *loadTable) peak(pid int) float64 {
	return float64(lt.max[pid].Load()) / costScale
}

// flight folds a signed in-flight delta (issue +, retire −) into pid's
// running device/link occupancy.
func (lt *loadTable) flight(pid int, delta float64) {
	lt.fly[pid].Add(int64(delta * costScale))
}

// inflight returns pid's current in-flight work estimate, floored at zero
// (retirements can transiently overtake issues when hints race).
func (lt *loadTable) inflight(pid int) float64 {
	v := lt.fly[pid].Load()
	if v <= 0 {
		return 0
	}
	return float64(v) / costScale
}

// splitmix seeds a per-worker xorshift stream from the worker id, matching
// the determinism of the runtime's built-in per-worker seeding.
func splitmix(id int) uint64 {
	z := uint64(id)*0x9E3779B97F4A7C15 + 0x1234567
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// xorshift advances one worker-local PRNG stream.
func xorshift(x *uint64) uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return v
}

// sortByKeyDesc insertion-sorts ord so keys[ord[i]] is non-increasing.
// Stable, allocation-free; pop paths are a handful of entries.
func sortByKeyDesc(ord []int32, keys []float64) {
	for i := 1; i < len(ord); i++ {
		o, k := ord[i], keys[ord[i]]
		j := i - 1
		for j >= 0 && keys[ord[j]] < k {
			ord[j+1] = ord[j]
			j--
		}
		ord[j+1] = o
	}
}

// rotateLeft rotates s left by r using three reversals (in place).
func rotateLeft(s []int32, r int) {
	if len(s) < 2 {
		return
	}
	r %= len(s)
	if r == 0 {
		return
	}
	reverse(s[:r])
	reverse(s[r:])
	reverse(s)
}

func reverse(s []int32) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
