package policy

import (
	"sort"

	"repro/internal/core"
	"repro/internal/platform"
)

type critPolicy struct{}

func (critPolicy) Name() string { return "critpath" }

func (critPolicy) NewRuntime(env core.PolicyEnv) core.PolicyRuntime {
	return &critState{
		env:  env,
		load: newLoadTable(env.Model.NumPlaces()),
	}
}

// critState is the critical-path-first policy's per-runtime state. The
// load table's per-place peak cost is the critical-path signal: the place
// whose pending work includes the costliest known task class is served
// first, so the longest chain keeps making progress while cheap fan-out
// fills the remaining capacity (Rohlin et al.'s critical-path-first
// mapping, adapted to a work-stealing runtime: we cannot reorder within a
// deque, but we can choose which place's deque to drain).
type critState struct {
	env  core.PolicyEnv
	load *loadTable
}

func (s *critState) CostHint(pid int, cost float64) { s.load.hint(pid, cost) }

// InFlight is ignored: CritPath ranks places by the costliest *queued*
// task class; work already running on a device is not a chain it can serve.
func (s *critState) InFlight(int, float64) {}

// Resolve biases placement toward locality: each hop costs four units
// against a candidate's pending count, so a near place wins unless its
// queue is substantially deeper — the opposite trade from HEFT, which
// prices queues in cost units and crosses links eagerly.
func (s *critState) Resolve(from *platform.Place, group []*platform.Place, cost float64) *platform.Place {
	best := group[0]
	bestScore := s.score(from, group[0])
	for _, p := range group[1:] {
		if sc := s.score(from, p); sc < bestScore {
			best, bestScore = p, sc
		}
	}
	return best
}

func (s *critState) score(from, to *platform.Place) float64 {
	hops := 0
	if from != nil && from != to {
		hops = s.env.Model.Hops(from, to)
		if hops < 0 {
			return 1e18
		}
	}
	return float64(s.env.Pending(to.ID)) + 4*float64(hops)
}

func (s *critState) Worker(id, group int, pop, steal []*platform.Place) core.PolicyWorker {
	w := &critWorker{
		s:    s,
		pop:  pop,
		keys: make([]float64, len(pop)),
		rng:  splitmix(id),
		dist: make([]int16, s.env.MaxIDs),
	}
	// Precompute the victim preference order: all identities sorted by
	// platform-graph distance between our home place (pop[0]) and the
	// victim's home — identity v runs path group v % NWorkers, so its home
	// is that group's first pop place. Same-socket columns (distance 0,
	// shared cache) come before cross-socket ones; ties break by identity
	// for determinism. Victims() rotates within the leading equal-distance
	// tier per scan to spread contention.
	home := pop[0]
	specs := s.env.Model.Workers()
	w.order = make([]int32, s.env.MaxIDs)
	for v := 0; v < s.env.MaxIDs; v++ {
		w.order[v] = int32(v)
		vHome := s.env.Model.Place(specs[v%s.env.NWorkers].Pop[0])
		d := s.env.Model.Hops(home, vHome)
		if d < 0 {
			d = int(^uint16(0) >> 1) // disconnected: last resort
		}
		w.dist[v] = int16(d)
	}
	sort.SliceStable(w.order, func(i, j int) bool {
		return w.dist[w.order[i]] < w.dist[w.order[j]]
	})
	return w
}

// critWorker: critical-path-first pop order (descending peak pending
// cost), distance-tiered victim order, and batch sizes that take less from
// same-socket victims (their work is cache-warm where it is) and full
// batches across sockets (amortize the cold migration).
type critWorker struct {
	s     *critState
	pop   []*platform.Place
	keys  []float64
	order []int32 // identities by home-place distance, then id
	dist  []int16 // identity -> home-place hop distance
	rng   uint64
}

func (w *critWorker) PopOrder(ord []int32) {
	if len(ord) < 2 {
		return
	}
	for i, p := range w.pop {
		if w.s.env.Pending(p.ID) == 0 {
			w.keys[i] = -1 // empty places sink; stable among themselves
			continue
		}
		w.keys[i] = w.s.load.peak(p.ID)
	}
	sortByKeyDesc(ord, w.keys)
}

func (w *critWorker) Victims(buf []int32, pid, maxUsed int) int {
	n := 0
	for _, v := range w.order {
		if int(v) < maxUsed {
			buf[n] = v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	// Rotate within the leading equal-distance tier so concurrent thieves
	// on one socket do not all hammer the same near victim.
	near := 1
	for near < n && w.dist[buf[near]] == w.dist[buf[0]] {
		near++
	}
	if near > 1 {
		rotateLeft(buf[:near], int(xorshift(&w.rng)%uint64(near)))
	}
	return n
}

func (w *critWorker) BatchMax(pid, vid int) int {
	if w.dist[vid] == 0 {
		return 8 // near victim: leave cache-warm work in place
	}
	return 16 // far victim: full batch amortizes the cold migration
}
