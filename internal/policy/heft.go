package policy

import (
	"repro/internal/core"
	"repro/internal/platform"
)

// hopCost is the communication-cost weight of one platform-graph hop, in
// task cost units: half a unit-cost task per hop. It only needs to rank
// alternatives consistently — the simulated fabric's absolute latencies
// are the transport's business, not the scheduler's.
const hopCost = 0.5

type heftPolicy struct{}

func (heftPolicy) Name() string { return "heft" }

func (heftPolicy) NewRuntime(env core.PolicyEnv) core.PolicyRuntime {
	places := env.Model.Places()
	s := &heftState{
		env:   env,
		load:  newLoadTable(len(places)),
		speed: make([]float64, len(places)),
	}
	for _, p := range places {
		s.speed[p.ID] = p.ComputeSpeed()
	}
	return s
}

// heftState is HEFT's per-runtime cost model: per-place relative speeds
// from the platform model, hop distances as link costs, and the load table
// accumulating the application's Cost hints (its stand-in for upward
// ranks — with hints proportional to rank-u, backlog ordering approximates
// HEFT's descending-rank schedule without a global priority queue).
type heftState struct {
	env   core.PolicyEnv
	load  *loadTable
	speed []float64
}

func (s *heftState) CostHint(pid int, cost float64) { s.load.hint(pid, cost) }

func (s *heftState) InFlight(pid int, delta float64) { s.load.flight(pid, delta) }

// backlog estimates the time place pid needs to drain its *poppable*
// queued work: pending count × mean observed task cost, on this place's
// speed. Deliberately excludes in-flight device work — the pop order must
// chase tasks a worker can execute, and at a device place with operations
// in flight the only queued task is the module's poller (an early version
// that folded in-flight work into pop priority turned one worker into a
// dedicated poll loop, which on an oversubscribed host starves compute).
func (s *heftState) backlog(pid int) float64 {
	n := s.env.Pending(pid)
	if n == 0 {
		return 0
	}
	return float64(n) * s.load.mean(pid) / s.speed[pid]
}

// busy is the placement-time wait estimate: queued work plus the work the
// place's hardware is already running (a device with three kernels in
// flight finishes a fourth later, even though no task is queued).
func (s *heftState) busy(pid int) float64 {
	return (float64(s.env.Pending(pid))*s.load.mean(pid) + s.load.inflight(pid)) / s.speed[pid]
}

// Resolve implements the earliest-finish-time rule over the group:
// finish(p) = busy time at p + link cost from the spawner's place +
// this task's execution time at p's speed. Ties keep the earliest group
// member (deterministic).
func (s *heftState) Resolve(from *platform.Place, group []*platform.Place, cost float64) *platform.Place {
	best := group[0]
	bestEFT := s.eft(from, group[0], cost)
	for _, p := range group[1:] {
		if e := s.eft(from, p, cost); e < bestEFT {
			best, bestEFT = p, e
		}
	}
	return best
}

func (s *heftState) eft(from, to *platform.Place, cost float64) float64 {
	comm := 0.0
	if from != nil && from != to {
		h := s.env.Model.Hops(from, to)
		if h < 0 {
			// Disconnected: effectively unreachable, rank it last.
			return 1e18
		}
		comm = float64(h) * hopCost
	}
	exec := cost / s.speed[to.ID]
	return s.busy(to.ID) + comm + exec
}

func (s *heftState) Worker(id, group int, pop, steal []*platform.Place) core.PolicyWorker {
	return &heftWorker{
		s:    s,
		pop:  pop,
		keys: make([]float64, len(pop)),
		rng:  splitmix(id),
	}
}

// heftWorker orders the pop path by descending backlog — drain the place
// with the most outstanding ranked work first — and keeps the built-in
// randomized victim rotation with full batches (HEFT's contribution is
// ordering and placement; random stealing already maximizes rebalance
// throughput).
type heftWorker struct {
	s    *heftState
	pop  []*platform.Place
	keys []float64
	rng  uint64
}

func (w *heftWorker) PopOrder(ord []int32) {
	if len(ord) < 2 {
		return
	}
	for i, p := range w.pop {
		w.keys[i] = w.s.backlog(p.ID)
	}
	sortByKeyDesc(ord, w.keys)
}

func (w *heftWorker) Victims(buf []int32, pid, maxUsed int) int {
	start := int(xorshift(&w.rng) % uint64(maxUsed))
	for k := 0; k < maxUsed; k++ {
		v := start + k
		if v >= maxUsed {
			v -= maxUsed
		}
		buf[k] = int32(v)
	}
	return maxUsed
}

func (w *heftWorker) BatchMax(pid, vid int) int {
	return 16 // the runtime caps at its internal batch limit
}
