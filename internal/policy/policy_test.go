package policy

import (
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
)

func TestByName(t *testing.T) {
	for _, p := range All {
		got, err := ByName(p.Name())
		if err != nil {
			t.Fatal(err)
		}
		if got != p {
			t.Fatalf("ByName(%q) returned a different policy", p.Name())
		}
	}
	if _, err := ByName("round-robin"); err == nil {
		t.Fatal("ByName accepted an unknown policy name")
	}
}

// TestRandomStealIsBuiltIn: the default policy's NewRuntime returns nil —
// the contract that selects the runtime's inline fast path.
func TestRandomStealIsBuiltIn(t *testing.T) {
	if rt := RandomSteal.NewRuntime(core.PolicyEnv{}); rt != nil {
		t.Fatalf("RandomSteal.NewRuntime = %T, want nil (built-in path)", rt)
	}
}

func TestLoadTable(t *testing.T) {
	lt := newLoadTable(2)
	if got := lt.mean(0); got != 1 {
		t.Fatalf("mean with no hints = %v, want the 1-unit default", got)
	}
	lt.hint(0, 2)
	lt.hint(0, 6)
	lt.hint(0, -5) // non-positive hints are dropped
	if got := lt.mean(0); got != 4 {
		t.Fatalf("mean = %v, want 4", got)
	}
	if got := lt.peak(0); got != 6 {
		t.Fatalf("peak = %v, want 6", got)
	}
	if got := lt.mean(1); got != 1 {
		t.Fatalf("hints leaked across places: mean(1) = %v", got)
	}
	lt.flight(1, 10)
	lt.flight(1, -4)
	if got := lt.inflight(1); got != 6 {
		t.Fatalf("inflight = %v, want 6", got)
	}
	lt.flight(1, -100)
	if got := lt.inflight(1); got != 0 {
		t.Fatalf("inflight floor = %v, want 0 (retirements may transiently overtake issues)", got)
	}
}

// heftEnv builds a HEFT runtime over a CPU+GPU model with a controllable
// pending table.
func heftEnv(t *testing.T) (*heftState, map[int]int64, *platform.Model) {
	t.Helper()
	m := platform.DefaultWithGPU(2, 1)
	pending := map[int]int64{}
	s := HEFT.NewRuntime(core.PolicyEnv{
		Model:    m,
		NWorkers: 2,
		MaxIDs:   4,
		Pending:  func(pid int) int64 { return pending[pid] },
	}).(*heftState)
	return s, pending, m
}

// TestHEFTResolvePrefersFastIdlePlace: with both places idle, a heavy
// task resolves to the GPU place (8x compute speed beats the hop cost).
func TestHEFTResolvePrefersFastIdlePlace(t *testing.T) {
	s, _, m := heftEnv(t)
	cpu := m.FirstByKind(platform.KindSysMem)
	gpu := m.FirstByKind(platform.KindGPU)
	if got := s.Resolve(cpu, []*platform.Place{cpu, gpu}, 16); got != gpu {
		t.Fatalf("idle heavy task resolved to %v, want the fast place %v", got, gpu)
	}
}

// TestHEFTResolveAvoidsBusyPlace: in-flight device work delays new
// arrivals, so a loaded GPU loses to an idle CPU place.
func TestHEFTResolveAvoidsBusyPlace(t *testing.T) {
	s, _, m := heftEnv(t)
	cpu := m.FirstByKind(platform.KindSysMem)
	gpu := m.FirstByKind(platform.KindGPU)
	s.InFlight(gpu.ID, 1000)
	if got := s.Resolve(cpu, []*platform.Place{cpu, gpu}, 16); got != cpu {
		t.Fatalf("task resolved to the busy place %v, want %v", got, cpu)
	}
	s.InFlight(gpu.ID, -1000)
	if got := s.Resolve(cpu, []*platform.Place{cpu, gpu}, 16); got != gpu {
		t.Fatalf("after retirement the fast place should win again, got %v", got)
	}
}

// TestHEFTResolveQueueAware: queued work (pending x mean cost) counts
// against a candidate the same way in-flight work does.
func TestHEFTResolveQueueAware(t *testing.T) {
	s, pending, m := heftEnv(t)
	cpu := m.FirstByKind(platform.KindSysMem)
	gpu := m.FirstByKind(platform.KindGPU)
	s.CostHint(gpu.ID, 64)
	pending[gpu.ID] = 50
	if got := s.Resolve(cpu, []*platform.Place{cpu, gpu}, 16); got != cpu {
		t.Fatalf("task resolved to the deeply queued place %v, want %v", got, cpu)
	}
}

// TestHEFTPopOrderDrainsBacklogFirst: the pop permutation sorts by
// descending queued-work estimate, and ignores in-flight device work (a
// place whose only queued task is a poller must not jump the order).
func TestHEFTPopOrderDrainsBacklogFirst(t *testing.T) {
	s, pending, m := heftEnv(t)
	spec := m.Workers()[0]
	pop := make([]*platform.Place, len(spec.Pop))
	for i, id := range spec.Pop {
		pop[i] = m.Place(id)
	}
	if len(pop) < 3 {
		t.Fatalf("worker 0 pop path too short for the test: %d places", len(pop))
	}
	w := s.Worker(0, 0, pop, nil).(*heftWorker)
	ord := make([]int32, len(pop))
	for i := range ord {
		ord[i] = int32(i)
	}
	last := pop[len(pop)-1]
	pending[last.ID] = 9 // deep queue at the path's last place
	w.PopOrder(ord)
	if pop[ord[0]] != last {
		t.Fatalf("pop order starts at %v, want the backlogged %v", pop[ord[0]], last)
	}
	// In-flight work at another place must not promote it past real queues.
	first := pop[0]
	s.InFlight(first.ID, 100000)
	w.PopOrder(ord)
	if pop[ord[0]] != last {
		t.Fatalf("in-flight work promoted %v in the pop order over queued %v", pop[ord[0]], last)
	}
	seen := map[int32]bool{}
	for _, o := range ord {
		seen[o] = true
	}
	if len(seen) != len(ord) {
		t.Fatalf("PopOrder broke the permutation: %v", ord)
	}
}

// TestCritPathVictimTiers: victim preference is distance-tiered — every
// same-home victim precedes every farther one — and batch sizes shrink
// for near victims.
func TestCritPathVictimTiers(t *testing.T) {
	m, err := platform.Generate(platform.MachineSpec{Sockets: 2, CoresPerSocket: 2, Interconnect: true})
	if err != nil {
		t.Fatal(err)
	}
	s := CritPath.NewRuntime(core.PolicyEnv{
		Model:    m,
		NWorkers: 4,
		MaxIDs:   8,
		Pending:  func(int) int64 { return 0 },
	})
	spec := m.Workers()[0]
	pop := make([]*platform.Place, len(spec.Pop))
	for i, id := range spec.Pop {
		pop[i] = m.Place(id)
	}
	w := s.Worker(0, 0, pop, nil).(*critWorker)
	buf := make([]int32, 8)
	n := w.Victims(buf, pop[0].ID, 8)
	if n != 8 {
		t.Fatalf("Victims filled %d, want 8", n)
	}
	for i := 1; i < n; i++ {
		if w.dist[buf[i]] < w.dist[buf[i-1]] {
			t.Fatalf("victim order not distance-tiered: %v (dist %v then %v)", buf[:n], w.dist[buf[i-1]], w.dist[buf[i]])
		}
	}
	near, far := buf[0], buf[n-1]
	if w.dist[near] == w.dist[far] {
		t.Fatalf("two-socket model gave uniform victim distances: %v", w.dist)
	}
	if got := w.BatchMax(pop[0].ID, int(near)); got != 8 {
		t.Fatalf("near-victim batch = %d, want 8", got)
	}
	if got := w.BatchMax(pop[0].ID, int(far)); got != 16 {
		t.Fatalf("far-victim batch = %d, want 16", got)
	}
}

func TestSortByKeyDesc(t *testing.T) {
	ord := []int32{0, 1, 2, 3}
	keys := []float64{1, 9, 1, 4}
	sortByKeyDesc(ord, keys)
	want := []int32{1, 3, 0, 2} // descending keys, stable among equals
	for i := range want {
		if ord[i] != want[i] {
			t.Fatalf("sorted order %v, want %v", ord, want)
		}
	}
}

func TestRotateLeft(t *testing.T) {
	s := []int32{0, 1, 2, 3, 4}
	rotateLeft(s, 2)
	want := []int32{2, 3, 4, 0, 1}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("rotated %v, want %v", s, want)
		}
	}
}
