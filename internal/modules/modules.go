// Package modules implements the pluggable-module framework that sits on
// top of the generalized work-stealing runtime.
//
// A HiPER module adds user-visible APIs that schedule module-specific tasks
// on the runtime. A complete module provides:
//
//  1. an initialization function, called once during the life of a process;
//  2. a finalization function, called once during the life of a process;
//  3. optional special-purpose registrations (for example, the CUDA module
//     registers itself as the handler for data transfers to or from GPU
//     places in the platform model);
//  4. a set of user-facing functions that extend HiPER's capabilities to a
//     new hardware or software component; these are commonly implemented by
//     placing asynchronous tasks at special-purpose places in the platform
//     model, so that all work created by all modules is scheduled together
//     on a single unified runtime.
//
// Modules are not part of the core runtime and can be implemented by any
// third party; the framework imposes no requirement that the wrapped
// software component be aware of HiPER or of other modules.
package modules

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/stats"
)

// Module is the lifecycle contract every pluggable module implements.
type Module interface {
	// Name identifies the module (e.g. "mpi", "cuda") in diagnostics and
	// statistics.
	Name() string
	// Init is called exactly once, when the module is installed. Modules
	// assert their platform-model requirements here (for example, the MPI
	// module requires an interconnect place covered by some worker's pop
	// and steal paths) and perform special-purpose registrations.
	Init(rt *core.Runtime) error
	// Finalize is called exactly once, during runtime shutdown, in reverse
	// installation order.
	Finalize()
}

// registry tracks which modules are installed on which runtime.
var registry sync.Map // *core.Runtime -> *runtimeModules

type runtimeModules struct {
	mu      sync.Mutex
	byName  map[string]Module
	ordered []Module
}

// Install initializes m on rt and registers its finalizer. Installing two
// modules with the same name on one runtime is an error, as is installing
// the same name twice.
func Install(rt *core.Runtime, m Module) error {
	v, _ := registry.LoadOrStore(rt, &runtimeModules{byName: make(map[string]Module)})
	rms := v.(*runtimeModules)
	rms.mu.Lock()
	if _, dup := rms.byName[m.Name()]; dup {
		rms.mu.Unlock()
		return fmt.Errorf("modules: %q already installed on this runtime", m.Name())
	}
	rms.byName[m.Name()] = m
	rms.ordered = append(rms.ordered, m)
	rms.mu.Unlock()

	if err := m.Init(rt); err != nil {
		rms.mu.Lock()
		delete(rms.byName, m.Name())
		rms.ordered = rms.ordered[:len(rms.ordered)-1]
		rms.mu.Unlock()
		return fmt.Errorf("modules: init %q: %w", m.Name(), err)
	}
	rt.RegisterFinalizer(m.Finalize)
	return nil
}

// MustInstall is Install that panics on error, for program setup paths.
func MustInstall(rt *core.Runtime, m Module) {
	if err := Install(rt, m); err != nil {
		panic(err)
	}
}

// Installed returns the module with the given name installed on rt, or nil.
// Modules use this to discover peers they can integrate with.
func Installed(rt *core.Runtime, name string) Module {
	v, ok := registry.Load(rt)
	if !ok {
		return nil
	}
	rms := v.(*runtimeModules)
	rms.mu.Lock()
	defer rms.mu.Unlock()
	return rms.byName[name]
}

// Names returns the names of all modules installed on rt in install order.
func Names(rt *core.Runtime) []string {
	v, ok := registry.Load(rt)
	if !ok {
		return nil
	}
	rms := v.(*runtimeModules)
	rms.mu.Lock()
	defer rms.mu.Unlock()
	out := make([]string, len(rms.ordered))
	for i, m := range rms.ordered {
		out[i] = m.Name()
	}
	return out
}

// Timed wraps a module API call with the per-module statistics hooks the
// runtime exposes for tooling: time spent in calls to different modules is
// recorded and can be reported with stats.Report.
func Timed[T any](moduleName, api string, fn func() T) T {
	defer stats.Track(moduleName, api)()
	return fn()
}

// TimedVoid is Timed for APIs with no result.
func TimedVoid(moduleName, api string, fn func()) {
	defer stats.Track(moduleName, api)()
	fn()
}
