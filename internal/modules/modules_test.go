package modules

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
)

// newRT builds a 1-worker runtime. This in-package test cannot use the
// hiper facade (hiper imports modules), so it goes through core.New.
func newRT() *core.Runtime {
	rt, err := core.New(platform.Default(1), nil)
	if err != nil {
		panic(err)
	}
	return rt
}

type fakeModule struct {
	name      string
	initErr   error
	inited    int
	finalized int
}

func (m *fakeModule) Name() string             { return m.name }
func (m *fakeModule) Init(*core.Runtime) error { m.inited++; return m.initErr }
func (m *fakeModule) Finalize()                { m.finalized++ }

func TestInstallLifecycle(t *testing.T) {
	rt := newRT()
	m := &fakeModule{name: "fake"}
	if err := Install(rt, m); err != nil {
		t.Fatal(err)
	}
	if m.inited != 1 {
		t.Fatal("Init not called")
	}
	if got := Installed(rt, "fake"); got != m {
		t.Fatal("Installed lookup failed")
	}
	if Installed(rt, "missing") != nil {
		t.Fatal("missing module should be nil")
	}
	rt.Launch(func(c *core.Ctx) {})
	rt.Shutdown()
	if m.finalized != 1 {
		t.Fatalf("Finalize called %d times", m.finalized)
	}
}

func TestInstallDuplicateRejected(t *testing.T) {
	rt := newRT()
	defer rt.Shutdown()
	MustInstall(rt, &fakeModule{name: "dup"})
	if err := Install(rt, &fakeModule{name: "dup"}); err == nil {
		t.Fatal("duplicate install must fail")
	}
}

func TestInstallInitErrorRollsBack(t *testing.T) {
	rt := newRT()
	defer rt.Shutdown()
	bad := &fakeModule{name: "bad", initErr: errors.New("boom")}
	if err := Install(rt, bad); err == nil {
		t.Fatal("expected init error")
	}
	if Installed(rt, "bad") != nil {
		t.Fatal("failed module left registered")
	}
	// Name is free again after rollback.
	if err := Install(rt, &fakeModule{name: "bad"}); err != nil {
		t.Fatalf("reinstall after rollback: %v", err)
	}
}

func TestNamesOrdered(t *testing.T) {
	rt := newRT()
	defer rt.Shutdown()
	MustInstall(rt, &fakeModule{name: "a"})
	MustInstall(rt, &fakeModule{name: "b"})
	got := Names(rt)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("names = %v", got)
	}
	if Names(newRT()) != nil {
		t.Fatal("fresh runtime should have no modules")
	}
}

func TestMustInstallPanics(t *testing.T) {
	rt := newRT()
	defer rt.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("MustInstall must panic on error")
		}
	}()
	MustInstall(rt, &fakeModule{name: "x", initErr: errors.New("no")})
}

func TestTimedHelpers(t *testing.T) {
	got := Timed("tmod", "api", func() int { return 41 })
	if got != 41 {
		t.Fatalf("Timed = %d", got)
	}
	ran := false
	TimedVoid("tmod", "api2", func() { ran = true })
	if !ran {
		t.Fatal("TimedVoid did not run fn")
	}
}

func TestFinalizeOrderAcrossModules(t *testing.T) {
	rt := newRT()
	var order []string
	a := &orderModule{name: "a", order: &order}
	b := &orderModule{name: "b", order: &order}
	MustInstall(rt, a)
	MustInstall(rt, b)
	rt.Launch(func(c *core.Ctx) {})
	rt.Shutdown()
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("finalize order = %v, want [b a] (LIFO)", order)
	}
}

type orderModule struct {
	name  string
	order *[]string
}

func (m *orderModule) Name() string             { return m.name }
func (m *orderModule) Init(*core.Runtime) error { return nil }
func (m *orderModule) Finalize()                { *m.order = append(*m.order, m.name) }
