// Package shmem implements the subset of the OpenSHMEM 1.3 specification
// that the HiPER AsyncSHMEM module wraps, over an in-process symmetric
// heap whose remote accesses travel the pluggable transport layer in
// package fabric.
//
// OpenSHMEM is a PGAS library: every PE (processing element) allocates the
// same symmetric objects, and any PE may Put/Get/atomically-update the
// instance of an object on any other PE. v1.3 makes no thread-safety
// guarantees, which is precisely why the paper builds a HiPER module around
// it: the module funnels all SHMEM calls through tasks so multi-threaded
// programs stay specification-compliant.
//
// Completion semantics follow the specification: Put returns when the
// source buffer is reusable (remote delivery is asynchronous), Quiet blocks
// until all of the calling PE's outstanding puts are remotely visible,
// BarrierAll implies Quiet, and WaitUntil blocks until a local symmetric
// location satisfies a comparison — typically made true by a remote put.
//
// Every remote access is issued as a one-sided transfer on the World's
// transport, so a SHMEM world built with NewWorldOver on a shared fabric
// contends with MPI or UPC++ traffic from other worlds on the same
// endpoints — congestion windows and node locality apply across modules.
package shmem

import (
	"fmt"
	"sync"

	"repro/internal/fabric"
	"repro/internal/simnet"
)

// Cmp is a comparison operator for WaitUntil, mirroring SHMEM_CMP_*.
type Cmp int

// Comparison operators.
const (
	CmpEQ Cmp = iota
	CmpNE
	CmpGT
	CmpGE
	CmpLT
	CmpLE
)

// Eval applies the comparison.
func (c Cmp) Eval(a, b int64) bool {
	switch c {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	}
	panic(fmt.Sprintf("shmem: unknown comparison %d", int(c)))
}

// World is an in-process SHMEM job: n PEs sharing a symmetric heap.
type World struct {
	// slots is the preallocation width for per-PE structures: the
	// transport's capacity (elastic fabrics keep spare endpoints), not
	// its current size. Symmetric arrays allocate one instance per slot
	// so live resize never reallocates — appending would invalidate the
	// sync.Cond pointers into the mutex array.
	slots int
	tr    fabric.Transport
	coll  *fabric.Coll
	pes   []*PE
}

// NewWorld creates an n-PE job over a simulated interconnect with the
// given remote-access cost model.
func NewWorld(n int, cost simnet.CostModel) *World {
	if n <= 0 {
		panic("shmem: world needs at least one PE")
	}
	return NewWorldOver(fabric.NewSim(n, cost))
}

// NewWorldOver creates a job over an existing transport, one PE per
// endpoint. Several library worlds may share one transport; their traffic
// then shares links, congestion windows, and locality domains.
func NewWorldOver(tr fabric.Transport) *World {
	w := &World{slots: fabric.CapacityOf(tr), tr: tr, coll: fabric.NewColl(tr)}
	w.pes = make([]*PE, w.slots)
	for i := range w.pes {
		w.pes[i] = &PE{w: w, rank: i}
	}
	return w
}

// Size returns the number of PEs (shmem_n_pes), resolved through the
// transport so it tracks live resize on an elastic fabric.
func (w *World) Size() int { return w.tr.Size() }

// Transport exposes the underlying transport (for diagnostics and for
// composing further library worlds over the same endpoints).
func (w *World) Transport() fabric.Transport { return w.tr }

// PE returns rank r's handle (each simulated process holds one).
func (w *World) PE(r int) *PE { return w.pes[r] }

// PE is one processing element's handle on the job.
type PE struct {
	w       *World
	rank    int
	pending sync.WaitGroup // outstanding one-sided updates issued by this PE
}

// Rank returns the calling PE's number (shmem_my_pe).
func (p *PE) Rank() int { return p.rank }

// Size returns the job size (shmem_n_pes).
func (p *PE) Size() int { return p.w.Size() }

// World returns the underlying job.
func (p *PE) World() *World { return p.w }

// put issues one asynchronous one-sided update toward dst: apply runs at
// the remote side when the transfer lands, and the PE's pending count
// covers it until then. A PE's stores to its own symmetric memory apply
// immediately without touching the transport, as on real PGAS hardware.
func (p *PE) put(dst, bytes int, apply func()) {
	if dst == p.rank {
		apply()
		return
	}
	p.pending.Add(1)
	p.w.tr.Put(p.rank, dst, bytes, apply, p.pending.Done)
}

// roundTrip issues one blocking one-sided access toward dst (a get or an
// atomic), returning after apply has run at the remote side and the
// modelled round trip has elapsed. Accesses to the calling PE's own
// memory apply immediately.
func (p *PE) roundTrip(dst, bytes int, apply func()) {
	if dst == p.rank {
		if apply != nil {
			apply()
		}
		return
	}
	done := make(chan struct{})
	p.w.tr.Get(p.rank, dst, bytes, apply, func() { close(done) })
	<-done
}

// Quiet blocks until all outstanding puts and atomic updates issued by
// this PE are complete and remotely visible (shmem_quiet).
func (p *PE) Quiet() { p.pending.Wait() }

// Fence orders this PE's puts; with our per-op delivery it is equivalent
// to Quiet, which the specification permits.
func (p *PE) Fence() { p.Quiet() }

// BarrierAll synchronizes all PEs and implies Quiet (shmem_barrier_all).
func (p *PE) BarrierAll() {
	p.Quiet()
	p.w.coll.Barrier()
}

// BarrierAllAsync arrives at the barrier once this PE's outstanding
// one-sided updates complete, and invokes onDone when all PEs have
// arrived. It never blocks the caller — the AsyncSHMEM module uses it so
// a barrier never stalls the worker that services its condition poller.
func (p *PE) BarrierAllAsync(onDone func()) {
	//hiperlint:ignore goroutine-leak arrival goroutine exits once this PE's pending puts drain; joining it would reintroduce the blocking barrier this API exists to avoid
	go func() {
		p.pending.Wait()
		p.w.coll.BarrierAsync(onDone)
	}()
}

// Int64Array is a symmetric array of int64: every PE owns one instance of
// length n, remotely accessible by all PEs. Allocation is logically
// collective; in-process, allocate once and share the handle.
type Int64Array struct {
	w    *World
	data [][]int64
	mus  []sync.Mutex
	cond []*sync.Cond
}

// AllocInt64 allocates a symmetric int64 array of length n per PE
// (shmem_malloc), zero-initialized. Instances are allocated for every
// slot (transport capacity), so PEs added by a live grow find their
// instance already in place.
func (w *World) AllocInt64(n int) *Int64Array {
	a := &Int64Array{w: w}
	a.data = make([][]int64, w.slots)
	a.mus = make([]sync.Mutex, w.slots)
	a.cond = make([]*sync.Cond, w.slots)
	for r := 0; r < w.slots; r++ {
		a.data[r] = make([]int64, n)
		a.cond[r] = sync.NewCond(&a.mus[r])
	}
	return a
}

// Len returns the per-PE length.
func (a *Int64Array) Len() int { return len(a.data[0]) }

// Local returns PE rank's local instance for direct access. Direct access
// is only safe when properly synchronized (after a barrier, a WaitUntil,
// or within the owning PE before any remote updates), exactly as in SHMEM.
func (a *Int64Array) Local(rank int) []int64 { return a.data[rank] }

// Put copies vals into dst's instance at offset off (shmem_put64). It
// returns once the source values are captured; remote visibility completes
// asynchronously after the modelled delay. Use Quiet or BarrierAll to wait.
func (p *PE) Put(a *Int64Array, dst, off int, vals []int64) {
	cp := make([]int64, len(vals))
	copy(cp, vals)
	p.put(dst, 8*len(cp), func() {
		a.mus[dst].Lock()
		copy(a.data[dst][off:], cp)
		a.cond[dst].Broadcast()
		a.mus[dst].Unlock()
	})
}

// PutValue is Put of a single element (shmem_int64_p).
func (p *PE) PutValue(a *Int64Array, dst, off int, val int64) {
	p.put(dst, 8, func() {
		a.mus[dst].Lock()
		a.data[dst][off] = val
		a.cond[dst].Broadcast()
		a.mus[dst].Unlock()
	})
}

// Get copies n elements from src's instance at offset off into a fresh
// slice (shmem_get64). Get blocks for the full round trip.
func (p *PE) Get(a *Int64Array, src, off, n int) []int64 {
	out := make([]int64, n)
	p.roundTrip(src, 8*n, func() {
		a.mus[src].Lock()
		copy(out, a.data[src][off:off+n])
		a.mus[src].Unlock()
	})
	return out
}

// GetValue is Get of a single element (shmem_int64_g).
func (p *PE) GetValue(a *Int64Array, src, off int) int64 {
	var v int64
	p.roundTrip(src, 8, func() {
		a.mus[src].Lock()
		v = a.data[src][off]
		a.mus[src].Unlock()
	})
	return v
}

// Peek reads a single element with no modelled delay. It is not a SHMEM
// API; the HiPER module's poller uses it to test AsyncWhen conditions
// cheaply (local polling, as the runtime would poll its own memory).
func (a *Int64Array) Peek(rank, off int) int64 {
	a.mus[rank].Lock()
	v := a.data[rank][off]
	a.mus[rank].Unlock()
	return v
}

// FetchAdd atomically adds delta to dst's element and returns the prior
// value (shmem_int64_atomic_fetch_add). Blocks for the round trip.
func (p *PE) FetchAdd(a *Int64Array, dst, off int, delta int64) int64 {
	var old int64
	p.roundTrip(dst, 8, func() {
		a.mus[dst].Lock()
		old = a.data[dst][off]
		a.data[dst][off] = old + delta
		a.cond[dst].Broadcast()
		a.mus[dst].Unlock()
	})
	return old
}

// Add atomically adds delta without fetching (shmem_int64_atomic_add);
// returns immediately, completing asynchronously.
func (p *PE) Add(a *Int64Array, dst, off int, delta int64) {
	p.put(dst, 8, func() {
		a.mus[dst].Lock()
		a.data[dst][off] += delta
		a.cond[dst].Broadcast()
		a.mus[dst].Unlock()
	})
}

// CompareSwap atomically replaces dst's element with val if it equals
// cond, returning the prior value (shmem_int64_atomic_compare_swap).
func (p *PE) CompareSwap(a *Int64Array, dst, off int, cond, val int64) int64 {
	var old int64
	p.roundTrip(dst, 8, func() {
		a.mus[dst].Lock()
		old = a.data[dst][off]
		if old == cond {
			a.data[dst][off] = val
		}
		a.cond[dst].Broadcast()
		a.mus[dst].Unlock()
	})
	return old
}

// Swap atomically replaces dst's element, returning the prior value
// (shmem_int64_atomic_swap).
func (p *PE) Swap(a *Int64Array, dst, off int, val int64) int64 {
	var old int64
	p.roundTrip(dst, 8, func() {
		a.mus[dst].Lock()
		old = a.data[dst][off]
		a.data[dst][off] = val
		a.cond[dst].Broadcast()
		a.mus[dst].Unlock()
	})
	return old
}

// WaitUntil blocks the calling PE until its own element at off satisfies
// cmp against val (shmem_int64_wait_until). The blocking nature of this
// API is what motivated the paper's shmem_async_when extension.
func (p *PE) WaitUntil(a *Int64Array, off int, cmp Cmp, val int64) {
	me := p.rank
	a.mus[me].Lock()
	for !cmp.Eval(a.data[me][off], val) {
		a.cond[me].Wait()
	}
	a.mus[me].Unlock()
}

// Test reports whether the calling PE's element at off satisfies cmp
// against val, without blocking (shmem_int64_test).
func (p *PE) Test(a *Int64Array, off int, cmp Cmp, val int64) bool {
	me := p.rank
	a.mus[me].Lock()
	ok := cmp.Eval(a.data[me][off], val)
	a.mus[me].Unlock()
	return ok
}
