package shmem

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simnet"
	"repro/internal/trace"
)

// runJob executes fn once per PE, concurrently, and waits for all.
func runJob(t testing.TB, n int, cost simnet.CostModel, fn func(p *PE)) *World {
	t.Helper()
	w := NewWorld(n, cost)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fn(w.PE(r))
		}(r)
	}
	wg.Wait()
	return w
}

func TestPutQuietVisibility(t *testing.T) {
	w := NewWorld(2, simnet.CostModel{Alpha: 2 * time.Millisecond})
	a := w.AllocInt64(4)
	p0 := w.PE(0)
	p0.Put(a, 1, 0, []int64{1, 2, 3, 4})
	p0.Quiet()
	got := a.Local(1)
	for i, want := range []int64{1, 2, 3, 4} {
		if got[i] != want {
			t.Fatalf("after Quiet, remote[%d] = %d, want %d", i, got[i], want)
		}
	}
}

func TestPutSourceReusable(t *testing.T) {
	w := NewWorld(2, simnet.CostModel{Alpha: 5 * time.Millisecond})
	a := w.AllocInt64(1)
	src := []int64{42}
	w.PE(0).Put(a, 1, 0, src)
	src[0] = 0 // mutate immediately; the put captured the value
	w.PE(0).Quiet()
	if a.Local(1)[0] != 42 {
		t.Fatal("Put did not capture source values eagerly")
	}
}

func TestGetRoundTrip(t *testing.T) {
	w := NewWorld(3, simnet.CostModel{})
	a := w.AllocInt64(8)
	copy(a.Local(2), []int64{9, 8, 7, 6, 5, 4, 3, 2})
	got := w.PE(0).Get(a, 2, 2, 3)
	if len(got) != 3 || got[0] != 7 || got[2] != 5 {
		t.Fatalf("Get = %v", got)
	}
	if v := w.PE(1).GetValue(a, 2, 0); v != 9 {
		t.Fatalf("GetValue = %d", v)
	}
}

func TestBarrierAllImpliesQuiet(t *testing.T) {
	const n = 4
	w := runJob(t, n, simnet.CostModel{Alpha: time.Millisecond}, func(p *PE) {})
	a := w.AllocInt64(n)
	runJob(t, n, simnet.CostModel{Alpha: time.Millisecond}, func(p *PE) {
		// Every PE writes its rank into every other PE's slot.
		for dst := 0; dst < n; dst++ {
			p.PutValue(a, dst, p.Rank(), int64(p.Rank()+1))
		}
		p.BarrierAll()
		loc := a.Local(p.Rank())
		for r := 0; r < n; r++ {
			if loc[r] != int64(r+1) {
				t.Errorf("PE %d slot %d = %d after barrier", p.Rank(), r, loc[r])
			}
		}
	})
}

func TestFetchAddSerializes(t *testing.T) {
	const n = 8
	w := NewWorld(n, simnet.CostModel{})
	a := w.AllocInt64(1)
	seen := make([]bool, n*100)
	var mu sync.Mutex
	runJobW(t, w, func(p *PE) {
		for i := 0; i < 100; i++ {
			old := p.FetchAdd(a, 0, 0, 1)
			mu.Lock()
			if seen[old] {
				t.Errorf("FetchAdd returned duplicate ticket %d", old)
			}
			seen[old] = true
			mu.Unlock()
		}
	})
	if a.Local(0)[0] != n*100 {
		t.Fatalf("counter = %d, want %d", a.Local(0)[0], n*100)
	}
}

// runJobW runs fn per PE over an existing world.
func runJobW(t testing.TB, w *World, fn func(p *PE)) {
	t.Helper()
	var wg sync.WaitGroup
	for r := 0; r < w.Size(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fn(w.PE(r))
		}(r)
	}
	wg.Wait()
}

func TestCompareSwapAndSwap(t *testing.T) {
	w := NewWorld(2, simnet.CostModel{})
	a := w.AllocInt64(1)
	p := w.PE(0)
	if old := p.CompareSwap(a, 1, 0, 0, 5); old != 0 {
		t.Fatalf("CAS old = %d", old)
	}
	if old := p.CompareSwap(a, 1, 0, 0, 9); old != 5 {
		t.Fatalf("failed CAS should return current value, got %d", old)
	}
	if a.Local(1)[0] != 5 {
		t.Fatal("failed CAS must not write")
	}
	if old := p.Swap(a, 1, 0, 7); old != 5 || a.Local(1)[0] != 7 {
		t.Fatal("Swap wrong")
	}
}

func TestWaitUntilReleasedByRemotePut(t *testing.T) {
	w := NewWorld(2, simnet.CostModel{Alpha: 2 * time.Millisecond})
	a := w.AllocInt64(1)
	done := make(chan struct{})
	go func() {
		w.PE(1).WaitUntil(a, 0, CmpEQ, 99)
		close(done)
	}()
	time.Sleep(time.Millisecond)
	select {
	case <-done:
		t.Fatal("WaitUntil returned before the put")
	default:
	}
	w.PE(0).PutValue(a, 1, 0, 99)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitUntil never released")
	}
}

func TestWaitUntilComparisons(t *testing.T) {
	cases := []struct {
		cmp  Cmp
		a, b int64
		want bool
	}{
		{CmpEQ, 3, 3, true}, {CmpEQ, 3, 4, false},
		{CmpNE, 3, 4, true}, {CmpNE, 3, 3, false},
		{CmpGT, 4, 3, true}, {CmpGT, 3, 3, false},
		{CmpGE, 3, 3, true}, {CmpGE, 2, 3, false},
		{CmpLT, 2, 3, true}, {CmpLT, 3, 3, false},
		{CmpLE, 3, 3, true}, {CmpLE, 4, 3, false},
	}
	for _, tc := range cases {
		if got := tc.cmp.Eval(tc.a, tc.b); got != tc.want {
			t.Errorf("cmp %d: Eval(%d,%d) = %v", int(tc.cmp), tc.a, tc.b, got)
		}
	}
}

func TestTestNonblocking(t *testing.T) {
	w := NewWorld(2, simnet.CostModel{})
	a := w.AllocInt64(1)
	p1 := w.PE(1)
	if p1.Test(a, 0, CmpNE, 0) {
		t.Fatal("Test true before any write")
	}
	w.PE(0).PutValue(a, 1, 0, 5)
	w.PE(0).Quiet()
	if !p1.Test(a, 0, CmpNE, 0) {
		t.Fatal("Test false after write")
	}
}

func TestAddNonFetching(t *testing.T) {
	w := NewWorld(3, simnet.CostModel{Alpha: time.Millisecond})
	a := w.AllocInt64(1)
	p := w.PE(0)
	for i := 0; i < 10; i++ {
		p.Add(a, 2, 0, 3)
	}
	p.Quiet()
	if got := a.Local(2)[0]; got != 30 {
		t.Fatalf("after Add x10, value = %d", got)
	}
}

func TestBroadcast(t *testing.T) {
	const n = 5
	w := NewWorld(n, simnet.CostModel{})
	src := w.AllocInt64(3)
	dst := w.AllocInt64(3)
	copy(src.Local(2), []int64{10, 20, 30})
	runJobW(t, w, func(p *PE) {
		p.Broadcast(dst, src, 3, 2)
	})
	for r := 0; r < n; r++ {
		if r == 2 {
			continue // root's dst untouched per spec
		}
		loc := dst.Local(r)
		if loc[0] != 10 || loc[1] != 20 || loc[2] != 30 {
			t.Fatalf("PE %d dst = %v", r, loc)
		}
	}
}

func TestFCollect(t *testing.T) {
	const n = 4
	w := NewWorld(n, simnet.CostModel{})
	src := w.AllocInt64(2)
	dst := w.AllocInt64(2 * n)
	runJobW(t, w, func(p *PE) {
		loc := src.Local(p.Rank())
		loc[0] = int64(p.Rank() * 10)
		loc[1] = int64(p.Rank()*10 + 1)
		p.FCollect(dst, src, 2)
	})
	for r := 0; r < n; r++ {
		loc := dst.Local(r)
		for s := 0; s < n; s++ {
			if loc[2*s] != int64(s*10) || loc[2*s+1] != int64(s*10+1) {
				t.Fatalf("PE %d collected %v", r, loc)
			}
		}
	}
}

func TestToAllReductions(t *testing.T) {
	const n = 6
	w := NewWorld(n, simnet.CostModel{})
	src := w.AllocInt64(2)
	dst := w.AllocInt64(2)
	runJobW(t, w, func(p *PE) {
		loc := src.Local(p.Rank())
		loc[0] = int64(p.Rank() + 1)
		loc[1] = int64(-p.Rank())
		p.ToAll(dst, src, 2, ReduceSum)
	})
	for r := 0; r < n; r++ {
		if dst.Local(r)[0] != n*(n+1)/2 {
			t.Fatalf("sum on PE %d = %d", r, dst.Local(r)[0])
		}
	}
	runJobW(t, w, func(p *PE) { p.ToAll(dst, src, 2, ReduceMax) })
	if dst.Local(0)[0] != n || dst.Local(0)[1] != 0 {
		t.Fatalf("max = %v", dst.Local(0)[:2])
	}
	runJobW(t, w, func(p *PE) { p.ToAll(dst, src, 2, ReduceMin) })
	if dst.Local(0)[0] != 1 || dst.Local(0)[1] != -(n-1) {
		t.Fatalf("min = %v", dst.Local(0)[:2])
	}
}

func TestLockMutualExclusion(t *testing.T) {
	const n = 6
	w := NewWorld(n, simnet.CostModel{})
	l := w.AllocLock()
	counter := 0
	runJobW(t, w, func(p *PE) {
		for i := 0; i < 200; i++ {
			p.SetLock(l)
			counter++
			p.ClearLock(l)
		}
	})
	if counter != n*200 {
		t.Fatalf("counter = %d, want %d (lock not mutually exclusive)", counter, n*200)
	}
}

func TestByteArray(t *testing.T) {
	w := NewWorld(2, simnet.CostModel{})
	a := w.AllocBytes(16)
	if a.Len() != 16 {
		t.Fatal("len")
	}
	w.PE(0).PutBytes(a, 1, 4, []byte("abcd"))
	w.PE(0).Quiet()
	if got := w.PE(1).GetBytes(a, 1, 4, 4); string(got) != "abcd" {
		t.Fatalf("got %q", got)
	}
}

func TestFloat64Array(t *testing.T) {
	w := NewWorld(2, simnet.CostModel{})
	a := w.AllocFloat64(8)
	if a.Len() != 8 {
		t.Fatal("len")
	}
	w.PE(1).PutFloat64(a, 0, 2, []float64{1.5, 2.5})
	w.PE(1).Quiet()
	got := w.PE(0).GetFloat64(a, 0, 2, 2)
	if got[0] != 1.5 || got[1] != 2.5 {
		t.Fatalf("got %v", got)
	}
}

// Property: concurrent FetchAdds from all PEs hand out a permutation of
// 0..total-1 and leave the counter at total, for any PE count and op count.
func TestQuickFetchAddTickets(t *testing.T) {
	f := func(nn, ops uint8) bool {
		n := int(nn%5) + 1
		k := int(ops%30) + 1
		w := NewWorld(n, simnet.CostModel{})
		a := w.AllocInt64(1)
		var mu sync.Mutex
		seen := make(map[int64]bool)
		var wg sync.WaitGroup
		ok := true
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				p := w.PE(r)
				for i := 0; i < k; i++ {
					old := p.FetchAdd(a, 0, 0, 1)
					mu.Lock()
					if seen[old] {
						ok = false
					}
					seen[old] = true
					mu.Unlock()
				}
			}(r)
		}
		wg.Wait()
		return ok && a.Local(0)[0] == int64(n*k) && len(seen) == n*k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFetchAdd(b *testing.B) {
	w := NewWorld(2, simnet.CostModel{})
	a := w.AllocInt64(1)
	p := w.PE(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.FetchAdd(a, 1, 0, 1)
	}
}

func BenchmarkPutQuiet(b *testing.B) {
	w := NewWorld(2, simnet.CostModel{})
	a := w.AllocInt64(64)
	p := w.PE(0)
	vals := make([]int64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Put(a, 1, 0, vals)
		p.Quiet()
	}
}

func TestBarrierAllAsync(t *testing.T) {
	const n = 3
	w := NewWorld(n, simnet.CostModel{Alpha: time.Millisecond})
	a := w.AllocInt64(1)
	fired := make(chan int, n)
	runJobW(t, w, func(p *PE) {
		p.PutValue(a, (p.Rank()+1)%n, 0, 1)
		done := make(chan struct{})
		p.BarrierAllAsync(func() {
			// All PEs' puts must be visible when the barrier completes.
			if a.Peek(p.Rank(), 0) != 1 {
				t.Error("BarrierAllAsync fired before quiet")
			}
			fired <- p.Rank()
			close(done)
		})
		<-done
	})
	if len(fired) != n {
		t.Fatalf("barrier callbacks fired %d times", len(fired))
	}
}

func TestPeekNoDelay(t *testing.T) {
	w := NewWorld(2, simnet.CostModel{Alpha: 50 * time.Millisecond})
	a := w.AllocInt64(1)
	a.Local(1)[0] = 9
	start := time.Now()
	if got := a.Peek(1, 0); got != 9 {
		t.Fatalf("Peek = %d", got)
	}
	if time.Since(start) > 10*time.Millisecond {
		t.Fatal("Peek paid the remote-latency model")
	}
}

func TestLocalOpsSkipCostModel(t *testing.T) {
	w := NewWorld(2, simnet.CostModel{Alpha: 100 * time.Millisecond})
	a := w.AllocInt64(4)
	p := w.PE(0)
	start := time.Now()
	p.Put(a, 0, 0, []int64{1, 2, 3, 4})
	p.PutValue(a, 0, 0, 5)
	_ = p.Get(a, 0, 0, 4)
	_ = p.FetchAdd(a, 0, 1, 1)
	p.Add(a, 0, 2, 1)
	p.Quiet()
	if time.Since(start) > 20*time.Millisecond {
		t.Fatal("same-PE operations paid the network cost model")
	}
}

func TestPutGetTraced(t *testing.T) {
	w := NewWorld(2, simnet.CostModel{})
	tr := trace.New(1, trace.Config{RingSize: 64})
	w.Transport().SetTracer(tr)
	a := w.AllocInt64(2)
	p := w.PE(0)
	p.PutValue(a, 1, 0, 7)
	p.Quiet()
	if got := p.GetValue(a, 1, 0); got != 7 {
		t.Fatalf("GetValue = %d", got)
	}
	d := tr.Derived()
	if d.MsgsSent != 2 || d.MsgsRecvd != 2 {
		t.Fatalf("msg events: %+v", d)
	}
	if d.MsgBytes != 16 || d.MsgBytesRecvd != 16 {
		t.Fatalf("msg bytes: %+v", d)
	}
}
