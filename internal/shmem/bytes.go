package shmem

import "sync"

// ByteArray is a symmetric byte array — the workhorse for bulk payloads
// (sorted key blocks in ISx, serialized tree nodes in UTS).
type ByteArray struct {
	w    *World
	data [][]byte
	mus  []sync.Mutex
	cond []*sync.Cond
}

// AllocBytes allocates a symmetric byte array of length n per PE.
func (w *World) AllocBytes(n int) *ByteArray {
	a := &ByteArray{w: w}
	a.data = make([][]byte, w.slots)
	a.mus = make([]sync.Mutex, w.slots)
	a.cond = make([]*sync.Cond, w.slots)
	for r := 0; r < w.slots; r++ {
		a.data[r] = make([]byte, n)
		a.cond[r] = sync.NewCond(&a.mus[r])
	}
	return a
}

// Len returns the per-PE length.
func (a *ByteArray) Len() int { return len(a.data[0]) }

// Local returns PE rank's local instance; the SHMEM synchronization rules
// from Int64Array.Local apply.
func (a *ByteArray) Local(rank int) []byte { return a.data[rank] }

// PutBytes copies vals into dst's instance at offset off; source reusable
// immediately, remote visibility after the modelled delay.
func (p *PE) PutBytes(a *ByteArray, dst, off int, vals []byte) {
	cp := make([]byte, len(vals))
	copy(cp, vals)
	p.put(dst, len(cp), func() {
		a.mus[dst].Lock()
		copy(a.data[dst][off:], cp)
		a.cond[dst].Broadcast()
		a.mus[dst].Unlock()
	})
}

// GetBytes copies n bytes from src's instance at offset off. Blocks for
// the round trip.
func (p *PE) GetBytes(a *ByteArray, src, off, n int) []byte {
	out := make([]byte, n)
	p.roundTrip(src, n, func() {
		a.mus[src].Lock()
		copy(out, a.data[src][off:off+n])
		a.mus[src].Unlock()
	})
	return out
}

// Float64Array is a symmetric array of float64 (ghost-zone payloads in
// stencil codes).
type Float64Array struct {
	w    *World
	data [][]float64
	mus  []sync.Mutex
	cond []*sync.Cond
}

// AllocFloat64 allocates a symmetric float64 array of length n per PE.
func (w *World) AllocFloat64(n int) *Float64Array {
	a := &Float64Array{w: w}
	a.data = make([][]float64, w.slots)
	a.mus = make([]sync.Mutex, w.slots)
	a.cond = make([]*sync.Cond, w.slots)
	for r := 0; r < w.slots; r++ {
		a.data[r] = make([]float64, n)
		a.cond[r] = sync.NewCond(&a.mus[r])
	}
	return a
}

// Len returns the per-PE length.
func (a *Float64Array) Len() int { return len(a.data[0]) }

// Local returns PE rank's local instance.
func (a *Float64Array) Local(rank int) []float64 { return a.data[rank] }

// PutFloat64 copies vals into dst's instance at offset off.
func (p *PE) PutFloat64(a *Float64Array, dst, off int, vals []float64) {
	cp := make([]float64, len(vals))
	copy(cp, vals)
	p.put(dst, 8*len(cp), func() {
		a.mus[dst].Lock()
		copy(a.data[dst][off:], cp)
		a.cond[dst].Broadcast()
		a.mus[dst].Unlock()
	})
}

// GetFloat64 copies n elements from src's instance at offset off.
func (p *PE) GetFloat64(a *Float64Array, src, off, n int) []float64 {
	out := make([]float64, n)
	p.roundTrip(src, 8*n, func() {
		a.mus[src].Lock()
		copy(out, a.data[src][off:off+n])
		a.mus[src].Unlock()
	})
	return out
}
