package shmem

import "sync"

// Collectives. All PEs must call each collective; the implementation
// synchronizes internally (SHMEM collectives have barrier-like semantics
// when using the default sync arrays). A log(n)-scaled delay models the
// tree cost of real implementations.

// collDelay models the critical path of a tree collective.
func (p *PE) collDelay(bytes int) {
	n := p.w.n
	hops := 0
	for v := 1; v < n; v <<= 1 {
		hops++
	}
	if hops == 0 {
		hops = 1
	}
	for i := 0; i < hops; i++ {
		p.delaySleep(bytes)
	}
}

// Broadcast copies nelems from root's src instance into every other PE's
// dst instance (shmem_broadcast64). Root's dst is untouched, per the spec.
func (p *PE) Broadcast(dst, src *Int64Array, nelems, root int) {
	p.Quiet()
	p.w.barrier.Await()
	if p.rank == root {
		p.collDelay(8 * nelems)
		src.mus[root].Lock()
		vals := make([]int64, nelems)
		copy(vals, src.data[root][:nelems])
		src.mus[root].Unlock()
		for r := 0; r < p.w.n; r++ {
			if r == root {
				continue
			}
			dst.mus[r].Lock()
			copy(dst.data[r][:nelems], vals)
			dst.cond[r].Broadcast()
			dst.mus[r].Unlock()
		}
	}
	p.w.barrier.Await()
}

// FCollect concatenates nelems from every PE's src into every PE's dst,
// ordered by PE (shmem_fcollect64). dst must have length >= n*nelems.
func (p *PE) FCollect(dst, src *Int64Array, nelems int) {
	p.Quiet()
	p.w.barrier.Await()
	if p.rank == 0 {
		n := p.w.n
		p.collDelay(8 * nelems * n)
		gathered := make([]int64, n*nelems)
		for r := 0; r < n; r++ {
			src.mus[r].Lock()
			copy(gathered[r*nelems:], src.data[r][:nelems])
			src.mus[r].Unlock()
		}
		for r := 0; r < n; r++ {
			dst.mus[r].Lock()
			copy(dst.data[r][:n*nelems], gathered)
			dst.cond[r].Broadcast()
			dst.mus[r].Unlock()
		}
	}
	p.w.barrier.Await()
}

// ReduceKind selects the reduction operator.
type ReduceKind int

// Reduction operators (shmem_int64_{sum,max,min}_to_all).
const (
	ReduceSum ReduceKind = iota
	ReduceMax
	ReduceMin
)

func (k ReduceKind) apply(a, b int64) int64 {
	switch k {
	case ReduceSum:
		return a + b
	case ReduceMax:
		if b > a {
			return b
		}
		return a
	case ReduceMin:
		if b < a {
			return b
		}
		return a
	}
	panic("shmem: unknown reduction")
}

// ToAll reduces nelems elements of src element-wise across all PEs with
// the given operator and stores the result in every PE's dst.
func (p *PE) ToAll(dst, src *Int64Array, nelems int, kind ReduceKind) {
	p.Quiet()
	p.w.barrier.Await()
	if p.rank == 0 {
		n := p.w.n
		p.collDelay(8 * nelems)
		acc := make([]int64, nelems)
		src.mus[0].Lock()
		copy(acc, src.data[0][:nelems])
		src.mus[0].Unlock()
		for r := 1; r < n; r++ {
			src.mus[r].Lock()
			for i := 0; i < nelems; i++ {
				acc[i] = kind.apply(acc[i], src.data[r][i])
			}
			src.mus[r].Unlock()
		}
		for r := 0; r < n; r++ {
			dst.mus[r].Lock()
			copy(dst.data[r][:nelems], acc)
			dst.cond[r].Broadcast()
			dst.mus[r].Unlock()
		}
	}
	p.w.barrier.Await()
}

// Lock provides shmem_set_lock / shmem_clear_lock semantics over a
// symmetric lock variable, identified by an opaque handle allocated with
// AllocLock. The in-process implementation serializes through one mutex,
// which preserves the contention behaviour distributed locks exhibit.
type Lock struct {
	mu sync.Mutex
}

// AllocLock allocates a symmetric lock.
func (w *World) AllocLock() *Lock { return &Lock{} }

// SetLock acquires the lock, blocking, after the modelled remote latency.
func (p *PE) SetLock(l *Lock) {
	p.delaySleep(8)
	l.mu.Lock()
}

// ClearLock releases the lock.
func (p *PE) ClearLock(l *Lock) {
	l.mu.Unlock()
}
