package shmem

import (
	"encoding/binary"
	"sync"

	"repro/internal/fabric"
)

// Collectives. All PEs must call each collective; entry and exit barriers
// give them the usual SHMEM sync-array semantics. The data movement runs
// through the shared collectives layer (fabric.Coll) — the same
// binomial-tree and ring algorithms MPI's collectives use, as real
// messages on the World's transport — so collective cost emerges from the
// fabric's latency, bandwidth, and congestion model rather than a
// separate formula.

// encodeInt64s writes vals little-endian into dst (len(dst) >= 8*len(vals)).
func encodeInt64s(dst []byte, vals []int64) {
	for i, v := range vals {
		binary.LittleEndian.PutUint64(dst[8*i:], uint64(v))
	}
}

// decodeInt64s reads len(vals) little-endian int64s from src into vals.
func decodeInt64s(vals []int64, src []byte) {
	for i := range vals {
		vals[i] = int64(binary.LittleEndian.Uint64(src[8*i:]))
	}
}

// Broadcast copies nelems from root's src instance into every other PE's
// dst instance (shmem_broadcast64). Root's dst is untouched, per the spec.
func (p *PE) Broadcast(dst, src *Int64Array, nelems, root int) {
	p.Quiet()
	p.w.coll.Barrier()
	buf := make([]byte, 8*nelems)
	if p.rank == root {
		src.mus[root].Lock()
		encodeInt64s(buf, src.data[root][:nelems])
		src.mus[root].Unlock()
	}
	p.w.coll.Bcast(p.rank, buf, root)
	if p.rank != root {
		me := p.rank
		dst.mus[me].Lock()
		decodeInt64s(dst.data[me][:nelems], buf)
		dst.cond[me].Broadcast()
		dst.mus[me].Unlock()
	}
	p.w.coll.Barrier()
}

// FCollect concatenates nelems from every PE's src into every PE's dst,
// ordered by PE (shmem_fcollect64). dst must have length >= n*nelems.
func (p *PE) FCollect(dst, src *Int64Array, nelems int) {
	p.Quiet()
	p.w.coll.Barrier()
	me := p.rank
	contrib := make([]byte, 8*nelems)
	src.mus[me].Lock()
	encodeInt64s(contrib, src.data[me][:nelems])
	src.mus[me].Unlock()
	chunks := p.w.coll.Allgather(me, contrib)
	dst.mus[me].Lock()
	for r, chunk := range chunks {
		decodeInt64s(dst.data[me][r*nelems:(r+1)*nelems], chunk)
	}
	dst.cond[me].Broadcast()
	dst.mus[me].Unlock()
	p.w.coll.Barrier()
}

// ReduceKind selects the reduction operator.
type ReduceKind int

// Reduction operators (shmem_int64_{sum,max,min}_to_all).
const (
	ReduceSum ReduceKind = iota
	ReduceMax
	ReduceMin
)

func (k ReduceKind) apply(a, b int64) int64 {
	switch k {
	case ReduceSum:
		return a + b
	case ReduceMax:
		if b > a {
			return b
		}
		return a
	case ReduceMin:
		if b < a {
			return b
		}
		return a
	}
	panic("shmem: unknown reduction")
}

// byteOp lifts the int64 operator to the byte-buffer form the shared
// collectives layer reduces with.
func (k ReduceKind) byteOp() fabric.ReduceOp {
	return func(acc, in []byte) {
		for i := 0; i+8 <= len(in); i += 8 {
			a := int64(binary.LittleEndian.Uint64(acc[i:]))
			b := int64(binary.LittleEndian.Uint64(in[i:]))
			binary.LittleEndian.PutUint64(acc[i:], uint64(k.apply(a, b)))
		}
	}
}

// ToAll reduces nelems elements of src element-wise across all PEs with
// the given operator and stores the result in every PE's dst.
func (p *PE) ToAll(dst, src *Int64Array, nelems int, kind ReduceKind) {
	p.Quiet()
	p.w.coll.Barrier()
	me := p.rank
	contrib := make([]byte, 8*nelems)
	src.mus[me].Lock()
	encodeInt64s(contrib, src.data[me][:nelems])
	src.mus[me].Unlock()
	recv := make([]byte, 8*nelems)
	p.w.coll.Allreduce(me, recv, contrib, kind.byteOp())
	dst.mus[me].Lock()
	decodeInt64s(dst.data[me][:nelems], recv)
	dst.cond[me].Broadcast()
	dst.mus[me].Unlock()
	p.w.coll.Barrier()
}

// Lock provides shmem_set_lock / shmem_clear_lock semantics over a
// symmetric lock variable, identified by an opaque handle allocated with
// AllocLock. The in-process implementation serializes through one mutex,
// which preserves the contention behaviour distributed locks exhibit.
// The lock variable lives in PE 0's symmetric memory (the spec hosts
// locks at a fixed PE), so acquiring it costs one round trip to PE 0.
type Lock struct {
	mu sync.Mutex
}

// AllocLock allocates a symmetric lock.
func (w *World) AllocLock() *Lock { return &Lock{} }

// SetLock acquires the lock, blocking (shmem_set_lock).
func (p *PE) SetLock(l *Lock) {
	p.roundTrip(0, 8, nil)
	l.mu.Lock()
}

// ClearLock releases the lock.
func (p *PE) ClearLock(l *Lock) {
	l.mu.Unlock()
}
