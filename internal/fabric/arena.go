package fabric

import "sync/atomic"

// arenaChunkSize is the allocation granule of byteArena. Chunks are
// handed out by atomic bump, so a chunk is retained until every payload
// carved from it is dropped; 16 KiB keeps that pinning bounded while
// amortizing one garbage-collected allocation over hundreds of small
// messages.
const arenaChunkSize = 16 << 10

// arenaBlock is one bump-allocated chunk.
type arenaBlock struct {
	buf []byte
	off atomic.Int64
}

// byteArena batches the payload copies Send makes (the transport owns a
// snapshot of the caller's buffer; the receiver owns the snapshot
// forever) into chunk-granular allocations: the hot path is one atomic
// add instead of a malloc, and the chunk is never redundantly zeroed
// before the payload lands in it. Returned slices are capacity-clamped
// so an appending receiver cannot scribble over a neighbouring payload.
type byteArena struct {
	cur atomic.Pointer[arenaBlock]
}

// alloc returns an uninitialized n-byte slice. Oversized requests fall
// through to the regular allocator; losing racers on chunk turnover
// abandon the stale chunk's tail, which is fine — the next bump serves
// from the fresh one.
func (a *byteArena) alloc(n int) []byte {
	if n == 0 {
		return nil
	}
	if n > arenaChunkSize {
		return make([]byte, n)
	}
	for {
		b := a.cur.Load()
		if b != nil {
			if off := b.off.Add(int64(n)); off <= int64(len(b.buf)) {
				return b.buf[off-int64(n) : off : off]
			}
		}
		nb := &arenaBlock{buf: make([]byte, arenaChunkSize)}
		a.cur.CompareAndSwap(b, nb)
	}
}
