package fabric

import (
	"sync"
	"sync/atomic"
)

// frameBuf is a reference-counted, size-classed pooled byte buffer for
// Reliable's wire frames. Frames need refcounts because two goroutines
// can hold the same buffer at once: the retransmit timer resends the
// head-of-window frame outside the sender lock while an arriving
// cumulative ack pops — and would otherwise recycle — that same frame.
// Every reader retains before touching b and releases after; the buffer
// returns to its pool only when the last reference drops.
//
// Substrate Send calls copy the frame before returning (Sim, Inline, and
// Chaos all do), so references never outlive the Send that uses them.
type frameBuf struct {
	b     []byte
	refs  atomic.Int32
	class int8 // index into framePools; -1 = oversized, not recycled
}

// frameClasses are the pooled capacity classes. Requests above the
// largest class get one-shot allocations — recycling rare huge buffers
// would pin their memory for the life of the pool.
var frameClasses = [...]int{64, 256, 1024, 4096, 16384, 65536}

var framePools [len(frameClasses)]sync.Pool

// getFrameBuf returns a buffer of length n with one reference held.
func getFrameBuf(n int) *frameBuf {
	for i, c := range frameClasses {
		if n <= c {
			fb, _ := framePools[i].Get().(*frameBuf)
			if fb == nil {
				fb = &frameBuf{b: make([]byte, c), class: int8(i)}
			}
			fb.b = fb.b[:n]
			fb.refs.Store(1)
			return fb
		}
	}
	fb := &frameBuf{b: make([]byte, n), class: -1}
	fb.refs.Store(1)
	return fb
}

func (fb *frameBuf) retain() { fb.refs.Add(1) }

// release drops one reference, recycling the buffer when none remain.
func (fb *frameBuf) release() {
	if fb.refs.Add(-1) != 0 {
		return
	}
	if fb.class >= 0 {
		fb.b = fb.b[:cap(fb.b)]
		framePools[fb.class].Put(fb)
	}
}
