package fabric

import (
	"fmt"

	"repro/internal/trace"
)

// Inline is the zero-cost transport: every transfer delivers
// synchronously on the caller's goroutine before the issuing call
// returns. It spawns no goroutines and models no time, which makes it
// fully deterministic — the backend unit tests plug in when they want
// communication semantics without timing. Matching/ordering semantics
// are identical to Sim's.
type Inline struct {
	meter
	tagSpace
	n        int
	boxes    []mailbox
	payloads byteArena // batches Send's payload snapshots
}

var _ Transport = (*Inline)(nil)

// NewInline creates a zero-cost transport with n endpoints.
func NewInline(n int) *Inline {
	if n <= 0 {
		panic(fmt.Sprintf("fabric: transport needs at least 1 rank, got %d", n))
	}
	return &Inline{n: n, boxes: make([]mailbox, n)}
}

// Size implements Transport.
func (t *Inline) Size() int { return t.n }

// Cost implements Transport: Inline is always free.
func (t *Inline) Cost() CostModel { return CostModel{} }

func (t *Inline) checkRank(r int) {
	if r < 0 || r >= t.n {
		panic(fmt.Sprintf("fabric: rank %d out of range [0,%d)", r, t.n))
	}
}

// finish performs one synchronous transfer: statistics, send event,
// arrival effect, recv event, completion — all on the caller.
func (t *Inline) finish(src, dst, bytes int, deliver, onDone func()) {
	t.count(src, bytes)
	t.traceMsg(trace.EvMsgSend, src, dst, bytes)
	if deliver != nil {
		deliver()
	}
	t.traceMsg(trace.EvMsgRecv, src, dst, bytes)
	if onDone != nil {
		onDone()
	}
}

// Send implements Transport: synchronous eager delivery.
func (t *Inline) Send(src, dst, tag int, data []byte) {
	if uint(src) >= uint(t.n) || uint(dst) >= uint(t.n) {
		t.checkRank(src)
		t.checkRank(dst)
	}
	n := len(data)
	buf := t.payloads.alloc(n)
	copy(buf, data)
	t.count(src, n)
	// One tracer load covers both events on the hot path.
	m := Message{Src: src, Dst: dst, Tag: tag, Data: buf}
	if tr := t.tracer.Load(); tr != nil && tr.Enabled() {
		key := uint64(uint32(src))<<32 | uint64(uint32(dst))
		tr.RecordExternal(trace.EvMsgSend, trace.NoPlace, key, uint64(n))
		t.boxes[dst].deliver(m)
		tr.RecordExternal(trace.EvMsgRecv, trace.NoPlace, key, uint64(n))
		return
	}
	t.boxes[dst].deliver(m)
}

// Put implements Transport: apply and onDone run before Put returns.
func (t *Inline) Put(src, dst, bytes int, apply, onDone func()) {
	t.checkRank(src)
	t.checkRank(dst)
	t.finish(src, dst, bytes, apply, onDone)
}

// Get implements Transport: apply and onDone run before Get returns.
func (t *Inline) Get(src, dst, bytes int, apply, onDone func()) {
	t.checkRank(src)
	t.checkRank(dst)
	t.finish(src, dst, bytes, apply, onDone)
}

// Recv implements Transport. With inline delivery a matching message is
// either already queued or arrives from another goroutine's Send.
func (t *Inline) Recv(dst, src, tag int) Message {
	t.checkRank(dst)
	return t.boxes[dst].recvBlocking(src, tag)
}

// RecvAsync implements Transport.
func (t *Inline) RecvAsync(dst, src, tag int, fn func(Message)) {
	t.checkRank(dst)
	t.boxes[dst].post(&recvReq{src: src, tag: tag, deliver: fn})
}

// TryRecv implements Transport.
func (t *Inline) TryRecv(dst, src, tag int) (Message, bool) {
	t.checkRank(dst)
	return t.boxes[dst].take(src, tag)
}

// Probe implements Transport.
func (t *Inline) Probe(dst, src, tag int) (Message, bool) {
	t.checkRank(dst)
	return t.boxes[dst].probe(src, tag)
}
