package fabric

import (
	"fmt"
	"testing"
	"time"
)

// scriptedTraffic issues a fixed single-goroutine send pattern so two
// runs present identical per-link op sequences to the fault plan.
func scriptedTraffic(t *Chaos) {
	for round := 0; round < 50; round++ {
		for src := 0; src < t.Size(); src++ {
			for dst := 0; dst < t.Size(); dst++ {
				if src == dst {
					continue
				}
				t.Send(src, dst, round, []byte{byte(round)})
			}
		}
	}
}

// TestChaosDeterministicReplay: same seed + same traffic = the
// byte-identical fault sequence; a different seed diverges.
func TestChaosDeterministicReplay(t *testing.T) {
	plan := FaultPlan{Seed: 42, Drop: 0.1, Dup: 0.05, DelaySpike: 0.05, Partition: 0.02, PartitionOps: 3}
	run := func(seed uint64) []FaultEvent {
		p := plan
		p.Seed = seed
		// Spikes re-send from a timer; give them a zero-ish latency so
		// the run finishes fast. Event recording happens at decision
		// time, so timing cannot perturb the log.
		p.SpikeLatency = time.Microsecond
		c := NewChaos(NewInline(4), p)
		c.SetRecording(true)
		scriptedTraffic(c)
		return c.Events()
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("fault plan injected nothing — rates too low for the script?")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed diverged:\n%v\nvs\n%v", a, b)
	}
	c := run(43)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

// TestChaosPartitionWidth: a partition decision eats exactly
// PartitionOps consecutive sends on its link.
func TestChaosPartitionWidth(t *testing.T) {
	// Partition=1 makes the very first clean decision open a partition.
	c := NewChaos(NewInline(2), FaultPlan{Seed: 7, Partition: 1, PartitionOps: 4})
	c.SetRecording(true)
	for i := 0; i < 4; i++ {
		c.Send(0, 1, 0, []byte{1})
	}
	evs := c.Events()
	if len(evs) != 4 {
		t.Fatalf("recorded %d events, want 4: %v", len(evs), evs)
	}
	if evs[0].Kind != "partition" {
		t.Errorf("first event %v, want partition", evs[0])
	}
	for _, ev := range evs[1:] {
		if ev.Kind != "partition-drop" {
			t.Errorf("in-partition event %v, want partition-drop", ev)
		}
	}
	if got := c.Drops(); got != 4 {
		t.Errorf("Drops = %d, want 4", got)
	}
	// The partition is spent: the next decision is fresh (and with
	// Partition=1, opens another one rather than delivering).
	c.Send(0, 1, 0, []byte{1})
	if evs := c.Events(); evs[len(evs)-1].Kind != "partition" {
		t.Errorf("post-partition send = %v, want a fresh partition", evs[len(evs)-1])
	}
}

// TestChaosKill: sends touching a crashed rank are discarded in either
// direction, one-sided ops drop both callbacks, and Alive reflects it.
func TestChaosKill(t *testing.T) {
	inner := NewInline(3)
	c := NewChaos(inner, FaultPlan{Seed: 1})
	c.Send(0, 1, 5, []byte("pre"))
	if m, ok := c.TryRecv(1, 0, 5); !ok || string(m.Data) != "pre" {
		t.Fatalf("clean chaos did not deliver: %v %v", m, ok)
	}
	c.Kill(1)
	if c.Alive(1) || !c.Alive(0) {
		t.Fatal("Alive wrong after Kill")
	}
	c.Send(0, 1, 5, []byte("to-dead"))
	c.Send(1, 0, 5, []byte("from-dead"))
	if _, ok := c.TryRecv(1, 0, 5); ok {
		t.Error("send to dead rank delivered")
	}
	if _, ok := c.TryRecv(0, 1, 5); ok {
		t.Error("send from dead rank delivered")
	}
	applied, done := false, false
	c.Put(0, 1, 8, func() { applied = true }, func() { done = true })
	if applied || done {
		t.Error("one-sided op to dead rank ran callbacks")
	}
	if c.Drops() != 3 {
		t.Errorf("Drops = %d, want 3", c.Drops())
	}
	// Unaffected pair still works.
	c.Send(0, 2, 9, []byte("alive"))
	if m, ok := c.TryRecv(2, 0, 9); !ok || string(m.Data) != "alive" {
		t.Errorf("0->2 traffic broken by unrelated kill: %v %v", m, ok)
	}
}

// TestChaosZeroPlanIsTransparent: an all-zero plan never perturbs
// traffic.
func TestChaosZeroPlanIsTransparent(t *testing.T) {
	c := NewChaos(NewInline(2), FaultPlan{Seed: 99})
	for i := 0; i < 100; i++ {
		c.Send(0, 1, i, []byte{byte(i)})
		if m, ok := c.TryRecv(1, 0, i); !ok || m.Data[0] != byte(i) {
			t.Fatalf("zero plan dropped message %d", i)
		}
	}
	if c.Drops()+c.Dups()+c.Spikes()+c.Partitions() != 0 {
		t.Fatal("zero plan injected faults")
	}
}

// TestChaosRateValidation: invalid plans are rejected at construction.
func TestChaosRateValidation(t *testing.T) {
	for _, plan := range []FaultPlan{
		{Drop: 0.8, Dup: 0.3},
		{Drop: -0.1},
		{Partition: 1.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("plan %+v accepted", plan)
				}
			}()
			NewChaos(NewInline(2), plan)
		}()
	}
}
