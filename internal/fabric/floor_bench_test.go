package fabric

import (
	"runtime"
	"testing"
)

// These benchmarks measure the scheduler substrate under the zero-cost
// rendezvous path, not fabric code. A blocking ping-pong between two
// goroutines on a single P needs exactly two goroutine switches per
// round trip, no matter how cheap the transport is, so the numbers here
// bound what pingpong-sim-zero in BENCH_comm.json can ever report on a
// given machine. See the data-plane scaling notes in EXPERIMENTS.md.

// BenchmarkGoschedPair is the cost of one round trip of cooperative
// yields between two goroutines — the switch substrate recvBlocking's
// poll loop rides on.
func BenchmarkGoschedPair(b *testing.B) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			runtime.Gosched()
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runtime.Gosched()
	}
	<-done
}

// BenchmarkChanRendezvousRT is the alternative substrate: a full
// park/unpark round trip through two unbuffered channels. Measured
// ~2.4x slower than the Gosched pair on a 1-vCPU host, which is why
// recvBlocking polls with yields before falling back to a parked
// waiter.
func BenchmarkChanRendezvousRT(b *testing.B) {
	ping := make(chan int)
	pong := make(chan int)
	go func() {
		for i := 0; i < b.N; i++ {
			v := <-ping
			pong <- v
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ping <- 1
		<-pong
	}
}
