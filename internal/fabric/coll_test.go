package fabric

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"
)

func sumInt64(acc, in []byte) {
	for i := 0; i+8 <= len(in); i += 8 {
		a := int64(binary.LittleEndian.Uint64(acc[i:]))
		b := int64(binary.LittleEndian.Uint64(in[i:]))
		binary.LittleEndian.PutUint64(acc[i:], uint64(a+b))
	}
}

func i64(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

func geti64(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

// runWorld runs fn once per rank on its own goroutine and waits.
func runWorld(n int, fn func(rank int)) {
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fn(r)
		}(r)
	}
	wg.Wait()
}

// transports returns both backends at size n, labelled.
func transports(n int) map[string]Transport {
	return map[string]Transport{
		"sim-zero": NewSim(n, CostModel{}),
		"sim-cost": NewSim(n, CostModel{Alpha: 50 * time.Microsecond}),
		"inline":   NewInline(n),
	}
}

func TestCollBcast(t *testing.T) {
	const n = 7
	for name, tr := range transports(n) {
		t.Run(name, func(t *testing.T) {
			cl := NewColl(tr)
			for root := 0; root < n; root++ {
				runWorld(n, func(rank int) {
					buf := make([]byte, 8)
					if rank == root {
						copy(buf, i64(int64(1000+root)))
					}
					cl.Bcast(rank, buf, root)
					if got := geti64(buf); got != int64(1000+root) {
						t.Errorf("root %d rank %d: got %d", root, rank, got)
					}
				})
			}
		})
	}
}

func TestCollReduceAllreduce(t *testing.T) {
	const n = 6
	want := int64(n * (n - 1) / 2)
	for name, tr := range transports(n) {
		t.Run(name, func(t *testing.T) {
			cl := NewColl(tr)
			runWorld(n, func(rank int) {
				var recv []byte
				if rank == 3 {
					recv = make([]byte, 8)
				}
				cl.Reduce(rank, recv, i64(int64(rank)), sumInt64, 3)
				if rank == 3 && geti64(recv) != want {
					t.Errorf("Reduce at root: got %d want %d", geti64(recv), want)
				}
			})
			runWorld(n, func(rank int) {
				recv := make([]byte, 8)
				cl.Allreduce(rank, recv, i64(int64(rank)), sumInt64)
				if geti64(recv) != want {
					t.Errorf("Allreduce rank %d: got %d want %d", rank, geti64(recv), want)
				}
			})
		})
	}
}

func TestCollGatherAllgather(t *testing.T) {
	const n = 5
	for name, tr := range transports(n) {
		t.Run(name, func(t *testing.T) {
			cl := NewColl(tr)
			runWorld(n, func(rank int) {
				out := cl.Gather(rank, []byte(fmt.Sprintf("r%d", rank)), 2)
				if rank != 2 {
					if out != nil {
						t.Errorf("non-root rank %d got %v", rank, out)
					}
					return
				}
				for i, chunk := range out {
					if string(chunk) != fmt.Sprintf("r%d", i) {
						t.Errorf("Gather slot %d = %q", i, chunk)
					}
				}
			})
			runWorld(n, func(rank int) {
				out := cl.Allgather(rank, []byte(fmt.Sprintf("r%d", rank)))
				for i, chunk := range out {
					if string(chunk) != fmt.Sprintf("r%d", i) {
						t.Errorf("Allgather rank %d slot %d = %q", rank, i, chunk)
					}
				}
			})
		})
	}
}

func TestCollAlltoallvScan(t *testing.T) {
	const n = 4
	for name, tr := range transports(n) {
		t.Run(name, func(t *testing.T) {
			cl := NewColl(tr)
			runWorld(n, func(rank int) {
				chunks := make([][]byte, n)
				for d := range chunks {
					chunks[d] = []byte(fmt.Sprintf("%d->%d", rank, d))
				}
				out := cl.Alltoallv(rank, chunks)
				for s, chunk := range out {
					if want := fmt.Sprintf("%d->%d", s, rank); string(chunk) != want {
						t.Errorf("rank %d from %d: %q want %q", rank, s, chunk, want)
					}
				}
			})
			runWorld(n, func(rank int) {
				recv := make([]byte, 8)
				cl.Scan(rank, recv, i64(int64(rank+1)), sumInt64)
				want := int64((rank + 1) * (rank + 2) / 2)
				if geti64(recv) != want {
					t.Errorf("Scan rank %d: got %d want %d", rank, geti64(recv), want)
				}
			})
		})
	}
}

func TestCollBarrier(t *testing.T) {
	const n = 5
	cl := NewColl(NewInline(n))
	var mu sync.Mutex
	entered := 0
	runWorld(n, func(rank int) {
		mu.Lock()
		entered++
		mu.Unlock()
		cl.Barrier()
		mu.Lock()
		if entered != n {
			t.Errorf("barrier released rank %d with %d/%d entered", rank, entered, n)
		}
		mu.Unlock()
	})
}

// Two Colls on one shared transport (two library worlds composed on one
// fabric) must not cross-match each other's collective traffic.
func TestTwoCollsShareTransport(t *testing.T) {
	const n = 4
	tr := NewSim(n, CostModel{})
	clA, clB := NewColl(tr), NewColl(tr)
	runWorld(n, func(rank int) {
		bufA := make([]byte, 8)
		bufB := make([]byte, 8)
		if rank == 0 {
			copy(bufA, i64(111))
			copy(bufB, i64(222))
		}
		// Interleave the two worlds' broadcasts on the same ranks.
		clA.Bcast(rank, bufA, 0)
		clB.Bcast(rank, bufB, 0)
		if geti64(bufA) != 111 || geti64(bufB) != 222 {
			t.Errorf("rank %d: worlds cross-matched: A=%d B=%d", rank, geti64(bufA), geti64(bufB))
		}
	})
}

func TestCollReduceRootNeedsBuffer(t *testing.T) {
	cl := NewColl(NewInline(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil root buffer")
		}
	}()
	cl.Reduce(0, nil, i64(1), sumInt64, 0)
}

func TestCollVariableSizes(t *testing.T) {
	const n = 3
	cl := NewColl(NewInline(n))
	runWorld(n, func(rank int) {
		contrib := bytes.Repeat([]byte{byte(rank + 1)}, rank+1)
		out := cl.Allgather(rank, contrib)
		for i, chunk := range out {
			if len(chunk) != i+1 || (len(chunk) > 0 && chunk[0] != byte(i+1)) {
				t.Errorf("rank %d slot %d: %v", rank, i, chunk)
			}
		}
	})
}
