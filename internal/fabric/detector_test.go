package fabric

import (
	"os"
	"strconv"
	"testing"
	"time"
)

// chaosSeedFromEnv lets the Makefile's chaos seed matrix vary the fault
// schedule without hardcoding seeds into tests: HIPER_CHAOS_SEED
// overrides the default when set.
func chaosSeedFromEnv(t testing.TB, def uint64) uint64 {
	t.Helper()
	s := os.Getenv("HIPER_CHAOS_SEED")
	if s == "" {
		return def
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		t.Fatalf("HIPER_CHAOS_SEED=%q: %v", s, err)
	}
	return v
}

// detStack builds the standard detector test stack: a chaos-wrapped sim
// with n application endpoints plus a monitor at index n.
func detStack(n int, plan FaultPlan, cfg DetectorConfig) (*Chaos, *Detector) {
	ch := NewChaos(NewSim(n+1, CostModel{}), plan)
	cfg.Monitor = n
	d := NewDetector(ch, cfg)
	for ep := 0; ep < n; ep++ {
		d.Watch(ep)
	}
	return ch, d
}

func TestDetectorDetectsKillUnderChaos(t *testing.T) {
	seed := chaosSeedFromEnv(t, 42)
	ch, d := detStack(3, FaultPlan{Seed: seed, Drop: 0.05, Dup: 0.05}, DetectorConfig{})
	d.Baseline(8)
	if s := d.Tick(); len(s) != 0 {
		t.Fatalf("suspects before any kill: %v", s)
	}
	ch.Kill(1)
	suspects, rounds := d.Sweep(32)
	if len(suspects) == 0 {
		t.Fatalf("killed endpoint never suspected within 32 rounds")
	}
	found := false
	for _, ep := range suspects {
		if ep == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("suspects %v does not include the killed endpoint 1", suspects)
	}
	if rounds <= 0 || rounds > 32 {
		t.Fatalf("detection latency %d rounds out of range", rounds)
	}
	if phi := d.Phi(1); phi < 8 {
		t.Fatalf("killed endpoint phi %.2f below threshold", phi)
	}
	if !d.Suspected(1) {
		t.Fatalf("killed endpoint not latched as suspected")
	}
	// The survivors must not be casualties of the sweep.
	for _, ep := range []int{0, 2} {
		if d.Suspected(ep) {
			t.Fatalf("live endpoint %d falsely suspected (phi %.2f)", ep, d.Phi(ep))
		}
	}
}

func TestDetectorNoFalseSuspicionUnderChaos(t *testing.T) {
	seed := chaosSeedFromEnv(t, 42)
	_, d := detStack(4, FaultPlan{Seed: seed, Drop: 0.05, Dup: 0.05}, DetectorConfig{})
	d.Baseline(8)
	for i := 0; i < 24; i++ {
		if s := d.Tick(); len(s) != 0 {
			t.Fatalf("round %d: live endpoints suspected: %v", i, s)
		}
	}
}

// TestDetectorLatencyReplays is the determinism proof: the detector's
// clock is its round counter and chaos faults are a pure function of
// (seed, link, op), so the same kill under the same seed is detected in
// exactly the same round, twice.
func TestDetectorLatencyReplays(t *testing.T) {
	seed := chaosSeedFromEnv(t, 42)
	run := func() (int, []int, uint64) {
		ch, d := detStack(3, FaultPlan{Seed: seed, Drop: 0.05, Dup: 0.05}, DetectorConfig{})
		d.Baseline(8)
		ch.Kill(1)
		suspects, rounds := d.Sweep(32)
		return rounds, suspects, d.Round()
	}
	r1, s1, round1 := run()
	r2, s2, round2 := run()
	if r1 != r2 || round1 != round2 {
		t.Fatalf("detection latency not replayable: %d rounds (abs %d) vs %d (abs %d)", r1, round1, r2, round2)
	}
	if len(s1) != len(s2) {
		t.Fatalf("suspect sets differ across replays: %v vs %v", s1, s2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("suspect sets differ across replays: %v vs %v", s1, s2)
		}
	}
}

// TestDetectorSpikeStormStaysCalm: a delay-spike storm (every send held
// 500µs) must not push any live endpoint over the threshold — the round
// window is sized so a spiked echo still lands in its round. This is
// the detector half of the DeathSilence-coexistence contract.
func TestDetectorSpikeStormStaysCalm(t *testing.T) {
	seed := chaosSeedFromEnv(t, 42)
	_, d := detStack(3, FaultPlan{Seed: seed, DelaySpike: 1.0}, DetectorConfig{})
	d.Baseline(4)
	for i := 0; i < 16; i++ {
		if s := d.Tick(); len(s) != 0 {
			t.Fatalf("spike storm round %d: suspected %v (phi %v)", i, s, d.Phi(s[0]))
		}
	}
}

// TestDetectorFlappingLinkSuspectsAndClears: under a seeded flapping
// schedule (a total-loss burst window cycling with a long clean
// window), a live endpoint is suspected during the burst and cleared
// when its echoes resume — both transitions land on the event timeline.
func TestDetectorFlappingLinkSuspectsAndClears(t *testing.T) {
	seed := chaosSeedFromEnv(t, 7)
	plan := FaultPlan{
		Seed: seed,
		Schedule: []FaultWindow{
			{Ops: 8, Drop: 1.0},
			{Ops: 120},
		},
	}
	_, d := detStack(2, plan, DetectorConfig{})
	for i := 0; i < 150; i++ {
		d.Tick()
	}
	var suspected, cleared bool
	for _, ev := range d.Events() {
		switch ev.Kind {
		case "suspect":
			suspected = true
		case "clear":
			if suspected {
				cleared = true
			}
		}
	}
	if !suspected {
		t.Fatalf("flapping link never suspected; events: %v", d.Events())
	}
	if !cleared {
		t.Fatalf("flapped endpoint never cleared after echoes resumed; events: %v", d.Events())
	}
	for ep := 0; ep < 2; ep++ {
		if d.Phi(ep) >= 8 {
			// Both links are mid-cycle somewhere; after the loop the
			// detector must at least not have latched a permanent
			// suspicion on an endpoint that echoes again.
			d.Tick()
		}
	}
}

func TestDetectorStartStop(t *testing.T) {
	ch, d := detStack(2, FaultPlan{Seed: 1}, DetectorConfig{RoundWait: 200 * time.Microsecond})
	d.Start()
	d.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for d.Round() < 8 {
		if time.Now().After(deadline) {
			t.Fatalf("background ticker stalled at round %d", d.Round())
		}
		time.Sleep(time.Millisecond)
	}
	ch.Kill(1)
	for !d.Suspected(1) {
		if time.Now().After(deadline) {
			t.Fatalf("background ticker never suspected the killed endpoint")
		}
		time.Sleep(time.Millisecond)
	}
	d.Stop()
	d.Stop() // idempotent
	r := d.Round()
	time.Sleep(5 * time.Millisecond)
	if d.Round() != r {
		t.Fatalf("ticker still running after Stop")
	}
}

func TestDetectorUnwatchSilencesEndpoint(t *testing.T) {
	ch, d := detStack(3, FaultPlan{Seed: 1}, DetectorConfig{})
	d.Baseline(4)
	ch.Kill(2)
	d.Unwatch(2)
	for i := 0; i < 12; i++ {
		if s := d.Tick(); len(s) != 0 {
			t.Fatalf("unwatched dead endpoint still suspected: %v", s)
		}
	}
	if phi := d.Phi(2); phi != 0 {
		t.Fatalf("unwatched endpoint has phi %.2f", phi)
	}
}

func TestEpochTableEvictMovesTopOntoSlot(t *testing.T) {
	tab := NewEpochTable(4, 4) // no spares: the evict regime
	deadEp := tab.Endpoint(1)
	topEp := tab.Endpoint(3)
	e0 := tab.Epoch()
	dropped, err := tab.Evict(1)
	if err != nil {
		t.Fatalf("evict: %v", err)
	}
	if dropped != 3 {
		t.Fatalf("evict dropped rank %d, want previous top 3", dropped)
	}
	if got := tab.Ranks(); got != 3 {
		t.Fatalf("ranks after evict = %d, want 3", got)
	}
	if got := tab.Endpoint(1); got != topEp {
		t.Fatalf("evicted slot carries endpoint %d, want the top rank's %d", got, topEp)
	}
	if got := tab.Logical(deadEp); got != -1 {
		t.Fatalf("dead endpoint still maps to rank %d", got)
	}
	if got := tab.Logical(topEp); got != 1 {
		t.Fatalf("reused endpoint maps to rank %d, want 1", got)
	}
	if tab.Epoch() != e0+1 {
		t.Fatalf("evict did not bump the epoch")
	}
	// The dead endpoint must never re-enter circulation.
	if _, err := tab.Grow(1); err == nil {
		t.Fatalf("grow succeeded after evict: the dead endpoint was pooled")
	}
}

func TestEpochTableEvictTopIsPlainDrop(t *testing.T) {
	tab := NewEpochTable(3, 3)
	dropped, err := tab.Evict(2)
	if err != nil {
		t.Fatalf("evict top: %v", err)
	}
	if dropped != 2 || tab.Ranks() != 2 {
		t.Fatalf("evict top: dropped %d ranks %d, want 2 and 2", dropped, tab.Ranks())
	}
	if tab.Endpoint(0) != 0 || tab.Endpoint(1) != 1 {
		t.Fatalf("surviving assignments disturbed: %v", tab.Endpoints())
	}
}

func TestEpochTableEvictErrors(t *testing.T) {
	tab := NewEpochTable(2, 2)
	if _, err := tab.Evict(5); err == nil {
		t.Fatalf("out-of-range evict succeeded")
	}
	if _, err := tab.Evict(0); err != nil {
		t.Fatalf("evict to 1 rank: %v", err)
	}
	if _, err := tab.Evict(0); err == nil {
		t.Fatalf("evicting the last rank succeeded")
	}
}
