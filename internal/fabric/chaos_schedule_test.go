package fabric

import (
	"testing"
)

// TestChaosScheduleWindowCoverage: a 10%-of-cycle total-loss window must
// drop exactly 10% of a whole number of cycles' sends on every link —
// the burst windows are exact, not probabilistic.
func TestChaosScheduleWindowCoverage(t *testing.T) {
	seed := chaosSeedFromEnv(t, 42)
	plan := FaultPlan{
		Seed: seed,
		Schedule: []FaultWindow{
			{Ops: 10, Drop: 1.0},
			{Ops: 90},
		},
	}
	ch := NewChaos(NewSim(2, CostModel{}), plan)
	const cycles = 5
	for i := 0; i < cycles*100; i++ {
		ch.Send(0, 1, 1, []byte{1})
	}
	if got := ch.Drops(); got != cycles*10 {
		t.Fatalf("drops = %d, want exactly %d (burst windows are deterministic)", got, cycles*10)
	}
	// Drain what was delivered so the sim isn't left with queued sends.
	for i := 0; i < cycles*90; i++ {
		ch.Recv(1, 0, 1)
	}
}

// TestChaosScheduleReplays: the time-varying plan must be as replayable
// as the flat plan — identical traffic, identical fault event logs.
func TestChaosScheduleReplays(t *testing.T) {
	seed := chaosSeedFromEnv(t, 42)
	plan := FaultPlan{
		Seed: seed,
		Schedule: []FaultWindow{
			{Ops: 7, Drop: 0.9, Dup: 0.1},
			{Ops: 23, Drop: 0.02, Dup: 0.02},
		},
	}
	run := func() []FaultEvent {
		ch := NewChaos(NewSim(3, CostModel{}), plan)
		ch.SetRecording(true)
		for i := 0; i < 300; i++ {
			ch.Send(0, 1, 1, []byte{byte(i)})
			ch.Send(1, 2, 1, []byte{byte(i)})
		}
		return ch.Events()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("fault logs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault logs diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestChaosScheduleLinksOutOfPhase: links enter the cycle at seeded
// offsets, so a burst window does not hit every link at the same op
// index — the flapping is per-link, not global.
func TestChaosScheduleLinksOutOfPhase(t *testing.T) {
	plan := FaultPlan{
		Schedule: []FaultWindow{
			{Ops: 10, Drop: 1.0},
			{Ops: 90},
		},
	}
	firstDrop := func(seed uint64, src, dst int) uint64 {
		p := plan
		p.Seed = seed
		ch := NewChaos(NewSim(3, CostModel{}), p)
		ch.SetRecording(true)
		for i := 0; i < 100; i++ {
			ch.Send(src, dst, 1, []byte{1})
		}
		for _, ev := range ch.Events() {
			if ev.Kind == "drop" {
				return ev.Op
			}
		}
		return ^uint64(0)
	}
	// Across a few seeds, at least one must give the two links different
	// burst phases (identical offsets on every seed would mean the
	// links flap in lockstep).
	differ := false
	for seed := uint64(1); seed <= 5 && !differ; seed++ {
		differ = firstDrop(seed, 0, 1) != firstDrop(seed, 1, 2)
	}
	if !differ {
		t.Fatalf("burst windows hit every link at the same op index across all seeds")
	}
}

func TestChaosScheduleValidation(t *testing.T) {
	mustPanic := func(name string, plan FaultPlan) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: NewChaos accepted an invalid schedule", name)
			}
		}()
		NewChaos(NewSim(2, CostModel{}), plan)
	}
	mustPanic("zero-ops window", FaultPlan{Schedule: []FaultWindow{{Ops: 0, Drop: 0.5}}})
	mustPanic("rates above 1", FaultPlan{Schedule: []FaultWindow{{Ops: 5, Drop: 0.8, Dup: 0.4}}})
}

// TestChaosScheduleSpikeDefaults: a plan whose only spikes live in a
// window still gets the default SpikeLatency, and spiked sends arrive.
func TestChaosScheduleSpikeDefaults(t *testing.T) {
	plan := FaultPlan{
		Seed:     3,
		Schedule: []FaultWindow{{Ops: 4, DelaySpike: 1.0}, {Ops: 4}},
	}
	ch := NewChaos(NewSim(2, CostModel{}), plan)
	for i := 0; i < 8; i++ {
		ch.Send(0, 1, 1, []byte{byte(i)})
	}
	for i := 0; i < 8; i++ {
		ch.Recv(1, 0, 1) // every send must eventually arrive, spiked or not
	}
	if ch.Spikes() != 4 {
		t.Fatalf("spikes = %d, want the window's 4", ch.Spikes())
	}
}
