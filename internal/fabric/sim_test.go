package fabric

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/trace"
)

func TestSendRecvZeroCost(t *testing.T) {
	f := NewSim(2, CostModel{})
	f.Send(0, 1, 7, []byte("hi"))
	m := f.Recv(1, 0, 7)
	if string(m.Data) != "hi" || m.Src != 0 || m.Tag != 7 {
		t.Fatalf("got %+v", m)
	}
}

func TestRecvBeforeSend(t *testing.T) {
	f := NewSim(2, CostModel{})
	done := make(chan Message, 1)
	go func() { done <- f.Recv(1, AnySource, AnyTag) }()
	time.Sleep(time.Millisecond)
	f.Send(0, 1, 3, []byte("x"))
	select {
	case m := <-done:
		if m.Tag != 3 {
			t.Fatalf("tag = %d", m.Tag)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("posted receive never matched")
	}
}

func TestSenderBufferReusable(t *testing.T) {
	f := NewSim(2, CostModel{})
	buf := []byte{1, 2, 3}
	f.Send(0, 1, 0, buf)
	buf[0] = 99 // eager send copied the data
	m := f.Recv(1, 0, 0)
	if m.Data[0] != 1 {
		t.Fatal("send did not copy the payload")
	}
}

func TestTagAndSourceMatching(t *testing.T) {
	f := NewSim(3, CostModel{})
	f.Send(0, 2, 10, []byte("a"))
	f.Send(1, 2, 20, []byte("b"))
	// Receive tag 20 first even though it arrived second.
	if m := f.Recv(2, AnySource, 20); string(m.Data) != "b" {
		t.Fatalf("tag match failed: %+v", m)
	}
	if m := f.Recv(2, 0, AnyTag); string(m.Data) != "a" {
		t.Fatalf("source match failed: %+v", m)
	}
}

func TestOrderingPerPair(t *testing.T) {
	f := NewSim(2, CostModel{})
	for i := 0; i < 100; i++ {
		f.Send(0, 1, 5, []byte{byte(i)})
	}
	for i := 0; i < 100; i++ {
		m := f.Recv(1, 0, 5)
		if m.Data[0] != byte(i) {
			t.Fatalf("message %d arrived out of order: %d", i, m.Data[0])
		}
	}
}

func TestTryRecvAndProbe(t *testing.T) {
	f := NewSim(2, CostModel{})
	if _, ok := f.TryRecv(1, AnySource, AnyTag); ok {
		t.Fatal("TryRecv on empty mailbox")
	}
	if _, ok := f.Probe(1, AnySource, AnyTag); ok {
		t.Fatal("Probe on empty mailbox")
	}
	f.Send(0, 1, 1, []byte("z"))
	if m, ok := f.Probe(1, 0, 1); !ok || string(m.Data) != "z" {
		t.Fatal("Probe failed")
	}
	// Probe must not consume.
	if _, ok := f.TryRecv(1, 0, 1); !ok {
		t.Fatal("TryRecv after Probe failed")
	}
	if _, ok := f.TryRecv(1, 0, 1); ok {
		t.Fatal("message not consumed by TryRecv")
	}
}

func TestRecvAsync(t *testing.T) {
	f := NewSim(2, CostModel{})
	got := make(chan Message, 1)
	f.RecvAsync(1, 0, 9, func(m Message) { got <- m })
	f.Send(0, 1, 9, []byte("async"))
	select {
	case m := <-got:
		if string(m.Data) != "async" {
			t.Fatalf("got %q", m.Data)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("async receive never fired")
	}
	// Already-queued message delivers inline.
	f.Send(0, 1, 9, []byte("queued"))
	fired := false
	f.RecvAsync(1, 0, 9, func(m Message) { fired = true })
	if !fired {
		t.Fatal("RecvAsync did not match queued message inline")
	}
}

func TestDelayedDelivery(t *testing.T) {
	cost := CostModel{Alpha: 20 * time.Millisecond}
	f := NewSim(2, cost)
	start := time.Now()
	f.Send(0, 1, 0, []byte("slow"))
	f.Recv(1, 0, 0)
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("message arrived after %v, want >= ~20ms", d)
	}
}

func TestBandwidthDelay(t *testing.T) {
	c := CostModel{Alpha: time.Millisecond, BytesPerSec: 1e6}
	if d := c.Delay(1000); d != time.Millisecond+time.Millisecond {
		t.Fatalf("Delay = %v", d)
	}
	if !(CostModel{}).Zero() {
		t.Fatal("zero model not detected")
	}
	if c.Zero() {
		t.Fatal("non-zero model detected as zero")
	}
}

func TestCongestionSlowsFanIn(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	// With a window of 1 and a 3ms penalty, 8 concurrent messages to one
	// destination must take noticeably longer than 8 sequential ones.
	f := NewSim(9, CostModel{Alpha: time.Millisecond, CongestWindow: 1, CongestPenalty: 3 * time.Millisecond})
	start := time.Now()
	for s := 0; s < 8; s++ {
		f.Send(s, 8, 0, []byte("x"))
	}
	for i := 0; i < 8; i++ {
		f.Recv(8, AnySource, 0)
	}
	elapsed := time.Since(start)
	if elapsed < 10*time.Millisecond {
		t.Fatalf("fan-in of 8 finished in %v; congestion model inactive", elapsed)
	}
}

// Sends and one-sided Puts issued toward the same destination share one
// in-flight counter — the property that makes congestion apply across
// library modules composed on one fabric.
func TestPutsAndSendsShareCongestion(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const (
		n       = 8
		penalty = 3 * time.Millisecond
	)
	run := func(puts bool) time.Duration {
		f := NewSim(n+1, CostModel{Alpha: time.Millisecond, CongestWindow: 1, CongestPenalty: penalty})
		start := time.Now()
		var wg sync.WaitGroup
		wg.Add(n)
		for s := 0; s < n; s++ {
			if puts && s%2 == 0 {
				f.Put(s, n, 8, nil, wg.Done)
			} else {
				f.Send(s, n, 0, []byte("x"))
				f.RecvAsync(n, s, 0, func(Message) { wg.Done() })
			}
		}
		wg.Wait()
		return time.Since(start)
	}
	mixed := run(true)
	// Half sends + half puts must still pay the fan-in congestion bill:
	// well beyond the ~1ms base even with generous CI slack.
	if mixed < 8*time.Millisecond {
		t.Fatalf("mixed put/send fan-in of %d finished in %v; congestion not shared across op kinds", n, mixed)
	}
}

func TestBarrier(t *testing.T) {
	const n = 8
	bar := NewBarrier(n)
	var phase atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan string, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 50; it++ {
				phase.Add(1)
				bar.Await()
				if got := phase.Load(); got != int64(n*(it+1)) {
					errs <- "barrier let a rank through early"
					return
				}
				bar.Await()
			}
		}()
	}
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
}

func TestSimStats(t *testing.T) {
	f := NewSim(2, CostModel{})
	f.Send(0, 1, 0, make([]byte, 100))
	f.Send(1, 0, 0, make([]byte, 50))
	done := make(chan struct{})
	f.Put(0, 1, 25, nil, func() { close(done) })
	<-done
	msgs, bytes := f.Stats()
	if msgs != 3 || bytes != 175 {
		t.Fatalf("stats = %d msgs %d bytes", msgs, bytes)
	}
}

func TestBadRankPanics(t *testing.T) {
	f := NewSim(2, CostModel{})
	for _, fn := range []func(){
		func() { f.Send(0, 2, 0, nil) },
		func() { f.Send(-1, 0, 0, nil) },
		func() { f.Recv(5, 0, 0) },
		func() { f.Put(0, 7, 8, nil, nil) },
		func() { f.Get(-3, 0, 8, nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range rank")
				}
			}()
			fn()
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for empty transport")
			}
		}()
		NewSim(0, CostModel{})
	}()
}

// Property: any interleaving of sends from multiple sources is received
// exactly once, with per-(src,tag) FIFO order preserved.
func TestQuickExactlyOnceDelivery(t *testing.T) {
	fn := func(counts []uint8) bool {
		if len(counts) == 0 {
			return true
		}
		if len(counts) > 6 {
			counts = counts[:6]
		}
		srcs := len(counts)
		f := NewSim(srcs+1, CostModel{})
		dst := srcs
		total := 0
		var wg sync.WaitGroup
		for s := 0; s < srcs; s++ {
			n := int(counts[s] % 20)
			total += n
			wg.Add(1)
			go func(s, n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					f.Send(s, dst, s, []byte{byte(i)})
				}
			}(s, n)
		}
		wg.Wait()
		next := make([]int, srcs)
		for i := 0; i < total; i++ {
			m := f.Recv(dst, AnySource, AnyTag)
			if int(m.Data[0]) != next[m.Src] {
				return false // per-source order violated
			}
			next[m.Src]++
		}
		_, ok := f.TryRecv(dst, AnySource, AnyTag)
		return !ok // nothing left over
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSendRecvZeroCost(b *testing.B) {
	f := NewSim(2, CostModel{})
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Send(0, 1, 0, payload)
		f.Recv(1, 0, 0)
	}
}

// Per-pair FIFO ordering must survive the latency model: MPI guarantees
// non-overtaking between one (src, dst) pair.
func TestOrderingUnderLatency(t *testing.T) {
	f := NewSim(2, CostModel{Alpha: 500 * time.Microsecond})
	const n = 50
	for i := 0; i < n; i++ {
		f.Send(0, 1, 5, []byte{byte(i)})
	}
	for i := 0; i < n; i++ {
		m := f.Recv(1, 0, 5)
		if m.Data[0] != byte(i) {
			t.Fatalf("message %d overtaken by %d under latency model", i, m.Data[0])
		}
	}
}

// One-sided transfers interleave with sends on the same pair link in
// issue order, under the latency model as well as zero-cost.
func TestPutOrderedWithSends(t *testing.T) {
	f := NewSim(2, CostModel{Alpha: 200 * time.Microsecond})
	var order []int
	var mu sync.Mutex
	note := func(i int) {
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
	}
	done := make(chan struct{})
	f.Send(0, 1, 0, []byte{0})
	f.RecvAsync(1, 0, 0, func(Message) { note(0) })
	f.Put(0, 1, 8, func() { note(1) }, nil)
	f.Send(0, 1, 0, []byte{2})
	f.RecvAsync(1, 0, 0, func(Message) { note(2) })
	f.Put(0, 1, 8, func() { note(3) }, func() { close(done) })
	<-done
	mu.Lock()
	defer mu.Unlock()
	for i, got := range order {
		if got != i {
			t.Fatalf("delivery order %v, want 0,1,2,3", order)
		}
	}
}

// TestSimTracing checks that an attached tracer sees one send and one
// recv event per transfer on both delivery paths (inline zero-cost and
// the delayed drain-goroutine path), with ranks and sizes intact.
func TestSimTracing(t *testing.T) {
	tr := trace.New(0, trace.Config{})

	// Inline path: zero cost model delivers synchronously.
	zf := NewSim(3, CostModel{})
	zf.SetTracer(tr)
	zf.Send(0, 1, 7, make([]byte, 100))
	zf.Send(2, 1, 7, make([]byte, 28))
	zf.Recv(1, AnySource, 7)
	zf.Recv(1, AnySource, 7)

	// Delayed path: drain goroutines deliver after the modelled latency.
	df := NewSim(2, CostModel{Alpha: time.Microsecond})
	df.SetTracer(tr)
	df.Send(0, 1, 0, make([]byte, 64))
	df.Recv(1, 0, 0)

	d := tr.Derived()
	if d.MsgsSent != 3 || d.MsgsRecvd != 3 {
		t.Fatalf("traced %d sends / %d recvs, want 3 / 3", d.MsgsSent, d.MsgsRecvd)
	}
	if d.MsgBytes != 192 {
		t.Fatalf("traced %d sent bytes, want 192", d.MsgBytes)
	}
	for _, ev := range tr.Events() {
		if ev.Kind != trace.EvMsgSend && ev.Kind != trace.EvMsgRecv {
			t.Fatalf("unexpected event kind %v from fabric", ev.Kind)
		}
		src, dst := int(ev.Task>>32), int(uint32(ev.Task))
		if src < 0 || src > 2 || dst != 1 {
			t.Fatalf("event carries ranks %d->%d, want *->1", src, dst)
		}
	}

	// Detaching stops recording.
	zf.SetTracer(nil)
	zf.Send(0, 1, 7, make([]byte, 5))
	if got := tr.Derived().MsgsSent; got != 3 {
		t.Fatalf("detached fabric still recorded: %d sends", got)
	}
}

func TestAllocTagsDisjoint(t *testing.T) {
	for _, tr := range []Transport{NewSim(2, CostModel{}), Transport(NewInline(2))} {
		a := tr.AllocTags(6)
		b := tr.AllocTags(3)
		if a > -2 || b > -2 {
			t.Fatalf("reserved tags %d, %d not below AnyTag", a, b)
		}
		used := map[int]bool{}
		for i := 0; i < 6; i++ {
			used[a-i] = true
		}
		for i := 0; i < 3; i++ {
			if used[b-i] {
				t.Fatalf("blocks overlap: base %d (6) and base %d (3)", a, b)
			}
		}
	}
}
