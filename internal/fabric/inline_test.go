package fabric

import (
	"testing"

	"repro/internal/trace"
)

func TestInlineSendRecv(t *testing.T) {
	f := NewInline(2)
	f.Send(0, 1, 7, []byte("hi"))
	m := f.Recv(1, 0, 7)
	if string(m.Data) != "hi" || m.Src != 0 || m.Tag != 7 {
		t.Fatalf("got %+v", m)
	}
	if _, ok := f.TryRecv(1, AnySource, AnyTag); ok {
		t.Fatal("mailbox not empty after Recv")
	}
}

func TestInlinePutGetSynchronous(t *testing.T) {
	f := NewInline(2)
	var order []string
	f.Put(0, 1, 8, func() { order = append(order, "apply") }, func() { order = append(order, "done") })
	order = append(order, "after")
	if len(order) != 3 || order[0] != "apply" || order[1] != "done" || order[2] != "after" {
		t.Fatalf("Put was not synchronous: %v", order)
	}
	fired := false
	f.Get(1, 0, 4, nil, func() { fired = true })
	if !fired {
		t.Fatal("Get onDone did not run before return")
	}
}

func TestInlineMatchingSemantics(t *testing.T) {
	f := NewInline(3)
	f.Send(0, 2, 10, []byte("a"))
	f.Send(1, 2, 20, []byte("b"))
	if m := f.Recv(2, AnySource, 20); string(m.Data) != "b" {
		t.Fatalf("tag match failed: %+v", m)
	}
	if m := f.Recv(2, 0, AnyTag); string(m.Data) != "a" {
		t.Fatalf("source match failed: %+v", m)
	}
	// Probe does not consume.
	f.Send(0, 2, 1, []byte("z"))
	if _, ok := f.Probe(2, 0, 1); !ok {
		t.Fatal("Probe missed queued message")
	}
	if _, ok := f.TryRecv(2, 0, 1); !ok {
		t.Fatal("Probe consumed the message")
	}
}

func TestInlineStatsAndTracing(t *testing.T) {
	tr := trace.New(0, trace.Config{})
	f := NewInline(2)
	f.SetTracer(tr)
	f.Send(0, 1, 0, make([]byte, 100))
	f.Put(0, 1, 28, nil, nil)
	f.Recv(1, 0, 0)
	msgs, bytes := f.Stats()
	if msgs != 2 || bytes != 128 {
		t.Fatalf("stats = %d msgs %d bytes", msgs, bytes)
	}
	d := tr.Derived()
	if d.MsgsSent != 2 || d.MsgsRecvd != 2 || d.MsgBytes != 128 {
		t.Fatalf("traced %d/%d msgs, %d bytes", d.MsgsSent, d.MsgsRecvd, d.MsgBytes)
	}
}

func TestInlineCostIsZero(t *testing.T) {
	if !NewInline(1).Cost().Zero() {
		t.Fatal("Inline must report a zero cost model")
	}
}
