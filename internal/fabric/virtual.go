package fabric

import (
	"fmt"

	"repro/internal/trace"
)

// Virtual is the endpoint-remap seam: a Transport whose ranks are
// *logical* — stable job-level identities resolved through an EpochTable
// on every operation. Library worlds built over a Virtual survive
// migration (a logical rank retargeted to a fresh physical endpoint) and
// live resize (Grow/Shrink) without rebuilding, because nothing they
// cache is a physical endpoint.
//
// The translation discipline:
//
//   - Outbound (Send, Put, Get, the dst of a Recv): logical → physical
//     via the table's current epoch.
//   - Inbound (a delivered Message): physical → logical, so user code
//     that indexes by Message.Src keeps working. A message from an
//     endpoint that no longer carries any logical rank surfaces Src=-1 —
//     stale traffic from before a remap, visible rather than misdelivered.
//
// Remap invalidation comes for free from layering: Reliable's go-back-N
// link state and Chaos's kill records are keyed by *physical* endpoint,
// so abandoning an endpoint abandons exactly that state, and the fresh
// endpoint starts with clean links underneath whatever logical rank now
// maps to it.
//
// Size() is the logical rank count and changes across epochs; Capacity()
// is the fixed physical endpoint count of the inner transport. Layers
// that preallocate per-rank structures size them at Capacity() so grow
// never reallocates (see the worlds in internal/mpi and internal/shmem).
type Virtual struct {
	inner Transport
	tab   *EpochTable
}

// CapacityOf returns how many per-rank slots a world built over tr
// should preallocate: the physical capacity for an elastic transport —
// so Grow never reallocates handle or symmetric-instance arrays mid-run
// (reallocation would invalidate interior pointers, e.g. sync.Cond
// references into a mutex array) — else just Size().
func CapacityOf(tr Transport) int {
	if c, ok := tr.(interface{ Capacity() int }); ok {
		return c.Capacity()
	}
	return tr.Size()
}

// NewVirtual wraps inner with logical-rank indirection through tab. The
// table's capacity must not exceed the inner transport's endpoint count.
func NewVirtual(inner Transport, tab *EpochTable) *Virtual {
	if tab.Capacity() > inner.Size() {
		panic(fmt.Sprintf("fabric: epoch table capacity %d exceeds transport size %d",
			tab.Capacity(), inner.Size()))
	}
	return &Virtual{inner: inner, tab: tab}
}

// Table returns the epoch table driving the indirection.
func (v *Virtual) Table() *EpochTable { return v.tab }

// Epoch returns the table's generation counter. fabric.Coll and the
// library worlds use it to re-resolve cached membership lazily at the
// next collective after a remap or resize.
func (v *Virtual) Epoch() uint64 { return v.tab.Epoch() }

// Capacity returns the physical endpoint count of the inner transport's
// slice this Virtual may ever address.
func (v *Virtual) Capacity() int { return v.tab.Capacity() }

// Size returns the current *logical* rank count.
func (v *Virtual) Size() int { return v.tab.Ranks() }

// Cost returns the inner transport's cost model.
func (v *Virtual) Cost() CostModel { return v.inner.Cost() }

// phys resolves a logical rank, passing wildcards through untouched.
func (v *Virtual) phys(logical int) int {
	if logical == AnySource {
		return AnySource
	}
	return v.tab.Endpoint(logical)
}

// logicalize rewrites a delivered message's endpoints back to logical
// ranks.
func (v *Virtual) logicalize(m Message) Message {
	m.Src = v.tab.Logical(m.Src)
	m.Dst = v.tab.Logical(m.Dst)
	return m
}

func (v *Virtual) Send(src, dst, tag int, data []byte) {
	v.inner.Send(v.phys(src), v.phys(dst), tag, data)
}

func (v *Virtual) Recv(dst, src, tag int) Message {
	return v.logicalize(v.inner.Recv(v.phys(dst), v.phys(src), tag))
}

func (v *Virtual) RecvAsync(dst, src, tag int, fn func(Message)) {
	v.inner.RecvAsync(v.phys(dst), v.phys(src), tag, func(m Message) {
		fn(v.logicalize(m))
	})
}

func (v *Virtual) TryRecv(dst, src, tag int) (Message, bool) {
	m, ok := v.inner.TryRecv(v.phys(dst), v.phys(src), tag)
	if !ok {
		return Message{}, false
	}
	return v.logicalize(m), true
}

func (v *Virtual) Probe(dst, src, tag int) (Message, bool) {
	m, ok := v.inner.Probe(v.phys(dst), v.phys(src), tag)
	if !ok {
		return Message{}, false
	}
	return v.logicalize(m), true
}

func (v *Virtual) Put(src, dst, bytes int, apply, onDone func()) {
	v.inner.Put(v.phys(src), v.phys(dst), bytes, apply, onDone)
}

func (v *Virtual) Get(src, dst, bytes int, apply, onDone func()) {
	v.inner.Get(v.phys(src), v.phys(dst), bytes, apply, onDone)
}

func (v *Virtual) AllocTags(n int) int { return v.inner.AllocTags(n) }

func (v *Virtual) SetTracer(tr *trace.Tracer) { v.inner.SetTracer(tr) }

func (v *Virtual) Stats() (msgs, bytes int64) { return v.inner.Stats() }
