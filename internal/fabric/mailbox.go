package fabric

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// recvReq is a posted receive awaiting a matching message.
type recvReq struct {
	src, tag int
	deliver  func(Message) // invoked exactly once, outside the mailbox lock
}

func (r *recvReq) matches(m Message) bool {
	return (r.src == AnySource || r.src == m.Src) && (r.tag == AnyTag || r.tag == m.Tag)
}

// spinLock is a minimal CAS lock for the mailbox's tens-of-nanosecond
// critical sections: acquire and release are one uncontended atomic
// each, roughly halving what a sync.Mutex pair costs on the delivery
// hot path. Contention yields to the scheduler instead of spinning hot,
// so a holder preempted mid-section cannot starve its waiters.
type spinLock struct{ v atomic.Int32 }

func (l *spinLock) lock() {
	for !l.v.CompareAndSwap(0, 1) {
		runtime.Gosched()
	}
}

func (l *spinLock) unlock() { l.v.Store(0) }

// mailbox holds one rank's undelivered messages and posted receives.
// Matching follows MPI rules: messages from one (src, tag) pair are matched
// in arrival order against receives in post order.
//
// Both queues are head-indexed rings: pops advance a head index instead
// of re-slicing (which would keep popped Messages — and their payloads —
// reachable through the backing array), and middle removals shift the
// short prefix up rather than the arbitrarily long suffix down.
type mailbox struct {
	mu      spinLock
	msgs    []Message
	msgHead int
	reqs    []*recvReq
	reqHead int

	// size mirrors len(msgs)-msgHead (maintained under mu, read without
	// it). recvBlocking's poll loop uses it as a lock-free gate: when it
	// reads zero there is nothing a scan could match, so the loop skips
	// the lock entirely. The gate is only a heuristic — a stale read
	// costs one extra poll round at worst, and the blocking fallback
	// re-scans under the lock, so no arrival can be missed for good.
	size atomic.Int32
}

// removeMsg deletes msgs[i] (i >= msgHead) preserving order, by shifting
// the prefix right one slot and advancing the head. The vacated slot is
// zeroed so the popped payload is collectable.
func (b *mailbox) removeMsg(i int) Message {
	m := b.msgs[i]
	copy(b.msgs[b.msgHead+1:i+1], b.msgs[b.msgHead:i])
	// Only Data retains anything; nilling just the pointer keeps the
	// write-barrier work off the scalar fields.
	b.msgs[b.msgHead].Data = nil
	b.msgHead++
	b.size.Add(-1)
	if b.msgHead == len(b.msgs) {
		b.msgs = b.msgs[:0]
		b.msgHead = 0
	}
	return m
}

// removeReq deletes reqs[i] (i >= reqHead) preserving order.
func (b *mailbox) removeReq(i int) *recvReq {
	r := b.reqs[i]
	copy(b.reqs[b.reqHead+1:i+1], b.reqs[b.reqHead:i])
	b.reqs[b.reqHead] = nil
	b.reqHead++
	if b.reqHead == len(b.reqs) {
		b.reqs = b.reqs[:0]
		b.reqHead = 0
	}
	return r
}

// pushMsg appends m, sliding live entries down first if the ring's dead
// prefix would otherwise force the backing array to grow.
func (b *mailbox) pushMsg(m Message) {
	if b.msgHead > 0 && len(b.msgs) == cap(b.msgs) {
		n := copy(b.msgs, b.msgs[b.msgHead:])
		tail := b.msgs[n:]
		for i := range tail {
			tail[i] = Message{}
		}
		b.msgs = b.msgs[:n]
		b.msgHead = 0
	}
	b.msgs = append(b.msgs, m)
}

// pushReq appends r, compacting like pushMsg.
func (b *mailbox) pushReq(r *recvReq) {
	if b.reqHead > 0 && len(b.reqs) == cap(b.reqs) {
		n := copy(b.reqs, b.reqs[b.reqHead:])
		tail := b.reqs[n:]
		for i := range tail {
			tail[i] = nil
		}
		b.reqs = b.reqs[:n]
		b.reqHead = 0
	}
	b.reqs = append(b.reqs, r)
}

// deliver matches m against posted receives or queues it.
func (b *mailbox) deliver(m Message) {
	b.mu.lock()
	for i := b.reqHead; i < len(b.reqs); i++ {
		if b.reqs[i].matches(m) {
			r := b.removeReq(i)
			b.mu.unlock()
			r.deliver(m)
			return
		}
	}
	b.pushMsg(m)
	b.size.Add(1)
	b.mu.unlock()
}

// post matches a receive against queued messages or queues it.
func (b *mailbox) post(r *recvReq) {
	b.mu.lock()
	for i := b.msgHead; i < len(b.msgs); i++ {
		if r.matches(b.msgs[i]) {
			m := b.removeMsg(i)
			b.mu.unlock()
			r.deliver(m)
			return
		}
	}
	b.pushReq(r)
	b.mu.unlock()
}

// take removes and returns a matching queued message, if any.
func (b *mailbox) take(src, tag int) (Message, bool) {
	r := recvReq{src: src, tag: tag}
	b.mu.lock()
	defer b.mu.unlock()
	for i := b.msgHead; i < len(b.msgs); i++ {
		if r.matches(b.msgs[i]) {
			return b.removeMsg(i), true
		}
	}
	return Message{}, false
}

// probe reports whether a matching message is queued, without removing it.
func (b *mailbox) probe(src, tag int) (Message, bool) {
	r := recvReq{src: src, tag: tag}
	b.mu.lock()
	defer b.mu.unlock()
	for i := b.msgHead; i < len(b.msgs); i++ {
		if r.matches(b.msgs[i]) {
			return b.msgs[i], true
		}
	}
	return Message{}, false
}

// recvWaiter is a pooled one-shot rendezvous for blocking receives: the
// request, the channel, and the delivery closure are built once and
// reused, so a ping-pong loop allocates nothing per Recv. Reuse is safe
// because the mailbox unlinks a request before invoking deliver, and
// deliver's channel send is its final touch of the waiter — once the
// receiver has the message, nothing else references it.
type recvWaiter struct {
	ch  chan Message
	req recvReq
}

var waiterPool = sync.Pool{New: func() any {
	w := &recvWaiter{ch: make(chan Message, 1)}
	w.req.deliver = func(m Message) { w.ch <- m }
	return w
}}

// recvSpinRounds bounds the poll-and-yield fast path recvBlocking tries
// before parking on a waiter channel. For rendezvous patterns on the
// zero-cost path (ping-pong, tight request/reply loops) the peer's
// message lands in the mailbox within a scheduler yield, so the steady
// state never pays a park/unpark; when the match is genuinely far away
// (a modelled network delay), the loop gives up after a few cheap
// rounds and blocks as before.
const recvSpinRounds = 4

// recvBlocking posts a (src, tag) receive and blocks until it matches.
//
// The initial take-poll is linearizable as an immediate post-and-match:
// the mailbox maintains the invariant that queued messages and queued
// requests never match each other (deliver and post each cross-check
// the opposite queue before queueing), so any message take finds is one
// no earlier-posted receive was waiting for, and take consumes the
// first match from the head exactly as post would.
func (b *mailbox) recvBlocking(src, tag int) Message {
	for i := 0; ; i++ {
		// The size gate keeps the empty-mailbox rounds lock-free: a
		// match delivered while we poll is always an enqueue (our
		// request is not posted yet, so deliver cannot hand it to us
		// directly), and every enqueue raises size.
		if b.size.Load() > 0 {
			if m, ok := b.take(src, tag); ok {
				return m
			}
		}
		if i == recvSpinRounds {
			break
		}
		runtime.Gosched()
	}
	w := waiterPool.Get().(*recvWaiter)
	w.req.src, w.req.tag = src, tag
	b.post(&w.req)
	m := <-w.ch
	waiterPool.Put(w)
	return m
}
