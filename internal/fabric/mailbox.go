package fabric

import "sync"

// recvReq is a posted receive awaiting a matching message.
type recvReq struct {
	src, tag int
	deliver  func(Message) // invoked exactly once, outside the mailbox lock
}

func (r *recvReq) matches(m Message) bool {
	return (r.src == AnySource || r.src == m.Src) && (r.tag == AnyTag || r.tag == m.Tag)
}

// mailbox holds one rank's undelivered messages and posted receives.
// Matching follows MPI rules: messages from one (src, tag) pair are matched
// in arrival order against receives in post order.
type mailbox struct {
	mu   sync.Mutex
	msgs []Message
	reqs []*recvReq
}

// deliver matches m against posted receives or queues it.
func (b *mailbox) deliver(m Message) {
	b.mu.Lock()
	for i, r := range b.reqs {
		if r.matches(m) {
			b.reqs = append(b.reqs[:i], b.reqs[i+1:]...)
			b.mu.Unlock()
			r.deliver(m)
			return
		}
	}
	b.msgs = append(b.msgs, m)
	b.mu.Unlock()
}

// post matches a receive against queued messages or queues it.
func (b *mailbox) post(r *recvReq) {
	b.mu.Lock()
	for i, m := range b.msgs {
		if r.matches(m) {
			b.msgs = append(b.msgs[:i], b.msgs[i+1:]...)
			b.mu.Unlock()
			r.deliver(m)
			return
		}
	}
	b.reqs = append(b.reqs, r)
	b.mu.Unlock()
}

// take removes and returns a matching queued message, if any.
func (b *mailbox) take(src, tag int) (Message, bool) {
	r := recvReq{src: src, tag: tag}
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, m := range b.msgs {
		if r.matches(m) {
			b.msgs = append(b.msgs[:i], b.msgs[i+1:]...)
			return m, true
		}
	}
	return Message{}, false
}

// probe reports whether a matching message is queued, without removing it.
func (b *mailbox) probe(src, tag int) (Message, bool) {
	r := recvReq{src: src, tag: tag}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, m := range b.msgs {
		if r.matches(m) {
			return m, true
		}
	}
	return Message{}, false
}
