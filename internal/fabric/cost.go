package fabric

import "time"

// CostModel parameterizes simulated communication timing. The zero value
// is a zero-cost network with synchronous in-line delivery — deterministic
// and fast, ideal for unit tests.
type CostModel struct {
	// Alpha is the fixed per-message latency.
	Alpha time.Duration
	// BytesPerSec is the link bandwidth; zero means infinite.
	BytesPerSec float64
	// CongestWindow is how many in-flight messages a destination absorbs
	// at full speed; beyond it transfers pay a queueing penalty that
	// grows with the backlog. Zero disables congestion modelling.
	CongestWindow int
	// CongestPenalty is the extra delay per full *window* of excess
	// in-flight messages: a transfer that finds the destination
	// oversubscribed by k messages is delayed k/CongestWindow penalty
	// units. Normalizing by the window models a destination that drains
	// one window's worth of backlog per penalty period — a NIC that
	// absorbs its credit window per service cycle — instead of one
	// message per period, which made a single sender's pipelined burst
	// as expensive as a deep incast. With CongestWindow == 1 the two
	// formulations coincide.
	CongestPenalty time.Duration

	// RanksPerNode groups consecutive ranks onto "nodes": traffic between
	// ranks of the same node uses the (cheap) local parameters and is
	// exempt from congestion, like shared-memory transports in real
	// communication runtimes. Zero means every rank is its own node.
	RanksPerNode int
	// LocalAlpha is the fixed latency for same-node messages.
	LocalAlpha time.Duration
	// LocalBytesPerSec is the same-node bandwidth; zero means infinite.
	LocalBytesPerSec float64
}

// SameNode reports whether two ranks share a node under this model.
func (c CostModel) SameNode(a, b int) bool {
	if a == b {
		return true
	}
	return c.RanksPerNode > 1 && a/c.RanksPerNode == b/c.RanksPerNode
}

// DelayBetween computes the transfer delay from src to dst for a message
// of the given size, honouring node locality.
func (c CostModel) DelayBetween(src, dst, bytes int) time.Duration {
	if c.SameNode(src, dst) {
		d := c.LocalAlpha
		if c.LocalBytesPerSec > 0 {
			d += time.Duration(float64(bytes) / c.LocalBytesPerSec * float64(time.Second))
		}
		return d
	}
	return c.Delay(bytes)
}

// Delay computes the base transfer delay for a message of the given size
// (excluding congestion, which depends on instantaneous load).
func (c CostModel) Delay(bytes int) time.Duration {
	d := c.Alpha
	if c.BytesPerSec > 0 {
		d += time.Duration(float64(bytes) / c.BytesPerSec * float64(time.Second))
	}
	return d
}

// CongestDelay returns the queueing penalty for a transfer that finds
// `inflight` messages (itself included) bound for its destination: one
// CongestPenalty per full window of excess backlog, pro-rated. Zero when
// the destination is within its window.
func (c CostModel) CongestDelay(inflight int64) time.Duration {
	excess := inflight - int64(c.CongestWindow)
	if excess <= 0 || c.CongestWindow <= 0 {
		return 0
	}
	return time.Duration(float64(excess) / float64(c.CongestWindow) * float64(c.CongestPenalty))
}

// Zero reports whether the model is free (messages deliver inline).
func (c CostModel) Zero() bool {
	return c.Alpha == 0 && c.BytesPerSec == 0 && c.CongestWindow == 0
}
