package fabric

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// meterStripes is the number of counter stripes in a meter. Power of two
// so striping is a mask, sized so that worlds with many concurrently
// sending ranks spread their accounting over many cache lines.
const meterStripes = 32

// meterStripe is one cache line of transfer counters. The padding keeps
// adjacent stripes from false-sharing: at 10k ranks every rank bumps a
// counter per send, and a single shared pair of atomics becomes the
// hottest line in the process.
//
// Message count and payload bytes share one packed word so the hot path
// is a single atomic add: the count lives above meterBytesBits, bytes
// below. The split supports 16 TiB of cumulative modelled payload and
// one million billion messages per stripe before either field saturates
// — far beyond any simulated workload's lifetime.
type meterStripe struct {
	packed atomic.Int64
	_      [56]byte
}

// meterBytesBits is the width of the byte-count field in a stripe.
const meterBytesBits = 44

// meter is the shared accounting/observability state of a transport:
// cumulative transfer counts (striped by source rank) and the attached
// tracer. Embedded by both backends so every implementation reports
// uniformly.
type meter struct {
	stripes [meterStripes]meterStripe
	tracer  atomic.Pointer[trace.Tracer]
}

// count records one transfer issued by src.
func (m *meter) count(src, bytes int) {
	m.stripes[uint(src)&(meterStripes-1)].packed.Add(1<<meterBytesBits | int64(bytes))
}

// SetTracer implements Transport. The tracer's external ring records one
// EvMsgSend per transfer issued and one EvMsgRecv per delivery.
func (m *meter) SetTracer(tr *trace.Tracer) { m.tracer.Store(tr) }

// Stats implements Transport.
func (m *meter) Stats() (msgs, bytes int64) {
	for i := range m.stripes {
		v := m.stripes[i].packed.Load()
		msgs += v >> meterBytesBits
		bytes += v & (1<<meterBytesBits - 1)
	}
	return msgs, bytes
}

// traceMsg records a message event: Task packs src<<32|dst, Arg is bytes.
func (m *meter) traceMsg(k trace.Kind, src, dst, bytes int) {
	if tr := m.tracer.Load(); tr != nil && tr.Enabled() {
		tr.RecordExternal(k, trace.NoPlace, uint64(uint32(src))<<32|uint64(uint32(dst)), uint64(bytes))
	}
}

// tagSpace allocates disjoint blocks of reserved (negative) tags.
type tagSpace struct {
	next atomic.Int64
}

// AllocTags implements Transport: blocks grow downward from -2 (below
// AnyTag) so reserved traffic never collides with user tags or with
// other allocations.
func (a *tagSpace) AllocTags(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("fabric: AllocTags(%d): block size must be positive", n))
	}
	end := a.next.Add(int64(n))
	return -int(end-int64(n)) - 2
}

// Link-drain states. A link is idle (empty queue, unknown to the
// poller), queued (sitting in the poller heap keyed by its head arrival),
// or draining (exactly one poller worker is landing its due transfers).
// The three-state machine is what guarantees a single drainer per link —
// the FIFO invariant — without a goroutine per link.
const (
	linkIdle = iota
	linkQueued
	linkDraining
)

// pairLink serializes deliveries for one (src, dst) pair so that per-pair
// FIFO ordering — an MPI guarantee, and the visibility order SHMEM codes
// lean on — holds even under the latency model. Transfers pipeline: a
// transfer's arrival time is max(previous arrival, issue time + delay),
// matching a network that keeps packets in order while overlapping
// transfers. Links are created lazily on first use, so a 10k-rank world
// only pays for the pairs that actually talk.
type pairLink struct {
	mu            sync.Mutex
	q             []scheduled // ring: live entries are q[head:]
	head          int
	state         int32
	lastArrivalNs int64
	src, dst      int32

	// nextNs is the arrival deadline the poller heap orders this link
	// by. It is written only on the idle→queued transition (before the
	// link is pushed) and read by heap operations; per-link arrival
	// monotonicity means it never needs to decrease while queued.
	nextNs int64
}

// Transfer kinds: a two-sided message delivering into a mailbox, or a
// one-sided RMA running its apply callback.
const (
	kindMsg = iota
	kindRMA
)

// scheduled is one in-flight transfer: an arrival deadline plus the
// effect to run when it lands. Two-sided sends carry their Message
// directly (no per-send closure); one-sided RMA carries apply/onDone.
// Both go through the same queue, which is what makes congestion and
// ordering apply across modules sharing the fabric.
type scheduled struct {
	apply     func() // kindRMA: the arrival effect (remote store / fetch)
	onDone    func() // completion callback, after delivery and accounting
	msg       Message
	arrivalNs int64
	bytes     int
	kind      uint8
	congested bool // holds a slot in inflight[dst] until delivery
}

// linkShards is the fixed shard count of the lazy link table. Power of
// two; 128 shards keep lock contention negligible even with thousands of
// ranks hashing (src,dst) pairs concurrently.
const linkShards = 128

// linkShard is one lock-protected slice of the link table.
type linkShard struct {
	mu    sync.Mutex
	links map[uint64]*pairLink
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed hash for
// spreading (src,dst) keys over shards.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// padded is an atomic counter alone on its cache line. inflight[dst] is
// bumped by every sender targeting dst; without padding, neighbouring
// destinations' counters share lines and incast benchmarks measure cache
// bouncing instead of the model.
type padded struct {
	v atomic.Int64
	_ [56]byte
}

// Sim is the cost-modeled interconnect backend: latency, bandwidth,
// per-destination congestion, and node locality per CostModel. It
// substitutes for the Cray Aries network plus vendor communication
// runtimes used in the paper's evaluation. With a zero CostModel it
// delivers inline (deterministic, no goroutines), so it doubles as the
// default transport for unit-test worlds.
//
// The delivery engine is built to scale to 10⁴ ranks: links are created
// lazily in a sharded table (not an O(n²) array), and arrivals are landed
// by a small fixed pool of poller goroutines multiplexed over a min-heap
// of link deadlines (not a goroutine per active pair).
type Sim struct {
	meter
	tagSpace
	n        int
	cost     CostModel
	zero     bool
	base     time.Time // epoch for monotonic int64-ns arrival arithmetic
	boxes    []mailbox
	shards   [linkShards]linkShard
	inflight []padded // per destination, shared by every world on this fabric
	poll     poller
	payloads byteArena // batches Send's payload snapshots
}

var _ Transport = (*Sim)(nil)

// NewSim creates a simulated interconnect with n endpoints and the given
// cost model.
func NewSim(n int, cost CostModel) *Sim {
	if n <= 0 {
		panic(fmt.Sprintf("fabric: transport needs at least 1 rank, got %d", n))
	}
	f := &Sim{n: n, cost: cost, zero: cost.Zero(), base: time.Now()}
	f.boxes = make([]mailbox, n)
	if cost.CongestWindow > 0 {
		f.inflight = make([]padded, n)
	}
	f.poll.init()
	return f
}

// nowNs is the simulator clock: nanoseconds since the fabric's epoch, on
// the runtime's monotonic clock. Keeping arrivals as int64 makes heap
// comparisons and pipelining arithmetic branch-free and allocation-free.
func (f *Sim) nowNs() int64 { return int64(time.Since(f.base)) }

// Size implements Transport.
func (f *Sim) Size() int { return f.n }

// Cost implements Transport.
func (f *Sim) Cost() CostModel { return f.cost }

// PollerCap reports the maximum number of poller goroutines this fabric
// will ever run. The data plane's goroutine budget is O(PollerCap), not
// O(active pairs).
func (f *Sim) PollerCap() int { return f.poll.maxWorkers }

// checkRank panics on out-of-range ranks (programming error).
func (f *Sim) checkRank(r int) {
	if r < 0 || r >= f.n {
		panic(fmt.Sprintf("fabric: rank %d out of range [0,%d)", r, f.n))
	}
}

// checkRank2 folds the common two-rank validation into one branch on
// the hot path; the slow path re-runs checkRank for the exact message.
func (f *Sim) checkRank2(a, b int) {
	if uint(a) >= uint(f.n) || uint(b) >= uint(f.n) {
		f.checkRank(a)
		f.checkRank(b)
	}
}

// link returns the pairLink for (src, dst), creating it on first use.
func (f *Sim) link(src, dst int) *pairLink {
	key := uint64(uint32(src))<<32 | uint64(uint32(dst))
	sh := &f.shards[splitmix64(key)&(linkShards-1)]
	sh.mu.Lock()
	l := sh.links[key]
	if l == nil {
		if sh.links == nil {
			sh.links = make(map[uint64]*pairLink)
		}
		l = &pairLink{src: int32(src), dst: int32(dst)}
		sh.links[key] = l
	}
	sh.mu.Unlock()
	return l
}

// schedule queues one costed transfer of `bytes` from src to dst. This is
// the single funnel for every non-zero-cost operation — Send, Put, Get —
// so congestion accounting, FIFO pipelining, statistics, and trace events
// stay uniform. The caller has already recorded count + EvMsgSend.
func (f *Sim) schedule(src, dst, bytes int, s scheduled) {
	delay := f.cost.DelayBetween(src, dst, bytes)
	if f.cost.CongestWindow > 0 && !f.cost.SameNode(src, dst) {
		s.congested = true
		delay += f.cost.CongestDelay(f.inflight[dst].v.Add(1))
	}
	s.bytes = bytes

	l := f.link(src, dst)
	l.mu.Lock()
	arrival := f.nowNs() + int64(delay)
	if arrival < l.lastArrivalNs {
		arrival = l.lastArrivalNs
	}
	l.lastArrivalNs = arrival
	s.arrivalNs = arrival
	if l.head > 0 && len(l.q) == cap(l.q) {
		// Slide live entries down instead of growing: keeps the ring's
		// backing array bounded by the peak number of in-flight
		// transfers on this link.
		n := copy(l.q, l.q[l.head:])
		clearTail := l.q[n:]
		for i := range clearTail {
			clearTail[i] = scheduled{}
		}
		l.q = l.q[:n]
		l.head = 0
	}
	l.q = append(l.q, s)
	enqueue := l.state == linkIdle
	if enqueue {
		l.state = linkQueued
		l.nextNs = arrival // queue was empty: the new entry is the head
	}
	l.mu.Unlock()
	if enqueue {
		f.poll.enqueue(f, l, arrival)
	}
}

// deliverOne lands one transfer: arrival effect, recv trace event,
// congestion release, completion callback. Runs with no locks held —
// callbacks are allowed to re-enter the transport (Reliable's ack path
// does exactly that).
func (f *Sim) deliverOne(l *pairLink, s *scheduled) {
	if s.kind == kindMsg {
		f.boxes[l.dst].deliver(s.msg)
	} else if s.apply != nil {
		s.apply()
	}
	f.traceMsg(trace.EvMsgRecv, int(l.src), int(l.dst), s.bytes)
	if s.congested {
		f.inflight[l.dst].v.Add(-1)
	}
	if s.onDone != nil {
		s.onDone()
	}
}

// drain lands l's due transfers in FIFO order, then either returns the
// link to idle (queue empty) or re-queues it in the poller heap keyed by
// the next head arrival. Exactly one worker runs drain for a given link
// at a time (state machine: the poller popped it in linkQueued state).
func (f *Sim) drain(l *pairLink) {
	for {
		l.mu.Lock()
		l.state = linkDraining
		if l.head == len(l.q) {
			l.q = l.q[:0]
			l.head = 0
			l.state = linkIdle
			l.mu.Unlock()
			return
		}
		s := l.q[l.head]
		if s.arrivalNs > f.nowNs() {
			l.state = linkQueued
			l.nextNs = s.arrivalNs
			l.mu.Unlock()
			f.poll.enqueue(f, l, s.arrivalNs)
			return
		}
		// Zero the popped slot so landed transfers (and their callback
		// captures) don't stay reachable through the ring's backing
		// array.
		l.q[l.head] = scheduled{}
		l.head++
		l.mu.Unlock()
		f.deliverOne(l, &s)
	}
}

// Send implements Transport: eager two-sided send (the buffer is copied
// before Send returns).
func (f *Sim) Send(src, dst, tag int, data []byte) {
	f.checkRank2(src, dst)
	n := len(data)
	buf := f.payloads.alloc(n)
	copy(buf, data)
	m := Message{Src: src, Dst: dst, Tag: tag, Data: buf}
	f.count(src, n)
	if f.zero {
		// One tracer load covers both events on the hot path.
		if tr := f.tracer.Load(); tr != nil && tr.Enabled() {
			key := uint64(uint32(src))<<32 | uint64(uint32(dst))
			tr.RecordExternal(trace.EvMsgSend, trace.NoPlace, key, uint64(n))
			f.boxes[dst].deliver(m)
			tr.RecordExternal(trace.EvMsgRecv, trace.NoPlace, key, uint64(n))
			return
		}
		f.boxes[dst].deliver(m)
		return
	}
	f.traceMsg(trace.EvMsgSend, src, dst, n)
	f.schedule(src, dst, n, scheduled{kind: kindMsg, msg: m})
}

// Put implements Transport: one-sided transfer of `bytes`, apply at
// arrival, onDone after.
func (f *Sim) Put(src, dst, bytes int, apply, onDone func()) {
	f.checkRank2(src, dst)
	f.rma(src, dst, bytes, apply, onDone)
}

// Get implements Transport: one-sided round trip fetching `bytes` from
// dst, charged as a single delivery on the src→dst link (request plus
// returning payload as one modelled delay, congesting the data's owner).
func (f *Sim) Get(src, dst, bytes int, apply, onDone func()) {
	f.checkRank2(src, dst)
	f.rma(src, dst, bytes, apply, onDone)
}

// rma is the shared one-sided path.
func (f *Sim) rma(src, dst, bytes int, apply, onDone func()) {
	f.count(src, bytes)
	f.traceMsg(trace.EvMsgSend, src, dst, bytes)
	if f.zero {
		if apply != nil {
			apply()
		}
		f.traceMsg(trace.EvMsgRecv, src, dst, bytes)
		if onDone != nil {
			onDone()
		}
		return
	}
	f.schedule(src, dst, bytes, scheduled{kind: kindRMA, apply: apply, onDone: onDone})
}

// Recv implements Transport: blocks until a matching message arrives.
func (f *Sim) Recv(dst, src, tag int) Message {
	f.checkRank(dst)
	return f.boxes[dst].recvBlocking(src, tag)
}

// RecvAsync implements Transport.
func (f *Sim) RecvAsync(dst, src, tag int, fn func(Message)) {
	f.checkRank(dst)
	f.boxes[dst].post(&recvReq{src: src, tag: tag, deliver: fn})
}

// TryRecv implements Transport.
func (f *Sim) TryRecv(dst, src, tag int) (Message, bool) {
	f.checkRank(dst)
	return f.boxes[dst].take(src, tag)
}

// Probe implements Transport.
func (f *Sim) Probe(dst, src, tag int) (Message, bool) {
	f.checkRank(dst)
	return f.boxes[dst].probe(src, tag)
}
