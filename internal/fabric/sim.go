package fabric

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/spin"
	"repro/internal/trace"
)

// meter is the shared accounting/observability state of a transport:
// cumulative transfer counts and the attached tracer. Embedded by both
// backends so every implementation reports uniformly.
type meter struct {
	sent      atomic.Int64
	sentBytes atomic.Int64
	tracer    atomic.Pointer[trace.Tracer]
}

// SetTracer implements Transport. The tracer's external ring records one
// EvMsgSend per transfer issued and one EvMsgRecv per delivery.
func (m *meter) SetTracer(tr *trace.Tracer) { m.tracer.Store(tr) }

// Stats implements Transport.
func (m *meter) Stats() (msgs, bytes int64) {
	return m.sent.Load(), m.sentBytes.Load()
}

// traceMsg records a message event: Task packs src<<32|dst, Arg is bytes.
func (m *meter) traceMsg(k trace.Kind, src, dst, bytes int) {
	if tr := m.tracer.Load(); tr != nil && tr.Enabled() {
		tr.RecordExternal(k, trace.NoPlace, uint64(uint32(src))<<32|uint64(uint32(dst)), uint64(bytes))
	}
}

// tagSpace allocates disjoint blocks of reserved (negative) tags.
type tagSpace struct {
	next atomic.Int64
}

// AllocTags implements Transport: blocks grow downward from -2 (below
// AnyTag) so reserved traffic never collides with user tags or with
// other allocations.
func (a *tagSpace) AllocTags(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("fabric: AllocTags(%d): block size must be positive", n))
	}
	end := a.next.Add(int64(n))
	return -int(end-int64(n)) - 2
}

// pairLink serializes deliveries for one (src, dst) pair so that per-pair
// FIFO ordering — an MPI guarantee, and the visibility order SHMEM codes
// lean on — holds even under the latency model. Transfers pipeline: a
// transfer's arrival time is max(previous arrival, issue time + delay),
// matching a network that keeps packets in order while overlapping
// transfers.
type pairLink struct {
	mu          sync.Mutex
	q           []scheduled
	running     bool
	lastArrival time.Time
}

// scheduled is one in-flight transfer: an arrival deadline plus the
// closures to run when it lands. Two-sided sends and one-sided RMA go
// through the same queue, which is what makes congestion and ordering
// apply across modules sharing the fabric.
type scheduled struct {
	deliver   func() // the arrival effect (mailbox delivery, remote store)
	onDone    func() // completion callback, after deliver and accounting
	arrival   time.Time
	src, dst  int
	bytes     int
	congested bool // holds a slot in inflight[dst] until delivery
}

// Sim is the cost-modeled interconnect backend: latency, bandwidth,
// per-destination congestion, and node locality per CostModel. It
// substitutes for the Cray Aries network plus vendor communication
// runtimes used in the paper's evaluation. With a zero CostModel it
// delivers inline (deterministic, no goroutines), so it doubles as the
// default transport for unit-test worlds.
type Sim struct {
	meter
	tagSpace
	n        int
	cost     CostModel
	boxes    []*mailbox
	links    []pairLink     // [src*n+dst]
	inflight []atomic.Int64 // per destination, shared by every world on this fabric
}

var _ Transport = (*Sim)(nil)

// NewSim creates a simulated interconnect with n endpoints and the given
// cost model.
func NewSim(n int, cost CostModel) *Sim {
	if n <= 0 {
		panic(fmt.Sprintf("fabric: transport needs at least 1 rank, got %d", n))
	}
	f := &Sim{n: n, cost: cost}
	f.boxes = make([]*mailbox, n)
	for i := range f.boxes {
		f.boxes[i] = &mailbox{}
	}
	f.links = make([]pairLink, n*n)
	f.inflight = make([]atomic.Int64, n)
	return f
}

// Size implements Transport.
func (f *Sim) Size() int { return f.n }

// Cost implements Transport.
func (f *Sim) Cost() CostModel { return f.cost }

// checkRank panics on out-of-range ranks (programming error).
func (f *Sim) checkRank(r int) {
	if r < 0 || r >= f.n {
		panic(fmt.Sprintf("fabric: rank %d out of range [0,%d)", r, f.n))
	}
}

// transmit schedules one transfer of `bytes` from src to dst: deliver
// runs at arrival, onDone directly after. This is the single path every
// operation — Send, Put, Get — funnels through, so congestion
// accounting, FIFO pipelining, statistics, and trace events are uniform.
func (f *Sim) transmit(src, dst, bytes int, deliver, onDone func()) {
	f.sent.Add(1)
	f.sentBytes.Add(int64(bytes))
	f.traceMsg(trace.EvMsgSend, src, dst, bytes)
	if f.cost.Zero() {
		if deliver != nil {
			deliver()
		}
		f.traceMsg(trace.EvMsgRecv, src, dst, bytes)
		if onDone != nil {
			onDone()
		}
		return
	}
	delay := f.cost.DelayBetween(src, dst, bytes)
	congest := f.cost.CongestWindow > 0 && !f.cost.SameNode(src, dst)
	if congest {
		excess := f.inflight[dst].Add(1) - int64(f.cost.CongestWindow)
		if excess > 0 {
			delay += time.Duration(excess) * f.cost.CongestPenalty
		}
	}
	link := &f.links[src*f.n+dst]
	link.mu.Lock()
	arrival := time.Now().Add(delay)
	if arrival.Before(link.lastArrival) {
		arrival = link.lastArrival
	}
	link.lastArrival = arrival
	link.q = append(link.q, scheduled{
		deliver: deliver, onDone: onDone, arrival: arrival,
		src: src, dst: dst, bytes: bytes, congested: congest,
	})
	if !link.running {
		link.running = true
		go f.drainLink(link, dst)
	}
	link.mu.Unlock()
}

// drainLink lands one pair's transfers in order at their arrival times.
func (f *Sim) drainLink(link *pairLink, dst int) {
	for {
		link.mu.Lock()
		if len(link.q) == 0 {
			link.running = false
			link.mu.Unlock()
			return
		}
		sm := link.q[0]
		link.q = link.q[1:]
		link.mu.Unlock()

		spin.Until(sm.arrival)
		if sm.deliver != nil {
			sm.deliver()
		}
		f.traceMsg(trace.EvMsgRecv, sm.src, dst, sm.bytes)
		if sm.congested {
			f.inflight[dst].Add(-1)
		}
		if sm.onDone != nil {
			sm.onDone()
		}
	}
}

// Send implements Transport: eager two-sided send (the buffer is copied
// before Send returns).
func (f *Sim) Send(src, dst, tag int, data []byte) {
	f.checkRank(src)
	f.checkRank(dst)
	buf := make([]byte, len(data))
	copy(buf, data)
	m := Message{Src: src, Dst: dst, Tag: tag, Data: buf}
	f.transmit(src, dst, len(data), func() { f.boxes[dst].deliver(m) }, nil)
}

// Put implements Transport: one-sided transfer of `bytes`, apply at
// arrival, onDone after.
func (f *Sim) Put(src, dst, bytes int, apply, onDone func()) {
	f.checkRank(src)
	f.checkRank(dst)
	f.transmit(src, dst, bytes, apply, onDone)
}

// Get implements Transport: one-sided round trip fetching `bytes` from
// dst, charged as a single delivery on the src→dst link (request plus
// returning payload as one modelled delay, congesting the data's owner).
func (f *Sim) Get(src, dst, bytes int, apply, onDone func()) {
	f.checkRank(src)
	f.checkRank(dst)
	f.transmit(src, dst, bytes, apply, onDone)
}

// Recv implements Transport: blocks until a matching message arrives.
func (f *Sim) Recv(dst, src, tag int) Message {
	f.checkRank(dst)
	ch := make(chan Message, 1)
	f.boxes[dst].post(&recvReq{src: src, tag: tag, deliver: func(m Message) { ch <- m }})
	return <-ch
}

// RecvAsync implements Transport.
func (f *Sim) RecvAsync(dst, src, tag int, fn func(Message)) {
	f.checkRank(dst)
	f.boxes[dst].post(&recvReq{src: src, tag: tag, deliver: fn})
}

// TryRecv implements Transport.
func (f *Sim) TryRecv(dst, src, tag int) (Message, bool) {
	f.checkRank(dst)
	return f.boxes[dst].take(src, tag)
}

// Probe implements Transport.
func (f *Sim) Probe(dst, src, tag int) (Message, bool) {
	f.checkRank(dst)
	return f.boxes[dst].probe(src, tag)
}
