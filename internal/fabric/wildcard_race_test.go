package fabric

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/trace"
)

// These tests exist to run under `go test -race`: they hammer the
// wildcard matching paths (AnySource / AnyTag) of the Sim transport
// from many goroutines at once, while receive modes (RecvAsync,
// TryRecv, Probe) and tracer swaps race each other. Correctness
// assertions are deliberately coarse — exact totals and no losses —
// because the point is that the race detector sees every interleaving
// the mailbox allows.

// TestSimWildcardConcurrentTryRecv: many senders on distinct
// (src,tag) pairs against one rank, drained concurrently by several
// TryRecv(AnySource, AnyTag) pollers. Every message must be claimed
// exactly once.
func TestSimWildcardConcurrentTryRecv(t *testing.T) {
	const (
		ranks    = 4
		perLink  = 100
		drainers = 3
	)
	f := NewSim(ranks, CostModel{})

	var sent atomic.Int64
	var wgSend sync.WaitGroup
	for src := 1; src < ranks; src++ {
		wgSend.Add(1)
		go func(src int) {
			defer wgSend.Done()
			for i := 0; i < perLink; i++ {
				f.Send(src, 0, src*1000+i%7, []byte{byte(i)})
				sent.Add(1)
			}
		}(src)
	}

	var got atomic.Int64
	done := make(chan struct{})
	var wgDrain sync.WaitGroup
	for d := 0; d < drainers; d++ {
		wgDrain.Add(1)
		go func() {
			defer wgDrain.Done()
			for {
				if _, ok := f.TryRecv(0, AnySource, AnyTag); ok {
					got.Add(1)
					continue
				}
				select {
				case <-done:
					// One last sweep after senders finished.
					for {
						if _, ok := f.TryRecv(0, AnySource, AnyTag); !ok {
							return
						}
						got.Add(1)
					}
				default:
					time.Sleep(10 * time.Microsecond)
				}
			}
		}()
	}

	wgSend.Wait()
	// Senders done; wait for the pipe to drain fully before releasing
	// the drainers for their final sweep.
	deadline := time.Now().Add(10 * time.Second)
	for got.Load() < int64((ranks-1)*perLink) {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(done)
	wgDrain.Wait()

	if got.Load() != sent.Load() {
		t.Fatalf("wildcard TryRecv claimed %d of %d messages", got.Load(), sent.Load())
	}
}

// TestSimWildcardProbeRacesRecv: Probe(AnySource, AnyTag) runs
// concurrently with a competing TryRecv drainer and live senders.
// Probe must never remove a message: everything it sees is still
// claimable, and the final count balances.
func TestSimWildcardProbeRacesRecv(t *testing.T) {
	const total = 300
	f := NewSim(2, CostModel{})

	stop := make(chan struct{})
	var probes atomic.Int64
	var wgProbe sync.WaitGroup
	wgProbe.Add(1)
	go func() {
		defer wgProbe.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if m, ok := f.Probe(0, AnySource, AnyTag); ok {
				if m.Src != 1 {
					t.Errorf("probe saw impossible src %d", m.Src)
					return
				}
				probes.Add(1)
			}
		}
	}()

	go func() {
		for i := 0; i < total; i++ {
			f.Send(1, 0, i%5, []byte{byte(i)})
		}
	}()

	got := 0
	deadline := time.Now().Add(10 * time.Second)
	for got < total {
		if _, ok := f.TryRecv(0, AnySource, AnyTag); ok {
			got++
			continue
		}
		if time.Now().After(deadline) {
			t.Fatalf("drained only %d of %d with a prober racing", got, total)
		}
		time.Sleep(10 * time.Microsecond)
	}
	close(stop)
	wgProbe.Wait()
	if _, ok := f.TryRecv(0, AnySource, AnyTag); ok {
		t.Fatal("probe duplicated a message into the mailbox")
	}
}

// TestSimWildcardRecvAsyncRacesPollers: wildcard RecvAsync handlers
// compete with wildcard TryRecv pollers for the same stream while the
// tracer is swapped in and out mid-flight. Every message is consumed by
// exactly one party.
func TestSimWildcardRecvAsyncRacesPollers(t *testing.T) {
	const total = 400
	f := NewSim(3, CostModel{})

	var consumed atomic.Int64
	var rearm func(m Message)
	rearm = func(m Message) {
		consumed.Add(1)
		f.RecvAsync(0, AnySource, AnyTag, rearm)
	}
	f.RecvAsync(0, AnySource, AnyTag, rearm)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// A competing poller.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if _, ok := f.TryRecv(0, AnySource, AnyTag); ok {
				consumed.Add(1)
				continue
			}
			select {
			case <-stop:
				return
			default:
				time.Sleep(10 * time.Microsecond)
			}
		}
	}()

	// Tracer churn while traffic flows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				f.SetTracer(nil)
				return
			default:
			}
			if i%2 == 0 {
				f.SetTracer(trace.New(1, trace.Config{}))
			} else {
				f.SetTracer(nil)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()

	for src := 1; src < 3; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < total/2; i++ {
				f.Send(src, 0, i%3, []byte{byte(i)})
			}
		}(src)
	}

	deadline := time.Now().Add(10 * time.Second)
	for consumed.Load() < total {
		if time.Now().After(deadline) {
			t.Fatalf("consumed %d of %d", consumed.Load(), total)
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(stop)
	wg.Wait()
	if consumed.Load() != total {
		t.Fatalf("consumed %d, want exactly %d", consumed.Load(), total)
	}
}
