package fabric

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/spin"
)

// poller is Sim's delivery engine: a min-heap of links keyed by their
// head arrival deadline, served by a small, lazily-grown pool of worker
// goroutines. Each wakeup lands a *batch* of due deliveries (every due
// head across every due link) instead of spin-waiting once per message,
// and the pool is bounded by maxWorkers regardless of how many (src,dst)
// pairs are active — the property that lets a 10k-rank world run.
//
// Worker roles at any instant: some workers drain due links, and at most
// one worker is the "timekeeper", sleeping until the earliest future
// deadline. Workers exit when the heap is empty (an idle fabric holds no
// goroutines) and when a timekeeper already exists, so the pool breathes
// with load but never exceeds maxWorkers.
//
// Waiting is interruptible: the timekeeper publishes its target in
// sleepNs and parks on a reusable timer (long waits) or spins in short
// chunks (the sub-2ms tail, where OS timers are too coarse). A transmit
// that creates an earlier deadline lowers sleepNs under the poller lock
// and nudges the wake channel; the timekeeper re-reads its target at
// every wake and chunk boundary.
type poller struct {
	mu         sync.Mutex
	heap       []*pairLink // min-heap on pairLink.nextNs
	workers    int         // live pollLoop goroutines
	drainers   int         // workers currently inside drain()
	sleeping   bool        // a timekeeper exists
	maxWorkers int

	sleepNs atomic.Int64  // timekeeper's current target (MaxInt64 when none)
	wake    chan struct{} // capacity 1; nudges the timekeeper
	timer   *time.Timer   // reusable long-wait timer, owned by the timekeeper
}

const (
	// sleepSpinChunk bounds how long the timekeeper spins before
	// re-checking for a lowered target.
	sleepSpinChunk = 100 * time.Microsecond
	// sleepTimerTail is the slack left to the spin loop after an OS
	// timer wait, covering the timer's scheduling skew.
	sleepTimerTail = 2 * time.Millisecond
)

func (p *poller) init() {
	p.maxWorkers = runtime.GOMAXPROCS(0)
	if p.maxWorkers > 8 {
		p.maxWorkers = 8
	}
	if p.maxWorkers < 2 {
		p.maxWorkers = 2
	}
	p.wake = make(chan struct{}, 1)
	p.sleepNs.Store(math.MaxInt64)
}

// enqueue registers l (in linkQueued state, nextNs == ns) with the heap,
// growing the worker pool if every live worker is occupied and alerting
// the timekeeper if the new deadline beats its target.
func (p *poller) enqueue(f *Sim, l *pairLink, ns int64) {
	p.mu.Lock()
	p.push(l)
	busy := p.drainers
	if p.sleeping {
		busy++
	}
	if p.workers < p.maxWorkers && p.workers == busy {
		p.workers++
		//hiperlint:ignore goroutine-leak pollLoop self-terminates when the link heap drains or a timekeeper already exists; the pool is bounded by maxWorkers
		go f.pollLoop()
	}
	if p.sleeping && ns < p.sleepNs.Load() {
		p.sleepNs.Store(ns)
		select {
		case p.wake <- struct{}{}:
		default:
		}
	}
	p.mu.Unlock()
}

// pollLoop is one worker: pop due links and drain them; when the earliest
// deadline is in the future, become the timekeeper (or exit if one
// exists); exit when the heap is empty.
func (f *Sim) pollLoop() {
	p := &f.poll
	for {
		p.mu.Lock()
		if len(p.heap) == 0 {
			p.workers--
			p.mu.Unlock()
			return
		}
		l := p.heap[0]
		if l.nextNs > f.nowNs() {
			if p.sleeping {
				p.workers--
				p.mu.Unlock()
				return
			}
			p.sleeping = true
			p.sleepNs.Store(l.nextNs)
			p.mu.Unlock()
			f.sleepUntilTarget()
			p.mu.Lock()
			p.sleeping = false
			p.sleepNs.Store(math.MaxInt64)
			p.mu.Unlock()
			continue
		}
		p.pop()
		p.drainers++
		p.mu.Unlock()
		f.drain(l)
		p.mu.Lock()
		p.drainers--
		p.mu.Unlock()
	}
}

// sleepUntilTarget parks the timekeeper until poll.sleepNs (which
// enqueue may lower mid-wait). Long waits park on the OS timer with a
// tail of slack; the tail is spun in interruptible chunks for
// sub-millisecond precision. This is the one place in the fabric that
// spin-waits — every modelled delay in the process funnels through it.
func (f *Sim) sleepUntilTarget() {
	p := &f.poll
	for {
		remain := time.Duration(p.sleepNs.Load() - f.nowNs())
		if remain <= 0 {
			return
		}
		if remain > 2*sleepTimerTail {
			if p.timer == nil {
				p.timer = time.NewTimer(remain - sleepTimerTail)
			} else {
				p.timer.Reset(remain - sleepTimerTail)
			}
			select {
			case <-p.timer.C:
			case <-p.wake:
				if !p.timer.Stop() {
					select {
					case <-p.timer.C:
					default:
					}
				}
			}
			continue
		}
		chunk := remain
		if chunk > sleepSpinChunk {
			chunk = sleepSpinChunk
		}
		spin.Until(time.Now().Add(chunk))
		select {
		case <-p.wake:
		default:
		}
	}
}

// push inserts l into the deadline heap. Caller holds p.mu.
func (p *poller) push(l *pairLink) {
	h := append(p.heap, l)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].nextNs <= h[i].nextNs {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	p.heap = h
}

// pop removes and returns the link with the earliest deadline. Caller
// holds p.mu and has checked the heap is non-empty.
func (p *poller) pop() *pairLink {
	h := p.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nil
	h = h[:last]
	p.heap = h
	i := 0
	for {
		left := 2*i + 1
		if left >= len(h) {
			break
		}
		min := left
		if right := left + 1; right < len(h) && h[right].nextNs < h[left].nextNs {
			min = right
		}
		if h[i].nextNs <= h[min].nextNs {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}
