package fabric

import "testing"

// BenchmarkZeroSendRecvSameG measures the zero-cost path with no
// goroutine switch: the sender immediately receives its own delivery, so
// this is the pure per-hop cost (copy, meter, trace hooks, mailbox).
func BenchmarkZeroSendRecvSameG(b *testing.B) {
	f := NewSim(2, CostModel{})
	payload := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Send(0, 1, 1, payload)
		f.Recv(1, 0, 1)
	}
}

// BenchmarkZeroPingPong measures a full round trip between two
// goroutines on the zero-cost path — per-hop cost plus the two
// scheduler switches a rendezvous inherently needs.
func BenchmarkZeroPingPong(b *testing.B) {
	f := NewSim(2, CostModel{})
	payload := make([]byte, 64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			m := f.Recv(1, 0, 1)
			f.Send(1, 0, 2, m.Data)
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Send(0, 1, 1, payload)
		f.Recv(0, 1, 2)
	}
	<-done
}
