package fabric

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// relTestConfig keeps retransmit rounds fast so lossy tests converge in
// milliseconds, with a silence window long enough that a race-detector
// scheduling stall can never fake a dead link.
var relTestConfig = RelConfig{
	RetryBase:    100 * time.Microsecond,
	RetryCap:     time.Millisecond,
	MaxAttempts:  20,
	DeathSilence: 2 * time.Second,
}

// TestReliablePassThrough: over a clean inline transport the layer is
// a transparent FIFO transport.
func TestReliablePassThrough(t *testing.T) {
	r := NewReliable(NewInline(2), relTestConfig)
	for i := 0; i < 10; i++ {
		r.Send(0, 1, 7, []byte{byte(i)})
	}
	for i := 0; i < 10; i++ {
		m, ok := r.TryRecv(1, 0, 7)
		if !ok || m.Data[0] != byte(i) || m.Src != 0 || m.Tag != 7 {
			t.Fatalf("message %d: %v %v", i, m, ok)
		}
	}
	if r.Retries() != 0 {
		t.Errorf("clean link retried %d frames", r.Retries())
	}
}

// TestReliableSurvivesDropAndDup is the core recovery property: at 10%
// drop + 10% dup every message still arrives exactly once, in per-link
// FIFO order, with Retries > 0 proving the protocol (not luck) did it.
func TestReliableSurvivesDropAndDup(t *testing.T) {
	chaos := NewChaos(NewInline(4), FaultPlan{Seed: 7, Drop: 0.10, Dup: 0.10})
	r := NewReliable(chaos, relTestConfig)

	const perLink = 200
	var wg sync.WaitGroup
	for src := 0; src < 4; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < perLink; i++ {
				for dst := 0; dst < 4; dst++ {
					if dst == src {
						continue
					}
					r.Send(src, dst, src, []byte{byte(i), byte(i >> 8)})
				}
			}
		}(src)
	}
	wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for dst := 0; dst < 4; dst++ {
		for src := 0; src < 4; src++ {
			if src == dst {
				continue
			}
			for i := 0; i < perLink; {
				m, ok := r.TryRecv(dst, src, src)
				if !ok {
					if time.Now().After(deadline) {
						t.Fatalf("link %d->%d stuck at message %d (drops=%d retries=%d)",
							src, dst, i, chaos.Drops(), r.Retries())
					}
					time.Sleep(100 * time.Microsecond)
					continue
				}
				if got := int(m.Data[0]) | int(m.Data[1])<<8; got != i {
					t.Fatalf("link %d->%d FIFO broken: got %d want %d", src, dst, got, i)
				}
				i++
			}
			// Exactly once: nothing extra behind the last message.
			if m, ok := r.TryRecv(dst, src, src); ok {
				t.Fatalf("link %d->%d delivered a duplicate: %v", src, dst, m)
			}
		}
	}
	if chaos.Drops() == 0 || chaos.Dups() == 0 {
		t.Fatalf("chaos injected nothing (drops=%d dups=%d) — test proves nothing", chaos.Drops(), chaos.Dups())
	}
	if r.Retries() == 0 {
		t.Fatal("messages survived loss without retransmits?")
	}
}

// TestReliableOneSidedOverLoss: Put/Get complete (apply then onDone)
// despite drops, and a blocking quiet-style wait built on onDone
// terminates.
func TestReliableOneSidedOverLoss(t *testing.T) {
	chaos := NewChaos(NewInline(2), FaultPlan{Seed: 3, Drop: 0.2})
	r := NewReliable(chaos, relTestConfig)

	const ops = 100
	var applied atomic.Int64
	var wg sync.WaitGroup
	wg.Add(2 * ops)
	for i := 0; i < ops; i++ {
		r.Put(0, 1, 8, func() { applied.Add(1) }, wg.Done)
		r.Get(1, 0, 16, func() { applied.Add(1) }, wg.Done)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("one-sided ops hung under loss (applied=%d drops=%d retries=%d)",
			applied.Load(), chaos.Drops(), r.Retries())
	}
	if applied.Load() != 2*ops {
		t.Fatalf("applied %d effects, want %d", applied.Load(), 2*ops)
	}
	if err := r.LinkErr(0, 1); err != nil {
		t.Errorf("healthy link recorded error: %v", err)
	}
}

// TestReliableCrashedRankErrorsNotHangs: after Kill, two-sided sends
// record a link error, one-sided ops still fire onDone, and the
// OnLinkError hook sees the failure — nothing blocks forever.
func TestReliableCrashedRankErrorsNotHangs(t *testing.T) {
	chaos := NewChaos(NewInline(3), FaultPlan{Seed: 5})
	r := NewReliable(chaos, relTestConfig)

	var hookMu sync.Mutex
	hooked := map[[2]int]error{}
	r.SetOnLinkError(func(src, dst int, err error) {
		hookMu.Lock()
		hooked[[2]int{src, dst}] = err
		hookMu.Unlock()
	})

	chaos.Kill(2)
	// Two-sided send to the corpse: recorded, not hung.
	r.Send(0, 2, 1, []byte("hello?"))
	if err := r.LinkErr(0, 2); err == nil {
		t.Fatal("send to crashed rank recorded no link error")
	}
	// One-sided op: onDone fires (synchronously here — the link is
	// already known dead).
	doneCh := make(chan struct{})
	r.Put(1, 2, 8, func() { t.Error("apply ran at a crashed rank") }, func() { close(doneCh) })
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("Put to crashed rank never completed")
	}
	if err := r.LinkErr(1, 2); err == nil {
		t.Fatal("Put to crashed rank recorded no link error")
	}
	hookMu.Lock()
	if hooked[[2]int{0, 2}] == nil || hooked[[2]int{1, 2}] == nil {
		t.Errorf("OnLinkError hook missed failures: %v", hooked)
	}
	hookMu.Unlock()
	// The survivors' link is untouched.
	r.Send(0, 1, 9, []byte("still here"))
	if m, ok := r.TryRecv(1, 0, 9); !ok || string(m.Data) != "still here" {
		t.Errorf("survivor link broken: %v %v", m, ok)
	}
}

// TestReliableLinkDeathByExhaustion: a 100% lossy link (permanent
// partition wider than the retry budget) is declared dead after
// MaxAttempts, completing pending ops with errors instead of retrying
// forever.
func TestReliableLinkDeathByExhaustion(t *testing.T) {
	chaos := NewChaos(NewInline(2), FaultPlan{Seed: 11, Drop: 1})
	cfg := relTestConfig
	cfg.MaxAttempts = 4
	r := NewReliable(chaos, cfg)

	errCh := make(chan error, 1)
	r.SetOnLinkError(func(src, dst int, err error) {
		if src == 0 && dst == 1 {
			select {
			case errCh <- err:
			default:
			}
		}
	})
	doneCh := make(chan struct{})
	r.Put(0, 1, 8, nil, func() { close(doneCh) })
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("nil link error")
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("black-hole link never died (retries=%d)", r.Retries())
	}
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("pending op not completed by link death")
	}
	if r.LinkErr(0, 1) == nil {
		t.Fatal("dead link not recorded")
	}
	// Later traffic on the dead link fails fast.
	done2 := make(chan struct{})
	r.Put(0, 1, 8, nil, func() { close(done2) })
	select {
	case <-done2:
	case <-time.After(5 * time.Second):
		t.Fatal("op on known-dead link hung")
	}
}

// TestReliableCollectivesOverLoss: the stock collectives layer works
// unchanged over Reliable(Chaos) — the "worlds opt in by layering"
// property.
func TestReliableCollectivesOverLoss(t *testing.T) {
	const n = 4
	chaos := NewChaos(NewInline(n), FaultPlan{Seed: 13, Drop: 0.1, Dup: 0.05})
	r := NewReliable(chaos, relTestConfig)
	coll := NewColl(r)

	sum := func(acc, in []byte) {
		binary.LittleEndian.PutUint64(acc,
			binary.LittleEndian.Uint64(acc)+binary.LittleEndian.Uint64(in))
	}
	var wg sync.WaitGroup
	results := make([]int64, n)
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			recv, contrib := make([]byte, 8), make([]byte, 8)
			binary.LittleEndian.PutUint64(contrib, uint64(rank+1))
			coll.Allreduce(rank, recv, contrib, sum)
			results[rank] = int64(binary.LittleEndian.Uint64(recv))
		}(rank)
	}
	ok := make(chan struct{})
	go func() { wg.Wait(); close(ok) }()
	select {
	case <-ok:
	case <-time.After(10 * time.Second):
		t.Fatalf("allreduce hung under loss (drops=%d retries=%d)", chaos.Drops(), r.Retries())
	}
	for rank, v := range results {
		if v != 10 { // 1+2+3+4
			t.Errorf("rank %d allreduce = %d, want 10", rank, v)
		}
	}
}

// TestReliableWildcardRecv: wildcard matching works against Reliable's
// own mailboxes.
func TestReliableWildcardRecv(t *testing.T) {
	r := NewReliable(NewInline(3), relTestConfig)
	r.Send(1, 0, 4, []byte("a"))
	r.Send(2, 0, 9, []byte("b"))
	got := map[string]bool{}
	for i := 0; i < 2; i++ {
		m, ok := r.TryRecv(0, AnySource, AnyTag)
		if !ok {
			t.Fatalf("wildcard recv %d found nothing", i)
		}
		got[string(m.Data)] = true
	}
	if !got["a"] || !got["b"] {
		t.Errorf("wildcard recv missed messages: %v", got)
	}
	if _, ok := r.Probe(0, AnySource, AnyTag); ok {
		t.Error("mailbox should be empty")
	}
}
