package fabric

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fastRel is a retry schedule tight enough for link-death tests to
// finish in milliseconds while keeping the rounds+silence discipline.
func fastRel() RelConfig {
	return RelConfig{
		RetryBase:    50 * time.Microsecond,
		RetryCap:     200 * time.Microsecond,
		MaxAttempts:  4,
		DeathSilence: time.Millisecond,
	}
}

func TestEpochTableLifecycle(t *testing.T) {
	tab := NewEpochTable(3, 6)
	if tab.Ranks() != 3 || tab.Capacity() != 6 || tab.Epoch() != 0 {
		t.Fatalf("fresh table: ranks=%d cap=%d epoch=%d", tab.Ranks(), tab.Capacity(), tab.Epoch())
	}
	for r := 0; r < 3; r++ {
		if tab.Endpoint(r) != r || tab.Logical(r) != r {
			t.Fatalf("identity map broken at %d", r)
		}
	}

	old, fresh, err := tab.Remap(1)
	if err != nil || old != 1 || fresh != 3 {
		t.Fatalf("Remap(1) = (%d,%d,%v)", old, fresh, err)
	}
	if tab.Epoch() != 1 || tab.Endpoint(1) != 3 {
		t.Fatalf("after remap: epoch=%d endpoint(1)=%d", tab.Epoch(), tab.Endpoint(1))
	}
	if tab.Logical(1) != -1 {
		t.Fatalf("abandoned endpoint 1 still maps to logical %d", tab.Logical(1))
	}
	if tab.Logical(3) != 1 {
		t.Fatalf("fresh endpoint 3 maps to logical %d, want 1", tab.Logical(3))
	}

	added, err := tab.Grow(2)
	if err != nil || len(added) != 2 || added[0] != 3 || added[1] != 4 {
		t.Fatalf("Grow(2) = (%v,%v)", added, err)
	}
	if tab.Ranks() != 5 || tab.Epoch() != 2 {
		t.Fatalf("after grow: ranks=%d epoch=%d", tab.Ranks(), tab.Epoch())
	}
	// Grow drew endpoints 4 and 5; the pool is now empty (endpoint 1 was
	// abandoned dead, never recycled).
	if _, _, err := tab.Remap(0); err == nil {
		t.Fatal("remap succeeded with an exhausted pool")
	}

	if err := tab.Shrink(2); err != nil {
		t.Fatal(err)
	}
	if tab.Ranks() != 3 || tab.Epoch() != 3 {
		t.Fatalf("after shrink: ranks=%d epoch=%d", tab.Ranks(), tab.Epoch())
	}
	// Shrink returned healthy endpoints to the pool: remap works again.
	if _, fresh, err := tab.Remap(0); err != nil || fresh == 1 {
		t.Fatalf("post-shrink Remap = (%d,%v); dead endpoint must stay retired", fresh, err)
	}

	if err := tab.Shrink(3); err == nil {
		t.Fatal("shrink to zero ranks must error")
	}
}

func TestVirtualTranslatesAcrossRemap(t *testing.T) {
	tab := NewEpochTable(2, 4)
	v := NewVirtual(NewInline(4), tab)
	if v.Size() != 2 || CapacityOf(v) != 4 {
		t.Fatalf("size=%d capacity=%d", v.Size(), CapacityOf(v))
	}

	v.Send(0, 1, 7, []byte("pre"))
	m := v.Recv(1, 0, 7)
	if m.Src != 0 || m.Dst != 1 || string(m.Data) != "pre" {
		t.Fatalf("pre-remap message %+v", m)
	}

	if _, fresh, err := tab.Remap(1); err != nil || fresh != 2 {
		t.Fatalf("remap: fresh=%d err=%v", fresh, err)
	}
	// Logical addressing is unchanged; the wire now targets endpoint 2,
	// and the delivered source still reads as logical 0.
	v.Send(0, 1, 7, []byte("post"))
	m = v.Recv(1, 0, 7)
	if m.Src != 0 || m.Dst != 1 || string(m.Data) != "post" {
		t.Fatalf("post-remap message %+v", m)
	}
	// The old endpoint's mailbox saw only the pre-remap traffic.
	inner := v.inner.(*Inline)
	if _, ok := inner.TryRecv(1, AnySource, 7); ok {
		t.Fatal("post-remap frame landed on the abandoned endpoint")
	}
}

func TestCollBarrierTracksEpoch(t *testing.T) {
	tab := NewEpochTable(2, 5)
	v := NewVirtual(NewInline(5), tab)
	cl := NewColl(v)

	arrive := func(n int) {
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func() { defer wg.Done(); cl.Barrier() }()
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("%d-party barrier hung", n)
		}
	}

	arrive(2)
	if _, err := tab.Grow(2); err != nil {
		t.Fatal(err)
	}
	arrive(4) // must need exactly 4 arrivals now
	if err := tab.Shrink(3); err != nil {
		t.Fatal(err)
	}
	arrive(1)
}

// TestReliableDeadEndpointFailsFastAfterRemap is the link-death × remap
// interplay contract: once an endpoint is killed, traffic to it fails
// fast (one-sided ops complete with a recorded link error — never
// hang), and remapping the logical rank onto a fresh endpoint restores
// service because the fresh physical pair has fresh go-back-N state;
// the dead pair's record stays put.
func TestReliableDeadEndpointFailsFastAfterRemap(t *testing.T) {
	tab := NewEpochTable(2, 4)
	ch := NewChaos(NewInline(4), FaultPlan{})
	rel := NewReliable(ch, fastRel())
	v := NewVirtual(rel, tab)

	// Healthy round trip first, so live sender state exists on (0,1).
	v.Send(0, 1, 9, []byte("warm"))
	if m := v.Recv(1, 0, 9); string(m.Data) != "warm" {
		t.Fatalf("warmup message %q", m.Data)
	}

	ch.Kill(1)

	// A one-sided op toward the dead endpoint must complete, not hang.
	done := make(chan struct{})
	v.Put(0, 1, 64, nil, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Put to a dead endpoint hung instead of failing fast")
	}
	if rel.LinkErr(0, 1) == nil {
		t.Fatal("dead link 0->1 has no recorded error")
	}

	old, fresh, err := tab.Remap(1)
	if err != nil || old != 1 {
		t.Fatalf("remap: (%d,%d,%v)", old, fresh, err)
	}

	// Logical rank 1 is reachable again over the fresh pair — two-sided
	// and one-sided both — while the dead pair's record is unchanged.
	v.Send(0, 1, 9, []byte("revived"))
	if m := v.Recv(1, 0, 9); string(m.Data) != "revived" || m.Src != 0 {
		t.Fatalf("post-remap message %+v", m)
	}
	done2 := make(chan struct{})
	v.Put(0, 1, 64, nil, func() { close(done2) })
	select {
	case <-done2:
	case <-time.After(5 * time.Second):
		t.Fatal("Put to the remapped rank hung")
	}
	if rel.LinkErr(0, fresh) != nil {
		t.Fatalf("fresh link 0->%d marked dead: %v", fresh, rel.LinkErr(0, fresh))
	}
	if rel.LinkErr(0, old) == nil {
		t.Fatal("remap erased the dead link's record")
	}
}

// TestReliableRemapUnderChaos runs logical ping-pong across a kill+remap
// with 5% drop + 5% dup on every link: the sequence numbers and the
// remap must compose, delivering every post-remap message exactly once
// and in order.
func TestReliableRemapUnderChaos(t *testing.T) {
	tab := NewEpochTable(2, 4)
	ch := NewChaos(NewInline(4), FaultPlan{Seed: 42, Drop: 0.05, Dup: 0.05})
	rel := NewReliable(ch, RelConfig{
		RetryBase:    50 * time.Microsecond,
		RetryCap:     200 * time.Microsecond,
		MaxAttempts:  12,
		DeathSilence: 50 * time.Millisecond,
	})
	v := NewVirtual(rel, tab)

	pingPong := func(round int) {
		for i := 0; i < 20; i++ {
			want := []byte(fmt.Sprintf("r%d-%d", round, i))
			v.Send(0, 1, 3, want)
			m := v.Recv(1, 0, 3)
			if !bytes.Equal(m.Data, want) || m.Src != 0 {
				t.Fatalf("round %d msg %d: got %q from %d", round, i, m.Data, m.Src)
			}
			v.Send(1, 0, 4, m.Data)
			if e := v.Recv(0, 1, 4); !bytes.Equal(e.Data, want) {
				t.Fatalf("round %d echo %d: %q", round, i, e.Data)
			}
		}
	}

	pingPong(0)
	ch.Kill(tab.Endpoint(1))
	if _, _, err := tab.Remap(1); err != nil {
		t.Fatal(err)
	}
	pingPong(1)
	if rel.Retries() == 0 {
		t.Log("note: chaos injected no retries this run")
	}
}

// TestVirtualWorldGrowShrinkKeepsTraffic exercises resize mid-traffic:
// ranks added by Grow can immediately talk, and after Shrink the
// surviving ranks still can.
func TestVirtualWorldGrowShrinkKeepsTraffic(t *testing.T) {
	tab := NewEpochTable(2, 6)
	v := NewVirtual(NewInline(6), tab)

	added, err := tab.Grow(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range added {
		v.Send(0, r, 5, []byte{byte(r)})
		if m := v.Recv(r, 0, 5); m.Src != 0 || m.Data[0] != byte(r) {
			t.Fatalf("grown rank %d: %+v", r, m)
		}
	}
	if err := tab.Shrink(2); err != nil {
		t.Fatal(err)
	}
	v.Send(1, 0, 5, []byte("still here"))
	if m := v.Recv(0, 1, 5); string(m.Data) != "still here" || m.Src != 1 {
		t.Fatalf("post-shrink message %+v", m)
	}
}
