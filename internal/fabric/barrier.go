package fabric

import "sync"

// Barrier is a reusable (generation-counted) barrier for n participants.
// Participants may arrive blocking (Await) or asynchronously (Arrive with
// a completion callback); the two styles compose within one generation.
type Barrier struct {
	mu    sync.Mutex
	n     int
	count int
	gen   uint64
	cbs   []func()
}

// NewBarrier creates a barrier for n participants.
func NewBarrier(n int) *Barrier {
	return &Barrier{n: n}
}

// Await blocks until n participants have entered the current generation.
func (b *Barrier) Await() {
	done := make(chan struct{})
	b.Arrive(func() { close(done) })
	<-done
}

// Resize changes the participant count for subsequent generations.
// Callers must guarantee no generation is mid-flight when membership
// changes (the elastic resize protocol runs between phases, after a
// completed barrier); if stragglers from a shrunk generation have
// already arrived, the generation completes immediately so nobody
// strands.
func (b *Barrier) Resize(n int) {
	b.mu.Lock()
	b.n = n
	if b.count >= b.n {
		b.count = 0
		b.gen++
		cbs := b.cbs
		b.cbs = nil
		b.mu.Unlock()
		for _, cb := range cbs {
			cb()
		}
		return
	}
	b.mu.Unlock()
}

// Arrive registers one arrival in the current generation and invokes fn
// (if non-nil) when the generation completes. The last arriver runs all
// callbacks on its own goroutine. Arrive never blocks, which lets runtime
// schedulers keep their workers busy while a barrier is pending — the
// deadlock-avoidance property the HiPER modules rely on.
func (b *Barrier) Arrive(fn func()) {
	b.mu.Lock()
	if fn != nil {
		b.cbs = append(b.cbs, fn)
	}
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		cbs := b.cbs
		b.cbs = nil
		b.mu.Unlock()
		for _, cb := range cbs {
			cb()
		}
		return
	}
	b.mu.Unlock()
}
