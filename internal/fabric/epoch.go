package fabric

import (
	"fmt"
	"sync"
)

// EpochTable is the versioned logical-rank → fabric-endpoint map at the
// heart of rank virtualization. A job's stable identity is the *logical*
// rank; which physical transport endpoint carries that rank's traffic is
// an assignment the table owns and may change at run time:
//
//   - Remap retargets a logical rank to a fresh endpoint (migration after
//     a crash: the old endpoint keeps its Chaos kill record and its dead
//     Reliable go-back-N links; the fresh endpoint starts clean).
//   - Grow/Shrink change the logical rank count (live resize at a
//     collective boundary).
//
// Every mutation bumps a generation counter (the epoch). Layers that
// cache membership — fabric.Coll's barrier, library worlds — compare
// epochs to re-resolve membership lazily at the next collective, and the
// job layer stamps the epoch into watchdog stall reports so a stuck
// migration names the epoch it wedged in.
//
// The table is constructed with spare endpoint capacity: endpoints
// [ranks, capacity) form the free pool that Remap and Grow draw from.
// Endpoints abandoned by Remap are dead and never reused; endpoints
// released by Shrink are healthy and return to the pool.
type EpochTable struct {
	mu    sync.Mutex
	phys  []int       // logical rank -> physical endpoint
	rev   map[int]int // physical endpoint -> logical rank (current epoch only)
	free  []int       // healthy unassigned endpoints, FIFO
	epoch uint64
	cap   int
}

// NewEpochTable creates a table for `ranks` logical ranks over a
// transport with `capacity` physical endpoints (capacity-ranks spares).
// The initial assignment is the identity: logical rank r ↔ endpoint r.
func NewEpochTable(ranks, capacity int) *EpochTable {
	if ranks <= 0 {
		panic(fmt.Sprintf("fabric: epoch table needs at least 1 rank, got %d", ranks))
	}
	if capacity < ranks {
		panic(fmt.Sprintf("fabric: epoch table capacity %d < %d ranks", capacity, ranks))
	}
	t := &EpochTable{
		phys: make([]int, ranks),
		rev:  make(map[int]int, ranks),
		cap:  capacity,
	}
	for r := 0; r < ranks; r++ {
		t.phys[r] = r
		t.rev[r] = r
	}
	for e := ranks; e < capacity; e++ {
		t.free = append(t.free, e)
	}
	return t
}

// Ranks returns the current logical rank count.
func (t *EpochTable) Ranks() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.phys)
}

// Capacity returns the physical endpoint count the table was built over.
func (t *EpochTable) Capacity() int { return t.cap }

// Epoch returns the generation counter; it advances on every Remap,
// Grow, or Shrink.
func (t *EpochTable) Epoch() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// Endpoint resolves a logical rank to its current physical endpoint.
func (t *EpochTable) Endpoint(logical int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if logical < 0 || logical >= len(t.phys) {
		panic(fmt.Sprintf("fabric: logical rank %d out of range [0,%d)", logical, len(t.phys)))
	}
	return t.phys[logical]
}

// Logical resolves a physical endpoint back to the logical rank it
// currently carries, or -1 when it carries none (never assigned,
// abandoned by Remap, or released by Shrink). Stale traffic surfacing a
// -1 source is a protocol violation worth crashing loudly on.
func (t *EpochTable) Logical(endpoint int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	lr, ok := t.rev[endpoint]
	if !ok {
		return -1
	}
	return lr
}

// Remap retargets a logical rank onto a fresh endpoint from the free
// pool, returning the old and new endpoints. The old endpoint is
// abandoned — its Reliable link state and Chaos kill record stay with
// it, which is exactly what invalidates them for the logical rank.
func (t *EpochTable) Remap(logical int) (old, fresh int, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if logical < 0 || logical >= len(t.phys) {
		return 0, 0, fmt.Errorf("fabric: remap of logical rank %d out of range [0,%d)", logical, len(t.phys))
	}
	if len(t.free) == 0 {
		return 0, 0, fmt.Errorf("fabric: no spare endpoint to remap logical rank %d onto (capacity %d exhausted)", logical, t.cap)
	}
	old = t.phys[logical]
	fresh = t.free[0]
	t.free = t.free[1:]
	t.phys[logical] = fresh
	delete(t.rev, old)
	t.rev[fresh] = logical
	t.epoch++
	return old, fresh, nil
}

// Grow appends k logical ranks, assigning each a free endpoint, and
// returns the new logical ranks.
func (t *EpochTable) Grow(k int) ([]int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if k <= 0 {
		return nil, fmt.Errorf("fabric: grow by %d", k)
	}
	if len(t.free) < k {
		return nil, fmt.Errorf("fabric: grow by %d needs %d spare endpoints, have %d", k, k, len(t.free))
	}
	added := make([]int, 0, k)
	for i := 0; i < k; i++ {
		ep := t.free[0]
		t.free = t.free[1:]
		lr := len(t.phys)
		t.phys = append(t.phys, ep)
		t.rev[ep] = lr
		added = append(added, lr)
	}
	t.epoch++
	return added, nil
}

// Shrink drops the top k logical ranks. Their endpoints are healthy and
// return to the free pool for later Remap/Grow reuse.
func (t *EpochTable) Shrink(k int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if k <= 0 || k >= len(t.phys) {
		return fmt.Errorf("fabric: shrink by %d from %d ranks", k, len(t.phys))
	}
	for i := 0; i < k; i++ {
		lr := len(t.phys) - 1
		ep := t.phys[lr]
		t.phys = t.phys[:lr]
		delete(t.rev, ep)
		t.free = append(t.free, ep)
	}
	t.epoch++
	return nil
}

// Evict removes a logical rank whose endpoint is dead when no spare
// remains to Remap onto — the graceful-degradation resize. The dead
// endpoint is abandoned (never pooled). To keep the logical space
// contiguous while preserving every *surviving* rank's identity, the
// top logical rank's healthy endpoint is moved onto the evicted rank's
// slot and the top logical rank is dropped; callers redistribute the
// dropped rank's state exactly as for a Shrink of 1 (the evicted rank
// itself recovers from its checkpoint onto the reused endpoint).
// Evicting the top rank is a plain drop. Returns the logical rank that
// was dropped — always the previous top.
func (t *EpochTable) Evict(logical int) (dropped int, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if logical < 0 || logical >= len(t.phys) {
		return 0, fmt.Errorf("fabric: evict of logical rank %d out of range [0,%d)", logical, len(t.phys))
	}
	if len(t.phys) <= 1 {
		return 0, fmt.Errorf("fabric: cannot evict the last rank")
	}
	top := len(t.phys) - 1
	deadEp := t.phys[logical]
	delete(t.rev, deadEp)
	if logical != top {
		ep := t.phys[top]
		t.phys[logical] = ep
		t.rev[ep] = logical
	}
	t.phys = t.phys[:top]
	t.epoch++
	return top, nil
}

// Endpoints returns a snapshot of the current logical→endpoint map
// (diagnostics; index = logical rank).
func (t *EpochTable) Endpoints() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]int(nil), t.phys...)
}
