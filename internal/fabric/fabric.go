// Package fabric is the pluggable communication substrate every
// simulated library in this repository routes through. It owns all
// interconnect delay math: the cost model, the congestion and
// node-locality accounting, the per-pair FIFO delivery machinery, and
// the msg-send/msg-recv trace events. Communication modules (MPI,
// OpenSHMEM, UPC++, the CUDA PCIe link) never sleep on their own —
// hiper-lint's raw-delay-outside-fabric checker enforces that — they
// describe transfers to a Transport and get completion callbacks.
//
// Two backends ship:
//
//   - Inline: a zero-cost transport that delivers synchronously on the
//     caller's goroutine. Fully deterministic, no goroutines, for unit
//     tests.
//   - Sim: the cost-modeled interconnect (latency/bandwidth/congestion/
//     locality) that substitutes for the Cray Aries network in the
//     paper's evaluation. A Sim with a zero CostModel also delivers
//     inline.
//
// The composability property the paper's evaluation hinges on falls out
// of the design: each simulated rank is ONE endpoint on its transport,
// so when an MPI world and a SHMEM world are created over the same Sim,
// their traffic shares per-destination in-flight counters — congestion
// and RanksPerNode locality apply across modules, not per library.
package fabric

import "repro/internal/trace"

// Message is a delivered two-sided envelope.
type Message struct {
	Src, Dst, Tag int
	Data          []byte
}

// Wildcards for matching receives.
const (
	AnySource = -1
	AnyTag    = -1
)

// Transport is the pluggable communication substrate. One Transport
// joins n endpoints ("ranks"); any number of library worlds may share
// it, each rank of each world mapping onto the same endpoint.
//
// Two-sided operations follow MPI matching rules: messages are matched
// by (source, tag) with AnySource/AnyTag wildcards, per-(src,dst) pairs
// deliver in FIFO order, and sends are eager (the payload is captured
// before Send returns).
//
// One-sided operations (Put, Get) carry no payload through the
// transport; they model the *transfer* of bytes and run caller-supplied
// closures at the right moments: apply executes when the transfer
// arrives (the remote memory effect — a symmetric-heap store, an RPC
// enqueue), onDone directly after apply (completion: resolve a future,
// decrement a pending counter). Neither Put nor Get ever blocks the
// caller; callers that need blocking semantics wait on a channel closed
// from onDone. Implementations run apply and onDone on a delivery
// goroutine (or inline for zero-cost transports), so they must not
// block.
//
// Get models a round trip whose reply payload is `bytes` long. Like the
// prior per-module implementations, the Sim backend charges it as one
// delivery on the src→dst link (request plus returning payload as a
// single modelled delay), congesting the data's owner — the natural
// hot-spot under fan-in Gets.
type Transport interface {
	// Size returns the number of endpoints.
	Size() int
	// Cost returns the transport's cost model (zero for Inline).
	Cost() CostModel

	// Send transmits data from src to dst under tag (eager; the buffer is
	// reusable on return). Delivery is asynchronous unless zero-cost.
	Send(src, dst, tag int, data []byte)
	// Recv blocks until a message matching (src, tag) arrives at dst.
	Recv(dst, src, tag int) Message
	// RecvAsync registers fn to be invoked exactly once with the next
	// matching message at dst. fn runs on the delivering goroutine (or
	// inline if a message is queued); it must not block.
	RecvAsync(dst, src, tag int, fn func(Message))
	// TryRecv returns a matching queued message if one is available.
	TryRecv(dst, src, tag int) (Message, bool)
	// Probe reports whether a matching message is queued at dst without
	// consuming it.
	Probe(dst, src, tag int) (Message, bool)

	// Put issues a one-sided transfer of `bytes` from src to dst. apply
	// (may be nil) runs at arrival, onDone (may be nil) directly after.
	Put(src, dst, bytes int, apply, onDone func())
	// Get issues a one-sided round trip fetching `bytes` from dst to src.
	// apply (may be nil) reads the remote memory at arrival, onDone (may
	// be nil) completes the caller's future.
	Get(src, dst, bytes int, apply, onDone func())

	// AllocTags reserves a block of n negative tags for a layered
	// protocol (collectives, module-internal control traffic) and returns
	// the block's base; the block is base, base-1, ..., base-n+1. User
	// tags are >= 0, so reserved traffic never collides with user
	// traffic, and separate allocations never collide with each other —
	// that is what lets several library worlds share one transport.
	AllocTags(n int) int

	// SetTracer attaches (or, with nil, detaches) a tracer whose external
	// ring records one EvMsgSend per transfer issued and one EvMsgRecv
	// per delivery. Safe to call concurrently with traffic.
	SetTracer(tr *trace.Tracer)
	// Stats returns cumulative transfer and byte counts.
	Stats() (msgs, bytes int64)
}
