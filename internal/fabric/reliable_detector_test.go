package fabric

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestReliableDetectorSpikeStormNoDoubleKill is the DeathSilence ×
// Detector interplay regression: a delay-spike storm that go-back-N
// survives may still push the detector over threshold (its round
// window here is deliberately narrower than the spike), but suspicion
// is advisory — the storm must NOT kill the Reliable link (DeathSilence
// keeps hearing late acks), and a precautionary Remap of the suspected
// rank must leave no poisoned state behind: traffic to the rank on its
// fresh endpoint completes, the old link records no error, and nothing
// was Chaos-killed.
func TestReliableDetectorSpikeStormNoDoubleKill(t *testing.T) {
	seed := chaosSeedFromEnv(t, 42)
	const app = 4 // endpoints 0..3; monitor = 4
	tab := NewEpochTable(2, app)
	chaos := NewChaos(NewSim(app+1, CostModel{}), FaultPlan{
		Seed:         seed,
		DelaySpike:   0.9,
		SpikeLatency: 2 * time.Millisecond,
	})
	rel := NewReliable(chaos, RelConfig{
		RetryBase:    100 * time.Microsecond,
		RetryCap:     time.Millisecond,
		MaxAttempts:  20,
		DeathSilence: 2 * time.Second, // survives the storm
	})
	var linkErrs atomic.Int64
	rel.SetOnLinkError(func(src, dst int, err error) { linkErrs.Add(1) })
	vt := NewVirtual(rel, tab)

	// Detector tuned to false-positive on spikes: the round window is
	// shorter than the spike latency, so a storm looks like silence.
	det := NewDetector(chaos, DetectorConfig{
		Monitor:   app,
		RoundWait: 500 * time.Microsecond,
		Threshold: 3,
	})
	det.Watch(tab.Endpoint(0))
	det.Watch(tab.Endpoint(1))

	// Storm traffic over the reliable layer: go-back-N must land all of
	// it despite 90% spikes.
	const msgs = 50
	for i := 0; i < msgs; i++ {
		vt.Send(0, 1, 5, []byte{byte(i)})
	}
	suspects, _ := det.Sweep(64)
	for i := 0; i < msgs; i++ {
		m := vt.Recv(1, 0, 5)
		if m.Data[0] != byte(i) {
			t.Fatalf("storm broke FIFO delivery at %d: got %d", i, m.Data[0])
		}
	}
	if len(suspects) == 0 {
		t.Skipf("detector did not false-positive under this seed; interplay not exercised")
	}

	// The suspicion must not have killed anything: the link survived...
	if err := rel.LinkErr(0, 1); err != nil {
		t.Fatalf("spike storm killed the 0->1 link: %v", err)
	}
	if linkErrs.Load() != 0 {
		t.Fatalf("%d link errors fired during a survivable storm", linkErrs.Load())
	}
	for ep := 0; ep < app; ep++ {
		if !chaos.Alive(ep) {
			t.Fatalf("endpoint %d chaos-killed by suspicion alone", ep)
		}
	}

	// ...and a precautionary remap of the suspect leaves clean state:
	// the rank keeps working on its fresh endpoint, and the abandoned
	// endpoint's go-back-N state never bleeds into the new link.
	victim := tab.Logical(suspects[0])
	if victim < 0 {
		t.Fatalf("suspect %d carries no rank", suspects[0])
	}
	old, fresh, err := tab.Remap(victim)
	if err != nil {
		t.Fatalf("remap: %v", err)
	}
	det.Unwatch(old)
	det.Watch(fresh)
	peer := 1 - victim
	for i := 0; i < msgs; i++ {
		vt.Send(peer, victim, 6, []byte{byte(i)})
	}
	for i := 0; i < msgs; i++ {
		m := vt.Recv(victim, peer, 6)
		if m.Data[0] != byte(i) || m.Src != peer {
			t.Fatalf("post-remap delivery broken at %d: %+v", i, m)
		}
	}
	if err := rel.LinkErr(tab.Endpoint(peer), fresh); err != nil {
		t.Fatalf("fresh link inherited an error: %v", err)
	}
	if linkErrs.Load() != 0 {
		t.Fatalf("link errors after remap: %d", linkErrs.Load())
	}
}
