package fabric

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// Reliable is the recovery half of the failure-domain story: a
// Transport implemented over any other Transport that restores exactly-
// once, per-link FIFO delivery on top of a lossy, duplicating,
// reordering substrate (in this repository, a Chaos wrapper — on a
// clean transport Reliable is a low-overhead pass-through). MPI and
// SHMEM worlds opt in simply by being constructed over a Reliable;
// nothing in the modules changes.
//
// The protocol is classic go-back-N built entirely from the public
// Transport API:
//
//   - Every application operation — two-sided sends AND one-sided
//     Put/Get — is framed with a per-(src,dst) sequence number and sent
//     on one reserved data tag (AllocTags on the inner transport).
//   - Receivers deliver in sequence order, park out-of-order frames,
//     drop duplicates, and return cumulative acks on a second reserved
//     tag. Every arrival is (re-)acked, so lost acks self-heal.
//   - Senders hold unacked frames and retransmit the OLDEST one on a
//     capped exponential-backoff timer. Because the receiver parks
//     out-of-order frames, refilling the head gap is enough for the
//     cumulative ack to jump; resending the whole window would turn
//     loss recovery into a bandwidth storm that outruns the receiver.
//   - A link is declared dead only on sustained total silence: at least
//     MaxAttempts fruitless retransmit rounds AND no ack of any kind
//     (even a duplicate) for DeathSilence. Then pending one-sided ops
//     complete (onDone fires — errors, not hangs) and the failure is
//     recorded, retrievable via LinkErr and pushed to the OnLinkError
//     hook.
//
// One-sided ops ride the same machinery as frames carrying an op id
// into a process-global registry: the frame's arrival runs apply at the
// destination and sends a completion frame back (itself reliable), whose
// arrival pops the registry and runs onDone. The frame is padded to the
// op's modelled byte count (carved directly in the pooled frame buffer,
// never a separate allocation — receivers ignore RMA payload bytes) to
// keep the inner cost model honest.
//
// Per-link protocol state lives in sharded lazy tables, so worlds only
// pay for the links they use — an n-rank Reliable is O(active links),
// not O(n²). Wire frames come from a reference-counted size-classed
// pool (see bufpool.go) and recycle once the cumulative ack passes them.
//
// Sends to a rank the substrate reports crashed (the Alive interface
// Chaos implements) fail fast instead of burning the full retry
// schedule.
//
// Reliable has its own tag space and mailboxes: a world layered on it
// must route all its traffic through it (mixing raw-inner and reliable
// traffic on one link would race the sequence numbers).
type Reliable struct {
	inner Transport
	tagSpace
	cfg   RelConfig
	n     int
	boxes []mailbox

	dataTag int
	ackTag  int

	sendSt relTable[relSender]
	recvSt relTable[relReceiver]

	opMu   sync.Mutex
	ops    map[uint64]*relOp
	nextOp uint64

	retries atomic.Int64

	linkMu   sync.Mutex
	linkErrs map[[2]int]error
	onLink   atomic.Pointer[func(src, dst int, err error)]
}

var _ Transport = (*Reliable)(nil)

// relShards is the shard count of the lazy per-link state tables.
const relShards = 64

// relTable is a sharded, lazily-populated map from (src,dst) to per-link
// protocol state. Shard locks only guard the lookup; the returned state
// carries its own mutex.
type relTable[T any] struct {
	shards [relShards]struct {
		mu sync.Mutex
		m  map[uint64]*T
	}
}

func (t *relTable[T]) get(src, dst int) *T {
	key := uint64(uint32(src))<<32 | uint64(uint32(dst))
	sh := &t.shards[splitmix64(key)&(relShards-1)]
	sh.mu.Lock()
	v := sh.m[key]
	if v == nil {
		if sh.m == nil {
			sh.m = make(map[uint64]*T)
		}
		v = new(T)
		sh.m[key] = v
	}
	sh.mu.Unlock()
	return v
}

// RelConfig tunes the retry schedule. The zero value selects defaults
// suited to the simulated fabrics (base 200µs, cap 5ms, 12 attempts,
// silence window MaxAttempts×RetryCap).
type RelConfig struct {
	RetryBase   time.Duration // first retransmit delay
	RetryCap    time.Duration // backoff ceiling
	MaxAttempts int           // minimum retransmit rounds before the link may be declared dead
	// DeathSilence is how long a link must hear no ack at all — not even
	// a duplicate — before retransmit-round exhaustion is allowed to kill
	// it. Rounds alone are not evidence of death: a loaded scheduler can
	// lap a slow-but-live receiver through the whole round budget.
	DeathSilence time.Duration
}

func (c RelConfig) withDefaults() RelConfig {
	if c.RetryBase <= 0 {
		c.RetryBase = 200 * time.Microsecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 5 * time.Millisecond
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 12
	}
	if c.DeathSilence <= 0 {
		c.DeathSilence = time.Duration(c.MaxAttempts) * c.RetryCap
	}
	return c
}

// Frame kinds.
const (
	frMsg  byte = iota // two-sided message; a = tag
	frPut              // one-sided put; a = op id, b = bytes
	frGet              // one-sided get; a = op id, b = bytes
	frDone             // one-sided completion; a = op id
)

// frameHeader is [seq u64][kind u8][a u64][b u64].
const frameHeader = 8 + 1 + 8 + 8

// encodeFrame builds a pooled wire frame: header, payload copy, then
// `pad` uninitialized bytes. Padding models an RMA transfer's size for
// the inner cost model; its contents are never read (receivers ignore
// the payload of frPut/frGet frames), so it costs no allocation and no
// memset. The returned buffer has one reference held.
func encodeFrame(seq uint64, kind byte, a, b uint64, payload []byte, pad int) *frameBuf {
	fb := getFrameBuf(frameHeader + len(payload) + pad)
	buf := fb.b
	binary.LittleEndian.PutUint64(buf, seq)
	buf[8] = kind
	binary.LittleEndian.PutUint64(buf[9:], a)
	binary.LittleEndian.PutUint64(buf[17:], b)
	copy(buf[frameHeader:], payload)
	return fb
}

func decodeFrame(buf []byte) (seq uint64, kind byte, a, b uint64, payload []byte) {
	seq = binary.LittleEndian.Uint64(buf)
	kind = buf[8]
	a = binary.LittleEndian.Uint64(buf[9:])
	b = binary.LittleEndian.Uint64(buf[17:])
	payload = buf[frameHeader:]
	return
}

// relFrame is one unacked in-flight frame at a sender. buf holds the
// unacked list's reference until the frame is acked or the link dies.
type relFrame struct {
	seq uint64
	buf *frameBuf
}

// relSender is one (src,dst) link's sender state.
type relSender struct {
	mu        sync.Mutex
	nextSeq   uint64 // last assigned (first frame is 1)
	ackedTo   uint64 // cumulative: all seq <= ackedTo delivered
	unacked   []relFrame
	timer     *time.Timer
	timerGen  uint64    // invalidates stale AfterFunc firings
	attempts  int       // retransmit rounds since the last ack heard
	lastHeard time.Time // when the last ack (any ack) arrived
	dead      bool
}

// pendFrame is a decoded frame awaiting in-order delivery at a receiver.
type pendFrame struct {
	kind    byte
	a, b    uint64
	payload []byte
}

// relReceiver is one (src,dst) link's receiver state. queue is a
// head-indexed ring: the delivery loop advances qHead and zeroes popped
// slots so delivered payloads don't linger in the backing array.
type relReceiver struct {
	mu         sync.Mutex
	expected   uint64 // next in-order seq (first frame is 1)
	ooo        map[uint64]pendFrame
	queue      []pendFrame
	qHead      int
	delivering bool
}

// relOp is a registered one-sided operation awaiting completion.
type relOp struct {
	apply, onDone func()
}

// aliver is the optional substrate interface (implemented by Chaos)
// that lets Reliable fast-fail traffic to crashed ranks.
type aliver interface{ Alive(rank int) bool }

// NewReliable layers the reliability protocol over inner.
func NewReliable(inner Transport, cfg RelConfig) *Reliable {
	n := inner.Size()
	r := &Reliable{
		inner:    inner,
		cfg:      cfg.withDefaults(),
		n:        n,
		boxes:    make([]mailbox, n),
		ops:      make(map[uint64]*relOp),
		linkErrs: make(map[[2]int]error),
	}
	base := inner.AllocTags(2)
	r.dataTag, r.ackTag = base, base-1
	for rank := 0; rank < n; rank++ {
		r.armData(rank)
		r.armAck(rank)
	}
	return r
}

// armData (re-)posts the per-rank data-frame receive loop on the inner
// transport. The handler drains everything queued before re-arming so
// an inline substrate cannot recurse one level per message.
func (r *Reliable) armData(rank int) {
	r.inner.RecvAsync(rank, AnySource, r.dataTag, func(m Message) {
		r.handleData(rank, m)
		for {
			m2, ok := r.inner.TryRecv(rank, AnySource, r.dataTag)
			if !ok {
				break
			}
			r.handleData(rank, m2)
		}
		r.armData(rank)
	})
}

func (r *Reliable) armAck(rank int) {
	r.inner.RecvAsync(rank, AnySource, r.ackTag, func(m Message) {
		r.handleAck(rank, m)
		for {
			m2, ok := r.inner.TryRecv(rank, AnySource, r.ackTag)
			if !ok {
				break
			}
			r.handleAck(rank, m2)
		}
		r.armAck(rank)
	})
}

func (r *Reliable) alive(rank int) bool {
	if a, ok := r.inner.(aliver); ok {
		return a.Alive(rank)
	}
	return true
}

// Retries returns how many frames have been retransmitted.
func (r *Reliable) Retries() int64 { return r.retries.Load() }

// LinkErr returns the recorded failure of link src→dst, or nil while it
// is healthy.
func (r *Reliable) LinkErr(src, dst int) error {
	r.linkMu.Lock()
	defer r.linkMu.Unlock()
	return r.linkErrs[[2]int{src, dst}]
}

// SetOnLinkError installs fn to be called (outside all protocol locks)
// when a link is declared dead.
func (r *Reliable) SetOnLinkError(fn func(src, dst int, err error)) {
	if fn == nil {
		r.onLink.Store(nil)
		return
	}
	r.onLink.Store(&fn)
}

func (r *Reliable) recordLinkErr(src, dst int, err error) {
	r.linkMu.Lock()
	if _, dup := r.linkErrs[[2]int{src, dst}]; !dup {
		r.linkErrs[[2]int{src, dst}] = err
	}
	r.linkMu.Unlock()
}

// registerOp files a one-sided op and returns its id.
func (r *Reliable) registerOp(apply, onDone func()) uint64 {
	r.opMu.Lock()
	r.nextOp++
	id := r.nextOp
	r.ops[id] = &relOp{apply: apply, onDone: onDone}
	r.opMu.Unlock()
	return id
}

// opApply runs a registered op's arrival effect (without completing it).
func (r *Reliable) opApply(id uint64) {
	r.opMu.Lock()
	op := r.ops[id]
	r.opMu.Unlock()
	if op != nil && op.apply != nil {
		op.apply()
	}
}

// completeOp pops a registered op and fires its completion callback.
// Idempotent: a dead-link completion followed by a late frDone is a
// no-op the second time.
func (r *Reliable) completeOp(id uint64) {
	r.opMu.Lock()
	op := r.ops[id]
	delete(r.ops, id)
	r.opMu.Unlock()
	if op != nil && op.onDone != nil {
		op.onDone()
	}
}

// failFrame completes whatever operation a frame that will never be
// delivered was carrying. Two-sided payloads are simply lost (the link
// error is the record); one-sided ops must still complete.
func (r *Reliable) failFrame(kind byte, a uint64) {
	switch kind {
	case frPut, frGet, frDone:
		r.completeOp(a)
	}
}

// backoff returns the retransmit delay after `attempts` fruitless
// rounds: capped exponential.
func (r *Reliable) backoff(attempts int) time.Duration {
	d := r.cfg.RetryBase
	for i := 0; i < attempts && d < r.cfg.RetryCap; i++ {
		d *= 2
	}
	if d > r.cfg.RetryCap {
		d = r.cfg.RetryCap
	}
	return d
}

// armTimerLocked (re)arms the sender's retransmit timer; s.mu held.
func (r *Reliable) armTimerLocked(s *relSender, src, dst int) {
	s.timerGen++
	gen := s.timerGen
	if s.timer != nil {
		s.timer.Stop()
	}
	s.timer = time.AfterFunc(r.backoff(s.attempts), func() { r.onTimer(src, dst, gen) })
}

// dieLocked declares the link dead and returns the frames to fail;
// s.mu held. The caller unlocks before completing them. Ownership of
// the frames' list references transfers to the caller.
func (r *Reliable) dieLocked(s *relSender) []relFrame {
	pending := s.unacked
	s.unacked = nil
	s.dead = true
	s.timerGen++
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	return pending
}

// finishDie records the failure, completes stranded ops, and notifies
// the hook — all outside protocol locks.
func (r *Reliable) finishDie(src, dst int, err error, pending []relFrame) {
	r.recordLinkErr(src, dst, err)
	for i := range pending {
		_, kind, a, _, _ := decodeFrame(pending[i].buf.b)
		r.failFrame(kind, a)
		pending[i].buf.release()
		pending[i].buf = nil
	}
	if cb := r.onLink.Load(); cb != nil {
		(*cb)(src, dst, err)
	}
}

// onTimer is the retransmit path: resend the oldest unacked frame or,
// once the attempt budget AND the silence window are both spent,
// declare the link dead. Only the head frame is resent — the receiver
// parks out-of-order arrivals, so filling the head gap lets the
// cumulative ack jump past everything it already holds, and resending
// the full window would amplify one lost frame into a storm that
// outruns the receiver's drain rate.
func (r *Reliable) onTimer(src, dst int, gen uint64) {
	s := r.sendSt.get(src, dst)
	s.mu.Lock()
	if s.dead || s.timerGen != gen || len(s.unacked) == 0 {
		s.mu.Unlock()
		return
	}
	s.attempts++
	silence := time.Since(s.lastHeard)
	if (s.attempts >= r.cfg.MaxAttempts && silence >= r.cfg.DeathSilence) ||
		!r.alive(dst) || !r.alive(src) {
		attempts := s.attempts
		pending := r.dieLocked(s)
		s.mu.Unlock()
		r.finishDie(src, dst,
			fmt.Errorf("fabric: reliable: link %d->%d dead after %d retransmit rounds (%v silent)",
				src, dst, attempts, silence.Round(time.Millisecond)),
			pending)
		return
	}
	// Retain the head buffer so a concurrent ack popping it cannot
	// recycle it out from under the resend below.
	head := s.unacked[0].buf
	head.retain()
	r.armTimerLocked(s, src, dst)
	s.mu.Unlock()
	r.retries.Add(1)
	r.inner.Send(src, dst, r.dataTag, head.b)
	head.release()
}

// sendFrame runs one frame through the sender machinery. Every
// application operation funnels through here. The wire frame carries
// payload followed by `pad` modelled-size bytes (see encodeFrame).
func (r *Reliable) sendFrame(src, dst int, kind byte, a, b uint64, payload []byte, pad int) {
	s := r.sendSt.get(src, dst)
	s.mu.Lock()
	if !s.dead && (!r.alive(dst) || !r.alive(src)) {
		pending := r.dieLocked(s)
		s.mu.Unlock()
		r.finishDie(src, dst,
			fmt.Errorf("fabric: reliable: rank %d is dead", deadOf(r, src, dst)), pending)
		s.mu.Lock()
	}
	if s.dead {
		s.mu.Unlock()
		r.failFrame(kind, a)
		return
	}
	s.nextSeq++
	fb := encodeFrame(s.nextSeq, kind, a, b, payload, pad)
	fb.retain() // for the Send below; the list reference stays with unacked
	s.unacked = append(s.unacked, relFrame{seq: s.nextSeq, buf: fb})
	if len(s.unacked) == 1 {
		s.attempts = 0
		s.lastHeard = time.Now()
		r.armTimerLocked(s, src, dst)
	}
	s.mu.Unlock()
	// Outside s.mu: an inline substrate delivers synchronously, and the
	// resulting ack re-enters handleAck on this goroutine.
	r.inner.Send(src, dst, r.dataTag, fb.b)
	fb.release()
}

func deadOf(r *Reliable, src, dst int) int {
	if !r.alive(dst) {
		return dst
	}
	return src
}

// handleAck processes a cumulative ack arriving at `rank` (the original
// sender) from m.Src (the receiver).
func (r *Reliable) handleAck(rank int, m Message) {
	if len(m.Data) < 8 {
		return
	}
	cum := binary.LittleEndian.Uint64(m.Data)
	s := r.sendSt.get(rank, m.Src)
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return
	}
	// Any ack — even a duplicate carrying no new progress — is proof of
	// life: the peer is up and the path works in both directions. Death
	// detection counts rounds of total silence, not rounds without
	// forward progress; otherwise a scheduler stall under load lets the
	// retransmit timer lap a healthy but slow receiver into a false
	// positive.
	s.attempts = 0
	s.lastHeard = time.Now()
	if cum > s.ackedTo {
		s.ackedTo = cum
		i := 0
		for i < len(s.unacked) && s.unacked[i].seq <= cum {
			s.unacked[i].buf.release()
			i++
		}
		// Copy live frames down and zero the vacated tail so acked
		// buffers don't stay pinned through the backing array.
		n := copy(s.unacked, s.unacked[i:])
		tail := s.unacked[n:]
		for j := range tail {
			tail[j] = relFrame{}
		}
		s.unacked = s.unacked[:n]
	}
	if len(s.unacked) == 0 {
		s.timerGen++
		if s.timer != nil {
			s.timer.Stop()
			s.timer = nil
		}
	} else {
		r.armTimerLocked(s, rank, m.Src)
	}
	s.mu.Unlock()
}

func (r *Reliable) sendAck(from, to int, cum uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], cum)
	r.inner.Send(from, to, r.ackTag, buf[:])
}

// handleData processes one data frame arriving at dst. Sequencing
// happens under the receiver lock; delivery happens outside it through
// a per-link queue drained by a single logical consumer (the
// `delivering` flag), so an application callback that triggers a nested
// same-link arrival on an inline substrate appends and returns instead
// of deadlocking.
func (r *Reliable) handleData(dst int, m Message) {
	src := m.Src
	if len(m.Data) < frameHeader {
		return
	}
	seq, kind, a, b, payload := decodeFrame(m.Data)
	rc := r.recvSt.get(src, dst)
	rc.mu.Lock()
	if rc.expected == 0 {
		rc.expected = 1
	}
	switch {
	case seq == rc.expected:
		rc.expected++
		rc.queue = append(rc.queue, pendFrame{kind: kind, a: a, b: b, payload: payload})
		for {
			nf, ok := rc.ooo[rc.expected]
			if !ok {
				break
			}
			delete(rc.ooo, rc.expected)
			rc.queue = append(rc.queue, nf)
			rc.expected++
		}
	case seq > rc.expected:
		if rc.ooo == nil {
			rc.ooo = make(map[uint64]pendFrame)
		}
		rc.ooo[seq] = pendFrame{kind: kind, a: a, b: b, payload: payload}
	default:
		// Duplicate of an already-delivered frame; the re-ack below
		// heals the sender.
	}
	if rc.delivering {
		ack := rc.expected - 1
		rc.mu.Unlock()
		r.sendAck(dst, src, ack)
		return
	}
	rc.delivering = true
	for rc.qHead < len(rc.queue) {
		f := rc.queue[rc.qHead]
		rc.queue[rc.qHead] = pendFrame{}
		rc.qHead++
		rc.mu.Unlock()
		r.deliverFrame(src, dst, f)
		rc.mu.Lock()
	}
	rc.queue = rc.queue[:0]
	rc.qHead = 0
	rc.delivering = false
	ack := rc.expected - 1
	rc.mu.Unlock()
	r.sendAck(dst, src, ack)
}

// deliverFrame lands one in-order frame at dst.
func (r *Reliable) deliverFrame(src, dst int, f pendFrame) {
	switch f.kind {
	case frMsg:
		r.boxes[dst].deliver(Message{Src: src, Dst: dst, Tag: int(int64(f.a)), Data: f.payload})
	case frPut, frGet:
		r.opApply(f.a)
		r.sendFrame(dst, src, frDone, f.a, 0, nil, 0)
	case frDone:
		r.completeOp(f.a)
	}
}

// Size implements Transport.
func (r *Reliable) Size() int { return r.n }

// Cost implements Transport.
func (r *Reliable) Cost() CostModel { return r.inner.Cost() }

// Send implements Transport: eager, reliable, per-link FIFO.
func (r *Reliable) Send(src, dst, tag int, data []byte) {
	r.sendFrame(src, dst, frMsg, uint64(int64(tag)), 0, data, 0)
}

// Put implements Transport: the transfer is framed and retried like any
// send; apply runs at the destination on in-order arrival, onDone when
// the completion frame returns. If either direction's link dies first,
// onDone still fires and the failure is recorded (LinkErr /
// OnLinkError) — one-sided ops error, they do not hang.
func (r *Reliable) Put(src, dst, bytes int, apply, onDone func()) {
	id := r.registerOp(apply, onDone)
	r.sendFrame(src, dst, frPut, id, uint64(bytes), nil, bytes)
}

// Get implements Transport; modelled like Sim's Get as one src→dst
// transfer of the reply size.
func (r *Reliable) Get(src, dst, bytes int, apply, onDone func()) {
	id := r.registerOp(apply, onDone)
	r.sendFrame(src, dst, frGet, id, uint64(bytes), nil, bytes)
}

// Recv implements Transport against Reliable's own mailboxes.
func (r *Reliable) Recv(dst, src, tag int) Message {
	return r.boxes[dst].recvBlocking(src, tag)
}

// RecvAsync implements Transport.
func (r *Reliable) RecvAsync(dst, src, tag int, fn func(Message)) {
	r.boxes[dst].post(&recvReq{src: src, tag: tag, deliver: fn})
}

// TryRecv implements Transport.
func (r *Reliable) TryRecv(dst, src, tag int) (Message, bool) {
	return r.boxes[dst].take(src, tag)
}

// Probe implements Transport.
func (r *Reliable) Probe(dst, src, tag int) (Message, bool) {
	return r.boxes[dst].probe(src, tag)
}

// SetTracer implements Transport, delegating so the trace reflects real
// wire traffic (frames, acks, and retransmits included).
func (r *Reliable) SetTracer(tr *trace.Tracer) { r.inner.SetTracer(tr) }

// Stats implements Transport: wire-level counts from the substrate.
func (r *Reliable) Stats() (msgs, bytes int64) { return r.inner.Stats() }
