package fabric

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fifoPattern is the deterministic traffic pattern the 1k-rank ordering
// tests use: every src sends msgsPerPair sequence-stamped messages to
// each of its destinations (fixed strides), and every (src,dst) stream
// must arrive in stamp order.
const (
	fifoRanks   = 1000
	fifoMsgs    = 8
	fifoDrivers = 8
	fifoTestTag = 7
)

var fifoStrides = [...]int{1, 17, 353, 499}

// runFIFOProperty drives the pattern over tr and verifies per-link FIFO
// via per-source blocking receives (specific-source Recv matches one
// stream in arrival order). Runs under -race in CI on both the inline
// delivery path (zero cost) and the poller path (modelled cost).
func runFIFOProperty(t *testing.T, tr Transport) {
	t.Helper()
	n := tr.Size()

	var recvWG sync.WaitGroup
	errs := make(chan error, 16)
	for dst := 0; dst < n; dst++ {
		recvWG.Add(1)
		go func(dst int) {
			defer recvWG.Done()
			// The sources whose streams terminate at dst are the
			// inverse of the stride pattern.
			for _, stride := range fifoStrides {
				src := (dst - stride%n + n) % n
				for seq := 0; seq < fifoMsgs; seq++ {
					m := tr.Recv(dst, src, fifoTestTag)
					got := int(binary.LittleEndian.Uint64(m.Data))
					if got != seq {
						select {
						case errs <- fmt.Errorf("link %d->%d: got stamp %d, want %d", src, dst, got, seq):
						default:
						}
						return
					}
				}
			}
		}(dst)
	}

	var sendWG sync.WaitGroup
	perDriver := n / fifoDrivers
	for d := 0; d < fifoDrivers; d++ {
		sendWG.Add(1)
		go func(lo, hi int) {
			defer sendWG.Done()
			var stamp [8]byte
			for seq := 0; seq < fifoMsgs; seq++ {
				binary.LittleEndian.PutUint64(stamp[:], uint64(seq))
				for src := lo; src < hi; src++ {
					for _, stride := range fifoStrides {
						tr.Send(src, (src+stride)%n, fifoTestTag, stamp[:])
					}
				}
			}
		}(d*perDriver, (d+1)*perDriver)
	}
	sendWG.Wait()
	recvWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestFIFO1kInline checks per-link FIFO ordering across a 1000-rank
// world on the synchronous zero-cost delivery path.
func TestFIFO1kInline(t *testing.T) {
	runFIFOProperty(t, NewSim(fifoRanks, CostModel{}))
}

// TestFIFO1kPoller checks the same property when every transfer is
// scheduled through the link heap and landed by the poller pool.
func TestFIFO1kPoller(t *testing.T) {
	runFIFOProperty(t, NewSim(fifoRanks, CostModel{Alpha: time.Microsecond}))
}

// TestAlltoallGoroutinesBounded pins the data plane's goroutine budget:
// during a 1k-rank all-to-all burst with thousands of simultaneously
// active links, the process may run the driver goroutines plus at most
// PollerCap pollers — never a goroutine per active pair, which is what
// the per-link drain design needed.
func TestAlltoallGoroutinesBounded(t *testing.T) {
	const (
		ranks   = 1000
		degree  = 8
		drivers = 4
	)
	f := NewSim(ranks, CostModel{Alpha: 500 * time.Microsecond})
	base := runtime.NumGoroutine()
	limit := base + drivers + f.PollerCap() + 8 // slack: GC/timer transients

	var done atomic.Int64
	var wg sync.WaitGroup
	perDriver := ranks / drivers
	for d := 0; d < drivers; d++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for src := lo; src < hi; src++ {
				for k := 1; k <= degree; k++ {
					f.Put(src, (src+k*117)%ranks, 8, nil, func() { done.Add(1) })
				}
			}
		}(d*perDriver, (d+1)*perDriver)
	}

	total := int64(ranks * degree)
	peak := 0
	deadline := time.Now().Add(10 * time.Second)
	for done.Load() < total {
		if g := runtime.NumGoroutine(); g > peak {
			peak = g
		}
		if time.Now().After(deadline) {
			t.Fatalf("alltoall stalled: %d/%d delivered", done.Load(), total)
		}
		time.Sleep(200 * time.Microsecond)
	}
	wg.Wait()
	if peak > limit {
		t.Fatalf("goroutine peak %d exceeds budget %d (base %d + %d drivers + PollerCap %d + slack)",
			peak, limit, base, drivers, f.PollerCap())
	}
	if f.PollerCap() > 8 {
		t.Fatalf("PollerCap %d exceeds fixed pool ceiling", f.PollerCap())
	}
}

// TestLinkRingReleasesEntries is the regression test for the drain-path
// head-retention bug: popped scheduled entries (and their payload /
// callback captures) must not stay reachable through the ring's backing
// array once delivered.
func TestLinkRingReleasesEntries(t *testing.T) {
	f := NewSim(2, CostModel{Alpha: 50 * time.Microsecond})
	const msgs = 12
	for i := 0; i < msgs; i++ {
		f.Send(0, 1, 1, make([]byte, 64))
	}
	for i := 0; i < msgs; i++ {
		f.Recv(1, 0, 1)
	}

	l := f.link(0, 1)
	deadline := time.Now().Add(2 * time.Second)
	for {
		l.mu.Lock()
		idle := l.state == linkIdle
		l.mu.Unlock()
		if idle {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("link never returned to idle")
		}
		time.Sleep(time.Millisecond)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	full := l.q[:cap(l.q)]
	for i := range full {
		s := &full[i]
		if s.apply != nil || s.onDone != nil || s.msg.Data != nil {
			t.Fatalf("ring slot %d still holds a delivered transfer (retention): %+v", i, s)
		}
	}
}

// TestMailboxReleasesMessages checks the same property for the mailbox
// rings: taken messages must not linger in the backing array.
func TestMailboxReleasesMessages(t *testing.T) {
	f := NewSim(2, CostModel{})
	const msgs = 10
	for i := 0; i < msgs; i++ {
		f.Send(0, 1, 3, []byte{byte(i)})
	}
	for i := 0; i < msgs; i++ {
		if _, ok := f.TryRecv(1, 0, 3); !ok {
			t.Fatalf("message %d missing", i)
		}
	}
	b := &f.boxes[1]
	b.mu.lock()
	defer b.mu.unlock()
	full := b.msgs[:cap(b.msgs)]
	for i := range full {
		if full[i].Data != nil {
			t.Fatalf("mailbox slot %d still pins a taken message", i)
		}
	}
}

// TestReliableLazyState checks that Reliable's per-link protocol state
// is lazy: a 2048-rank world constructs instantly (the old eager layout
// allocated two 2048² state arrays — gigabytes) and a single exchange
// only materializes the links it touched.
func TestReliableLazyState(t *testing.T) {
	const n = 2048
	start := time.Now()
	r := NewReliable(NewInline(n), RelConfig{})
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("construction took %v; per-link state is not lazy", d)
	}
	r.Send(0, n-1, 5, []byte("edge"))
	if m := r.Recv(n-1, 0, 5); string(m.Data) != "edge" {
		t.Fatalf("roundtrip payload = %q", m.Data)
	}
	links := 0
	for i := range r.sendSt.shards {
		sh := &r.sendSt.shards[i]
		sh.mu.Lock()
		links += len(sh.m)
		sh.mu.Unlock()
	}
	// 0→2047 data plus 2047→0 ack-side sender state at most; the eager
	// layout would show up as 2048² here.
	if links > 4 {
		t.Fatalf("%d sender links materialized after one exchange", links)
	}
}
