package fabric

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// Chaos wraps any Transport with a seeded, fully deterministic fault
// plan: per-link message drop, duplication, delay spikes, transient
// partitions, and permanent rank crashes. It is the failure half of the
// failure-domain story — the Reliable sublayer is the recovery half —
// and composes over either backend: Chaos(Sim) injects faults into the
// cost-modeled interconnect, Chaos(Inline) into the deterministic
// unit-test transport.
//
// Determinism is the design center. Whether op k on link (src,dst)
// faults, and how, is a pure function of (Seed, link, k): a counter per
// link indexes sends, and a splitmix64-style hash of the triple yields
// the decision. Two runs issuing the same per-link send sequences under
// the same plan produce byte-identical fault sequences — no global
// RNG, no time-based state. Transient partitions are therefore counted
// in operations (PartitionOps), not wall time, and rank crashes happen
// only by explicit Kill.
//
// Faults apply to two-sided Send traffic. A delay spike re-issues the
// send from a timer goroutine, which can reorder it past younger
// traffic on the same link — exactly the reordering the Reliable
// layer's sequence numbers exist to absorb. One-sided Put/Get pass
// through un-faulted except when an endpoint is dead, in which case
// both callbacks are dropped (the raw contract offers nowhere to report
// the loss — route one-sided traffic through Reliable, which converts
// it into a completed op plus a recorded link error).
type Chaos struct {
	inner    Transport
	plan     FaultPlan
	n        int
	schedLen uint64 // fault-schedule cycle length in ops (0 = flat plan)
	links    []chaosLink
	dead     []atomic.Bool

	drops  atomic.Int64
	dups   atomic.Int64
	spikes atomic.Int64
	parts  atomic.Int64

	recMu     sync.Mutex
	recording bool
	events    []FaultEvent
}

var _ Transport = (*Chaos)(nil)

// FaultPlan is a Chaos wrapper's seeded fault schedule. The probability
// fields are per-send rates in [0,1]; their sum must not exceed 1.
type FaultPlan struct {
	// Seed keys every fault decision. Same seed + same traffic = same
	// faults, byte for byte.
	Seed uint64
	// Drop is the probability a send is silently discarded.
	Drop float64
	// Dup is the probability a send is delivered twice.
	Dup float64
	// DelaySpike is the probability a send is held for SpikeLatency
	// before entering the inner transport (possibly reordering it).
	DelaySpike float64
	// Partition is the probability a send opens a transient partition:
	// it and the next PartitionOps-1 sends on the same link are dropped.
	Partition float64
	// SpikeLatency is the extra delay a spiked send suffers (default
	// 500µs when DelaySpike > 0 anywhere in the plan).
	SpikeLatency time.Duration
	// PartitionOps is how many consecutive sends a partition eats
	// (default 8 when Partition > 0 anywhere in the plan).
	PartitionOps int
	// Schedule, when non-empty, makes the plan time-varying: each link
	// cycles through the windows (a window covers Ops sends on that
	// link), and the window's rates REPLACE the flat rates above for
	// sends falling inside it. Each link enters the cycle at a seeded
	// phase offset, so links don't fault in lockstep — a burst window
	// hits different links at different times, and an alternating
	// clean/dropped schedule models independent link flapping. The
	// op-index domain keeps the non-stationarity exactly as replayable
	// as the flat plan.
	Schedule []FaultWindow
}

// FaultWindow is one segment of a time-varying fault schedule: Ops
// consecutive sends on a link faulting at the given rates.
type FaultWindow struct {
	Ops                              uint64
	Drop, Dup, DelaySpike, Partition float64
}

func (p FaultPlan) withDefaults() FaultPlan {
	spikes := p.DelaySpike > 0
	parts := p.Partition > 0
	for _, w := range p.Schedule {
		spikes = spikes || w.DelaySpike > 0
		parts = parts || w.Partition > 0
	}
	if spikes && p.SpikeLatency == 0 {
		p.SpikeLatency = 500 * time.Microsecond
	}
	if parts && p.PartitionOps == 0 {
		p.PartitionOps = 8
	}
	return p
}

func validateRates(drop, dup, spike, part float64) error {
	for _, v := range []float64{drop, dup, spike, part} {
		if v < 0 || v > 1 {
			return fmt.Errorf("fabric: chaos: fault rate %v outside [0,1]", v)
		}
	}
	if s := drop + dup + spike + part; s > 1 {
		return fmt.Errorf("fabric: chaos: fault rates sum to %v > 1", s)
	}
	return nil
}

func (p FaultPlan) validate() error {
	if err := validateRates(p.Drop, p.Dup, p.DelaySpike, p.Partition); err != nil {
		return err
	}
	for i, w := range p.Schedule {
		if w.Ops == 0 {
			return fmt.Errorf("fabric: chaos: schedule window %d has zero Ops", i)
		}
		if err := validateRates(w.Drop, w.Dup, w.DelaySpike, w.Partition); err != nil {
			return fmt.Errorf("fabric: chaos: schedule window %d: %w", i, err)
		}
	}
	return nil
}

// scheduleLen is the cycle length in ops (0 for a flat plan).
func (p FaultPlan) scheduleLen() uint64 {
	var n uint64
	for _, w := range p.Schedule {
		n += w.Ops
	}
	return n
}

// FaultEvent is one injected fault, recorded when SetRecording is on.
// The (Src, Dst, Op) triple identifies the faulted send; replaying the
// same traffic under the same seed reproduces the identical sequence.
type FaultEvent struct {
	Src, Dst int
	Op       uint64 // per-link send index
	Kind     string // "drop", "dup", "spike", "partition", "partition-drop", "dead"
}

// chaosLink is one (src,dst) pair's fault state: the send counter that
// indexes decisions and the remaining width of an open partition.
type chaosLink struct {
	mu       sync.Mutex
	op       uint64
	partLeft int
}

// NewChaos wraps inner with the given fault plan.
func NewChaos(inner Transport, plan FaultPlan) *Chaos {
	if err := plan.validate(); err != nil {
		panic(err)
	}
	n := inner.Size()
	return &Chaos{
		inner:    inner,
		plan:     plan.withDefaults(),
		n:        n,
		schedLen: plan.scheduleLen(),
		links:    make([]chaosLink, n*n),
		dead:     make([]atomic.Bool, n),
	}
}

// chaosHash maps (seed, link, op) to a uniform float64 in [0,1) via a
// splitmix64-style finalizer. Pure, so fault decisions replay exactly.
func chaosHash(seed, link, op uint64) float64 {
	x := seed ^ (link+1)*0x9E3779B97F4A7C15 ^ (op+1)*0xD1B54A32D192ED03
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// Kill permanently crashes a rank: every subsequent send touching it —
// either side — is discarded, as are one-sided ops. Deterministic by
// construction (faults derive from explicit calls, not clocks).
func (c *Chaos) Kill(rank int) { c.dead[rank].Store(true) }

// Alive reports whether rank has not been killed. The Reliable layer
// detects this interface to fast-fail sends to crashed ranks.
func (c *Chaos) Alive(rank int) bool { return !c.dead[rank].Load() }

// Drops returns how many sends chaos discarded (including partition
// and dead-rank discards).
func (c *Chaos) Drops() int64 { return c.drops.Load() }

// Dups returns how many sends were duplicated.
func (c *Chaos) Dups() int64 { return c.dups.Load() }

// Spikes returns how many sends suffered a delay spike.
func (c *Chaos) Spikes() int64 { return c.spikes.Load() }

// Partitions returns how many transient partitions opened.
func (c *Chaos) Partitions() int64 { return c.parts.Load() }

// SetRecording toggles the fault-event log (off by default; recording
// every event costs a lock per fault).
func (c *Chaos) SetRecording(on bool) {
	c.recMu.Lock()
	c.recording = on
	c.recMu.Unlock()
}

// Events returns a copy of the recorded fault log.
func (c *Chaos) Events() []FaultEvent {
	c.recMu.Lock()
	defer c.recMu.Unlock()
	return append([]FaultEvent(nil), c.events...)
}

func (c *Chaos) record(src, dst int, op uint64, kind string) {
	c.recMu.Lock()
	if c.recording {
		c.events = append(c.events, FaultEvent{Src: src, Dst: dst, Op: op, Kind: kind})
	}
	c.recMu.Unlock()
}

// rates resolves the fault rates governing op on link: the flat plan's,
// or — under a Schedule — the window the op falls in, after shifting by
// the link's seeded phase offset into the cycle.
func (c *Chaos) rates(link, op uint64) (drop, dup, spike, part float64) {
	p := c.plan
	if c.schedLen == 0 {
		return p.Drop, p.Dup, p.DelaySpike, p.Partition
	}
	pos := (op + splitmix64(p.Seed^(link+1)*0xA24BAED4963EE407)%c.schedLen) % c.schedLen
	for _, w := range p.Schedule {
		if pos < w.Ops {
			return w.Drop, w.Dup, w.DelaySpike, w.Partition
		}
		pos -= w.Ops
	}
	return 0, 0, 0, 0 // unreachable: pos < schedLen = sum of window Ops
}

// decide consumes one send slot on (src,dst) and returns the fault kind
// for it: "" for clean delivery.
func (c *Chaos) decide(src, dst int) (uint64, string) {
	link := uint64(src*c.n + dst)
	l := &c.links[src*c.n+dst]
	l.mu.Lock()
	op := l.op
	l.op++
	if l.partLeft > 0 {
		l.partLeft--
		l.mu.Unlock()
		return op, "partition-drop"
	}
	r := chaosHash(c.plan.Seed, link, op)
	drop, dup, spike, part := c.rates(link, op)
	var kind string
	switch {
	case r < drop:
		kind = "drop"
	case r < drop+dup:
		kind = "dup"
	case r < drop+dup+spike:
		kind = "spike"
	case r < drop+dup+spike+part:
		kind = "partition"
		l.partLeft = c.plan.PartitionOps - 1 // this send is the first casualty
	}
	l.mu.Unlock()
	return op, kind
}

// Send implements Transport, applying the fault plan.
func (c *Chaos) Send(src, dst, tag int, data []byte) {
	if c.dead[src].Load() || c.dead[dst].Load() {
		c.drops.Add(1)
		l := &c.links[src*c.n+dst]
		l.mu.Lock()
		op := l.op
		l.op++
		l.mu.Unlock()
		c.record(src, dst, op, "dead")
		return
	}
	op, kind := c.decide(src, dst)
	switch kind {
	case "drop", "partition-drop":
		c.drops.Add(1)
		c.record(src, dst, op, kind)
	case "partition":
		c.parts.Add(1)
		c.drops.Add(1)
		c.record(src, dst, op, kind)
	case "dup":
		c.dups.Add(1)
		c.record(src, dst, op, kind)
		c.inner.Send(src, dst, tag, data)
		c.inner.Send(src, dst, tag, data)
	case "spike":
		c.spikes.Add(1)
		c.record(src, dst, op, kind)
		// The caller may reuse data on return (eager contract), and the
		// inner Send happens later: copy now.
		buf := make([]byte, len(data))
		copy(buf, data)
		time.AfterFunc(c.plan.SpikeLatency, func() {
			if c.dead[src].Load() || c.dead[dst].Load() {
				c.drops.Add(1)
				return
			}
			c.inner.Send(src, dst, tag, buf)
		})
	default:
		c.inner.Send(src, dst, tag, data)
	}
}

// Put implements Transport. One-sided ops pass through un-faulted
// unless an endpoint is dead, in which case both callbacks are dropped
// — see the type comment for why Reliable is the answer.
func (c *Chaos) Put(src, dst, bytes int, apply, onDone func()) {
	if c.dead[src].Load() || c.dead[dst].Load() {
		c.drops.Add(1)
		return
	}
	c.inner.Put(src, dst, bytes, apply, onDone)
}

// Get implements Transport; same dead-rank semantics as Put.
func (c *Chaos) Get(src, dst, bytes int, apply, onDone func()) {
	if c.dead[src].Load() || c.dead[dst].Load() {
		c.drops.Add(1)
		return
	}
	c.inner.Get(src, dst, bytes, apply, onDone)
}

// Size implements Transport.
func (c *Chaos) Size() int { return c.inner.Size() }

// Cost implements Transport.
func (c *Chaos) Cost() CostModel { return c.inner.Cost() }

// Recv implements Transport.
func (c *Chaos) Recv(dst, src, tag int) Message { return c.inner.Recv(dst, src, tag) }

// RecvAsync implements Transport.
func (c *Chaos) RecvAsync(dst, src, tag int, fn func(Message)) { c.inner.RecvAsync(dst, src, tag, fn) }

// TryRecv implements Transport.
func (c *Chaos) TryRecv(dst, src, tag int) (Message, bool) { return c.inner.TryRecv(dst, src, tag) }

// Probe implements Transport.
func (c *Chaos) Probe(dst, src, tag int) (Message, bool) { return c.inner.Probe(dst, src, tag) }

// AllocTags implements Transport, delegating so layered protocols above
// and below the chaos wrapper share one reservation space.
func (c *Chaos) AllocTags(n int) int { return c.inner.AllocTags(n) }

// SetTracer implements Transport.
func (c *Chaos) SetTracer(tr *trace.Tracer) { c.inner.SetTracer(tr) }

// Stats implements Transport.
func (c *Chaos) Stats() (msgs, bytes int64) { return c.inner.Stats() }
