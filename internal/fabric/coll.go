package fabric

import (
	"fmt"
	"sync"
)

// epocher is the optional interface an elastic transport (Virtual)
// implements: a generation counter that advances whenever membership
// changes. Coll polls it at barrier entry to re-resolve membership
// lazily — collectives between two epoch bumps never pay for it.
type epocher interface{ Epoch() uint64 }

// ReduceOp combines two equal-length byte buffers element-wise (the
// interpretation — int64 sum, float64 max, ... — belongs to the caller's
// codec).
type ReduceOp func(acc, in []byte)

// Coll is the shared collectives layer: barrier, broadcast, reductions,
// gathers, all-to-all, and scan, implemented once over any Transport.
// Both the MPI and SHMEM libraries delegate here, so collective traffic
// from every module flows through the same fabric — real messages on
// reserved tags, contending with everything else in flight.
//
// One Coll serves one "world" of Size() participants; each participant
// calls each collective exactly once per invocation, passing its rank.
// Tags come from the transport's reserved space, so several Colls (one
// per library world) coexist on a shared transport without collisions.
// The per-(source,tag) FIFO guarantee keeps back-to-back collectives of
// the same kind correctly matched without sequence numbers, because
// every receive names its exact source.
type Coll struct {
	tr  Transport
	bar *Barrier

	epMu      sync.Mutex
	lastEpoch uint64

	tagBcast     int
	tagReduce    int
	tagGather    int
	tagAllgather int
	tagAlltoall  int
	tagScan      int
}

// NewColl creates a collectives layer over tr covering all of its
// endpoints, reserving the tag block it needs.
func NewColl(tr Transport) *Coll {
	base := tr.AllocTags(6)
	var ep uint64
	if e, ok := tr.(epocher); ok {
		ep = e.Epoch()
	}
	return &Coll{
		tr:        tr,
		bar:       NewBarrier(tr.Size()),
		lastEpoch: ep,

		tagBcast:     base,
		tagReduce:    base - 1,
		tagGather:    base - 2,
		tagAllgather: base - 3,
		tagAlltoall:  base - 4,
		tagScan:      base - 5,
	}
}

// Transport returns the underlying transport.
func (cl *Coll) Transport() Transport { return cl.tr }

// Size returns the number of participants.
func (cl *Coll) Size() int { return cl.tr.Size() }

// syncEpoch re-resolves membership at an epoch boundary: when an
// elastic transport's epoch advanced since the last collective, the
// barrier resizes to the current participant count. The elastic
// protocol guarantees no collective is in flight across an epoch bump
// (membership changes happen between job phases), so the resize cannot
// strand an arrival.
func (cl *Coll) syncEpoch() {
	e, ok := cl.tr.(epocher)
	if !ok {
		return
	}
	ep := e.Epoch()
	cl.epMu.Lock()
	if ep != cl.lastEpoch {
		cl.lastEpoch = ep
		cl.bar.Resize(cl.tr.Size())
	}
	cl.epMu.Unlock()
}

// Barrier blocks until every participant has entered.
func (cl *Coll) Barrier() {
	cl.syncEpoch()
	cl.bar.Await()
}

// BarrierAsync registers a barrier arrival and invokes fn (if non-nil)
// when all participants have arrived, without blocking the caller.
func (cl *Coll) BarrierAsync(fn func()) {
	cl.syncEpoch()
	cl.bar.Arrive(fn)
}

// recvInto receives a matching message into buf and returns the byte
// count, panicking on overflow (a protocol bug, not a user error).
func (cl *Coll) recvInto(buf []byte, rank, src, tag int) (recvSrc, n int) {
	m := cl.tr.Recv(rank, src, tag)
	if len(m.Data) > len(buf) {
		panic(fmt.Sprintf("fabric: collective message of %d bytes overflows %d-byte buffer at rank %d",
			len(m.Data), len(buf), rank))
	}
	copy(buf, m.Data)
	return m.Src, len(m.Data)
}

// Bcast broadcasts root's buf to all participants along a binomial tree
// (so the critical path is O(log n) messages, as in real MPI
// implementations). Non-root ranks receive into buf.
func (cl *Coll) Bcast(rank int, buf []byte, root int) {
	n := cl.Size()
	// Rotate ranks so the root is virtual rank 0.
	vr := (rank - root + n) % n
	// Receive from parent (unless root).
	if vr != 0 {
		mask := 1
		for mask < n {
			if vr&mask != 0 {
				parent := ((vr - mask) + root) % n
				cl.recvInto(buf, rank, parent, cl.tagBcast)
				break
			}
			mask <<= 1
		}
		// Forward to children above our lowest set bit.
		low := vr & (-vr)
		for mask = low >> 1; mask > 0; mask >>= 1 {
			child := vr + mask
			if child < n {
				cl.tr.Send(rank, (child+root)%n, cl.tagBcast, buf)
			}
		}
		return
	}
	// Root: send to each power-of-two child.
	for mask := nextPow2(n) >> 1; mask > 0; mask >>= 1 {
		child := mask
		if child < n {
			cl.tr.Send(rank, (child+root)%n, cl.tagBcast, buf)
		}
	}
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Reduce combines every participant's contribution with op; the result
// lands in recv on root only (recv may be nil elsewhere). contrib and
// recv must have equal length on ranks where present. Binomial-tree
// reduction toward the root.
func (cl *Coll) Reduce(rank int, recv, contrib []byte, op ReduceOp, root int) {
	n := cl.Size()
	vr := (rank - root + n) % n
	acc := make([]byte, len(contrib))
	copy(acc, contrib)
	tmp := make([]byte, len(contrib))
	for mask := 1; mask < n; mask <<= 1 {
		if vr&mask != 0 {
			parent := ((vr - mask) + root) % n
			cl.tr.Send(rank, parent, cl.tagReduce, acc)
			return
		}
		childV := vr + mask
		if childV < n {
			child := (childV + root) % n
			_, cnt := cl.recvInto(tmp, rank, child, cl.tagReduce)
			if cnt != len(acc) {
				panic(fmt.Sprintf("fabric: Reduce size mismatch: %d vs %d", cnt, len(acc)))
			}
			op(acc, tmp[:cnt])
		}
	}
	if recv == nil {
		panic("fabric: Reduce root requires a receive buffer")
	}
	copy(recv, acc)
}

// Allreduce is Reduce to rank 0 followed by Bcast; every participant
// receives the combined result in recv (used as scratch on non-roots).
func (cl *Coll) Allreduce(rank int, recv, contrib []byte, op ReduceOp) {
	cl.Reduce(rank, recv, contrib, op, 0)
	cl.Bcast(rank, recv, 0)
}

// Gather collects every participant's contribution at root; the result
// (indexed by rank) is returned on root, nil elsewhere. Contributions
// may vary in size.
func (cl *Coll) Gather(rank int, contrib []byte, root int) [][]byte {
	if rank != root {
		cl.tr.Send(rank, root, cl.tagGather, contrib)
		return nil
	}
	n := cl.Size()
	out := make([][]byte, n)
	out[root] = append([]byte(nil), contrib...)
	for i := 0; i < n-1; i++ {
		m := cl.tr.Recv(rank, AnySource, cl.tagGather)
		out[m.Src] = m.Data
	}
	return out
}

// Allgather collects every participant's contribution on every
// participant, indexed by rank. Implemented as a ring exchange: n-1
// steps, each forwarding the piece received in the previous step.
func (cl *Coll) Allgather(rank int, contrib []byte) [][]byte {
	n := cl.Size()
	out := make([][]byte, n)
	out[rank] = append([]byte(nil), contrib...)
	right := (rank + 1) % n
	left := (rank - 1 + n) % n
	cur := rank
	for step := 0; step < n-1; step++ {
		cl.tr.Send(rank, right, cl.tagAllgather, out[cur])
		m := cl.tr.Recv(rank, left, cl.tagAllgather)
		cur = (cur - 1 + n) % n
		out[cur] = m.Data
	}
	return out
}

// Alltoallv sends chunks[i] to participant i and returns the chunks
// received, indexed by source rank (chunks may vary in size — the "v"
// variant). All sends post eagerly, then n-1 receives collect.
func (cl *Coll) Alltoallv(rank int, chunks [][]byte) [][]byte {
	n := cl.Size()
	if len(chunks) != n {
		panic(fmt.Sprintf("fabric: Alltoallv needs %d chunks, got %d", n, len(chunks)))
	}
	out := make([][]byte, n)
	out[rank] = append([]byte(nil), chunks[rank]...)
	for d := 0; d < n; d++ {
		if d != rank {
			cl.tr.Send(rank, d, cl.tagAlltoall, chunks[d])
		}
	}
	for i := 0; i < n-1; i++ {
		m := cl.tr.Recv(rank, AnySource, cl.tagAlltoall)
		if out[m.Src] != nil && m.Src != rank {
			panic(fmt.Sprintf("fabric: Alltoallv duplicate chunk from %d", m.Src))
		}
		out[m.Src] = m.Data
	}
	return out
}

// Scan computes the inclusive prefix reduction over ranks: rank i
// receives op(contrib_0, ..., contrib_i). Linear pipeline.
func (cl *Coll) Scan(rank int, recv, contrib []byte, op ReduceOp) {
	acc := make([]byte, len(contrib))
	copy(acc, contrib)
	if rank > 0 {
		tmp := make([]byte, len(contrib))
		_, cnt := cl.recvInto(tmp, rank, rank-1, cl.tagScan)
		prev := tmp[:cnt]
		// acc = prev op acc: apply op with prev as the left operand.
		combined := make([]byte, len(prev))
		copy(combined, prev)
		op(combined, acc)
		acc = combined
	}
	if rank < cl.Size()-1 {
		cl.tr.Send(rank, rank+1, cl.tagScan, acc)
	}
	copy(recv, acc)
}
