package fabric

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/stats"
)

// Detector is a phi-accrual heartbeat failure detector (Hayashibara et
// al.) running entirely over the public Transport API: a dedicated
// monitor endpoint pings every watched endpoint each round on an
// AllocTags-reserved tag pair, watched endpoints echo, and the monitor
// accrues a per-endpoint suspicion level phi from the inter-arrival
// history of the echoes.
//
// The detector's clock is its own round counter, not wall time. A gap is
// "rounds since the last echo arrived", the arrival history is a sliding
// window of round-domain gaps, and phi is the negated log tail
// probability of the current gap under a normal fit of that window. Two
// consequences make this the right clock for a deterministic fabric:
//
//   - Detection latency is measured in rounds and — because Chaos fault
//     decisions are a pure function of (seed, link, op-index) and the
//     heartbeat links carry exactly one op per round — is itself a pure
//     function of the seed. Replays reproduce the same detection round.
//   - Idle time is invisible. Rounds only advance when the supervisor
//     ticks, so a job that pauses detection between phases resumes with
//     no accrued suspicion against anybody.
//
// The detector is built to coexist with Reliable's go-back-N masking:
// heartbeats ride the *raw* chaos transport (drops are real, so phi sees
// the loss process Reliable hides), the round window (RoundWait) is wide
// enough that a DelaySpike-delayed echo still lands in its round, and
// the suspicion threshold is tuned so a spike storm survived by
// go-back-N stays below it while a Kill — which silences the endpoint
// entirely — crosses it within a few rounds. Suspicion is advisory:
// remapping a falsely-suspected live rank wastes a spare endpoint but
// never corrupts the job, because recovery restores from checkpoint
// regardless.
//
// The monitor endpoint must be outside the job's epoch table (the
// convention is endpoint index == table capacity, with the transport
// sized capacity+1) so heartbeat links are disjoint from application
// links: neither traffic perturbs the other's per-link fault sequence.
type Detector struct {
	tr  Transport
	cfg DetectorConfig

	pingTag, pongTag int

	mu     sync.Mutex
	eps    map[int]*epState
	round  uint64
	events []SuspectEvent

	running bool
	stop    chan struct{}
	wg      sync.WaitGroup
}

// DetectorConfig tunes a Detector.
type DetectorConfig struct {
	// Monitor is the endpoint heartbeats originate from. It must not be
	// killed or carry application traffic.
	Monitor int
	// Window is the inter-arrival history length per endpoint (default
	// 32 gaps).
	Window int
	// Threshold is the phi level at which an endpoint becomes suspected
	// (default 8 — tail probability 1e-8, about a 4-round silence under
	// a healthy 1-gap history).
	Threshold float64
	// MinStdDev floors the fitted deviation in rounds (default 0.5), so
	// a perfectly regular history doesn't hair-trigger on one lost echo.
	MinStdDev float64
	// RoundWait is how long a Tick waits for echoes before evaluating
	// (default 2ms — comfortably above Chaos's default 500µs
	// DelaySpike, so a spiked echo still lands in its round).
	RoundWait time.Duration
	// Interval is the background ticking period for Start (default:
	// RoundWait).
	Interval time.Duration
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.Threshold <= 0 {
		c.Threshold = 8
	}
	if c.MinStdDev <= 0 {
		c.MinStdDev = 0.5
	}
	if c.RoundWait <= 0 {
		c.RoundWait = 2 * time.Millisecond
	}
	if c.Interval <= 0 {
		c.Interval = c.RoundWait
	}
	return c
}

// SuspectEvent is one suspicion transition on the detector's timeline.
type SuspectEvent struct {
	Round    uint64
	Endpoint int
	Phi      float64
	Kind     string // "suspect" (phi crossed up) or "clear" (echo heard again)
}

// epState is one watched endpoint's arrival history.
type epState struct {
	lastHeard uint64    // round the last echo arrived
	gaps      []float64 // sliding window of inter-arrival gaps, in rounds
	suspected bool
}

// NewDetector builds a detector over tr, reserving its tag pair and
// arming the echo collector on the monitor endpoint. Watch each
// endpoint of interest, then drive rounds with Tick/Baseline/Sweep (or
// Start for wall-clock background ticking).
func NewDetector(tr Transport, cfg DetectorConfig) *Detector {
	cfg = cfg.withDefaults()
	if cfg.Monitor < 0 || cfg.Monitor >= tr.Size() {
		panic(fmt.Sprintf("fabric: detector monitor endpoint %d outside transport [0,%d)", cfg.Monitor, tr.Size()))
	}
	base := tr.AllocTags(2)
	d := &Detector{
		tr:      tr,
		cfg:     cfg,
		pingTag: base,
		pongTag: base - 1,
		eps:     make(map[int]*epState),
	}
	d.armPong()
	return d
}

// armPong arms the monitor-side echo collector (the standard
// drain-and-re-arm pattern, so bursts of echoes cost one handler).
func (d *Detector) armPong() {
	d.tr.RecvAsync(d.cfg.Monitor, AnySource, d.pongTag, func(m Message) {
		d.heard(m)
		for {
			m2, ok := d.tr.TryRecv(d.cfg.Monitor, AnySource, d.pongTag)
			if !ok {
				break
			}
			d.heard(m2)
		}
		d.armPong()
	})
}

// heard records one echo arrival at the current round.
func (d *Detector) heard(m Message) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.eps[m.Src]
	if !ok {
		return // unwatched (stale echo after a remap)
	}
	gap := float64(d.round - st.lastHeard)
	if gap >= 1 {
		st.gaps = append(st.gaps, gap)
		if len(st.gaps) > d.cfg.Window {
			st.gaps = st.gaps[len(st.gaps)-d.cfg.Window:]
		}
	}
	st.lastHeard = d.round
}

// Watch starts monitoring an endpoint: arms its echo responder and
// seeds its arrival history with the expected one-round gap (the
// bootstrap prior; Baseline replaces it with observed gaps). Watching
// an already-watched endpoint is a no-op.
func (d *Detector) Watch(ep int) {
	d.mu.Lock()
	if _, ok := d.eps[ep]; ok {
		d.mu.Unlock()
		return
	}
	st := &epState{lastHeard: d.round}
	st.gaps = []float64{1, 1, 1, 1}
	d.eps[ep] = st
	d.mu.Unlock()
	d.armEcho(ep)
}

// Unwatch stops monitoring an endpoint (e.g. one abandoned by a remap).
// Its responder stays armed but harmless: echoes from unwatched sources
// are discarded, and a dead endpoint's responder never fires at all.
func (d *Detector) Unwatch(ep int) {
	d.mu.Lock()
	delete(d.eps, ep)
	d.mu.Unlock()
}

// armEcho arms the responder on a watched endpoint: every ping is
// echoed straight back to the monitor with the same payload.
func (d *Detector) armEcho(ep int) {
	d.tr.RecvAsync(ep, d.cfg.Monitor, d.pingTag, func(m Message) {
		d.tr.Send(ep, d.cfg.Monitor, d.pongTag, m.Data)
		for {
			m2, ok := d.tr.TryRecv(ep, d.cfg.Monitor, d.pingTag)
			if !ok {
				break
			}
			d.tr.Send(ep, d.cfg.Monitor, d.pongTag, m2.Data)
		}
		d.armEcho(ep)
	})
}

// Tick runs one detection round: ping every watched endpoint, wait
// RoundWait for echoes, then re-evaluate every phi and record suspicion
// transitions. Returns the endpoints suspected as of this round.
func (d *Detector) Tick() []int {
	d.mu.Lock()
	d.round++
	round := d.round
	targets := make([]int, 0, len(d.eps))
	for ep := range d.eps {
		targets = append(targets, ep)
	}
	d.mu.Unlock()

	var payload [8]byte
	binary.LittleEndian.PutUint64(payload[:], round)
	for _, ep := range targets {
		d.tr.Send(d.cfg.Monitor, ep, d.pingTag, payload[:])
	}
	time.Sleep(d.cfg.RoundWait)

	d.mu.Lock()
	defer d.mu.Unlock()
	var suspects []int
	maxPhi := 0.0
	// Evaluate in sorted endpoint order so the suspect list and event
	// timeline are deterministic (map iteration order is not).
	eps := make([]int, 0, len(d.eps))
	for ep := range d.eps {
		eps = append(eps, ep)
	}
	sort.Ints(eps)
	for _, ep := range eps {
		st := d.eps[ep]
		phi := d.phiLocked(st)
		if phi > maxPhi {
			maxPhi = phi
		}
		if phi >= d.cfg.Threshold {
			if !st.suspected {
				st.suspected = true
				d.events = append(d.events, SuspectEvent{Round: round, Endpoint: ep, Phi: phi, Kind: "suspect"})
			}
			suspects = append(suspects, ep)
		} else if st.suspected {
			st.suspected = false
			d.events = append(d.events, SuspectEvent{Round: round, Endpoint: ep, Phi: phi, Kind: "clear"})
		}
	}
	stats.SetGauge("detector", "round", float64(round))
	stats.SetGauge("detector", "suspected", float64(len(suspects)))
	stats.SetGauge("detector", "max_phi", math.Min(maxPhi, 99))
	return suspects
}

// Baseline runs n warm-up rounds so every watched endpoint's history
// holds observed gaps (including the ambient drop rate) before the
// first suspicion matters.
func (d *Detector) Baseline(n int) {
	for i := 0; i < n; i++ {
		d.Tick()
	}
}

// Sweep ticks until at least one endpoint is suspected or maxRounds
// elapse, returning the suspects (nil if none crossed the threshold)
// and the number of rounds consumed. This is the supervisor's
// post-failure probe: detection latency is the returned round count.
func (d *Detector) Sweep(maxRounds int) (suspects []int, rounds int) {
	for rounds < maxRounds {
		rounds++
		if s := d.Tick(); len(s) > 0 {
			return s, rounds
		}
	}
	return nil, rounds
}

// Phi returns an endpoint's current suspicion level (0 for unwatched).
func (d *Detector) Phi(ep int) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.eps[ep]
	if !ok {
		return 0
	}
	return d.phiLocked(st)
}

// Suspected reports whether an endpoint's phi crossed the threshold at
// the last Tick evaluation.
func (d *Detector) Suspected(ep int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.eps[ep]
	return ok && st.suspected
}

// Round returns the detector's round counter.
func (d *Detector) Round() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.round
}

// Events returns a copy of the suspicion-transition timeline.
func (d *Detector) Events() []SuspectEvent {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]SuspectEvent(nil), d.events...)
}

// phiLocked computes phi for one endpoint: the negated log10 tail
// probability of the current silence under a normal fit of the gap
// window, phi = -log10 P(gap >= now - lastHeard).
func (d *Detector) phiLocked(st *epState) float64 {
	gap := float64(d.round - st.lastHeard)
	if gap <= 0 {
		return 0
	}
	var sum, sq float64
	for _, g := range st.gaps {
		sum += g
		sq += g * g
	}
	n := float64(len(st.gaps))
	mean := sum / n
	sigma := math.Sqrt(math.Max(sq/n-mean*mean, 0))
	if sigma < d.cfg.MinStdDev {
		sigma = d.cfg.MinStdDev
	}
	tail := 0.5 * math.Erfc((gap-mean)/(sigma*math.Sqrt2))
	if tail <= 1e-99 {
		return 99 // saturate: the endpoint is silent beyond any doubt
	}
	return -math.Log10(tail)
}

// Start begins background ticking every Interval until Stop — the
// wall-clock deployment mode. Supervisors that need replayable
// detection latencies drive Tick/Sweep synchronously instead.
func (d *Detector) Start() {
	d.mu.Lock()
	if d.running {
		d.mu.Unlock()
		return
	}
	d.running = true
	d.stop = make(chan struct{})
	stop := d.stop
	d.mu.Unlock()

	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			d.Tick()
			select {
			case <-stop:
				return
			case <-time.After(d.cfg.Interval):
			}
		}
	}()
}

// Stop halts background ticking and joins the ticker goroutine.
func (d *Detector) Stop() {
	d.mu.Lock()
	if !d.running {
		d.mu.Unlock()
		return
	}
	d.running = false
	close(d.stop)
	d.mu.Unlock()
	d.wg.Wait()
}
