package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event JSON export (the "JSON Array Format" object form
// understood by Perfetto and chrome://tracing):
//
//   - one track (tid) per worker identity, plus an "external" track for
//     events recorded outside any worker;
//   - task executions as nested B/E duration slices named after their
//     place (nesting is exact: a task that waits on a future executes
//     other tasks on the same worker, which appear as child slices);
//   - suspended tasks as async spans (ph "b"/"e", id = task ID), so a
//     task blocked on a future renders as a bar spanning its suspension
//     even while its worker runs other slices;
//   - scheduler edges (spawn, steal, park/unpark) as thread-scoped
//     instants;
//   - queue-depth samples as counter tracks ("queue <place>");
//   - simnet messages as instants carrying src/dst/bytes args.
//
// Timestamps are microseconds (the trace-event unit) with nanosecond
// precision retained in the fraction.

const chromePID = 1

// chromeEvent is one trace-event record. Args is a map so json.Marshal
// emits keys in sorted (deterministic) order.
type chromeEvent struct {
	Name  string         `json:"name,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// chromeTID maps a recording worker identity to its track.
func (t *Tracer) chromeTID(worker int32) int {
	if worker == ExternalWorker {
		return len(t.rings)
	}
	return int(worker)
}

// chromeFor converts one event; ok=false means the event has no chrome
// representation (never the case today, kept for forward compatibility).
func (t *Tracer) chromeFor(e Event) (chromeEvent, bool) {
	c := chromeEvent{
		TS:  float64(e.TS) / 1e3,
		PID: chromePID,
		TID: t.chromeTID(e.Worker),
	}
	switch e.Kind {
	case EvStart:
		c.Ph, c.Cat = "B", "task"
		c.Name = t.PlaceName(e.Place)
		c.Args = map[string]any{"task": e.Task}
	case EvFinish:
		c.Ph, c.Cat = "E", "task"
	case EvSuspend, EvResume:
		c.Cat, c.Name = "suspend", "suspended"
		c.ID = fmt.Sprintf("0x%x", e.Task)
		if e.Kind == EvSuspend {
			c.Ph = "b"
		} else {
			c.Ph = "e"
		}
	case EvQueueDepth:
		c.Ph = "C"
		c.Name = "queue " + t.PlaceName(e.Place)
		c.Args = map[string]any{"depth": e.Arg}
	case EvMsgSend, EvMsgRecv:
		c.Ph, c.Scope = "i", "t"
		c.Name = e.Kind.String()
		c.Args = map[string]any{
			"src":   e.Task >> 32,
			"dst":   e.Task & 0xffffffff,
			"bytes": e.Arg,
		}
	case EvSpawn, EvStealAttempt, EvStealSuccess, EvPark, EvUnpark:
		c.Ph, c.Scope = "i", "t"
		c.Name = e.Kind.String()
		args := map[string]any{}
		if e.Place != NoPlace {
			args["place"] = t.PlaceName(e.Place)
		}
		if e.Task != 0 {
			args["task"] = e.Task
		}
		if len(args) > 0 {
			c.Args = args
		}
	default:
		return c, false
	}
	return c, true
}

// WriteChrome writes the full trace as Chrome trace-event JSON. For an
// exact dump, pause recording (Disable) and reach quiescence first;
// Runtime.TraceDump does both.
func (t *Tracer) WriteChrome(w io.Writer) error {
	evs := t.Events()
	rings := t.activeRings()
	out := make([]chromeEvent, 0, len(evs)+len(rings)+3)
	meta := func(name string, tid int, args map[string]any) {
		out = append(out, chromeEvent{Name: name, Ph: "M", PID: chromePID, TID: tid, Args: args})
	}
	meta("process_name", 0, map[string]any{"name": "hiper"})
	meta("hiper_dropped", 0, map[string]any{"dropped": t.Dropped()})
	// Only identities that actually recorded get a named track; idle
	// substitution slots would otherwise bury the real workers in
	// hundreds of empty tracks.
	for _, g := range rings {
		meta("thread_name", int(g.id), map[string]any{"name": fmt.Sprintf("worker %d", g.id)})
	}
	meta("thread_name", len(t.rings), map[string]any{"name": "external"})
	for _, e := range evs {
		if c, ok := t.chromeFor(e); ok {
			out = append(out, c)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: out})
}

// ParseChrome decodes Chrome trace-event JSON produced by WriteChrome
// back into events plus the worker-count and place-name context needed to
// analyze them. This is the round-trip path: any tool downstream of the
// JSON artifact (the text summarizer, regression diffing) reconstructs
// the same event stream the tracer recorded, minus torn/overwritten
// history.
func ParseChrome(data []byte) ([]Event, *Meta, error) {
	var f chromeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, nil, fmt.Errorf("trace: parsing chrome JSON: %w", err)
	}
	m := &Meta{placeIDs: map[string]int32{}}
	kindByName := map[string]Kind{}
	for k := Kind(0); k < numKinds; k++ {
		kindByName[k.String()] = k
	}
	externalTID := -1
	for _, c := range f.TraceEvents {
		if c.Ph == "M" && c.Name == "thread_name" {
			if name, _ := c.Args["name"].(string); name == "external" {
				externalTID = c.TID
			} else if c.TID+1 > m.Workers {
				m.Workers = c.TID + 1
			}
		}
	}
	placeID := func(name string) int32 {
		id, ok := m.placeIDs[name]
		if !ok {
			id = int32(len(m.PlaceNames))
			m.placeIDs[name] = id
			m.PlaceNames = append(m.PlaceNames, name)
		}
		return id
	}
	worker := func(tid int) int32 {
		if tid == externalTID {
			return ExternalWorker
		}
		return int32(tid)
	}
	num := func(v any) uint64 {
		f, _ := v.(float64)
		return uint64(f)
	}
	var evs []Event
	for _, c := range f.TraceEvents {
		e := Event{TS: int64(c.TS * 1e3), Worker: worker(c.TID), Place: NoPlace}
		switch {
		case c.Ph == "M":
			continue
		case c.Ph == "B":
			e.Kind = EvStart
			e.Place = placeID(c.Name)
			e.Task = num(c.Args["task"])
		case c.Ph == "E":
			e.Kind = EvFinish
		case c.Ph == "b":
			e.Kind = EvSuspend
		case c.Ph == "e":
			e.Kind = EvResume
		case c.Ph == "C":
			e.Kind = EvQueueDepth
			name := c.Name
			if len(name) > 6 && name[:6] == "queue " {
				name = name[6:]
			}
			e.Place = placeID(name)
			e.Arg = num(c.Args["depth"])
		case c.Ph == "i":
			k, ok := kindByName[c.Name]
			if !ok {
				continue
			}
			e.Kind = k
			if k == EvMsgSend || k == EvMsgRecv {
				e.Task = num(c.Args["src"])<<32 | num(c.Args["dst"])
				e.Arg = num(c.Args["bytes"])
			} else {
				if p, ok := c.Args["place"].(string); ok {
					e.Place = placeID(p)
				}
				e.Task = num(c.Args["task"])
			}
		default:
			continue
		}
		evs = append(evs, e)
	}
	return evs, m, nil
}

// Meta is the context recovered from a parsed Chrome trace.
type Meta struct {
	Workers    int
	PlaceNames []string
	placeIDs   map[string]int32
}

// PlaceName resolves a reconstructed place ID.
func (m *Meta) PlaceName(id int32) string {
	if id >= 0 && int(id) < len(m.PlaceNames) {
		return m.PlaceNames[id]
	}
	return fmt.Sprintf("place%d", id)
}

// validPhases is the set of trace-event phase codes WriteChrome emits.
var validPhases = map[string]bool{
	"M": true, "B": true, "E": true, "b": true, "e": true, "i": true, "C": true,
}

// ValidateChrome checks that data conforms to the Chrome trace-event JSON
// schema subset WriteChrome produces: a traceEvents array whose records
// carry a known phase, a non-negative timestamp, and pid/tid tracks; B/E
// slices balance per track (unless the hiper_dropped metadata records
// overwritten history — rings keep recent events, so a drop can orphan an
// E whose B was overwritten); async spans carry ids; counters carry
// numeric samples; and thread-name metadata names every referenced track.
func ValidateChrome(data []byte) error {
	var f chromeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("trace: chrome JSON does not parse: %w", err)
	}
	if len(f.TraceEvents) == 0 {
		return fmt.Errorf("trace: chrome JSON has no traceEvents")
	}
	var dropped float64
	for _, c := range f.TraceEvents {
		if c.Ph == "M" && c.Name == "hiper_dropped" {
			dropped, _ = c.Args["dropped"].(float64)
		}
	}
	named := map[int]bool{}
	depth := map[int]int{}
	for i, c := range f.TraceEvents {
		if !validPhases[c.Ph] {
			return fmt.Errorf("trace: event %d has unknown phase %q", i, c.Ph)
		}
		if c.TS < 0 {
			return fmt.Errorf("trace: event %d has negative ts %v", i, c.TS)
		}
		if c.Ph != "M" && c.PID != chromePID {
			return fmt.Errorf("trace: event %d has pid %d, want %d", i, c.PID, chromePID)
		}
		switch c.Ph {
		case "M":
			if c.Name == "thread_name" {
				named[c.TID] = true
			}
		case "B":
			if c.Name == "" {
				return fmt.Errorf("trace: duration slice %d has no name", i)
			}
			depth[c.TID]++
		case "E":
			depth[c.TID]--
			if depth[c.TID] < 0 {
				if dropped == 0 {
					return fmt.Errorf("trace: track %d closes a slice it never opened and no drops are recorded", c.TID)
				}
				depth[c.TID] = 0 // the B was overwritten at a ring wrap
			}
		case "b", "e":
			if c.ID == "" {
				return fmt.Errorf("trace: async event %d has no id", i)
			}
		case "C":
			if c.Name == "" {
				return fmt.Errorf("trace: counter event %d has no name", i)
			}
			if _, ok := c.Args["depth"].(float64); !ok {
				return fmt.Errorf("trace: counter event %d has no numeric depth", i)
			}
		case "i":
			if c.Name == "" {
				return fmt.Errorf("trace: instant event %d has no name", i)
			}
		}
	}
	for tid := range depth {
		if !named[tid] {
			return fmt.Errorf("trace: track %d has events but no thread_name metadata", tid)
		}
	}
	return nil
}

// Summarize parses Chrome trace JSON (as written by WriteChrome) and
// renders the plain-text top-N summary — the round-trip guarantee that
// the JSON artifact carries everything the summarizer needs.
func Summarize(data []byte, topN int) (string, error) {
	evs, m, err := ParseChrome(data)
	if err != nil {
		return "", err
	}
	d := Analyze(evs, m.PlaceName)
	return d.Format(topN), nil
}
