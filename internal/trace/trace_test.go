package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
)

// scriptClock returns a clock yielding t0, t0+step, t0+2*step, ...
func scriptClock(t0, step int64) func() int64 {
	n := int64(0)
	return func() int64 {
		v := t0 + n*step
		n++
		return v
	}
}

func TestKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < numKinds; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[s] {
			t.Fatalf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Fatalf("out-of-range kind: %q", got)
	}
}

func TestRingWrapAndDrop(t *testing.T) {
	tr := New(1, Config{RingSize: 4})
	tr.SetClock(scriptClock(0, 1))
	g := tr.Ring(0)
	for i := 0; i < 10; i++ {
		g.Record(EvSpawn, 0, uint64(i+1), 0)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring of 4 holds %d events", len(evs))
	}
	// Oldest first, most recent history retained.
	for i, e := range evs {
		if want := uint64(7 + i); e.Task != want {
			t.Fatalf("event %d: task %d, want %d", i, e.Task, want)
		}
	}
	if d := tr.Dropped(); d != 6 {
		t.Fatalf("dropped = %d, want 6", d)
	}
}

func TestRingSizeRounding(t *testing.T) {
	if got := (Config{RingSize: 5}).ringSize(); got != 8 {
		t.Fatalf("ringSize(5) = %d, want 8", got)
	}
	if got := (Config{}).ringSize(); got != defaultRingSize {
		t.Fatalf("default ringSize = %d, want %d", got, defaultRingSize)
	}
}

func TestEnableGate(t *testing.T) {
	tr := New(1, Config{RingSize: 8})
	tr.Disable()
	tr.RecordExternal(EvMsgSend, NoPlace, 1, 1)
	if n := len(tr.Events()); n != 0 {
		t.Fatalf("disabled tracer recorded %d external events", n)
	}
	tr.Enable()
	tr.RecordExternal(EvMsgSend, NoPlace, 1, 1)
	if n := len(tr.Events()); n != 1 {
		t.Fatalf("enabled tracer recorded %d external events, want 1", n)
	}
}

func TestTaskIDsMonotonic(t *testing.T) {
	tr := New(1, Config{})
	a, b := tr.NextTaskID(), tr.NextTaskID()
	if a == 0 || b != a+1 {
		t.Fatalf("task ids %d, %d", a, b)
	}
}

// script records a small, fully deterministic two-worker trace with
// external simnet events; shared by the analyze, golden, and round-trip
// tests.
func scriptedTracer() *Tracer {
	tr := New(2, Config{RingSize: 64})
	tr.SetClock(scriptClock(1000, 1000)) // 1µs epoch, 1µs apart
	tr.SetPlaceNames([]string{"sysmem0", "interconnect0"})
	w0, w1 := tr.Ring(0), tr.Ring(1)
	w0.Record(EvSpawn, 0, 1, 0)        // ts 1000
	w0.Record(EvQueueDepth, 0, 0, 3)   // ts 2000
	w0.Record(EvStart, 0, 1, 0)        // ts 3000
	w0.Record(EvSpawn, 0, 2, 0)        // ts 4000
	w1.Record(EvStealAttempt, 0, 0, 0) // ts 5000
	w1.Record(EvStealSuccess, 0, 2, 0) // ts 6000
	w1.Record(EvStart, 0, 2, 0)        // ts 7000
	w0.Record(EvSuspend, NoPlace, 1, 0)
	w1.Record(EvFinish, 0, 2, 0)
	w0.Record(EvResume, NoPlace, 1, 0)
	w0.Record(EvFinish, 0, 1, 0)
	w1.Record(EvPark, NoPlace, 0, 0)
	w1.Record(EvUnpark, NoPlace, 0, 0)
	tr.RecordExternal(EvMsgSend, NoPlace, 0<<32|1, 128)
	tr.RecordExternal(EvMsgRecv, NoPlace, 0<<32|1, 128)
	// A one-sided put from rank 1 to rank 2, still in flight at snapshot
	// time: sent bytes lead delivered bytes.
	tr.RecordExternal(EvMsgSend, NoPlace, 1<<32|2, 64)
	return tr
}

func TestAnalyzeDerived(t *testing.T) {
	tr := scriptedTracer()
	d := tr.Derived()
	if d.Spawns != 2 || d.TasksStarted != 2 || d.TasksFinished != 2 {
		t.Fatalf("task counts: %+v", d)
	}
	if d.StealAttempts != 1 || d.Steals != 1 || d.StealSuccessRate != 1.0 {
		t.Fatalf("steal counts: %+v", d)
	}
	if d.Parks != 1 || d.Unparks != 1 {
		t.Fatalf("park counts: %+v", d)
	}
	if d.MeanParkLatency != 1*time.Microsecond {
		t.Fatalf("park latency %v, want 1µs", d.MeanParkLatency)
	}
	if d.Suspends != 1 {
		t.Fatalf("suspends %d, want 1", d.Suspends)
	}
	if d.MsgsSent != 2 || d.MsgsRecvd != 1 || d.MsgBytes != 192 || d.MsgBytesRecvd != 128 {
		t.Fatalf("msg counts: %+v", d)
	}
	if len(d.Places) != 1 || d.Places[0].Place != "sysmem0" {
		t.Fatalf("places: %+v", d.Places)
	}
	if d.Places[0].TasksStarted != 2 || d.Places[0].MaxQueueDepth != 3 {
		t.Fatalf("place stats: %+v", d.Places[0])
	}
	// Busy time: w0 ran task 1 from ts 3000 to finish; w1 from 7000 to 9000.
	if len(d.Workers) < 2 {
		t.Fatalf("worker rows: %+v", d.Workers)
	}
	for _, w := range d.Workers {
		if (w.Worker == 0 || w.Worker == 1) && w.Tasks != 1 {
			t.Fatalf("worker %d tasks = %d, want 1", w.Worker, w.Tasks)
		}
	}
}

func TestSummaryRoundTripThroughChrome(t *testing.T) {
	tr := scriptedTracer()
	direct := tr.Summary(4)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	viaJSON, err := Summarize(buf.Bytes(), 4)
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if direct != viaJSON {
		t.Fatalf("summary diverges after Chrome JSON round-trip:\n-- direct --\n%s\n-- via JSON --\n%s", direct, viaJSON)
	}
	for _, want := range []string{"tasks", "steals", "parks", "messages", "sysmem0"} {
		if !strings.Contains(direct, want) {
			t.Fatalf("summary missing %q:\n%s", want, direct)
		}
	}
}

func TestPublishGauges(t *testing.T) {
	stats.Reset()
	defer stats.Reset()
	tr := scriptedTracer()
	tr.Derived().Publish()
	rep := stats.Report()
	for _, want := range []string{"steal_success_rate", "mean_park_latency_us", "tasks_per_sec[sysmem0]", "msgs_recvd", "msg_bytes_recvd"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("stats report missing gauge %q:\n%s", want, rep)
		}
	}
}

func TestConcurrentRecordAndSnapshot(t *testing.T) {
	// Exercised under -race by `make race`: single-writer rings plus the
	// external ring recorded from several goroutines while Events() and
	// WriteChrome run concurrently must be data-race free.
	tr := New(2, Config{RingSize: 256})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			tr.Ring(0).Record(EvSpawn, 0, uint64(i), 0)
		}
	}()
	go func() {
		for i := 0; i < 2000; i++ {
			tr.RecordExternal(EvMsgSend, NoPlace, uint64(i)<<32|1, 8)
		}
	}()
	for i := 0; i < 50; i++ {
		_ = tr.Events()
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatalf("WriteChrome during recording: %v", err)
		}
	}
	<-done
}
