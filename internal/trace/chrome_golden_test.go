package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// TestChromeGolden pins the exact Chrome trace-event JSON the exporter
// emits for a scripted, fixed-clock trace. Any schema change — field
// renames, phase mapping, metadata shape — shows up as a diff here and
// must be deliberate (Perfetto and downstream tooling consume this
// format). Regenerate with: go test ./internal/trace -run Golden -update-golden
func TestChromeGolden(t *testing.T) {
	tr := scriptedTracer()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("generated trace fails schema validation: %v", err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome JSON diverges from golden file.\n-- got --\n%s\n-- want --\n%s", buf.Bytes(), want)
	}
	// The golden artifact itself must stay schema-valid.
	if err := ValidateChrome(want); err != nil {
		t.Fatalf("golden file fails schema validation: %v", err)
	}
}
