// Package trace is the runtime-wide tracing layer: per-worker,
// fixed-capacity event ring buffers recording the full task lifecycle —
// spawn, steal-attempt/steal-success, start, suspend-on-future, resume,
// finish, park/unpark — plus place-tagged queue-depth samples and simnet
// message send/recv.
//
// Design constraints, in order:
//
//  1. Disabled tracing must cost (almost) nothing: the runtime checks one
//     pointer, and an armed-but-paused tracer adds one atomic load. No
//     event machinery runs until both gates pass.
//  2. The enabled hot path takes no locks: each worker identity owns one
//     single-writer ring; only code running outside any worker (module
//     completion goroutines, simnet delivery goroutines) shares a
//     mutex-guarded external ring.
//  3. Memory is bounded: rings have fixed capacity and overwrite their
//     oldest events (the drop policy — recent history wins). Dropped()
//     reports how much history was lost.
//
// Ring slots are stored through atomics so that an exporter may snapshot
// concurrently with live writers without data races; a snapshot taken
// while workers are actively recording may contain a torn event at the
// wrap boundary, so exporters that need exactness (Runtime.TraceDump)
// pause recording first. Exporters: Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing, one track per worker, async spans for
// suspended tasks), a plain-text top-N summary, and derived counters
// merged into internal/stats.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates the event taxonomy.
type Kind uint8

const (
	// EvSpawn: a task became eligible and was enqueued at a place.
	EvSpawn Kind = iota
	// EvStealAttempt: a worker scanned a non-empty place on its steal path.
	EvStealAttempt
	// EvStealSuccess: the scan obtained a task (from a victim deque or the
	// place's injector).
	EvStealSuccess
	// EvStart / EvFinish bracket one task execution on a worker.
	EvStart
	EvFinish
	// EvSuspend / EvResume bracket a task blocked on an unsatisfied future
	// (exported as an async span: the worker runs other tasks meanwhile).
	EvSuspend
	EvResume
	// EvPark / EvUnpark bracket a worker sleeping in its parking slot.
	EvPark
	EvUnpark
	// EvQueueDepth is a place-tagged queue-depth sample (Arg = depth).
	EvQueueDepth
	// EvMsgSend / EvMsgRecv are simnet message events (Task packs
	// src<<32|dst, Arg = payload bytes).
	EvMsgSend
	EvMsgRecv

	numKinds
)

var kindNames = [numKinds]string{
	"spawn", "steal-attempt", "steal", "start", "finish",
	"suspend", "resume", "park", "unpark", "queue-depth",
	"msg-send", "msg-recv",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ExternalWorker is the Worker value of events recorded outside any
// worker identity (injector spawns, simnet goroutines).
const ExternalWorker int32 = -1

// NoPlace is the Place value of events not tagged with a place.
const NoPlace int32 = -1

// Event is one decoded trace record.
type Event struct {
	TS     int64 // nanoseconds since the tracer epoch
	Kind   Kind
	Worker int32  // recording worker identity, or ExternalWorker
	Place  int32  // place ID, or NoPlace
	Task   uint64 // task ID (0 = none), or packed src<<32|dst for messages
	Arg    uint64 // kind-specific payload (queue depth, message bytes)
}

// Config tunes a Tracer. The zero value gives usable defaults.
type Config struct {
	// RingSize is the per-worker event capacity, rounded up to a power of
	// two. Default 65536. When a ring fills, the oldest events are
	// overwritten (recent history wins).
	RingSize int
	// PprofLabels attaches runtime/pprof labels ("worker", "place") around
	// task execution so CPU profiles slice by scheduler context.
	PprofLabels bool
	// OutPath, if non-empty, makes Runtime.Close write the Chrome trace
	// JSON there during shutdown.
	OutPath string
}

const defaultRingSize = 1 << 16

func (c Config) ringSize() int {
	n := c.RingSize
	if n <= 0 {
		n = defaultRingSize
	}
	// Round up to a power of two for mask indexing.
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// slot is one ring entry. Fields are atomics so exporters may read
// concurrently with the (single) writer without data races; meta packs
// kind<<32 | uint32(place).
type slot struct {
	ts   atomic.Int64
	meta atomic.Uint64
	task atomic.Uint64
	arg  atomic.Uint64
}

// Ring is one fixed-capacity event buffer with a single designated
// writer (the owning worker identity). Record takes no locks.
type Ring struct {
	tr   *Tracer
	id   int32
	mask uint64
	pos  atomic.Uint64 // total events ever recorded; slot index = pos & mask
	buf  []slot
}

// Record appends one event. Only the ring's owning goroutine may call it
// (single-writer by design); concurrent readers are safe.
func (g *Ring) Record(k Kind, place int32, task, arg uint64) {
	p := g.pos.Load()
	s := &g.buf[p&g.mask]
	s.ts.Store(g.tr.now())
	s.meta.Store(uint64(k)<<32 | uint64(uint32(place)))
	s.task.Store(task)
	s.arg.Store(arg)
	g.pos.Store(p + 1)
}

// len reports how many events are currently held (capped at capacity).
func (g *Ring) len() int {
	n := g.pos.Load()
	if n > uint64(len(g.buf)) {
		return len(g.buf)
	}
	return int(n)
}

// dropped reports how many events were overwritten.
func (g *Ring) dropped() uint64 {
	n := g.pos.Load()
	if n > uint64(len(g.buf)) {
		return n - uint64(len(g.buf))
	}
	return 0
}

// snapshot appends the ring's events, oldest first, to dst.
func (g *Ring) snapshot(dst []Event) []Event {
	end := g.pos.Load()
	start := uint64(0)
	if end > uint64(len(g.buf)) {
		start = end - uint64(len(g.buf))
	}
	for p := start; p < end; p++ {
		s := &g.buf[p&g.mask]
		meta := s.meta.Load()
		dst = append(dst, Event{
			TS:     s.ts.Load(),
			Kind:   Kind(meta >> 32),
			Worker: g.id,
			Place:  int32(uint32(meta)),
			Task:   s.task.Load(),
			Arg:    s.arg.Load(),
		})
	}
	return dst
}

// Tracer owns one ring per worker identity plus a shared external ring,
// a task-ID allocator, and the recording gate.
type Tracer struct {
	cfg     Config
	enabled atomic.Bool
	epoch   time.Time
	clock   func() int64 // nanoseconds since epoch; injectable for tests

	// rings is indexed by worker identity. Slots fill lazily on first
	// Ring call: the identity space includes hundreds of substitution
	// slots that mostly never run, and a ring is ringSize×32 bytes —
	// eager allocation would cost hundreds of megabytes up front.
	rings []atomic.Pointer[Ring]
	ext   *Ring
	extMu sync.Mutex

	nextTask   atomic.Uint64
	placeNames []string
	policy     string
}

// New creates a tracer covering worker identities 0..workers-1 plus the
// external ring. Per-identity rings allocate on first use (see Ring).
// The tracer starts enabled.
func New(workers int, cfg Config) *Tracer {
	t := &Tracer{cfg: cfg, epoch: time.Now()}
	t.clock = func() int64 { return int64(time.Since(t.epoch)) }
	t.rings = make([]atomic.Pointer[Ring], workers)
	t.ext = t.newRing(ExternalWorker)
	t.enabled.Store(true)
	return t
}

func (t *Tracer) newRing(id int32) *Ring {
	size := t.cfg.ringSize()
	return &Ring{tr: t, id: id, mask: uint64(size - 1), buf: make([]slot, size)}
}

// Config returns the tracer's configuration.
func (t *Tracer) Config() Config { return t.cfg }

// Enabled reports whether recording is on. This is the hot-path gate:
// one atomic load.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Enable resumes recording.
func (t *Tracer) Enable() { t.enabled.Store(true) }

// Disable pauses recording. In-flight Record calls on other goroutines
// may still land (the gate is advisory, not a barrier); exporters that
// need exactness should reach quiescence first.
func (t *Tracer) Disable() { t.enabled.Store(false) }

// SetClock replaces the tracer's clock (nanoseconds since an arbitrary
// epoch, must be monotonic non-decreasing). Test hook for deterministic
// golden output; call before any recording.
func (t *Tracer) SetClock(fn func() int64) { t.clock = fn }

func (t *Tracer) now() int64 { return t.clock() }

// SetPlaceNames installs the place-ID → name table used by exporters.
func (t *Tracer) SetPlaceNames(names []string) { t.placeNames = names }

// SetPolicy records the scheduling policy the traced runtime runs, so
// derived gauges carry policy identity (the A/B metric for policy sweeps).
// Call at runtime construction, before recording.
func (t *Tracer) SetPolicy(name string) { t.policy = name }

// Policy returns the traced runtime's scheduling policy name (may be
// empty for tracers created outside a runtime).
func (t *Tracer) Policy() string { return t.policy }

// PlaceName resolves a place ID to its display name.
func (t *Tracer) PlaceName(id int32) string {
	if id >= 0 && int(id) < len(t.placeNames) {
		return t.placeNames[id]
	}
	return fmt.Sprintf("place%d", id)
}

// NextTaskID allocates a fresh nonzero task ID.
func (t *Tracer) NextTaskID() uint64 { return t.nextTask.Add(1) }

// Workers returns the size of the worker identity space.
func (t *Tracer) Workers() int { return len(t.rings) }

// Ring returns worker identity w's ring, allocating it on first call.
// Callers cache the result (the runtime wires it into the worker), so
// the CAS race on concurrent first calls resolves to one winner and the
// loser's ring is garbage before any event lands in it.
func (t *Tracer) Ring(w int) *Ring {
	if g := t.rings[w].Load(); g != nil {
		return g
	}
	g := t.newRing(int32(w))
	if t.rings[w].CompareAndSwap(nil, g) {
		return g
	}
	return t.rings[w].Load()
}

// activeRings returns the rings allocated so far, in identity order.
func (t *Tracer) activeRings() []*Ring {
	out := make([]*Ring, 0, len(t.rings))
	for i := range t.rings {
		if g := t.rings[i].Load(); g != nil {
			out = append(out, g)
		}
	}
	return out
}

// RecordExternal records an event from code running outside any worker
// identity. Unlike worker rings this path takes a mutex: external
// recorders (module completion callbacks, simnet delivery goroutines)
// are many and unregistered.
func (t *Tracer) RecordExternal(k Kind, place int32, task, arg uint64) {
	if !t.Enabled() {
		return
	}
	t.extMu.Lock()
	t.ext.Record(k, place, task, arg)
	t.extMu.Unlock()
}

// Dropped reports the total number of overwritten events across all rings.
func (t *Tracer) Dropped() uint64 {
	var n uint64
	for _, g := range t.activeRings() {
		n += g.dropped()
	}
	return n + t.ext.dropped()
}

// Events snapshots every ring and returns all events sorted by timestamp
// (stable, so each ring's internal order is preserved on ties).
func (t *Tracer) Events() []Event {
	rings := t.activeRings()
	total := t.ext.len()
	for _, g := range rings {
		total += g.len()
	}
	out := make([]Event, 0, total)
	for _, g := range rings {
		out = g.snapshot(out)
	}
	out = t.ext.snapshot(out)
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}
