package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/stats"
)

// WorkerStats is one worker's derived activity.
type WorkerStats struct {
	Worker int32
	Tasks  uint64 // executions finished on this worker
	Steals uint64
	Parks  uint64
	Busy   time.Duration // time with at least one task slice open
}

// PlaceStats is one place's derived activity.
type PlaceStats struct {
	Place         string
	TasksStarted  uint64
	MaxQueueDepth uint64
}

// Derived is the counter set computed from an event stream. It is what
// the text summary renders and what Publish merges into internal/stats.
type Derived struct {
	// Policy names the scheduling policy that produced the stream (set by
	// Tracer.Derived from SetPolicy; empty for raw Analyze calls). When
	// set, Publish emits policy-suffixed copies of the scheduler-health
	// gauges so policy A/B runs land side by side in one stats report.
	Policy string

	Wall time.Duration // last event TS - first event TS

	Spawns        uint64
	TasksStarted  uint64
	TasksFinished uint64
	Suspends      uint64

	StealAttempts    uint64
	Steals           uint64
	StealSuccessRate float64 // Steals / StealAttempts (0 when no attempts)

	Parks           uint64
	Unparks         uint64
	MeanParkLatency time.Duration // mean park→unpark gap per worker

	MsgsSent      uint64
	MsgsRecvd     uint64
	MsgBytes      uint64 // sent bytes
	MsgBytesRecvd uint64 // delivered bytes (trails MsgBytes while transfers are in flight)

	Workers []WorkerStats // sorted by Tasks descending, worker ascending
	Places  []PlaceStats  // sorted by place name
}

// Analyze computes derived counters from an event stream (sorted or not;
// per-worker pairing relies only on per-worker order, which ring
// snapshots and stable sorting preserve). placeName resolves place IDs
// for per-place aggregation; Tracer.PlaceName and Meta.PlaceName both
// fit.
func Analyze(evs []Event, placeName func(int32) string) Derived {
	var d Derived
	type wstate struct {
		WorkerStats
		depth     int
		openSince int64
		parkSince int64
	}
	workers := map[int32]*wstate{}
	wsOf := func(id int32) *wstate {
		ws, ok := workers[id]
		if !ok {
			ws = &wstate{WorkerStats: WorkerStats{Worker: id}, parkSince: -1}
			workers[id] = ws
		}
		return ws
	}
	places := map[string]*PlaceStats{}
	plOf := func(id int32) *PlaceStats {
		name := placeName(id)
		ps, ok := places[name]
		if !ok {
			ps = &PlaceStats{Place: name}
			places[name] = ps
		}
		return ps
	}
	var first, last int64 = -1, -1
	var parkGapTotal int64
	var parkPairTotal uint64
	for _, e := range evs {
		if first < 0 || e.TS < first {
			first = e.TS
		}
		if e.TS > last {
			last = e.TS
		}
		ws := wsOf(e.Worker)
		switch e.Kind {
		case EvSpawn:
			d.Spawns++
		case EvStart:
			d.TasksStarted++
			if e.Place != NoPlace {
				plOf(e.Place).TasksStarted++
			}
			if ws.depth == 0 {
				ws.openSince = e.TS
			}
			ws.depth++
		case EvFinish:
			d.TasksFinished++
			ws.Tasks++
			if ws.depth > 0 {
				ws.depth--
				if ws.depth == 0 {
					ws.Busy += time.Duration(e.TS - ws.openSince)
				}
			}
		case EvSuspend:
			d.Suspends++
		case EvStealAttempt:
			d.StealAttempts++
		case EvStealSuccess:
			d.Steals++
			ws.Steals++
		case EvPark:
			d.Parks++
			ws.Parks++
			ws.parkSince = e.TS
		case EvUnpark:
			d.Unparks++
			if ws.parkSince >= 0 {
				parkGapTotal += e.TS - ws.parkSince
				parkPairTotal++
				ws.parkSince = -1
			}
		case EvQueueDepth:
			if e.Place != NoPlace {
				ps := plOf(e.Place)
				if e.Arg > ps.MaxQueueDepth {
					ps.MaxQueueDepth = e.Arg
				}
			}
		case EvMsgSend:
			d.MsgsSent++
			d.MsgBytes += e.Arg
		case EvMsgRecv:
			d.MsgsRecvd++
			d.MsgBytesRecvd += e.Arg
		}
	}
	if first >= 0 {
		d.Wall = time.Duration(last - first)
	}
	if d.StealAttempts > 0 {
		d.StealSuccessRate = float64(d.Steals) / float64(d.StealAttempts)
	}
	if parkPairTotal > 0 {
		d.MeanParkLatency = time.Duration(parkGapTotal / int64(parkPairTotal))
	}
	for _, ws := range workers {
		// A worker whose only events are external bookkeeping still shows.
		d.Workers = append(d.Workers, ws.WorkerStats)
	}
	sort.Slice(d.Workers, func(i, j int) bool {
		if d.Workers[i].Tasks != d.Workers[j].Tasks {
			return d.Workers[i].Tasks > d.Workers[j].Tasks
		}
		return d.Workers[i].Worker < d.Workers[j].Worker
	})
	for _, ps := range places {
		d.Places = append(d.Places, *ps)
	}
	sort.Slice(d.Places, func(i, j int) bool { return d.Places[i].Place < d.Places[j].Place })
	return d
}

// Format renders the derived counters as the plain-text top-N summary.
func (d Derived) Format(topN int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== hiper-trace summary ==\n")
	fmt.Fprintf(&b, "wall time      %v\n", d.Wall.Round(time.Microsecond))
	fmt.Fprintf(&b, "tasks          %d started / %d finished (%d spawn events, %d suspensions)\n",
		d.TasksStarted, d.TasksFinished, d.Spawns, d.Suspends)
	fmt.Fprintf(&b, "steals         %d of %d attempts (%.1f%% success)\n",
		d.Steals, d.StealAttempts, d.StealSuccessRate*100)
	fmt.Fprintf(&b, "parks          %d (mean park latency %v)\n",
		d.Parks, d.MeanParkLatency.Round(time.Microsecond))
	fmt.Fprintf(&b, "messages       %d sent / %d received (%d bytes out, %d in)\n",
		d.MsgsSent, d.MsgsRecvd, d.MsgBytes, d.MsgBytesRecvd)
	if len(d.Places) > 0 {
		fmt.Fprintf(&b, "places:\n")
		secs := d.Wall.Seconds()
		for _, p := range d.Places {
			rate := "-"
			if secs > 0 {
				rate = fmt.Sprintf("%.0f/s", float64(p.TasksStarted)/secs)
			}
			fmt.Fprintf(&b, "  %-20s %8d tasks  %10s  max queue %d\n",
				p.Place, p.TasksStarted, rate, p.MaxQueueDepth)
		}
	}
	rows := d.Workers
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	if len(rows) > 0 {
		fmt.Fprintf(&b, "top %d workers by tasks executed:\n", len(rows))
		fmt.Fprintf(&b, "  %-8s %10s %8s %6s %12s\n", "worker", "tasks", "steals", "parks", "busy")
		for _, w := range rows {
			id := fmt.Sprintf("%d", w.Worker)
			if w.Worker == ExternalWorker {
				id = "ext"
			}
			fmt.Fprintf(&b, "  %-8s %10d %8d %6d %12v\n",
				id, w.Tasks, w.Steals, w.Parks, w.Busy.Round(time.Microsecond))
		}
	}
	return b.String()
}

// Derived snapshots the tracer and computes its derived counters.
func (t *Tracer) Derived() Derived {
	d := Analyze(t.Events(), t.PlaceName)
	d.Policy = t.policy
	return d
}

// Summary snapshots the tracer and renders the top-N text summary.
func (t *Tracer) Summary(topN int) string {
	return t.Derived().Format(topN)
}

// Publish merges the derived counters into internal/stats as gauges, so
// one stats.Report() shows per-module API time next to scheduler health:
// steal success rate, mean park latency, and per-place task throughput.
func (d Derived) Publish() {
	stats.SetGauge("trace", "steal_success_rate", d.StealSuccessRate)
	stats.SetGauge("trace", "mean_park_latency_us", float64(d.MeanParkLatency)/1e3)
	if d.Policy != "" {
		// Policy-suffixed copies: successive runs under different policies
		// each keep their own gauge row (plain gauges overwrite), which is
		// what the -policy benchmark sweep compares.
		stats.SetGauge("trace", "steal_success_rate["+d.Policy+"]", d.StealSuccessRate)
		stats.SetGauge("trace", "mean_park_latency_us["+d.Policy+"]", float64(d.MeanParkLatency)/1e3)
	}
	stats.SetGauge("trace", "tasks_finished", float64(d.TasksFinished))
	if secs := d.Wall.Seconds(); secs > 0 {
		stats.SetGauge("trace", "tasks_per_sec", float64(d.TasksStarted)/secs)
		for _, p := range d.Places {
			stats.SetGauge("trace", "tasks_per_sec["+p.Place+"]", float64(p.TasksStarted)/secs)
		}
	}
	if d.MsgsSent > 0 {
		stats.SetGauge("trace", "msgs_sent", float64(d.MsgsSent))
		stats.SetGauge("trace", "msg_bytes_sent", float64(d.MsgBytes))
	}
	if d.MsgsRecvd > 0 {
		stats.SetGauge("trace", "msgs_recvd", float64(d.MsgsRecvd))
		stats.SetGauge("trace", "msg_bytes_recvd", float64(d.MsgBytesRecvd))
	}
}
