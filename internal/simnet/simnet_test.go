package simnet

import (
	"testing"

	"repro/internal/fabric"
)

// The full behavioural suite for the simulated interconnect lives with
// the implementation in internal/fabric. These tests only pin the facade:
// the aliases resolve to the fabric types and the constructors work.

func TestFacadeSendRecv(t *testing.T) {
	f := NewFabric(2, CostModel{})
	f.Send(0, 1, 7, []byte("hi"))
	m := f.Recv(1, AnySource, AnyTag)
	if string(m.Data) != "hi" || m.Src != 0 || m.Tag != 7 {
		t.Fatalf("got %+v", m)
	}
}

func TestFacadeAliases(t *testing.T) {
	var tr fabric.Transport = NewFabric(1, CostModel{})
	if tr.Size() != 1 {
		t.Fatal("Fabric does not satisfy fabric.Transport")
	}
	if AnySource != fabric.AnySource || AnyTag != fabric.AnyTag {
		t.Fatal("wildcard constants diverged from fabric")
	}
	var _ *fabric.Barrier = NewBarrier(2)
}

func TestFacadeBarrier(t *testing.T) {
	b := NewBarrier(2)
	done := make(chan struct{})
	b.Arrive(func() { close(done) })
	b.Await()
	<-done
}
